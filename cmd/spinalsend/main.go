// Command spinalsend is the transmitting half of the rateless spinal link
// over UDP. It encodes each payload with a spinal code, streams coded-symbol
// frames to the receiver, and keeps going until the receiver acknowledges the
// packet (see cmd/spinalrecv) or the pass budget is exhausted.
//
//	spinalsend -to 127.0.0.1:9700 -text "hello spinal" -repeat 3
//	spinalsend -to 127.0.0.1:9700 -file ./document.txt
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"spinal/internal/link"
)

func main() {
	to := flag.String("to", "127.0.0.1:9700", "receiver UDP address")
	local := flag.String("local", "127.0.0.1:0", "local UDP address to bind")
	text := flag.String("text", "", "payload text to send")
	file := flag.String("file", "", "file whose contents to send (chunked)")
	repeat := flag.Int("repeat", 1, "number of times to send the text payload")
	chunk := flag.Int("chunk", 512, "chunk size in bytes when sending a file")
	passes := flag.Int("max-passes", 60, "give-up bound in encoding passes")
	flow := flag.Uint64("flow", 0,
		"flow identity carried in every frame so one receiver can serve many senders (0 = derive from the process id)")
	legacy := flag.Bool("v0", false, "emit legacy v0 frames (no flow id) for pre-flow receivers")
	flush := flag.Int("flush", 0,
		"data frames coalesced into one sendmmsg-style batched transmit (0 = default, 1 = frame per send)")
	deadline := flag.Duration("deadline", 0,
		"wall-clock budget per packet: give up with a deadline error instead of transmitting forever (0 = no deadline)")
	flag.Parse()

	flowID := uint32(*flow)
	if flowID == 0 && !*legacy {
		// Distinct concurrent spinalsend processes get distinct flows without
		// any coordination.
		flowID = uint32(os.Getpid())
	}
	if err := send(*to, *local, *text, *file, *repeat, *chunk, *passes, flowID, *legacy, *flush, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, "spinalsend:", err)
		os.Exit(1)
	}
}

func send(to, local, text, file string, repeat, chunk, passes int, flowID uint32, legacy bool, flush int, deadline time.Duration) error {
	if text == "" && file == "" {
		return fmt.Errorf("nothing to send: pass -text or -file")
	}
	var payloads [][]byte
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		if chunk < 1 {
			return fmt.Errorf("chunk size must be positive")
		}
		for off := 0; off < len(data); off += chunk {
			end := off + chunk
			if end > len(data) {
				end = len(data)
			}
			payloads = append(payloads, data[off:end])
		}
	default:
		for i := 0; i < repeat; i++ {
			payloads = append(payloads, []byte(text))
		}
	}

	tr, err := link.NewUDP(local, to)
	if err != nil {
		return err
	}
	defer tr.Close()
	if legacy {
		flowID = 0
	}
	sender, err := link.NewSender(tr, link.Config{
		MaxPasses:    passes,
		AckPoll:      2 * time.Millisecond,
		FlowID:       flowID,
		LegacyV0:     legacy,
		FlushFrames:  flush,
		SendDeadline: deadline,
	})
	if err != nil {
		return err
	}
	fmt.Printf("spinalsend: transmitting as flow %d\n", flowID)

	totalBits, totalSymbols := 0, 0
	for i, p := range payloads {
		report, err := sender.Send(uint32(i+1), p)
		if errors.Is(err, link.ErrDeadline) {
			fmt.Printf("packet %d: gave up at the %v deadline after %d symbols\n",
				i+1, deadline, report.SymbolsSent)
			continue
		}
		if err != nil {
			return err
		}
		if report.Shed {
			fmt.Printf("packet %d: flow shed by the receiver's admission control after %d symbols\n",
				i+1, report.SymbolsSent)
			continue
		}
		if !report.Acked {
			fmt.Printf("packet %d: NOT acknowledged after %d symbols\n", i+1, report.SymbolsSent)
			continue
		}
		totalBits += len(p) * 8
		totalSymbols += report.SymbolsSent
		fmt.Printf("packet %d: %d bytes in %d symbols (%.2f bits/symbol, %d frames)\n",
			i+1, len(p), report.SymbolsSent, report.Rate, report.FramesSent)
	}
	if totalSymbols > 0 {
		fmt.Printf("aggregate rate: %.2f bits/symbol over %d packets\n",
			float64(totalBits)/float64(totalSymbols), len(payloads))
	}
	return nil
}
