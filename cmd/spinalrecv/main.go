// Command spinalrecv is the receiving half of the rateless spinal link over
// UDP. It binds a local UDP port, simulates the radio by passing every
// received symbol through an AWGN channel at the configured SNR (plus a
// 14-bit ADC) — or through a declarative impairment pipeline when -impair is
// set, optionally with frame-level faults via -fault — decodes arriving
// packets with the spinal beam decoder, and acknowledges each packet as soon
// as its CRC verifies.
//
// One spinalrecv serves many concurrent spinalsend processes over its
// single UDP socket: frames are demultiplexed by the flow id each sender
// carries, acks are routed back to each sender's own source address, flows
// share one decoder pool and one decode-worker pool, and admission control
// (-max-flows, -max-tracked) bounds the state a burst of senders can pin.
//
// Run it together with cmd/spinalsend, for example:
//
//	spinalrecv -listen 127.0.0.1:9700 -snr 12 &
//	spinalsend -to 127.0.0.1:9700 -text "hello from sender A" &
//	spinalsend -to 127.0.0.1:9700 -text "hello from sender B" &
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/impair"
	"spinal/internal/link"
	"spinal/internal/rng"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9700", "UDP address to bind")
	snr := flag.Float64("snr", 15, "simulated radio SNR in dB")
	adc := flag.Int("adc", 14, "simulated receiver ADC bits per dimension")
	beam := flag.Int("beam", 16, "decoder beam width B")
	workers := flag.Int("workers", 0,
		"decode worker pool size: how many distinct in-flight packets decode concurrently (0 = GOMAXPROCS)")
	decWorkers := flag.Int("decoder-workers", 0,
		"per-packet decoder parallelism (0 = serial per packet; results are bit-identical at any setting)")
	count := flag.Int("count", 0, "exit after this many packets (0 = run forever)")
	seed := flag.Uint64("noise-seed", 1, "seed for the simulated radio noise")
	maxFlows := flag.Int("max-flows", 0,
		"cap on concurrently tracked flows; the oldest flow is shed (and NACKed) beyond it (0 = default)")
	maxTracked := flag.Int("max-tracked", 0, "cap on tracked messages across all flows (0 = default)")
	pool := flag.Int("pool", 0,
		"decoder-pool capacity: idle decoders kept for reuse across flows (0 = default, negative = disable pooling)")
	ingestShards := flag.Int("ingest-shards", 1,
		"SO_REUSEPORT ingest sockets sharing the listen port; >1 runs the sharded reactor (Linux/BSD)")
	ingestBatch := flag.Int("ingest-batch", 0,
		"frames pulled from the socket per receive call via recvmmsg-style batching (0 = default)")
	idleExpiry := flag.Duration("idle-expiry", 0,
		"expire flows with no frame for this long, NACKing their in-flight packets (0 = never)")
	budget := flag.Int64("budget", 0,
		"per-flow decode budget: how far ahead of the least-spent flow (in decode nodes) a flow may run before its attempts are deferred (0 = off)")
	stats := flag.Duration("stats", 0,
		"emit a JSON engine-stats line to stderr at this interval (0 = off)")
	metric := flag.String("metric", "",
		"decoder cost metric: float64|int32 (empty = float64)")
	search := flag.String("search", "",
		"decoder search strategy: exact|gap[:G]|lookahead[:M]|approx (empty = exact)")
	adaptive := flag.Bool("adaptive-search", false,
		"pick each flow's search strategy from its decode-budget pressure (requires -budget); -search sets the unpressured base")
	impairSpec := flag.String("impair", "",
		"impairment-pipeline spec replacing the AWGN radio, e.g. \"ge(good=16,bad=3)|spike(prob=0.02)|erase(p=0.01)\" or its JSON form")
	faultSpec := flag.String("fault", "",
		"frame-level fault profile applied to received frames, e.g. \"drop=0.05,reorder=0.1,depth=4\" or the JSON form of link.FaultProfile")
	flag.Parse()

	if err := serve(*listen, *snr, *adc, *beam, *workers, *decWorkers, *count, *seed,
		*maxFlows, *maxTracked, *pool, *ingestShards, *ingestBatch, *idleExpiry, *budget, *stats,
		*metric, *search, *adaptive, *impairSpec, *faultSpec); err != nil {
		fmt.Fprintln(os.Stderr, "spinalrecv:", err)
		os.Exit(1)
	}
}

func serve(listen string, snr float64, adc, beam, workers, decWorkers, count int, seed uint64,
	maxFlows, maxTracked, pool, ingestShards, ingestBatch int,
	idleExpiry time.Duration, budget int64, statsEvery time.Duration,
	metric, search string, adaptive bool, impairSpec, faultSpec string) error {
	costMetric, err := core.ParseCostMetric(metric)
	if err != nil {
		return err
	}
	searchCfg, err := core.ParseSearchConfig(search)
	if err != nil {
		return err
	}
	// A single shard binds one plain UDP socket; more shards run the
	// SO_REUSEPORT reactor, which spreads kernel-side demux across sockets
	// while frames still funnel into the one flow-demuxed receiver.
	var tr link.BatchPacketTransport
	if ingestShards > 1 {
		reactor, err := link.NewReactor(link.ReactorConfig{
			Addr:   listen,
			Shards: ingestShards,
			Batch:  ingestBatch,
		})
		if err != nil {
			return err
		}
		tr = reactor
	} else {
		udp, err := link.NewUDP(listen, "")
		if err != nil {
			return err
		}
		tr = udp
	}
	defer tr.Close()

	// The simulated radio: AWGN plus ADC by default, or a declarative
	// impairment pipeline when -impair is set. Either way the receiver sees a
	// channel.SymbolChannel consuming one deterministic noise stream.
	var radio channel.SymbolChannel
	radioDesc := fmt.Sprintf("a %.1f dB channel", snr)
	if impairSpec != "" {
		spec, err := impair.ParseAny(impairSpec)
		if err != nil {
			return err
		}
		pl, err := spec.Build(seed)
		if err != nil {
			return err
		}
		radio = pl
		radioDesc = pl.Name()
	} else {
		q, err := channel.NewQuantizedAWGN(snr, adc, rng.New(seed))
		if err != nil {
			return err
		}
		radio = q
	}
	// Frame-level faults wrap the transport the receiver reads from; the
	// wrapped transport loses batch ingest, which is fine for a fault-injected
	// test run.
	var recvTr link.Transport = tr
	if faultSpec != "" {
		profile, err := impair.ParseFaultProfile(faultSpec)
		if err != nil {
			return err
		}
		recvTr = link.NewFaultTransport(tr, link.FaultProfile{}, profile, seed^0x1f83d9abfb41bd6b)
	}
	recv, err := link.NewReceiver(recvTr, link.Config{
		BeamWidth:          beam,
		DecodeWorkers:      workers,
		DecoderParallelism: decWorkers,
		MaxFlows:           maxFlows,
		MaxTracked:         maxTracked,
		PoolCapacity:       pool,
		IngestBatch:        ingestBatch,
		IdleExpiry:         idleExpiry,
		FlowDecodeBudget:   budget,
		CostMetric:         costMetric,
		Search:             searchCfg,
		AdaptiveSearch:     adaptive,
	}, radio)
	if err != nil {
		return err
	}
	defer recv.Close()
	addr := listen
	if la, ok := tr.(interface{ LocalAddr() net.Addr }); ok {
		addr = la.LocalAddr().String()
	}
	fmt.Printf("spinalrecv: listening on %s (%d ingest shard(s)), simulating %s, serving multiplexed flows\n",
		addr, ingestShards, radioDesc)

	// Stats lines come from this goroutine — the one driving Receive — which
	// is the EngineStats contract; no ticker goroutine races the engine.
	enc := json.NewEncoder(os.Stderr)
	nextStats := time.Now().Add(statsEvery)
	emitStats := func() {
		if statsEvery <= 0 || time.Now().Before(nextStats) {
			return
		}
		nextStats = time.Now().Add(statsEvery)
		_ = enc.Encode(recv.EngineStats())
	}
	slice := time.Second
	if statsEvery > 0 && statsEvery < slice {
		slice = statsEvery
	}
	delivered := 0
	for count == 0 || delivered < count {
		d, err := recv.Receive(slice)
		emitStats()
		if errors.Is(err, link.ErrTimeout) {
			continue
		}
		if err != nil {
			return err
		}
		delivered++
		rate := float64(len(d.Payload)*8) / float64(d.Symbols)
		fmt.Printf("flow %d packet %d: %d bytes in %d symbols (%.2f bits/symbol): %q\n",
			d.FlowID, d.MsgID, len(d.Payload), d.Symbols, rate, truncate(string(d.Payload), 60))
	}
	stats := recv.PoolStats()
	fmt.Printf("spinalrecv: served %d packets across %d tracked flows (decoder pool: %d hits, %d misses, %d shed flows)\n",
		delivered, recv.TrackedFlows(), stats.Hits, stats.Misses, recv.ShedFlows())
	if es := recv.EngineStats(); es.NodesSaved > 0 || len(es.SearchAttempts) > 0 {
		fmt.Printf("spinalrecv: search attempts by mode %v, ~%d tree expansions saved by approximate search\n",
			es.SearchAttempts, es.NodesSaved)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
