// Command spinalsim regenerates the evaluation artifacts of "Rateless Spinal
// Codes" (HotNets 2011): the Figure 2 rate-versus-SNR curves (spinal code,
// Shannon and finite-blocklength bounds, fixed-rate LDPC baselines) and the
// ablation experiments described in DESIGN.md.
//
// Examples:
//
//	spinalsim -exp figure2 -snr-step 5 -trials 100
//	spinalsim -exp ldpc -frames 100
//	spinalsim -exp bsc
//	spinalsim -exp beam -snr 10
//	spinalsim -exp puncture
//	spinalsim -exp fountain
//
// Pass -csv to emit comma-separated values instead of aligned tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spinal/internal/experiments"
	"spinal/internal/ldpc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinalsim:", err)
		os.Exit(1)
	}
}

type options struct {
	exp      string
	snrMin   float64
	snrMax   float64
	snrStep  float64
	snr      float64
	trials   int
	frames   int
	beam     int
	k        int
	c        int
	msgBits  int
	adcBits  int
	seed     uint64
	mapper   string
	schedule string
	workers  int
	csv      bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spinalsim", flag.ContinueOnError)
	opt := options{}
	fs.StringVar(&opt.exp, "exp", "figure2",
		"experiment: figure2|spinal|bounds|ldpc|conv|bsc|beam|puncture|adc|mapper|theorem1|fountain|harq|adapt|fixedrate|parallel|multiflow|batch")
	fs.Float64Var(&opt.snrMin, "snr-min", -10, "sweep start (dB)")
	fs.Float64Var(&opt.snrMax, "snr-max", 40, "sweep end (dB)")
	fs.Float64Var(&opt.snrStep, "snr-step", 5, "sweep step (dB)")
	fs.Float64Var(&opt.snr, "snr", 10, "single SNR (dB) for beam/adc experiments")
	fs.IntVar(&opt.trials, "trials", 100, "messages per spinal data point")
	fs.IntVar(&opt.frames, "frames", 60, "frames per LDPC/convolutional data point")
	fs.IntVar(&opt.beam, "beam", 16, "decoder beam width B")
	fs.IntVar(&opt.k, "k", 8, "bits per spine segment")
	fs.IntVar(&opt.c, "c", 10, "coded bits per I/Q dimension")
	fs.IntVar(&opt.msgBits, "m", 24, "message length in bits")
	fs.IntVar(&opt.adcBits, "adc", 14, "receiver ADC bits per dimension")
	fs.Uint64Var(&opt.seed, "seed", 0, "override experiment seed (0 = default)")
	fs.StringVar(&opt.mapper, "mapper", "linear", "constellation mapper: linear|uniform|gaussian")
	fs.StringVar(&opt.schedule, "schedule", "striped", "transmission schedule: striped|sequential")
	fs.IntVar(&opt.workers, "workers", 0,
		"decoder worker goroutines per level expansion (0 = automatic: serial per trial in CPU-parallel sweeps, GOMAXPROCS otherwise; results are bit-identical at any setting)")
	fs.BoolVar(&opt.csv, "csv", false, "emit CSV instead of aligned tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	start := time.Now()
	if err := dispatch(opt, out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n# completed %s in %v\n", opt.exp, time.Since(start).Round(time.Millisecond))
	return nil
}

func (o options) spinalConfig() experiments.SpinalConfig {
	cfg := experiments.Figure2Config()
	cfg.Trials = o.trials
	cfg.BeamWidth = o.beam
	cfg.K = o.k
	cfg.C = o.c
	cfg.MessageBits = o.msgBits
	cfg.ADCBits = o.adcBits
	cfg.Mapper = o.mapper
	cfg.Schedule = o.schedule
	cfg.Workers = o.workers
	if o.seed != 0 {
		cfg.Seed = o.seed
	}
	return cfg
}

func (o options) sweep() ([]float64, error) {
	return experiments.SNRSweep(o.snrMin, o.snrMax, o.snrStep)
}

func emit(o options, out io.Writer, t *experiments.Table) {
	if o.csv {
		fmt.Fprint(out, t.CSV())
		return
	}
	fmt.Fprint(out, t.String())
}

func dispatch(o options, out io.Writer) error {
	switch o.exp {
	case "figure2":
		return runFigure2(o, out)
	case "spinal":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		pts, err := experiments.SpinalRateCurve(o.spinalConfig(), snrs)
		if err != nil {
			return err
		}
		emit(o, out, experiments.FormatRateCurve("spinal", pts))
		return nil
	case "bounds":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		pts, err := experiments.Figure2Bounds(snrs)
		if err != nil {
			return err
		}
		emit(o, out, experiments.FormatBounds(pts))
		return nil
	case "ldpc":
		return runLDPC(o, out)
	case "conv":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		for _, rate := range []string{"1/2", "2/3", "3/4"} {
			pts, err := experiments.ConvThroughputCurve(experiments.ConvConfig{
				Rate: rate, Modulation: "BPSK", Frames: o.frames,
			}, snrs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# convolutional K=7 rate %s over BPSK\n", rate)
			emit(o, out, experiments.FormatThroughput("conv_"+strings.ReplaceAll(rate, "/", ""), pts))
			fmt.Fprintln(out)
		}
		return nil
	case "bsc":
		cfg := o.spinalConfig()
		if o.k == 8 {
			cfg.K = 4 // a k=4 code keeps BSC decoding fast; override with -k
		}
		pts, err := experiments.SpinalBSCCurve(cfg, []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4})
		if err != nil {
			return err
		}
		emit(o, out, experiments.FormatBSC(pts))
		return nil
	case "beam":
		pts, err := experiments.BeamWidthSweep(o.spinalConfig(), o.snr, []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# graceful scale-down at %.1f dB\n", o.snr)
		emit(o, out, experiments.FormatBeamSweep(pts))
		return nil
	case "puncture":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		punct, seq, err := experiments.PuncturingComparison(o.spinalConfig(), snrs)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "# punctured (striped) schedule")
		emit(o, out, experiments.FormatRateCurve("punctured", punct))
		fmt.Fprintln(out, "\n# sequential schedule")
		emit(o, out, experiments.FormatRateCurve("sequential", seq))
		return nil
	case "adc":
		pts, err := experiments.QuantizationSweep(o.spinalConfig(), o.snr, []int{4, 6, 8, 10, 12, 14, 16})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# ADC resolution sweep at %.1f dB\n", o.snr)
		emit(o, out, experiments.FormatADCSweep(pts))
		return nil
	case "mapper":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		curves, err := experiments.MapperComparison(o.spinalConfig(), snrs, []string{"linear", "uniform", "gaussian"})
		if err != nil {
			return err
		}
		for _, name := range []string{"linear", "uniform", "gaussian"} {
			fmt.Fprintf(out, "# mapper: %s\n", name)
			emit(o, out, experiments.FormatRateCurve(name, curves[name]))
			fmt.Fprintln(out)
		}
		return nil
	case "theorem1":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		pts, err := experiments.Theorem1Gap(o.spinalConfig(), snrs)
		if err != nil {
			return err
		}
		emit(o, out, experiments.FormatTheorem1(pts))
		return nil
	case "fountain":
		pts, err := experiments.FountainOverhead(256, 64, 20, []float64{0, 0.1, 0.2, 0.3, 0.5}, 1)
		if err != nil {
			return err
		}
		emit(o, out, experiments.FormatFountain(pts))
		return nil
	case "harq":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		for _, mod := range []string{"QAM-4", "QAM-16", "QAM-64"} {
			pts, err := experiments.HARQThroughputCurve(experiments.HARQConfig{
				Rate: ldpc.Rate12, Modulation: mod, Frames: o.frames,
			}, snrs)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# hybrid ARQ (Chase combining), LDPC rate 1/2, %s\n", mod)
			emit(o, out, experiments.FormatThroughput("harq_"+mod, pts))
			fmt.Fprintln(out)
		}
		return nil
	case "adapt":
		budget := 20000
		if o.trials < 100 {
			budget = o.trials * 200 // let -trials scale the run length
		}
		pts, err := experiments.AdaptationComparison(experiments.DefaultAdaptationScenarios(), budget, 1)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "# reactive rate adaptation vs rateless spinal over time-varying channels")
		emit(o, out, experiments.FormatAdaptation(pts))
		return nil
	case "parallel":
		cfg := o.spinalConfig()
		cfg.Schedule = "sequential" // the natural low-SNR operating point
		if o.trials > 20 {
			cfg.Trials = 20 // each trial runs once per worker count
		}
		pts, err := experiments.ParallelDecodeComparison(cfg, 0, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# parallel decode scaling at 0 dB (bit-identical decodes, wall-clock only)\n")
		fmt.Fprintf(out, "# effective config: %d trials, %s schedule, B=%d (this experiment fixes the schedule and bounds trials)\n",
			cfg.Trials, cfg.Schedule, cfg.BeamWidth)
		emit(o, out, experiments.FormatParallel(pts))
		return nil
	case "multiflow":
		cfg := o.spinalConfig()
		if o.k == 8 {
			// The -k default; many concurrent decodes make k=8 slow, so this
			// experiment runs k=4 unless -k selects something other than 8
			// (disclosed in the effective-config line below).
			cfg.K = 4
		}
		snr := o.snr
		msgs := 4
		if o.trials < 100 {
			msgs = o.trials // let -trials scale messages per flow
			if msgs < 1 {
				msgs = 1
			}
		}
		pts, err := experiments.MultiFlowComparison(cfg, snr, []int{1, 4, 16, 64}, msgs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# flow-multiplexed link engine at %.1f dB: aggregate goodput, per-flow fairness, decoder-pool reuse\n", snr)
		fmt.Fprintf(out, "# every delivered payload is verified bit-identical to a dedicated single-flow receiver\n")
		fmt.Fprintf(out, "# effective config: k=%d, %d messages per flow (this experiment defaults k to 4; pass -k to override)\n",
			cfg.K, msgs)
		emit(o, out, experiments.FormatMultiFlow(pts))
		return nil
	case "batch":
		cfg := o.spinalConfig()
		if o.trials > 20 {
			cfg.Trials = 20 // each trial runs once per mode
		}
		var pts []experiments.BatchPoint
		seen := map[float64]bool{}
		for _, snr := range []float64{0, o.snr, 25} {
			if seen[snr] {
				continue
			}
			seen[snr] = true
			pt, err := experiments.BatchObserveComparison(cfg, snr)
			if err != nil {
				return err
			}
			pts = append(pts, pt)
		}
		fmt.Fprintln(out, "# batched vs per-symbol transmission path (bit-identical decodes, wall-clock only)")
		fmt.Fprintf(out, "# effective config: %d trials (this experiment bounds trials; pass -trials <= 20 to override)\n",
			cfg.Trials)
		emit(o, out, experiments.FormatBatch(pts))
		return nil
	case "fixedrate":
		snrs, err := o.sweep()
		if err != nil {
			return err
		}
		for _, passes := range []int{2, 4, 8} {
			pts, err := experiments.FixedRateSpinal(o.spinalConfig(), snrs, passes)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# fixed-rate spinal code, %d passes (%.2f bits/symbol nominal)\n",
				passes, float64(o.msgBits)/float64(passes*((o.msgBits+o.k-1)/o.k)))
			emit(o, out, experiments.FormatFixedRate(pts))
			fmt.Fprintln(out)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", o.exp)
	}
}

// runLDPC prints the eight LDPC baseline curves of Figure 2.
func runLDPC(o options, out io.Writer) error {
	snrs, err := o.sweep()
	if err != nil {
		return err
	}
	for _, cfg := range experiments.Figure2LDPCConfigs() {
		cfg.Frames = o.frames
		pts, err := experiments.LDPCThroughputCurve(cfg, snrs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# %s (648-bit codewords, %d-iteration BP)\n", cfg.Label(), ldpc.DefaultIterations)
		emit(o, out, experiments.FormatThroughput(strings.ReplaceAll(cfg.Label(), " ", "_"), pts))
		fmt.Fprintln(out)
	}
	return nil
}

// runFigure2 prints every curve of Figure 2: the bounds, the spinal code and
// the eight LDPC baselines.
func runFigure2(o options, out io.Writer) error {
	snrs, err := o.sweep()
	if err != nil {
		return err
	}
	bounds, err := experiments.Figure2Bounds(snrs)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "# Figure 2 — reference bounds")
	emit(o, out, experiments.FormatBounds(bounds))

	cfg := o.spinalConfig()
	spinalPts, err := experiments.SpinalRateCurve(cfg, snrs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n# Figure 2 — spinal code (m=%d, k=%d, c=%d, B=%d, %d-bit ADC)\n",
		cfg.MessageBits, cfg.K, cfg.C, cfg.BeamWidth, cfg.ADCBits)
	emit(o, out, experiments.FormatRateCurve("spinal", spinalPts))

	for _, ldpcCfg := range experiments.Figure2LDPCConfigs() {
		ldpcCfg.Frames = o.frames
		pts, err := experiments.LDPCThroughputCurve(ldpcCfg, snrs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n# Figure 2 — %s (648-bit codewords, %d-iteration BP)\n", ldpcCfg.Label(), ldpc.DefaultIterations)
		emit(o, out, experiments.FormatThroughput(strings.ReplaceAll(ldpcCfg.Label(), " ", "_"), pts))
	}
	return nil
}
