// Command spinalsim regenerates the evaluation artifacts of "Rateless Spinal
// Codes" (HotNets 2011): the Figure 2 rate-versus-SNR curves (spinal code,
// Shannon and finite-blocklength bounds, fixed-rate LDPC baselines) and the
// ablation and scaling experiments that grew around them.
//
// Dispatch is registry-driven: every experiment registers a sim.Scenario,
// and the command only knows how to enumerate and run the registry.
//
// Examples:
//
//	spinalsim -exp list                  # enumerate every scenario
//	spinalsim -exp figure2 -snr-step 5 -trials 100
//	spinalsim -exp bsc -json | jq '.tables[0].rows'
//	spinalsim -exp beam -snr 10
//	spinalsim -exp multiflow -csv
//
// Pass -csv for comma-separated values or -json for machine-readable output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spinal/internal/experiments" // importing registers every scenario
	"spinal/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinalsim:", err)
		os.Exit(1)
	}
}

type options struct {
	exp          string
	snrMin       float64
	snrMax       float64
	snrStep      float64
	snr          float64
	trials       int
	frames       int
	beam         int
	k            int
	c            int
	msgBits      int
	adcBits      int
	seed         uint64
	mapper       string
	schedule     string
	workers      int
	trialWorkers int
	short        bool
	metric       string
	search       string
	impair       string
	cpuProfile   string
	memProfile   string
	csv          bool
	json         bool
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spinalsim", flag.ContinueOnError)
	opt := options{}
	fs.StringVar(&opt.exp, "exp", "figure2",
		"experiment to run, or \"list\" to enumerate the scenario registry")
	fs.Float64Var(&opt.snrMin, "snr-min", -10, "sweep start (dB)")
	fs.Float64Var(&opt.snrMax, "snr-max", 40, "sweep end (dB)")
	fs.Float64Var(&opt.snrStep, "snr-step", 5, "sweep step (dB)")
	fs.Float64Var(&opt.snr, "snr", 10, "single SNR (dB) for beam/adc/multiflow/batch experiments")
	fs.IntVar(&opt.trials, "trials", 100, "messages per spinal data point")
	fs.IntVar(&opt.frames, "frames", 60, "frames per LDPC/convolutional/HARQ data point")
	fs.IntVar(&opt.beam, "beam", 16, "decoder beam width B")
	fs.IntVar(&opt.k, "k", 8, "bits per spine segment")
	fs.IntVar(&opt.c, "c", 10, "coded bits per I/Q dimension")
	fs.IntVar(&opt.msgBits, "m", 24, "message length in bits")
	fs.IntVar(&opt.adcBits, "adc", 14, "receiver ADC bits per dimension")
	fs.Uint64Var(&opt.seed, "seed", 0, "override experiment seed (0 = default)")
	fs.StringVar(&opt.mapper, "mapper", "linear", "constellation mapper: linear|uniform|gaussian")
	fs.StringVar(&opt.schedule, "schedule", "striped", "transmission schedule: striped|sequential")
	fs.IntVar(&opt.workers, "workers", 0,
		"decoder worker goroutines per level expansion (0 = automatic; results are bit-identical at any setting)")
	fs.IntVar(&opt.trialWorkers, "trial-workers", 0,
		"trial-runner worker goroutines (0 = GOMAXPROCS; results are bit-identical at any setting)")
	fs.BoolVar(&opt.short, "short", false,
		"run the scenario's abbreviated configuration (CI smoke); scenarios that do not declare it ignore it")
	fs.StringVar(&opt.metric, "metric", "",
		"decoder cost metric: float64|int32 (empty = float64); scenarios that do not declare it ignore it")
	fs.StringVar(&opt.search, "search", "",
		"decoder search strategy: exact|gap[:G]|lookahead[:M]|approx (empty = exact); scenarios that do not declare it ignore it")
	fs.StringVar(&opt.impair, "impair", "",
		"impairment-pipeline spec, e.g. \"ge(good=16,bad=3)|spike(prob=0.02)|erase(p=0.01)\" or its JSON form; scenarios that do not declare it ignore it")
	fs.StringVar(&opt.cpuProfile, "cpuprofile", "", "write a CPU profile of the scenario run to this file")
	fs.StringVar(&opt.memProfile, "memprofile", "", "write a heap profile taken after the scenario run to this file")
	fs.BoolVar(&opt.csv, "csv", false, "emit CSV instead of aligned tables")
	fs.BoolVar(&opt.json, "json", false, "emit machine-readable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if opt.csv && opt.json {
		return fmt.Errorf("-csv and -json are mutually exclusive")
	}

	if opt.exp == "list" {
		return emitList(opt, out)
	}
	sc, ok := sim.Lookup(opt.exp)
	if !ok {
		if suggestions := sim.Suggest(opt.exp); len(suggestions) > 0 {
			return fmt.Errorf("unknown experiment %q (did you mean %q?); run -exp list",
				opt.exp, suggestions[0])
		}
		return fmt.Errorf("unknown experiment %q; run -exp list", opt.exp)
	}

	req, err := opt.request()
	if err != nil && scenarioConsumes(sc, "snr-min") {
		// Only scenarios that declare the sweep flags reject a bad sweep;
		// the rest ignore unrelated flag values, per the Scenario.Flags
		// contract (req.SNRs stays empty, selecting the scenario default).
		return err
	}
	stopProfile, err := sim.Profile(req)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := sc.Run(req)
	elapsed := time.Since(start)
	if perr := stopProfile(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	res.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if err := opt.sink().Emit(out, res); err != nil {
		return err
	}
	if !opt.json {
		fmt.Fprintf(out, "\n# completed %s in %v\n", opt.exp, elapsed.Round(time.Millisecond))
	}
	return nil
}

// scenarioConsumes reports whether the scenario declares the named flag.
func scenarioConsumes(sc *sim.Scenario, flag string) bool {
	for _, f := range sc.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// request resolves the parsed flags into the scenario request. A malformed
// sweep is returned as an error next to an otherwise-complete request (with
// no SNRs), so the caller can decide whether the scenario cares.
func (o options) request() (sim.Request, error) {
	snrs, err := experiments.SNRSweep(o.snrMin, o.snrMax, o.snrStep)
	return sim.Request{
		SNRs:         snrs,
		SNR:          o.snr,
		Trials:       o.trials,
		Frames:       o.frames,
		Beam:         o.beam,
		K:            o.k,
		C:            o.c,
		MessageBits:  o.msgBits,
		ADCBits:      o.adcBits,
		Seed:         o.seed,
		Mapper:       o.mapper,
		Schedule:     o.schedule,
		Workers:      o.workers,
		TrialWorkers: o.trialWorkers,
		Short:        o.short,
		Metric:       o.metric,
		Search:       o.search,
		Impair:       o.impair,
		CPUProfile:   o.cpuProfile,
		MemProfile:   o.memProfile,
	}, err
}

// sink selects the output renderer for the parsed flags.
func (o options) sink() sim.Sink {
	switch {
	case o.json:
		return sim.JSONSink{}
	case o.csv:
		return sim.CSVSink{}
	default:
		return sim.TextSink{}
	}
}

// emitList renders the scenario registry: as an aligned table (or CSV) with
// one row per scenario, or as JSON carrying names, descriptions, consumed
// flags and point schemas — the machine-readable form CI iterates.
func emitList(o options, out io.Writer) error {
	if o.json {
		type jsonScenario struct {
			Name        string   `json:"name"`
			Description string   `json:"description"`
			Flags       []string `json:"flags"`
			Columns     []string `json:"columns,omitempty"`
		}
		list := struct {
			Scenarios []jsonScenario `json:"scenarios"`
		}{}
		for _, sc := range sim.Scenarios() {
			cols := make([]string, len(sc.Schema))
			for i, c := range sc.Schema {
				cols[i] = c.Name
			}
			list.Scenarios = append(list.Scenarios, jsonScenario{
				Name:        sc.Name,
				Description: sc.Description,
				Flags:       sc.Flags,
				Columns:     cols,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(list)
	}
	tab := sim.NewTable("",
		sim.Col("scenario", "%s"),
		sim.Col("description", "%s"),
		sim.Col("flags", "%s"),
	)
	for _, sc := range sim.Scenarios() {
		tab.AddRow(sc.Name, sc.Description, strings.Join(sc.Flags, ","))
	}
	res := sim.NewResult("list")
	res.Add(tab)
	return o.sink().Emit(out, res)
}
