package main

import (
	"strings"
	"testing"
)

func TestRunBounds(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "bounds", "-snr-min", "0", "-snr-max", "20", "-snr-step", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"shannon", "finite_block", "theorem1", "completed bounds"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSpinalCSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "spinal", "-snr-min", "10", "-snr-max", "10", "-snr-step", "5",
		"-trials", "5", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snr_db,spinal_rate_bits_per_sym") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestRunBeamSweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "beam", "-snr", "10", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "beam_width") {
		t.Fatalf("beam table missing:\n%s", out.String())
	}
}

func TestRunFountain(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fountain"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "received_overhead") {
		t.Fatalf("fountain table missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunMultiFlow(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "multiflow", "-snr", "18", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flows", "goodput_bps", "fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("multiflow output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBatch(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "batch", "-snr", "12", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scalar_ms", "batch_ms", "batch_speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("batch output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-snr-step", "abc"}, &out); err == nil {
		t.Fatal("bad flag value accepted")
	}
	if err := run([]string{"-exp", "spinal", "-snr-min", "10", "-snr-max", "0"}, &out); err == nil {
		t.Fatal("inverted sweep accepted")
	}
}
