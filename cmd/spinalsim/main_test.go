package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunBounds(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "bounds", "-snr-min", "0", "-snr-max", "20", "-snr-step", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"shannon", "finite_block", "theorem1", "completed bounds"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunSpinalCSV(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "spinal", "-snr-min", "10", "-snr-max", "10", "-snr-step", "5",
		"-trials", "5", "-csv"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snr_db,spinal_rate_bits_per_sym") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestRunBeamSweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "beam", "-snr", "10", "-trials", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "beam_width") {
		t.Fatalf("beam table missing:\n%s", out.String())
	}
}

func TestRunFountain(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fountain"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "received_overhead") {
		t.Fatalf("fountain table missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestRunUnknownExperimentSuggests checks the near-match hint: a typo of a
// registered name must surface the intended scenario.
func TestRunUnknownExperimentSuggests(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "multifow"}, &out)
	if err == nil {
		t.Fatal("typoed experiment accepted")
	}
	if !strings.Contains(err.Error(), `"multiflow"`) {
		t.Fatalf("error %q does not suggest multiflow", err.Error())
	}
}

// TestRunList checks the registry enumeration, text and JSON forms.
func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure2", "spinal", "bsc", "multiflow", "batch", "parallel", "incremental", "description"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}

	var jsonOut strings.Builder
	if err := run([]string{"-exp", "list", "-json"}, &jsonOut); err != nil {
		t.Fatal(err)
	}
	var list struct {
		Scenarios []struct {
			Name        string   `json:"name"`
			Description string   `json:"description"`
			Flags       []string `json:"flags"`
			Columns     []string `json:"columns"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal([]byte(jsonOut.String()), &list); err != nil {
		t.Fatalf("list -json is not valid JSON: %v\n%s", err, jsonOut.String())
	}
	if len(list.Scenarios) < 15 {
		t.Fatalf("registry lists only %d scenarios", len(list.Scenarios))
	}
	for _, sc := range list.Scenarios {
		if sc.Name == "" || sc.Description == "" || len(sc.Flags) == 0 {
			t.Fatalf("scenario entry incomplete: %+v", sc)
		}
	}
}

// TestRunJSONResult checks the -json result shape on a fast scenario: valid
// JSON, the scenario name, a non-empty table with matching column count.
func TestRunJSONResult(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "bounds", "-snr-min", "0", "-snr-max", "10", "-snr-step", "5", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Scenario string `json:"scenario"`
		Tables   []struct {
			Columns []struct {
				Name string `json:"name"`
			} `json:"columns"`
			Rows [][]any `json:"rows"`
		} `json:"tables"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("-json emitted invalid JSON: %v\n%s", err, out.String())
	}
	if res.Scenario != "bounds" || len(res.Tables) != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("bounds at 3 SNRs produced %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row width %d != %d columns", len(row), len(tab.Columns))
		}
	}
	if res.ElapsedMS <= 0 {
		t.Fatal("elapsed_ms not recorded")
	}
	// JSON mode must emit nothing but the JSON document.
	if strings.Contains(out.String(), "# completed") {
		t.Fatal("JSON output polluted by the completion comment")
	}
}

func TestRunMultiFlow(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "multiflow", "-snr", "18", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flows", "goodput_bps", "fairness"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("multiflow output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunBatch(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "batch", "-snr", "12", "-trials", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scalar_ms", "batch_ms", "batch_speedup"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("batch output missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunHonorsZeroSNR pins a regression: -snr 0 selects the 0 dB operating
// point (the canonical low-SNR setting), not a silent fallback to 10 dB.
func TestRunHonorsZeroSNR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "beam", "-snr", "0", "-trials", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "at 0.0 dB") {
		t.Fatalf("-snr 0 not honored:\n%s", out.String())
	}
}

// TestRunIgnoresUnconsumedBadSweep pins the Scenario.Flags contract: a
// scenario that does not declare the sweep flags must not fail on a
// malformed sweep (scripts pass one shared flag set to many experiments).
func TestRunIgnoresUnconsumedBadSweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fountain", "-trials", "2", "-snr-min", "10", "-snr-max", "0"}, &out); err != nil {
		t.Fatalf("fountain rejected a sweep it does not consume: %v", err)
	}
	if !strings.Contains(out.String(), "received_overhead") {
		t.Fatalf("fountain output missing:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-snr-step", "abc"}, &out); err == nil {
		t.Fatal("bad flag value accepted")
	}
	if err := run([]string{"-exp", "spinal", "-snr-min", "10", "-snr-max", "0"}, &out); err == nil {
		t.Fatal("inverted sweep accepted")
	}
	if err := run([]string{"-exp", "bounds", "-csv", "-json"}, &out); err == nil {
		t.Fatal("-csv with -json accepted")
	}
}
