package spinal_test

import (
	"testing"

	"spinal"
)

func TestNewCodeDefaults(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 24})
	if err != nil {
		t.Fatal(err)
	}
	cfg := code.Config()
	if cfg.K != 8 || cfg.C != 10 || cfg.BeamWidth != 16 || cfg.Mapper != "linear" {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if code.MessageBytes() != 3 || code.NumSegments() != 3 {
		t.Fatalf("derived sizes wrong: %d bytes, %d segments", code.MessageBytes(), code.NumSegments())
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := spinal.NewCode(spinal.Config{}); err == nil {
		t.Error("missing MessageBits accepted")
	}
	if _, err := spinal.NewCode(spinal.Config{MessageBits: 24, K: 99}); err == nil {
		t.Error("absurd K accepted")
	}
	if _, err := spinal.NewCode(spinal.Config{MessageBits: 24, Mapper: "bogus"}); err == nil {
		t.Error("unknown mapper accepted")
	}
	if _, err := spinal.NewCode(spinal.Config{MessageBits: 24, BeamWidth: -1}); err == nil {
		t.Error("negative beam accepted")
	}
}

func TestEncodeDecodeNoiselessRoundTrip(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(64, 1)
	stream, err := code.EncodeStream(msg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	// Two full passes of noiseless symbols.
	for i := 0; i < 2*code.NumSegments(); i++ {
		sym := stream.Next()
		if err := dec.Observe(sym.Pos, sym.Value); err != nil {
			t.Fatal(err)
		}
	}
	if stream.Emitted() != 2*code.NumSegments() {
		t.Fatalf("Emitted = %d", stream.Emitted())
	}
	if dec.Observations() != 2*code.NumSegments() {
		t.Fatalf("Observations = %d", dec.Observations())
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !code.Equal(got, msg) {
		t.Fatal("noiseless round trip failed")
	}
}

func TestEncodeStreamRejectsBadMessage(t *testing.T) {
	code, _ := spinal.NewCode(spinal.Config{MessageBits: 24})
	if _, err := code.EncodeStream([]byte{1}); err == nil {
		t.Error("short message accepted")
	}
}

func TestStreamAt(t *testing.T) {
	code, _ := spinal.NewCode(spinal.Config{MessageBits: 24})
	msg := spinal.RandomMessage(24, 2)

	// At must agree with Next at every index over several passes, and must
	// not advance the stream.
	stream, _ := code.EncodeStream(msg)
	probe, _ := code.EncodeStream(msg)
	n := 4 * code.NumSegments()
	for i := 0; i < n; i++ {
		got, err := probe.At(i)
		if err != nil {
			t.Fatal(err)
		}
		if want := stream.Next(); got != want {
			t.Fatalf("At(%d) = %+v disagrees with Next() = %+v", i, got, want)
		}
	}
	if probe.Emitted() != 0 {
		t.Fatalf("At advanced the stream: Emitted = %d", probe.Emitted())
	}
	// Revisiting an already-emitted index (a retransmission) still agrees
	// with a fresh read of the same index.
	a, err := stream.At(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := probe.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("At(2) depends on stream progress")
	}
	if _, err := stream.At(-1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestNextBatchMatchesNext(t *testing.T) {
	// NextBatch must be bit-identical to repeated Next, across batch sizes
	// that straddle pass boundaries, and EncodePass must emit exactly the
	// next whole pass.
	code, _ := spinal.NewCode(spinal.Config{MessageBits: 64})
	msg := spinal.RandomMessage(64, 3)
	scalar, _ := code.EncodeStream(msg)
	batched, _ := code.EncodeStream(msg)

	for _, size := range []int{1, 3, code.NumSegments(), 2*code.NumSegments() + 1} {
		batch := batched.NextBatch(make([]spinal.Symbol, size))
		if len(batch) != size {
			t.Fatalf("NextBatch returned %d symbols, want %d", len(batch), size)
		}
		for i, got := range batch {
			if want := scalar.Next(); got != want {
				t.Fatalf("batch size %d: symbol %d = %+v, want %+v", size, i, got, want)
			}
		}
		if batched.Emitted() != scalar.Emitted() {
			t.Fatalf("Emitted diverged: %d vs %d", batched.Emitted(), scalar.Emitted())
		}
	}

	pass := batched.EncodePass(nil)
	if len(pass) != code.NumSegments() {
		t.Fatalf("EncodePass returned %d symbols, want %d", len(pass), code.NumSegments())
	}
	for i, got := range pass {
		if want := scalar.Next(); got != want {
			t.Fatalf("EncodePass symbol %d = %+v, want %+v", i, got, want)
		}
	}
	// EncodePass reuses a caller-provided buffer with enough capacity.
	reused := batched.EncodePass(pass)
	if &reused[0] != &pass[0] {
		t.Error("EncodePass did not reuse the provided buffer")
	}
	// An empty batch is a no-op.
	if out := batched.NextBatch(nil); len(out) != 0 {
		t.Fatal("NextBatch(nil) emitted symbols")
	}
}

// roundTrip decodes two noiseless passes of msg through dec and returns the
// decoded message.
func roundTrip(t *testing.T, code *spinal.Code, dec *spinal.Decoder, msg []byte) []byte {
	t.Helper()
	stream, err := code.EncodeStream(msg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*code.NumSegments(); i++ {
		sym := stream.Next()
		if err := dec.Observe(sym.Pos, sym.Value); err != nil {
			t.Fatal(err)
		}
	}
	got, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestDecoderPoolLeaseRoundTrip(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	pool := spinal.NewDecoderPool(4)
	// Several messages in sequence through the pool: every lease after the
	// first reuses the released decoder, and every decode is correct.
	for i := 0; i < 3; i++ {
		msg := spinal.RandomMessage(64, uint64(i+1))
		dec, err := pool.Lease(code)
		if err != nil {
			t.Fatal(err)
		}
		if got := roundTrip(t, code, dec, msg); !code.Equal(got, msg) {
			t.Fatalf("lease %d: pooled decoder failed the round trip", i)
		}
		dec.Release()
	}
	s := pool.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("pool did not reuse the decoder: %+v", s)
	}
	if s.Idle != 1 {
		t.Fatalf("released decoder not idle in the pool: %+v", s)
	}
	// Release on a non-pooled decoder is a harmless no-op.
	plain, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	plain.Release()
	msg := spinal.RandomMessage(64, 9)
	if got := roundTrip(t, code, plain, msg); !code.Equal(got, msg) {
		t.Fatal("plain decoder broken after no-op Release")
	}
}

func TestDecoderReleaseNoOpOnNonPooled(t *testing.T) {
	// Release on a decoder built by Code.NewDecoder must be a safe no-op —
	// before use, repeatedly, and interleaved with real work — pinning the
	// facade contract rather than relying on the internal nil-receiver guard
	// alone.
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	dec.Release()
	dec.Release() // idempotent
	msg := spinal.RandomMessage(64, 10)
	if got := roundTrip(t, code, dec, msg); !code.Equal(got, msg) {
		t.Fatal("decoder unusable after no-op Releases")
	}
	if dec.NodesExpanded() <= 0 {
		t.Fatal("NodesExpanded lost after no-op Release")
	}
	// Release after use, then reuse via Reset: still fully functional.
	dec.Release()
	dec.Reset()
	if dec.Observations() != 0 {
		t.Fatal("Reset after Release did not clear observations")
	}
	msg2 := spinal.RandomMessage(64, 11)
	if got := roundTrip(t, code, dec, msg2); !code.Equal(got, msg2) {
		t.Fatal("decoder broken after Release/Reset cycle")
	}
}

func TestDecoderResetReuse(t *testing.T) {
	// One Decoder instance, reused via Reset across several messages, must
	// behave exactly like a fresh decoder for each — this is the
	// allocation-free reuse path a high-throughput receiver runs.
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		msg := spinal.RandomMessage(64, uint64(round)+1)
		stream, err := code.EncodeStream(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2*code.NumSegments(); i++ {
			sym := stream.Next()
			if err := dec.Observe(sym.Pos, sym.Value); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if !code.Equal(got, msg) {
			t.Fatalf("round %d: reused decoder failed", round)
		}
		if dec.NodesExpanded() <= 0 {
			t.Fatalf("round %d: NodesExpanded not reported", round)
		}
		dec.Reset()
		if dec.Observations() != 0 {
			t.Fatal("Reset did not clear observations")
		}
	}
}

func TestDecoderIncrementalObserveDecodeLoop(t *testing.T) {
	// The natural rateless loop: observe one symbol, try a decode. Later
	// attempts must cost less tree work than the first full ones, and the
	// final answer must be the message.
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(64, 7)
	stream, err := code.EncodeStream(msg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	for i := 0; i < 3*code.NumSegments(); i++ {
		sym := stream.Next()
		if err := dec.Observe(sym.Pos, sym.Value); err != nil {
			t.Fatal(err)
		}
		got, err = dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !code.Equal(got, msg) {
		t.Fatal("interleaved observe/decode loop failed on a noiseless channel")
	}
}

func TestTransmitOverAWGN(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 96})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := spinal.AWGNChannel(15, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(96, 4)
	res, err := code.Transmit(msg, ch, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("transmission at 15 dB failed")
	}
	if !code.Equal(res.Decoded, msg) {
		t.Fatal("decoded message mismatch")
	}
	if res.Rate <= 1 || res.Rate > spinal.ShannonCapacity(15) {
		t.Fatalf("rate %v implausible for 15 dB", res.Rate)
	}
}

func TestTransmitWithCRCVerifier(t *testing.T) {
	payload := []byte("hello, rateless world")
	framed := spinal.AppendCRC32(payload)
	code, err := spinal.NewCode(spinal.Config{MessageBits: len(framed) * 8})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := spinal.AWGNChannel(18, 9)
	verify := func(decoded []byte) bool {
		_, ok := spinal.VerifyCRC32(decoded)
		return ok
	}
	res, err := code.Transmit(framed, ch, verify, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatal("CRC-verified transmission failed at 18 dB")
	}
	got, ok := spinal.VerifyCRC32(res.Decoded)
	if !ok || string(got) != string(payload) {
		t.Fatal("payload corrupted")
	}
}

func TestQuantizedChannelAndCapacities(t *testing.T) {
	ch, err := spinal.QuantizedAWGNChannel(20, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ch == nil {
		t.Fatal("nil channel")
	}
	if _, err := spinal.QuantizedAWGNChannel(20, 0, 1); err == nil {
		t.Error("invalid ADC bits accepted")
	}
	if c := spinal.ShannonCapacity(30); c < 9.9 || c > 10.0 {
		t.Errorf("capacity at 30 dB = %v", c)
	}
	if c := spinal.BSCCapacity(0.5); c != 0 {
		t.Errorf("BSC capacity at p=0.5 = %v", c)
	}
	bsc, err := spinal.BSCChannel(0.1, 1)
	if err != nil || bsc == nil {
		t.Fatal("BSC channel construction failed")
	}
	if _, err := spinal.BSCChannel(0.9, 1); err == nil {
		t.Error("invalid crossover accepted")
	}
	if _, err := spinal.AWGNChannel(-1000, 1); err != nil {
		// -1000 dB is tiny but still a positive linear SNR; must not error.
		t.Errorf("AWGNChannel(-1000 dB) unexpectedly failed: %v", err)
	}
}

func TestRandomMessageDeterminism(t *testing.T) {
	a := spinal.RandomMessage(128, 7)
	b := spinal.RandomMessage(128, 7)
	c := spinal.RandomMessage(128, 8)
	if string(a) != string(b) {
		t.Fatal("same seed produced different messages")
	}
	if string(a) == string(c) {
		t.Fatal("different seeds produced identical messages")
	}
}
