// Package spinal implements rateless spinal codes (Perry, Balakrishnan,
// Shah — "Rateless Spinal Codes", HotNets 2011): a hash-based rateless
// channel code whose encoder maps message bits directly to dense I/Q
// constellation points and whose practical decoder replays the encoder over a
// pruned tree of message prefixes.
//
// The package is a thin, stable facade over the internal implementation.
// The API is batch-first: the rateless loop of the paper is pass-structured
// (symbols arrive a striped pass at a time, not one at a time), channels are
// interfaces that corrupt whole blocks and carry their metadata, and the
// decoder folds in whole batches of observations per attempt. A typical
// round trip looks like:
//
//	code, _ := spinal.NewCode(spinal.Config{MessageBits: 256})
//	stream, _ := code.EncodeStream(message)
//	dec, _ := code.NewDecoder()
//	ch, _ := spinal.NewAWGN(12 /* dB */, 1 /* seed */)
//	batch := make([]spinal.Symbol, code.NumSegments())
//	poss := make([]spinal.SymbolPos, len(batch))
//	tx := make([]complex128, len(batch))
//	rx := make([]complex128, len(batch))
//	for !decoded {
//		stream.NextBatch(batch) // one striped pass
//		for i, s := range batch {
//			poss[i], tx[i] = s.Pos, s.Value
//		}
//		ch.CorruptBlock(rx, tx)
//		dec.ObserveBatch(poss, rx)
//		decoded = bytesEqual(dec.Decode(), message) // or use a CRC
//	}
//
// For simulations, Code.TransmitOver runs the whole rateless loop (encode,
// send through a Channel, decode, stop on a verifier) and reports the
// achieved rate; Code.Transmit is its closure-channel adapter kept for v0
// callers, along with the scalar Next/Observe methods. The cmd/spinalsim
// tool and the benchmarks in this module regenerate the paper's Figure 2 and
// related experiments on top of this API.
package spinal

import (
	"fmt"

	"spinal/internal/constellation"
	"spinal/internal/core"
)

// Config selects a spinal code. The zero value of every field picks the
// defaults used throughout the paper's evaluation (k=8, c=10, B=16, linear
// constellation mapping, punctured transmission schedule).
type Config struct {
	// MessageBits is the number of message bits per coded packet. Required.
	MessageBits int
	// K is the number of message bits hashed per spine segment (the paper's
	// k). Decoder complexity grows as 2^K; the unpunctured peak rate is K
	// bits/symbol. Default 8.
	K int
	// C is the number of coded bits mapped to each I and Q coordinate (the
	// paper's c). Default 10.
	C int
	// BeamWidth is the decoder's B: the number of candidate prefixes kept per
	// tree level. Default 16.
	BeamWidth int
	// Seed keys the hash family shared by encoder and decoder. Any value is
	// fine as long as both sides agree. Default is a fixed published constant.
	Seed uint64
	// Mapper selects the constellation mapping: "linear" (Eq. 3 of the
	// paper, default), "uniform", or "gaussian" (truncated Gaussian).
	Mapper string
	// Sequential disables the default striped (punctured) transmission
	// schedule — which interleaves spine values within each pass and lets
	// the code reach rates above K bits/symbol at high SNR — and forces the
	// plain sequential order instead, where every spine value is sent in
	// every pass. Default false (striped).
	Sequential bool
	// Workers is the number of goroutines the decoder shards each tree
	// level across. Zero selects runtime.GOMAXPROCS; 1 forces the serial
	// path. Decoding results are bit-identical at any setting — the knob
	// trades goroutines for wall-clock time only.
	Workers int
	// CostMetric selects the decoder's cost arithmetic: CostFloat64 (the
	// exact default) or CostInt32, which folds path costs on a fixed-point
	// grid with saturating adds — the arithmetic a hardware decoder would
	// ship — for a small, measured rate tariff (see the `quantcost`
	// scenario). Requires one of the built-in (table-backed) mappers.
	CostMetric CostMetric
	// Search selects the decoder's tree-search strategy: the exact beam
	// search (the zero value, bit-identical to the decoder before
	// approximate modes existed) or one of the approximate modes — gap
	// pruning, lookahead narrowing, or both stacked — which trade a small,
	// measured rate tariff for a large cut in expanded tree nodes (see the
	// `frontier` scenario). Parse CLI spellings with ParseSearchConfig.
	Search SearchConfig
}

// CostMetric selects the decoder's cost arithmetic; see Config.CostMetric.
type CostMetric = core.CostMetric

const (
	// CostFloat64 is the exact float64 metric (the default).
	CostFloat64 = core.CostFloat64
	// CostInt32 is the quantized fixed-point metric.
	CostInt32 = core.CostInt32
)

// ParseCostMetric resolves the CLI spelling of a cost metric ("float64" or
// "int32"; the empty string selects the default).
func ParseCostMetric(s string) (CostMetric, error) { return core.ParseCostMetric(s) }

// SearchConfig configures the decoder's tree search; see Config.Search. The
// zero value is the exact beam search.
type SearchConfig = core.SearchConfig

// SearchMode selects the decoder's tree-search strategy.
type SearchMode = core.SearchMode

const (
	// SearchExact is the full beam search of the paper (the default).
	SearchExact = core.SearchExact
	// SearchGap prunes candidates trailing the per-level best by more than
	// a configurable cost gap.
	SearchGap = core.SearchGap
	// SearchLookahead narrows each level's frontier to the top ExpandTop
	// nodes, half ranked by a half-level lookahead probe.
	SearchLookahead = core.SearchLookahead
	// SearchApprox stacks gap pruning, lookahead narrowing and prefix
	// commit.
	SearchApprox = core.SearchApprox
)

// ParseSearchConfig resolves the CLI spelling of a search strategy: "exact"
// (or empty), "gap[:G]", "lookahead[:M]", or "approx".
func ParseSearchConfig(s string) (SearchConfig, error) { return core.ParseSearchConfig(s) }

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.C == 0 {
		c.C = 10
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 16
	}
	if c.Seed == 0 {
		c.Seed = core.DefaultSeed
	}
	if c.Mapper == "" {
		c.Mapper = "linear"
	}
	return c
}

// Code is an instantiated spinal code: fixed parameters plus the shared hash
// seed. It is immutable and safe for concurrent use; encoders and decoders
// created from it are not.
type Code struct {
	cfg    Config
	params core.Params
}

// NewCode validates the configuration and returns a Code.
func NewCode(cfg Config) (*Code, error) {
	cfg = cfg.withDefaults()
	if cfg.MessageBits <= 0 {
		return nil, fmt.Errorf("spinal: Config.MessageBits must be positive")
	}
	mapper, err := constellation.ByName(cfg.Mapper, cfg.C)
	if err != nil {
		return nil, err
	}
	params := core.Params{
		K:           cfg.K,
		C:           cfg.C,
		MessageBits: cfg.MessageBits,
		Seed:        cfg.Seed,
		Mapper:      mapper,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cfg.BeamWidth < 1 {
		return nil, fmt.Errorf("spinal: beam width must be at least 1")
	}
	return &Code{cfg: cfg, params: params}, nil
}

// Config returns the configuration the code was built with (with defaults
// filled in).
func (c *Code) Config() Config { return c.cfg }

// MessageBytes returns the length in bytes of the packed messages this code
// encodes (MessageBits bits, LSB-first within each byte).
func (c *Code) MessageBytes() int { return core.MessageBytes(c.cfg.MessageBits) }

// NumSegments returns the number of spine values n/k.
func (c *Code) NumSegments() int { return c.params.NumSegments() }

// schedule builds the configured transmission schedule.
func (c *Code) schedule() (core.Schedule, error) {
	if c.cfg.Sequential {
		return core.NewSequentialSchedule(c.params.NumSegments())
	}
	return core.NewStripedSchedule(c.params.NumSegments(), 8)
}

// SymbolPos identifies a symbol within the rateless stream: which spine value
// it came from and in which pass.
type SymbolPos = core.SymbolPos

// Symbol is one transmitted constellation point together with its position.
type Symbol struct {
	Pos   SymbolPos
	Value complex128
}

// SymbolStream is the rateless encoder output for one message: an unbounded
// sequence of symbols in transmission order. NextBatch and EncodePass are
// the batch entry points the rateless loop is built around; Next and At
// remain for scalar callers.
type SymbolStream struct {
	enc   *core.Encoder
	sched core.Schedule
	next  int

	// batch scratch, reused across NextBatch calls
	posBuf []core.SymbolPos
	valBuf []complex128
}

// EncodeStream computes the spine of the message and returns its rateless
// symbol stream. The message must contain exactly MessageBits bits packed
// LSB-first (use MessageBytes for the slice length); unused padding bits in
// the final byte must be zero.
func (c *Code) EncodeStream(message []byte) (*SymbolStream, error) {
	enc, err := core.NewEncoder(c.params, message)
	if err != nil {
		return nil, err
	}
	sched, err := c.schedule()
	if err != nil {
		return nil, err
	}
	return &SymbolStream{enc: enc, sched: sched}, nil
}

// Next returns the next symbol of the stream. The stream never ends: spinal
// codes are rateless, so the caller decides when to stop transmitting.
func (s *SymbolStream) Next() Symbol {
	pos := s.sched.Pos(s.next)
	s.next++
	return Symbol{Pos: pos, Value: s.enc.SymbolAt(pos)}
}

// At returns the symbol at an arbitrary stream index without advancing the
// stream, which is useful for retransmissions.
func (s *SymbolStream) At(index int) (Symbol, error) {
	if index < 0 {
		return Symbol{}, fmt.Errorf("spinal: negative stream index %d", index)
	}
	pos := s.sched.Pos(index)
	return Symbol{Pos: pos, Value: s.enc.SymbolAt(pos)}, nil
}

// NextBatch fills dst with the next len(dst) symbols of the stream and
// advances it, returning dst. It is the batch counterpart of Next, backed by
// the encoder's vectorized range fill: one schedule fill and one encoder
// fill replace four calls per symbol. The symbols produced are identical to
// len(dst) successive Next calls.
func (s *SymbolStream) NextBatch(dst []Symbol) []Symbol {
	if len(dst) == 0 {
		return dst
	}
	if cap(s.posBuf) < len(dst) {
		s.posBuf = make([]core.SymbolPos, len(dst))
		s.valBuf = make([]complex128, len(dst))
	}
	poss := s.posBuf[:len(dst)]
	vals := s.valBuf[:len(dst)]
	core.PositionsInto(s.sched, s.next, poss)
	if err := s.enc.EncodeBatch(vals, poss); err != nil {
		// Schedule positions are valid by construction; a failure here is a
		// bug in the stream, not a caller error.
		panic(err)
	}
	for i := range dst {
		dst[i] = Symbol{Pos: poss[i], Value: vals[i]}
	}
	s.next += len(dst)
	return dst
}

// EncodePass returns the next whole pass of the stream — NumSegments
// symbols, one per spine value, in schedule order. It reuses dst when its
// capacity allows and allocates otherwise, so a loop can pass the previous
// result back in.
func (s *SymbolStream) EncodePass(dst []Symbol) []Symbol {
	n := s.enc.NumSegments()
	if cap(dst) < n {
		dst = make([]Symbol, n)
	}
	return s.NextBatch(dst[:n])
}

// Emitted returns how many symbols have been produced by Next and NextBatch
// so far.
func (s *SymbolStream) Emitted() int { return s.next }

// DecoderPool shares decoders across many concurrent messages — the serving
// pattern of a receiver handling many flows. Leasing a decoder from the pool
// returns a ready-to-use Decoder whose (expensive) incremental workspace and
// goroutine pool are recycled from earlier messages with the same code;
// Decoder.Release puts it back. Pooled decoders are bit-identical in
// behaviour to freshly constructed ones. The pool is safe for concurrent
// use; each leased Decoder still belongs to one goroutine at a time.
type DecoderPool struct {
	pool *core.DecoderPool
}

// PoolStats mirrors the pool counters for diagnostics.
type PoolStats = core.PoolStats

// NewDecoderPool returns a pool keeping up to capacity idle decoders across
// all codes. A capacity <= 0 disables caching (every lease builds fresh).
func NewDecoderPool(capacity int) *DecoderPool {
	return &DecoderPool{pool: core.NewDecoderPool(capacity)}
}

// Lease checks a decoder for the given code out of the pool, building one
// on a miss. Release the returned Decoder when its message is finished.
func (p *DecoderPool) Lease(c *Code) (*Decoder, error) {
	lease, err := p.pool.Lease(c.params, c.cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	// Always set parallelism: a cached decoder carries its previous
	// lessee's setting, and Workers == 0 must mean the fresh-decoder
	// default (GOMAXPROCS), not whatever came before. (Release resets the
	// cost metric and search strategy to their defaults, so only
	// non-default values need applying here.)
	if err := lease.Dec.SetCostMetric(c.cfg.CostMetric); err != nil {
		lease.Release()
		return nil, err
	}
	if err := lease.Dec.SetSearchConfig(c.cfg.Search); err != nil {
		lease.Release()
		return nil, err
	}
	lease.Dec.SetParallelism(c.cfg.Workers)
	return &Decoder{dec: lease.Dec, obs: lease.Obs, n: c.cfg.MessageBits, lease: lease}, nil
}

// Stats returns a snapshot of the pool counters.
func (p *DecoderPool) Stats() PoolStats { return p.pool.Stats() }

// Decoder accumulates received symbols for one message and produces the most
// likely message on demand using the B-bounded beam decoder of §3.2.
//
// Decoding is incremental: the decoder keeps the pruned tree of the previous
// Decode call and, on the next call, resumes from the first level whose
// observations changed instead of rebuilding from the root. Interleaving
// Observe and Decode — the natural rateless receive loop — is therefore
// cheap: the attempts of a whole transmission cost about one full decode in
// total rather than one per attempt, with bit-identical results. Reset
// reuses the decoder (and its allocations) for a new message.
type Decoder struct {
	dec   *core.BeamDecoder
	obs   *core.Observations
	n     int
	lease *core.LeasedDecoder // non-nil when leased from a DecoderPool
}

// NewDecoder returns an empty decoder for this code.
func (c *Code) NewDecoder() (*Decoder, error) {
	dec, err := core.NewBeamDecoder(c.params, c.cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	if err := dec.SetCostMetric(c.cfg.CostMetric); err != nil {
		return nil, err
	}
	if err := dec.SetSearchConfig(c.cfg.Search); err != nil {
		return nil, err
	}
	if c.cfg.Workers > 0 {
		dec.SetParallelism(c.cfg.Workers)
	}
	obs, err := core.NewObservations(c.params.NumSegments())
	if err != nil {
		return nil, err
	}
	return &Decoder{dec: dec, obs: obs, n: c.cfg.MessageBits}, nil
}

// SetParallelism overrides the number of worker goroutines used per decode
// (see Config.Workers). Values <= 0 restore the GOMAXPROCS default.
func (d *Decoder) SetParallelism(n int) { d.dec.SetParallelism(n) }

// Close releases the decoder's worker goroutines. The decoder remains
// usable; the pool is recreated on demand. Calling Close when a decoder is
// retired simply frees its helpers earlier than the garbage collector would.
func (d *Decoder) Close() { d.dec.Close() }

// Observe records the received value of the symbol at pos.
func (d *Decoder) Observe(pos SymbolPos, received complex128) error {
	return d.obs.Add(pos, received)
}

// ObserveBatch records one received value per position — a whole frame or
// pass at a time. The batch is validated before anything is recorded, and
// the incremental decoder sees a single dirty-level update for the whole
// batch instead of one per symbol. ObserveBatch followed by one Decode is
// bit-identical — same message, same cost, same NodesExpanded — to observing
// the same symbols one Observe call at a time.
func (d *Decoder) ObserveBatch(poss []SymbolPos, received []complex128) error {
	return d.obs.AddBatch(poss, received)
}

// Observations returns the number of symbols observed so far.
func (d *Decoder) Observations() int { return d.obs.Count() }

// Decode returns the most likely message under everything observed so far.
// Whether that message is correct is for the caller to verify (by CRC in a
// real system, by comparison in simulations); spinal decoding itself is
// rateless and can always be retried after more symbols arrive.
func (d *Decoder) Decode() ([]byte, error) {
	out, err := d.dec.Decode(d.obs)
	if err != nil {
		return nil, err
	}
	return out.Message, nil
}

// Reset discards all observations and the cached decode state so the decoder
// (and its buffers) can be reused for a new message of the same code.
func (d *Decoder) Reset() {
	d.obs.Reset()
}

// Release returns a pool-leased decoder to its DecoderPool; the decoder must
// not be used afterwards. On a decoder built by Code.NewDecoder it is a
// no-op.
func (d *Decoder) Release() {
	d.lease.Release()
}

// NodesExpanded reports the number of decoding-tree nodes freshly expanded by
// the most recent Decode call — the cost of the attempt in the paper's unit
// of one hash evaluation plus one cost computation. Thanks to incremental
// reuse this is typically far below the size of the full tree.
func (d *Decoder) NodesExpanded() int { return d.dec.NodesExpanded() }

// Equal reports whether two packed messages of this code's length are
// identical; it is a convenience for genie-style simulations.
func (c *Code) Equal(a, b []byte) bool {
	return core.EqualMessages(a, b, c.cfg.MessageBits)
}

// TransmitResult summarizes a rateless transmission simulated by Transmit.
type TransmitResult struct {
	// Decoded is the receiver's final message estimate.
	Decoded []byte
	// Delivered reports whether the verifier accepted the decode.
	Delivered bool
	// Symbols is the number of channel uses consumed.
	Symbols int
	// Rate is MessageBits/Symbols when delivered, zero otherwise.
	Rate float64
}

// sessionConfig assembles the core session configuration shared by all
// transmit entry points, with a genie verifier filled in when the caller
// passes none.
func (c *Code) sessionConfig(message []byte, verify func([]byte) bool, maxSymbols int) (core.SessionConfig, core.Verifier, error) {
	if verify == nil {
		verify = core.GenieVerifier(message, c.cfg.MessageBits)
	}
	sched, err := c.schedule()
	if err != nil {
		return core.SessionConfig{}, nil, err
	}
	return core.SessionConfig{
		Params:      c.params,
		BeamWidth:   c.cfg.BeamWidth,
		Schedule:    sched,
		MaxSymbols:  maxSymbols,
		Parallelism: c.cfg.Workers,
		CostMetric:  c.cfg.CostMetric,
		Search:      c.cfg.Search,
	}, core.Verifier(verify), nil
}

// transmitResult converts a core session transcript to the facade form.
func (c *Code) transmitResult(res *core.Result) *TransmitResult {
	return &TransmitResult{
		Decoded:   res.Decoded,
		Delivered: res.Success,
		Symbols:   res.ChannelUses,
		Rate:      res.Rate(c.cfg.MessageBits),
	}
}

// TransmitOver runs the full rateless loop for one message over a Channel:
// whole passes of symbols are generated in schedule order, corrupted block
// by block, folded into the decoder in batches, and decoded at the attempt
// cadence of the receiver policy; the loop stops as soon as verify accepts
// the decoded message or maxSymbols have been spent. A nil verify uses the
// genie rule (compare against the transmitted message), which is the paper's
// simulation methodology; a maxSymbols of zero selects a 400-pass budget.
func (c *Code) TransmitOver(message []byte, ch Channel, verify func([]byte) bool, maxSymbols int) (*TransmitResult, error) {
	sessionCfg, v, err := c.sessionConfig(message, verify, maxSymbols)
	if err != nil {
		return nil, err
	}
	res, err := core.RunChannelSession(sessionCfg, message, ch, v)
	if err != nil {
		return nil, err
	}
	return c.transmitResult(res), nil
}

// Transmit is the closure-channel adapter of TransmitOver, kept for v0
// callers (see AWGNChannel and friends, or CorruptFunc to adapt a Channel).
// Results are bit-identical to TransmitOver with the channel the closure
// wraps.
func (c *Code) Transmit(message []byte, ch func(complex128) complex128, verify func([]byte) bool, maxSymbols int) (*TransmitResult, error) {
	sessionCfg, v, err := c.sessionConfig(message, verify, maxSymbols)
	if err != nil {
		return nil, err
	}
	res, err := core.RunSymbolSession(sessionCfg, message, ch, v)
	if err != nil {
		return nil, err
	}
	return c.transmitResult(res), nil
}

// TransmitBitsOver is the binary-channel counterpart of TransmitOver: the
// encoder emits one coded bit per channel use (the paper's BSC variant) and
// the decoder uses the Hamming metric. The BitChannel must emit hard 0/1
// decisions (see NewBSC).
func (c *Code) TransmitBitsOver(message []byte, ch BitChannel, verify func([]byte) bool, maxUses int) (*TransmitResult, error) {
	sessionCfg, v, err := c.sessionConfig(message, verify, maxUses)
	if err != nil {
		return nil, err
	}
	res, err := core.RunBitChannelSession(sessionCfg, message, ch, v)
	if err != nil {
		return nil, err
	}
	return c.transmitResult(res), nil
}

// TransmitBits is the closure-channel adapter of TransmitBitsOver, kept for
// v0 callers. The channel function receives and returns bits with values 0
// or 1 (see BSCChannel).
func (c *Code) TransmitBits(message []byte, ch func(byte) byte, verify func([]byte) bool, maxUses int) (*TransmitResult, error) {
	sessionCfg, v, err := c.sessionConfig(message, verify, maxUses)
	if err != nil {
		return nil, err
	}
	res, err := core.RunBitSession(sessionCfg, message, ch, v)
	if err != nil {
		return nil, err
	}
	return c.transmitResult(res), nil
}
