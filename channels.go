package spinal

import (
	"fmt"
	"strings"

	"spinal/internal/channel"
	"spinal/internal/fading"
	"spinal/internal/impair"
	"spinal/internal/rng"
)

// This file defines the first-class channel API: channels are interfaces
// that corrupt whole blocks of symbols and expose their metadata, rather
// than bare closures. The closure-returning helpers in channel.go remain as
// thin adapters over these constructors for existing callers.

// Channel is a symbol channel: a model of everything between the encoder's
// constellation points and the decoder's observations. Channels are
// deliberately block-oriented — the rateless loop of the paper is
// pass-structured, with symbols arriving a striped pass at a time — and
// stateful: a time-varying channel advances its fading or noise process by
// one step per symbol, in slice order, so a block call is indistinguishable
// from the equivalent sequence of per-symbol uses.
//
// Channels are not safe for concurrent use; each transmission drives its own.
type Channel interface {
	// CorruptBlock writes the received value of each transmitted symbol
	// src[i] into dst[i]. dst and src must have equal length and may alias
	// (in-place corruption is allowed).
	CorruptBlock(dst, src []complex128)
	// NoiseVariance reports the total complex noise variance the channel
	// applies around its current state: the fixed sigma² of a static AWGN
	// channel, the average for block fading, and the instantaneous value the
	// trace dictates for a time-varying channel.
	NoiseVariance() float64
	// Name identifies the channel in experiment output.
	Name() string
}

// BitChannel is the binary counterpart of Channel for codes transmitted one
// coded bit per channel use (the paper's BSC variant): dst[i] receives the
// possibly corrupted coded bit src[i].
type BitChannel interface {
	// CorruptBits writes the received value of each transmitted bit src[i]
	// into dst[i]. dst and src must have equal length and may alias.
	CorruptBits(dst, src []byte)
	// Name identifies the channel in experiment output.
	Name() string
}

// Erased is the value a binary erasure channel reports for an erased bit.
const Erased = channel.Erased

// symbolChannel wraps an internal block channel with facade metadata.
type symbolChannel struct {
	blk    channel.BlockChannel
	sigma2 func() float64
	name   string
}

func (c *symbolChannel) CorruptBlock(dst, src []complex128) { c.blk.CorruptBlock(dst, src) }
func (c *symbolChannel) NoiseVariance() float64             { return c.sigma2() }
func (c *symbolChannel) Name() string                       { return c.name }

// bitChannel wraps an internal bit channel with facade metadata.
type bitChannel struct {
	corrupt func(dst, src []byte)
	name    string
}

func (c *bitChannel) CorruptBits(dst, src []byte) { c.corrupt(dst, src) }
func (c *bitChannel) Name() string                { return c.name }

// NewAWGN returns an additive white Gaussian noise channel at the given SNR
// (dB, relative to the unit-energy constellation), with a deterministic noise
// stream derived from seed.
func NewAWGN(snrDB float64, seed uint64) (Channel, error) {
	ch, err := channel.NewAWGNdB(snrDB, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &symbolChannel{
		blk:    ch,
		sigma2: ch.Sigma2,
		name:   fmt.Sprintf("awgn(%.1fdB)", snrDB),
	}, nil
}

// NewQuantizedAWGN returns the receive path of the paper's evaluation: AWGN
// followed by an ADC quantizing each dimension to adcBits.
func NewQuantizedAWGN(snrDB float64, adcBits int, seed uint64) (Channel, error) {
	ch, err := channel.NewQuantizedAWGN(snrDB, adcBits, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &symbolChannel{
		blk:    ch,
		sigma2: ch.Sigma2,
		name:   fmt.Sprintf("quantized-awgn(%.1fdB,%dbit)", snrDB, adcBits),
	}, nil
}

// NewRayleigh returns a Rayleigh block-fading channel: within each block of
// blockLen symbols the complex gain is constant, across blocks it is drawn
// independently, and the receiver is coherent (observations are
// gain-compensated while the effective SNR varies per block). This is the
// fast-fading regime the paper's ratelessness is designed for.
// NoiseVariance reports the additive variance at the average SNR.
func NewRayleigh(avgSNRdB float64, blockLen int, seed uint64) (Channel, error) {
	ch, err := channel.NewRayleighBlock(avgSNRdB, blockLen, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &symbolChannel{
		blk:    ch,
		sigma2: ch.Sigma2,
		name:   fmt.Sprintf("rayleigh(avg %.1fdB, Tc=%d)", avgSNRdB, blockLen),
	}, nil
}

// NewBSC returns a binary symmetric channel with crossover probability p, for
// the one-coded-bit-per-use variant of the code (see Code.TransmitBitsOver).
func NewBSC(p float64, seed uint64) (BitChannel, error) {
	ch, err := channel.NewBSC(p, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &bitChannel{
		corrupt: ch.CorruptBits,
		name:    fmt.Sprintf("bsc(p=%.3f)", p),
	}, nil
}

// NewBEC returns a binary erasure channel with erasure probability p; erased
// positions carry the value Erased. The spinal bit decoder consumes hard 0/1
// decisions only, so a BEC is not usable with TransmitBits directly — it is
// exposed for fountain-style experiments and custom receive pipelines that
// handle erasures themselves.
func NewBEC(p float64, seed uint64) (BitChannel, error) {
	ch, err := channel.NewBEC(p, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return &bitChannel{
		corrupt: ch.CorruptBits,
		name:    fmt.Sprintf("bec(p=%.3f)", p),
	}, nil
}

// Trace reports the instantaneous channel SNR (in dB) at a given symbol
// index — the time-varying channel quality a rateless code absorbs without
// ever estimating it. Traces are deterministic functions of their seed, so
// the same trace can be replayed for every scheme under comparison.
type Trace interface {
	// SNRdB returns the channel SNR for the symbol at index i (i >= 0).
	SNRdB(i int) float64
	// Name identifies the trace in experiment output.
	Name() string
}

// ConstantTrace returns a trace with a fixed SNR, the degenerate case used
// for calibration.
func ConstantTrace(leveldB float64) Trace {
	return fading.Constant{Level: leveldB}
}

// GilbertElliottTrace returns a two-state Markov trace alternating between a
// good and a bad SNR with geometric dwell times (in symbols) — a standard
// model for shadowing and bursty interference.
func GilbertElliottTrace(goodSNRdB, badSNRdB float64, dwellGood, dwellBad int, seed uint64) (Trace, error) {
	return fading.NewGilbertElliott(goodSNRdB, badSNRdB, dwellGood, dwellBad, seed)
}

// RayleighTrace returns a Rayleigh block-fading SNR trace: the average SNR
// scaled by an exponentially distributed power gain redrawn every coherence
// interval (in symbols).
func RayleighTrace(avgSNRdB float64, coherence int, seed uint64) (Trace, error) {
	return fading.NewRayleighBlock(avgSNRdB, coherence, seed)
}

// WalkTrace returns a bounded random walk in dB, modelling slow drift (a
// user walking away from an access point).
func WalkTrace(minDB, maxDB, stepdB float64, seed uint64) (Trace, error) {
	return fading.NewWalk(minDB, maxDB, stepdB, seed)
}

// DopplerTrace returns a Jakes-model Doppler fading SNR trace: the average
// SNR modulated by a sum of sinusoids at normalized Doppler frequency fd
// (cycles per symbol, 0 < fd <= 0.5) — correlated fast fading, in contrast
// to RayleighTrace's independent blocks.
func DopplerTrace(avgSNRdB, fd float64, seed uint64) (Trace, error) {
	return fading.NewDoppler(avgSNRdB, fd, seed)
}

// NewImpairmentPipeline compiles a declarative impairment spec — either the
// compact string grammar ("ge(good=16,bad=3)|spike(prob=0.02)|erase(p=0.01)")
// or its JSON form — into a Channel. Every stage's randomness derives from
// the pipeline seed, its name and its occurrence, so the same spec and seed
// reproduce byte-identical corruption anywhere, and a stage keeps its fault
// schedule when the stages around it change.
func NewImpairmentPipeline(spec string, seed uint64) (Channel, error) {
	s, err := impair.ParseAny(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(seed)
}

// composed chains channels: symbols pass through each in order, variances
// add, names join with '+'.
type composed struct {
	chs []Channel
}

func (c *composed) CorruptBlock(dst, src []complex128) {
	c.chs[0].CorruptBlock(dst, src)
	for _, ch := range c.chs[1:] {
		ch.CorruptBlock(dst, dst)
	}
}

func (c *composed) NoiseVariance() float64 {
	var sum float64
	for _, ch := range c.chs {
		sum += ch.NoiseVariance()
	}
	return sum
}

func (c *composed) Name() string {
	names := make([]string, len(c.chs))
	for i, ch := range c.chs {
		names[i] = ch.Name()
	}
	return strings.Join(names, "+")
}

// Compose chains channels into one: each transmitted block passes through
// every channel in order, NoiseVariance sums the parts, and the name joins
// theirs with '+'. Use it to stack hand-built channels the spec grammar
// cannot express (e.g. a quantized ADC front end over a trace channel).
func Compose(stages ...Channel) (Channel, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("spinal: Compose needs at least one channel")
	}
	if len(stages) == 1 {
		return stages[0], nil
	}
	return &composed{chs: stages}, nil
}

// traceChannel drives AWGN whose SNR follows a trace symbol by symbol.
type traceChannel struct {
	ch    *fading.Channel
	trace Trace
}

func (c *traceChannel) CorruptBlock(dst, src []complex128) { c.ch.CorruptBlock(dst, src) }
func (c *traceChannel) NoiseVariance() float64             { return c.ch.Sigma2() }
func (c *traceChannel) Name() string                       { return c.trace.Name() }

// NewTraceChannel returns a time-varying channel: symbol i experiences AWGN
// at trace.SNRdB(i), with a noise stream derived from seed. NoiseVariance
// reports the instantaneous variance the trace dictates for the next symbol.
func NewTraceChannel(trace Trace, seed uint64) (Channel, error) {
	ch, err := fading.NewChannel(trace, seed)
	if err != nil {
		return nil, err
	}
	return &traceChannel{ch: ch, trace: trace}, nil
}

// CorruptFunc adapts a Channel to the scalar closure form the v0 API used,
// for code that still corrupts one symbol at a time. The closure consumes the
// channel's noise stream exactly as block calls would, one symbol per call.
func CorruptFunc(ch Channel) func(complex128) complex128 {
	var buf [1]complex128
	return func(x complex128) complex128 {
		buf[0] = x
		ch.CorruptBlock(buf[:], buf[:])
		return buf[0]
	}
}

// CorruptBitFunc is the binary counterpart of CorruptFunc.
func CorruptBitFunc(ch BitChannel) func(byte) byte {
	var buf [1]byte
	return func(b byte) byte {
		buf[0] = b
		ch.CorruptBits(buf[:], buf[:])
		return buf[0]
	}
}

// NoiseVariance returns the total complex noise variance corresponding to an
// SNR in dB for unit-energy signalling — the sigma² a Channel at that SNR
// reports.
func NoiseVariance(snrDB float64) float64 {
	return channel.NoiseVariance(snrDB)
}
