package spinal

import (
	"spinal/internal/capacity"
	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/crc"
	"spinal/internal/rng"
)

// This file exposes the channel models and small utilities a library user
// needs to run spinal codes end to end without reaching into internal
// packages: AWGN / quantized-AWGN / BSC channel functions, random message
// generation, CRC framing and capacity references.

// AWGNChannel returns a channel function that adds complex white Gaussian
// noise at the given SNR (dB, relative to the unit-energy constellation),
// using a deterministic noise stream derived from seed.
func AWGNChannel(snrDB float64, seed uint64) (func(complex128) complex128, error) {
	ch, err := channel.NewAWGNdB(snrDB, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return ch.Corrupt, nil
}

// QuantizedAWGNChannel returns the receive path used in the paper's
// evaluation: AWGN followed by an ADC quantizing each dimension to adcBits.
func QuantizedAWGNChannel(snrDB float64, adcBits int, seed uint64) (func(complex128) complex128, error) {
	ch, err := channel.NewQuantizedAWGN(snrDB, adcBits, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return ch.Corrupt, nil
}

// BSCChannel returns a bit-flipping channel function with crossover
// probability p, for the binary-channel variant of the code.
func BSCChannel(p float64, seed uint64) (func(byte) byte, error) {
	ch, err := channel.NewBSC(p, rng.New(seed))
	if err != nil {
		return nil, err
	}
	return ch.CorruptBit, nil
}

// RandomMessage returns a uniformly random packed message of n bits, suitable
// as input to Code.EncodeStream for a code with MessageBits == n.
func RandomMessage(n int, seed uint64) []byte {
	return core.RandomMessage(rng.New(seed), n)
}

// AppendCRC32 appends a CRC-32 to a payload so the receiver can detect
// successful decoding without a genie; VerifyCRC32 checks and strips it.
func AppendCRC32(payload []byte) []byte {
	return crc.Append32(append([]byte(nil), payload...))
}

// VerifyCRC32 checks a buffer produced by AppendCRC32, returning the payload
// and whether the checksum matched.
func VerifyCRC32(buf []byte) ([]byte, bool) {
	return crc.Verify32(buf)
}

// ShannonCapacity returns the AWGN channel capacity in bits per symbol at the
// given SNR in dB, the reference curve of Figure 2.
func ShannonCapacity(snrDB float64) float64 {
	return capacity.AWGNdB(snrDB)
}

// BSCCapacity returns the capacity of a binary symmetric channel with
// crossover probability p.
func BSCCapacity(p float64) float64 {
	return capacity.BSC(p)
}
