package spinal

import (
	"spinal/internal/capacity"
	"spinal/internal/core"
	"spinal/internal/crc"
	"spinal/internal/rng"
)

// This file keeps the v0 closure-returning channel helpers and the small
// utilities a library user needs to run spinal codes end to end: random
// message generation, CRC framing and capacity references. The closure
// helpers are thin adapters over the Channel constructors in channels.go —
// new code should use the interfaces directly (see the migration table in
// the README), but everything written against the closures keeps compiling
// and produces bit-identical noise streams.

// AWGNChannel returns a channel function that adds complex white Gaussian
// noise at the given SNR (dB, relative to the unit-energy constellation),
// using a deterministic noise stream derived from seed. It is the scalar
// adapter of NewAWGN.
func AWGNChannel(snrDB float64, seed uint64) (func(complex128) complex128, error) {
	ch, err := NewAWGN(snrDB, seed)
	if err != nil {
		return nil, err
	}
	return CorruptFunc(ch), nil
}

// QuantizedAWGNChannel returns the receive path used in the paper's
// evaluation: AWGN followed by an ADC quantizing each dimension to adcBits.
// It is the scalar adapter of NewQuantizedAWGN.
func QuantizedAWGNChannel(snrDB float64, adcBits int, seed uint64) (func(complex128) complex128, error) {
	ch, err := NewQuantizedAWGN(snrDB, adcBits, seed)
	if err != nil {
		return nil, err
	}
	return CorruptFunc(ch), nil
}

// BSCChannel returns a bit-flipping channel function with crossover
// probability p, for the binary-channel variant of the code. It is the
// scalar adapter of NewBSC.
func BSCChannel(p float64, seed uint64) (func(byte) byte, error) {
	ch, err := NewBSC(p, seed)
	if err != nil {
		return nil, err
	}
	return CorruptBitFunc(ch), nil
}

// RandomMessage returns a uniformly random packed message of n bits, suitable
// as input to Code.EncodeStream for a code with MessageBits == n.
func RandomMessage(n int, seed uint64) []byte {
	return core.RandomMessage(rng.New(seed), n)
}

// AppendCRC32 appends a CRC-32 to a payload so the receiver can detect
// successful decoding without a genie; VerifyCRC32 checks and strips it.
func AppendCRC32(payload []byte) []byte {
	return crc.Append32(append([]byte(nil), payload...))
}

// VerifyCRC32 checks a buffer produced by AppendCRC32, returning the payload
// and whether the checksum matched.
func VerifyCRC32(buf []byte) ([]byte, bool) {
	return crc.Verify32(buf)
}

// ShannonCapacity returns the AWGN channel capacity in bits per symbol at the
// given SNR in dB, the reference curve of Figure 2.
func ShannonCapacity(snrDB float64) float64 {
	return capacity.AWGNdB(snrDB)
}

// BSCCapacity returns the capacity of a binary symmetric channel with
// crossover probability p.
func BSCCapacity(p float64) float64 {
	return capacity.BSC(p)
}
