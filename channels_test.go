package spinal_test

import (
	"math"
	"testing"

	"spinal"
)

func TestChannelConstructorsAndMetadata(t *testing.T) {
	awgn, err := spinal.NewAWGN(12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if awgn.Name() == "" {
		t.Error("AWGN channel has no name")
	}
	if got, want := awgn.NoiseVariance(), spinal.NoiseVariance(12); math.Abs(got-want) > 1e-12 {
		t.Errorf("AWGN NoiseVariance = %v, want %v", got, want)
	}
	q, err := spinal.NewQuantizedAWGN(12, 14, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.NoiseVariance()-awgn.NoiseVariance()) > 1e-12 {
		t.Error("quantized AWGN reports a different noise variance than plain AWGN")
	}
	ray, err := spinal.NewRayleigh(10, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ray.NoiseVariance() <= 0 || ray.Name() == "" {
		t.Error("Rayleigh channel metadata missing")
	}
	bsc, err := spinal.NewBSC(0.1, 3)
	if err != nil || bsc.Name() == "" {
		t.Fatalf("BSC constructor failed: %v", err)
	}
	bec, err := spinal.NewBEC(0.3, 4)
	if err != nil || bec.Name() == "" {
		t.Fatalf("BEC constructor failed: %v", err)
	}

	for name, build := range map[string]func() error{
		"quantized adc=0":  func() error { _, err := spinal.NewQuantizedAWGN(12, 0, 1); return err },
		"bsc p>0.5":        func() error { _, err := spinal.NewBSC(0.9, 1); return err },
		"bec p>=1":         func() error { _, err := spinal.NewBEC(1, 1); return err },
		"rayleigh block=0": func() error { _, err := spinal.NewRayleigh(10, 0, 1); return err },
		"trace nil":        func() error { _, err := spinal.NewTraceChannel(nil, 1); return err },
		"gilbert dwell=0":  func() error { _, err := spinal.GilbertElliottTrace(20, 5, 0, 10, 1); return err },
		"walk empty range": func() error { _, err := spinal.WalkTrace(10, 10, 1, 1); return err },
		"rayleigh tc=0":    func() error { _, err := spinal.RayleighTrace(10, 0, 1); return err },
	} {
		if build() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestTraceChannelFollowsTrace(t *testing.T) {
	trace := spinal.ConstantTrace(17)
	if trace.SNRdB(0) != 17 || trace.SNRdB(1000) != 17 {
		t.Fatal("constant trace not constant")
	}
	ch, err := spinal.NewTraceChannel(trace, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.NoiseVariance(), spinal.NoiseVariance(17); math.Abs(got-want) > 1e-12 {
		t.Fatalf("trace channel NoiseVariance = %v, want %v", got, want)
	}
	ge, err := spinal.GilbertElliottTrace(22, 4, 100, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if s := ge.SNRdB(i); s != 22 && s != 4 {
			t.Fatalf("Gilbert-Elliott trace emitted SNR %v outside its two states", s)
		}
	}
}

// TestCorruptFuncMatchesBlock pins the scalar adapter against the block path:
// the closure must consume the channel's noise stream exactly as block calls
// would, so legacy scalar callers and batch callers see identical channels.
func TestCorruptFuncMatchesBlock(t *testing.T) {
	xs := make([]complex128, 64)
	for i := range xs {
		xs[i] = complex(float64(i%7)*0.2-0.6, float64(i%5)*0.25-0.5)
	}
	blockCh, err := spinal.NewAWGN(9, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(xs))
	blockCh.CorruptBlock(want, xs)

	scalarCh, err := spinal.NewAWGN(9, 11)
	if err != nil {
		t.Fatal(err)
	}
	f := spinal.CorruptFunc(scalarCh)
	for i, x := range xs {
		if got := f(x); got != want[i] {
			t.Fatalf("scalar adapter diverged from block path at symbol %d", i)
		}
	}

	blockBits, err := spinal.NewBSC(0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]byte, 64)
	for i := range tx {
		tx[i] = byte(i & 1)
	}
	wantBits := make([]byte, len(tx))
	blockBits.CorruptBits(wantBits, tx)
	scalarBits, err := spinal.NewBSC(0.3, 13)
	if err != nil {
		t.Fatal(err)
	}
	fb := spinal.CorruptBitFunc(scalarBits)
	for i, b := range tx {
		if got := fb(b); got != wantBits[i] {
			t.Fatalf("scalar bit adapter diverged at bit %d", i)
		}
	}
}

func TestBECMarksErasures(t *testing.T) {
	bec, err := spinal.NewBEC(0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]byte, 2000)
	for i := range tx {
		tx[i] = byte(i & 1)
	}
	rx := make([]byte, len(tx))
	bec.CorruptBits(rx, tx)
	erased := 0
	for i, v := range rx {
		switch v {
		case spinal.Erased:
			erased++
		case tx[i]:
		default:
			t.Fatalf("BEC altered bit %d from %d to %d", i, tx[i], v)
		}
	}
	if erased < 800 || erased > 1200 {
		t.Fatalf("BEC at p=0.5 erased %d of %d bits", erased, len(tx))
	}
}

// TestImpairmentPipelineFacade pins the declarative channel entry point:
// the same spec and seed reproduce byte-identical corruption in both the
// string and JSON forms, the code delivers end to end over a stacked
// pipeline, and malformed specs are rejected.
func TestImpairmentPipelineFacade(t *testing.T) {
	const spec = "ge(good=20,bad=8,dgood=300,dbad=80)|spike(prob=0.02,dwell=15,db=-3)"
	xs := make([]complex128, 128)
	for i := range xs {
		xs[i] = complex(float64(i%5)*0.3-0.6, float64(i%3)*0.4-0.4)
	}
	a, err := spinal.NewImpairmentPipeline(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() == "" || a.NoiseVariance() <= 0 {
		t.Fatalf("pipeline metadata missing: name=%q sigma2=%v", a.Name(), a.NoiseVariance())
	}
	b, err := spinal.NewImpairmentPipeline(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	const jsonSpec = `{"stages":[` +
		`{"stage":"ge","args":{"good":20,"bad":8,"dgood":300,"dbad":80}},` +
		`{"stage":"spike","args":{"prob":0.02,"dwell":15,"db":-3}}]}`
	c, err := spinal.NewImpairmentPipeline(jsonSpec, 7)
	if err != nil {
		t.Fatal(err)
	}
	ra := make([]complex128, len(xs))
	rb := make([]complex128, len(xs))
	rc := make([]complex128, len(xs))
	a.CorruptBlock(ra, xs)
	b.CorruptBlock(rb, xs)
	c.CorruptBlock(rc, xs)
	for i := range xs {
		if ra[i] != rb[i] {
			t.Fatalf("same spec+seed diverged at symbol %d", i)
		}
		if ra[i] != rc[i] {
			t.Fatalf("JSON form diverged from spec string at symbol %d", i)
		}
	}

	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(64, 71)
	ch, err := spinal.NewImpairmentPipeline(spec, 72)
	if err != nil {
		t.Fatal(err)
	}
	res, err := code.TransmitOver(msg, ch, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || !code.Equal(res.Decoded, msg) {
		t.Fatal("rateless transmission over the impairment pipeline failed")
	}

	for _, bad := range []string{"nosuch", "awgn(snr=10,snr=11)", "ge(|", "awgn(frob=1)"} {
		if _, err := spinal.NewImpairmentPipeline(bad, 1); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// TestComposeChannels pins the Channel combinator: composition applies the
// parts in order with their own noise streams, sums their variances and
// joins their names.
func TestComposeChannels(t *testing.T) {
	if _, err := spinal.Compose(); err == nil {
		t.Error("empty composition accepted")
	}
	single, err := spinal.NewAWGN(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := spinal.Compose(single)
	if err != nil || got != single {
		t.Fatalf("one-channel composition should be the channel itself (err=%v)", err)
	}

	mk := func() (spinal.Channel, spinal.Channel) {
		awgn, err := spinal.NewAWGN(14, 81)
		if err != nil {
			t.Fatal(err)
		}
		ray, err := spinal.NewRayleigh(20, 16, 82)
		if err != nil {
			t.Fatal(err)
		}
		return awgn, ray
	}
	a1, r1 := mk()
	comp, err := spinal.Compose(a1, r1)
	if err != nil {
		t.Fatal(err)
	}
	if want := a1.Name() + "+" + r1.Name(); comp.Name() != want {
		t.Errorf("composed name %q, want %q", comp.Name(), want)
	}
	if want := a1.NoiseVariance() + r1.NoiseVariance(); math.Abs(comp.NoiseVariance()-want) > 1e-12 {
		t.Errorf("composed variance %v, want %v", comp.NoiseVariance(), want)
	}
	xs := make([]complex128, 96)
	for i := range xs {
		xs[i] = complex(float64(i%4)*0.4-0.6, float64(i%6)*0.2-0.5)
	}
	viaComp := make([]complex128, len(xs))
	comp.CorruptBlock(viaComp, xs)
	// Identically seeded parts applied by hand must match.
	a2, r2 := mk()
	manual := make([]complex128, len(xs))
	a2.CorruptBlock(manual, xs)
	r2.CorruptBlock(manual, manual)
	for i := range xs {
		if viaComp[i] != manual[i] {
			t.Fatalf("composition diverged from sequential application at symbol %d", i)
		}
	}
}

// TestDopplerTrace exercises the Jakes-model trace: deterministic, finite,
// varying, and rejecting out-of-range Doppler frequencies.
func TestDopplerTrace(t *testing.T) {
	tr, err := spinal.DopplerTrace(18, 0.02, 91)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() == "" {
		t.Error("Doppler trace has no name")
	}
	varied := false
	for i := 0; i < 256; i++ {
		s := tr.SNRdB(i)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("Doppler trace SNR not finite at %d: %v", i, s)
		}
		if s != tr.SNRdB(0) {
			varied = true
		}
		if s != tr.SNRdB(i) {
			t.Fatalf("Doppler trace not deterministic at %d", i)
		}
	}
	if !varied {
		t.Error("Doppler trace never varied over 256 symbols")
	}
	ch, err := spinal.NewTraceChannel(tr, 92)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NoiseVariance() <= 0 {
		t.Error("Doppler trace channel variance not positive")
	}
	for _, fd := range []float64{0, -0.1, 0.6} {
		if _, err := spinal.DopplerTrace(18, fd, 1); err == nil {
			t.Errorf("fd=%v accepted", fd)
		}
	}
}

// TestObserveBatchMatchesObserve is the facade half of the scalar/batch
// equivalence acceptance: ObserveBatch followed by one Decode must yield a
// bit-identical message and identical NodesExpanded to the per-symbol
// Observe loop, on a noisy AWGN stream.
func TestObserveBatchMatchesObserve(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 96})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(96, 31)
	stream, err := code.EncodeStream(msg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := spinal.NewAWGN(10, 32)
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * code.NumSegments()
	batch := stream.NextBatch(make([]spinal.Symbol, n))
	poss := make([]spinal.SymbolPos, n)
	tx := make([]complex128, n)
	for i, s := range batch {
		poss[i], tx[i] = s.Pos, s.Value
	}
	rx := make([]complex128, n)
	ch.CorruptBlock(rx, tx)

	scalarDec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	for i := range poss {
		if err := scalarDec.Observe(poss[i], rx[i]); err != nil {
			t.Fatal(err)
		}
	}
	batchDec, err := code.NewDecoder()
	if err != nil {
		t.Fatal(err)
	}
	if err := batchDec.ObserveBatch(poss, rx); err != nil {
		t.Fatal(err)
	}
	if scalarDec.Observations() != batchDec.Observations() {
		t.Fatalf("observation counts diverged: %d vs %d", scalarDec.Observations(), batchDec.Observations())
	}
	a, err := scalarDec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := batchDec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !code.Equal(a, b) {
		t.Fatal("scalar and batch observation paths decoded different messages")
	}
	if scalarDec.NodesExpanded() != batchDec.NodesExpanded() {
		t.Fatalf("NodesExpanded diverged: %d vs %d", scalarDec.NodesExpanded(), batchDec.NodesExpanded())
	}
	// Validation is all-or-nothing.
	if err := batchDec.ObserveBatch(poss[:2], rx[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	before := batchDec.Observations()
	badPos := []spinal.SymbolPos{{Spine: -1, Pass: 0}}
	if err := batchDec.ObserveBatch(badPos, rx[:1]); err == nil {
		t.Error("invalid position accepted")
	}
	if batchDec.Observations() != before {
		t.Error("failed batch mutated the decoder's observations")
	}
}

// TestTransmitOverMatchesTransmit pins the closure adapters against the
// batch-first path: the same seeds must produce bit-identical transmissions
// through Code.Transmit (closure) and Code.TransmitOver (Channel).
func TestTransmitOverMatchesTransmit(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 96})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(96, 41)
	closure, err := spinal.AWGNChannel(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	viaClosure, err := code.Transmit(msg, closure, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := spinal.NewAWGN(12, 42)
	if err != nil {
		t.Fatal(err)
	}
	viaChannel, err := code.TransmitOver(msg, ch, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaClosure.Delivered != viaChannel.Delivered || viaClosure.Symbols != viaChannel.Symbols ||
		viaClosure.Rate != viaChannel.Rate || !code.Equal(viaClosure.Decoded, viaChannel.Decoded) {
		t.Fatalf("Transmit and TransmitOver diverged: %+v vs %+v", viaClosure, viaChannel)
	}
	if !viaChannel.Delivered {
		t.Fatal("transmission at 12 dB failed")
	}
}

// TestTransmitBitsOverMatchesTransmitBits is the BSC counterpart of the
// adapter equivalence pin.
func TestTransmitBitsOverMatchesTransmitBits(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 32, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(32, 51)
	closure, err := spinal.BSCChannel(0.05, 52)
	if err != nil {
		t.Fatal(err)
	}
	viaClosure, err := code.TransmitBits(msg, closure, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := spinal.NewBSC(0.05, 52)
	if err != nil {
		t.Fatal(err)
	}
	viaChannel, err := code.TransmitBitsOver(msg, ch, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if viaClosure.Delivered != viaChannel.Delivered || viaClosure.Symbols != viaChannel.Symbols ||
		!code.Equal(viaClosure.Decoded, viaChannel.Decoded) {
		t.Fatalf("TransmitBits and TransmitBitsOver diverged: %+v vs %+v", viaClosure, viaChannel)
	}
	if !viaChannel.Delivered {
		t.Fatal("BSC transmission at p=0.05 failed")
	}
}

// TestTransmitOverTimeVaryingChannels exercises the fading channels end to
// end: a bursty Gilbert-Elliott trace and a Rayleigh block-fading channel,
// each driven both through the batch-first TransmitOver and — via the
// CorruptFunc adapter — through the legacy Code.Transmit, with bit-identical
// results between the two entry points.
func TestTransmitOverTimeVaryingChannels(t *testing.T) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 64})
	if err != nil {
		t.Fatal(err)
	}
	msg := spinal.RandomMessage(64, 61)

	build := map[string]func() (spinal.Channel, error){
		"gilbert-elliott": func() (spinal.Channel, error) {
			trace, err := spinal.GilbertElliottTrace(25, 8, 400, 200, 62)
			if err != nil {
				return nil, err
			}
			return spinal.NewTraceChannel(trace, 63)
		},
		"rayleigh-block": func() (spinal.Channel, error) {
			return spinal.NewRayleigh(18, 32, 64)
		},
		"walk": func() (spinal.Channel, error) {
			trace, err := spinal.WalkTrace(10, 25, 0.05, 65)
			if err != nil {
				return nil, err
			}
			return spinal.NewTraceChannel(trace, 66)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			ch, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			over, err := code.TransmitOver(msg, ch, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !over.Delivered {
				t.Fatalf("%s: rateless transmission failed", name)
			}
			if !code.Equal(over.Decoded, msg) {
				t.Fatalf("%s: decoded message mismatch", name)
			}
			// The same time-varying channel through the legacy closure-based
			// Code.Transmit: a fresh, identically seeded channel must produce
			// the identical transmission.
			ch2, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := code.Transmit(msg, spinal.CorruptFunc(ch2), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Delivered != over.Delivered || legacy.Symbols != over.Symbols ||
				!code.Equal(legacy.Decoded, over.Decoded) {
				t.Fatalf("%s: legacy Transmit diverged from TransmitOver: %+v vs %+v",
					name, legacy, over)
			}
		})
	}
}
