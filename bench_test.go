// Benchmarks regenerating the paper's evaluation artifacts. Each benchmark
// corresponds to a figure, theorem or design claim (see DESIGN.md §3 and
// EXPERIMENTS.md); the headline quantity of each experiment is attached to
// the benchmark result via ReportMetric, so `go test -bench=. -benchmem`
// doubles as a compact reproduction run. The full-resolution sweeps (more SNR
// points, more trials) are produced by cmd/spinalsim.
package spinal_test

import (
	"fmt"
	"testing"
	"time"

	"spinal"
	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/experiments"
	"spinal/internal/ldpc"
	"spinal/internal/link"
	"spinal/internal/rng"
)

// benchTrials keeps the per-iteration simulation small enough for the
// default benchtime while still averaging over enough messages to be
// meaningful.
const benchTrials = 12

func benchCfg() experiments.SpinalConfig {
	cfg := experiments.Figure2Config()
	cfg.Trials = benchTrials
	cfg.MaxPasses = 400
	return cfg
}

// BenchmarkFigure2Bounds regenerates the reference curves of Figure 2
// (Shannon capacity and the finite-blocklength approximation for n=24,
// eps=1e-4) over the full −10..40 dB sweep.
func BenchmarkFigure2Bounds(b *testing.B) {
	snrs, err := experiments.Figure2SNRs(1)
	if err != nil {
		b.Fatal(err)
	}
	var last []experiments.BoundPoint
	for i := 0; i < b.N; i++ {
		last, err = experiments.Figure2Bounds(snrs)
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := last[len(last)/2]
	b.ReportMetric(mid.Shannon, "capacity_bits/sym@15dB")
	b.ReportMetric(mid.FiniteBlock, "fbl_bound_bits/sym@15dB")
}

// BenchmarkFigure2Spinal regenerates the spinal-code curve of Figure 2
// (m=24, k=8, c=10, B=16, 14-bit ADC) at representative SNR points across the
// figure's range.
func BenchmarkFigure2Spinal(b *testing.B) {
	for _, snr := range []float64{-10, 0, 10, 20, 30, 40} {
		snr := snr
		b.Run(fmt.Sprintf("snr=%+.0fdB", snr), func(b *testing.B) {
			cfg := benchCfg()
			if snr < 0 {
				cfg.Trials = 8 // low-SNR messages need hundreds of symbols each
			}
			var pt experiments.RatePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.SpinalRateAtSNR(cfg, snr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Rate, "bits/sym")
			b.ReportMetric(pt.Capacity, "capacity_bits/sym")
		})
	}
}

// BenchmarkFigure2LDPC regenerates the eight fixed-rate LDPC baselines of
// Figure 2, each evaluated at an SNR where it is near its waterfall, and at
// the paper's 40-iteration belief-propagation setting.
func BenchmarkFigure2LDPC(b *testing.B) {
	operating := map[string]float64{
		"LDPC rate=1/2 BPSK":   2,
		"LDPC rate=1/2 QAM-4":  5,
		"LDPC rate=3/4 QAM-4":  8,
		"LDPC rate=1/2 QAM-16": 11,
		"LDPC rate=3/4 QAM-16": 15,
		"LDPC rate=2/3 QAM-64": 19,
		"LDPC rate=3/4 QAM-64": 21,
		"LDPC rate=5/6 QAM-64": 24,
	}
	for _, cfg := range experiments.Figure2LDPCConfigs() {
		cfg := cfg
		cfg.Frames = 20
		snr := operating[cfg.Label()]
		b.Run(cfg.Label(), func(b *testing.B) {
			var pts []experiments.ThroughputPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = experiments.LDPCThroughputCurve(cfg, []float64{snr})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Throughput, "bits/sym")
			b.ReportMetric(pts[0].FER, "fer")
		})
	}
}

// BenchmarkEncoder measures the cost of the Figure 1 encoding process: spine
// computation plus one pass of constellation points for a 1024-bit message.
func BenchmarkEncoder(b *testing.B) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 1024})
	if err != nil {
		b.Fatal(err)
	}
	msg := spinal.RandomMessage(1024, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream, err := code.EncodeStream(msg)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < code.NumSegments(); s++ {
			stream.Next()
		}
	}
	b.ReportMetric(float64(code.NumSegments())*float64(b.N)/b.Elapsed().Seconds(), "symbols/s")
}

// BenchmarkDecoder measures the natural rateless receive loop (B=16, k=8)
// for a 256-bit message: observe one fresh symbol, then re-decode. With the
// incremental decoder each re-decode resumes from the newly observed level
// instead of rebuilding the tree, which is exactly the per-symbol-attempt
// hot path of every experiment in the paper.
func BenchmarkDecoder(b *testing.B) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 256})
	if err != nil {
		b.Fatal(err)
	}
	msg := spinal.RandomMessage(256, 2)
	stream, _ := code.EncodeStream(msg)
	ch, _ := spinal.AWGNChannel(15, 3)
	dec, _ := code.NewDecoder()
	for i := 0; i < 2*code.NumSegments(); i++ {
		sym := stream.Next()
		if err := dec.Observe(sym.Pos, ch(sym.Value)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sym := stream.Next()
		if err := dec.Observe(sym.Pos, ch(sym.Value)); err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(256*float64(b.N)/b.Elapsed().Seconds(), "decoded_bits/s")
}

// BenchmarkIncrementalDecode is the before/after comparison of the
// incremental decode pipeline: full rateless transmissions at 0 dB (low SNR,
// many passes, many attempts) with the sequential schedule — the natural
// low-SNR operating point, since puncturing pays only at high SNR — decoded
// either with workspace reuse or with every attempt from scratch. The modes
// produce bit-identical decodes (TestIncrementalDecodeComparisonSpeedup
// enforces it); the metrics expose total tree nodes expanded and wall-clock
// per delivered message, which is where the O(P²)→O(P) claim shows up.
func BenchmarkIncrementalDecode(b *testing.B) {
	params := core.Params{K: 8, C: 10, MessageBits: 24, Seed: core.DefaultSeed}
	const trials = 6
	for _, mode := range []string{"incremental", "from-scratch"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			var nodes int64
			var delivered int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes, delivered = 0, 0
				for trial := 0; trial < trials; trial++ {
					msg := core.RandomMessage(rng.New(uint64(trial)*13+1), params.MessageBits)
					radio, err := channel.NewQuantizedAWGN(0, 14, rng.New(uint64(trial)*17+3))
					if err != nil {
						b.Fatal(err)
					}
					res, err := core.RunSymbolSession(core.SessionConfig{
						Params:             params,
						BeamWidth:          16,
						DisableIncremental: mode == "from-scratch",
					}, msg, radio.Corrupt, core.GenieVerifier(msg, params.MessageBits))
					if err != nil {
						b.Fatal(err)
					}
					nodes += res.NodesExpanded
					if res.Success {
						delivered++
					}
				}
			}
			if delivered > 0 {
				b.ReportMetric(float64(nodes)/float64(delivered), "nodes/msg")
				b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(b.N)/float64(delivered), "ns/msg")
			}
		})
	}
}

// BenchmarkParallelDecode measures the wall-clock scaling of the sharded
// decode engine: one full from-scratch beam decode of a low-SNR observation
// set per iteration, swept over worker counts and beam widths. The decodes
// are bit-identical at every worker count (TestParallelDecodeComparison-
// Equivalence and the core determinism tests enforce it); this benchmark
// isolates the time and allocation behavior. Expect near-linear speedup for
// B >= 64 up to the machine's core count, and a flat allocation profile —
// the per-worker workspaces are pooled across attempts, so extra workers
// must not add per-attempt allocations.
func BenchmarkParallelDecode(b *testing.B) {
	params := core.Params{K: 8, C: 10, MessageBits: 128, Seed: core.DefaultSeed}
	msg := core.RandomMessage(rng.New(41), params.MessageBits)
	enc, err := core.NewEncoder(params, msg)
	if err != nil {
		b.Fatal(err)
	}
	radio, err := channel.NewQuantizedAWGN(0, 14, rng.New(43))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := core.NewSequentialSchedule(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	obs, err := core.NewObservations(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	// Four passes of 0 dB observations: enough that the decode does real
	// disambiguation work at every level.
	for i := 0; i < 4*params.NumSegments(); i++ {
		pos := sched.Pos(i)
		if err := obs.Add(pos, radio.Corrupt(enc.SymbolAt(pos))); err != nil {
			b.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, beam := range []int{16, 64, 256} {
			workers, beam := workers, beam
			b.Run(fmt.Sprintf("workers=%d/B=%d", workers, beam), func(b *testing.B) {
				dec, err := core.NewBeamDecoder(params, beam)
				if err != nil {
					b.Fatal(err)
				}
				defer dec.Close()
				dec.SetParallelism(workers)
				// Every iteration runs the full beam search from the root —
				// the raw expansion throughput the sharding is meant to scale.
				dec.SetIncremental(false)
				var nodes int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, derr := dec.Decode(obs)
					if derr != nil {
						b.Fatal(derr)
					}
					nodes += int64(out.NodesExpanded)
				}
				b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
			})
		}
	}
}

// BenchmarkDecodeSymbolsPerSec is the single-core decoder throughput gate:
// how many received channel symbols per second one worker folds through a
// full from-scratch beam decode, for the exact float64 metric and the
// quantized int32 metric across beam widths. The symbols/s metric is the
// paper-facing unit (a receiver must decode at least as fast as symbols
// arrive); nodes/s is the same run in the decoder's unit of work. CI's
// bench-smoke job diffs this benchmark against the committed
// BENCH_baseline.json with benchstat.
func BenchmarkDecodeSymbolsPerSec(b *testing.B) {
	params := core.Params{K: 8, C: 10, MessageBits: 128, Seed: core.DefaultSeed}
	msg := core.RandomMessage(rng.New(41), params.MessageBits)
	enc, err := core.NewEncoder(params, msg)
	if err != nil {
		b.Fatal(err)
	}
	radio, err := channel.NewQuantizedAWGN(0, 14, rng.New(43))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := core.NewSequentialSchedule(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	obs, err := core.NewObservations(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	// Four passes of 0 dB observations, as a mid-SNR operating point where
	// the decode does real disambiguation work at every level.
	const passes = 4
	nSymbols := passes * params.NumSegments()
	for i := 0; i < nSymbols; i++ {
		pos := sched.Pos(i)
		if err := obs.Add(pos, radio.Corrupt(enc.SymbolAt(pos))); err != nil {
			b.Fatal(err)
		}
	}
	for _, metric := range []core.CostMetric{core.CostFloat64, core.CostInt32} {
		for _, beam := range []int{16, 64, 256} {
			metric, beam := metric, beam
			b.Run(fmt.Sprintf("metric=%s/B=%d", metric, beam), func(b *testing.B) {
				dec, err := core.NewBeamDecoder(params, beam)
				if err != nil {
					b.Fatal(err)
				}
				defer dec.Close()
				if err := dec.SetCostMetric(metric); err != nil {
					b.Fatal(err)
				}
				dec.SetParallelism(1)
				dec.SetIncremental(false)
				var nodes int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, derr := dec.Decode(obs)
					if derr != nil {
						b.Fatal(derr)
					}
					nodes += int64(out.NodesExpanded)
				}
				b.ReportMetric(float64(b.N)*float64(nSymbols)/b.Elapsed().Seconds(), "symbols/s")
				b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
			})
		}
	}
}

// BenchmarkApproxDecode measures the approximate search modes against the
// exact beam search on the same observations: a full from-scratch decode at
// the mid-SNR operating point, per (search mode, beam width). The nodes/s
// metric shows the work rate; the headline is symbols/s, where gap pruning
// and lookahead narrowing buy their throughput by expanding fewer children
// per level. CI's bench-smoke job diffs this benchmark against the committed
// BENCH_baseline.json with benchstat.
func BenchmarkApproxDecode(b *testing.B) {
	params := core.Params{K: 8, C: 10, MessageBits: 128, Seed: core.DefaultSeed}
	msg := core.RandomMessage(rng.New(41), params.MessageBits)
	enc, err := core.NewEncoder(params, msg)
	if err != nil {
		b.Fatal(err)
	}
	radio, err := channel.NewQuantizedAWGN(0, 14, rng.New(43))
	if err != nil {
		b.Fatal(err)
	}
	sched, err := core.NewSequentialSchedule(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	obs, err := core.NewObservations(params.NumSegments())
	if err != nil {
		b.Fatal(err)
	}
	const passes = 4
	nSymbols := passes * params.NumSegments()
	for i := 0; i < nSymbols; i++ {
		pos := sched.Pos(i)
		if err := obs.Add(pos, radio.Corrupt(enc.SymbolAt(pos))); err != nil {
			b.Fatal(err)
		}
	}
	for _, search := range []string{"exact", "gap", "lookahead", "approx"} {
		for _, beam := range []int{32, 64} {
			search, beam := search, beam
			b.Run(fmt.Sprintf("search=%s/B=%d", search, beam), func(b *testing.B) {
				sc, err := core.ParseSearchConfig(search)
				if err != nil {
					b.Fatal(err)
				}
				dec, err := core.NewBeamDecoder(params, beam)
				if err != nil {
					b.Fatal(err)
				}
				defer dec.Close()
				if err := dec.SetSearchConfig(sc); err != nil {
					b.Fatal(err)
				}
				dec.SetParallelism(1)
				dec.SetIncremental(false)
				var nodes int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, derr := dec.Decode(obs)
					if derr != nil {
						b.Fatal(derr)
					}
					nodes += int64(out.NodesExpanded)
				}
				b.ReportMetric(float64(b.N)*float64(nSymbols)/b.Elapsed().Seconds(), "symbols/s")
				b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
			})
		}
	}
}

// BenchmarkBatchObserve isolates the receive hot path the batch-first API
// vectorizes: producing one pass of symbols, corrupting it, and folding it
// into the decoder's observations — scalar (one schedule call, one encoder
// call, one channel closure call and one Observe per symbol) versus batch
// (one NextBatch, one CorruptBlock, one ObserveBatch per pass, with a single
// generation bump). The symbols folded in are bit-identical between the two
// modes (TestObserveBatchMatchesObserve enforces it); this benchmark isolates
// the call-overhead win.
func BenchmarkBatchObserve(b *testing.B) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 1024})
	if err != nil {
		b.Fatal(err)
	}
	msg := spinal.RandomMessage(1024, 5)
	nseg := code.NumSegments()
	const passes = 4

	b.Run("scalar", func(b *testing.B) {
		ch, err := spinal.AWGNChannel(15, 6)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := code.NewDecoder()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec.Reset()
			stream, err := code.EncodeStream(msg)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < passes*nseg; j++ {
				sym := stream.Next()
				if err := dec.Observe(sym.Pos, ch(sym.Value)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(passes*nseg)*float64(b.N)/b.Elapsed().Seconds(), "symbols/s")
	})
	b.Run("batch", func(b *testing.B) {
		ch, err := spinal.NewAWGN(15, 6)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := code.NewDecoder()
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]spinal.Symbol, nseg)
		poss := make([]spinal.SymbolPos, nseg)
		tx := make([]complex128, nseg)
		rx := make([]complex128, nseg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dec.Reset()
			stream, err := code.EncodeStream(msg)
			if err != nil {
				b.Fatal(err)
			}
			for p := 0; p < passes; p++ {
				stream.NextBatch(batch)
				for k, s := range batch {
					poss[k], tx[k] = s.Pos, s.Value
				}
				ch.CorruptBlock(rx, tx)
				if err := dec.ObserveBatch(poss, rx); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(passes*nseg)*float64(b.N)/b.Elapsed().Seconds(), "symbols/s")
	})
}

// BenchmarkTransmitChannel measures the full rateless loop through the
// channel-interface entry point (Code.TransmitOver) against the legacy
// closure adapter (Code.Transmit), on static AWGN and on the time-varying
// channels only the interface can express. Decodes are bit-identical between
// the two entry points (TestTransmitOverMatchesTransmit enforces it).
func BenchmarkTransmitChannel(b *testing.B) {
	code, err := spinal.NewCode(spinal.Config{MessageBits: 256})
	if err != nil {
		b.Fatal(err)
	}
	msg := spinal.RandomMessage(256, 7)
	run := func(b *testing.B, mk func(i int) (*spinal.TransmitResult, error)) {
		var symbols, bits int
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := mk(i)
			if err != nil {
				b.Fatal(err)
			}
			if res.Delivered {
				bits += 256
			}
			symbols += res.Symbols
		}
		if symbols > 0 {
			b.ReportMetric(float64(bits)/float64(symbols), "bits/sym")
		}
	}
	b.Run("awgn-channel", func(b *testing.B) {
		run(b, func(i int) (*spinal.TransmitResult, error) {
			ch, err := spinal.NewAWGN(15, uint64(i)+1)
			if err != nil {
				return nil, err
			}
			return code.TransmitOver(msg, ch, nil, 0)
		})
	})
	b.Run("awgn-closure", func(b *testing.B) {
		run(b, func(i int) (*spinal.TransmitResult, error) {
			ch, err := spinal.AWGNChannel(15, uint64(i)+1)
			if err != nil {
				return nil, err
			}
			return code.Transmit(msg, ch, nil, 0)
		})
	})
	b.Run("rayleigh", func(b *testing.B) {
		run(b, func(i int) (*spinal.TransmitResult, error) {
			ch, err := spinal.NewRayleigh(18, 32, uint64(i)+1)
			if err != nil {
				return nil, err
			}
			return code.TransmitOver(msg, ch, nil, 0)
		})
	})
	b.Run("gilbert-elliott", func(b *testing.B) {
		run(b, func(i int) (*spinal.TransmitResult, error) {
			trace, err := spinal.GilbertElliottTrace(25, 8, 400, 200, uint64(i)+1)
			if err != nil {
				return nil, err
			}
			ch, err := spinal.NewTraceChannel(trace, uint64(i)+9)
			if err != nil {
				return nil, err
			}
			return code.TransmitOver(msg, ch, nil, 0)
		})
	})
}

// BenchmarkTheorem1Gap measures the empirical gap to capacity against the
// Theorem 1 guarantee at a mid-range SNR.
func BenchmarkTheorem1Gap(b *testing.B) {
	cfg := benchCfg()
	var pts []experiments.Theorem1Point
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.Theorem1Gap(cfg, []float64{20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Rate, "bits/sym")
	b.ReportMetric(pts[0].Guarantee, "theorem1_bits/sym")
	b.ReportMetric(pts[0].GapToCap, "gap_bits/sym")
}

// BenchmarkTheorem2BSC measures the rate of the binary-channel variant
// against the BSC capacity (Theorem 2).
func BenchmarkTheorem2BSC(b *testing.B) {
	for _, p := range []float64{0.05, 0.2} {
		p := p
		b.Run(fmt.Sprintf("p=%.2f", p), func(b *testing.B) {
			cfg := experiments.SpinalConfig{
				MessageBits: 16, K: 4, BeamWidth: 16, Trials: 8, MaxPasses: 400, Seed: 7,
			}
			var pts []experiments.BSCPoint
			var err error
			for i := 0; i < b.N; i++ {
				pts, err = experiments.SpinalBSCCurve(cfg, []float64{p})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pts[0].Rate, "bits/use")
			b.ReportMetric(pts[0].Capacity, "capacity_bits/use")
		})
	}
}

// BenchmarkScaleDownB quantifies the graceful scale-down property (§3.2):
// achieved rate at 10 dB as the beam width shrinks from 64 to 1.
func BenchmarkScaleDownB(b *testing.B) {
	for _, beam := range []int{1, 4, 16, 64} {
		beam := beam
		b.Run(fmt.Sprintf("B=%d", beam), func(b *testing.B) {
			cfg := benchCfg()
			cfg.BeamWidth = beam
			var pt experiments.RatePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.SpinalRateAtSNR(cfg, 10)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Rate, "bits/sym")
		})
	}
}

// BenchmarkPuncturing contrasts the punctured (striped) schedule with the
// sequential one at 35 dB, where puncturing is what lifts the rate above k.
func BenchmarkPuncturing(b *testing.B) {
	for _, sched := range []string{"striped", "sequential"} {
		sched := sched
		b.Run(sched, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Schedule = sched
			cfg.Trials = 20
			var pt experiments.RatePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.SpinalRateAtSNR(cfg, 35)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Rate, "bits/sym")
		})
	}
}

// BenchmarkQuantization sweeps the receiver ADC depth at 20 dB (the paper's
// simulations quantize each dimension to 14 bits).
func BenchmarkQuantization(b *testing.B) {
	for _, bits := range []int{6, 10, 14} {
		bits := bits
		b.Run(fmt.Sprintf("adc=%dbit", bits), func(b *testing.B) {
			cfg := benchCfg()
			cfg.ADCBits = bits
			var pt experiments.RatePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.SpinalRateAtSNR(cfg, 20)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Rate, "bits/sym")
		})
	}
}

// BenchmarkMappers compares the linear mapping of Eq. 3 with the uniform and
// truncated-Gaussian mappings (§6 future work) at 20 dB.
func BenchmarkMappers(b *testing.B) {
	for _, mapper := range []string{"linear", "uniform", "gaussian"} {
		mapper := mapper
		b.Run(mapper, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Mapper = mapper
			var pt experiments.RatePoint
			var err error
			for i := 0; i < b.N; i++ {
				pt, err = experiments.SpinalRateAtSNR(cfg, 20)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pt.Rate, "bits/sym")
		})
	}
}

// BenchmarkAttemptPolicy is the decode-attempt-policy ablation: how much rate
// the receiver loses by attempting a decode only once per pass instead of
// after every symbol, at 25 dB where attempts are frequent.
func BenchmarkAttemptPolicy(b *testing.B) {
	params := core.Params{K: 8, C: 10, MessageBits: 24, Seed: core.DefaultSeed}
	policies := map[string]core.AttemptPolicy{
		"every-symbol": core.AttemptEverySymbol{},
		"every-pass":   core.AttemptEveryPass{},
	}
	for name, policy := range policies {
		name, policy := name, policy
		b.Run(name, func(b *testing.B) {
			var totalBits, totalSymbols int
			for i := 0; i < b.N; i++ {
				msgSrc := rng.New(uint64(i)*13 + 1)
				msg := core.RandomMessage(msgSrc, params.MessageBits)
				ch, err := channel.NewAWGNdB(25, rng.New(uint64(i)*17+3))
				if err != nil {
					b.Fatal(err)
				}
				sched, _ := core.NewStripedSchedule(params.NumSegments(), 8)
				res, err := core.RunSymbolSession(core.SessionConfig{
					Params: params, BeamWidth: 16, Schedule: sched, Attempts: policy,
				}, msg, ch.Corrupt, core.GenieVerifier(msg, params.MessageBits))
				if err != nil {
					b.Fatal(err)
				}
				if res.Success {
					totalBits += params.MessageBits
				}
				totalSymbols += res.ChannelUses
			}
			b.ReportMetric(float64(totalBits)/float64(totalSymbols), "bits/sym")
		})
	}
}

// BenchmarkLinkProtocol runs the rateless link-layer protocol end to end over
// an in-memory transport with a 15 dB simulated radio (the §6 future-work
// protocol, experiment E12).
func BenchmarkLinkProtocol(b *testing.B) {
	payload := make([]byte, 48)
	for i := range payload {
		payload[i] = byte(i)
	}
	var symbols, bits int
	for i := 0; i < b.N; i++ {
		a, peer, err := link.NewPipePair(0, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		// The AckPoll paces the sender like a finite-rate radio so the
		// receiver's decode attempts keep up (see examples/ratelesslink).
		cfg := link.Config{SymbolsPerFrame: 64, AckPoll: 25 * time.Millisecond}
		sender, err := link.NewSender(a, cfg)
		if err != nil {
			b.Fatal(err)
		}
		radio, err := channel.NewQuantizedAWGN(15, 14, rng.New(uint64(i)+100))
		if err != nil {
			b.Fatal(err)
		}
		receiver, err := link.NewReceiver(peer, cfg, radio)
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				_, rerr := receiver.Receive(200 * time.Millisecond)
				if rerr != nil {
					return
				}
			}
		}()
		report, err := sender.Send(uint32(i)+1, payload)
		if err != nil {
			b.Fatal(err)
		}
		if report.Acked {
			bits += len(payload) * 8
			symbols += report.SymbolsSent
		}
		a.Close()
		<-done
	}
	if symbols > 0 {
		b.ReportMetric(float64(bits)/float64(symbols), "bits/sym")
	}
}

// BenchmarkMultiFlow measures the flow-multiplexed link engine's aggregate
// decode throughput as concurrent flows share one receiver, with the shared
// decoder pool on (decoders recycled across messages and flows) and off
// (every message builds a fresh decoder, the pre-flow behaviour). Frames are
// fed through the deterministic synchronous path so the numbers isolate
// engine and pool overhead rather than goroutine scheduling noise; each flow
// streams two messages so the pooled configuration actually reuses decoders.
func BenchmarkMultiFlow(b *testing.B) {
	const messagesPerFlow = 2
	payload := make([]byte, 16)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for _, flows := range []int{1, 8, 32} {
		// Precompute every flow's noiseless v1 frames once.
		type msgFrames struct{ frames [][]byte }
		build := func() [][]msgFrames {
			all := make([][]msgFrames, flows)
			cfg := link.Config{K: 4, C: 8}
			for f := 0; f < flows; f++ {
				all[f] = make([]msgFrames, messagesPerFlow)
				for m := 0; m < messagesPerFlow; m++ {
					frames, err := link.EncodeFrames(cfg, uint32(f+1), uint32(m+1), payload, 24, 2, nil)
					if err != nil {
						b.Fatal(err)
					}
					all[f][m] = msgFrames{frames: frames}
				}
			}
			return all
		}
		all := build()
		for _, pooled := range []bool{true, false} {
			name := fmt.Sprintf("flows=%d/pool=%v", flows, pooled)
			b.Run(name, func(b *testing.B) {
				poolCap := 0 // default capacity
				if !pooled {
					poolCap = -1 // disable pooling
				}
				totalMsgs := flows * messagesPerFlow
				start := time.Now()
				for i := 0; i < b.N; i++ {
					_, near, err := link.NewPipePair(0, 1)
					if err != nil {
						b.Fatal(err)
					}
					recv, err := link.NewReceiver(near, link.Config{K: 4, C: 8, PoolCapacity: poolCap}, nil)
					if err != nil {
						b.Fatal(err)
					}
					delivered := 0
					cur := make([]int, flows)  // current message per flow
					next := make([]int, flows) // next frame of that message
					for delivered < totalMsgs {
						progressed := false
						for f := 0; f < flows; f++ {
							if cur[f] >= messagesPerFlow {
								continue
							}
							mf := all[f][cur[f]]
							if next[f] >= len(mf.frames) {
								b.Fatalf("flow %d msg %d not delivered within its noiseless frames", f+1, cur[f]+1)
							}
							d, err := recv.HandleFrame(mf.frames[next[f]])
							if err != nil {
								b.Fatal(err)
							}
							next[f]++
							progressed = true
							if d != nil {
								delivered++
								cur[f]++
								next[f] = 0
							}
						}
						if !progressed {
							b.Fatal("benchmark made no progress")
						}
					}
					recv.Close()
					near.Close()
				}
				elapsed := time.Since(start).Seconds()
				if elapsed > 0 {
					b.ReportMetric(float64(b.N*totalMsgs)/elapsed, "msgs/sec")
					b.ReportMetric(float64(b.N*totalMsgs*len(payload)*8)/elapsed, "bits/sec")
				}
			})
		}
	}
}

// BenchmarkAdaptationVsRateless compares reactive rate adaptation against the
// rateless spinal code over a bursty Gilbert-Elliott channel whose state
// changes faster than the adaptation feedback (the §1 motivation, experiment
// E14 in EXPERIMENTS.md).
func BenchmarkAdaptationVsRateless(b *testing.B) {
	var pts []experiments.AdaptationPoint
	var err error
	scenario := experiments.DefaultAdaptationScenarios()[2:3] // fast fading
	for i := 0; i < b.N; i++ {
		pts, err = experiments.AdaptationComparison(experiments.AdaptationConfig{
			Scenarios: scenario, SymbolBudget: 4000, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].AdaptiveThroughput, "adaptive_bits/sym")
	b.ReportMetric(pts[0].RatelessThroughput, "rateless_bits/sym")
}

// BenchmarkFixedRateSpinal evaluates the fixed-rate (feedback-free)
// instantiation of the spinal code at 2 bits/symbol against the rateless mode
// at the same SNR (§3's fixed-rate remark, experiment E15).
func BenchmarkFixedRateSpinal(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 10
	var pts []experiments.FixedRatePoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.FixedRateSpinal(cfg, []float64{12}, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Throughput, "fixed_bits/sym")
	b.ReportMetric(pts[0].RatelessRate, "rateless_bits/sym")
}

// BenchmarkConvolutional measures the extra rated baseline (K=7 convolutional
// code with Viterbi decoding) at its operating point.
func BenchmarkConvolutional(b *testing.B) {
	cfg := experiments.ConvConfig{Rate: "1/2", Modulation: "BPSK", FrameBits: 288, Frames: 20, Seed: 5}
	var pts []experiments.ThroughputPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.ConvThroughputCurve(cfg, []float64{5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Throughput, "bits/sym")
}

// BenchmarkHARQ measures the hybrid-ARQ (Chase combining) rateless
// comparator built from the rate-1/2 LDPC code over QAM-16, at an SNR below
// its single-shot threshold where combining is what delivers the frames.
func BenchmarkHARQ(b *testing.B) {
	cfg := experiments.HARQConfig{Rate: ldpc.Rate12, Modulation: "QAM-16", Frames: 15, Seed: 11}
	var pts []experiments.ThroughputPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.HARQThroughputCurve(cfg, []float64{7})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Throughput, "bits/sym")
}

// BenchmarkFountainOverhead measures the LT-code reception overhead over a
// 30% BEC — the related-work rateless comparator (§2).
func BenchmarkFountainOverhead(b *testing.B) {
	var pts []experiments.OverheadPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.FountainOverhead(experiments.FountainConfig{
			K: 128, BlockSize: 32, Trials: 5, Erasures: []float64{0.3}, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Overhead, "received/k")
}
