module spinal

go 1.24
