// Package constellation implements the dense constellation mappings used by
// spinal codes to turn hash-derived coded bits into I-Q symbols.
//
// The paper's encoder takes 2c bits from each spine value per pass and maps
// the first c bits to the I coordinate and the last c bits to the Q
// coordinate (§3.1). This package provides the linear sign/magnitude mapping
// of Eq. 3, a uniform (natural binary) grid mapping, and the truncated
// Gaussian mapping the paper proposes as future work. All mappers are
// normalized to unit average symbol energy assuming uniformly distributed
// input bits, so that SNR = 1/sigma^2 throughout the repository.
package constellation

import (
	"fmt"
	"math"

	"spinal/internal/mathx"
)

// Mapper converts a 2c-bit word of coded bits into a constellation point on
// the I-Q plane. The I bits occupy the high c bits of the word and the Q bits
// the low c bits, matching the bit order produced by the spinal encoder.
type Mapper interface {
	// Map returns the constellation point for the given 2c-bit word.
	Map(word uint32) complex128
	// C returns the number of coded bits per dimension (the paper's c).
	C() int
	// Name identifies the mapping for experiment output.
	Name() string
}

// TableMapper is implemented by mappers whose two dimensions are mapped
// independently through a shared per-dimension coordinate table, i.e.
// Map(word) == complex(tab[word>>c&mask], tab[word&mask]). Every mapper in
// this package qualifies; the beam decoder uses the table to replace the
// per-symbol interface call in its cost fold with two array loads, and to
// derive the integer symbol grid of its quantized cost metric.
type TableMapper interface {
	Mapper
	// DimTable returns the per-dimension coordinate table, indexed by the
	// c-bit value of one dimension. Callers must treat it as read-only.
	DimTable() []float64
}

// dimMapper implements Mapper from a per-dimension raw mapping function.
// The raw mapping is normalized at construction time so that the average
// symbol energy over uniformly random bits is exactly 1.
type dimMapper struct {
	c     int
	name  string
	table []float64 // normalized coordinate per c-bit value
}

func (m *dimMapper) C() int       { return m.c }
func (m *dimMapper) Name() string { return m.name }

// DimTable exposes the normalized per-dimension coordinate table. The slice
// is owned by the mapper and must not be modified.
func (m *dimMapper) DimTable() []float64 { return m.table }

func (m *dimMapper) Map(word uint32) complex128 {
	mask := uint32(1)<<uint(m.c) - 1
	i := m.table[word>>uint(m.c)&mask]
	q := m.table[word&mask]
	return complex(i, q)
}

// newDimMapper tabulates and normalizes a per-dimension mapping.
func newDimMapper(c int, name string, raw func(v uint32) float64) (*dimMapper, error) {
	if c < 1 || c > 16 {
		return nil, fmt.Errorf("constellation: c must be in [1,16], got %d", c)
	}
	n := 1 << uint(c)
	table := make([]float64, n)
	var energy float64
	for v := 0; v < n; v++ {
		table[v] = raw(uint32(v))
		energy += table[v] * table[v]
	}
	energy /= float64(n) // per-dimension average energy, unnormalized
	if energy == 0 {
		return nil, fmt.Errorf("constellation: %s mapping with c=%d has zero energy", name, c)
	}
	// Scale so that the per-dimension energy is 1/2, i.e. total symbol energy 1.
	scale := math.Sqrt(0.5 / energy)
	for v := range table {
		table[v] *= scale
	}
	return &dimMapper{c: c, name: name, table: table}, nil
}

// NewLinear returns the linear sign/magnitude mapper of Eq. 3 in the paper:
// the first of the c bits selects the sign and the remaining c-1 bits select
// the magnitude on a uniform grid. Requires c >= 2 (with c = 1 the magnitude
// is always zero).
func NewLinear(c int) (Mapper, error) {
	if c < 2 {
		return nil, fmt.Errorf("constellation: linear mapping requires c >= 2, got %d", c)
	}
	den := float64(int(1)<<uint(c-1) - 1)
	return newDimMapper(c, fmt.Sprintf("linear(c=%d)", c), func(v uint32) float64 {
		sign := 1.0
		if v>>uint(c-1)&1 == 1 {
			sign = -1
		}
		mag := float64(v & (1<<uint(c-1) - 1))
		return sign * mag / den
	})
}

// NewUniform returns a natural-binary uniform grid mapping: the c bits are
// interpreted as an unsigned integer and mapped to 2^c equally spaced levels
// centered at zero. This is the mapping used by later spinal-code work and is
// included for comparison experiments.
func NewUniform(c int) (Mapper, error) {
	offset := float64(int64(1)<<uint(c)-1) / 2
	return newDimMapper(c, fmt.Sprintf("uniform(c=%d)", c), func(v uint32) float64 {
		return float64(v) - offset
	})
}

// NewTruncatedGaussian returns the truncated Gaussian mapping suggested as
// future work in §6 of the paper: the c bits index quantiles of a standard
// normal distribution clipped to [-beta, beta]. A Gaussian-shaped input
// distribution is closer to the capacity-achieving input for the AWGN channel
// than a uniform grid.
func NewTruncatedGaussian(c int, beta float64) (Mapper, error) {
	if beta <= 0 {
		return nil, fmt.Errorf("constellation: truncation point must be positive, got %v", beta)
	}
	n := float64(int64(1) << uint(c))
	return newDimMapper(c, fmt.Sprintf("truncgauss(c=%d,beta=%.1f)", c, beta), func(v uint32) float64 {
		q := mathx.NormalQuantile((float64(v) + 0.5) / n)
		return mathx.Clamp(q, -beta, beta)
	})
}

// ByName constructs one of the spinal mappers from a short name, as used by
// the experiment command line: "linear", "uniform" or "gaussian".
func ByName(name string, c int) (Mapper, error) {
	switch name {
	case "linear":
		return NewLinear(c)
	case "uniform":
		return NewUniform(c)
	case "gaussian", "truncgauss":
		return NewTruncatedGaussian(c, 3.0)
	default:
		return nil, fmt.Errorf("constellation: unknown mapper %q", name)
	}
}

// AverageEnergy returns the average symbol energy of the mapper under
// uniformly distributed input bits. It is exported for tests and for sanity
// checks in experiment setup; correctly constructed mappers return 1.
func AverageEnergy(m Mapper) float64 {
	c := m.C()
	n := 1 << uint(2*c)
	// For large c, enumerate only a deterministic stratified subset per
	// dimension; energy separates across I and Q, so enumerating one
	// dimension is exact.
	dim := 1 << uint(c)
	var e float64
	for v := 0; v < dim; v++ {
		p := m.Map(uint32(v) << uint(c)) // Q bits zero
		e += real(p) * real(p)
	}
	e /= float64(dim)
	_ = n
	return 2 * e // both dimensions have identical statistics
}
