package constellation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearUnitEnergy(t *testing.T) {
	for _, c := range []int{2, 4, 6, 8, 10, 12} {
		m, err := NewLinear(c)
		if err != nil {
			t.Fatalf("NewLinear(%d): %v", c, err)
		}
		if e := AverageEnergy(m); math.Abs(e-1) > 1e-9 {
			t.Errorf("linear c=%d average energy = %v, want 1", c, e)
		}
	}
}

func TestUniformUnitEnergy(t *testing.T) {
	for _, c := range []int{1, 2, 3, 6, 10} {
		m, err := NewUniform(c)
		if err != nil {
			t.Fatalf("NewUniform(%d): %v", c, err)
		}
		if e := AverageEnergy(m); math.Abs(e-1) > 1e-9 {
			t.Errorf("uniform c=%d average energy = %v, want 1", c, e)
		}
	}
}

func TestTruncatedGaussianUnitEnergy(t *testing.T) {
	for _, c := range []int{2, 6, 10} {
		m, err := NewTruncatedGaussian(c, 3)
		if err != nil {
			t.Fatalf("NewTruncatedGaussian(%d): %v", c, err)
		}
		if e := AverageEnergy(m); math.Abs(e-1) > 1e-9 {
			t.Errorf("truncgauss c=%d average energy = %v, want 1", c, e)
		}
	}
}

func TestLinearSignBit(t *testing.T) {
	c := 6
	m, err := NewLinear(c)
	if err != nil {
		t.Fatal(err)
	}
	// Per Eq. 3 the first (most significant) of the c bits is a sign bit:
	// flipping it negates the coordinate.
	for v := uint32(1); v < 1<<uint(c-1); v++ {
		plus := m.Map(v << uint(c))
		minus := m.Map((v | 1<<uint(c-1)) << uint(c))
		if math.Abs(real(plus)+real(minus)) > 1e-12 {
			t.Fatalf("sign bit does not negate: v=%d %v vs %v", v, plus, minus)
		}
	}
}

func TestLinearMagnitudeMonotone(t *testing.T) {
	c := 8
	m, _ := NewLinear(c)
	prev := -1.0
	for v := uint32(0); v < 1<<uint(c-1); v++ {
		x := real(m.Map(v << uint(c)))
		if x < prev {
			t.Fatalf("linear magnitude not monotone at %d", v)
		}
		prev = x
	}
}

func TestUniformMonotoneAndSymmetric(t *testing.T) {
	c := 5
	m, _ := NewUniform(c)
	n := 1 << uint(c)
	prev := math.Inf(-1)
	for v := 0; v < n; v++ {
		x := real(m.Map(uint32(v) << uint(c)))
		if x <= prev {
			t.Fatalf("uniform mapping not strictly increasing at %d", v)
		}
		prev = x
		// Symmetry: value v and value n-1-v should be negatives.
		y := real(m.Map(uint32(n-1-v) << uint(c)))
		if math.Abs(x+y) > 1e-12 {
			t.Fatalf("uniform mapping not symmetric at %d: %v vs %v", v, x, y)
		}
	}
}

func TestTruncatedGaussianShape(t *testing.T) {
	c := 8
	m, _ := NewTruncatedGaussian(c, 2.0)
	n := 1 << uint(c)
	// Extremes must be clipped to +-beta (scaled); monotone overall.
	lo := real(m.Map(0))
	hi := real(m.Map(uint32(n-1) << uint(c)))
	if lo >= 0 || hi <= 0 {
		t.Fatalf("gaussian extremes have wrong signs: %v %v", lo, hi)
	}
	if math.Abs(lo+hi) > 1e-9 {
		t.Fatalf("gaussian mapping not symmetric: %v vs %v", lo, hi)
	}
	prev := math.Inf(-1)
	for v := 0; v < n; v++ {
		x := real(m.Map(uint32(v) << uint(c)))
		if x < prev {
			t.Fatalf("gaussian mapping not monotone at %d", v)
		}
		prev = x
	}
}

func TestMapSeparatesIQ(t *testing.T) {
	m, _ := NewLinear(10)
	c := uint(10)
	prop := func(i, q uint16) bool {
		iBits := uint32(i) & (1<<c - 1)
		qBits := uint32(q) & (1<<c - 1)
		p := m.Map(iBits<<c | qBits)
		pi := m.Map(iBits << c)
		pq := m.Map(qBits)
		return real(p) == real(pi) && imag(p) == imag(pq)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidParameters(t *testing.T) {
	if _, err := NewLinear(1); err == nil {
		t.Error("NewLinear(1) should fail")
	}
	if _, err := NewLinear(0); err == nil {
		t.Error("NewLinear(0) should fail")
	}
	if _, err := NewUniform(17); err == nil {
		t.Error("NewUniform(17) should fail")
	}
	if _, err := NewTruncatedGaussian(8, -1); err == nil {
		t.Error("NewTruncatedGaussian with negative beta should fail")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"linear", "uniform", "gaussian"} {
		m, err := ByName(name, 10)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.C() != 10 {
			t.Fatalf("ByName(%q).C() = %d", name, m.C())
		}
	}
	if _, err := ByName("qam", 10); err == nil {
		t.Error("ByName with unknown name should fail")
	}
}

func TestNames(t *testing.T) {
	m, _ := NewLinear(10)
	if m.Name() == "" {
		t.Error("empty mapper name")
	}
	g, _ := NewTruncatedGaussian(6, 2.5)
	if g.Name() == m.Name() {
		t.Error("mapper names should differ")
	}
}

func BenchmarkLinearMap(b *testing.B) {
	m, _ := NewLinear(10)
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += m.Map(uint32(i) & 0xfffff)
	}
	_ = acc
}
