// Package harq implements a hybrid-ARQ rateless baseline: an LDPC codeword is
// retransmitted round after round and the receiver combines the soft
// information (LLR addition, i.e. Chase combining) across rounds, decoding
// after each. Related work in §2 of the paper points to exactly this family —
// incremental-redundancy / hybrid ARQ built from fixed LDPC codes — as the
// conventional way to get rateless behaviour out of rated codes, so this
// package provides the comparator for the spinal code's finer-grained
// ratelessness.
package harq

import (
	"fmt"

	"spinal/internal/ldpc"
	"spinal/internal/modem"
	"spinal/internal/rng"
)

// Config describes a hybrid-ARQ scheme built from one fixed LDPC code and
// modulation.
type Config struct {
	// Rate selects the LDPC mother code (648-bit family).
	Rate ldpc.Rate
	// Modulation names the constellation used for every round.
	Modulation string
	// MaxRounds bounds the number of (re)transmissions of the codeword before
	// the frame is abandoned. Zero selects 8.
	MaxRounds int
	// Iterations is the BP iteration budget per decode attempt. Zero selects
	// the paper's 40.
	Iterations int
}

func (c Config) withDefaults() Config {
	if c.Modulation == "" {
		c.Modulation = "QAM-16"
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.Iterations == 0 {
		c.Iterations = ldpc.DefaultIterations
	}
	return c
}

// Scheme is an instantiated hybrid-ARQ configuration ready to simulate
// frames.
type Scheme struct {
	cfg  Config
	code *ldpc.Code
	dec  *ldpc.Decoder
	mod  modem.Modulation
}

// New validates the configuration and builds the scheme.
func New(cfg Config) (*Scheme, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxRounds < 1 {
		return nil, fmt.Errorf("harq: MaxRounds must be positive, got %d", cfg.MaxRounds)
	}
	code, err := ldpc.NewWiFiLike(cfg.Rate)
	if err != nil {
		return nil, err
	}
	dec, err := ldpc.NewDecoder(code, cfg.Iterations)
	if err != nil {
		return nil, err
	}
	mod, err := modem.ByName(cfg.Modulation)
	if err != nil {
		return nil, err
	}
	if code.N()%mod.BitsPerSymbol() != 0 {
		return nil, fmt.Errorf("harq: codeword length %d not a multiple of %d bits/symbol",
			code.N(), mod.BitsPerSymbol())
	}
	return &Scheme{cfg: cfg, code: code, dec: dec, mod: mod}, nil
}

// InfoBits returns the number of information bits per frame.
func (s *Scheme) InfoBits() int { return s.code.K() }

// SymbolsPerRound returns the number of channel symbols each (re)transmission
// costs.
func (s *Scheme) SymbolsPerRound() int { return s.code.N() / s.mod.BitsPerSymbol() }

// Label names the scheme in experiment output.
func (s *Scheme) Label() string {
	return fmt.Sprintf("HARQ LDPC %s %s", s.cfg.Rate, s.cfg.Modulation)
}

// FrameResult is the outcome of one hybrid-ARQ frame.
type FrameResult struct {
	// Delivered reports whether the information bits were recovered exactly.
	Delivered bool
	// Rounds is the number of transmissions used.
	Rounds int
	// Symbols is the total number of channel symbols spent.
	Symbols int
}

// RunFrame simulates one frame: random information bits are encoded once and
// transmitted repeatedly through corrupt (a symbol channel at the SNR under
// test) with per-symbol LLRs accumulated across rounds; after every round the
// accumulated LLRs are decoded. sigma2 is the noise variance the demapper
// assumes, and src supplies the frame's information bits.
func (s *Scheme) RunFrame(corrupt func(complex128) complex128, sigma2 float64, src *rng.Rand) (*FrameResult, error) {
	if corrupt == nil || src == nil {
		return nil, fmt.Errorf("harq: nil channel or random source")
	}
	info := make([]byte, s.code.K())
	for i := range info {
		info[i] = byte(src.Intn(2))
	}
	cw, err := s.code.Encode(info)
	if err != nil {
		return nil, err
	}
	syms, err := s.mod.Modulate(cw)
	if err != nil {
		return nil, err
	}

	combined := make([]float64, s.code.N())
	res := &FrameResult{}
	for round := 1; round <= s.cfg.MaxRounds; round++ {
		rx := make([]complex128, len(syms))
		for i, x := range syms {
			rx[i] = corrupt(x)
		}
		llr := s.mod.Demodulate(rx, sigma2)
		for i := range combined {
			combined[i] += llr[i]
		}
		res.Rounds = round
		res.Symbols += len(syms)

		out, err := s.dec.Decode(combined)
		if err != nil {
			return nil, err
		}
		if !out.Converged {
			continue
		}
		correct := true
		for i := range info {
			if out.Info[i] != info[i] {
				correct = false
				break
			}
		}
		if correct {
			res.Delivered = true
			return res, nil
		}
	}
	return res, nil
}
