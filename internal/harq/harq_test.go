package harq

import (
	"testing"

	"spinal/internal/channel"
	"spinal/internal/ldpc"
	"spinal/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Rate: ldpc.Rate12, Modulation: "nope"}); err == nil {
		t.Error("unknown modulation accepted")
	}
	if _, err := New(Config{Rate: ldpc.Rate(9)}); err == nil {
		t.Error("unknown rate accepted")
	}
	if _, err := New(Config{Rate: ldpc.Rate12, MaxRounds: -1}); err == nil {
		t.Error("negative rounds accepted")
	}
	s, err := New(Config{Rate: ldpc.Rate12})
	if err != nil {
		t.Fatal(err)
	}
	if s.InfoBits() != 324 {
		t.Fatalf("InfoBits = %d", s.InfoBits())
	}
	if s.SymbolsPerRound() != 648/4 {
		t.Fatalf("SymbolsPerRound = %d for the default QAM-16", s.SymbolsPerRound())
	}
	if s.Label() == "" {
		t.Error("empty label")
	}
}

func TestRunFrameCleanChannelOneRound(t *testing.T) {
	s, err := New(Config{Rate: ldpc.Rate12, Modulation: "QAM-16"})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := channel.NewAWGNdB(20, rng.New(1))
	res, err := s.RunFrame(ch.Corrupt, ch.Sigma2(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Rounds != 1 {
		t.Fatalf("clean channel should deliver in one round: %+v", res)
	}
	if res.Symbols != s.SymbolsPerRound() {
		t.Fatalf("Symbols = %d", res.Symbols)
	}
}

func TestRunFrameCombiningGain(t *testing.T) {
	// At an SNR where a single transmission of rate-1/2 QAM-16 fails (below
	// its ~11 dB threshold), Chase combining across rounds must eventually
	// succeed: two rounds give +3 dB effective SNR, three give ~+4.8 dB.
	s, err := New(Config{Rate: ldpc.Rate12, Modulation: "QAM-16", MaxRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := channel.NewAWGNdB(7, rng.New(3))
	src := rng.New(4)
	delivered, multiRound := 0, 0
	const frames = 10
	for i := 0; i < frames; i++ {
		res, err := s.RunFrame(ch.Corrupt, ch.Sigma2(), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered {
			delivered++
			if res.Rounds > 1 {
				multiRound++
			}
		}
	}
	if delivered < frames-1 {
		t.Fatalf("only %d/%d frames delivered with combining at 7 dB", delivered, frames)
	}
	if multiRound == 0 {
		t.Fatal("no frame needed more than one round at 7 dB; the test SNR is not probing combining")
	}
}

func TestRunFrameGivesUp(t *testing.T) {
	s, err := New(Config{Rate: ldpc.Rate56, Modulation: "QAM-64", MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := channel.NewAWGNdB(-5, rng.New(5))
	res, err := s.RunFrame(ch.Corrupt, ch.Sigma2(), rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered {
		t.Fatal("rate-5/6 QAM-64 delivered at -5 dB; implausible")
	}
	if res.Rounds != 2 || res.Symbols != 2*s.SymbolsPerRound() {
		t.Fatalf("give-up accounting wrong: %+v", res)
	}
}

func TestRunFrameNilArguments(t *testing.T) {
	s, _ := New(Config{Rate: ldpc.Rate12})
	if _, err := s.RunFrame(nil, 0.1, rng.New(1)); err == nil {
		t.Error("nil channel accepted")
	}
	ch, _ := channel.NewAWGNdB(10, rng.New(1))
	if _, err := s.RunFrame(ch.Corrupt, ch.Sigma2(), nil); err == nil {
		t.Error("nil source accepted")
	}
}
