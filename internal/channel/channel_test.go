package channel

import (
	"math"
	"testing"
	"testing/quick"

	"spinal/internal/rng"
)

func TestAWGNNoisePower(t *testing.T) {
	src := rng.New(1)
	ch, err := NewAWGNdB(10, src) // sigma2 = 0.1
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var power float64
	for i := 0; i < n; i++ {
		y := ch.Corrupt(0)
		power += real(y)*real(y) + imag(y)*imag(y)
	}
	avg := power / n
	if math.Abs(avg-0.1) > 0.005 {
		t.Fatalf("noise power = %v, want 0.1", avg)
	}
}

func TestAWGNMeanPreserved(t *testing.T) {
	src := rng.New(2)
	ch, _ := NewAWGN(100, src)
	const n = 50000
	var sumI, sumQ float64
	x := complex(0.7, -0.3)
	for i := 0; i < n; i++ {
		y := ch.Corrupt(x)
		sumI += real(y)
		sumQ += imag(y)
	}
	if math.Abs(sumI/n-0.7) > 0.01 || math.Abs(sumQ/n+0.3) > 0.01 {
		t.Fatalf("mean shifted: %v %v", sumI/n, sumQ/n)
	}
}

func TestAWGNInvalid(t *testing.T) {
	src := rng.New(3)
	if _, err := NewAWGN(0, src); err == nil {
		t.Error("zero SNR accepted")
	}
	if _, err := NewAWGN(-1, src); err == nil {
		t.Error("negative SNR accepted")
	}
	if _, err := NewAWGN(1, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestAWGNSigmaAndSNR(t *testing.T) {
	src := rng.New(4)
	ch, _ := NewAWGNdB(20, src)
	if math.Abs(ch.SNR()-100) > 1e-9 {
		t.Fatalf("SNR = %v, want 100", ch.SNR())
	}
	if math.Abs(ch.Sigma2()-0.01) > 1e-12 {
		t.Fatalf("Sigma2 = %v, want 0.01", ch.Sigma2())
	}
}

func TestCorruptBlockMatchesScalar(t *testing.T) {
	// A block corrupt must draw the exact same noise stream as the
	// equivalent sequence of scalar Corrupt calls.
	ch, _ := NewAWGN(10, rng.New(5))
	ref, _ := NewAWGN(10, rng.New(5))
	xs := make([]complex128, 37)
	for i := range xs {
		xs[i] = complex(float64(i)*0.1, -float64(i)*0.05)
	}
	ys := make([]complex128, len(xs))
	ch.CorruptBlock(ys, xs)
	for i, x := range xs {
		if want := ref.Corrupt(x); ys[i] != want {
			t.Fatalf("block symbol %d = %v, scalar path %v", i, ys[i], want)
		}
	}
	// In-place corruption (dst aliasing src) is part of the contract.
	inPlace := append([]complex128(nil), xs...)
	ch2, _ := NewAWGN(10, rng.New(5))
	ref2, _ := NewAWGN(10, rng.New(5))
	ch2.CorruptBlock(inPlace, inPlace)
	want := make([]complex128, len(xs))
	ref2.CorruptBlock(want, xs)
	for i := range want {
		if inPlace[i] != want[i] {
			t.Fatalf("in-place block corrupt diverged at %d", i)
		}
	}
}

func TestQuantizerRoundsToLevel(t *testing.T) {
	q, err := NewQuantizer(4, 1) // 16 levels of width 0.125
	if err != nil {
		t.Fatal(err)
	}
	prop := func(raw int16) bool {
		v := float64(raw) / 10000 // in [-3.2768, 3.2767]
		out := real(q.Quantize(complex(v, 0)))
		// Output must be a representable level: -1 + (i+0.5)*0.125.
		idx := (out + 1) / 0.125
		if math.Abs(idx-math.Round(idx)-0.5) > 1e-9 && math.Abs(idx-math.Floor(idx)-0.5) > 1e-9 {
			return false
		}
		// Output must be within half a step of the clipped input.
		clipped := math.Max(-1, math.Min(1, v))
		return math.Abs(out-clipped) <= 0.125
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizerHighResolutionIsTransparent(t *testing.T) {
	q, _ := NewQuantizer(14, 4)
	for _, v := range []float64{-3.9, -1.2345, 0, 0.001, 2.71828} {
		out := real(q.Quantize(complex(v, v)))
		if math.Abs(out-v) > 4.0/(1<<13) {
			t.Fatalf("14-bit quantization error too large at %v: %v", v, out-v)
		}
	}
}

func TestQuantizerClipping(t *testing.T) {
	q, _ := NewQuantizer(8, 1)
	out := q.Quantize(complex(100, -100))
	if real(out) > 1 || imag(out) < -1 {
		t.Fatalf("quantizer did not clip: %v", out)
	}
}

func TestQuantizerInvalid(t *testing.T) {
	if _, err := NewQuantizer(0, 1); err == nil {
		t.Error("0-bit quantizer accepted")
	}
	if _, err := NewQuantizer(8, 0); err == nil {
		t.Error("zero-limit quantizer accepted")
	}
	if _, err := NewQuantizer(40, 1); err == nil {
		t.Error("40-bit quantizer accepted")
	}
}

func TestQuantizedAWGN(t *testing.T) {
	src := rng.New(6)
	ch, err := NewQuantizedAWGN(20, 14, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.Sigma2()-0.01) > 1e-12 {
		t.Fatalf("Sigma2 = %v", ch.Sigma2())
	}
	// With 14 bits the quantization error should be tiny relative to noise.
	var maxDev float64
	for i := 0; i < 1000; i++ {
		x := complex(0.5, -0.5)
		y := ch.Corrupt(x)
		dev := math.Abs(real(y-x)) + math.Abs(imag(y-x))
		if dev > maxDev {
			maxDev = dev
		}
	}
	if maxDev > 1.0 {
		t.Fatalf("deviation unexpectedly large: %v", maxDev)
	}
}

func TestBSCCrossoverRate(t *testing.T) {
	src := rng.New(7)
	ch, err := NewBSC(0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	flips := 0
	for i := 0; i < n; i++ {
		if ch.CorruptBit(0) == 1 {
			flips++
		}
	}
	rate := float64(flips) / n
	if math.Abs(rate-0.2) > 0.01 {
		t.Fatalf("flip rate = %v, want 0.2", rate)
	}
}

func TestBSCPreservesAlphabet(t *testing.T) {
	src := rng.New(8)
	ch, _ := NewBSC(0.5, src)
	for i := 0; i < 1000; i++ {
		if v := ch.CorruptBit(byte(i & 1)); v != 0 && v != 1 {
			t.Fatalf("BSC emitted non-bit value %d", v)
		}
	}
	bits := []byte{0, 1, 1, 0, 1}
	out := make([]byte, len(bits))
	ch.CorruptBits(out, bits)
	for i, v := range out {
		if v != 0 && v != 1 {
			t.Fatalf("CorruptBits emitted non-bit value %d at %d", v, i)
		}
	}
}

func TestBSCZeroNoiseless(t *testing.T) {
	src := rng.New(9)
	ch, _ := NewBSC(0, src)
	for i := 0; i < 100; i++ {
		if ch.CorruptBit(1) != 1 || ch.CorruptBit(0) != 0 {
			t.Fatal("BSC with p=0 altered a bit")
		}
	}
}

func TestBSCInvalid(t *testing.T) {
	src := rng.New(10)
	if _, err := NewBSC(0.6, src); err == nil {
		t.Error("BSC p>0.5 accepted")
	}
	if _, err := NewBSC(-0.1, src); err == nil {
		t.Error("BSC p<0 accepted")
	}
	if _, err := NewBSC(0.1, nil); err == nil {
		t.Error("BSC nil source accepted")
	}
}

func TestBECErasureRate(t *testing.T) {
	src := rng.New(11)
	ch, err := NewBEC(0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	erased, flipped := 0, 0
	for i := 0; i < n; i++ {
		switch ch.CorruptBit(1) {
		case Erased:
			erased++
		case 0:
			flipped++
		}
	}
	if flipped != 0 {
		t.Fatalf("BEC flipped %d bits", flipped)
	}
	rate := float64(erased) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("erasure rate = %v, want 0.3", rate)
	}
}

func TestBECInvalid(t *testing.T) {
	src := rng.New(12)
	if _, err := NewBEC(1.0, src); err == nil {
		t.Error("BEC p=1 accepted")
	}
	if _, err := NewBEC(0.1, nil); err == nil {
		t.Error("BEC nil source accepted")
	}
}

func TestRayleighBlockEqualizedMean(t *testing.T) {
	src := rng.New(13)
	ch, err := NewRayleighBlock(30, 10, src)
	if err != nil {
		t.Fatal(err)
	}
	// After coherent equalization the mean of the received symbol should be
	// close to the transmitted symbol when averaged over many blocks.
	const n = 50000
	x := complex(1, 0)
	var sumI float64
	for i := 0; i < n; i++ {
		sumI += real(ch.Corrupt(x))
	}
	if math.Abs(sumI/n-1) > 0.08 {
		t.Fatalf("equalized mean = %v, want about 1", sumI/n)
	}
}

func TestRayleighBlockInvalid(t *testing.T) {
	src := rng.New(14)
	if _, err := NewRayleighBlock(10, 0, src); err == nil {
		t.Error("zero block length accepted")
	}
	if _, err := NewRayleighBlock(10, 4, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestNoiseVariance(t *testing.T) {
	if math.Abs(NoiseVariance(0)-1) > 1e-12 {
		t.Error("NoiseVariance(0 dB) != 1")
	}
	if math.Abs(NoiseVariance(10)-0.1) > 1e-12 {
		t.Error("NoiseVariance(10 dB) != 0.1")
	}
}

func BenchmarkAWGNCorrupt(b *testing.B) {
	src := rng.New(1)
	ch, _ := NewAWGNdB(10, src)
	var acc complex128
	for i := 0; i < b.N; i++ {
		acc += ch.Corrupt(complex(0.5, 0.5))
	}
	_ = acc
}
