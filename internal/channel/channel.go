// Package channel implements the channel models used in the paper's
// evaluation: the complex additive white Gaussian noise (AWGN) channel with
// an optional ADC quantizer, the binary symmetric channel (BSC), the binary
// erasure channel (BEC, used by the fountain-code baseline), and a Rayleigh
// block-fading extension.
//
// Transmitted symbols are assumed to have unit average energy (the
// constellation package guarantees this), so an AWGN channel at signal-to-
// noise ratio SNR adds complex noise of total variance 1/SNR.
package channel

import (
	"fmt"
	"math"

	"spinal/internal/mathx"
	"spinal/internal/rng"
)

// SymbolChannel corrupts complex (I-Q) symbols.
type SymbolChannel interface {
	// Corrupt returns the received value for a single transmitted symbol.
	Corrupt(x complex128) complex128
}

// BlockChannel corrupts whole blocks of symbols: dst[i] receives the channel
// output for src[i], in slice order (stateful channels consume their noise
// stream exactly as the equivalent sequence of Corrupt calls would). dst and
// src have equal length and may alias. Every channel model in this package
// implements it.
type BlockChannel interface {
	CorruptBlock(dst, src []complex128)
}

// BitChannel corrupts individual bits (values 0 or 1).
type BitChannel interface {
	// CorruptBit returns the received value of a single transmitted bit.
	CorruptBit(b byte) byte
}

// AWGN is a discrete-time complex additive white Gaussian noise channel.
type AWGN struct {
	sigma2 float64
	src    *rng.Rand
}

// NewAWGN returns an AWGN channel for the given linear SNR (signal power 1).
// Use NewAWGNdB for an SNR expressed in decibels.
func NewAWGN(snr float64, src *rng.Rand) (*AWGN, error) {
	if snr <= 0 {
		return nil, fmt.Errorf("channel: SNR must be positive, got %v", snr)
	}
	if src == nil {
		return nil, fmt.Errorf("channel: nil random source")
	}
	return &AWGN{sigma2: 1 / snr, src: src}, nil
}

// NewAWGNdB returns an AWGN channel for an SNR given in dB.
func NewAWGNdB(snrDB float64, src *rng.Rand) (*AWGN, error) {
	return NewAWGN(mathx.DBToLinear(snrDB), src)
}

// Sigma2 returns the total complex noise variance (sum over both dimensions).
func (a *AWGN) Sigma2() float64 { return a.sigma2 }

// SNR returns the linear signal-to-noise ratio of the channel.
func (a *AWGN) SNR() float64 { return 1 / a.sigma2 }

// Corrupt adds one sample of complex Gaussian noise to x.
func (a *AWGN) Corrupt(x complex128) complex128 {
	return x + a.src.ComplexNormal(a.sigma2)
}

// CorruptBlock corrupts a block of symbols into dst; see BlockChannel.
func (a *AWGN) CorruptBlock(dst, src []complex128) {
	for i, x := range src {
		dst[i] = x + a.src.ComplexNormal(a.sigma2)
	}
}

// Quantizer models the receiver's analog-to-digital converter: each dimension
// is clipped to [-limit, limit] and rounded to one of 2^bits uniform levels.
// The paper's evaluation quantizes each dimension to 14 bits (§5).
type Quantizer struct {
	bits  int
	limit float64
	step  float64
}

// NewQuantizer returns a per-dimension uniform quantizer with the given
// resolution in bits and full-scale range [-limit, limit].
func NewQuantizer(bits int, limit float64) (*Quantizer, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("channel: quantizer bits must be in [1,32], got %d", bits)
	}
	if limit <= 0 {
		return nil, fmt.Errorf("channel: quantizer limit must be positive, got %v", limit)
	}
	levels := float64(uint64(1) << uint(bits))
	return &Quantizer{bits: bits, limit: limit, step: 2 * limit / levels}, nil
}

// Bits returns the quantizer resolution per dimension.
func (q *Quantizer) Bits() int { return q.bits }

// quantizeDim clips and rounds a single coordinate.
func (q *Quantizer) quantizeDim(v float64) float64 {
	v = mathx.Clamp(v, -q.limit, q.limit-q.step/2)
	idx := math.Floor((v + q.limit) / q.step)
	return -q.limit + (idx+0.5)*q.step
}

// Quantize applies the ADC model to both dimensions of a received symbol.
func (q *Quantizer) Quantize(x complex128) complex128 {
	return complex(q.quantizeDim(real(x)), q.quantizeDim(imag(x)))
}

// QuantizedAWGN composes an AWGN channel with an ADC quantizer, which is the
// exact receive path of the paper's simulations.
type QuantizedAWGN struct {
	awgn *AWGN
	q    *Quantizer
}

// NewQuantizedAWGN builds the §5 receive path: AWGN at snrDB followed by a
// quantizer with the given bit depth. The quantizer full-scale range is set to
// cover the unit-energy constellation plus four noise standard deviations.
func NewQuantizedAWGN(snrDB float64, adcBits int, src *rng.Rand) (*QuantizedAWGN, error) {
	awgn, err := NewAWGNdB(snrDB, src)
	if err != nil {
		return nil, err
	}
	perDim := math.Sqrt(awgn.Sigma2() / 2)
	limit := math.Sqrt(1.5) + 4*perDim // max linear-constellation amplitude + noise headroom
	q, err := NewQuantizer(adcBits, limit)
	if err != nil {
		return nil, err
	}
	return &QuantizedAWGN{awgn: awgn, q: q}, nil
}

// Corrupt passes a symbol through noise and the ADC.
func (c *QuantizedAWGN) Corrupt(x complex128) complex128 {
	return c.q.Quantize(c.awgn.Corrupt(x))
}

// CorruptBlock passes a block of symbols through noise and the ADC; see
// BlockChannel.
func (c *QuantizedAWGN) CorruptBlock(dst, src []complex128) {
	for i, x := range src {
		dst[i] = c.q.Quantize(c.awgn.Corrupt(x))
	}
}

// Sigma2 returns the underlying noise variance.
func (c *QuantizedAWGN) Sigma2() float64 { return c.awgn.Sigma2() }

// BSC is a binary symmetric channel with crossover probability p.
type BSC struct {
	p   float64
	src *rng.Rand
}

// NewBSC returns a BSC with crossover probability p in [0, 0.5].
func NewBSC(p float64, src *rng.Rand) (*BSC, error) {
	if p < 0 || p > 0.5 {
		return nil, fmt.Errorf("channel: BSC crossover probability must be in [0,0.5], got %v", p)
	}
	if src == nil {
		return nil, fmt.Errorf("channel: nil random source")
	}
	return &BSC{p: p, src: src}, nil
}

// P returns the crossover probability.
func (b *BSC) P() float64 { return b.p }

// CorruptBit flips the bit with probability p.
func (b *BSC) CorruptBit(bit byte) byte {
	if b.src.Bernoulli(b.p) {
		return bit ^ 1
	}
	return bit
}

// CorruptBits corrupts a block of bits (values 0/1) into dst, flipping each
// with probability p; dst and src have equal length and may alias.
func (b *BSC) CorruptBits(dst, src []byte) {
	for i, v := range src {
		dst[i] = b.CorruptBit(v)
	}
}

// Erased marks an erased position in BEC output.
const Erased = byte(2)

// BEC is a binary erasure channel with erasure probability p. Erased bits are
// reported with the value Erased.
type BEC struct {
	p   float64
	src *rng.Rand
}

// NewBEC returns a BEC with erasure probability p in [0, 1).
func NewBEC(p float64, src *rng.Rand) (*BEC, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("channel: BEC erasure probability must be in [0,1), got %v", p)
	}
	if src == nil {
		return nil, fmt.Errorf("channel: nil random source")
	}
	return &BEC{p: p, src: src}, nil
}

// P returns the erasure probability.
func (b *BEC) P() float64 { return b.p }

// CorruptBit erases the bit with probability p.
func (b *BEC) CorruptBit(bit byte) byte {
	if b.src.Bernoulli(b.p) {
		return Erased
	}
	return bit
}

// CorruptBits corrupts a block of bits into dst, erasing each with
// probability p (erased slots carry the value Erased); dst and src have
// equal length and may alias.
func (b *BEC) CorruptBits(dst, src []byte) {
	for i, v := range src {
		dst[i] = b.CorruptBit(v)
	}
}

// RayleighBlock is a block-fading channel: within each block of blockLen
// symbols the channel gain h is constant and drawn as a circularly symmetric
// complex Gaussian with unit average power; across blocks gains are
// independent. The receiver is assumed coherent (it knows h), so Corrupt
// returns the gain-compensated observation h*·y/|h|² while the effective SNR
// varies per block. This models the fast-fading motivation in §1.
type RayleighBlock struct {
	sigma2   float64
	blockLen int
	src      *rng.Rand

	pos  int
	gain complex128
}

// NewRayleighBlock returns a Rayleigh block-fading channel with the given
// average SNR (dB) and fading block length in symbols.
func NewRayleighBlock(avgSNRdB float64, blockLen int, src *rng.Rand) (*RayleighBlock, error) {
	if blockLen < 1 {
		return nil, fmt.Errorf("channel: fading block length must be >= 1, got %d", blockLen)
	}
	snr := mathx.DBToLinear(avgSNRdB)
	if snr <= 0 {
		return nil, fmt.Errorf("channel: SNR must be positive")
	}
	if src == nil {
		return nil, fmt.Errorf("channel: nil random source")
	}
	return &RayleighBlock{sigma2: 1 / snr, blockLen: blockLen, src: src}, nil
}

// Corrupt applies the current block gain, adds noise, and equalizes.
func (r *RayleighBlock) Corrupt(x complex128) complex128 {
	if r.pos%r.blockLen == 0 {
		r.gain = r.src.ComplexNormal(1)
	}
	r.pos++
	y := r.gain*x + r.src.ComplexNormal(r.sigma2)
	p := real(r.gain)*real(r.gain) + imag(r.gain)*imag(r.gain)
	if p < 1e-12 {
		p = 1e-12
	}
	// Coherent equalization: y * conj(h) / |h|^2.
	return y * complex(real(r.gain)/p, -imag(r.gain)/p)
}

// CorruptBlock applies the fading process to a block of symbols; see
// BlockChannel. Block boundaries are independent of fading-block boundaries —
// the gain process advances per symbol exactly as under scalar Corrupt calls.
func (r *RayleighBlock) CorruptBlock(dst, src []complex128) {
	for i, x := range src {
		dst[i] = r.Corrupt(x)
	}
}

// Sigma2 returns the additive noise variance at the configured average SNR
// (the instantaneous post-equalization noise power varies with the block
// gain).
func (r *RayleighBlock) Sigma2() float64 { return r.sigma2 }

// NoiseVariance returns the complex noise variance corresponding to an SNR in
// dB for unit-energy signalling.
func NoiseVariance(snrDB float64) float64 {
	return 1 / mathx.DBToLinear(snrDB)
}
