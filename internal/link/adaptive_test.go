package link

import (
	"testing"

	"spinal/internal/core"
)

// TestAdaptiveSearchPressureLadder drives the budget scheduler's pressure
// ladder directly: a flow skipped over for being over budget accrues
// pressure and climbs from the base strategy through gap and lookahead to
// the stacked approx mode; executed picks decay the pressure back down so
// relieved flows relax to the base strategy.
func TestAdaptiveSearchPressureLadder(t *testing.T) {
	e := &flowEngine{
		budget:   100,
		adaptive: true,
		spent:    map[uint32]int64{},
		flowQ:    map[uint32]*flowQueue{},
		pressure: map[uint32]uint64{},
	}
	mk := func(id uint32) *flowQueue {
		fq := &flowQueue{id: id, msgs: []*msgState{{flow: id}}, inRing: true}
		e.flowQ[id] = fq
		e.ring = append(e.ring, fq)
		return fq
	}
	hog := mk(1)
	mk(2)
	e.spent[1] = 500 // over budget relative to flow 2
	e.spent[2] = 10

	if sc := e.searchFor(hog.id); sc.Mode != core.SearchExact {
		t.Fatalf("unpressured flow got mode %v, want the exact base", sc.Mode)
	}
	// Each pick skips the hog once (one unit of pressure) and executes
	// flow 2. Re-arm flow 2 after every pick so the ring keeps both flows.
	pump := func() {
		fq := e.pickLocked()
		if fq == nil || fq.id != 2 {
			t.Fatalf("picked %+v, want flow 2 while the hog is over budget", fq)
		}
		fq.inRing = true
		e.ring = append(e.ring, fq)
	}
	pump()
	if sc := e.searchFor(hog.id); sc.Mode != core.SearchGap {
		t.Fatalf("pressure 1 got mode %v, want gap", sc.Mode)
	}
	for e.pressure[hog.id] < 4 {
		pump()
	}
	if sc := e.searchFor(hog.id); sc.Mode != core.SearchLookahead {
		t.Fatalf("pressure %d got mode %v, want lookahead", e.pressure[hog.id], sc.Mode)
	}
	for e.pressure[hog.id] < 8 {
		pump()
	}
	if sc := e.searchFor(hog.id); sc.Mode != core.SearchApprox {
		t.Fatalf("pressure %d got mode %v, want approx", e.pressure[hog.id], sc.Mode)
	}

	// Relieve the hog: once it is schedulable again, each executed pick
	// halves its pressure until it relaxes to the base strategy.
	e.spent[1] = 0
	for i := 0; i < 10 && e.pressure[hog.id] > 0; i++ {
		fq := e.pickLocked()
		fq.inRing = true
		e.ring = append(e.ring, fq)
	}
	if sc := e.searchFor(hog.id); sc.Mode != core.SearchExact {
		t.Fatalf("drained flow got mode %v, want the exact base back", sc.Mode)
	}

	// The attempt counters and saved-node estimate surface via searchStats.
	e.noteSearch(core.SearchGap, 1000)
	e.noteSearch(core.SearchGap, 500)
	e.noteSearch(core.SearchApprox, 2000)
	attempts, saved := e.searchStats()
	if attempts["gap"] != 2 || attempts["approx"] != 1 || attempts["exact"] != 0 {
		t.Fatalf("searchStats attempts = %v, want gap=2 approx=1", attempts)
	}
	if saved != 3500 {
		t.Fatalf("searchStats saved = %d, want 3500", saved)
	}
}
