package link

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

// runReceiver drains a receiver in a goroutine, collecting every delivered
// packet until stop is closed.
func runReceiver(t *testing.T, r *Receiver, stop <-chan struct{}) (<-chan Delivered, *sync.WaitGroup) {
	t.Helper()
	out := make(chan Delivered, 64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(out)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d, err := r.Receive(20 * time.Millisecond)
			if err == ErrTimeout {
				continue
			}
			if err == ErrClosed {
				return
			}
			if err != nil {
				t.Errorf("receiver error: %v", err)
				return
			}
			out <- *d
		}
	}()
	return out, &wg
}

func TestLinkTransferNoiseless(t *testing.T) {
	a, b, err := NewPipePair(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := Config{}
	sender, err := NewSender(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := NewReceiver(b, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	delivered, wg := runReceiver(t, receiver, stop)

	payload := []byte("spinal codes over a perfect link")
	report, err := sender.Send(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Acked {
		t.Fatal("noiseless transfer not acknowledged")
	}
	select {
	case d := <-delivered:
		if d.MsgID != 1 || !bytes.Equal(d.Payload, payload) {
			t.Fatalf("delivered wrong packet: %+v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never delivered to the application")
	}
	close(stop)
	a.Close()
	wg.Wait()
}

func TestLinkTransferOverAWGN(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test: the sender/receiver rate depends on real-time decode latency, which the race detector's slowdown distorts")
	}
	a, b, err := NewPipePair(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := Config{SymbolsPerFrame: 32}
	sender, _ := NewSender(a, cfg)
	radio, _ := channel.NewAWGNdB(15, rng.New(12))
	receiver, _ := NewReceiver(b, cfg, radio)
	stop := make(chan struct{})
	delivered, wg := runReceiver(t, receiver, stop)

	payloads := [][]byte{
		[]byte("first packet over a 15 dB channel"),
		[]byte("second packet, slightly longer to vary the message size a bit"),
		bytes.Repeat([]byte{0xA5}, 200),
	}
	for i, p := range payloads {
		report, err := sender.Send(uint32(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Acked {
			t.Fatalf("packet %d not acknowledged at 15 dB", i+1)
		}
		if report.Rate <= 0 || report.Rate > 2*8 {
			t.Fatalf("packet %d reports implausible rate %v", i+1, report.Rate)
		}
	}
	got := map[uint32][]byte{}
	for range payloads {
		select {
		case d := <-delivered:
			got[d.MsgID] = d.Payload
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for deliveries")
		}
	}
	for i, p := range payloads {
		if !bytes.Equal(got[uint32(i+1)], p) {
			t.Fatalf("packet %d payload corrupted", i+1)
		}
	}
	close(stop)
	a.Close()
	wg.Wait()
}

func TestLinkTransferWithFrameLossAndNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test: the sender/receiver rate depends on real-time decode latency, which the race detector's slowdown distorts")
	}
	// 20% frame loss in both directions plus a 10 dB channel: the rateless
	// sender just keeps going until the (possibly retransmitted) ack arrives.
	a, b, err := NewPipePair(0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := Config{SymbolsPerFrame: 24, AckPoll: time.Millisecond}
	sender, _ := NewSender(a, cfg)
	radio, _ := channel.NewAWGNdB(10, rng.New(14))
	receiver, _ := NewReceiver(b, cfg, radio)
	stop := make(chan struct{})
	delivered, wg := runReceiver(t, receiver, stop)

	payload := []byte("lossy link, still delivered")
	report, err := sender.Send(99, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Acked {
		t.Fatal("packet not acknowledged over the lossy link")
	}
	select {
	case d := <-delivered:
		if !bytes.Equal(d.Payload, payload) {
			t.Fatal("payload corrupted over the lossy link")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never delivered")
	}
	close(stop)
	a.Close()
	wg.Wait()
}

func TestLinkRateTracksChannelQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test: the sender/receiver rate depends on real-time decode latency, which the race detector's slowdown distorts")
	}
	// The achieved rate at 25 dB should comfortably exceed the rate at 5 dB:
	// the whole point of a rateless link layer. The generous AckPoll paces the
	// sender so the in-memory link behaves like a link with a finite symbol
	// rate rather than an infinitely fast one, and leaves the receiver's
	// decode attempts plenty of slack even when the test machine is busy
	// running other packages' tests.
	rate := func(snrDB float64, seed uint64) float64 {
		a, b, err := NewPipePair(0, seed)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		cfg := Config{SymbolsPerFrame: 16, AckPoll: 40 * time.Millisecond}
		sender, _ := NewSender(a, cfg)
		radio, _ := channel.NewAWGNdB(snrDB, rng.New(seed+1))
		receiver, _ := NewReceiver(b, cfg, radio)
		stop := make(chan struct{})
		_, wg := runReceiver(t, receiver, stop)
		defer func() {
			close(stop)
			a.Close()
			wg.Wait()
		}()
		payload := bytes.Repeat([]byte("rate probe "), 4)
		report, err := sender.Send(7, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Acked {
			t.Fatalf("probe packet not acknowledged at %v dB", snrDB)
		}
		return report.Rate
	}
	high := rate(25, 20)
	low := rate(5, 30)
	if high <= low {
		t.Fatalf("rate at 25 dB (%v) not above rate at 5 dB (%v)", high, low)
	}
	if low <= 0 {
		t.Fatalf("rate at 5 dB should still be positive, got %v", low)
	}
}

func TestLinkGivesUpOnDeadChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock pacing test: the sender/receiver rate depends on real-time decode latency, which the race detector's slowdown distorts")
	}
	// The receiver never sees a frame (100%... well, the pipe drops nothing,
	// but the radio is hopeless: -25 dB). The sender must stop at MaxPasses
	// and report a non-acknowledged packet rather than hanging.
	a, b, err := NewPipePair(0, 40)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := Config{MaxPasses: 3, SymbolsPerFrame: 16, AckPoll: 100 * time.Microsecond, FinalWait: 5 * time.Millisecond}
	sender, _ := NewSender(a, cfg)
	radio, _ := channel.NewAWGNdB(-25, rng.New(41))
	receiver, _ := NewReceiver(b, cfg, radio)
	stop := make(chan struct{})
	_, wg := runReceiver(t, receiver, stop)

	payload := bytes.Repeat([]byte{1, 2, 3, 4}, 16)
	report, err := sender.Send(5, payload)
	if err != nil {
		t.Fatal(err)
	}
	if report.Acked {
		t.Fatal("packet acknowledged over a -25 dB channel within 3 passes; implausible")
	}
	if report.SymbolsSent == 0 || report.FramesSent == 0 {
		t.Fatal("sender did not transmit anything")
	}
	close(stop)
	a.Close()
	wg.Wait()
}

func TestSenderValidation(t *testing.T) {
	a, _, _ := NewPipePair(0, 50)
	defer a.Close()
	if _, err := NewSender(nil, Config{}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewSender(a, Config{K: 30}); err == nil {
		t.Error("absurd K accepted")
	}
	if _, err := NewSender(a, Config{SymbolsPerFrame: MaxSymbolsPerFrame + 1}); err == nil {
		t.Error("oversized frames accepted")
	}
	if _, err := NewSender(a, Config{Schedule: 9}); err == nil {
		t.Error("unknown schedule accepted")
	}
	s, err := NewSender(a, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(1, nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := s.Send(1, make([]byte, MaxPayload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestReceiverValidation(t *testing.T) {
	_, b, _ := NewPipePair(0, 60)
	defer b.Close()
	if _, err := NewReceiver(nil, Config{}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewReceiver(b, Config{C: 1}, nil); err == nil {
		t.Error("invalid C accepted")
	}
	r, err := NewReceiver(b, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Malformed and mismatched frames must be dropped, not crash the loop.
	if _, err := r.HandleFrame([]byte{frameMagic, typeData, 0}); err == nil {
		t.Error("truncated frame accepted")
	}
	evil := &DataFrame{MsgID: 1, MessageBits: 1 << 30, K: 8, C: 10, Seed: 0, Symbols: []complex128{1}}
	buf, _ := evil.Marshal()
	if _, err := r.HandleFrame(buf); err == nil {
		t.Error("absurd message size accepted")
	}
	wrongSeed := &DataFrame{MsgID: 1, MessageBits: 64, K: 8, C: 10, Seed: 12345, Symbols: []complex128{1}}
	buf, _ = wrongSeed.Marshal()
	if _, err := r.HandleFrame(buf); err == nil {
		t.Error("frame with foreign seed accepted")
	}
	// A hostile StartIndex must be rejected, not wrap negative on 32-bit
	// platforms and panic in the schedule's batch position fill.
	hugeStart := &DataFrame{MsgID: 2, MessageBits: 64, K: 8, C: 10, Seed: 0,
		StartIndex: 1 << 31, Symbols: []complex128{1}}
	buf, _ = hugeStart.Marshal()
	if _, err := r.HandleFrame(buf); err == nil {
		t.Error("out-of-range start index accepted")
	}
	if got := r.SymbolsReceived(123); got != 0 {
		t.Errorf("SymbolsReceived for unknown message = %d", got)
	}
}
