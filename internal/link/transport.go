// Package link implements a rateless link-layer protocol on top of spinal
// codes — the "feedback link-layer protocol" called out as future work in §6
// of the paper. A sender streams frames of coded symbols for a packet until
// the receiver, which feeds every arriving symbol to the spinal decoder and
// checks an embedded CRC-32, acknowledges successful decoding.
//
// Frames travel over a Transport: either an in-memory pipe (for simulations
// and tests, with configurable frame loss) or UDP datagrams (so a sender and
// receiver can run as separate processes). The wireless channel itself is
// simulated at the receiver by applying a symbol-level impairment
// (channel.AWGN or similar) to the symbol payload of every received frame.
package link

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spinal/internal/rng"
)

// ErrTimeout is returned by Transport.Receive when no frame arrives within
// the requested timeout.
var ErrTimeout = errors.New("link: receive timeout")

// ErrClosed is returned when operating on a closed transport.
var ErrClosed = errors.New("link: transport closed")

// Transport moves opaque frames between the two ends of a link. Frames may be
// dropped (lossy links) but are never corrupted or reordered by the
// transport itself; symbol-level noise is modelled separately.
type Transport interface {
	// Send transmits one frame. Send is safe for concurrent use and is
	// atomic per frame: when multiple goroutines send over one transport,
	// every frame arrives whole (or is dropped whole) — frames are never
	// torn or interleaved with each other. Frames from one goroutine keep
	// their relative order; no order is defined between concurrent senders.
	Send(frame []byte) error
	// Receive waits up to timeout for one frame and copies it into buf,
	// returning the frame length. A zero timeout polls without blocking.
	// It returns ErrTimeout if no frame is available in time.
	Receive(buf []byte, timeout time.Duration) (int, error)
	// Close releases the transport's resources.
	Close() error
}

// PacketTransport is implemented by transports that can tell apart — and
// reply to — many remote peers on one local endpoint. The multi-flow
// receiver uses it to serve many concurrent senders over a single UDP
// socket: frames are read with their source address and acks are directed
// back to the specific sender they belong to. SendTo carries the same
// atomicity guarantee as Transport.Send.
type PacketTransport interface {
	Transport
	// ReceiveFrom behaves like Receive and additionally reports the source
	// address of the frame.
	ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error)
	// SendTo transmits one frame to the given peer.
	SendTo(frame []byte, to net.Addr) error
}

// maxFrameSize bounds the size of a single frame on any transport.
const maxFrameSize = 4096

// Pipe is an in-memory Transport endpoint. Frames sent on one endpoint are
// received on its peer, subject to an optional independent loss probability.
type Pipe struct {
	out   chan []byte
	in    chan []byte
	loss  float64
	src   *rng.Rand
	mu    sync.Mutex
	close chan struct{}
	once  sync.Once
}

// NewPipePair returns two connected in-memory transports. Frames sent in
// either direction are dropped independently with probability loss, using a
// deterministic random source derived from seed.
func NewPipePair(loss float64, seed uint64) (*Pipe, *Pipe, error) {
	if loss < 0 || loss >= 1 {
		return nil, nil, fmt.Errorf("link: loss probability %v out of [0,1)", loss)
	}
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	closed := make(chan struct{})
	a := &Pipe{out: ab, in: ba, loss: loss, src: rng.New(seed), close: closed}
	b := &Pipe{out: ba, in: ab, loss: loss, src: rng.New(seed + 1), close: closed}
	return a, b, nil
}

// Send implements Transport. Lossy pipes drop the frame silently with the
// configured probability, exactly like a lossy radio link would. Each frame
// is copied before it is handed to the peer's queue in a single channel
// operation, so concurrent Sends never tear or interleave frames.
func (p *Pipe) Send(frame []byte) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	select {
	case <-p.close:
		return ErrClosed
	default:
	}
	p.mu.Lock()
	drop := p.loss > 0 && p.src.Bernoulli(p.loss)
	p.mu.Unlock()
	if drop {
		return nil
	}
	cp := append([]byte(nil), frame...)
	select {
	case p.out <- cp:
		return nil
	case <-p.close:
		return ErrClosed
	default:
		// Queue full: behave like a saturated link and drop the frame.
		return nil
	}
}

// Receive implements Transport.
func (p *Pipe) Receive(buf []byte, timeout time.Duration) (int, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	if timeout == 0 {
		select {
		case frame := <-p.in:
			return copy(buf, frame), nil
		case <-p.close:
			return 0, ErrClosed
		default:
			return 0, ErrTimeout
		}
	}
	select {
	case frame := <-p.in:
		return copy(buf, frame), nil
	case <-p.close:
		return 0, ErrClosed
	case <-timer:
		return 0, ErrTimeout
	}
}

// Close implements Transport. Closing either endpoint closes the pair.
func (p *Pipe) Close() error {
	p.once.Do(func() { close(p.close) })
	return nil
}

// UDP is a Transport over UDP datagrams, so the sender and receiver can run
// as separate processes (see cmd/spinalsend and cmd/spinalrecv).
type UDP struct {
	conn net.PacketConn
	peer net.Addr
	mu   sync.Mutex
}

// NewUDP opens a UDP transport bound to localAddr (e.g. "127.0.0.1:9000" or
// ":0") and directed at peerAddr. If peerAddr is empty, the peer is learned
// from the first received frame (server style).
func NewUDP(localAddr, peerAddr string) (*UDP, error) {
	conn, err := net.ListenPacket("udp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("link: listen %q: %w", localAddr, err)
	}
	u := &UDP{conn: conn}
	if peerAddr != "" {
		addr, err := net.ResolveUDPAddr("udp", peerAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("link: resolve %q: %w", peerAddr, err)
		}
		u.peer = addr
	}
	return u, nil
}

// LocalAddr returns the bound local address, useful when listening on ":0".
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// Send implements Transport.
func (u *UDP) Send(frame []byte) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	u.mu.Lock()
	peer := u.peer
	u.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("link: peer address not yet known")
	}
	_, err := u.conn.WriteTo(frame, peer)
	return err
}

// Receive implements Transport. The peer address is learned from incoming
// frames when it was not configured explicitly.
func (u *UDP) Receive(buf []byte, timeout time.Duration) (int, error) {
	n, _, err := u.ReceiveFrom(buf, timeout)
	return n, err
}

// ReceiveFrom implements PacketTransport: one frame plus its source address,
// so a receiver serving many senders can direct each ack at the sender it
// belongs to. The first source also becomes the default Send peer when none
// was configured.
func (u *UDP) ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error) {
	if timeout <= 0 {
		timeout = time.Millisecond
	}
	if err := u.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, nil, err
	}
	n, from, err := u.conn.ReadFrom(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, nil, ErrTimeout
		}
		return 0, nil, err
	}
	u.mu.Lock()
	if u.peer == nil {
		u.peer = from
	}
	u.mu.Unlock()
	return n, from, nil
}

// SendTo implements PacketTransport. A single WriteTo is one datagram, so
// concurrent SendTo calls are frame-atomic like Send.
func (u *UDP) SendTo(frame []byte, to net.Addr) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	if to == nil {
		return fmt.Errorf("link: SendTo with nil peer address")
	}
	_, err := u.conn.WriteTo(frame, to)
	return err
}

// Close implements Transport.
func (u *UDP) Close() error { return u.conn.Close() }
