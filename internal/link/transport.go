// Package link implements a rateless link-layer protocol on top of spinal
// codes — the "feedback link-layer protocol" called out as future work in §6
// of the paper. A sender streams frames of coded symbols for a packet until
// the receiver, which feeds every arriving symbol to the spinal decoder and
// checks an embedded CRC-32, acknowledges successful decoding.
//
// Frames travel over a Transport: either an in-memory pipe (for simulations
// and tests, with configurable frame loss) or UDP datagrams (so a sender and
// receiver can run as separate processes). The wireless channel itself is
// simulated at the receiver by applying a symbol-level impairment
// (channel.AWGN or similar) to the symbol payload of every received frame.
package link

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spinal/internal/rng"
)

// ErrTimeout is returned by Transport.Receive when no frame arrives within
// the requested timeout.
var ErrTimeout = errors.New("link: receive timeout")

// ErrClosed is returned when operating on a closed transport.
var ErrClosed = errors.New("link: transport closed")

// Transport moves opaque frames between the two ends of a link. Frames may be
// dropped (lossy links) but are never corrupted or reordered by the
// transport itself; symbol-level noise is modelled separately.
type Transport interface {
	// Send transmits one frame. Send is safe for concurrent use and is
	// atomic per frame: when multiple goroutines send over one transport,
	// every frame arrives whole (or is dropped whole) — frames are never
	// torn or interleaved with each other. Frames from one goroutine keep
	// their relative order; no order is defined between concurrent senders.
	Send(frame []byte) error
	// Receive waits up to timeout for one frame and copies it into buf,
	// returning the frame length. A zero timeout polls: it returns queued
	// frames immediately and ErrTimeout when none are queued, without the
	// blocking wait (the UDP transport's portable path may wait up to a
	// millisecond for the kernel; its Linux batch path polls truly
	// non-blocking). Timeout errors satisfy errors.Is(err, ErrTimeout).
	Receive(buf []byte, timeout time.Duration) (int, error)
	// Close releases the transport's resources.
	Close() error
}

// BatchTransport is implemented by transports that can move many frames per
// call, amortizing the per-frame cost (a syscall on UDP, a channel operation
// on the pipe) across a whole batch. It is an optional upgrade interface:
// callers type-assert and fall back to the one-frame methods.
type BatchTransport interface {
	Transport
	// ReceiveBatch fills up to len(bufs) frames, one frame per buffer, and
	// returns how many were received. Each bufs[i] is used to its full
	// capacity and re-sliced to the frame length on return; implementations
	// may swap bufs[i] for different backing storage of at least the same
	// capacity (the arena swap contract), so callers must use the returned
	// slice headers, not retain aliases of the originals. The timeout
	// bounds the wait for the first frame only — once at least one frame
	// is in hand the call returns with whatever else is immediately
	// available, and a zero timeout polls without blocking. ErrTimeout is
	// returned only when no frame arrived at all.
	ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error)
	// SendBatch transmits the frames in order and returns how many were
	// handed to the link; frames the link itself drops (loss, full queue)
	// count as sent, exactly as with Send. Each frame remains individually
	// atomic.
	SendBatch(frames [][]byte) (int, error)
}

// BatchPacketTransport combines batched I/O with per-peer addressing: the
// multi-socket ingest path reads frame bursts with their source addresses so
// acks can be directed back to the sender each frame came from.
type BatchPacketTransport interface {
	PacketTransport
	BatchTransport
	// ReceiveBatchFrom behaves like ReceiveBatch and additionally records
	// the source address of frame i in addrs[i]. addrs may be nil when the
	// caller does not need sources; otherwise len(addrs) must be at least
	// len(bufs).
	ReceiveBatchFrom(bufs [][]byte, addrs []net.Addr, timeout time.Duration) (int, error)
}

// PacketTransport is implemented by transports that can tell apart — and
// reply to — many remote peers on one local endpoint. The multi-flow
// receiver uses it to serve many concurrent senders over a single UDP
// socket: frames are read with their source address and acks are directed
// back to the specific sender they belong to. SendTo carries the same
// atomicity guarantee as Transport.Send.
type PacketTransport interface {
	Transport
	// ReceiveFrom behaves like Receive and additionally reports the source
	// address of the frame.
	ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error)
	// SendTo transmits one frame to the given peer.
	SendTo(frame []byte, to net.Addr) error
}

// maxFrameSize bounds the size of a single frame on any transport.
const maxFrameSize = 4096

// MaxFrameSize is the exported frame-size bound: the capacity callers should
// give receive buffers (and what Arena buffers default to) so any frame fits.
const MaxFrameSize = maxFrameSize

// Pipe is an in-memory Transport endpoint. Frames sent on one endpoint are
// received on its peer, subject to an optional independent loss probability.
// The pair shares a bounded free list of frame buffers, so its steady state
// recycles storage instead of allocating per frame — the same discipline as
// the UDP path, which keeps in-memory soak runs representative of the wire.
type Pipe struct {
	out   chan []byte
	in    chan []byte
	pool  chan []byte
	loss  float64
	src   *rng.Rand
	mu    sync.Mutex
	close chan struct{}
	// once is shared by both endpoints: closing either endpoint closes the
	// pair, and closing both (each side tearing down independently, the
	// normal shape under chaos tests) must stay a safe no-op.
	once *sync.Once
	// rtimer is the reused blocking-receive timer (rtmu-guarded); a second
	// concurrent Receive falls back to a throwaway timer rather than wait.
	rtmu   sync.Mutex
	rtimer *time.Timer
}

// NewPipePair returns two connected in-memory transports. Frames sent in
// either direction are dropped independently with probability loss, using a
// deterministic random source derived from seed.
func NewPipePair(loss float64, seed uint64) (*Pipe, *Pipe, error) {
	if loss < 0 || loss >= 1 {
		return nil, nil, fmt.Errorf("link: loss probability %v out of [0,1)", loss)
	}
	ab := make(chan []byte, 1024)
	ba := make(chan []byte, 1024)
	pool := make(chan []byte, cap(ab)+cap(ba)+64)
	closed := make(chan struct{})
	once := new(sync.Once)
	a := &Pipe{out: ab, in: ba, pool: pool, loss: loss, src: rng.New(seed), close: closed, once: once}
	b := &Pipe{out: ba, in: ab, pool: pool, loss: loss, src: rng.New(seed + 1), close: closed, once: once}
	return a, b, nil
}

// getBuf takes a buffer from the pair's free list, allocating when empty.
func (p *Pipe) getBuf() []byte {
	select {
	case b := <-p.pool:
		return b[:0]
	default:
		return make([]byte, 0, maxFrameSize)
	}
}

// putBuf returns a buffer to the free list, letting it go to the garbage
// collector when the list is full.
func (p *Pipe) putBuf(b []byte) {
	if cap(b) < maxFrameSize {
		return
	}
	select {
	case p.pool <- b:
	default:
	}
}

// Send implements Transport. Lossy pipes drop the frame silently with the
// configured probability, exactly like a lossy radio link would. Each frame
// is copied before it is handed to the peer's queue in a single channel
// operation, so concurrent Sends never tear or interleave frames.
func (p *Pipe) Send(frame []byte) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	select {
	case <-p.close:
		return ErrClosed
	default:
	}
	p.mu.Lock()
	drop := p.loss > 0 && p.src.Bernoulli(p.loss)
	p.mu.Unlock()
	if drop {
		return nil
	}
	cp := append(p.getBuf(), frame...)
	select {
	case p.out <- cp:
		return nil
	case <-p.close:
		p.putBuf(cp)
		return ErrClosed
	default:
		// Queue full: behave like a saturated link and drop the frame.
		p.putBuf(cp)
		return nil
	}
}

// Receive implements Transport. A zero timeout polls: queued frames return
// immediately, an empty queue returns ErrTimeout without blocking.
func (p *Pipe) Receive(buf []byte, timeout time.Duration) (int, error) {
	// Fast path: a queued frame returns without arming a timer, which keeps
	// the loaded steady state allocation-free.
	select {
	case frame := <-p.in:
		n := copy(buf, frame)
		p.putBuf(frame)
		return n, nil
	default:
	}
	if timeout <= 0 {
		select {
		case frame := <-p.in:
			n := copy(buf, frame)
			p.putBuf(frame)
			return n, nil
		case <-p.close:
			return 0, ErrClosed
		default:
			return 0, ErrTimeout
		}
	}
	var timer <-chan time.Time
	if p.rtmu.TryLock() {
		if p.rtimer == nil {
			p.rtimer = time.NewTimer(timeout)
		} else {
			p.rtimer.Reset(timeout)
		}
		timer = p.rtimer.C
		defer func() {
			p.rtimer.Stop()
			p.rtmu.Unlock()
		}()
	} else {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case frame := <-p.in:
		n := copy(buf, frame)
		p.putBuf(frame)
		return n, nil
	case <-p.close:
		return 0, ErrClosed
	case <-timer:
		return 0, ErrTimeout
	}
}

// ReceiveBatch implements BatchTransport: the timeout applies to the first
// frame only, everything already queued behind it is drained in the same
// call.
func (p *Pipe) ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error) {
	got := 0
	for got < len(bufs) {
		to := timeout
		if got > 0 {
			to = 0
		}
		full := bufs[got][:cap(bufs[got])]
		n, err := p.Receive(full, to)
		if err != nil {
			if got > 0 && errors.Is(err, ErrTimeout) {
				return got, nil
			}
			return got, err
		}
		bufs[got] = full[:n]
		got++
	}
	return got, nil
}

// SendBatch implements BatchTransport. On the in-memory pipe a batch is the
// frames sent back to back; each frame keeps Send's per-frame atomicity and
// loss behavior.
func (p *Pipe) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := p.Send(f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

// Close implements Transport. Closing either endpoint closes the pair.
func (p *Pipe) Close() error {
	p.once.Do(func() { close(p.close) })
	return nil
}

// UDP is a Transport over UDP datagrams, so the sender and receiver can run
// as separate processes (see cmd/spinalsend and cmd/spinalrecv). It also
// implements BatchPacketTransport: on Linux batches map to single
// recvmmsg/sendmmsg syscalls, elsewhere to a portable receive/send loop (see
// udp_batch_*.go).
type UDP struct {
	conn net.PacketConn
	peer net.Addr
	mu   sync.Mutex

	// batch holds the platform-specific batched-I/O state (scatter-gather
	// headers and the sockaddr cache on Linux; empty elsewhere).
	batch udpBatch
}

// NewUDP opens a UDP transport bound to localAddr (e.g. "127.0.0.1:9000" or
// ":0") and directed at peerAddr. If peerAddr is empty, the peer is learned
// from the first received frame (server style).
func NewUDP(localAddr, peerAddr string) (*UDP, error) {
	conn, err := net.ListenPacket("udp", localAddr)
	if err != nil {
		return nil, fmt.Errorf("link: listen %q: %w", localAddr, err)
	}
	u := &UDP{conn: conn}
	if peerAddr != "" {
		addr, err := net.ResolveUDPAddr("udp", peerAddr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("link: resolve %q: %w", peerAddr, err)
		}
		u.peer = addr
	}
	return u, nil
}

// LocalAddr returns the bound local address, useful when listening on ":0".
func (u *UDP) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// Send implements Transport.
func (u *UDP) Send(frame []byte) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	u.mu.Lock()
	peer := u.peer
	u.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("link: peer address not yet known")
	}
	_, err := u.conn.WriteTo(frame, peer)
	return err
}

// Receive implements Transport. The peer address is learned from incoming
// frames when it was not configured explicitly.
func (u *UDP) Receive(buf []byte, timeout time.Duration) (int, error) {
	n, _, err := u.ReceiveFrom(buf, timeout)
	return n, err
}

// ReceiveFrom implements PacketTransport: one frame plus its source address,
// so a receiver serving many senders can direct each ack at the sender it
// belongs to. The first source also becomes the default Send peer when none
// was configured.
func (u *UDP) ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error) {
	if timeout <= 0 {
		timeout = time.Millisecond
	}
	if err := u.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return 0, nil, err
	}
	n, from, err := u.conn.ReadFrom(buf)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return 0, nil, ErrTimeout
		}
		return 0, nil, err
	}
	u.mu.Lock()
	if u.peer == nil {
		u.peer = from
	}
	u.mu.Unlock()
	return n, from, nil
}

// ReceiveBatch implements BatchTransport.
func (u *UDP) ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error) {
	return u.ReceiveBatchFrom(bufs, nil, timeout)
}

// SendTo implements PacketTransport. A single WriteTo is one datagram, so
// concurrent SendTo calls are frame-atomic like Send.
func (u *UDP) SendTo(frame []byte, to net.Addr) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(frame), maxFrameSize)
	}
	if to == nil {
		return fmt.Errorf("link: SendTo with nil peer address")
	}
	_, err := u.conn.WriteTo(frame, to)
	return err
}

// Close implements Transport.
func (u *UDP) Close() error { return u.conn.Close() }
