//go:build linux && arm64

package link

import "syscall"

// sysSendmmsg is sendmmsg(2)'s syscall number on linux/arm64.
const sysSendmmsg = syscall.SYS_SENDMMSG
