package link

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/crc"
)

// Receiver is the receiving half of the rateless link. It applies a simulated
// radio impairment to every arriving symbol, feeds the result to the spinal
// decoder, and acknowledges a packet as soon as the decoded message passes
// its CRC.
//
// Decoding runs on a bounded pool of worker goroutines so that attempts for
// distinct in-flight messages proceed concurrently with frame ingest: the
// caller's Receive loop only parses frames and appends symbols to the
// per-message pending buffers, while each message is decoded by the one
// worker it has affinity to (msgID mod pool size). The affinity keeps every
// message's decoder single-threaded, which is what keeps its incremental
// workspace valid across attempts.
//
// Delivered or stale per-message states are evicted: a decoded message is
// dropped once its sender has stopped retransmitting for a grace period (so
// late duplicates still get their ack repeated first), and the total number
// of tracked messages is capped with oldest-first eviction. A frame for an
// evicted message simply starts a fresh state, so eviction can cost work but
// never correctness. The one observable consequence of bounded state is
// that delivery is at-least-once rather than exactly-once: if a sender
// whose ack was lost retransmits a message after its delivered state aged
// out of the grace window, the recreated state decodes and delivers it
// again. Applications that care deduplicate by MsgID.
type Receiver struct {
	tr         Transport
	cfg        Config
	impairment channel.SymbolChannel

	states map[uint32]*msgState
	seq    uint64 // data frames processed; drives eviction (ingest goroutine only)
	// scratch is the per-frame symbol batch buffer (ingest goroutine only).
	scratch []rxSymbol
	eng     *decodeEngine
}

// Delivered is one successfully decoded packet.
type Delivered struct {
	MsgID   uint32
	Payload []byte
	// Symbols is how many coded symbols had been received when the packet
	// decoded, which determines the achieved rate.
	Symbols int
}

// rxSymbol is one received (already impaired) symbol waiting to be folded
// into a message's observations by its decode worker.
type rxSymbol struct {
	pos core.SymbolPos
	y   complex128
}

// msgState tracks the decoding progress of one packet. The decoder and
// observation container live for the whole packet and are touched only by
// the message's decode worker (serialized by decodeMu), so every attempt
// after the first resumes the beam search incrementally from the first spine
// value that received new symbols. The ingest goroutine communicates with
// the worker through the mu-guarded pending buffer.
type msgState struct {
	id      uint32
	worker  int
	params  core.Params
	sched   core.Schedule
	minUses int

	// decodeMu serializes decode attempts (the affinity worker and the
	// synchronous handleFrame path); dec and obs are only touched under it.
	decodeMu sync.Mutex
	dec      *core.BeamDecoder
	obs      *core.Observations

	mu      sync.Mutex // guards the fields below (ingest <-> worker)
	pending []rxSymbol
	// draining is the worker-owned half of a double buffer: attempt swaps it
	// with pending under mu, then folds it into obs without holding the
	// lock, so ingest never blocks behind a long decode of the same message.
	draining []rxSymbol
	queued   bool
	done     bool
	// evicted marks a state dropped from the tracking map while an attempt
	// token for it may still be queued; the orphaned attempt must not decode
	// or deliver — a recreated state owns the message from then on.
	evicted bool
	payload []byte
	symbols int
	nodes   int64
	lastSeq uint64
}

// doneGraceFrames is how many subsequent data frames a delivered message's
// state is retained for after its last own frame, so that retransmissions
// racing the ack still get the ack repeated instead of a redecode.
const doneGraceFrames = 64

// evictSweepEvery is how often (in processed data frames) the ingest path
// sweeps delivered states past their grace period.
const evictSweepEvery = 32

// receivePoll is the slice Receive blocks on the transport per iteration, so
// packets decoded by the workers are surfaced promptly even while frames
// keep arriving.
const receivePoll = 2 * time.Millisecond

// NewReceiver returns a receiver that reads frames from tr and corrupts each
// symbol with the given impairment before decoding (use a channel.AWGN to
// model the radio, or nil for a perfect channel).
func NewReceiver(tr Transport, cfg Config, impairment channel.SymbolChannel) (*Receiver, error) {
	if tr == nil {
		return nil, fmt.Errorf("link: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.DecodeWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Receiver{
		tr:         tr,
		cfg:        cfg,
		impairment: impairment,
		states:     map[uint32]*msgState{},
		eng:        newDecodeEngine(tr, workers),
	}
	// Backstop for receivers dropped without Close (benchmarks and tests
	// build them freely): stop the workers once the receiver is unreachable.
	// The engine never references the receiver, so this cleanup can run.
	runtime.AddCleanup(r, func(e *decodeEngine) { e.stop() }, r.eng)
	return r, nil
}

// Close stops the decode workers, waiting for in-flight attempts to finish.
// It must not be called concurrently with Receive. The receiver must not be
// used afterwards.
func (r *Receiver) Close() error {
	r.eng.stop()
	return nil
}

// Receive blocks until one new packet is decoded (returning it) or the
// timeout elapses (returning ErrTimeout).
//
// To keep the decoders from falling behind a fast sender, Receive drains
// every frame queued on the transport into the per-message pending buffers
// and hands decode attempts to the worker pool; it never decodes inline.
func (r *Receiver) Receive(timeout time.Duration) (*Delivered, error) {
	deadline := time.Now().Add(timeout)
	buf := make([]byte, maxFrameSize)
	for {
		// Read busy before take: if no attempt is outstanding afterwards,
		// every finished attempt's result was already visible to take, so
		// blocking for the full remaining time cannot strand a delivery.
		busy := r.eng.busy()
		if d, err := r.eng.take(); d != nil || err != nil {
			return d, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, ErrTimeout
		}
		// While decode attempts are in flight, block in short slices so
		// packets completed by the workers are returned promptly; on an idle
		// link with no outstanding work, block the whole timeout.
		slice := remaining
		if busy && slice > receivePoll {
			slice = receivePoll
		}
		n, err := r.tr.Receive(buf, slice)
		if err == ErrTimeout {
			continue
		}
		if err != nil {
			return nil, err
		}
		// Drain whatever else is queued without blocking.
		for {
			if st, fresh, aerr := r.addFrame(buf[:n]); aerr == nil && fresh {
				r.enqueue(st)
			}
			n, err = r.tr.Receive(buf, 0)
			if err != nil {
				break
			}
		}
	}
}

// handleFrame processes one raw frame synchronously and, if it completes a
// packet, returns the delivered payload. It is the single-frame path used by
// tests; Receive batches addFrame and hands decoding to the worker pool.
func (r *Receiver) handleFrame(raw []byte) (*Delivered, error) {
	st, fresh, err := r.addFrame(raw)
	if err != nil || !fresh {
		return nil, err
	}
	return r.eng.attempt(st)
}

// addFrame parses a raw frame and appends its symbols to the per-message
// pending buffer. It returns the state the frame contributed to and whether
// that message needs a decode attempt (acks and duplicates of
// already-delivered messages do not).
func (r *Receiver) addFrame(raw []byte) (*msgState, bool, error) {
	parsed, err := ParseFrame(raw)
	if err != nil {
		return nil, false, err
	}
	data, ok := parsed.(*DataFrame)
	if !ok {
		return nil, false, nil // stray ack: ignore
	}
	st, err := r.stateFor(data)
	if err != nil {
		return nil, false, err
	}
	r.seq++
	if r.seq%evictSweepEvery == 0 {
		r.evictDelivered()
	}

	st.mu.Lock()
	st.lastSeq = r.seq
	if st.done {
		st.mu.Unlock()
		// The ack was probably lost; repeat it.
		return st, false, r.eng.sendAck(data.MsgID)
	}
	st.mu.Unlock()

	// Validate and impair the whole frame into a scratch batch first, so the
	// per-message mutex is taken once per frame rather than once per symbol.
	nseg := st.params.NumSegments()
	r.scratch = r.scratch[:0]
	for i, sym := range data.Symbols {
		idx := int(data.StartIndex) + i
		pos := st.sched.Pos(idx)
		if pos.Spine >= nseg {
			return nil, false, fmt.Errorf("link: symbol index %d out of range", idx)
		}
		y := sym
		if r.impairment != nil {
			y = r.impairment.Corrupt(y)
		}
		r.scratch = append(r.scratch, rxSymbol{pos: pos, y: y})
	}
	st.mu.Lock()
	st.pending = append(st.pending, r.scratch...)
	st.symbols += len(r.scratch)
	st.mu.Unlock()
	return st, true, nil
}

// enqueue hands a message with fresh symbols to its affinity worker, unless
// an attempt token for it is already queued.
func (r *Receiver) enqueue(st *msgState) {
	st.mu.Lock()
	if st.queued || st.done {
		st.mu.Unlock()
		return
	}
	st.queued = true
	st.mu.Unlock()
	r.eng.submit(st)
}

// stateFor finds or creates the decoding state for the message described by a
// data frame, validating the advertised parameters.
func (r *Receiver) stateFor(data *DataFrame) (*msgState, error) {
	if st, ok := r.states[data.MsgID]; ok {
		if st.params.MessageBits != int(data.MessageBits) || st.params.K != int(data.K) || st.params.C != int(data.C) {
			return nil, fmt.Errorf("link: message %d changed parameters mid-flight", data.MsgID)
		}
		return st, nil
	}
	if data.MessageBits == 0 || data.MessageBits > (MaxPayload+4)*8 {
		return nil, fmt.Errorf("link: message of %d bits rejected", data.MessageBits)
	}
	if int(data.K) > 12 || data.K == 0 {
		return nil, fmt.Errorf("link: unsupported k=%d", data.K)
	}
	if data.Seed != r.cfg.Seed {
		return nil, fmt.Errorf("link: frame advertises unknown code seed")
	}
	params := core.Params{
		K:           int(data.K),
		C:           int(data.C),
		MessageBits: int(data.MessageBits),
		Seed:        data.Seed,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sched, err := scheduleFor(data.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}
	dec, err := core.NewBeamDecoder(params, r.cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	// Per-message decodes default to the serial path: the receiver's
	// parallelism comes from decoding distinct messages concurrently, and a
	// goroutine pool per tracked message would mostly add churn. Raise
	// Config.DecoderParallelism to shard single large decodes too.
	par := r.cfg.DecoderParallelism
	if par == 0 {
		par = 1
	}
	dec.SetParallelism(par)
	obs, err := core.NewObservations(params.NumSegments())
	if err != nil {
		return nil, err
	}
	r.evictForCap()
	st := &msgState{
		id:      data.MsgID,
		worker:  int(data.MsgID % uint32(r.eng.workers())),
		params:  params,
		sched:   sched,
		minUses: (params.MessageBits + 2*params.C - 1) / (2 * params.C),
		dec:     dec,
		obs:     obs,
	}
	r.states[data.MsgID] = st
	return st, nil
}

// evictDelivered drops delivered states whose sender has been silent for the
// grace period — the ack evidently arrived, so the state is done repeating
// it. Evicted decoders are reclaimed by the runtime (a decode may still be
// in flight on a worker, so they are never closed here).
func (r *Receiver) evictDelivered() {
	for id, st := range r.states {
		st.mu.Lock()
		stale := st.done && r.seq-st.lastSeq > doneGraceFrames
		if stale {
			st.evicted = true
		}
		st.mu.Unlock()
		if stale {
			delete(r.states, id)
		}
	}
}

// evictForCap makes room for one more tracked message when the cap is
// reached: delivered states go first (oldest last-activity first), then the
// stalest in-flight state. Dropping an in-flight state costs its decode
// progress, never correctness — later frames recreate it.
func (r *Receiver) evictForCap() {
	limit := r.cfg.MaxTracked
	if limit <= 0 {
		limit = DefaultMaxTracked
	}
	if len(r.states) < limit {
		return
	}
	for len(r.states) >= limit {
		var victim uint32
		var victimSeq uint64
		victimDone := false
		found := false
		for id, st := range r.states {
			st.mu.Lock()
			done, last := st.done, st.lastSeq
			st.mu.Unlock()
			better := !found ||
				(done && !victimDone) ||
				(done == victimDone && last < victimSeq)
			if better {
				victim, victimSeq, victimDone, found = id, last, done, true
			}
		}
		if !found {
			return
		}
		// Mark before deleting: a queued attempt token for the victim must
		// not decode or deliver once ownership passes to a recreated state.
		vst := r.states[victim]
		vst.mu.Lock()
		vst.evicted = true
		vst.mu.Unlock()
		delete(r.states, victim)
	}
}

// SymbolsReceived reports how many symbols have been accumulated for a
// message; it is exported for tests and diagnostics.
func (r *Receiver) SymbolsReceived(msgID uint32) int {
	if st, ok := r.states[msgID]; ok {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.symbols
	}
	return 0
}

// NodesExpanded reports the total decoding-tree nodes freshly expanded across
// all decode attempts for a message — the receiver's computational cost for
// the packet. With the incremental decoder this stays near the cost of a
// single full decode regardless of how many frames triggered attempts.
func (r *Receiver) NodesExpanded(msgID uint32) int64 {
	if st, ok := r.states[msgID]; ok {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.nodes
	}
	return 0
}

// TrackedMessages reports how many per-message decoding states the receiver
// currently retains; it is exported for tests and diagnostics.
func (r *Receiver) TrackedMessages() int { return len(r.states) }

// decodeEngine owns the decode worker goroutines. Each worker drains its own
// queue, so a message (always queued to the same worker) is never decoded by
// two goroutines at once. The engine deliberately holds no reference to the
// Receiver so an abandoned receiver can be reclaimed.
type decodeEngine struct {
	tr     Transport
	queues []chan *msgState

	mu sync.Mutex
	// outstanding counts attempt tokens submitted but not yet fully
	// processed (result recorded); while it is zero, Receive can block for
	// its whole timeout instead of polling for worker results.
	outstanding int
	ready       []Delivered
	err         error
	closed      bool
	once        sync.Once
	wg          sync.WaitGroup
}

func newDecodeEngine(tr Transport, workers int) *decodeEngine {
	if workers < 1 {
		workers = 1
	}
	e := &decodeEngine{tr: tr, queues: make([]chan *msgState, workers)}
	for i := range e.queues {
		q := make(chan *msgState, 256)
		e.queues[i] = q
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for st := range q {
				d, err := e.attempt(st)
				e.mu.Lock()
				if d != nil {
					e.ready = append(e.ready, *d)
				}
				if err != nil && e.err == nil {
					e.err = err
				}
				// Decrement after recording the result: a zero outstanding
				// count guarantees every finished attempt is visible in
				// ready/err.
				e.outstanding--
				e.mu.Unlock()
			}
		}()
	}
	return e
}

func (e *decodeEngine) workers() int { return len(e.queues) }

// submit queues one attempt token. The queue is bounded; if a worker falls
// far behind, ingest briefly blocks here, which is the intended backpressure.
func (e *decodeEngine) submit(st *msgState) {
	e.mu.Lock()
	closed := e.closed
	if !closed {
		e.outstanding++
	}
	e.mu.Unlock()
	if closed {
		return
	}
	e.queues[st.worker] <- st
}

// busy reports whether any submitted attempt has not finished yet. When it
// returns false, every completed attempt's outcome is already visible to
// take (the workers decrement outstanding only after recording results).
func (e *decodeEngine) busy() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.outstanding > 0
}

// take pops one delivered packet, or — only once the delivery queue is
// drained — the first asynchronous worker error. Packets decoded (and acked)
// before the error must still reach the application.
func (e *decodeEngine) take() (*Delivered, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ready) == 0 {
		if e.err != nil {
			return nil, e.err
		}
		return nil, nil
	}
	d := e.ready[0]
	e.ready = e.ready[1:]
	return &d, nil
}

// attempt runs one decode attempt for a message: drain its pending symbols
// into the observations, resume the (incremental) beam search, and on a CRC
// match mark it delivered and send the ack.
func (e *decodeEngine) attempt(st *msgState) (*Delivered, error) {
	st.decodeMu.Lock()
	defer st.decodeMu.Unlock()

	st.mu.Lock()
	st.queued = false
	if st.done || st.evicted {
		st.mu.Unlock()
		return nil, nil
	}
	st.pending, st.draining = st.draining[:0], st.pending
	pending := st.draining
	st.mu.Unlock()
	for _, s := range pending {
		if err := st.obs.Add(s.pos, s.y); err != nil {
			return nil, err
		}
	}
	// Attempt a decode once enough symbols could possibly carry the message.
	if st.obs.Count() < st.minUses {
		return nil, nil
	}
	out, err := st.dec.Decode(st.obs)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	st.nodes += int64(out.NodesExpanded)
	st.mu.Unlock()
	payload, okCRC := crc.Verify32(out.Message)
	if !okCRC {
		return nil, nil // keep listening for more symbols
	}
	st.mu.Lock()
	if st.evicted {
		// Ownership moved to a recreated state while we were decoding; it
		// will deliver (and ack) instead, so stay silent to keep delivery
		// single-copy.
		st.mu.Unlock()
		return nil, nil
	}
	st.done = true
	st.payload = append([]byte(nil), payload...)
	symbols := st.symbols
	st.mu.Unlock()
	if err := e.sendAck(st.id); err != nil {
		return nil, err
	}
	return &Delivered{MsgID: st.id, Payload: st.payload, Symbols: symbols}, nil
}

// sendAck transmits a positive acknowledgement for msgID. It may be called
// from any worker and from the ingest path; transports are safe for
// concurrent Send.
func (e *decodeEngine) sendAck(msgID uint32) error {
	ack := &AckFrame{MsgID: msgID, Decoded: true}
	if err := e.tr.Send(ack.Marshal()); err != nil {
		return fmt.Errorf("link: sending ack: %w", err)
	}
	return nil
}

// stop shuts the workers down and waits for in-flight attempts.
func (e *decodeEngine) stop() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.mu.Unlock()
		for _, q := range e.queues {
			close(q)
		}
		e.wg.Wait()
	})
}
