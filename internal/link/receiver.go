package link

import (
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/crc"
)

// Receiver is the receiving end of the rateless link, rebuilt as a
// flow-multiplexed link engine: many logical flows (sender identities) share
// one receiver, one transport socket, one decoder pool and one bounded pool
// of decode workers. It applies a simulated radio impairment to every
// arriving symbol, feeds the result to the spinal decoder, and acknowledges
// a packet as soon as the decoded message passes its CRC.
//
// Incoming frames are demultiplexed by (FlowID, MsgID) into per-message
// state machines grouped per flow. Legacy v0 frames carry no flow id and
// land on flow 0, so a v1 receiver serves v0 senders unchanged. When the
// transport can address individual peers (PacketTransport, e.g. UDP), each
// flow's acks are sent to the source address of that flow's frames, which is
// what lets one UDP socket serve many independent sender processes.
//
// Decoding runs on a bounded pool of worker goroutines so that attempts for
// distinct in-flight messages proceed concurrently with frame ingest: the
// caller's Receive loop only parses frames and appends symbols to the
// per-message pending buffers. Pending attempts are scheduled round-robin
// over the flows that have work — not FIFO over frames — so one chatty flow
// cannot starve the others; within a flow, attempts run oldest-first. A
// message's decoder is serialized by a per-message mutex, which keeps its
// incremental workspace valid no matter which worker runs the attempt.
//
// Decoders are not built per message: they are leased from a shared
// core.DecoderPool keyed by code parameters, so the (expensive) incremental
// workspaces and goroutine pools are recycled across messages and across
// flows. The pool's capacity is Config.PoolCapacity.
//
// Bounded state, three ways: MaxTrackedPerFlow caps the in-flight messages
// of each flow (oldest evicted first, delivered before in-flight), MaxTracked
// caps the total across flows the same way, and MaxFlows caps the number of
// concurrently tracked flows — admitting a new flow beyond it sheds the flow
// with the oldest activity, sending a negative ack for each of its
// undelivered messages so a v1 sender stops retransmitting promptly. A frame
// for an evicted message or shed flow simply starts fresh state, so shedding
// costs work but never correctness. The one observable consequence is that
// delivery is at-least-once rather than exactly-once: if a sender whose ack
// was lost retransmits a message after its delivered state aged out of the
// grace window, the recreated state decodes and delivers it again.
// Applications that care deduplicate by (FlowID, MsgID).
type Receiver struct {
	tr         Transport
	ptr        PacketTransport      // tr when it can address peers, else nil
	btr        BatchTransport       // tr when it can receive batches, else nil
	bptr       BatchPacketTransport // both at once, else nil
	cfg        Config
	impairment channel.SymbolChannel

	flows   map[uint32]*flowState
	nmsgs   int    // total tracked messages across flows (ingest goroutine only)
	seq     uint64 // data frames processed; drives eviction (ingest goroutine only)
	shed    uint64 // flows shed by admission control (ingest goroutine only)
	expired uint64 // flows dropped by idle expiry (ingest goroutine only)
	// scratchPos/scratchY are the per-frame symbol batch buffers (ingest
	// goroutine only): positions and impaired values, index-aligned.
	scratchPos []core.SymbolPos
	scratchY   []complex128
	// rxBufs/rxAddrs are the ingest batch: Config.IngestBatch full-capacity
	// frame buffers (storage may be swapped by arena-backed transports) and
	// their source addresses. view is the reused in-place frame parse.
	rxBufs  [][]byte
	rxAddrs []net.Addr
	view    FrameView
	pool    *core.DecoderPool
	eng     *flowEngine
}

// Delivered is one successfully decoded packet.
type Delivered struct {
	// FlowID identifies the sender the packet came from (0 for v0 senders).
	FlowID  uint32
	MsgID   uint32
	Payload []byte
	// Symbols is how many coded symbols had been received when the packet
	// decoded, which determines the achieved rate.
	Symbols int
}

// rxBatch is a batch of received (already impaired) symbols waiting to be
// folded into a message's observations by its decode worker: positions and
// values are index-aligned, so a whole batch lands in the observation
// container through one AddBatch call.
type rxBatch struct {
	pos []core.SymbolPos
	y   []complex128
}

// append adds one symbol to the batch.
func (b *rxBatch) append(pos core.SymbolPos, y complex128) {
	b.pos = append(b.pos, pos)
	b.y = append(b.y, y)
}

// extend appends the positions and values of another batch.
func (b *rxBatch) extend(pos []core.SymbolPos, y []complex128) {
	b.pos = append(b.pos, pos...)
	b.y = append(b.y, y...)
}

// reset empties the batch, keeping its allocations.
func (b *rxBatch) reset() {
	b.pos = b.pos[:0]
	b.y = b.y[:0]
}

func (b *rxBatch) len() int { return len(b.pos) }

// flowState groups the tracked messages of one flow. It is touched only by
// the ingest goroutine.
type flowState struct {
	id      uint32
	states  map[uint32]*msgState
	lastSeq uint64 // last data frame seen for this flow
	// lastFrame is the wall-clock arrival of the flow's latest data frame;
	// it drives Config.IdleExpiry (maintained only when expiry is enabled).
	lastFrame time.Time
}

// msgState tracks the decoding progress of one packet of one flow. The
// decoder lease lives for the whole packet; attempts are serialized by
// decodeMu, so every attempt after the first resumes the beam search
// incrementally from the first spine value that received new symbols. The
// ingest goroutine communicates with the workers through the mu-guarded
// pending buffer.
type msgState struct {
	flow    uint32
	id      uint32
	wireV1  bool // ack with the frame generation the sender speaks
	params  core.Params
	sched   core.Schedule
	minUses int

	// decodeMu serializes decode attempts (any pool worker and the
	// synchronous HandleFrame path); the lease's Dec and Obs are only
	// touched under it.
	decodeMu sync.Mutex

	mu      sync.Mutex // guards the fields below (ingest <-> worker)
	lease   *core.LeasedDecoder
	addr    net.Addr // reply address for this flow's acks (nil on plain transports)
	pending rxBatch
	// draining is the worker-owned half of a double buffer: attempt swaps it
	// with pending under mu, then folds it into obs without holding the
	// lock, so ingest never blocks behind a long decode of the same message.
	draining rxBatch
	queued   bool
	// attempting marks a decode in flight; while set, the lease must not be
	// reclaimed by eviction (the attempt returns it when it sees evicted).
	attempting bool
	done       bool
	// evicted marks a state dropped from the tracking map while an attempt
	// token for it may still be queued; the orphaned attempt must not decode
	// or deliver — a recreated state owns the message from then on.
	evicted bool
	payload []byte
	symbols int
	nodes   int64
	lastSeq uint64
}

// doneGraceFrames is how many subsequent data frames a delivered message's
// state is retained for after its last own frame, so that retransmissions
// racing the ack still get the ack repeated instead of a redecode.
const doneGraceFrames = 64

// evictSweepEvery is how often (in processed data frames) the ingest path
// sweeps delivered states past their grace period.
const evictSweepEvery = 32

// receivePoll is the slice Receive blocks on the transport per iteration, so
// packets decoded by the workers are surfaced promptly even while frames
// keep arriving.
const receivePoll = 2 * time.Millisecond

// NewReceiver returns a receiver that reads frames from tr and corrupts each
// symbol with the given impairment before decoding (use a channel.AWGN to
// model the radio, or nil for a perfect channel).
func NewReceiver(tr Transport, cfg Config, impairment channel.SymbolChannel) (*Receiver, error) {
	if tr == nil {
		return nil, fmt.Errorf("link: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	workers := cfg.DecodeWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	poolCap := cfg.PoolCapacity
	switch {
	case poolCap == 0:
		poolCap = core.DefaultDecoderPoolCapacity
	case poolCap < 0:
		poolCap = 0 // pooling disabled: every lease builds, every release closes
	}
	r := &Receiver{
		tr:         tr,
		cfg:        cfg,
		impairment: impairment,
		flows:      map[uint32]*flowState{},
		pool:       core.NewDecoderPool(poolCap),
		eng:        newFlowEngine(tr, workers, cfg.FlowDecodeBudget, cfg.Search, cfg.AdaptiveSearch),
	}
	if pt, ok := tr.(PacketTransport); ok {
		r.ptr = pt
	}
	if bt, ok := tr.(BatchTransport); ok {
		r.btr = bt
	}
	if bpt, ok := tr.(BatchPacketTransport); ok {
		r.bptr = bpt
	}
	batch := cfg.IngestBatch
	if r.btr == nil && r.bptr == nil {
		batch = 1 // single-frame transport: one reused buffer
	}
	r.rxBufs = make([][]byte, batch)
	for i := range r.rxBufs {
		r.rxBufs[i] = make([]byte, maxFrameSize)
	}
	r.rxAddrs = make([]net.Addr, batch)
	// Backstop for receivers dropped without Close (benchmarks and tests
	// build them freely): stop the workers once the receiver is unreachable.
	// The engine never references the receiver, so this cleanup can run.
	runtime.AddCleanup(r, func(e *flowEngine) { e.stop() }, r.eng)
	return r, nil
}

// Close stops the decode workers (waiting for queued attempts to finish) and
// then returns every tracked message's decoder lease to the pool, so a
// receiver closed after a chaotic run leaves the pool's Outstanding counter
// at zero. It must not be called concurrently with Receive. The receiver
// must not be used afterwards.
func (r *Receiver) Close() error {
	r.eng.stop()
	// The workers have drained: no attempt is in flight, so every surviving
	// lease is owned by its state and can be reclaimed directly.
	for id, fs := range r.flows {
		for _, st := range fs.states {
			st.mu.Lock()
			st.evicted = true
			reclaim := st.lease
			st.lease = nil
			st.mu.Unlock()
			reclaim.Release()
		}
		delete(r.flows, id)
		r.eng.forgetFlow(id)
	}
	r.nmsgs = 0
	return nil
}

// Receive blocks until one new packet is decoded (returning it) or the
// timeout elapses (returning ErrTimeout).
//
// To keep the decoders from falling behind fast senders, Receive drains
// every frame queued on the transport into the per-message pending buffers
// and hands decode attempts to the worker pool; it never decodes inline.
// On a BatchTransport the drain moves Config.IngestBatch frames per
// transport call.
func (r *Receiver) Receive(timeout time.Duration) (*Delivered, error) {
	deadline := time.Now().Add(timeout)
	for {
		// Read busy before take: if no attempt is outstanding afterwards,
		// every finished attempt's result was already visible to take, so
		// blocking for the full remaining time cannot strand a delivery.
		busy := r.eng.busy()
		if d, err := r.eng.take(); d != nil || err != nil {
			return d, err
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, ErrTimeout
		}
		// While decode attempts are in flight, block in short slices so
		// packets completed by the workers are returned promptly; on an idle
		// link with no outstanding work, block the whole timeout.
		slice := remaining
		if busy && slice > receivePoll {
			slice = receivePoll
		}
		// Idle expiry runs on this loop (no timer goroutine), so while
		// silent flows are tracked the blocking slice is capped at the
		// expiry interval to keep expiry responsive on a quiet link.
		if r.cfg.IdleExpiry > 0 {
			r.expireIdle()
			if len(r.flows) > 0 && slice > r.cfg.IdleExpiry {
				slice = r.cfg.IdleExpiry
			}
		}
		got, err := r.ingest(slice)
		if errors.Is(err, ErrTimeout) {
			continue
		}
		if err != nil {
			return nil, err
		}
		r.processIngested(got)
		// Drain whatever else is queued without blocking.
		for {
			got, err = r.ingest(0)
			if err != nil || got == 0 {
				break
			}
			r.processIngested(got)
		}
	}
}

// ingest pulls the next batch of raw frames off the transport into
// rxBufs/rxAddrs and returns how many arrived. Transports without batch
// support deliver one frame per call.
func (r *Receiver) ingest(timeout time.Duration) (int, error) {
	switch {
	case r.bptr != nil:
		return r.bptr.ReceiveBatchFrom(r.rxBufs, r.rxAddrs, timeout)
	case r.btr != nil:
		return r.btr.ReceiveBatch(r.rxBufs, timeout)
	default:
		buf := r.rxBufs[0][:cap(r.rxBufs[0])]
		n, from, err := r.receiveFrom(buf, timeout)
		if err != nil {
			return 0, err
		}
		r.rxBufs[0] = buf[:n]
		r.rxAddrs[0] = from
		return 1, nil
	}
}

// processIngested runs the ingested frames through the demux, queueing a
// decode attempt for every message that gained symbols.
func (r *Receiver) processIngested(got int) {
	for i := 0; i < got; i++ {
		var from net.Addr
		if r.bptr != nil || r.btr == nil {
			from = r.rxAddrs[i]
		}
		if st, fresh, err := r.addFrame(r.rxBufs[i], from); err == nil && fresh {
			r.enqueue(st)
		}
	}
}

// receiveFrom reads one frame, with the source address when the transport
// can report one.
func (r *Receiver) receiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error) {
	if r.ptr != nil {
		return r.ptr.ReceiveFrom(buf, timeout)
	}
	n, err := r.tr.Receive(buf, timeout)
	return n, nil, err
}

// HandleFrame processes one raw frame synchronously and, if it completes a
// packet, returns the delivered payload. It is the deterministic
// single-frame path used by tests and replay-style experiments; live
// receivers use Receive, which batches ingest and hands decoding to the
// worker pool. HandleFrame must not be called concurrently with Receive.
func (r *Receiver) HandleFrame(raw []byte) (*Delivered, error) {
	st, fresh, err := r.addFrame(raw, nil)
	if err != nil || !fresh {
		return nil, err
	}
	return r.eng.attempt(st)
}

// HandleFrames is HandleFrame over a whole batch: every frame is ingested
// and attempted in order, and all completed packets are returned. It is the
// deterministic counterpart of the batched Receive path — identical frames
// produce identical deliveries regardless of how they were batched. The
// first frame error stops the batch.
func (r *Receiver) HandleFrames(raws [][]byte) ([]Delivered, error) {
	var out []Delivered
	for _, raw := range raws {
		d, err := r.HandleFrame(raw)
		if err != nil {
			return out, err
		}
		if d != nil {
			out = append(out, *d)
		}
	}
	return out, nil
}

// addFrame parses a raw frame in place and appends its symbols to the
// per-message pending buffer. It returns the state the frame contributed to
// and whether that message needs a decode attempt (acks and duplicates of
// already-delivered messages do not). The symbol payload is read straight
// out of raw via the reused view — no per-frame allocation.
func (r *Receiver) addFrame(raw []byte, from net.Addr) (*msgState, bool, error) {
	v := &r.view
	if err := UnmarshalFrameInPlace(raw, v); err != nil {
		return nil, false, err
	}
	if v.Kind != KindData {
		return nil, false, nil // stray ack: ignore
	}
	st, err := r.stateFor(v)
	if err != nil {
		return nil, false, err
	}
	r.seq++
	fs := r.flows[v.FlowID]
	fs.lastSeq = r.seq
	if r.cfg.IdleExpiry > 0 {
		fs.lastFrame = time.Now()
	}
	if r.seq%evictSweepEvery == 0 {
		r.evictDelivered()
	}

	st.mu.Lock()
	st.lastSeq = r.seq
	if from != nil {
		st.addr = from
	}
	if st.done {
		st.mu.Unlock()
		// The ack was probably lost; repeat it.
		return st, false, r.eng.sendAckFor(st, true)
	}
	st.mu.Unlock()

	// Validate and impair the whole frame into the scratch batch first, so
	// the per-message mutex is taken once per frame rather than once per
	// symbol. Positions come from the schedule's batch fill, the impairment
	// runs over the whole frame in one block call when the model supports
	// it, and the pending buffer receives the frame through one append.
	nseg := st.params.NumSegments()
	n := v.NumSymbols
	// Bound the stream indices before the batch position fill: on 32-bit
	// platforms a hostile StartIndex would otherwise wrap negative and panic
	// in the schedule instead of dropping the frame.
	if int64(v.StartIndex)+int64(n) > math.MaxInt32 {
		return nil, false, fmt.Errorf("link: symbol start index %d out of range", v.StartIndex)
	}
	if cap(r.scratchPos) < n {
		r.scratchPos = make([]core.SymbolPos, n)
		r.scratchY = make([]complex128, n)
	}
	poss := r.scratchPos[:n]
	ys := r.scratchY[:n]
	core.PositionsInto(st.sched, int(v.StartIndex), poss)
	for i, pos := range poss {
		if pos.Spine >= nseg {
			return nil, false, fmt.Errorf("link: symbol index %d out of range", int(v.StartIndex)+i)
		}
	}
	v.SymbolsInto(ys)
	if r.impairment != nil {
		if blk, ok := r.impairment.(channel.BlockChannel); ok {
			blk.CorruptBlock(ys, ys)
		} else {
			for i, y := range ys {
				ys[i] = r.impairment.Corrupt(y)
			}
		}
	}
	st.mu.Lock()
	st.pending.extend(poss, ys)
	st.symbols += n
	st.mu.Unlock()
	return st, true, nil
}

// enqueue hands a message with fresh symbols to the worker pool's fair
// scheduler, unless an attempt token for it is already queued.
func (r *Receiver) enqueue(st *msgState) {
	st.mu.Lock()
	if st.queued || st.done {
		st.mu.Unlock()
		return
	}
	st.queued = true
	st.mu.Unlock()
	r.eng.submit(st)
}

// stateFor finds or creates the decoding state for the message described by
// a data-frame view, validating the advertised parameters and applying
// admission control at every level (flow count, per-flow messages, total
// messages). Validation runs before any admission decision, so a garbage
// frame can never shed a live flow or evict tracked state.
func (r *Receiver) stateFor(v *FrameView) (*msgState, error) {
	fs := r.flows[v.FlowID]
	if fs != nil {
		if st, ok := fs.states[v.MsgID]; ok {
			if st.params.MessageBits != int(v.MessageBits) || st.params.K != int(v.K) || st.params.C != int(v.C) {
				return nil, fmt.Errorf("link: flow %d message %d changed parameters mid-flight", v.FlowID, v.MsgID)
			}
			return st, nil
		}
	}
	if v.MessageBits == 0 || v.MessageBits > (MaxPayload+4)*8 {
		return nil, fmt.Errorf("link: message of %d bits rejected", v.MessageBits)
	}
	if int(v.K) > 12 || v.K == 0 {
		return nil, fmt.Errorf("link: unsupported k=%d", v.K)
	}
	if v.Seed != r.cfg.Seed {
		return nil, fmt.Errorf("link: frame advertises unknown code seed")
	}
	params := core.Params{
		K:           int(v.K),
		C:           int(v.C),
		MessageBits: int(v.MessageBits),
		Seed:        v.Seed,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cost := int64(params.NumSegments()) << uint(v.K); r.cfg.MaxDecodeCost > 0 && cost > r.cfg.MaxDecodeCost {
		return nil, fmt.Errorf("link: frame advertises decode cost %d (k=%d, %d segments) beyond cap %d",
			cost, v.K, params.NumSegments(), r.cfg.MaxDecodeCost)
	}
	sched, err := scheduleFor(v.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}
	if fs == nil {
		if len(r.flows) >= r.cfg.MaxFlows {
			r.shedOldestFlow()
		}
		fs = &flowState{id: v.FlowID, states: map[uint32]*msgState{}}
		r.flows[v.FlowID] = fs
	}
	if len(fs.states) >= r.cfg.MaxTrackedPerFlow {
		r.evictForCap(fs, fs)
	}
	if r.nmsgs >= r.cfg.MaxTracked {
		r.evictForCap(nil, fs)
	}
	lease, err := r.pool.Lease(params, r.cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	// Release resets leased decoders to the float64 default, so the metric
	// is (re)applied on every lease.
	if err := lease.Dec.SetCostMetric(r.cfg.CostMetric); err != nil {
		lease.Release()
		return nil, err
	}
	// Likewise for the search strategy: leases come back exact, so the
	// configured base strategy is installed here. Under AdaptiveSearch the
	// engine may override it per attempt from budget pressure.
	if err := lease.Dec.SetSearchConfig(r.cfg.Search); err != nil {
		lease.Release()
		return nil, err
	}
	// Per-message decodes default to the serial path: the receiver's
	// parallelism comes from decoding distinct messages concurrently, and a
	// goroutine pool per tracked message would mostly add churn. Raise
	// Config.DecoderParallelism to shard single large decodes too.
	par := r.cfg.DecoderParallelism
	if par == 0 {
		par = 1
	}
	lease.Dec.SetParallelism(par)
	st := &msgState{
		flow:    v.FlowID,
		id:      v.MsgID,
		wireV1:  v.Version == FrameV1,
		params:  params,
		sched:   sched,
		minUses: (params.MessageBits + 2*params.C - 1) / (2 * params.C),
		lease:   lease,
	}
	fs.states[v.MsgID] = st
	r.nmsgs++
	return st, nil
}

// dropState removes one message state from the tracking maps and reclaims
// its decoder lease when no attempt is queued or in flight; otherwise the
// attempt returns the lease when it observes the eviction.
func (r *Receiver) dropState(fs *flowState, st *msgState) {
	st.mu.Lock()
	st.evicted = true
	var reclaim *core.LeasedDecoder
	if !st.queued && !st.attempting {
		reclaim = st.lease
		st.lease = nil
	}
	st.mu.Unlock()
	reclaim.Release()
	delete(fs.states, st.id)
	r.nmsgs--
}

// evictDelivered drops delivered states whose sender has been silent for the
// grace period — the ack evidently arrived, so the state is done repeating
// it — and forgets flows that no longer track any message.
func (r *Receiver) evictDelivered() {
	for id, fs := range r.flows {
		for _, st := range fs.states {
			st.mu.Lock()
			stale := st.done && r.seq-st.lastSeq > doneGraceFrames
			st.mu.Unlock()
			if stale {
				r.dropState(fs, st)
			}
		}
		if len(fs.states) == 0 {
			delete(r.flows, id)
			r.eng.forgetFlow(id)
		}
	}
}

// evictForCap makes room for one more tracked message: delivered states go
// first (oldest last-activity first), then the stalest in-flight state.
// With a non-nil scope the search is confined to that flow (the per-flow
// cap); with nil it spans every flow (the global cap). The keep flow — the
// one the caller is about to add a message to — is never removed from the
// flow table even if the eviction empties it. Dropping an in-flight state
// costs its decode progress, never correctness — later frames recreate it.
func (r *Receiver) evictForCap(scope, keep *flowState) {
	var victimFlow *flowState
	var victim *msgState
	var victimSeq uint64
	victimDone := false
	scan := func(f *flowState) {
		for _, st := range f.states {
			st.mu.Lock()
			done, last := st.done, st.lastSeq
			st.mu.Unlock()
			better := victim == nil ||
				(done && !victimDone) ||
				(done == victimDone && last < victimSeq)
			if better {
				victimFlow, victim, victimSeq, victimDone = f, st, last, done
			}
		}
	}
	if scope != nil {
		scan(scope)
	} else {
		for _, f := range r.flows {
			scan(f)
		}
	}
	if victim == nil {
		return
	}
	r.dropState(victimFlow, victim)
	if len(victimFlow.states) == 0 && victimFlow != keep {
		delete(r.flows, victimFlow.id)
		r.eng.forgetFlow(victimFlow.id)
	}
}

// shedOldestFlow applies flow-level admission control: the flow with the
// oldest activity is dropped wholesale to admit a new one, and each of its
// undelivered messages gets a negative ack so a v1 sender stops
// retransmitting into the void. Shedding never loses data for good — a
// sender that keeps transmitting simply re-admits the flow with fresh state.
func (r *Receiver) shedOldestFlow() {
	var victim *flowState
	for _, fs := range r.flows {
		if victim == nil || fs.lastSeq < victim.lastSeq {
			victim = fs
		}
	}
	if victim == nil {
		return
	}
	for _, st := range victim.states {
		st.mu.Lock()
		done := st.done
		st.mu.Unlock()
		if !done {
			// Best-effort NACK; an unreachable sender just times out.
			_ = r.eng.sendAckFor(st, false)
		}
		r.dropState(victim, st)
	}
	delete(r.flows, victim.id)
	r.eng.forgetFlow(victim.id)
	r.shed++
}

// expireIdle drops flows whose senders have gone silent for Config.IdleExpiry:
// every undelivered message is NACKed (best effort) and its state dropped, so
// zombie senders stop pinning decoder leases and arena buffers. Like
// admission-control shedding, expiry never loses data for good — a sender
// that resumes transmitting simply re-admits the flow with fresh state.
func (r *Receiver) expireIdle() {
	if r.cfg.IdleExpiry <= 0 || len(r.flows) == 0 {
		return
	}
	now := time.Now()
	for id, fs := range r.flows {
		if now.Sub(fs.lastFrame) <= r.cfg.IdleExpiry {
			continue
		}
		for _, st := range fs.states {
			st.mu.Lock()
			done := st.done
			st.mu.Unlock()
			if !done {
				_ = r.eng.sendAckFor(st, false)
			}
			r.dropState(fs, st)
		}
		delete(r.flows, id)
		r.eng.forgetFlow(id)
		r.expired++
	}
}

// FlowSymbolsReceived reports how many symbols have been accumulated for a
// message of a flow; it is exported for tests and diagnostics.
func (r *Receiver) FlowSymbolsReceived(flowID, msgID uint32) int {
	fs, ok := r.flows[flowID]
	if !ok {
		return 0
	}
	if st, ok := fs.states[msgID]; ok {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.symbols
	}
	return 0
}

// SymbolsReceived is FlowSymbolsReceived for flow 0, the implicit flow of
// v0 point-to-point links.
func (r *Receiver) SymbolsReceived(msgID uint32) int { return r.FlowSymbolsReceived(0, msgID) }

// FlowNodesExpanded reports the total decoding-tree nodes freshly expanded
// across all decode attempts for a message of a flow — the receiver's
// computational cost for the packet. With the incremental decoder this stays
// near the cost of a single full decode regardless of how many frames
// triggered attempts.
func (r *Receiver) FlowNodesExpanded(flowID, msgID uint32) int64 {
	fs, ok := r.flows[flowID]
	if !ok {
		return 0
	}
	if st, ok := fs.states[msgID]; ok {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.nodes
	}
	return 0
}

// NodesExpanded is FlowNodesExpanded for flow 0.
func (r *Receiver) NodesExpanded(msgID uint32) int64 { return r.FlowNodesExpanded(0, msgID) }

// TrackedMessages reports how many per-message decoding states the receiver
// currently retains across all flows.
func (r *Receiver) TrackedMessages() int { return r.nmsgs }

// TrackedFlows reports how many flows currently have tracked state.
func (r *Receiver) TrackedFlows() int { return len(r.flows) }

// ShedFlows reports how many flows admission control has shed.
func (r *Receiver) ShedFlows() uint64 { return r.shed }

// ExpiredFlows reports how many flows idle expiry has dropped.
func (r *Receiver) ExpiredFlows() uint64 { return r.expired }

// BudgetDeferrals reports how many times the decode scheduler deferred an
// over-budget flow's attempt in favour of a cheaper flow (always zero when
// Config.FlowDecodeBudget is unset).
func (r *Receiver) BudgetDeferrals() uint64 { return r.eng.budgetDeferrals() }

// PoolStats returns the shared decoder pool's counters — how often message
// states reused a pooled decoder instead of building one.
func (r *Receiver) PoolStats() core.PoolStats { return r.pool.Stats() }

// EngineStats is a point-in-time snapshot of the link engine's operational
// counters, assembled for observability endpoints (spinalrecv -stats) and
// chaos-test leak gates. Like the underlying accessors, it must be taken
// from the goroutine driving Receive.
type EngineStats struct {
	// TrackedFlows and TrackedMessages are the current tracking-table sizes.
	TrackedFlows    int `json:"tracked_flows"`
	TrackedMessages int `json:"tracked_messages"`
	// ShedFlows and ExpiredFlows count flows dropped by admission control
	// and by idle expiry respectively.
	ShedFlows    uint64 `json:"shed_flows"`
	ExpiredFlows uint64 `json:"expired_flows"`
	// BudgetDeferrals counts decode-scheduler decisions that skipped an
	// over-budget flow.
	BudgetDeferrals uint64 `json:"budget_deferrals"`
	// SearchAttempts counts executed decode attempts by the search mode
	// they ran under (keys are the -search spellings: exact, gap,
	// lookahead, approx). Modes that never ran are omitted.
	SearchAttempts map[string]uint64 `json:"search_attempts,omitempty"`
	// NodesSaved is the decoders' running estimate of tree expansions
	// avoided by approximate search; zero on an all-exact receiver.
	NodesSaved int64 `json:"nodes_saved"`
	// Pool is the shared decoder pool's traffic counters; Pool.Outstanding
	// above zero after a drain means leaked decoder leases.
	Pool core.PoolStats `json:"pool"`
	// AckArena is the engine's ack-marshal arena counters.
	AckArena ArenaStats `json:"ack_arena"`
}

// EngineStats snapshots the receiver's operational counters.
func (r *Receiver) EngineStats() EngineStats {
	attempts, saved := r.eng.searchStats()
	return EngineStats{
		TrackedFlows:    len(r.flows),
		TrackedMessages: r.nmsgs,
		ShedFlows:       r.shed,
		ExpiredFlows:    r.expired,
		BudgetDeferrals: r.eng.budgetDeferrals(),
		SearchAttempts:  attempts,
		NodesSaved:      saved,
		Pool:            r.pool.Stats(),
		AckArena:        r.eng.acks.Stats(),
	}
}

// flowEngine owns the decode worker goroutines and the fair scheduler.
// Attempt tokens are queued per flow, and workers pick the next token by
// round-robin over the flows that have pending work, so every active flow
// gets decode attempts at the same rate regardless of how many frames each
// pushes. The engine deliberately holds no reference to the Receiver so an
// abandoned receiver can be reclaimed.
type flowEngine struct {
	tr Transport
	pt PacketTransport // tr when addressable, else nil
	// acks leases the marshal buffers for outgoing acks, so the ack path
	// allocates nothing in steady state.
	acks *Arena
	// budget is Config.FlowDecodeBudget: how far (in decode-tree nodes
	// expanded) any flow's spend may lead the least-spent flow that has
	// pending work before the scheduler defers its attempts. Zero disables
	// budget accounting.
	budget int64
	// base is Config.Search, the strategy every attempt runs under when
	// adaptive selection is off (it is installed on each lease by stateFor)
	// and the strategy unpressured flows relax back to when it is on.
	base core.SearchConfig
	// adaptive is Config.AdaptiveSearch: pick each flow's search strategy
	// from its budget-deferral pressure instead of using base everywhere.
	adaptive bool

	mu   sync.Mutex
	cond *sync.Cond
	// flowQ holds the per-flow token queues; ring is the round-robin order
	// of flows that currently have tokens.
	flowQ map[uint32]*flowQueue
	ring  []*flowQueue
	// spent is the per-flow decode-spend ledger (nodes expanded over the
	// flow's lifetime); entries are forgotten when the receiver drops the
	// flow. deferrals counts scheduling decisions that skipped an
	// over-budget flow in favour of a cheaper one.
	spent     map[uint32]int64
	deferrals uint64
	// pressure is the adaptive-search signal: one count per scheduling
	// decision that deferred the flow, halved each time one of its attempts
	// actually runs. Flows under sustained deferral climb the mode ladder
	// (gap, lookahead, approx); flows the scheduler serves promptly decay
	// back to the base strategy. Nil unless adaptive.
	pressure map[uint32]uint64
	// modeAttempts counts executed decode attempts by the search mode they
	// ran under (indexed by core.SearchMode); nodesSaved folds the
	// decoders' estimates of expansions avoided by approximate search.
	modeAttempts [4]uint64
	nodesSaved   int64
	// outstanding counts attempt tokens submitted but not yet fully
	// processed (result recorded); while it is zero, Receive can block for
	// its whole timeout instead of polling for worker results.
	outstanding int
	ready       []Delivered
	err         error
	closed      bool
	once        sync.Once
	wg          sync.WaitGroup
}

// flowQueue is the FIFO of attempt tokens of one flow.
type flowQueue struct {
	id     uint32
	msgs   []*msgState
	inRing bool
}

func newFlowEngine(tr Transport, workers int, budget int64, base core.SearchConfig, adaptive bool) *flowEngine {
	if workers < 1 {
		workers = 1
	}
	e := &flowEngine{
		tr:       tr,
		flowQ:    map[uint32]*flowQueue{},
		acks:     NewArena(ackMarshalCap, 2*workers+8),
		budget:   budget,
		base:     base,
		adaptive: adaptive,
		spent:    map[uint32]int64{},
	}
	if adaptive {
		e.pressure = map[uint32]uint64{}
	}
	if pt, ok := tr.(PacketTransport); ok {
		e.pt = pt
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// worker pulls tokens off the fair scheduler until the engine closes and
// the queues drain.
func (e *flowEngine) worker() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.ring) == 0 && !e.closed {
			e.cond.Wait()
		}
		if len(e.ring) == 0 {
			// closed and drained
			e.mu.Unlock()
			return
		}
		// Budget-aware round-robin: take the first flow in the ring whose
		// decode spend is within FlowDecodeBudget of the least-spent flow
		// that has work, pop one of its tokens, and move it to the back of
		// the ring if it still has work. Skipped flows are deferred, not
		// dropped: their tokens stay queued and run as soon as the cheaper
		// flows catch up. The least-spent flow always qualifies, so a pick
		// always exists and deferral can never livelock.
		fq := e.pickLocked()
		st := fq.msgs[0]
		fq.msgs = fq.msgs[1:]
		if len(fq.msgs) > 0 {
			e.ring = append(e.ring, fq)
		} else {
			fq.inRing = false
			delete(e.flowQ, fq.id)
		}
		e.mu.Unlock()

		d, err := e.attempt(st)
		e.mu.Lock()
		if d != nil {
			e.ready = append(e.ready, *d)
		}
		if err != nil && e.err == nil {
			e.err = err
		}
		// Decrement after recording the result: a zero outstanding count
		// guarantees every finished attempt is visible in ready/err.
		e.outstanding--
		e.mu.Unlock()
	}
}

// pickLocked removes and returns the next schedulable flow queue from the
// ring. Callers hold e.mu and guarantee the ring is non-empty. Without a
// budget (or with a single flow queued) it is plain round-robin; with one,
// flows whose ledger leads the cheapest queued flow by more than the budget
// are rotated past (counted as deferrals) until an affordable flow is found.
func (e *flowEngine) pickLocked() *flowQueue {
	if e.budget <= 0 || len(e.ring) == 1 {
		fq := e.ring[0]
		e.ring = e.ring[1:]
		e.decayPressureLocked(fq.id)
		return fq
	}
	min := e.spent[e.ring[0].id]
	for _, fq := range e.ring[1:] {
		if s := e.spent[fq.id]; s < min {
			min = s
		}
	}
	for i, fq := range e.ring {
		if e.spent[fq.id]-min <= e.budget {
			e.deferrals += uint64(i)
			if e.adaptive {
				// Each flow rotated past accrues one unit of pressure,
				// nudging its next attempts toward cheaper search modes.
				for j := 0; j < i; j++ {
					e.pressure[e.ring[j].id]++
				}
			}
			e.ring = append(e.ring[:i], e.ring[i+1:]...)
			e.decayPressureLocked(fq.id)
			return fq
		}
	}
	// Unreachable: the minimum-spend flow always satisfies the budget.
	fq := e.ring[0]
	e.ring = e.ring[1:]
	e.decayPressureLocked(fq.id)
	return fq
}

// decayPressureLocked halves a flow's deferral pressure when one of its
// attempts is actually scheduled, so a flow the scheduler serves promptly
// relaxes back to the base search strategy within a few attempts.
func (e *flowEngine) decayPressureLocked(flow uint32) {
	if !e.adaptive {
		return
	}
	if p := e.pressure[flow]; p > 1 {
		e.pressure[flow] = p / 2
	} else if p == 1 {
		delete(e.pressure, flow)
	}
}

// searchFor picks the search strategy for one attempt of a flow. Without
// adaptive selection it is always the base strategy; with it, sustained
// budget deferral climbs a ladder of progressively more aggressive
// approximate modes — decode cheaper when the receiver cannot keep up —
// and drained pressure falls back to the base.
func (e *flowEngine) searchFor(flow uint32) core.SearchConfig {
	if !e.adaptive {
		return e.base
	}
	e.mu.Lock()
	p := e.pressure[flow]
	e.mu.Unlock()
	switch {
	case p == 0:
		return e.base
	case p < 4:
		return core.SearchConfig{Mode: core.SearchGap}
	case p < 8:
		return core.SearchConfig{Mode: core.SearchLookahead}
	default:
		return core.SearchConfig{Mode: core.SearchApprox}
	}
}

// noteSearch records one executed attempt's search mode and saved work.
func (e *flowEngine) noteSearch(mode core.SearchMode, saved int64) {
	e.mu.Lock()
	if int(mode) < len(e.modeAttempts) {
		e.modeAttempts[mode]++
	}
	e.nodesSaved += saved
	e.mu.Unlock()
}

// searchStats snapshots the per-mode attempt counters and the saved-node
// estimate for EngineStats.
func (e *flowEngine) searchStats() (map[string]uint64, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := make(map[string]uint64, len(e.modeAttempts))
	for mode, n := range e.modeAttempts {
		if n > 0 {
			m[core.SearchMode(mode).String()] = n
		}
	}
	return m, e.nodesSaved
}

// noteSpend charges freshly expanded decode-tree nodes to a flow's ledger.
func (e *flowEngine) noteSpend(flow uint32, nodes int64) {
	if e.budget <= 0 || nodes == 0 {
		return
	}
	e.mu.Lock()
	e.spent[flow] += nodes
	e.mu.Unlock()
}

// forgetFlow drops a flow's spend ledger entry when the receiver stops
// tracking the flow, so the ledger stays bounded by the live-flow cap.
func (e *flowEngine) forgetFlow(flow uint32) {
	e.mu.Lock()
	delete(e.spent, flow)
	delete(e.pressure, flow)
	e.mu.Unlock()
}

// budgetDeferrals reports how many scheduling decisions skipped an
// over-budget flow.
func (e *flowEngine) budgetDeferrals() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deferrals
}

// submit queues one attempt token on its flow's queue.
func (e *flowEngine) submit(st *msgState) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	fq := e.flowQ[st.flow]
	if fq == nil {
		fq = &flowQueue{id: st.flow}
		e.flowQ[st.flow] = fq
	}
	fq.msgs = append(fq.msgs, st)
	if !fq.inRing {
		fq.inRing = true
		e.ring = append(e.ring, fq)
	}
	e.outstanding++
	e.cond.Signal()
	e.mu.Unlock()
}

// busy reports whether any submitted attempt has not finished yet. When it
// returns false, every completed attempt's outcome is already visible to
// take (the workers decrement outstanding only after recording results).
func (e *flowEngine) busy() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.outstanding > 0
}

// take pops one delivered packet, or — only once the delivery queue is
// drained — the first asynchronous worker error. Packets decoded (and acked)
// before the error must still reach the application.
func (e *flowEngine) take() (*Delivered, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ready) == 0 {
		if e.err != nil {
			return nil, e.err
		}
		return nil, nil
	}
	d := e.ready[0]
	e.ready = e.ready[1:]
	return &d, nil
}

// attempt runs one decode attempt for a message: drain its pending symbols
// into the observations, resume the (incremental) beam search, and on a CRC
// match mark it delivered, release its decoder lease back to the pool, and
// send the ack.
func (e *flowEngine) attempt(st *msgState) (*Delivered, error) {
	st.decodeMu.Lock()
	defer st.decodeMu.Unlock()

	st.mu.Lock()
	st.queued = false
	if st.done || st.evicted {
		// Orphaned token: the state was delivered or dropped after this
		// token was queued. Reclaim the lease if eviction left it behind.
		reclaim := st.lease
		st.lease = nil
		st.mu.Unlock()
		reclaim.Release()
		return nil, nil
	}
	st.attempting = true
	st.draining.reset()
	st.pending, st.draining = st.draining, st.pending
	pending := st.draining
	lease := st.lease
	st.mu.Unlock()

	var out *core.DecodeResult
	usedMode := core.SearchExact
	err := func() error {
		// The whole drained batch lands in the observations through one
		// AddBatch: one generation bump and one dirty-level update per
		// attempt instead of one per symbol.
		if err := lease.Obs.AddBatch(pending.pos, pending.y); err != nil {
			return err
		}
		// Attempt a decode once enough symbols could possibly carry the
		// message.
		if lease.Obs.Count() < st.minUses {
			return nil
		}
		if e.adaptive {
			// Load-adaptive mode selection: re-pick from this flow's budget
			// pressure on every attempt. SetSearchConfig is a no-op when the
			// mode is unchanged; a genuine switch invalidates the incremental
			// workspace (frontiers pruned under one strategy do not describe
			// another), which the next Decode absorbs as a from-root rebuild.
			if err := lease.Dec.SetSearchConfig(e.searchFor(st.flow)); err != nil {
				return err
			}
		}
		usedMode = lease.Dec.SearchConfig().Mode
		var derr error
		out, derr = lease.Dec.Decode(lease.Obs)
		return derr
	}()

	st.mu.Lock()
	st.attempting = false
	if out != nil {
		st.nodes += int64(out.NodesExpanded)
	}
	evicted := st.evicted
	var reclaim *core.LeasedDecoder
	if evicted {
		// Ownership moved to a recreated state while we were decoding; it
		// will deliver (and ack) instead, so stay silent to keep delivery
		// single-copy — but the lease is ours to return.
		reclaim = st.lease
		st.lease = nil
	}
	st.mu.Unlock()
	if out != nil {
		e.noteSpend(st.flow, int64(out.NodesExpanded))
		e.noteSearch(usedMode, int64(out.NodesSaved))
	}
	reclaim.Release()
	if err != nil || evicted || out == nil {
		return nil, err
	}

	payload, okCRC := crc.Verify32(out.Message)
	if !okCRC {
		return nil, nil // keep listening for more symbols
	}
	st.mu.Lock()
	if st.evicted {
		// Eviction raced the CRC check (attempting was already false, so
		// dropState may have reclaimed the lease itself): ownership moved to
		// a recreated state, which will deliver and ack instead — stay
		// silent to keep delivery single-copy.
		reclaim = st.lease
		st.lease = nil
		st.mu.Unlock()
		reclaim.Release()
		return nil, nil
	}
	st.done = true
	st.payload = append([]byte(nil), payload...)
	symbols := st.symbols
	reclaim = st.lease
	st.lease = nil
	st.mu.Unlock()
	// Delivered: the decoder's job is done, return it to the pool for the
	// next message (the ack-repeat path never decodes).
	reclaim.Release()
	if err := e.sendAckFor(st, true); err != nil {
		return nil, err
	}
	return &Delivered{FlowID: st.flow, MsgID: st.id, Payload: st.payload, Symbols: symbols}, nil
}

// sendAckFor transmits an acknowledgement for a message — positive on
// decode, negative when admission control sheds the flow. The ack mirrors
// the frame generation the sender used, and is directed at the flow's
// source address when the transport can address peers. It may be called
// from any worker and from the ingest path; transports are safe for
// concurrent Send.
func (e *flowEngine) sendAckFor(st *msgState, decoded bool) error {
	st.mu.Lock()
	addr := st.addr
	v1 := st.wireV1
	st.mu.Unlock()
	version := FrameV0
	if v1 {
		version = FrameV1
	}
	ack := AckFrame{Version: version, FlowID: st.flow, MsgID: st.id, Decoded: decoded}
	lb := e.acks.Lease()
	frame := ack.AppendTo(lb.Data[:0])
	var err error
	if e.pt != nil && addr != nil {
		err = e.pt.SendTo(frame, addr)
	} else {
		err = e.tr.Send(frame)
	}
	lb.Release()
	if err != nil {
		return fmt.Errorf("link: sending ack: %w", err)
	}
	return nil
}

// ackMarshalCap sizes the engine's ack-marshal arena buffers; the largest
// ack (v1) is 11 bytes.
const ackMarshalCap = 32

// stop shuts the workers down, letting them drain queued attempts first.
func (e *flowEngine) stop() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		e.cond.Broadcast()
		e.mu.Unlock()
		e.wg.Wait()
		// Every ack lease is released before its send returns, so a clean
		// engine shutdown cannot leak; Close just drops the free list.
		_ = e.acks.Close()
	})
}
