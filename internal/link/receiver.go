package link

import (
	"fmt"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/crc"
)

// Receiver is the receiving half of the rateless link. It applies a simulated
// radio impairment to every arriving symbol, feeds the result to the spinal
// decoder, and acknowledges a packet as soon as the decoded message passes
// its CRC.
type Receiver struct {
	tr         Transport
	cfg        Config
	impairment channel.SymbolChannel

	states    map[uint32]*msgState
	delivered []Delivered
}

// Delivered is one successfully decoded packet.
type Delivered struct {
	MsgID   uint32
	Payload []byte
	// Symbols is how many coded symbols had been received when the packet
	// decoded, which determines the achieved rate.
	Symbols int
}

// msgState tracks the decoding progress of one packet. The decoder and
// observation container live for the whole packet, so every tryDecode after
// the first resumes the beam search incrementally from the first spine value
// that received new symbols — the attempts for one packet cost about one
// full decode in total instead of one per arriving frame.
type msgState struct {
	params  core.Params
	sched   core.Schedule
	dec     *core.BeamDecoder
	obs     *core.Observations
	done    bool
	payload []byte
	symbols int
	nodes   int64
}

// NewReceiver returns a receiver that reads frames from tr and corrupts each
// symbol with the given impairment before decoding (use a channel.AWGN to
// model the radio, or nil for a perfect channel).
func NewReceiver(tr Transport, cfg Config, impairment channel.SymbolChannel) (*Receiver, error) {
	if tr == nil {
		return nil, fmt.Errorf("link: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Receiver{
		tr:         tr,
		cfg:        cfg,
		impairment: impairment,
		states:     map[uint32]*msgState{},
	}, nil
}

// Receive blocks until one new packet is decoded (returning it) or the
// timeout elapses (returning ErrTimeout).
//
// To keep the decoder from falling behind a fast sender, Receive first drains
// every frame that is already queued on the transport (adding their symbols
// to the per-message observations) and only then runs decode attempts — one
// per message that received new symbols.
func (r *Receiver) Receive(timeout time.Duration) (*Delivered, error) {
	if len(r.delivered) > 0 {
		d := r.delivered[0]
		r.delivered = r.delivered[1:]
		return &d, nil
	}
	deadline := time.Now().Add(timeout)
	buf := make([]byte, maxFrameSize)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, ErrTimeout
		}
		// Block for the first frame, then drain whatever else is queued.
		n, err := r.tr.Receive(buf, remaining)
		if err == ErrTimeout {
			return nil, ErrTimeout
		}
		if err != nil {
			return nil, err
		}
		touched := map[uint32]bool{}
		for {
			if id, fresh, err := r.addFrame(buf[:n]); err == nil && fresh {
				touched[id] = true
			}
			n, err = r.tr.Receive(buf, 0)
			if err != nil {
				break
			}
		}
		for id := range touched {
			d, err := r.tryDecode(id)
			if err != nil {
				return nil, err
			}
			if d != nil {
				r.delivered = append(r.delivered, *d)
			}
		}
		if len(r.delivered) > 0 {
			d := r.delivered[0]
			r.delivered = r.delivered[1:]
			return &d, nil
		}
	}
}

// handleFrame processes one raw frame and, if it completes a packet, returns
// the delivered payload. It is the single-frame path used by tests; Receive
// batches addFrame and tryDecode for efficiency.
func (r *Receiver) handleFrame(raw []byte) (*Delivered, error) {
	id, fresh, err := r.addFrame(raw)
	if err != nil || !fresh {
		return nil, err
	}
	return r.tryDecode(id)
}

// addFrame parses a raw frame and merges its symbols into the per-message
// observations. It returns the message id the frame contributed to and
// whether that message needs a decode attempt (acks and duplicates of
// already-delivered messages do not).
func (r *Receiver) addFrame(raw []byte) (uint32, bool, error) {
	parsed, err := ParseFrame(raw)
	if err != nil {
		return 0, false, err
	}
	data, ok := parsed.(*DataFrame)
	if !ok {
		return 0, false, nil // stray ack: ignore
	}
	st, err := r.stateFor(data)
	if err != nil {
		return 0, false, err
	}
	if st.done {
		// The ack was probably lost; repeat it.
		return data.MsgID, false, r.sendAck(data.MsgID)
	}

	nseg := st.params.NumSegments()
	for i, sym := range data.Symbols {
		idx := int(data.StartIndex) + i
		pos := st.sched.Pos(idx)
		if pos.Spine >= nseg {
			return 0, false, fmt.Errorf("link: symbol index %d out of range", idx)
		}
		y := sym
		if r.impairment != nil {
			y = r.impairment.Corrupt(y)
		}
		if err := st.obs.Add(pos, y); err != nil {
			return 0, false, err
		}
		st.symbols++
	}
	return data.MsgID, true, nil
}

// tryDecode runs one decode attempt for the message and acknowledges it if
// the CRC verifies.
func (r *Receiver) tryDecode(msgID uint32) (*Delivered, error) {
	st, ok := r.states[msgID]
	if !ok || st.done {
		return nil, nil
	}
	// Attempt a decode once enough symbols could possibly carry the message.
	minUses := (st.params.MessageBits + 2*st.params.C - 1) / (2 * st.params.C)
	if st.obs.Count() < minUses {
		return nil, nil
	}
	out, err := st.dec.Decode(st.obs)
	if err != nil {
		return nil, err
	}
	st.nodes += int64(out.NodesExpanded)
	payload, okCRC := crc.Verify32(out.Message)
	if !okCRC {
		return nil, nil // keep listening for more symbols
	}
	st.done = true
	st.payload = append([]byte(nil), payload...)
	if err := r.sendAck(msgID); err != nil {
		return nil, err
	}
	return &Delivered{MsgID: msgID, Payload: st.payload, Symbols: st.symbols}, nil
}

// stateFor finds or creates the decoding state for the message described by a
// data frame, validating the advertised parameters.
func (r *Receiver) stateFor(data *DataFrame) (*msgState, error) {
	if st, ok := r.states[data.MsgID]; ok {
		if st.params.MessageBits != int(data.MessageBits) || st.params.K != int(data.K) || st.params.C != int(data.C) {
			return nil, fmt.Errorf("link: message %d changed parameters mid-flight", data.MsgID)
		}
		return st, nil
	}
	if data.MessageBits == 0 || data.MessageBits > (MaxPayload+4)*8 {
		return nil, fmt.Errorf("link: message of %d bits rejected", data.MessageBits)
	}
	if int(data.K) > 12 || data.K == 0 {
		return nil, fmt.Errorf("link: unsupported k=%d", data.K)
	}
	if data.Seed != r.cfg.Seed {
		return nil, fmt.Errorf("link: frame advertises unknown code seed")
	}
	params := core.Params{
		K:           int(data.K),
		C:           int(data.C),
		MessageBits: int(data.MessageBits),
		Seed:        data.Seed,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sched, err := scheduleFor(data.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}
	dec, err := core.NewBeamDecoder(params, r.cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	obs, err := core.NewObservations(params.NumSegments())
	if err != nil {
		return nil, err
	}
	st := &msgState{params: params, sched: sched, dec: dec, obs: obs}
	r.states[data.MsgID] = st
	return st, nil
}

// sendAck transmits a positive acknowledgement for msgID.
func (r *Receiver) sendAck(msgID uint32) error {
	ack := &AckFrame{MsgID: msgID, Decoded: true}
	if err := r.tr.Send(ack.Marshal()); err != nil {
		return fmt.Errorf("link: sending ack: %w", err)
	}
	return nil
}

// SymbolsReceived reports how many symbols have been accumulated for a
// message; it is exported for tests and diagnostics.
func (r *Receiver) SymbolsReceived(msgID uint32) int {
	if st, ok := r.states[msgID]; ok {
		return st.symbols
	}
	return 0
}

// NodesExpanded reports the total decoding-tree nodes freshly expanded across
// all decode attempts for a message — the receiver's computational cost for
// the packet. With the incremental decoder this stays near the cost of a
// single full decode regardless of how many frames triggered attempts.
func (r *Receiver) NodesExpanded(msgID uint32) int64 {
	if st, ok := r.states[msgID]; ok {
		return st.nodes
	}
	return 0
}
