package link

import (
	"errors"
	"fmt"
	"time"

	"spinal/internal/core"
	"spinal/internal/crc"
	"spinal/internal/rng"
)

// Config holds the link parameters shared (by convention) between the sender
// and the receiver. Only the code seed and parameters must genuinely match;
// everything else is carried in each data frame.
type Config struct {
	// K and C are the spinal code parameters (bits per segment, bits per
	// I/Q dimension). Zero values select k=8, c=10.
	K int
	C int
	// Seed is the shared hash-family seed.
	Seed uint64
	// BeamWidth is the receiver's decoder beam; zero selects 16.
	BeamWidth int
	// SymbolsPerFrame is the number of coded symbols per data frame; zero
	// selects 48.
	SymbolsPerFrame int
	// Schedule selects the transmission order (ScheduleSequential or
	// ScheduleStriped8).
	Schedule uint8
	// MaxPasses bounds how many encoding passes the sender emits before
	// giving up on a packet; zero selects 60.
	MaxPasses int
	// AckPoll is the sender's initial acknowledgement wait after each flush
	// of data frames; zero selects 200 microseconds (in-memory links are
	// fast; UDP deployments should raise this). The wait is not fixed: every
	// flush that goes unacknowledged doubles it — with a deterministic ±25%
	// jitter so many senders never synchronize their polls — up to
	// AckPollMax, and it resets for each new message. Backing off keeps a
	// sender from busy-spinning redundant passes into a receiver that is
	// still working through its decode backlog.
	AckPoll time.Duration
	// AckPollMax caps the exponential ack-wait backoff; zero selects
	// 16 x AckPoll.
	AckPollMax time.Duration
	// SendDeadline bounds the wall-clock retransmission time of one Send
	// call. When it expires before an ack (or NACK) arrives, Send stops
	// cleanly: it returns the report gathered so far together with an error
	// wrapping ErrDeadline. Zero means no deadline (give up only on the
	// MaxPasses budget).
	SendDeadline time.Duration
	// SendRetries is how many consecutive transient transport errors one
	// send or ack-wait operation absorbs (with a short pause) before Send
	// fails. ErrClosed is always fatal. Zero selects 8; negative disables
	// retries, restoring fail-on-first-error.
	SendRetries int
	// FinalWait is how long the sender keeps listening for a late
	// acknowledgement after it has emitted its last frame, covering the time
	// the receiver needs to catch up on decoding; zero selects one second.
	FinalWait time.Duration
	// DecodeWorkers is the size of the receiver's decode worker pool:
	// attempts for that many distinct in-flight messages can run
	// concurrently with frame ingest. Each message has affinity to one
	// worker, which keeps its incremental decode workspace valid. Zero
	// selects runtime.GOMAXPROCS.
	DecodeWorkers int
	// DecoderParallelism is the per-message decoder's internal worker count
	// (BeamDecoder.SetParallelism). Zero selects 1 — on a receiver the
	// useful parallelism usually comes from decoding distinct messages
	// concurrently, not from sharding one message's tree.
	DecoderParallelism int
	// MaxTracked caps how many per-message decoding states the receiver
	// retains at once across all flows; the oldest (delivered first) are
	// evicted when the cap is hit. Zero selects DefaultMaxTracked.
	MaxTracked int
	// MaxTrackedPerFlow caps the in-flight messages of a single flow the
	// same way. Zero selects DefaultMaxTrackedPerFlow.
	MaxTrackedPerFlow int
	// MaxFlows caps how many flows the receiver tracks concurrently.
	// Admitting a flow beyond the cap sheds the flow with the oldest
	// activity and NACKs its undelivered messages. Zero selects
	// DefaultMaxFlows.
	MaxFlows int
	// PoolCapacity bounds the receiver's shared decoder pool: how many idle
	// decoders are kept for reuse across messages and flows. Zero selects
	// core.DefaultDecoderPoolCapacity; a negative value disables pooling
	// (every message builds a fresh decoder, as the pre-flow receiver did).
	PoolCapacity int
	// FlowID is the sender's flow identity, carried in every v1 data frame
	// so one receiver can serve many senders. Zero is a valid flow (and the
	// flow v0 senders implicitly use).
	FlowID uint32
	// LegacyV0 makes the sender emit v0 (pre-flow) frames, for
	// interoperating with pre-v1 receivers. Requires FlowID 0.
	LegacyV0 bool
	// IngestBatch is how many frames the receiver pulls from the transport
	// per batched receive call (BatchTransport); zero selects
	// DefaultIngestBatch. Transports without batch support ignore it.
	IngestBatch int
	// FlushFrames is how many data frames the sender coalesces into one
	// SendBatch before it pauses to poll for an ack; zero selects 1, the
	// classic frame-by-frame cadence. Larger values amortize syscalls at
	// the cost of overshooting the ack by up to a flush of symbols.
	FlushFrames int
	// FlowDecodeBudget bounds how far ahead of the least-spent active flow
	// any flow's decode spend (tree nodes expanded) may run before the
	// receiver's scheduler defers its attempts. Deferral degrades
	// gracefully: frames keep accumulating in the deferred flow's pending
	// buffers and its attempts run as soon as the other flows catch up (or
	// it is the only flow with work) — nothing is ever dropped — so one
	// bad-channel flow cannot monopolize the decode workers. Zero disables
	// budget accounting.
	FlowDecodeBudget int64
	// IdleExpiry expires flows whose senders have gone silent: a flow with
	// no frame for this long is dropped, its undelivered messages are
	// NACKed, and its decoder leases and buffers return to their pools —
	// zombie senders stop pinning receiver state. Expiry is checked on the
	// receiver's Receive loop, so it needs no timer goroutine. Zero
	// disables idle expiry.
	IdleExpiry time.Duration
	// CostMetric selects the receiver decoders' cost arithmetic: the exact
	// float64 default or the quantized int32 metric
	// (core.BeamDecoder.SetCostMetric). Receiver-local — it does not need
	// to match the sender.
	CostMetric core.CostMetric
	// Search selects the receiver decoders' tree-search strategy: the exact
	// beam search (the zero value) or an approximate mode
	// (core.BeamDecoder.SetSearchConfig). Receiver-local, like CostMetric —
	// the CRC guards delivery, so an approximate decode can cost extra
	// passes but never a wrong payload. When AdaptiveSearch is set this is
	// only the baseline for unpressured flows.
	Search core.SearchConfig
	// AdaptiveSearch lets the receiver pick each flow's search strategy
	// from decode-budget pressure: flows whose attempts keep being deferred
	// by the FlowDecodeBudget scheduler are switched to progressively more
	// aggressive approximate modes (gap pruning, then lookahead, then the
	// stacked approx mode), and revert toward Config.Search as the pressure
	// drains. Requires FlowDecodeBudget, which supplies the pressure
	// signal.
	AdaptiveSearch bool
	// MaxDecodeCost caps the decode work a single frame may advertise,
	// measured as 2^K times the segment count of the message it describes.
	// The wire format admits parameters (K=12 with a maximum-length
	// message) whose beam decode runs minutes per attempt, so one hostile
	// frame could otherwise pin a decode worker — a cheap denial of
	// service against the receiver. Frames over the cap are rejected at
	// admission, before any state is allocated. Zero selects
	// DefaultMaxDecodeCost, which admits every configuration this
	// repository ships with ~4x headroom; negative disables the cap.
	MaxDecodeCost int64
}

// DefaultMaxDecodeCost is the default Config.MaxDecodeCost: roughly 4x the
// advertised decode cost of the largest legitimate configuration (K=8 with a
// MaxPayload-sized message).
const DefaultMaxDecodeCost = 1 << 21

// DefaultIngestBatch is the default receiver batch size per receive call.
const DefaultIngestBatch = 32

// MaxIngestBatch bounds IngestBatch and FlushFrames.
const MaxIngestBatch = 1024

// DefaultMaxTracked is the default cap on simultaneously tracked messages at
// the receiver, across all flows.
const DefaultMaxTracked = 256

// DefaultMaxTrackedPerFlow is the default cap on simultaneously tracked
// messages of one flow.
const DefaultMaxTrackedPerFlow = 64

// DefaultMaxFlows is the default cap on concurrently tracked flows.
const DefaultMaxFlows = 64

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.C == 0 {
		c.C = 10
	}
	if c.Seed == 0 {
		c.Seed = core.DefaultSeed
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 16
	}
	if c.SymbolsPerFrame == 0 {
		c.SymbolsPerFrame = 48
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 60
	}
	if c.AckPoll == 0 {
		c.AckPoll = 200 * time.Microsecond
	}
	if c.AckPollMax == 0 {
		c.AckPollMax = 16 * c.AckPoll
	}
	if c.SendRetries == 0 {
		c.SendRetries = 8
	} else if c.SendRetries < 0 {
		c.SendRetries = 0
	}
	if c.FinalWait == 0 {
		c.FinalWait = time.Second
	}
	if c.MaxTracked == 0 {
		c.MaxTracked = DefaultMaxTracked
	}
	if c.MaxTrackedPerFlow == 0 {
		c.MaxTrackedPerFlow = DefaultMaxTrackedPerFlow
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	if c.IngestBatch == 0 {
		c.IngestBatch = DefaultIngestBatch
	}
	if c.FlushFrames == 0 {
		c.FlushFrames = 1
	}
	if c.MaxDecodeCost == 0 {
		c.MaxDecodeCost = DefaultMaxDecodeCost
	}
	return c
}

// validate rejects configurations the frame format or decoder cannot carry.
func (c Config) validate() error {
	if c.K < 1 || c.K > 12 {
		return fmt.Errorf("link: K must be in [1,12], got %d", c.K)
	}
	if c.C < 2 || c.C > 16 {
		return fmt.Errorf("link: C must be in [2,16], got %d", c.C)
	}
	if c.SymbolsPerFrame < 1 || c.SymbolsPerFrame > MaxSymbolsPerFrame {
		return fmt.Errorf("link: SymbolsPerFrame must be in [1,%d], got %d", MaxSymbolsPerFrame, c.SymbolsPerFrame)
	}
	if c.Schedule != ScheduleSequential && c.Schedule != ScheduleStriped8 {
		return fmt.Errorf("link: unknown schedule %d", c.Schedule)
	}
	if c.MaxPasses < 1 {
		return fmt.Errorf("link: MaxPasses must be positive, got %d", c.MaxPasses)
	}
	if c.DecodeWorkers < 0 {
		return fmt.Errorf("link: DecodeWorkers must be >= 0, got %d", c.DecodeWorkers)
	}
	if c.DecoderParallelism < 0 {
		return fmt.Errorf("link: DecoderParallelism must be >= 0, got %d", c.DecoderParallelism)
	}
	if c.MaxTracked < 0 {
		return fmt.Errorf("link: MaxTracked must be >= 0, got %d", c.MaxTracked)
	}
	if c.MaxTrackedPerFlow < 0 {
		return fmt.Errorf("link: MaxTrackedPerFlow must be >= 0, got %d", c.MaxTrackedPerFlow)
	}
	if c.MaxFlows < 0 {
		return fmt.Errorf("link: MaxFlows must be >= 0, got %d", c.MaxFlows)
	}
	if c.AckPollMax < c.AckPoll {
		return fmt.Errorf("link: AckPollMax %v below AckPoll %v", c.AckPollMax, c.AckPoll)
	}
	if c.SendDeadline < 0 {
		return fmt.Errorf("link: SendDeadline must be >= 0, got %v", c.SendDeadline)
	}
	if c.FlowDecodeBudget < 0 {
		return fmt.Errorf("link: FlowDecodeBudget must be >= 0, got %d", c.FlowDecodeBudget)
	}
	if c.IdleExpiry < 0 {
		return fmt.Errorf("link: IdleExpiry must be >= 0, got %v", c.IdleExpiry)
	}
	if c.AdaptiveSearch && c.FlowDecodeBudget == 0 {
		return fmt.Errorf("link: AdaptiveSearch requires a FlowDecodeBudget (the budget ledger is the pressure signal)")
	}
	if c.LegacyV0 && c.FlowID != 0 {
		return fmt.Errorf("link: legacy v0 framing cannot carry flow %d", c.FlowID)
	}
	if c.IngestBatch < 1 || c.IngestBatch > MaxIngestBatch {
		return fmt.Errorf("link: IngestBatch must be in [1,%d], got %d", MaxIngestBatch, c.IngestBatch)
	}
	if c.FlushFrames < 1 || c.FlushFrames > MaxIngestBatch {
		return fmt.Errorf("link: FlushFrames must be in [1,%d], got %d", MaxIngestBatch, c.FlushFrames)
	}
	return nil
}

// MaxPayload is the largest payload one packet can carry (limited so decoder
// state stays small on embedded receivers).
const MaxPayload = 2048

// ErrDeadline reports that a Send call exhausted its Config.SendDeadline
// before the message was acknowledged or shed. Errors returned by Send for
// an expired deadline satisfy errors.Is(err, ErrDeadline), and the report
// accompanying the error carries the partial transmission counters.
var ErrDeadline = errors.New("link: send deadline exceeded")

// Sender is the transmitting half of the rateless link. Its frame buffers
// and symbol scratch are reused across packets, so Send must not be called
// concurrently on one Sender (it never was safe to assume otherwise; use one
// Sender per goroutine).
type Sender struct {
	tr  Transport
	btr BatchTransport // tr when it supports batched sends, else nil
	cfg Config

	// arena leases the marshal buffers of in-flight (queued, not yet
	// flushed) data frames; symbuf is the per-frame symbol scratch.
	arena  *Arena
	symbuf []complex128
	frames [][]byte
	leases []*ArenaBuf
	ackBuf []byte
	view   FrameView
	// jit drives the deterministic ack-backoff jitter (seeded from the
	// config, so a run's pacing replays exactly).
	jit *rng.Rand
}

// NewSender returns a sender that transmits over tr.
func NewSender(tr Transport, cfg Config) (*Sender, error) {
	if tr == nil {
		return nil, fmt.Errorf("link: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Sender{
		tr:     tr,
		cfg:    cfg,
		arena:  NewArena(0, cfg.FlushFrames+2),
		symbuf: make([]complex128, cfg.SymbolsPerFrame),
		frames: make([][]byte, 0, cfg.FlushFrames),
		leases: make([]*ArenaBuf, 0, cfg.FlushFrames),
		ackBuf: make([]byte, maxFrameSize),
		jit:    rng.New(cfg.Seed ^ uint64(cfg.FlowID)<<32 ^ 0x5bd1e995a4f09db5),
	}
	if bt, ok := tr.(BatchTransport); ok {
		s.btr = bt
	}
	return s, nil
}

// SendReport summarizes the transmission of one packet.
type SendReport struct {
	// Acked reports whether the receiver acknowledged successful decoding.
	Acked bool
	// Shed reports that the receiver negatively acknowledged the message —
	// its admission control dropped this sender's flow — so the sender
	// stopped retransmitting early. Mutually exclusive with Acked.
	Shed bool
	// SymbolsSent is the number of coded symbols transmitted.
	SymbolsSent int
	// FramesSent is the number of data frames transmitted.
	FramesSent int
	// Rate is the delivered payload bits per transmitted symbol (zero if the
	// packet was not acknowledged).
	Rate float64
	// AckFramesIgnored counts frames the ack wait discarded because they
	// were not this message's ack: acks for other flows or messages on a
	// shared transport, duplicated stale acks, and unparseable garbage.
	// A steadily climbing count flags a misdirected or corrupted feedback
	// path that the sender is silently riding out.
	AckFramesIgnored int
	// DeadlineExceeded reports that Config.SendDeadline expired before the
	// message resolved; Send pairs it with an error wrapping ErrDeadline.
	DeadlineExceeded bool
}

// Send transmits one packet ratelessly and returns once the receiver
// acknowledges it or the give-up bound is reached.
func (s *Sender) Send(msgID uint32, payload []byte) (*SendReport, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("link: empty payload")
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("link: payload of %d bytes exceeds limit %d", len(payload), MaxPayload)
	}

	// The CRC-32 appended here is what lets the receiver detect a successful
	// decode without a genie (§3.2 of the paper).
	message := crc.Append32(append([]byte(nil), payload...))
	messageBits := len(message) * 8
	params := core.Params{K: s.cfg.K, C: s.cfg.C, MessageBits: messageBits, Seed: s.cfg.Seed}
	enc, err := core.NewEncoder(params, message)
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(s.cfg.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}

	version := FrameV1
	if s.cfg.LegacyV0 {
		version = FrameV0
	}
	report := &SendReport{}
	maxSymbols := s.cfg.MaxPasses * params.NumSegments()
	next := 0
	var deadline time.Time
	if s.cfg.SendDeadline > 0 {
		deadline = time.Now().Add(s.cfg.SendDeadline)
	}
	ackWait := s.cfg.AckPoll
	// On any early exit, return queued-but-unflushed marshal buffers to the
	// arena (flush clears both slices on the normal path).
	defer func() {
		for _, lb := range s.leases {
			lb.Release()
		}
		s.leases = s.leases[:0]
		s.frames = s.frames[:0]
	}()
	for next < maxSymbols {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			report.DeadlineExceeded = true
			return report, fmt.Errorf("link: message %d: %w", msgID, ErrDeadline)
		}
		count := s.cfg.SymbolsPerFrame
		if next+count > maxSymbols {
			count = maxSymbols - next
		}
		syms := s.symbuf[:count]
		for i := 0; i < count; i++ {
			syms[i] = enc.SymbolAt(sched.Pos(next + i))
		}
		frame := DataFrame{
			Version:     version,
			FlowID:      s.cfg.FlowID,
			MsgID:       msgID,
			MessageBits: uint32(messageBits),
			K:           uint8(s.cfg.K),
			C:           uint8(s.cfg.C),
			Schedule:    s.cfg.Schedule,
			Seed:        s.cfg.Seed,
			StartIndex:  uint32(next),
			Symbols:     syms,
		}
		lb := s.arena.Lease()
		buf, err := frame.AppendTo(lb.Data[:0])
		if err != nil {
			lb.Release()
			return nil, err
		}
		lb.Data = buf
		s.leases = append(s.leases, lb)
		s.frames = append(s.frames, buf)
		next += count
		report.FramesSent++
		report.SymbolsSent = next

		// Coalesce up to FlushFrames frames into one batched send before
		// pausing for the ack poll.
		if len(s.frames) < s.cfg.FlushFrames && next < maxSymbols {
			continue
		}
		if err := s.flush(deadline); err != nil {
			if errors.Is(err, ErrDeadline) {
				report.DeadlineExceeded = true
				return report, fmt.Errorf("link: message %d: %w", msgID, ErrDeadline)
			}
			return nil, err
		}
		acked, shed, err := s.waitForAck(report, msgID, s.jitter(ackWait), deadline)
		if err != nil {
			return nil, err
		}
		if acked {
			report.Acked = true
			report.Rate = float64(len(payload)*8) / float64(report.SymbolsSent)
			return report, nil
		}
		if shed {
			report.Shed = true
			return report, nil
		}
		// Unresolved: back off the next poll so we stop busy-spinning
		// redundant passes into a receiver still working its backlog.
		if ackWait < s.cfg.AckPollMax {
			ackWait *= 2
			if ackWait > s.cfg.AckPollMax {
				ackWait = s.cfg.AckPollMax
			}
		}
	}

	// Final, more patient wait: the last frames may still be in flight and the
	// receiver may still be working through its decode backlog.
	finalWait := s.cfg.FinalWait
	if !deadline.IsZero() {
		if remaining := time.Until(deadline); remaining < finalWait {
			finalWait = remaining
		}
	}
	if finalWait < 0 {
		finalWait = 0
	}
	acked, shed, err := s.waitForAck(report, msgID, finalWait, deadline)
	if err != nil {
		return nil, err
	}
	if acked {
		report.Acked = true
		report.Rate = float64(len(payload)*8) / float64(report.SymbolsSent)
		return report, nil
	}
	report.Shed = shed
	if !shed && !deadline.IsZero() && !time.Now().Before(deadline) {
		report.DeadlineExceeded = true
		return report, fmt.Errorf("link: message %d: %w", msgID, ErrDeadline)
	}
	return report, nil
}

// jitter spreads a backoff wait by a deterministic ±25% so many senders
// sharing a receiver never synchronize their ack polls.
func (s *Sender) jitter(wait time.Duration) time.Duration {
	if wait <= 0 {
		return wait
	}
	scaled := time.Duration(float64(wait) * (0.75 + 0.5*s.jit.Float64()))
	if scaled < time.Microsecond {
		scaled = time.Microsecond
	}
	return scaled
}

// flush hands the queued frames to the transport — one SendBatch when the
// transport supports it, a send loop otherwise — and returns their marshal
// buffers to the arena. Transient transport errors (anything but ErrClosed)
// are retried in place up to Config.SendRetries times, resuming from the
// first unsent frame, so a momentary stall or injected fault does not fail
// the whole message.
func (s *Sender) flush(deadline time.Time) error {
	frames := s.frames
	var err error
	for retries := 0; len(frames) > 0; {
		if s.btr != nil {
			var n int
			n, err = s.btr.SendBatch(frames)
			frames = frames[n:]
		} else {
			err = s.tr.Send(frames[0])
			if err == nil {
				frames = frames[1:]
			}
		}
		if err == nil {
			retries = 0
			continue
		}
		if errors.Is(err, ErrClosed) || retries >= s.cfg.SendRetries {
			break
		}
		retries++
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			err = ErrDeadline
			break
		}
		time.Sleep(s.jitter(s.cfg.AckPoll))
	}
	for _, lb := range s.leases {
		lb.Release()
	}
	s.leases = s.leases[:0]
	s.frames = s.frames[:0]
	if err != nil {
		if errors.Is(err, ErrDeadline) {
			return err
		}
		return fmt.Errorf("link: sending data frame: %w", err)
	}
	return nil
}

// waitForAck polls the transport for an acknowledgement of msgID on this
// sender's flow. A positive ack reports acked; a negative ack — the
// receiver shed this flow under admission control — reports shed, telling
// Send to stop retransmitting. Frames that are not this message's ack are
// counted in report.AckFramesIgnored; transient receive errors are retried
// up to Config.SendRetries times before failing the send.
func (s *Sender) waitForAck(report *SendReport, msgID uint32, wait time.Duration, sendDeadline time.Time) (acked, shed bool, err error) {
	buf := s.ackBuf
	end := time.Now().Add(wait)
	if !sendDeadline.IsZero() && sendDeadline.Before(end) {
		end = sendDeadline
	}
	retries := 0
	for {
		remaining := time.Until(end)
		if remaining < 0 {
			remaining = 0
		}
		n, err := s.tr.Receive(buf, remaining)
		switch {
		case err == nil:
			retries = 0
		case errors.Is(err, ErrTimeout):
			return false, false, nil
		case errors.Is(err, ErrClosed):
			return false, false, fmt.Errorf("link: waiting for ack: %w", err)
		default:
			// Transient fault (e.g. an injected transport error): ride it
			// out and keep listening, bounded by the retry budget.
			if retries >= s.cfg.SendRetries {
				return false, false, fmt.Errorf("link: waiting for ack: %w", err)
			}
			retries++
			if remaining == 0 {
				return false, false, nil
			}
			continue
		}
		if uerr := UnmarshalFrameInPlace(buf[:n], &s.view); uerr != nil {
			report.AckFramesIgnored++ // garbage (e.g. corrupted ack bytes)
			if remaining == 0 {
				return false, false, nil
			}
			continue
		}
		// v0 acks carry flow 0, which is exactly this sender's flow when it
		// speaks v0; acks for other flows on a shared transport are ignored.
		if s.view.Kind == KindAck && s.view.MsgID == msgID && s.view.FlowID == s.cfg.FlowID {
			if s.view.Decoded {
				return true, false, nil
			}
			return false, true, nil
		}
		report.AckFramesIgnored++
		if remaining == 0 {
			return false, false, nil
		}
	}
}

// EncodeFrames builds the complete v1 frame sequence a sender with this
// configuration would emit for one payload over `passes` encoding passes,
// without transmitting anything. A non-nil corrupt function is applied to
// every symbol before it is marshalled, so experiments can bake a
// deterministic channel into the frame bytes. It exists for benchmarks and
// replay-style experiments that want to drive a receiver with deterministic
// frames.
func EncodeFrames(cfg Config, flow, msg uint32, payload []byte, symbolsPerFrame, passes int, corrupt func(complex128) complex128) ([][]byte, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(payload) == 0 || len(payload) > MaxPayload {
		return nil, fmt.Errorf("link: payload of %d bytes out of range", len(payload))
	}
	if symbolsPerFrame < 1 || symbolsPerFrame > MaxSymbolsPerFrame {
		return nil, fmt.Errorf("link: symbolsPerFrame %d out of range", symbolsPerFrame)
	}
	if passes < 1 {
		return nil, fmt.Errorf("link: passes must be positive, got %d", passes)
	}
	message := crc.Append32(append([]byte(nil), payload...))
	params := core.Params{K: cfg.K, C: cfg.C, MessageBits: len(message) * 8, Seed: cfg.Seed}
	enc, err := core.NewEncoder(params, message)
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(cfg.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}
	var frames [][]byte
	maxSymbols := passes * params.NumSegments()
	for next := 0; next < maxSymbols; next += symbolsPerFrame {
		count := symbolsPerFrame
		if next+count > maxSymbols {
			count = maxSymbols - next
		}
		frame := &DataFrame{
			Version:     FrameV1,
			FlowID:      flow,
			MsgID:       msg,
			MessageBits: uint32(params.MessageBits),
			K:           uint8(cfg.K),
			C:           uint8(cfg.C),
			Schedule:    cfg.Schedule,
			Seed:        cfg.Seed,
			StartIndex:  uint32(next),
			Symbols:     make([]complex128, count),
		}
		for i := 0; i < count; i++ {
			y := enc.SymbolAt(sched.Pos(next + i))
			if corrupt != nil {
				y = corrupt(y)
			}
			frame.Symbols[i] = y
		}
		buf, err := frame.Marshal()
		if err != nil {
			return nil, err
		}
		frames = append(frames, buf)
	}
	return frames, nil
}

// scheduleFor maps a wire schedule id to a core.Schedule.
func scheduleFor(id uint8, nseg int) (core.Schedule, error) {
	switch id {
	case ScheduleSequential:
		return core.NewSequentialSchedule(nseg)
	case ScheduleStriped8:
		return core.NewStripedSchedule(nseg, 8)
	default:
		return nil, fmt.Errorf("link: unknown schedule id %d", id)
	}
}
