package link

import (
	"fmt"
	"time"

	"spinal/internal/core"
	"spinal/internal/crc"
)

// Config holds the link parameters shared (by convention) between the sender
// and the receiver. Only the code seed and parameters must genuinely match;
// everything else is carried in each data frame.
type Config struct {
	// K and C are the spinal code parameters (bits per segment, bits per
	// I/Q dimension). Zero values select k=8, c=10.
	K int
	C int
	// Seed is the shared hash-family seed.
	Seed uint64
	// BeamWidth is the receiver's decoder beam; zero selects 16.
	BeamWidth int
	// SymbolsPerFrame is the number of coded symbols per data frame; zero
	// selects 48.
	SymbolsPerFrame int
	// Schedule selects the transmission order (ScheduleSequential or
	// ScheduleStriped8).
	Schedule uint8
	// MaxPasses bounds how many encoding passes the sender emits before
	// giving up on a packet; zero selects 60.
	MaxPasses int
	// AckPoll is how long the sender waits for an acknowledgement after each
	// data frame; zero selects 200 microseconds (in-memory links are fast;
	// UDP deployments should raise this).
	AckPoll time.Duration
	// FinalWait is how long the sender keeps listening for a late
	// acknowledgement after it has emitted its last frame, covering the time
	// the receiver needs to catch up on decoding; zero selects one second.
	FinalWait time.Duration
	// DecodeWorkers is the size of the receiver's decode worker pool:
	// attempts for that many distinct in-flight messages can run
	// concurrently with frame ingest. Each message has affinity to one
	// worker, which keeps its incremental decode workspace valid. Zero
	// selects runtime.GOMAXPROCS.
	DecodeWorkers int
	// DecoderParallelism is the per-message decoder's internal worker count
	// (BeamDecoder.SetParallelism). Zero selects 1 — on a receiver the
	// useful parallelism usually comes from decoding distinct messages
	// concurrently, not from sharding one message's tree.
	DecoderParallelism int
	// MaxTracked caps how many per-message decoding states the receiver
	// retains at once across all flows; the oldest (delivered first) are
	// evicted when the cap is hit. Zero selects DefaultMaxTracked.
	MaxTracked int
	// MaxTrackedPerFlow caps the in-flight messages of a single flow the
	// same way. Zero selects DefaultMaxTrackedPerFlow.
	MaxTrackedPerFlow int
	// MaxFlows caps how many flows the receiver tracks concurrently.
	// Admitting a flow beyond the cap sheds the flow with the oldest
	// activity and NACKs its undelivered messages. Zero selects
	// DefaultMaxFlows.
	MaxFlows int
	// PoolCapacity bounds the receiver's shared decoder pool: how many idle
	// decoders are kept for reuse across messages and flows. Zero selects
	// core.DefaultDecoderPoolCapacity; a negative value disables pooling
	// (every message builds a fresh decoder, as the pre-flow receiver did).
	PoolCapacity int
	// FlowID is the sender's flow identity, carried in every v1 data frame
	// so one receiver can serve many senders. Zero is a valid flow (and the
	// flow v0 senders implicitly use).
	FlowID uint32
	// LegacyV0 makes the sender emit v0 (pre-flow) frames, for
	// interoperating with pre-v1 receivers. Requires FlowID 0.
	LegacyV0 bool
}

// DefaultMaxTracked is the default cap on simultaneously tracked messages at
// the receiver, across all flows.
const DefaultMaxTracked = 256

// DefaultMaxTrackedPerFlow is the default cap on simultaneously tracked
// messages of one flow.
const DefaultMaxTrackedPerFlow = 64

// DefaultMaxFlows is the default cap on concurrently tracked flows.
const DefaultMaxFlows = 64

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.C == 0 {
		c.C = 10
	}
	if c.Seed == 0 {
		c.Seed = core.DefaultSeed
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 16
	}
	if c.SymbolsPerFrame == 0 {
		c.SymbolsPerFrame = 48
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 60
	}
	if c.AckPoll == 0 {
		c.AckPoll = 200 * time.Microsecond
	}
	if c.FinalWait == 0 {
		c.FinalWait = time.Second
	}
	if c.MaxTracked == 0 {
		c.MaxTracked = DefaultMaxTracked
	}
	if c.MaxTrackedPerFlow == 0 {
		c.MaxTrackedPerFlow = DefaultMaxTrackedPerFlow
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = DefaultMaxFlows
	}
	return c
}

// validate rejects configurations the frame format or decoder cannot carry.
func (c Config) validate() error {
	if c.K < 1 || c.K > 12 {
		return fmt.Errorf("link: K must be in [1,12], got %d", c.K)
	}
	if c.C < 2 || c.C > 16 {
		return fmt.Errorf("link: C must be in [2,16], got %d", c.C)
	}
	if c.SymbolsPerFrame < 1 || c.SymbolsPerFrame > MaxSymbolsPerFrame {
		return fmt.Errorf("link: SymbolsPerFrame must be in [1,%d], got %d", MaxSymbolsPerFrame, c.SymbolsPerFrame)
	}
	if c.Schedule != ScheduleSequential && c.Schedule != ScheduleStriped8 {
		return fmt.Errorf("link: unknown schedule %d", c.Schedule)
	}
	if c.MaxPasses < 1 {
		return fmt.Errorf("link: MaxPasses must be positive, got %d", c.MaxPasses)
	}
	if c.DecodeWorkers < 0 {
		return fmt.Errorf("link: DecodeWorkers must be >= 0, got %d", c.DecodeWorkers)
	}
	if c.DecoderParallelism < 0 {
		return fmt.Errorf("link: DecoderParallelism must be >= 0, got %d", c.DecoderParallelism)
	}
	if c.MaxTracked < 0 {
		return fmt.Errorf("link: MaxTracked must be >= 0, got %d", c.MaxTracked)
	}
	if c.MaxTrackedPerFlow < 0 {
		return fmt.Errorf("link: MaxTrackedPerFlow must be >= 0, got %d", c.MaxTrackedPerFlow)
	}
	if c.MaxFlows < 0 {
		return fmt.Errorf("link: MaxFlows must be >= 0, got %d", c.MaxFlows)
	}
	if c.LegacyV0 && c.FlowID != 0 {
		return fmt.Errorf("link: legacy v0 framing cannot carry flow %d", c.FlowID)
	}
	return nil
}

// MaxPayload is the largest payload one packet can carry (limited so decoder
// state stays small on embedded receivers).
const MaxPayload = 2048

// Sender is the transmitting half of the rateless link.
type Sender struct {
	tr  Transport
	cfg Config
}

// NewSender returns a sender that transmits over tr.
func NewSender(tr Transport, cfg Config) (*Sender, error) {
	if tr == nil {
		return nil, fmt.Errorf("link: nil transport")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Sender{tr: tr, cfg: cfg}, nil
}

// SendReport summarizes the transmission of one packet.
type SendReport struct {
	// Acked reports whether the receiver acknowledged successful decoding.
	Acked bool
	// Shed reports that the receiver negatively acknowledged the message —
	// its admission control dropped this sender's flow — so the sender
	// stopped retransmitting early. Mutually exclusive with Acked.
	Shed bool
	// SymbolsSent is the number of coded symbols transmitted.
	SymbolsSent int
	// FramesSent is the number of data frames transmitted.
	FramesSent int
	// Rate is the delivered payload bits per transmitted symbol (zero if the
	// packet was not acknowledged).
	Rate float64
}

// Send transmits one packet ratelessly and returns once the receiver
// acknowledges it or the give-up bound is reached.
func (s *Sender) Send(msgID uint32, payload []byte) (*SendReport, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("link: empty payload")
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("link: payload of %d bytes exceeds limit %d", len(payload), MaxPayload)
	}

	// The CRC-32 appended here is what lets the receiver detect a successful
	// decode without a genie (§3.2 of the paper).
	message := crc.Append32(append([]byte(nil), payload...))
	messageBits := len(message) * 8
	params := core.Params{K: s.cfg.K, C: s.cfg.C, MessageBits: messageBits, Seed: s.cfg.Seed}
	enc, err := core.NewEncoder(params, message)
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(s.cfg.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}

	version := FrameV1
	if s.cfg.LegacyV0 {
		version = FrameV0
	}
	report := &SendReport{}
	maxSymbols := s.cfg.MaxPasses * params.NumSegments()
	next := 0
	for next < maxSymbols {
		count := s.cfg.SymbolsPerFrame
		if next+count > maxSymbols {
			count = maxSymbols - next
		}
		frame := &DataFrame{
			Version:     version,
			FlowID:      s.cfg.FlowID,
			MsgID:       msgID,
			MessageBits: uint32(messageBits),
			K:           uint8(s.cfg.K),
			C:           uint8(s.cfg.C),
			Schedule:    s.cfg.Schedule,
			Seed:        s.cfg.Seed,
			StartIndex:  uint32(next),
			Symbols:     make([]complex128, count),
		}
		for i := 0; i < count; i++ {
			frame.Symbols[i] = enc.SymbolAt(sched.Pos(next + i))
		}
		buf, err := frame.Marshal()
		if err != nil {
			return nil, err
		}
		if err := s.tr.Send(buf); err != nil {
			return nil, fmt.Errorf("link: sending data frame: %w", err)
		}
		next += count
		report.FramesSent++
		report.SymbolsSent = next

		acked, shed, err := s.waitForAck(msgID, s.cfg.AckPoll)
		if err != nil {
			return nil, err
		}
		if acked {
			report.Acked = true
			report.Rate = float64(len(payload)*8) / float64(report.SymbolsSent)
			return report, nil
		}
		if shed {
			report.Shed = true
			return report, nil
		}
	}

	// Final, more patient wait: the last frames may still be in flight and the
	// receiver may still be working through its decode backlog.
	acked, shed, err := s.waitForAck(msgID, s.cfg.FinalWait)
	if err != nil {
		return nil, err
	}
	if acked {
		report.Acked = true
		report.Rate = float64(len(payload)*8) / float64(report.SymbolsSent)
	}
	report.Shed = shed
	return report, nil
}

// waitForAck polls the transport for an acknowledgement of msgID on this
// sender's flow. A positive ack reports acked; a negative ack — the
// receiver shed this flow under admission control — reports shed, telling
// Send to stop retransmitting.
func (s *Sender) waitForAck(msgID uint32, wait time.Duration) (acked, shed bool, err error) {
	buf := make([]byte, maxFrameSize)
	deadline := time.Now().Add(wait)
	for {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		n, err := s.tr.Receive(buf, remaining)
		switch err {
		case nil:
		case ErrTimeout:
			return false, false, nil
		default:
			return false, false, fmt.Errorf("link: waiting for ack: %w", err)
		}
		parsed, err := ParseFrame(buf[:n])
		if err != nil {
			continue // ignore garbage
		}
		// v0 acks carry flow 0, which is exactly this sender's flow when it
		// speaks v0; acks for other flows on a shared transport are ignored.
		if ack, ok := parsed.(*AckFrame); ok && ack.MsgID == msgID && ack.FlowID == s.cfg.FlowID {
			if ack.Decoded {
				return true, false, nil
			}
			return false, true, nil
		}
		if remaining == 0 {
			return false, false, nil
		}
	}
}

// EncodeFrames builds the complete v1 frame sequence a sender with this
// configuration would emit for one payload over `passes` encoding passes,
// without transmitting anything. A non-nil corrupt function is applied to
// every symbol before it is marshalled, so experiments can bake a
// deterministic channel into the frame bytes. It exists for benchmarks and
// replay-style experiments that want to drive a receiver with deterministic
// frames.
func EncodeFrames(cfg Config, flow, msg uint32, payload []byte, symbolsPerFrame, passes int, corrupt func(complex128) complex128) ([][]byte, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(payload) == 0 || len(payload) > MaxPayload {
		return nil, fmt.Errorf("link: payload of %d bytes out of range", len(payload))
	}
	if symbolsPerFrame < 1 || symbolsPerFrame > MaxSymbolsPerFrame {
		return nil, fmt.Errorf("link: symbolsPerFrame %d out of range", symbolsPerFrame)
	}
	if passes < 1 {
		return nil, fmt.Errorf("link: passes must be positive, got %d", passes)
	}
	message := crc.Append32(append([]byte(nil), payload...))
	params := core.Params{K: cfg.K, C: cfg.C, MessageBits: len(message) * 8, Seed: cfg.Seed}
	enc, err := core.NewEncoder(params, message)
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(cfg.Schedule, params.NumSegments())
	if err != nil {
		return nil, err
	}
	var frames [][]byte
	maxSymbols := passes * params.NumSegments()
	for next := 0; next < maxSymbols; next += symbolsPerFrame {
		count := symbolsPerFrame
		if next+count > maxSymbols {
			count = maxSymbols - next
		}
		frame := &DataFrame{
			Version:     FrameV1,
			FlowID:      flow,
			MsgID:       msg,
			MessageBits: uint32(params.MessageBits),
			K:           uint8(cfg.K),
			C:           uint8(cfg.C),
			Schedule:    cfg.Schedule,
			Seed:        cfg.Seed,
			StartIndex:  uint32(next),
			Symbols:     make([]complex128, count),
		}
		for i := 0; i < count; i++ {
			y := enc.SymbolAt(sched.Pos(next + i))
			if corrupt != nil {
				y = corrupt(y)
			}
			frame.Symbols[i] = y
		}
		buf, err := frame.Marshal()
		if err != nil {
			return nil, err
		}
		frames = append(frames, buf)
	}
	return frames, nil
}

// scheduleFor maps a wire schedule id to a core.Schedule.
func scheduleFor(id uint8, nseg int) (core.Schedule, error) {
	switch id {
	case ScheduleSequential:
		return core.NewSequentialSchedule(nseg)
	case ScheduleStriped8:
		return core.NewStripedSchedule(nseg, 8)
	default:
		return nil, fmt.Errorf("link: unknown schedule id %d", id)
	}
}
