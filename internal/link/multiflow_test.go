package link

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Tests for the flow-multiplexed link engine: many senders over one socket,
// v0 backward compatibility, admission control, and the equivalence of
// multi-flow decoding with dedicated single-flow receivers.

// TestReceiverServesManyFlowsOverUDP runs 16 concurrent senders — each its
// own UDP transport and flow identity, as separate spinalsend processes
// would be — against one receiver on a single UDP socket, and checks every
// payload arrives intact and tagged with its flow.
func TestReceiverServesManyFlowsOverUDP(t *testing.T) {
	const flows = 16
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	cfg := Config{K: 4}
	recv, err := NewReceiver(server, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	got := map[uint32][]byte{}
	var gotMu sync.Mutex
	stopRecv := make(chan struct{})
	var recvWG sync.WaitGroup
	recvWG.Add(1)
	go func() {
		defer recvWG.Done()
		for {
			select {
			case <-stopRecv:
				return
			default:
			}
			d, err := recv.Receive(50 * time.Millisecond)
			if err == ErrTimeout {
				continue
			}
			if err != nil {
				// The socket is closed at the end of the test; anything else
				// is a real failure.
				select {
				case <-stopRecv:
				default:
					t.Errorf("receiver: %v", err)
				}
				return
			}
			if d.MsgID != 1 {
				t.Errorf("flow %d delivered unexpected msg %d", d.FlowID, d.MsgID)
			}
			gotMu.Lock()
			got[d.FlowID] = d.Payload
			gotMu.Unlock()
		}
	}()

	var sendWG sync.WaitGroup
	errs := make(chan error, flows)
	for f := 1; f <= flows; f++ {
		sendWG.Add(1)
		go func(flow uint32) {
			defer sendWG.Done()
			tr, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
			if err != nil {
				errs <- err
				return
			}
			defer tr.Close()
			scfg := cfg
			scfg.FlowID = flow
			scfg.AckPoll = 5 * time.Millisecond
			sender, err := NewSender(tr, scfg)
			if err != nil {
				errs <- err
				return
			}
			report, err := sender.Send(1, []byte(fmt.Sprintf("payload of flow %d", flow)))
			if err != nil {
				errs <- err
				return
			}
			if !report.Acked {
				errs <- fmt.Errorf("flow %d not acknowledged", flow)
			}
		}(uint32(f))
	}
	sendWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Give the receive loop a moment to surface the last deliveries.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		gotMu.Lock()
		n := len(got)
		gotMu.Unlock()
		if n == flows {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stopRecv)
	server.Close()
	recvWG.Wait()
	for f := 1; f <= flows; f++ {
		want := []byte(fmt.Sprintf("payload of flow %d", f))
		if !bytes.Equal(got[uint32(f)], want) {
			t.Fatalf("flow %d: got %q, want %q", f, got[uint32(f)], want)
		}
	}
}

// TestLegacyV0EndToEnd checks the backward-compat guarantee: a v0 (pre-flow)
// sender decodes end-to-end against the v1 engine, landing on flow 0 and
// receiving v0-framed acks it understands.
func TestLegacyV0EndToEnd(t *testing.T) {
	a, b, err := NewPipePair(0, 81)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	scfg := Config{LegacyV0: true}
	sender, err := NewSender(a, scfg)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver(b, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	stop := make(chan struct{})
	delivered, wg := runReceiver(t, recv, stop)

	payload := []byte("a v0 sender against the multi-flow engine")
	report, err := sender.Send(3, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Acked {
		t.Fatal("v0 transfer not acknowledged by the v1 engine")
	}
	select {
	case d := <-delivered:
		if d.FlowID != 0 {
			t.Fatalf("v0 sender delivered on flow %d, want 0", d.FlowID)
		}
		if d.MsgID != 3 || !bytes.Equal(d.Payload, payload) {
			t.Fatalf("delivered wrong packet: %+v", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never delivered to the application")
	}
	close(stop)
	a.Close()
	wg.Wait()
}

// v1TestStream wraps testStream to emit v1 frames for a given flow.
func v1Frame(t *testing.T, s *testStream, cfg Config, flow uint32, count int) []byte {
	t.Helper()
	buf := s.frame(t, cfg, count)
	parsed, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	f := parsed.(*DataFrame)
	f.Version = FrameV1
	f.FlowID = flow
	out, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMultiFlowMatchesDedicatedReceiver is the equivalence check behind the
// shared engine: interleaving many flows through one receiver must deliver,
// per flow, exactly what a dedicated single-flow receiver delivers for the
// same frames — same payloads, same symbol counts.
func TestMultiFlowMatchesDedicatedReceiver(t *testing.T) {
	cfg := Config{K: 4}
	const flows = 6
	payload := func(flow uint32) []byte {
		return []byte(fmt.Sprintf("equivalence payload for flow %d, long enough to span frames", flow))
	}

	// Dedicated runs: one fresh receiver per flow, frames fed synchronously.
	dedicated := map[uint32]*Delivered{}
	for f := uint32(1); f <= flows; f++ {
		_, near, err := NewPipePair(0, 82)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := NewReceiver(near, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestStream(t, cfg, 1, payload(f))
		var d *Delivered
		for d == nil && s.next < 3*s.params.NumSegments() {
			d, err = recv.HandleFrame(v1Frame(t, s, cfg, f, 8))
			if err != nil {
				t.Fatal(err)
			}
		}
		if d == nil {
			t.Fatalf("dedicated receiver for flow %d never delivered", f)
		}
		dedicated[f] = d
		recv.Close()
		near.Close()
	}

	// Shared run: the same frame sequences interleaved round-robin through
	// one receiver.
	_, near, err := NewPipePair(0, 83)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	streams := map[uint32]*testStream{}
	for f := uint32(1); f <= flows; f++ {
		streams[f] = newTestStream(t, cfg, 1, payload(f))
	}
	shared := map[uint32]*Delivered{}
	for round := 0; len(shared) < flows && round < 3*64; round++ {
		for f := uint32(1); f <= flows; f++ {
			if shared[f] != nil {
				continue
			}
			d, err := recv.HandleFrame(v1Frame(t, streams[f], cfg, f, 8))
			if err != nil {
				t.Fatal(err)
			}
			if d != nil {
				if d.FlowID != f {
					t.Fatalf("delivery tagged flow %d, want %d", d.FlowID, f)
				}
				shared[f] = d
			}
		}
	}

	for f := uint32(1); f <= flows; f++ {
		ded, sh := dedicated[f], shared[f]
		if sh == nil {
			t.Fatalf("shared receiver never delivered flow %d", f)
		}
		if !bytes.Equal(ded.Payload, sh.Payload) {
			t.Fatalf("flow %d: shared payload differs from dedicated", f)
		}
		if ded.Symbols != sh.Symbols {
			t.Fatalf("flow %d: shared receiver needed %d symbols, dedicated %d — decode cadence diverged",
				f, sh.Symbols, ded.Symbols)
		}
	}
	// All flows were in flight at once, so each built a decoder — but every
	// delivery must have returned its lease to the shared pool...
	if s := recv.PoolStats(); s.Idle == 0 || s.Misses > flows {
		t.Fatalf("deliveries did not repopulate the decoder pool: %+v", s)
	}
	// ...and a second wave of messages reuses them instead of rebuilding.
	s2 := newTestStream(t, cfg, 2, payload(1))
	var d2 *Delivered
	for d2 == nil && s2.next < 3*s2.params.NumSegments() {
		d2, err = recv.HandleFrame(v1Frame(t, s2, cfg, 1, 8))
		if err != nil {
			t.Fatal(err)
		}
	}
	if d2 == nil {
		t.Fatal("second-wave message never delivered")
	}
	if s := recv.PoolStats(); s.Hits == 0 {
		t.Fatalf("second-wave message did not reuse a pooled decoder: %+v", s)
	}
}

// TestFlowAdmissionShedsOldest checks MaxFlows admission control: a new
// flow beyond the cap sheds the flow with the oldest activity, NACKs its
// undelivered messages, and the shed flow can come back later.
func TestFlowAdmissionShedsOldest(t *testing.T) {
	far, near, err := NewPipePair(0, 84)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4, MaxFlows: 3}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// One undecodable frame per flow: flows 1..3 fill the table, flow 4
	// must shed flow 1 (oldest activity).
	for f := uint32(1); f <= 4; f++ {
		s := newTestStream(t, cfg, 1, []byte(fmt.Sprintf("flow %d", f)))
		if _, err := recv.HandleFrame(v1Frame(t, s, cfg, f, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := recv.TrackedFlows(); got != 3 {
		t.Fatalf("tracking %d flows, cap is 3", got)
	}
	if recv.ShedFlows() != 1 {
		t.Fatalf("shed %d flows, want 1", recv.ShedFlows())
	}
	if recv.FlowSymbolsReceived(1, 1) != 0 {
		t.Fatal("flow 1 (oldest) was not the one shed")
	}
	if recv.FlowSymbolsReceived(4, 1) == 0 {
		t.Fatal("newest flow was not admitted")
	}

	// The shed flow's undelivered message got a NACK.
	buf := make([]byte, maxFrameSize)
	sawNack := false
	for {
		n, err := far.Receive(buf, 0)
		if err != nil {
			break
		}
		if parsed, perr := ParseFrame(buf[:n]); perr == nil {
			if ack, ok := parsed.(*AckFrame); ok && ack.FlowID == 1 && ack.MsgID == 1 && !ack.Decoded {
				sawNack = true
			}
		}
	}
	if !sawNack {
		t.Fatal("shedding flow 1 did not NACK its in-flight message")
	}

	// A shed flow is not banned: fresh frames re-admit it (shedding another).
	s1 := newTestStream(t, cfg, 1, []byte("flow 1"))
	var delivered *Delivered
	for delivered == nil && s1.next < 3*s1.params.NumSegments() {
		delivered, err = recv.HandleFrame(v1Frame(t, s1, cfg, 1, 16))
		if err != nil {
			t.Fatal(err)
		}
	}
	if delivered == nil || delivered.FlowID != 1 {
		t.Fatal("shed flow could not be re-admitted and decoded")
	}
}

// TestPerFlowTrackedCap checks the per-flow message cap evicts within the
// flow without touching other flows.
func TestPerFlowTrackedCap(t *testing.T) {
	far, near, err := NewPipePair(0, 85)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	_ = far
	cfg := Config{K: 4, MaxTrackedPerFlow: 2}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Flow 9 keeps a message in flight; flow 7 churns through many.
	other := newTestStream(t, cfg, 50, []byte("bystander message"))
	if _, err := recv.HandleFrame(v1Frame(t, other, cfg, 9, 1)); err != nil {
		t.Fatal(err)
	}
	for id := uint32(1); id <= 4; id++ {
		s := newTestStream(t, cfg, id, []byte(fmt.Sprintf("churn %d", id)))
		if _, err := recv.HandleFrame(v1Frame(t, s, cfg, 7, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if recv.FlowSymbolsReceived(9, 50) == 0 {
		t.Fatal("per-flow cap evicted a message of a different flow")
	}
	if recv.FlowSymbolsReceived(7, 1) != 0 || recv.FlowSymbolsReceived(7, 2) != 0 {
		t.Fatal("oldest messages of the capped flow were not evicted")
	}
	if recv.FlowSymbolsReceived(7, 4) == 0 {
		t.Fatal("newest message of the capped flow missing")
	}
	if got := recv.TrackedMessages(); got != 3 {
		t.Fatalf("tracking %d messages, want 3 (2 in flow 7 + 1 in flow 9)", got)
	}
}

// TestGlobalCapEvictionKeepsCurrentFlow is a regression test: when the
// global cap evicts the only other message of the very flow a new message
// is being admitted to, the flow must stay tracked — evicting used to
// orphan it and crash the ingest path on the next bookkeeping touch.
func TestGlobalCapEvictionKeepsCurrentFlow(t *testing.T) {
	far, near, err := NewPipePair(0, 87)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4, MaxTracked: 1}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	s1 := newTestStream(t, cfg, 1, []byte("first message"))
	if _, err := recv.HandleFrame(v1Frame(t, s1, cfg, 6, 1)); err != nil {
		t.Fatal(err)
	}
	// Admitting message 2 on the same flow evicts message 1 (the cap is 1)
	// and must not drop flow 6 itself.
	s2 := newTestStream(t, cfg, 2, []byte("second message"))
	if _, err := recv.HandleFrame(v1Frame(t, s2, cfg, 6, 1)); err != nil {
		t.Fatal(err)
	}
	if recv.TrackedFlows() != 1 || recv.FlowSymbolsReceived(6, 2) == 0 {
		t.Fatalf("flow 6 lost by global-cap eviction: flows=%d", recv.TrackedFlows())
	}
}

// TestInvalidFrameCannotShedFlows is a regression test: a structurally
// parseable but invalid frame (wrong code seed) for an unseen flow must be
// rejected before admission control runs, so it can never shed live flows.
func TestInvalidFrameCannotShedFlows(t *testing.T) {
	far, near, err := NewPipePair(0, 88)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4, MaxFlows: 2}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	for f := uint32(1); f <= 2; f++ {
		s := newTestStream(t, cfg, 1, []byte("legit"))
		if _, err := recv.HandleFrame(v1Frame(t, s, cfg, f, 1)); err != nil {
			t.Fatal(err)
		}
	}
	evil := &DataFrame{Version: FrameV1, FlowID: 99, MsgID: 1, MessageBits: 64,
		K: 4, C: 10, Seed: 12345, Symbols: []complex128{1}}
	buf, err := evil.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.HandleFrame(buf); err == nil {
		t.Fatal("frame with a foreign seed accepted")
	}
	if recv.ShedFlows() != 0 || recv.TrackedFlows() != 2 {
		t.Fatalf("invalid frame disturbed admission state: shed=%d flows=%d",
			recv.ShedFlows(), recv.TrackedFlows())
	}
}

// TestSenderStopsOnNack checks the sender's reaction to a negative ack: it
// stops retransmitting and reports Shed.
func TestSenderStopsOnNack(t *testing.T) {
	a, b, err := NewPipePair(0, 86)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cfg := Config{K: 4, FlowID: 5, AckPoll: 5 * time.Millisecond, MaxPasses: 50}
	sender, err := NewSender(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A fake receiver that NACKs the first data frame it sees.
	go func() {
		buf := make([]byte, maxFrameSize)
		for {
			n, err := b.Receive(buf, time.Second)
			if err != nil {
				return
			}
			parsed, perr := ParseFrame(buf[:n])
			if perr != nil {
				continue
			}
			if data, ok := parsed.(*DataFrame); ok {
				nack := &AckFrame{Version: FrameV1, FlowID: data.FlowID, MsgID: data.MsgID, Decoded: false}
				if b.Send(nack.Marshal()) != nil {
					return
				}
				return
			}
		}
	}()
	report, err := sender.Send(1, []byte("to be shed"))
	if err != nil {
		t.Fatal(err)
	}
	if report.Acked {
		t.Fatal("NACKed transmission reported as acknowledged")
	}
	if !report.Shed {
		t.Fatal("sender did not report the flow as shed")
	}
	if report.FramesSent >= 50 {
		t.Fatalf("sender kept transmitting after the NACK (%d frames)", report.FramesSent)
	}
}
