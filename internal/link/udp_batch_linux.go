//go:build linux && (amd64 || arm64)

package link

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"syscall"
	"time"
	"unsafe"
)

// This file is the Linux fast path of the batched UDP transport: a whole
// batch of datagrams moves through one recvmmsg(2)/sendmmsg(2) syscall
// instead of one syscall per frame. It is written against the stdlib syscall
// package (the module has no external dependencies), which defines the
// syscall numbers but not wrappers, so the mmsghdr layout is declared here.
// The build is constrained to the 64-bit little-endian targets the numbers
// and struct layout were checked against; everything else takes the portable
// loop in udp_batch_portable.go.

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the byte count
// the kernel writes back per message.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte // kernel struct stride is 8-byte aligned
}

// sendChunk bounds the frames handed to one sendmmsg call.
const sendChunk = 64

// udpBatch is the scatter-gather state of the fast path, reused across calls
// so the steady state performs no allocation. Receive and send sides have
// independent locks: a blocked batched receive must never stall outgoing
// acks or data.
type udpBatch struct {
	rawOnce sync.Once
	raw     syscall.RawConn
	rawErr  error

	rmu    sync.Mutex
	rmsgs  []mmsghdr
	riov   []syscall.Iovec
	rnames []byte // one syscall.SizeofSockaddrAny slot per message
	acache map[string]*net.UDPAddr

	smu   sync.Mutex
	smsgs []mmsghdr
	siov  []syscall.Iovec
	sname []byte // encoded sockaddr of speer
	snlen uint32
	speer net.Addr
}

// rawConn returns the socket's RawConn, resolved once.
func (u *UDP) rawConn() (syscall.RawConn, error) {
	b := &u.batch
	b.rawOnce.Do(func() {
		sc, ok := u.conn.(syscall.Conn)
		if !ok {
			b.rawErr = fmt.Errorf("link: %T does not expose a raw connection", u.conn)
			return
		}
		b.raw, b.rawErr = sc.SyscallConn()
	})
	return b.raw, b.rawErr
}

func (b *udpBatch) growRecv(n int) {
	if len(b.rmsgs) >= n {
		return
	}
	b.rmsgs = make([]mmsghdr, n)
	b.riov = make([]syscall.Iovec, n)
	b.rnames = make([]byte, n*syscall.SizeofSockaddrAny)
}

// ReceiveBatchFrom implements BatchPacketTransport over one recvmmsg call.
// With a positive timeout the wait for the first frame is bounded by the
// socket read deadline; a zero timeout is a true non-blocking poll
// (MSG_DONTWAIT). Either way, once any frame is ready the kernel fills as
// many of bufs as it can without further waiting.
func (u *UDP) ReceiveBatchFrom(bufs [][]byte, addrs []net.Addr, timeout time.Duration) (int, error) {
	if len(bufs) == 0 {
		return 0, nil
	}
	raw, err := u.rawConn()
	if err != nil {
		return 0, err
	}
	b := &u.batch
	b.rmu.Lock()
	defer b.rmu.Unlock()
	b.growRecv(len(bufs))
	for i := range bufs {
		full := bufs[i][:cap(bufs[i])]
		if len(full) == 0 {
			return 0, fmt.Errorf("link: ReceiveBatch buffer %d has zero capacity", i)
		}
		bufs[i] = full
		b.riov[i] = syscall.Iovec{Base: &full[0], Len: uint64(len(full))}
		b.rmsgs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    &b.rnames[i*syscall.SizeofSockaddrAny],
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     &b.riov[i],
			Iovlen:  1,
		}}
	}
	if timeout > 0 {
		if err := u.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return 0, err
		}
	} else {
		// Clear any stale deadline: an expired one would fail the raw read
		// before the closure ever polls the socket.
		if err := u.conn.SetReadDeadline(time.Time{}); err != nil {
			return 0, err
		}
	}
	got := 0
	var opErr error
	rerr := raw.Read(func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&b.rmsgs[0])), uintptr(len(bufs)),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				got = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				if timeout <= 0 {
					opErr = ErrTimeout
					return true
				}
				return false // park until readable or the deadline fires
			default:
				opErr = errno
				return true
			}
		}
	})
	if rerr != nil {
		var ne net.Error
		if errors.As(rerr, &ne) && ne.Timeout() {
			return 0, ErrTimeout
		}
		return 0, rerr
	}
	if opErr != nil {
		if opErr == ErrTimeout {
			return 0, ErrTimeout
		}
		return 0, fmt.Errorf("link: recvmmsg: %w", opErr)
	}
	for i := 0; i < got; i++ {
		n := int(b.rmsgs[i].n)
		if n > len(bufs[i]) {
			n = len(bufs[i])
		}
		bufs[i] = bufs[i][:n]
	}
	if addrs != nil || u.peerUnknown() {
		for i := 0; i < got; i++ {
			slot := b.rnames[i*syscall.SizeofSockaddrAny:]
			a := b.addrFor(slot[:b.rmsgs[i].hdr.Namelen])
			if addrs != nil {
				addrs[i] = a
			}
			if i == 0 {
				u.learnPeer(a)
			}
		}
	}
	return got, nil
}

func (u *UDP) peerUnknown() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.peer == nil
}

func (u *UDP) learnPeer(a net.Addr) {
	if a == nil {
		return
	}
	u.mu.Lock()
	if u.peer == nil {
		u.peer = a
	}
	u.mu.Unlock()
}

// addrFor interns the raw sockaddr as a *net.UDPAddr. The string-keyed map
// lookup on the hit path does not allocate, so a stable set of peers costs
// nothing per frame; the cache is reset if an address flood grows it.
func (b *udpBatch) addrFor(raw []byte) *net.UDPAddr {
	if a, ok := b.acache[string(raw)]; ok {
		return a
	}
	a := sockaddrToUDP(raw)
	if a == nil {
		return nil
	}
	if b.acache == nil || len(b.acache) > 4096 {
		b.acache = make(map[string]*net.UDPAddr)
	}
	b.acache[string(raw)] = a
	return a
}

// sockaddrToUDP decodes a raw kernel sockaddr (little-endian hosts only,
// per the build constraint).
func sockaddrToUDP(raw []byte) *net.UDPAddr {
	if len(raw) < 2 {
		return nil
	}
	switch uint16(raw[0]) | uint16(raw[1])<<8 {
	case syscall.AF_INET:
		if len(raw) < syscall.SizeofSockaddrInet4 {
			return nil
		}
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&raw[0]))
		ip := make(net.IP, 4)
		copy(ip, sa.Addr[:])
		return &net.UDPAddr{IP: ip, Port: ntohs(sa.Port)}
	case syscall.AF_INET6:
		if len(raw) < syscall.SizeofSockaddrInet6 {
			return nil
		}
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&raw[0]))
		ip := make(net.IP, 16)
		copy(ip, sa.Addr[:])
		a := &net.UDPAddr{IP: ip, Port: ntohs(sa.Port)}
		if sa.Scope_id != 0 {
			if ifi, err := net.InterfaceByIndex(int(sa.Scope_id)); err == nil {
				a.Zone = ifi.Name
			} else {
				a.Zone = strconv.Itoa(int(sa.Scope_id))
			}
		}
		return a
	}
	return nil
}

// ntohs decodes a network-byte-order port field.
func ntohs(p uint16) int {
	b := (*[2]byte)(unsafe.Pointer(&p))
	return int(b[0])<<8 | int(b[1])
}

// htons encodes a port into a network-byte-order field.
func htons(dst *uint16, port int) {
	p := (*[2]byte)(unsafe.Pointer(dst))
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

// SendBatch implements BatchTransport: the frames go to the current peer in
// sendmmsg bursts of up to sendChunk.
func (u *UDP) SendBatch(frames [][]byte) (int, error) {
	if len(frames) == 0 {
		return 0, nil
	}
	u.mu.Lock()
	peer := u.peer
	u.mu.Unlock()
	if peer == nil {
		return 0, fmt.Errorf("link: peer address not yet known")
	}
	return u.sendBatchTo(frames, peer)
}

func (u *UDP) sendBatchTo(frames [][]byte, to net.Addr) (int, error) {
	raw, err := u.rawConn()
	if err != nil {
		return 0, err
	}
	b := &u.batch
	b.smu.Lock()
	defer b.smu.Unlock()
	if err := b.encodePeer(to); err != nil {
		return 0, err
	}
	if len(b.smsgs) < sendChunk {
		b.smsgs = make([]mmsghdr, sendChunk)
		b.siov = make([]syscall.Iovec, sendChunk)
	}
	sent := 0
	for sent < len(frames) {
		cnt := len(frames) - sent
		if cnt > sendChunk {
			cnt = sendChunk
		}
		for i := 0; i < cnt; i++ {
			f := frames[sent+i]
			if len(f) > maxFrameSize {
				return sent, fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(f), maxFrameSize)
			}
			b.siov[i] = syscall.Iovec{}
			if len(f) > 0 {
				b.siov[i] = syscall.Iovec{Base: &f[0], Len: uint64(len(f))}
			}
			b.smsgs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    &b.sname[0],
				Namelen: b.snlen,
				Iov:     &b.siov[i],
				Iovlen:  1,
			}}
		}
		done := 0
		var opErr error
		werr := raw.Write(func(fd uintptr) bool {
			for {
				r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&b.smsgs[0])), uintptr(cnt),
					syscall.MSG_DONTWAIT, 0, 0)
				switch errno {
				case 0:
					done = int(r1)
					return true
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false // park until the socket is writable
				default:
					opErr = errno
					return true
				}
			}
		})
		if werr != nil {
			return sent, werr
		}
		if opErr != nil {
			return sent, fmt.Errorf("link: sendmmsg: %w", opErr)
		}
		if done == 0 {
			return sent, fmt.Errorf("link: sendmmsg made no progress")
		}
		sent += done
	}
	return sent, nil
}

// encodePeer caches the raw sockaddr of the destination; steady-state sends
// to an unchanged peer skip the conversion entirely.
func (b *udpBatch) encodePeer(to net.Addr) error {
	if b.speer == to && b.snlen != 0 {
		return nil
	}
	ua, ok := to.(*net.UDPAddr)
	if !ok {
		var err error
		ua, err = net.ResolveUDPAddr("udp", to.String())
		if err != nil {
			return fmt.Errorf("link: resolve peer %v: %w", to, err)
		}
	}
	if b.sname == nil {
		// Heap-allocated so the backing array is 8-byte aligned for the
		// raw-sockaddr views below.
		b.sname = make([]byte, syscall.SizeofSockaddrAny)
	}
	clear(b.sname)
	if ip4 := ua.IP.To4(); ip4 != nil {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&b.sname[0]))
		sa.Family = syscall.AF_INET
		htons(&sa.Port, ua.Port)
		copy(sa.Addr[:], ip4)
		b.snlen = syscall.SizeofSockaddrInet4
	} else if ip16 := ua.IP.To16(); ip16 != nil {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&b.sname[0]))
		sa.Family = syscall.AF_INET6
		htons(&sa.Port, ua.Port)
		copy(sa.Addr[:], ip16)
		sa.Scope_id = zoneIndex(ua.Zone)
		b.snlen = syscall.SizeofSockaddrInet6
	} else {
		return fmt.Errorf("link: peer %v has no usable IP address", to)
	}
	b.speer = to
	return nil
}

// zoneIndex resolves an IPv6 zone to its interface index.
func zoneIndex(zone string) uint32 {
	if zone == "" {
		return 0
	}
	if ifi, err := net.InterfaceByName(zone); err == nil {
		return uint32(ifi.Index)
	}
	if n, err := strconv.Atoi(zone); err == nil {
		return uint32(n)
	}
	return 0
}
