package link_test

import (
	"bytes"
	"errors"
	"testing"

	"spinal/internal/impair"
	"spinal/internal/link"
	"spinal/internal/rng"
)

// TestStackedFaultsDeliverBitIdentical is the reordering/loss robustness
// property test: frames pushed through a stacked reorder + burst-loss +
// duplication fault schedule must deliver payloads bit-identical to what was
// sent, across several schedule seeds. Loss costs redundancy frames, never
// correctness; duplicates and bounded reorder only change the fold order of
// CRC-gated observations.
func TestStackedFaultsDeliverBitIdentical(t *testing.T) {
	// The stacked profile in the shared config syntax: bounded reorder,
	// duplication, and Gilbert-Elliott bursts that drop every frame while the
	// channel is bad.
	profile, err := impair.ParseFaultProfile("reorder=0.25,depth=6,dup=0.15,ge=0.05:0.4:0:1")
	if err != nil {
		t.Fatal(err)
	}

	cfg := link.Config{K: 4, Seed: 77}
	payloads := make([][]byte, 3)
	src := rng.New(12345)
	for m := range payloads {
		payloads[m] = make([]byte, 16+8*m)
		src.Bytes(payloads[m])
	}
	// Each message's deterministic frame sequence, with ample redundancy so
	// burst loss cannot starve decoding.
	frames := make([][][]byte, len(payloads))
	for m, p := range payloads {
		fs, err := link.EncodeFrames(cfg, 1, uint32(m+1), p, 24, 24, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames[m] = fs
	}

	for seed := uint64(1); seed <= 5; seed++ {
		far, near, err := link.NewPipePair(0, seed)
		if err != nil {
			t.Fatal(err)
		}
		tr := link.NewFaultTransport(far, profile, link.FaultProfile{}, seed^0x5bf03635)
		recv, err := link.NewReceiver(near, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}

		delivered := map[uint32][]byte{}
		buf := make([]byte, link.MaxFrameSize)
		drain := func() {
			for {
				n, err := near.Receive(buf, 0)
				if errors.Is(err, link.ErrTimeout) {
					return
				}
				if err != nil {
					t.Fatalf("seed %d: receive: %v", seed, err)
				}
				d, err := recv.HandleFrame(buf[:n])
				if err != nil {
					t.Fatalf("seed %d: handle frame: %v", seed, err)
				}
				if d == nil {
					continue
				}
				if prev, ok := delivered[d.MsgID]; ok && !bytes.Equal(prev, d.Payload) {
					t.Fatalf("seed %d: msg %d delivered twice with different payloads", seed, d.MsgID)
				}
				delivered[d.MsgID] = d.Payload
			}
		}

		// Interleave the messages' frames pass by pass, draining as we go so
		// the pipe never fills.
		for pass := 0; pass < 24; pass++ {
			for m := range frames {
				if err := tr.Send(frames[m][pass]); err != nil {
					t.Fatalf("seed %d: send: %v", seed, err)
				}
			}
			drain()
		}
		drain()

		for m, p := range payloads {
			got, ok := delivered[uint32(m+1)]
			if !ok {
				t.Fatalf("seed %d: msg %d never delivered under stacked faults", seed, m+1)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("seed %d: msg %d payload not bit-identical to what was sent", seed, m+1)
			}
		}

		recv.Close()
		near.Close()
		far.Close()
	}
}
