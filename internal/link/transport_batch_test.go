package link

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// mkBatchBufs returns n receive buffers of full frame capacity.
func mkBatchBufs(n int) [][]byte {
	bufs := make([][]byte, n)
	for i := range bufs {
		bufs[i] = make([]byte, MaxFrameSize)
	}
	return bufs
}

func TestPipeBatchRoundTrip(t *testing.T) {
	a, b, err := NewPipePair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	frames := make([][]byte, 17)
	for i := range frames {
		frames[i] = []byte(fmt.Sprintf("frame-%02d-payload", i))
	}
	if n, err := a.SendBatch(frames); err != nil || n != len(frames) {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	bufs := mkBatchBufs(len(frames) + 3)
	got, err := b.ReceiveBatch(bufs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != len(frames) {
		t.Fatalf("received %d frames, want %d", got, len(frames))
	}
	for i := 0; i < got; i++ {
		if string(bufs[i]) != string(frames[i]) {
			t.Fatalf("frame %d = %q, want %q", i, bufs[i], frames[i])
		}
	}
}

func TestUDPBatchRoundTrip(t *testing.T) {
	recv, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewUDP("127.0.0.1:0", recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	frames := make([][]byte, 9)
	for i := range frames {
		frames[i] = []byte(fmt.Sprintf("udp-batch-%02d", i))
	}
	if n, err := send.SendBatch(frames); err != nil || n != len(frames) {
		t.Fatalf("SendBatch = %d, %v", n, err)
	}
	bufs := mkBatchBufs(len(frames))
	addrs := make([]net.Addr, len(frames))
	total := 0
	deadline := time.Now().Add(2 * time.Second)
	seen := map[string]bool{}
	for total < len(frames) && time.Now().Before(deadline) {
		got, err := recv.ReceiveBatchFrom(bufs[total:], addrs[total:], 200*time.Millisecond)
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				continue
			}
			t.Fatal(err)
		}
		total += got
	}
	if total != len(frames) {
		t.Fatalf("received %d frames, want %d", total, len(frames))
	}
	for i := 0; i < total; i++ {
		seen[string(bufs[i])] = true
		if addrs[i] == nil {
			t.Fatalf("frame %d arrived without a source address", i)
		}
		if addrs[i].String() != send.LocalAddr().String() {
			t.Fatalf("frame %d source %v, want %v", i, addrs[i], send.LocalAddr())
		}
	}
	for _, f := range frames {
		if !seen[string(f)] {
			t.Fatalf("frame %q never arrived", f)
		}
	}

	// The receiver learned the sender as its peer: acks flow back batched.
	if n, err := recv.SendBatch([][]byte{[]byte("ack-1"), []byte("ack-2")}); err != nil || n != 2 {
		t.Fatalf("ack SendBatch = %d, %v", n, err)
	}
	ackBufs := mkBatchBufs(2)
	got := 0
	deadline = time.Now().Add(2 * time.Second)
	for got < 2 && time.Now().Before(deadline) {
		n, err := send.ReceiveBatch(ackBufs[got:], 200*time.Millisecond)
		if err != nil && !errors.Is(err, ErrTimeout) {
			t.Fatal(err)
		}
		got += n
	}
	if got != 2 {
		t.Fatalf("sender received %d acks, want 2", got)
	}
}

// TestZeroTimeoutPollPipe pins the documented poll semantics on the pipe: a
// zero timeout returns a queued frame immediately and ErrTimeout otherwise,
// without blocking.
func TestZeroTimeoutPollPipe(t *testing.T) {
	a, b, err := NewPipePair(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	buf := make([]byte, MaxFrameSize)
	start := time.Now()
	if _, err := b.Receive(buf, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("poll on empty queue: err = %v, want ErrTimeout", err)
	}
	if n, err := b.ReceiveBatch(mkBatchBufs(4), 0); !errors.Is(err, ErrTimeout) || n != 0 {
		t.Fatalf("batch poll on empty queue: n=%d err=%v, want 0, ErrTimeout", n, err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("zero-timeout poll blocked for %v", d)
	}
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	n, err := b.Receive(buf, 0)
	if err != nil || string(buf[:n]) != "queued" {
		t.Fatalf("poll with queued frame: %q, %v", buf[:n], err)
	}
}

// TestZeroTimeoutPollUDP pins the poll semantics on UDP: queued datagrams
// return, an empty socket reports ErrTimeout, and neither waits long (the
// portable path is allowed its documented ≤1ms kernel wait).
func TestZeroTimeoutPollUDP(t *testing.T) {
	recv, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := NewUDP("127.0.0.1:0", recv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	buf := make([]byte, MaxFrameSize)
	start := time.Now()
	if _, err := recv.Receive(buf, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("poll on empty socket: err = %v, want ErrTimeout", err)
	}
	if n, err := recv.ReceiveBatch(mkBatchBufs(4), 0); !errors.Is(err, ErrTimeout) || n != 0 {
		t.Fatalf("batch poll on empty socket: n=%d err=%v, want 0, ErrTimeout", n, err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("zero-timeout poll blocked for %v", d)
	}

	if err := send.Send([]byte("poll-me")); err != nil {
		t.Fatal(err)
	}
	// Give the kernel a beat to deliver, then poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, err := recv.Receive(buf, 0)
		if err == nil {
			if string(buf[:n]) != "poll-me" {
				t.Fatalf("polled frame = %q", buf[:n])
			}
			break
		}
		if !errors.Is(err, ErrTimeout) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queued datagram never surfaced via zero-timeout poll")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchTimeoutAppliesToFirstFrameOnly: a partial batch returns what is
// queued instead of waiting out the timeout for the rest.
func TestBatchTimeoutAppliesToFirstFrameOnly(t *testing.T) {
	a, b, err := NewPipePair(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	got, err := b.ReceiveBatch(mkBatchBufs(16), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("got %d frames, want 3", got)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("partial batch waited %v for absent frames", d)
	}
}

// TestErrTimeoutErrorsIs guards the contract that every receive path's
// timeout satisfies errors.Is(err, ErrTimeout).
func TestErrTimeoutErrorsIs(t *testing.T) {
	a, _, err := NewPipePair(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	udp, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()

	buf := make([]byte, MaxFrameSize)
	checks := []struct {
		name string
		err  error
	}{
		{"pipe.Receive", func() error { _, err := a.Receive(buf, time.Millisecond); return err }()},
		{"pipe.ReceiveBatch", func() error { _, err := a.ReceiveBatch(mkBatchBufs(2), time.Millisecond); return err }()},
		{"udp.Receive", func() error { _, err := udp.Receive(buf, time.Millisecond); return err }()},
		{"udp.ReceiveFrom", func() error { _, _, err := udp.ReceiveFrom(buf, time.Millisecond); return err }()},
		{"udp.ReceiveBatch", func() error { _, err := udp.ReceiveBatch(mkBatchBufs(2), time.Millisecond); return err }()},
	}
	for _, c := range checks {
		if !errors.Is(c.err, ErrTimeout) {
			t.Errorf("%s: err = %v, not errors.Is ErrTimeout", c.name, c.err)
		}
	}
}

// TestReactorShardedIngest drives frames from several senders through a
// two-shard reactor and checks every frame surfaces exactly once with its
// source address, acks flow back, and Close detects no buffer leak.
func TestReactorShardedIngest(t *testing.T) {
	r, err := NewReactor(ReactorConfig{Addr: "127.0.0.1:0", Shards: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const senders = 3
	const perSender = 20
	socks := make([]*UDP, senders)
	for i := range socks {
		s, err := NewUDP("127.0.0.1:0", r.LocalAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		socks[i] = s
		for j := 0; j < perSender; j++ {
			if err := s.Send([]byte(fmt.Sprintf("s%d-f%02d", i, j))); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen := map[string]string{}
	bufs := mkBatchBufs(16)
	addrs := make([]net.Addr, 16)
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < senders*perSender && time.Now().Before(deadline) {
		got, err := r.ReceiveBatchFrom(bufs, addrs, 100*time.Millisecond)
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				continue
			}
			t.Fatal(err)
		}
		for i := 0; i < got; i++ {
			if addrs[i] == nil {
				t.Fatal("reactor frame without source address")
			}
			if prev, dup := seen[string(bufs[i])]; dup {
				t.Fatalf("frame %q seen twice (from %s and %s)", bufs[i], prev, addrs[i])
			}
			seen[string(bufs[i])] = addrs[i].String()
			// Ack straight back to the specific sender.
			if err := r.SendTo([]byte("ok:"+string(bufs[i])), addrs[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seen) != senders*perSender {
		t.Fatalf("reactor surfaced %d frames, want %d", len(seen), senders*perSender)
	}
	for i, s := range socks {
		wantFrom := s.LocalAddr().String()
		for key, from := range seen {
			if key[:2] == fmt.Sprintf("s%d", i) && from != wantFrom {
				t.Fatalf("frame %q attributed to %s, want %s", key, from, wantFrom)
			}
		}
		// Each sender got at least one ack back.
		buf := make([]byte, MaxFrameSize)
		n, err := s.Receive(buf, 2*time.Second)
		if err != nil {
			t.Fatalf("sender %d never saw an ack: %v", i, err)
		}
		if string(buf[:3]) != "ok:" {
			t.Fatalf("sender %d ack = %q", i, buf[:n])
		}
	}
	st := r.Stats()
	if st.Frames != uint64(senders*perSender) {
		t.Fatalf("reactor stats counted %d frames, want %d (dropped %d)", st.Frames, senders*perSender, st.Dropped)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("reactor close (arena leak?): %v", err)
	}
}
