package link

import (
	"fmt"
	"sync"
)

// Arena is a pool of fixed-capacity frame buffers with explicit lease and
// release accounting — the allocator of the GC-free wire path. Every buffer
// a hot path touches (ingest datagrams, marshalled data frames, acks) is
// leased from an arena and released when the bytes have been consumed, so
// the steady state recycles a bounded working set instead of creating
// garbage per frame.
//
// Accounting is strict on purpose: releasing a buffer twice panics (it is
// the use-after-free of pooled memory, always a bug), and Close reports an
// error when leases are still outstanding (a leak: some path dropped a
// buffer without releasing it). Stats expose the counters so soak tests can
// assert the ledger balances.
//
// An arena never blocks: leasing beyond the free list allocates a fresh
// buffer (counted as a miss), and releasing beyond MaxFree lets the buffer
// go to the garbage collector (counted as a discard), which bounds the idle
// memory a traffic burst can pin.
type Arena struct {
	mu          sync.Mutex
	bufCap      int
	maxFree     int
	free        []*ArenaBuf
	outstanding int
	closed      bool
	stats       ArenaStats
}

// ArenaBuf is one leased buffer. Data has the arena's full buffer capacity;
// callers slice it as needed (append into Data[:0], or fill Data[:n]) and
// may even swap Data for another slice of at least the same capacity — the
// storage, not the slice header, is what the arena recycles.
type ArenaBuf struct {
	Data     []byte
	arena    *Arena
	released bool
}

// ArenaStats is the arena's lease/release ledger.
type ArenaStats struct {
	// Leases counts every Lease call; Misses counts the subset that had to
	// allocate because the free list was empty.
	Leases uint64 `json:"leases"`
	Misses uint64 `json:"misses"`
	// Releases counts every Release; Discards counts the subset dropped to
	// the garbage collector because the free list was full (or the buffer
	// came back undersized after a swap).
	Releases uint64 `json:"releases"`
	Discards uint64 `json:"discards"`
	// Outstanding is the current number of leased-but-unreleased buffers.
	Outstanding int `json:"outstanding"`
	// Free is the current free-list depth.
	Free int `json:"free"`
}

// DefaultArenaFree is the default bound on an arena's idle free list.
const DefaultArenaFree = 256

// NewArena returns an arena of bufCap-byte buffers (0 selects the transport
// frame-size limit) keeping at most maxFree idle buffers (0 selects
// DefaultArenaFree; negative keeps none, making the arena a pure ledger).
func NewArena(bufCap, maxFree int) *Arena {
	if bufCap <= 0 {
		bufCap = maxFrameSize
	}
	switch {
	case maxFree == 0:
		maxFree = DefaultArenaFree
	case maxFree < 0:
		maxFree = 0
	}
	return &Arena{bufCap: bufCap, maxFree: maxFree}
}

// BufCap returns the capacity of the arena's buffers.
func (a *Arena) BufCap() int { return a.bufCap }

// Lease returns a buffer with len(Data) == cap(Data) == BufCap. It panics on
// a closed arena — leasing after Close is a lifecycle bug, not a recoverable
// condition.
func (a *Arena) Lease() *ArenaBuf {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		panic("link: Lease on a closed arena")
	}
	a.stats.Leases++
	a.outstanding++
	if n := len(a.free); n > 0 {
		b := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		a.mu.Unlock()
		b.released = false
		b.Data = b.Data[:cap(b.Data)]
		return b
	}
	a.stats.Misses++
	a.mu.Unlock()
	return &ArenaBuf{Data: make([]byte, a.bufCap), arena: a}
}

// Release returns the buffer to its arena. Releasing twice panics. A nil
// receiver is a no-op so conditional reclaim code can release
// unconditionally.
func (b *ArenaBuf) Release() {
	if b == nil {
		return
	}
	a := b.arena
	a.mu.Lock()
	if b.released {
		a.mu.Unlock()
		panic("link: ArenaBuf released twice")
	}
	b.released = true
	a.outstanding--
	a.stats.Releases++
	// A swapped-in replacement slice must still hold a full frame; anything
	// smaller is discarded so a later lease cannot hand out a short buffer.
	if len(a.free) < a.maxFree && cap(b.Data) >= a.bufCap && !a.closed {
		b.Data = b.Data[:cap(b.Data)]
		a.free = append(a.free, b)
	} else {
		a.stats.Discards++
	}
	a.mu.Unlock()
}

// Stats returns a snapshot of the arena's ledger.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Outstanding = a.outstanding
	s.Free = len(a.free)
	return s
}

// Outstanding reports how many leased buffers have not been released.
func (a *Arena) Outstanding() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.outstanding
}

// Close drops the free list and reports an error when leases are still
// outstanding — the leak detector of the wire path. Closing twice is
// harmless; buffers released after Close are discarded.
func (a *Arena) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.closed = true
	a.free = nil
	if a.outstanding != 0 {
		return fmt.Errorf("link: arena closed with %d leased buffers outstanding", a.outstanding)
	}
	return nil
}
