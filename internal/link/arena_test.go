package link

import (
	"sync"
	"testing"
)

func TestArenaLeaseReleaseRecycles(t *testing.T) {
	a := NewArena(128, 4)
	b := a.Lease()
	if len(b.Data) != 128 || cap(b.Data) != 128 {
		t.Fatalf("leased buffer has len %d cap %d, want 128/128", len(b.Data), cap(b.Data))
	}
	b.Data = b.Data[:5] // callers may shorten freely
	b.Release()
	b2 := a.Lease()
	if len(b2.Data) != 128 {
		t.Fatalf("recycled buffer came back short: len %d", len(b2.Data))
	}
	b2.Release()
	s := a.Stats()
	if s.Leases != 2 || s.Misses != 1 || s.Releases != 2 || s.Discards != 0 {
		t.Fatalf("ledger off: %+v", s)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	a := NewArena(64, 2)
	b := a.Lease()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	b.Release()
}

func TestArenaLeakDetectedAtClose(t *testing.T) {
	a := NewArena(64, 2)
	leaked := a.Lease()
	if err := a.Close(); err == nil {
		t.Fatal("close with an outstanding lease reported no error")
	}
	// A release after close balances the ledger (and is discarded).
	leaked.Release()
	if got := a.Outstanding(); got != 0 {
		t.Fatalf("outstanding after late release: %d", got)
	}
}

func TestArenaLeaseAfterClosePanics(t *testing.T) {
	a := NewArena(64, 2)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lease on a closed arena did not panic")
		}
	}()
	a.Lease()
}

func TestArenaFreeListBounded(t *testing.T) {
	a := NewArena(64, 2)
	bufs := []*ArenaBuf{a.Lease(), a.Lease(), a.Lease(), a.Lease()}
	for _, b := range bufs {
		b.Release()
	}
	s := a.Stats()
	if s.Free != 2 {
		t.Fatalf("free list holds %d buffers, want the bound 2", s.Free)
	}
	if s.Discards != 2 {
		t.Fatalf("discards %d, want 2", s.Discards)
	}
}

// TestArenaSwappedStorage pins the swap contract the reactor relies on: a
// lease whose Data was exchanged for another full-capacity slice recycles
// the replacement storage, while an undersized replacement is discarded
// rather than handed to the next lease.
func TestArenaSwappedStorage(t *testing.T) {
	a := NewArena(64, 4)
	b := a.Lease()
	b.Data = make([]byte, 64)
	b.Release()
	b2 := a.Lease()
	if len(b2.Data) != 64 {
		t.Fatalf("swapped-in storage came back short: %d", len(b2.Data))
	}
	b2.Data = make([]byte, 8) // undersized swap
	b2.Release()
	if s := a.Stats(); s.Discards != 1 {
		t.Fatalf("undersized swap not discarded: %+v", s)
	}
	b3 := a.Lease()
	if len(b3.Data) != 64 {
		t.Fatalf("lease after undersized swap has len %d", len(b3.Data))
	}
	b3.Release()
}

// TestArenaConcurrent hammers lease/release from many goroutines; run under
// -race this pins the arena's internal synchronization, and the final ledger
// must balance exactly.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(256, 16)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			held := make([]*ArenaBuf, 0, 4)
			for i := 0; i < perWorker; i++ {
				b := a.Lease()
				b.Data[0] = byte(id) // touch the storage
				held = append(held, b)
				if len(held) == cap(held) || i%3 == 0 {
					for _, h := range held {
						h.Release()
					}
					held = held[:0]
				}
			}
			for _, h := range held {
				h.Release()
			}
		}(w)
	}
	wg.Wait()
	s := a.Stats()
	if s.Leases != workers*perWorker || s.Releases != s.Leases {
		t.Fatalf("ledger off after concurrent churn: %+v", s)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("leak after concurrent churn: %v", err)
	}
}
