package link

import (
	"errors"
	"net"
	"sync"
	"time"

	"spinal/internal/rng"
)

// ErrInjected is the transient transport error produced by a FaultProfile's
// ErrProb schedule. It models the recoverable hiccups a real NIC or kernel
// produces under pressure (ENOBUFS, EINTR): the operation failed but the
// transport is still usable, so hardened callers retry instead of giving up.
var ErrInjected = errors.New("link: injected transport fault")

// FaultProfile is one direction's deterministic fault schedule. Every fault
// is driven by a seeded PRNG (plus a frame counter for the stall windows), so
// two runs over the same profile and seed replay byte-identical schedules —
// chaos that reproduces. All probabilities are per frame and compose: a frame
// first passes the stall window, then burst loss (Gilbert-Elliott), then
// independent loss, then corruption, duplication and reordering.
type FaultProfile struct {
	// DropProb is independent per-frame loss.
	DropProb float64 `json:"drop,omitempty"`
	// DupProb delivers the frame twice.
	DupProb float64 `json:"dup,omitempty"`
	// ReorderProb holds the frame back so that later frames overtake it; the
	// held frame is released after at most ReorderDepth subsequent frames
	// (bounded reorder). Zero depth selects 4.
	ReorderProb  float64 `json:"reorder,omitempty"`
	ReorderDepth int     `json:"depth,omitempty"`
	// CorruptProb flips CorruptBits random bits somewhere in the frame (the
	// copy handed on, never the caller's buffer). Zero bits selects 8.
	CorruptProb float64 `json:"corrupt,omitempty"`
	CorruptBits int     `json:"bits,omitempty"`
	// GE overlays two-state Gilbert-Elliott burst loss on top of DropProb.
	GE *GilbertElliott `json:"ge,omitempty"`
	// StallEvery/StallFrames carve deterministic partition windows out of the
	// schedule: of every StallEvery frames, the first StallFrames are dropped
	// (the link is "down"), starting with the second period so a link never
	// opens stalled. Zero disables stalls.
	StallEvery  int `json:"stall_every,omitempty"`
	StallFrames int `json:"stall_frames,omitempty"`
	// ErrProb makes the transport operation itself fail with ErrInjected
	// before touching the frame — a transient I/O error, not a loss.
	ErrProb float64 `json:"err,omitempty"`
}

// enabled reports whether the profile injects anything at all.
func (p FaultProfile) enabled() bool {
	return p.DropProb > 0 || p.DupProb > 0 || p.ReorderProb > 0 || p.CorruptProb > 0 ||
		p.GE != nil || (p.StallEvery > 0 && p.StallFrames > 0) || p.ErrProb > 0
}

// GilbertElliott is the classic two-state burst-loss model: the channel
// wanders between a good and a bad state with the given per-frame transition
// probabilities, and drops frames with a state-dependent probability — long
// loss bursts with loss-free stretches in between, which i.i.d. loss cannot
// produce.
type GilbertElliott struct {
	GoodToBad float64 `json:"good2bad"`
	BadToGood float64 `json:"bad2good"`
	GoodLoss  float64 `json:"goodloss"`
	BadLoss   float64 `json:"badloss"`
}

// faultLane applies one direction's schedule. All its state is guarded by
// the owning transport's mutex, so concurrent senders observe one consistent
// schedule.
type faultLane struct {
	p   FaultProfile
	src *rng.Rand
	n   uint64 // frames offered to this lane (drives the stall windows)
	bad bool   // Gilbert-Elliott state
	// held are reorder-delayed frames with their remaining overtake budget.
	held []heldFrame
	// stats is the lane's fault ledger.
	stats LaneStats
}

type heldFrame struct {
	data []byte
	addr net.Addr
	age  int
}

// LaneStats counts what one lane's schedule did — the observability half of
// deterministic chaos, so tests can assert a schedule actually fired.
type LaneStats struct {
	Frames     uint64 // frames offered to the lane
	Dropped    uint64 // lost to DropProb, GE or a stall window
	Stalled    uint64 // subset of Dropped lost to stall windows
	Corrupted  uint64
	Duplicated uint64
	Reordered  uint64
	Errors     uint64 // operations failed with ErrInjected
}

// process runs one frame through the lane's schedule and returns the frames
// to pass on right now, in order. The input is never aliased: survivors are
// copies, so callers may reuse their buffer immediately. An empty result
// means the frame was dropped or held.
func (l *faultLane) process(frame []byte, addr net.Addr) []heldFrame {
	l.n++
	l.stats.Frames++
	var out []heldFrame

	// Age the reorder holds first: frames the current one is overtaking.
	// A hold whose budget is exhausted is released ahead of the new frame,
	// bounding how far any frame can slip.
	if len(l.held) > 0 {
		kept := l.held[:0]
		for _, h := range l.held {
			h.age--
			if h.age <= 0 {
				out = append(out, h)
			} else {
				kept = append(kept, h)
			}
		}
		l.held = kept
	}

	dropped := false
	if p := l.p; p.StallEvery > 0 && p.StallFrames > 0 {
		idx := l.n - 1 // 0-based frame index in this lane
		if idx >= uint64(p.StallEvery) && idx%uint64(p.StallEvery) < uint64(p.StallFrames) {
			l.stats.Stalled++
			dropped = true
		}
	}
	if !dropped && l.p.GE != nil {
		ge := l.p.GE
		if l.bad {
			if l.src.Bernoulli(ge.BadToGood) {
				l.bad = false
			}
		} else if l.src.Bernoulli(ge.GoodToBad) {
			l.bad = true
		}
		loss := ge.GoodLoss
		if l.bad {
			loss = ge.BadLoss
		}
		dropped = l.src.Bernoulli(loss)
	}
	if !dropped && l.p.DropProb > 0 {
		dropped = l.src.Bernoulli(l.p.DropProb)
	}
	if dropped {
		l.stats.Dropped++
		return out
	}

	cp := append(make([]byte, 0, len(frame)), frame...)
	if l.p.CorruptProb > 0 && len(cp) > 0 && l.src.Bernoulli(l.p.CorruptProb) {
		bits := l.p.CorruptBits
		if bits <= 0 {
			bits = 8
		}
		for i := 0; i < bits; i++ {
			b := l.src.Intn(len(cp) * 8)
			cp[b/8] ^= 1 << (b % 8)
		}
		l.stats.Corrupted++
	}
	cur := heldFrame{data: cp, addr: addr}
	if l.p.DupProb > 0 && l.src.Bernoulli(l.p.DupProb) {
		dup := append(make([]byte, 0, len(cp)), cp...)
		out = append(out, heldFrame{data: dup, addr: addr})
		l.stats.Duplicated++
	}
	if l.p.ReorderProb > 0 && l.src.Bernoulli(l.p.ReorderProb) {
		depth := l.p.ReorderDepth
		if depth <= 0 {
			depth = 4
		}
		cur.age = depth
		l.held = append(l.held, cur)
		l.stats.Reordered++
		return out
	}
	return append(out, cur)
}

// opError reports whether the next operation on this lane fails outright.
func (l *faultLane) opError() bool {
	if l.p.ErrProb > 0 && l.src.Bernoulli(l.p.ErrProb) {
		l.stats.Errors++
		return true
	}
	return false
}

// FaultTransport wraps any Transport in a deterministic, seeded fault
// schedule: frame drop, duplication, bounded reordering, byte corruption,
// Gilbert-Elliott burst loss, periodic stalls (transient partitions) and
// injected transient I/O errors — the impairments a real link stacks below
// the frame parser, reproducible from a single seed.
//
// Faults are directional. The tx profile applies to frames this endpoint
// sends, the rx profile to frames it receives, so wrapping a sender's
// endpoint with a lossy rx lane only impairs the acks flowing back to it —
// the asymmetric ack-direction faults that expose feedback-path bugs.
//
// Construct wrappers with NewFaultTransport, which preserves the inner
// transport's capability set (PacketTransport, BatchTransport), so a wrapped
// transport drops into any code path the bare one served. All methods are
// safe for concurrent use; the schedule is serialized by one mutex, so frame
// n's fault decision is deterministic given the seed and arrival order.
type FaultTransport struct {
	inner Transport
	mu    sync.Mutex
	tx    faultLane
	rx    faultLane
	// rxq holds receive-side frames owed to the caller: duplicates and
	// released reorder holds surface on subsequent Receive calls.
	rxq []heldFrame
}

// NewFaultTransport wraps inner in the given directional fault schedules,
// deterministic in seed. The returned transport implements exactly the
// optional interfaces (PacketTransport, BatchTransport,
// BatchPacketTransport) that inner implements, so capability type-assertions
// behave as if the faults were not there.
func NewFaultTransport(inner Transport, tx, rx FaultProfile, seed uint64) Transport {
	ft := &FaultTransport{
		inner: inner,
		tx:    faultLane{p: tx, src: rng.New(seed ^ 0x7c15d6a3722f3b21)},
		rx:    faultLane{p: rx, src: rng.New(seed ^ 0x9e3779b97f4a7c15)},
	}
	pt, isPkt := inner.(PacketTransport)
	bt, isBatch := inner.(BatchTransport)
	switch {
	case isPkt && isBatch:
		return &faultBatchPacket{faultPacket{FaultTransport: ft, pt: pt}, bt}
	case isPkt:
		return &faultPacket{FaultTransport: ft, pt: pt}
	case isBatch:
		return &faultBatch{FaultTransport: ft, bt: bt}
	default:
		return ft
	}
}

// TxStats and RxStats snapshot each lane's fault ledger.
func (t *FaultTransport) TxStats() LaneStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tx.stats
}

func (t *FaultTransport) RxStats() LaneStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rx.stats
}

// Send implements Transport: the frame runs the tx schedule and every
// survivor (possibly corrupted, duplicated or an overtaken earlier frame) is
// handed to the inner transport.
func (t *FaultTransport) Send(frame []byte) error {
	return t.sendTo(frame, nil, nil)
}

// sendTo is the shared tx path; a non-nil sendOne overrides how survivors
// are transmitted (the packet wrapper directs them at a peer).
func (t *FaultTransport) sendTo(frame []byte, to net.Addr, sendOne func([]byte, net.Addr) error) error {
	t.mu.Lock()
	if t.tx.opError() {
		t.mu.Unlock()
		return ErrInjected
	}
	out := t.tx.process(frame, to)
	t.mu.Unlock()
	for _, h := range out {
		var err error
		if sendOne != nil {
			err = sendOne(h.data, h.addr)
		} else {
			err = t.inner.Send(h.data)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Receive implements Transport: frames the rx schedule drops are consumed
// and the wait continues against the caller's deadline, exactly as if the
// link had lost them.
func (t *FaultTransport) Receive(buf []byte, timeout time.Duration) (int, error) {
	n, _, err := t.receiveFrom(buf, timeout, func(b []byte, d time.Duration) (int, net.Addr, error) {
		n, err := t.inner.Receive(b, d)
		return n, nil, err
	})
	return n, err
}

// receiveFrom is the shared rx path over any single-frame receive primitive.
func (t *FaultTransport) receiveFrom(buf []byte, timeout time.Duration,
	recv func([]byte, time.Duration) (int, net.Addr, error)) (int, net.Addr, error) {
	deadline := time.Now().Add(timeout)
	for {
		t.mu.Lock()
		if len(t.rxq) > 0 {
			h := t.rxq[0]
			t.rxq = t.rxq[1:]
			t.mu.Unlock()
			return copy(buf, h.data), h.addr, nil
		}
		if t.rx.opError() {
			t.mu.Unlock()
			return 0, nil, ErrInjected
		}
		t.mu.Unlock()

		remaining := time.Until(deadline)
		if timeout <= 0 {
			remaining = 0
		} else if remaining < 0 {
			remaining = 0
		}
		n, from, err := recv(buf, remaining)
		if err != nil {
			return 0, nil, err
		}
		t.mu.Lock()
		out := t.rx.process(buf[:n], from)
		if len(out) == 0 {
			// Dropped or held: keep waiting for a surviving frame. Once the
			// deadline passes, remaining clamps to zero and the inner poll
			// terminates the loop with ErrTimeout when its queue drains.
			t.mu.Unlock()
			continue
		}
		first := out[0]
		t.rxq = append(t.rxq, out[1:]...)
		t.mu.Unlock()
		return copy(buf, first.data), first.addr, nil
	}
}

// Close implements Transport. Frames still held for reordering are dropped
// with the link, as a real queue drops its backlog on teardown.
func (t *FaultTransport) Close() error { return t.inner.Close() }

// faultPacket adds the PacketTransport capability to a wrapped transport.
type faultPacket struct {
	*FaultTransport
	pt PacketTransport
}

func (t *faultPacket) ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error) {
	return t.receiveFrom(buf, timeout, t.pt.ReceiveFrom)
}

func (t *faultPacket) SendTo(frame []byte, to net.Addr) error {
	return t.sendTo(frame, to, func(b []byte, addr net.Addr) error {
		if addr == nil {
			return t.inner.Send(b)
		}
		return t.pt.SendTo(b, addr)
	})
}

// faultBatch adds the BatchTransport capability: batches decompose into the
// per-frame schedule, so batched and unbatched callers see the same faults
// for the same arrival order.
type faultBatch struct {
	*FaultTransport
	bt BatchTransport
}

func (t *faultBatch) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := t.Send(f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

func (t *faultBatch) ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error) {
	return faultReceiveBatch(bufs, timeout, func(buf []byte, d time.Duration) (int, net.Addr, error) {
		n, err := t.Receive(buf, d)
		return n, nil, err
	}, nil)
}

// faultReceiveBatch implements the batch-receive contract (timeout bounds the
// first frame only) over a faulted single-frame receive.
func faultReceiveBatch(bufs [][]byte, timeout time.Duration,
	recv func([]byte, time.Duration) (int, net.Addr, error), addrs []net.Addr) (int, error) {
	got := 0
	for got < len(bufs) {
		to := timeout
		if got > 0 {
			to = 0
		}
		full := bufs[got][:cap(bufs[got])]
		n, from, err := recv(full, to)
		if err != nil {
			if got > 0 && (errors.Is(err, ErrTimeout) || errors.Is(err, ErrInjected)) {
				return got, nil
			}
			return got, err
		}
		bufs[got] = full[:n]
		if addrs != nil {
			addrs[got] = from
		}
		got++
	}
	return got, nil
}

// faultBatchPacket is the full capability set (UDP, Reactor, Pipe wrapped
// together with per-peer addressing).
type faultBatchPacket struct {
	faultPacket
	bt BatchTransport
}

func (t *faultBatchPacket) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := t.Send(f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}

func (t *faultBatchPacket) ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error) {
	return faultReceiveBatch(bufs, timeout, func(buf []byte, d time.Duration) (int, net.Addr, error) {
		n, err := t.Receive(buf, d)
		return n, nil, err
	}, nil)
}

func (t *faultBatchPacket) ReceiveBatchFrom(bufs [][]byte, addrs []net.Addr, timeout time.Duration) (int, error) {
	return faultReceiveBatch(bufs, timeout, t.ReceiveFrom, addrs)
}
