//go:build linux && amd64

package link

// sysSendmmsg is sendmmsg(2)'s syscall number on linux/amd64; the stdlib
// syscall table there stops just short of it.
const sysSendmmsg = 307
