package link

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ReactorConfig configures a Reactor.
type ReactorConfig struct {
	// Addr is the UDP address every shard binds (e.g. ":9000"). With more
	// than one shard the sockets share the address via SO_REUSEPORT, so the
	// kernel spreads incoming datagrams across them.
	Addr string
	// Shards is the number of sockets, each drained by its own reader
	// goroutine. Default 1 (no SO_REUSEPORT required).
	Shards int
	// Batch is the number of frames each reader asks for per
	// ReceiveBatchFrom call. Default 32.
	Batch int
	// Queue is the depth of the merged frame queue feeding the consumer.
	// Default Shards*Batch*8.
	Queue int
	// Arena supplies the frame buffers; nil creates a private arena sized
	// to the queue. A caller-supplied arena must have BufCap() of at least
	// MaxFrameSize.
	Arena *Arena
}

// reactorFrame is one received frame in flight between a reader and the
// consumer: the arena lease holding the bytes plus its source address.
type reactorFrame struct {
	buf  *ArenaBuf
	addr net.Addr
}

// ReactorStats counts the reactor's traffic.
type ReactorStats struct {
	// Frames is the number of frames enqueued for the consumer.
	Frames uint64
	// Dropped is the number of frames discarded because the merged queue
	// was full — the userspace analogue of a kernel socket-buffer drop.
	Dropped uint64
	// Arena is the ledger of the reactor's buffer arena.
	Arena ArenaStats
}

// Reactor shards the UDP ingest path: N SO_REUSEPORT sockets × one reader
// goroutine each, every reader pulling recvmmsg batches into arena-leased
// buffers and merging them onto one queue. It implements
// BatchPacketTransport, so a flow-demuxed Receiver consumes it like any
// other transport — but ReceiveBatchFrom hands frames over by *swapping*
// buffer storage with the caller instead of copying, keeping the whole
// socket→decoder path zero-copy.
//
// Sends (acks, mostly) are distributed round-robin across the shard sockets;
// all shards are bound to the same local address, so replies carry the same
// source no matter which socket they leave on.
type Reactor struct {
	cfg   ReactorConfig
	socks []*UDP
	arena *Arena
	own   bool // arena is reactor-owned: Close closes (and leak-checks) it

	q    chan reactorFrame
	done chan struct{}
	wg   sync.WaitGroup

	// popTimer is the reused blocking-pop timer (popMu-guarded); concurrent
	// pops fall back to a throwaway timer rather than wait for it.
	popMu    sync.Mutex
	popTimer *time.Timer

	frames  atomic.Uint64
	dropped atomic.Uint64
	sendIdx atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

// NewReactor binds the shard sockets and starts the reader goroutines.
func NewReactor(cfg ReactorConfig) (*Reactor, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 32
	}
	if cfg.Queue <= 0 {
		cfg.Queue = cfg.Shards * cfg.Batch * 8
	}
	arena := cfg.Arena
	own := false
	if arena == nil {
		arena = NewArena(0, cfg.Queue+cfg.Shards*cfg.Batch+64)
		own = true
	} else if arena.BufCap() < MaxFrameSize {
		return nil, fmt.Errorf("link: reactor arena buffers of %d bytes cannot hold a %d-byte frame", arena.BufCap(), MaxFrameSize)
	}
	r := &Reactor{
		cfg:   cfg,
		arena: arena,
		own:   own,
		q:     make(chan reactorFrame, cfg.Queue),
		done:  make(chan struct{}),
	}
	addr := cfg.Addr
	for i := 0; i < cfg.Shards; i++ {
		var lc net.ListenConfig
		if cfg.Shards > 1 {
			lc.Control = reusePortControl
		}
		pc, err := lc.ListenPacket(context.Background(), "udp", addr)
		if err != nil {
			for _, s := range r.socks {
				s.Close()
			}
			return nil, fmt.Errorf("link: reactor shard %d listen %q: %w", i, addr, err)
		}
		r.socks = append(r.socks, &UDP{conn: pc})
		if i == 0 {
			// Later shards must bind the port the first one resolved
			// (matters when Addr asked for ":0").
			addr = pc.LocalAddr().String()
		}
	}
	for _, s := range r.socks {
		r.wg.Add(1)
		go r.read(s)
	}
	return r, nil
}

// read is one shard's reader loop: recvmmsg batches into leased buffers,
// each frame pushed onto the merged queue still in its lease.
func (r *Reactor) read(s *UDP) {
	defer r.wg.Done()
	batch := r.cfg.Batch
	bufs := make([][]byte, batch)
	addrs := make([]net.Addr, batch)
	leases := make([]*ArenaBuf, batch)
	for i := range bufs {
		leases[i] = r.arena.Lease()
		bufs[i] = leases[i].Data
	}
	defer func() {
		for _, lb := range leases {
			lb.Release()
		}
	}()
	for {
		select {
		case <-r.done:
			return
		default:
		}
		n, err := s.ReceiveBatchFrom(bufs, addrs, 50*time.Millisecond)
		if err != nil {
			if err == ErrTimeout {
				continue
			}
			// Socket closed (or hard error): this shard is done.
			return
		}
		for i := 0; i < n; i++ {
			lb := leases[i]
			lb.Data = bufs[i] // frame-length view; storage may have been swapped
			select {
			case r.q <- reactorFrame{buf: lb, addr: addrs[i]}:
				r.frames.Add(1)
			default:
				r.dropped.Add(1)
				lb.Release()
			}
			leases[i] = r.arena.Lease()
			bufs[i] = leases[i].Data
		}
	}
}

// pop takes one frame off the merged queue, waiting up to timeout (zero
// polls).
func (r *Reactor) pop(timeout time.Duration) (reactorFrame, error) {
	// Fast path: a queued frame returns without arming a timer, so the
	// loaded steady state stays allocation-light.
	select {
	case fr := <-r.q:
		return fr, nil
	default:
	}
	if timeout <= 0 {
		select {
		case fr := <-r.q:
			return fr, nil
		case <-r.done:
			return reactorFrame{}, ErrClosed
		default:
			return reactorFrame{}, ErrTimeout
		}
	}
	var timer <-chan time.Time
	if r.popMu.TryLock() {
		if r.popTimer == nil {
			r.popTimer = time.NewTimer(timeout)
		} else {
			r.popTimer.Reset(timeout)
		}
		timer = r.popTimer.C
		defer func() {
			r.popTimer.Stop()
			r.popMu.Unlock()
		}()
	} else {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case fr := <-r.q:
		return fr, nil
	case <-r.done:
		return reactorFrame{}, ErrClosed
	case <-timer:
		return reactorFrame{}, ErrTimeout
	}
}

// ReceiveBatchFrom implements BatchPacketTransport by swapping storage with
// the caller: bufs[i] is replaced by the arena storage holding frame i, and
// the caller's old storage is folded back into the lease before release —
// recycled when it has frame capacity, discarded otherwise. No bytes are
// copied.
func (r *Reactor) ReceiveBatchFrom(bufs [][]byte, addrs []net.Addr, timeout time.Duration) (int, error) {
	got := 0
	for got < len(bufs) {
		var fr reactorFrame
		var err error
		if got == 0 {
			fr, err = r.pop(timeout)
		} else {
			fr, err = r.pop(0)
		}
		if err != nil {
			if got > 0 && err == ErrTimeout {
				return got, nil
			}
			return got, err
		}
		old := bufs[got]
		bufs[got] = fr.buf.Data
		if addrs != nil {
			addrs[got] = fr.addr
		}
		fr.buf.Data = old[:cap(old)]
		fr.buf.Release()
		got++
	}
	return got, nil
}

// ReceiveBatch implements BatchTransport.
func (r *Reactor) ReceiveBatch(bufs [][]byte, timeout time.Duration) (int, error) {
	return r.ReceiveBatchFrom(bufs, nil, timeout)
}

// ReceiveFrom implements PacketTransport (copying; the batched path is the
// zero-copy one).
func (r *Reactor) ReceiveFrom(buf []byte, timeout time.Duration) (int, net.Addr, error) {
	fr, err := r.pop(timeout)
	if err != nil {
		return 0, nil, err
	}
	n := copy(buf, fr.buf.Data)
	fr.buf.Release()
	return n, fr.addr, nil
}

// Receive implements Transport.
func (r *Reactor) Receive(buf []byte, timeout time.Duration) (int, error) {
	n, _, err := r.ReceiveFrom(buf, timeout)
	return n, err
}

// sock picks the next shard socket, round-robin.
func (r *Reactor) sock() *UDP {
	return r.socks[int(r.sendIdx.Add(1)-1)%len(r.socks)]
}

// Send implements Transport, delegating to a shard socket (which must have
// learned or been configured with a peer).
func (r *Reactor) Send(frame []byte) error { return r.sock().Send(frame) }

// SendTo implements PacketTransport, round-robin across the shard sockets.
func (r *Reactor) SendTo(frame []byte, to net.Addr) error { return r.sock().SendTo(frame, to) }

// SendBatch implements BatchTransport.
func (r *Reactor) SendBatch(frames [][]byte) (int, error) { return r.sock().SendBatch(frames) }

// LocalAddr returns the shared local address of the shard sockets.
func (r *Reactor) LocalAddr() net.Addr { return r.socks[0].LocalAddr() }

// Shards returns the number of ingest sockets.
func (r *Reactor) Shards() int { return len(r.socks) }

// Stats returns a snapshot of the reactor's counters.
func (r *Reactor) Stats() ReactorStats {
	return ReactorStats{
		Frames:  r.frames.Load(),
		Dropped: r.dropped.Load(),
		Arena:   r.arena.Stats(),
	}
}

// Close stops the readers, closes the shard sockets, releases queued frames
// and — when the arena is reactor-owned — closes it, surfacing any buffer
// leak as an error.
func (r *Reactor) Close() error {
	r.closeOnce.Do(func() {
		close(r.done)
		for _, s := range r.socks {
			s.Close()
		}
		r.wg.Wait()
		for {
			select {
			case fr := <-r.q:
				fr.buf.Release()
				continue
			default:
			}
			break
		}
		if r.own {
			r.closeErr = r.arena.Close()
		}
	})
	return r.closeErr
}
