//go:build linux

package link

import "syscall"

// soReusePort is SO_REUSEPORT on Linux; the stdlib syscall package does not
// define the constant there (it predates kernel 3.9).
const soReusePort = 0xf

// reusePortControl is the net.ListenConfig.Control hook that marks a socket
// SO_REUSEPORT before bind, so N sockets can share one UDP address and the
// kernel load-balances incoming datagrams across them.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	}); err != nil {
		return err
	}
	return serr
}
