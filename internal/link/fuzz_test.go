package link

import (
	"bytes"
	"math"
	"testing"
)

// hasNaNSymbol reports whether any symbol coordinate of the frame is NaN.
func hasNaNSymbol(f *DataFrame) bool {
	for _, s := range f.Symbols {
		if math.IsNaN(real(s)) || math.IsNaN(imag(s)) {
			return true
		}
	}
	return false
}

// FuzzUnmarshalFrame throws arbitrary bytes at the frame parser. The parser
// must never panic — it guards every length and bound — and any frame it
// does accept must survive a marshal/parse round trip unchanged (the two
// directions of the wire format agree with each other).
func FuzzUnmarshalFrame(f *testing.F) {
	// Seed corpus: a valid frame of every type and generation, plus the
	// classic hostile shapes (truncations, bad magic, absurd counts).
	v0data := &DataFrame{
		MsgID: 7, MessageBits: 64, K: 8, C: 10,
		Schedule: ScheduleStriped8, Seed: 42, StartIndex: 16,
		Symbols: []complex128{1 + 1i, -2 - 0.5i},
	}
	if buf, err := v0data.Marshal(); err == nil {
		f.Add(buf)
	}
	v1data := &DataFrame{
		Version: FrameV1, FlowID: 9, MsgID: 7, MessageBits: 64, K: 8, C: 10,
		Schedule: ScheduleSequential, Seed: 42, StartIndex: 0,
		Symbols: []complex128{0.25i},
	}
	if buf, err := v1data.Marshal(); err == nil {
		f.Add(buf)
	}
	f.Add((&AckFrame{Version: FrameV0, MsgID: 3, Decoded: true}).Marshal())
	f.Add((&AckFrame{Version: FrameV1, FlowID: 12, MsgID: 3}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{frameMagic})
	f.Add([]byte{frameMagic, typeData, 0xFF, 0xFF})
	f.Add([]byte{frameMagic, typeDataV1, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Add([]byte{frameMagic, typeAckV1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{frameMagic}, dataHeaderLenV1))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ParseFrame(data)
		if err != nil {
			return
		}
		switch fr := parsed.(type) {
		case *DataFrame:
			out, err := fr.Marshal()
			if err != nil {
				t.Fatalf("accepted data frame does not re-marshal: %v", err)
			}
			// NaN symbol payloads may be quieted by the float32↔float64
			// conversions, so byte equality is only demanded for real values.
			if !hasNaNSymbol(fr) && !bytes.Equal(out, data) {
				t.Fatalf("data frame round trip changed bytes:\n in: %x\nout: %x", data, out)
			}
		case *AckFrame:
			if out := fr.Marshal(); !bytes.Equal(out, data) {
				t.Fatalf("ack frame round trip changed bytes:\n in: %x\nout: %x", data, out)
			}
		default:
			t.Fatalf("parser returned unexpected type %T", parsed)
		}
	})
}
