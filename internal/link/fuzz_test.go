package link

import (
	"bytes"
	"math"
	"testing"
)

// hasNaNSymbol reports whether any symbol coordinate of the frame is NaN.
func hasNaNSymbol(f *DataFrame) bool {
	for _, s := range f.Symbols {
		if math.IsNaN(real(s)) || math.IsNaN(imag(s)) {
			return true
		}
	}
	return false
}

// FuzzUnmarshalFrame throws arbitrary bytes at the frame parser. The parser
// must never panic — it guards every length and bound — and any frame it
// does accept must survive a marshal/parse round trip unchanged (the two
// directions of the wire format agree with each other).
func FuzzUnmarshalFrame(f *testing.F) {
	// Seed corpus: a valid frame of every type and generation, plus the
	// classic hostile shapes (truncations, bad magic, absurd counts).
	v0data := &DataFrame{
		MsgID: 7, MessageBits: 64, K: 8, C: 10,
		Schedule: ScheduleStriped8, Seed: 42, StartIndex: 16,
		Symbols: []complex128{1 + 1i, -2 - 0.5i},
	}
	if buf, err := v0data.Marshal(); err == nil {
		f.Add(buf)
	}
	v1data := &DataFrame{
		Version: FrameV1, FlowID: 9, MsgID: 7, MessageBits: 64, K: 8, C: 10,
		Schedule: ScheduleSequential, Seed: 42, StartIndex: 0,
		Symbols: []complex128{0.25i},
	}
	if buf, err := v1data.Marshal(); err == nil {
		f.Add(buf)
	}
	f.Add((&AckFrame{Version: FrameV0, MsgID: 3, Decoded: true}).Marshal())
	f.Add((&AckFrame{Version: FrameV1, FlowID: 12, MsgID: 3}).Marshal())
	f.Add([]byte{})
	f.Add([]byte{frameMagic})
	f.Add([]byte{frameMagic, typeData, 0xFF, 0xFF})
	f.Add([]byte{frameMagic, typeDataV1, 0, 0, 0, 1, 0xFF, 0xFF})
	f.Add([]byte{frameMagic, typeAckV1, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{frameMagic}, dataHeaderLenV1))

	f.Fuzz(func(t *testing.T, data []byte) {
		// The in-place parser and ParseFrame must agree on accept/reject —
		// they are two entrances to one wire format.
		var view FrameView
		viewErr := UnmarshalFrameInPlace(data, &view)
		parsed, err := ParseFrame(data)
		if (err == nil) != (viewErr == nil) {
			t.Fatalf("parsers disagree: ParseFrame err %v, in-place err %v", err, viewErr)
		}
		if err != nil {
			return
		}
		switch fr := parsed.(type) {
		case *DataFrame:
			if view.Kind != KindData {
				t.Fatalf("in-place view kind %d for a data frame", view.Kind)
			}
			if view.FlowID != fr.FlowID || view.MsgID != fr.MsgID ||
				view.MessageBits != fr.MessageBits || view.K != fr.K || view.C != fr.C ||
				view.Schedule != fr.Schedule || view.Seed != fr.Seed ||
				view.StartIndex != fr.StartIndex || view.NumSymbols != len(fr.Symbols) {
				t.Fatalf("in-place view header disagrees with ParseFrame:\nview: %+v\ndata: %+v", view, fr)
			}
			// The aliasing view must yield the same symbols, both per-symbol
			// and via the batch extraction.
			batch := make([]complex128, view.NumSymbols)
			view.SymbolsInto(batch)
			for i, want := range fr.Symbols {
				got := view.SymbolAt(i)
				if !sameComplex(got, want) || !sameComplex(batch[i], want) {
					t.Fatalf("symbol %d: view %v / batch %v, ParseFrame %v", i, got, batch[i], want)
				}
			}
			out, err := fr.Marshal()
			if err != nil {
				t.Fatalf("accepted data frame does not re-marshal: %v", err)
			}
			// NaN symbol payloads may be quieted by the float32↔float64
			// conversions, so byte equality is only demanded for real values.
			if !hasNaNSymbol(fr) && !bytes.Equal(out, data) {
				t.Fatalf("data frame round trip changed bytes:\n in: %x\nout: %x", data, out)
			}
			// Materializing through the view must round-trip identically too.
			if mat, err := view.Data().Marshal(); err != nil || (!hasNaNSymbol(fr) && !bytes.Equal(mat, data)) {
				t.Fatalf("view-materialized frame diverged (err %v):\n in: %x\nout: %x", err, data, mat)
			}
		case *AckFrame:
			if view.Kind != KindAck {
				t.Fatalf("in-place view kind %d for an ack", view.Kind)
			}
			// Copy the ack out of the view, then clobber the backing buffer:
			// the copy must be unaffected — the aliasing is confined to the
			// symbol payload, never to copied-out acks.
			ack := view.Ack()
			for i := range data {
				data[i] ^= 0xFF
			}
			if ack.FlowID != fr.FlowID || ack.MsgID != fr.MsgID || ack.Decoded != fr.Decoded || ack.Version != fr.Version {
				t.Fatalf("copied-out ack corrupted by buffer mutation: %+v vs %+v", ack, fr)
			}
			for i := range data {
				data[i] ^= 0xFF
			}
			if out := fr.Marshal(); !bytes.Equal(out, data) {
				t.Fatalf("ack frame round trip changed bytes:\n in: %x\nout: %x", data, out)
			}
		default:
			t.Fatalf("parser returned unexpected type %T", parsed)
		}
	})
}

// FuzzReceiverIngest drives arbitrary frame byte-sequences through the full
// ingest path — demux, flow/message tracking, decoder leasing, ack emission —
// not just the parser. Whatever the bytes, the receiver must neither panic
// nor leak a decoder lease: after Close, the pool reports zero outstanding.
func FuzzReceiverIngest(f *testing.F) {
	fuzzCfg := Config{K: 4, Seed: 42, BeamWidth: 4, DecodeWorkers: 1, MaxTracked: 4, MaxFlows: 4}
	// Seed corpus: real frames the receiver accepts (so coverage reaches the
	// decode path), an ack (ignored by receivers), and hostile shapes.
	if frames, err := EncodeFrames(fuzzCfg, 1, 1, []byte("fuzz ingest seed payload"), 8, 2, nil); err == nil {
		f.Add(frames[0], frames[len(frames)-1])
	}
	if frames, err := EncodeFrames(fuzzCfg, 2, 9, bytes.Repeat([]byte{0xA5}, 48), 4, 1, nil); err == nil {
		f.Add(frames[0], frames[0]) // duplicate delivery of one fragment
	}
	f.Add((&AckFrame{Version: FrameV1, FlowID: 1, MsgID: 1, Decoded: true}).Marshal(), []byte{})
	f.Add([]byte{frameMagic, typeDataV1, 0xFF, 0xFF}, []byte{frameMagic})
	f.Add(bytes.Repeat([]byte{frameMagic}, dataHeaderLenV1), []byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, first, second []byte) {
		near, far, err := NewPipePair(0, 42)
		if err != nil {
			t.Fatal(err)
		}
		defer far.Close()
		r, err := NewReceiver(near, fuzzCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Errors are fine — rejected frames are the common case — but the
		// receiver must stay usable for the next frame after each of them.
		_, _ = r.HandleFrame(first)
		_, _ = r.HandleFrame(second)
		_, _ = r.HandleFrames([][]byte{second, first, first})
		if err := r.Close(); err != nil {
			t.Fatalf("close after hostile ingest: %v", err)
		}
		if out := r.PoolStats().Outstanding; out != 0 {
			t.Fatalf("%d decoder leases leaked after hostile ingest", out)
		}
	})
}

// sameComplex is equality that treats NaN coordinates as equal to NaN, so
// hostile NaN payloads don't trip the comparison itself.
func sameComplex(a, b complex128) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	return eq(real(a), real(b)) && eq(imag(a), imag(b))
}
