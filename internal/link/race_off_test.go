//go:build !race

package link

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation allocates on paths that are otherwise alloc-free.
const raceEnabled = false
