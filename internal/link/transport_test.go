package link

import (
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b, err := NewPipePair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Receive(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("received %q", buf[:n])
	}
	// And the reverse direction.
	if err := b.Send([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	n, err = a.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "yo" {
		t.Fatalf("reverse direction failed: %v %q", err, buf[:n])
	}
}

func TestPipeTimeout(t *testing.T) {
	a, b, _ := NewPipePair(0, 2)
	defer a.Close()
	buf := make([]byte, 16)
	if _, err := b.Receive(buf, 0); err != ErrTimeout {
		t.Fatalf("zero-timeout receive on empty pipe: %v", err)
	}
	start := time.Now()
	if _, err := b.Receive(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("timed receive on empty pipe: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timed receive returned too early")
	}
}

func TestPipeLoss(t *testing.T) {
	a, b, err := NewPipePair(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const sent = 400
	for i := 0; i < sent; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 4)
	for {
		if _, err := b.Receive(buf, 0); err != nil {
			break
		}
		received++
	}
	if received == 0 || received == sent {
		t.Fatalf("lossy pipe delivered %d of %d frames", received, sent)
	}
	if received < sent/4 || received > 3*sent/4 {
		t.Fatalf("lossy pipe delivered %d of %d; loss far from 50%%", received, sent)
	}
}

func TestPipeInvalidLoss(t *testing.T) {
	if _, _, err := NewPipePair(-0.1, 1); err == nil {
		t.Error("negative loss accepted")
	}
	if _, _, err := NewPipePair(1.0, 1); err == nil {
		t.Error("loss of 1 accepted")
	}
}

func TestPipeClose(t *testing.T) {
	a, b, _ := NewPipePair(0, 4)
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed pipe: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := b.Receive(buf, 10*time.Millisecond); err != ErrClosed {
		t.Fatalf("receive on closed pipe: %v", err)
	}
}

func TestPipeRejectsOversizeFrame(t *testing.T) {
	a, _, _ := NewPipePair(0, 5)
	defer a.Close()
	if err := a.Send(make([]byte, maxFrameSize+1)); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	client, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := server.Receive(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("server received %q", buf[:n])
	}
	// Server learned the client's address from the first frame; reply.
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = client.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client reply failed: %v %q", err, buf[:n])
	}
}

func TestUDPTimeoutAndEarlySend(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	buf := make([]byte, 16)
	if _, err := server.Receive(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
	// Sending before the peer is known must fail cleanly.
	if err := server.Send([]byte("x")); err == nil {
		t.Error("send without a known peer accepted")
	}
}
