package link

import (
	"net"
	"sync"
	"testing"
	"time"
)

// checkAtomicFrames sends patterned frames from many goroutines over send()
// and verifies via recv() that every arriving frame is internally consistent
// — one sender's tag throughout, correct length — i.e. concurrent Sends are
// frame-atomic and never interleave partially. Run under -race this also
// exercises the transports' internal synchronization.
func checkAtomicFrames(t *testing.T, send func([]byte) error, recv func([]byte) (int, error)) {
	t.Helper()
	const senders = 8
	const perSender = 50
	frameLen := 120
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			frame := make([]byte, frameLen)
			for i := range frame {
				frame[i] = tag
			}
			for i := 0; i < perSender; i++ {
				if err := send(frame); err != nil {
					t.Errorf("sender %d: %v", tag, err)
					return
				}
			}
		}(byte(s + 1))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	buf := make([]byte, maxFrameSize)
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < senders*perSender && time.Now().Before(deadline) {
		n, err := recv(buf)
		if err == ErrTimeout {
			select {
			case <-done:
				// All senders finished; drain whatever is still queued.
				if n2, err2 := recv(buf); err2 == nil {
					n, err = n2, nil
				} else {
					return // UDP may drop under load; integrity was checked per frame
				}
			default:
				continue
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		if n != frameLen {
			t.Fatalf("received torn frame of %d bytes, want %d", n, frameLen)
		}
		tag := buf[0]
		if tag < 1 || tag > senders {
			t.Fatalf("received frame with unknown tag %d", tag)
		}
		for i := 1; i < n; i++ {
			if buf[i] != tag {
				t.Fatalf("frame interleaved: byte %d is %d, frame tag %d", i, buf[i], tag)
			}
		}
		got++
	}
	<-done
}

// TestPipeConcurrentSendAtomic runs many goroutines over one Pipe endpoint.
func TestPipeConcurrentSendAtomic(t *testing.T) {
	a, b, err := NewPipePair(0, 90)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	checkAtomicFrames(t,
		a.Send,
		func(buf []byte) (int, error) { return b.Receive(buf, 50*time.Millisecond) })
}

// TestUDPConcurrentSendAtomic runs many goroutines over one UDP transport —
// the many-senders serving scenario of cmd/spinalrecv in miniature.
func TestUDPConcurrentSendAtomic(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	client, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	checkAtomicFrames(t,
		client.Send,
		func(buf []byte) (int, error) { return server.Receive(buf, 50*time.Millisecond) })
}

// TestUDPSendToDirectsReplies checks the PacketTransport path: two clients
// talk to one server socket, and SendTo routes each reply to the right one.
func TestUDPSendToDirectsReplies(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	c1, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	if err := c1.Send([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := c2.Send([]byte("two")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	addrs := map[string]net.Addr{}
	for i := 0; i < 2; i++ {
		n, from, err := server.ReceiveFrom(buf, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		addrs[string(buf[:n])] = from
	}
	if addrs["one"] == nil || addrs["two"] == nil {
		t.Fatalf("server did not see both clients: %v", addrs)
	}
	if err := server.SendTo([]byte("reply-two"), addrs["two"]); err != nil {
		t.Fatal(err)
	}
	if err := server.SendTo([]byte("reply-one"), addrs["one"]); err != nil {
		t.Fatal(err)
	}
	n, err := c1.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "reply-one" {
		t.Fatalf("client 1 got %q, %v", buf[:n], err)
	}
	n, err = c2.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "reply-two" {
		t.Fatalf("client 2 got %q, %v", buf[:n], err)
	}
	if err := server.SendTo([]byte("x"), nil); err == nil {
		t.Error("SendTo with nil address accepted")
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b, err := NewPipePair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := b.Receive(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "hello" {
		t.Fatalf("received %q", buf[:n])
	}
	// And the reverse direction.
	if err := b.Send([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	n, err = a.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "yo" {
		t.Fatalf("reverse direction failed: %v %q", err, buf[:n])
	}
}

func TestPipeTimeout(t *testing.T) {
	a, b, _ := NewPipePair(0, 2)
	defer a.Close()
	buf := make([]byte, 16)
	if _, err := b.Receive(buf, 0); err != ErrTimeout {
		t.Fatalf("zero-timeout receive on empty pipe: %v", err)
	}
	start := time.Now()
	if _, err := b.Receive(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("timed receive on empty pipe: %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("timed receive returned too early")
	}
}

func TestPipeLoss(t *testing.T) {
	a, b, err := NewPipePair(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const sent = 400
	for i := 0; i < sent; i++ {
		if err := a.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	buf := make([]byte, 4)
	for {
		if _, err := b.Receive(buf, 0); err != nil {
			break
		}
		received++
	}
	if received == 0 || received == sent {
		t.Fatalf("lossy pipe delivered %d of %d frames", received, sent)
	}
	if received < sent/4 || received > 3*sent/4 {
		t.Fatalf("lossy pipe delivered %d of %d; loss far from 50%%", received, sent)
	}
}

func TestPipeInvalidLoss(t *testing.T) {
	if _, _, err := NewPipePair(-0.1, 1); err == nil {
		t.Error("negative loss accepted")
	}
	if _, _, err := NewPipePair(1.0, 1); err == nil {
		t.Error("loss of 1 accepted")
	}
}

func TestPipeClose(t *testing.T) {
	a, b, _ := NewPipePair(0, 4)
	a.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send on closed pipe: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := b.Receive(buf, 10*time.Millisecond); err != ErrClosed {
		t.Fatalf("receive on closed pipe: %v", err)
	}
}

func TestPipeRejectsOversizeFrame(t *testing.T) {
	a, _, _ := NewPipePair(0, 5)
	defer a.Close()
	if err := a.Send(make([]byte, maxFrameSize+1)); err == nil {
		t.Error("oversize frame accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	client, err := NewUDP("127.0.0.1:0", server.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := server.Receive(buf, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("server received %q", buf[:n])
	}
	// Server learned the client's address from the first frame; reply.
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	n, err = client.Receive(buf, time.Second)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client reply failed: %v %q", err, buf[:n])
	}
}

func TestUDPTimeoutAndEarlySend(t *testing.T) {
	server, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer server.Close()
	buf := make([]byte, 16)
	if _, err := server.Receive(buf, 20*time.Millisecond); err != ErrTimeout {
		t.Fatalf("expected timeout, got %v", err)
	}
	// Sending before the peer is known must fail cleanly.
	if err := server.Send([]byte("x")); err == nil {
		t.Error("send without a known peer accepted")
	}
}
