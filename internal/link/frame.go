package link

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format. All integers are big-endian.
//
//	byte 0: magic (0xA5)
//	byte 1: frame type
//
// Two generations of the format coexist on the wire. The original (v0)
// frames identify a message by MsgID alone — one implicit point-to-point
// flow. The v1 frames prepend a 32-bit FlowID (the sender's identity) to
// both data and ack payloads so that many logical flows can share one
// receiver and one transport socket. The generation is carried in the frame
// type byte, so a v1 engine parses v0 frames unchanged and treats them as
// flow 0; v0 receivers simply drop the unknown v1 types.
//
// Data frames carry everything the receiver needs to decode statelessly:
// code parameters, the schedule, the index of the first symbol in the frame
// and the symbol samples as float32 I/Q pairs. Acks carry the flow and
// message ids and a status byte (1 = decoded, 0 = negative/shed).
const (
	frameMagic byte = 0xA5
	typeData   byte = 1 // v0 data: no flow id
	typeAck    byte = 2 // v0 ack: no flow id
	typeDataV1 byte = 3 // v1 data: 32-bit flow id before the message id
	typeAckV1  byte = 4 // v1 ack: 32-bit flow id before the message id

	// ScheduleSequential and ScheduleStriped8 identify the transmission
	// schedules supported on the wire.
	ScheduleSequential uint8 = 0
	ScheduleStriped8   uint8 = 1
)

// Frame versions, carried implicitly in the frame type byte.
const (
	// FrameV0 is the original point-to-point format without flow ids.
	FrameV0 uint8 = 0
	// FrameV1 is the flow-multiplexed format.
	FrameV1 uint8 = 1
)

// dataHeaderLen is the number of bytes before the symbol samples in a v0
// data frame; v1 inserts a 4-byte flow id after the type byte.
const (
	dataHeaderLen   = 2 + 4 + 4 + 1 + 1 + 1 + 8 + 4 + 2
	dataHeaderLenV1 = dataHeaderLen + 4
	ackLen          = 7
	ackLenV1        = ackLen + 4
)

// MaxSymbolsPerFrame is the largest number of symbols a single data frame
// can carry within the transport frame-size limit. It is derived from the
// larger (v1) header so the bound holds for either generation.
const MaxSymbolsPerFrame = (maxFrameSize - dataHeaderLenV1) / 8

// DataFrame is one burst of coded symbols for a message.
type DataFrame struct {
	// Version selects the wire encoding: FrameV0 (legacy, requires FlowID
	// zero) or FrameV1. ParseFrame records the generation it saw.
	Version uint8
	// FlowID identifies the sender; (FlowID, MsgID) is the demux key at a
	// multi-flow receiver. Flow 0 is the implicit flow of v0 senders.
	FlowID      uint32
	MsgID       uint32
	MessageBits uint32
	K           uint8
	C           uint8
	Schedule    uint8
	Seed        uint64
	StartIndex  uint32
	Symbols     []complex128
}

// AckFrame is the receiver's feedback for a message. Decoded=false is a
// negative acknowledgement: a v1 receiver sends it when it sheds a flow
// under admission control, telling the sender to stop transmitting.
type AckFrame struct {
	Version uint8
	FlowID  uint32
	MsgID   uint32
	Decoded bool
}

// Marshal serializes the data frame in the generation selected by Version.
func (f *DataFrame) Marshal() ([]byte, error) {
	if len(f.Symbols) == 0 {
		return nil, fmt.Errorf("link: data frame with no symbols")
	}
	if len(f.Symbols) > MaxSymbolsPerFrame {
		return nil, fmt.Errorf("link: %d symbols exceed the per-frame limit %d", len(f.Symbols), MaxSymbolsPerFrame)
	}
	headerLen := dataHeaderLenV1
	switch f.Version {
	case FrameV1:
	case FrameV0:
		if f.FlowID != 0 {
			return nil, fmt.Errorf("link: v0 frames cannot carry flow %d", f.FlowID)
		}
		headerLen = dataHeaderLen
	default:
		return nil, fmt.Errorf("link: unknown frame version %d", f.Version)
	}
	buf := make([]byte, headerLen+8*len(f.Symbols))
	buf[0] = frameMagic
	off := 2
	if f.Version == FrameV1 {
		buf[1] = typeDataV1
		binary.BigEndian.PutUint32(buf[off:], f.FlowID)
		off += 4
	} else {
		buf[1] = typeData
	}
	binary.BigEndian.PutUint32(buf[off:], f.MsgID)
	binary.BigEndian.PutUint32(buf[off+4:], f.MessageBits)
	buf[off+8] = f.K
	buf[off+9] = f.C
	buf[off+10] = f.Schedule
	binary.BigEndian.PutUint64(buf[off+11:], f.Seed)
	binary.BigEndian.PutUint32(buf[off+19:], f.StartIndex)
	binary.BigEndian.PutUint16(buf[off+23:], uint16(len(f.Symbols)))
	off = headerLen
	for _, s := range f.Symbols {
		binary.BigEndian.PutUint32(buf[off:], math.Float32bits(float32(real(s))))
		binary.BigEndian.PutUint32(buf[off+4:], math.Float32bits(float32(imag(s))))
		off += 8
	}
	return buf, nil
}

// Marshal serializes the ack frame in the generation selected by Version.
// An unknown version falls back to v1; a v0 ack with a non-zero flow id is
// truncated to the flow-less encoding (the legacy sender it addresses
// matches on MsgID alone).
func (f *AckFrame) Marshal() []byte {
	if f.Version == FrameV0 {
		buf := make([]byte, ackLen)
		buf[0] = frameMagic
		buf[1] = typeAck
		binary.BigEndian.PutUint32(buf[2:], f.MsgID)
		if f.Decoded {
			buf[6] = 1
		}
		return buf
	}
	buf := make([]byte, ackLenV1)
	buf[0] = frameMagic
	buf[1] = typeAckV1
	binary.BigEndian.PutUint32(buf[2:], f.FlowID)
	binary.BigEndian.PutUint32(buf[6:], f.MsgID)
	if f.Decoded {
		buf[10] = 1
	}
	return buf
}

// ParseFrame decodes a received frame into either *DataFrame or *AckFrame.
// Both v0 and v1 frames are accepted; v0 frames come back with FlowID 0 and
// Version FrameV0.
func ParseFrame(buf []byte) (interface{}, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("link: frame too short (%d bytes)", len(buf))
	}
	if len(buf) > maxFrameSize {
		return nil, fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(buf), maxFrameSize)
	}
	if buf[0] != frameMagic {
		return nil, fmt.Errorf("link: bad frame magic %#x", buf[0])
	}
	switch buf[1] {
	case typeData:
		return parseDataFrame(buf, FrameV0)
	case typeDataV1:
		return parseDataFrame(buf, FrameV1)
	case typeAck:
		return parseAckFrame(buf, FrameV0)
	case typeAckV1:
		return parseAckFrame(buf, FrameV1)
	default:
		return nil, fmt.Errorf("link: unknown frame type %d", buf[1])
	}
}

func parseDataFrame(buf []byte, version uint8) (*DataFrame, error) {
	headerLen := dataHeaderLen
	if version == FrameV1 {
		headerLen = dataHeaderLenV1
	}
	if len(buf) < headerLen {
		return nil, fmt.Errorf("link: data frame header truncated (%d bytes)", len(buf))
	}
	f := &DataFrame{Version: version}
	off := 2
	if version == FrameV1 {
		f.FlowID = binary.BigEndian.Uint32(buf[off:])
		off += 4
	}
	f.MsgID = binary.BigEndian.Uint32(buf[off:])
	f.MessageBits = binary.BigEndian.Uint32(buf[off+4:])
	f.K = buf[off+8]
	f.C = buf[off+9]
	f.Schedule = buf[off+10]
	f.Seed = binary.BigEndian.Uint64(buf[off+11:])
	f.StartIndex = binary.BigEndian.Uint32(buf[off+19:])
	count := int(binary.BigEndian.Uint16(buf[off+23:]))
	if count == 0 {
		return nil, fmt.Errorf("link: data frame with zero symbols")
	}
	if len(buf) != headerLen+8*count {
		return nil, fmt.Errorf("link: data frame length %d does not match %d symbols", len(buf), count)
	}
	f.Symbols = make([]complex128, count)
	off = headerLen
	for i := range f.Symbols {
		re := math.Float32frombits(binary.BigEndian.Uint32(buf[off:]))
		im := math.Float32frombits(binary.BigEndian.Uint32(buf[off+4:]))
		f.Symbols[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, nil
}

func parseAckFrame(buf []byte, version uint8) (*AckFrame, error) {
	if version == FrameV1 {
		if len(buf) != ackLenV1 {
			return nil, fmt.Errorf("link: v1 ack frame has %d bytes, want %d", len(buf), ackLenV1)
		}
		if buf[10] > 1 {
			return nil, fmt.Errorf("link: ack status byte %d invalid", buf[10])
		}
		return &AckFrame{
			Version: FrameV1,
			FlowID:  binary.BigEndian.Uint32(buf[2:]),
			MsgID:   binary.BigEndian.Uint32(buf[6:]),
			Decoded: buf[10] == 1,
		}, nil
	}
	if len(buf) != ackLen {
		return nil, fmt.Errorf("link: ack frame has %d bytes, want %d", len(buf), ackLen)
	}
	if buf[6] > 1 {
		return nil, fmt.Errorf("link: ack status byte %d invalid", buf[6])
	}
	return &AckFrame{
		Version: FrameV0,
		MsgID:   binary.BigEndian.Uint32(buf[2:]),
		Decoded: buf[6] == 1,
	}, nil
}
