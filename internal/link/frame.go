package link

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format. All integers are big-endian.
//
//	byte 0: magic (0xA5)
//	byte 1: frame type (1 = data, 2 = ack)
//
// Data frames carry everything the receiver needs to decode statelessly:
// code parameters, the schedule, the index of the first symbol in the frame
// and the symbol samples as float32 I/Q pairs. Acks carry the message id and
// a status byte.
const (
	frameMagic byte = 0xA5
	typeData   byte = 1
	typeAck    byte = 2

	// ScheduleSequential and ScheduleStriped8 identify the transmission
	// schedules supported on the wire.
	ScheduleSequential uint8 = 0
	ScheduleStriped8   uint8 = 1
)

// dataHeaderLen is the number of bytes before the symbol samples.
const dataHeaderLen = 2 + 4 + 4 + 1 + 1 + 1 + 8 + 4 + 2

// MaxSymbolsPerFrame is the largest number of symbols a single data frame can
// carry within the transport frame-size limit.
const MaxSymbolsPerFrame = (maxFrameSize - dataHeaderLen) / 8

// DataFrame is one burst of coded symbols for a message.
type DataFrame struct {
	MsgID       uint32
	MessageBits uint32
	K           uint8
	C           uint8
	Schedule    uint8
	Seed        uint64
	StartIndex  uint32
	Symbols     []complex128
}

// AckFrame is the receiver's feedback for a message.
type AckFrame struct {
	MsgID   uint32
	Decoded bool
}

// Marshal serializes the data frame.
func (f *DataFrame) Marshal() ([]byte, error) {
	if len(f.Symbols) == 0 {
		return nil, fmt.Errorf("link: data frame with no symbols")
	}
	if len(f.Symbols) > MaxSymbolsPerFrame {
		return nil, fmt.Errorf("link: %d symbols exceed the per-frame limit %d", len(f.Symbols), MaxSymbolsPerFrame)
	}
	buf := make([]byte, dataHeaderLen+8*len(f.Symbols))
	buf[0] = frameMagic
	buf[1] = typeData
	binary.BigEndian.PutUint32(buf[2:], f.MsgID)
	binary.BigEndian.PutUint32(buf[6:], f.MessageBits)
	buf[10] = f.K
	buf[11] = f.C
	buf[12] = f.Schedule
	binary.BigEndian.PutUint64(buf[13:], f.Seed)
	binary.BigEndian.PutUint32(buf[21:], f.StartIndex)
	binary.BigEndian.PutUint16(buf[25:], uint16(len(f.Symbols)))
	off := dataHeaderLen
	for _, s := range f.Symbols {
		binary.BigEndian.PutUint32(buf[off:], math.Float32bits(float32(real(s))))
		binary.BigEndian.PutUint32(buf[off+4:], math.Float32bits(float32(imag(s))))
		off += 8
	}
	return buf, nil
}

// Marshal serializes the ack frame.
func (f *AckFrame) Marshal() []byte {
	buf := make([]byte, 7)
	buf[0] = frameMagic
	buf[1] = typeAck
	binary.BigEndian.PutUint32(buf[2:], f.MsgID)
	if f.Decoded {
		buf[6] = 1
	}
	return buf
}

// ParseFrame decodes a received frame into either *DataFrame or *AckFrame.
func ParseFrame(buf []byte) (interface{}, error) {
	if len(buf) < 2 {
		return nil, fmt.Errorf("link: frame too short (%d bytes)", len(buf))
	}
	if buf[0] != frameMagic {
		return nil, fmt.Errorf("link: bad frame magic %#x", buf[0])
	}
	switch buf[1] {
	case typeData:
		return parseDataFrame(buf)
	case typeAck:
		return parseAckFrame(buf)
	default:
		return nil, fmt.Errorf("link: unknown frame type %d", buf[1])
	}
}

func parseDataFrame(buf []byte) (*DataFrame, error) {
	if len(buf) < dataHeaderLen {
		return nil, fmt.Errorf("link: data frame header truncated (%d bytes)", len(buf))
	}
	f := &DataFrame{
		MsgID:       binary.BigEndian.Uint32(buf[2:]),
		MessageBits: binary.BigEndian.Uint32(buf[6:]),
		K:           buf[10],
		C:           buf[11],
		Schedule:    buf[12],
		Seed:        binary.BigEndian.Uint64(buf[13:]),
		StartIndex:  binary.BigEndian.Uint32(buf[21:]),
	}
	count := int(binary.BigEndian.Uint16(buf[25:]))
	if count == 0 {
		return nil, fmt.Errorf("link: data frame with zero symbols")
	}
	if len(buf) != dataHeaderLen+8*count {
		return nil, fmt.Errorf("link: data frame length %d does not match %d symbols", len(buf), count)
	}
	f.Symbols = make([]complex128, count)
	off := dataHeaderLen
	for i := range f.Symbols {
		re := math.Float32frombits(binary.BigEndian.Uint32(buf[off:]))
		im := math.Float32frombits(binary.BigEndian.Uint32(buf[off+4:]))
		f.Symbols[i] = complex(float64(re), float64(im))
		off += 8
	}
	return f, nil
}

func parseAckFrame(buf []byte) (*AckFrame, error) {
	if len(buf) != 7 {
		return nil, fmt.Errorf("link: ack frame has %d bytes, want 7", len(buf))
	}
	return &AckFrame{
		MsgID:   binary.BigEndian.Uint32(buf[2:]),
		Decoded: buf[6] == 1,
	}, nil
}
