package link

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire format. All integers are big-endian.
//
//	byte 0: magic (0xA5)
//	byte 1: frame type
//
// Two generations of the format coexist on the wire. The original (v0)
// frames identify a message by MsgID alone — one implicit point-to-point
// flow. The v1 frames prepend a 32-bit FlowID (the sender's identity) to
// both data and ack payloads so that many logical flows can share one
// receiver and one transport socket. The generation is carried in the frame
// type byte, so a v1 engine parses v0 frames unchanged and treats them as
// flow 0; v0 receivers simply drop the unknown v1 types.
//
// Data frames carry everything the receiver needs to decode statelessly:
// code parameters, the schedule, the index of the first symbol in the frame
// and the symbol samples as float32 I/Q pairs. Acks carry the flow and
// message ids and a status byte (1 = decoded, 0 = negative/shed).
const (
	frameMagic byte = 0xA5
	typeData   byte = 1 // v0 data: no flow id
	typeAck    byte = 2 // v0 ack: no flow id
	typeDataV1 byte = 3 // v1 data: 32-bit flow id before the message id
	typeAckV1  byte = 4 // v1 ack: 32-bit flow id before the message id

	// ScheduleSequential and ScheduleStriped8 identify the transmission
	// schedules supported on the wire.
	ScheduleSequential uint8 = 0
	ScheduleStriped8   uint8 = 1
)

// Frame versions, carried implicitly in the frame type byte.
const (
	// FrameV0 is the original point-to-point format without flow ids.
	FrameV0 uint8 = 0
	// FrameV1 is the flow-multiplexed format.
	FrameV1 uint8 = 1
)

// dataHeaderLen is the number of bytes before the symbol samples in a v0
// data frame; v1 inserts a 4-byte flow id after the type byte.
const (
	dataHeaderLen   = 2 + 4 + 4 + 1 + 1 + 1 + 8 + 4 + 2
	dataHeaderLenV1 = dataHeaderLen + 4
	ackLen          = 7
	ackLenV1        = ackLen + 4
)

// MaxSymbolsPerFrame is the largest number of symbols a single data frame
// can carry within the transport frame-size limit. It is derived from the
// larger (v1) header so the bound holds for either generation.
const MaxSymbolsPerFrame = (maxFrameSize - dataHeaderLenV1) / 8

// DataFrame is one burst of coded symbols for a message.
type DataFrame struct {
	// Version selects the wire encoding: FrameV0 (legacy, requires FlowID
	// zero) or FrameV1. ParseFrame records the generation it saw.
	Version uint8
	// FlowID identifies the sender; (FlowID, MsgID) is the demux key at a
	// multi-flow receiver. Flow 0 is the implicit flow of v0 senders.
	FlowID      uint32
	MsgID       uint32
	MessageBits uint32
	K           uint8
	C           uint8
	Schedule    uint8
	Seed        uint64
	StartIndex  uint32
	Symbols     []complex128
}

// AckFrame is the receiver's feedback for a message. Decoded=false is a
// negative acknowledgement: a v1 receiver sends it when it sheds a flow
// under admission control, telling the sender to stop transmitting.
type AckFrame struct {
	Version uint8
	FlowID  uint32
	MsgID   uint32
	Decoded bool
}

// AppendTo appends the frame's wire encoding (in the generation selected by
// Version) to dst and returns the extended slice. It is the hot-path marshal:
// appending into a leased arena buffer produces a frame with no allocation at
// all once the buffer is warm.
func (f *DataFrame) AppendTo(dst []byte) ([]byte, error) {
	if len(f.Symbols) == 0 {
		return nil, fmt.Errorf("link: data frame with no symbols")
	}
	if len(f.Symbols) > MaxSymbolsPerFrame {
		return nil, fmt.Errorf("link: %d symbols exceed the per-frame limit %d", len(f.Symbols), MaxSymbolsPerFrame)
	}
	switch f.Version {
	case FrameV1:
		dst = append(dst, frameMagic, typeDataV1)
		dst = binary.BigEndian.AppendUint32(dst, f.FlowID)
	case FrameV0:
		if f.FlowID != 0 {
			return nil, fmt.Errorf("link: v0 frames cannot carry flow %d", f.FlowID)
		}
		dst = append(dst, frameMagic, typeData)
	default:
		return nil, fmt.Errorf("link: unknown frame version %d", f.Version)
	}
	dst = binary.BigEndian.AppendUint32(dst, f.MsgID)
	dst = binary.BigEndian.AppendUint32(dst, f.MessageBits)
	dst = append(dst, f.K, f.C, f.Schedule)
	dst = binary.BigEndian.AppendUint64(dst, f.Seed)
	dst = binary.BigEndian.AppendUint32(dst, f.StartIndex)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.Symbols)))
	for _, s := range f.Symbols {
		dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(real(s))))
		dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(imag(s))))
	}
	return dst, nil
}

// Marshal serializes the data frame in the generation selected by Version.
// It is a thin allocating wrapper over AppendTo, kept for tests and cold
// paths; hot paths append into leased buffers instead.
func (f *DataFrame) Marshal() ([]byte, error) {
	headerLen := dataHeaderLenV1
	if f.Version == FrameV0 {
		headerLen = dataHeaderLen
	}
	return f.AppendTo(make([]byte, 0, headerLen+8*len(f.Symbols)))
}

// AppendTo appends the ack's wire encoding to dst and returns the extended
// slice — the allocation-free counterpart of Marshal for the per-frame ack
// path.
func (f *AckFrame) AppendTo(dst []byte) []byte {
	if f.Version == FrameV0 {
		dst = append(dst, frameMagic, typeAck)
		dst = binary.BigEndian.AppendUint32(dst, f.MsgID)
		if f.Decoded {
			return append(dst, 1)
		}
		return append(dst, 0)
	}
	dst = append(dst, frameMagic, typeAckV1)
	dst = binary.BigEndian.AppendUint32(dst, f.FlowID)
	dst = binary.BigEndian.AppendUint32(dst, f.MsgID)
	if f.Decoded {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Marshal serializes the ack frame in the generation selected by Version.
// An unknown version falls back to v1; a v0 ack with a non-zero flow id is
// truncated to the flow-less encoding (the legacy sender it addresses
// matches on MsgID alone).
func (f *AckFrame) Marshal() []byte {
	size := ackLenV1
	if f.Version == FrameV0 {
		size = ackLen
	}
	return f.AppendTo(make([]byte, 0, size))
}

// FrameKind discriminates the two frame families a FrameView can hold.
type FrameKind uint8

const (
	// KindData marks a view over a data frame.
	KindData FrameKind = 1
	// KindAck marks a view over an ack frame.
	KindAck FrameKind = 2
)

// FrameView is a zero-copy decoded frame: the fixed header fields are copied
// out of the input buffer, but a data frame's symbol payload is NOT — the
// view aliases it in place, and SymbolsInto decodes the float32 I/Q pairs
// straight into a caller-owned destination (typically the receiver's scratch
// batch). The view is therefore only valid while the backing buffer is; once
// the buffer is released or reused the symbol accessors read garbage. Ack
// fields are fully copied out (an ack has no payload), so Ack() survives the
// buffer — the aliasing fuzz test pins both contracts.
//
// A zero view is invalid; populate it with UnmarshalFrameInPlace. Views are
// meant to be reused across frames: unmarshaling overwrites every field and
// performs no allocation.
type FrameView struct {
	Kind    FrameKind
	Version uint8
	// FlowID is 0 for v0 frames, which carry no flow id on the wire.
	FlowID uint32
	MsgID  uint32

	// Data-frame fields (zero for acks).
	MessageBits uint32
	K           uint8
	C           uint8
	Schedule    uint8
	Seed        uint64
	StartIndex  uint32
	// NumSymbols is the symbol count of a data frame; the samples themselves
	// stay in the backing buffer (sym) until SymbolsInto extracts them.
	NumSymbols int
	sym        []byte

	// Decoded is the ack status (acks only).
	Decoded bool
}

// UnmarshalFrameInPlace parses one raw frame into v without copying the
// symbol payload: v's symbol accessors alias buf. It accepts exactly the
// frames ParseFrame accepts and performs no allocation on any path that
// returns nil.
func UnmarshalFrameInPlace(buf []byte, v *FrameView) error {
	if len(buf) < 2 {
		return fmt.Errorf("link: frame too short (%d bytes)", len(buf))
	}
	if len(buf) > maxFrameSize {
		return fmt.Errorf("link: frame of %d bytes exceeds limit %d", len(buf), maxFrameSize)
	}
	if buf[0] != frameMagic {
		return fmt.Errorf("link: bad frame magic %#x", buf[0])
	}
	switch buf[1] {
	case typeData:
		return v.unmarshalData(buf, FrameV0)
	case typeDataV1:
		return v.unmarshalData(buf, FrameV1)
	case typeAck:
		return v.unmarshalAck(buf, FrameV0)
	case typeAckV1:
		return v.unmarshalAck(buf, FrameV1)
	default:
		return fmt.Errorf("link: unknown frame type %d", buf[1])
	}
}

func (v *FrameView) unmarshalData(buf []byte, version uint8) error {
	headerLen := dataHeaderLen
	if version == FrameV1 {
		headerLen = dataHeaderLenV1
	}
	if len(buf) < headerLen {
		return fmt.Errorf("link: data frame header truncated (%d bytes)", len(buf))
	}
	off := 2
	flow := uint32(0)
	if version == FrameV1 {
		flow = binary.BigEndian.Uint32(buf[off:])
		off += 4
	}
	count := int(binary.BigEndian.Uint16(buf[off+23:]))
	if count == 0 {
		return fmt.Errorf("link: data frame with zero symbols")
	}
	if len(buf) != headerLen+8*count {
		return fmt.Errorf("link: data frame length %d does not match %d symbols", len(buf), count)
	}
	*v = FrameView{
		Kind:        KindData,
		Version:     version,
		FlowID:      flow,
		MsgID:       binary.BigEndian.Uint32(buf[off:]),
		MessageBits: binary.BigEndian.Uint32(buf[off+4:]),
		K:           buf[off+8],
		C:           buf[off+9],
		Schedule:    buf[off+10],
		Seed:        binary.BigEndian.Uint64(buf[off+11:]),
		StartIndex:  binary.BigEndian.Uint32(buf[off+19:]),
		NumSymbols:  count,
		sym:         buf[headerLen:],
	}
	return nil
}

func (v *FrameView) unmarshalAck(buf []byte, version uint8) error {
	if version == FrameV1 {
		if len(buf) != ackLenV1 {
			return fmt.Errorf("link: v1 ack frame has %d bytes, want %d", len(buf), ackLenV1)
		}
		if buf[10] > 1 {
			return fmt.Errorf("link: ack status byte %d invalid", buf[10])
		}
		*v = FrameView{
			Kind:    KindAck,
			Version: FrameV1,
			FlowID:  binary.BigEndian.Uint32(buf[2:]),
			MsgID:   binary.BigEndian.Uint32(buf[6:]),
			Decoded: buf[10] == 1,
		}
		return nil
	}
	if len(buf) != ackLen {
		return fmt.Errorf("link: ack frame has %d bytes, want %d", len(buf), ackLen)
	}
	if buf[6] > 1 {
		return fmt.Errorf("link: ack status byte %d invalid", buf[6])
	}
	*v = FrameView{
		Kind:    KindAck,
		Version: FrameV0,
		MsgID:   binary.BigEndian.Uint32(buf[2:]),
		Decoded: buf[6] == 1,
	}
	return nil
}

// SymbolsInto decodes the data frame's float32 I/Q pairs from the backing
// buffer into dst, which must hold at least NumSymbols entries. It is the
// single conversion the zero-copy ingest path performs: wire bytes become
// observation values with no intermediate slice.
func (v *FrameView) SymbolsInto(dst []complex128) {
	if v.Kind != KindData {
		panic("link: SymbolsInto on a non-data frame view")
	}
	_ = dst[v.NumSymbols-1]
	for i := 0; i < v.NumSymbols; i++ {
		re := math.Float32frombits(binary.BigEndian.Uint32(v.sym[8*i:]))
		im := math.Float32frombits(binary.BigEndian.Uint32(v.sym[8*i+4:]))
		dst[i] = complex(float64(re), float64(im))
	}
}

// SymbolAt decodes the i-th symbol of a data frame view.
func (v *FrameView) SymbolAt(i int) complex128 {
	if v.Kind != KindData {
		panic("link: SymbolAt on a non-data frame view")
	}
	re := math.Float32frombits(binary.BigEndian.Uint32(v.sym[8*i:]))
	im := math.Float32frombits(binary.BigEndian.Uint32(v.sym[8*i+4:]))
	return complex(float64(re), float64(im))
}

// Ack copies the view out as an AckFrame. The copy is independent of the
// backing buffer: mutating the buffer afterwards must not change it.
func (v *FrameView) Ack() AckFrame {
	if v.Kind != KindAck {
		panic("link: Ack on a non-ack frame view")
	}
	return AckFrame{Version: v.Version, FlowID: v.FlowID, MsgID: v.MsgID, Decoded: v.Decoded}
}

// Data materializes the view as an allocating *DataFrame with its own symbol
// slice — the compatibility bridge from the zero-copy path back to the
// original parse API.
func (v *FrameView) Data() *DataFrame {
	if v.Kind != KindData {
		panic("link: Data on a non-data frame view")
	}
	f := &DataFrame{
		Version:     v.Version,
		FlowID:      v.FlowID,
		MsgID:       v.MsgID,
		MessageBits: v.MessageBits,
		K:           v.K,
		C:           v.C,
		Schedule:    v.Schedule,
		Seed:        v.Seed,
		StartIndex:  v.StartIndex,
		Symbols:     make([]complex128, v.NumSymbols),
	}
	v.SymbolsInto(f.Symbols)
	return f
}

// ParseFrame decodes a received frame into either *DataFrame or *AckFrame.
// Both v0 and v1 frames are accepted; v0 frames come back with FlowID 0 and
// Version FrameV0. It is the allocating wrapper over UnmarshalFrameInPlace —
// one parser, two calling conventions — kept for tests, tools and the
// sender's ack path, where a copied-out frame is the right shape.
func ParseFrame(buf []byte) (interface{}, error) {
	var v FrameView
	if err := UnmarshalFrameInPlace(buf, &v); err != nil {
		return nil, err
	}
	if v.Kind == KindData {
		return v.Data(), nil
	}
	ack := v.Ack()
	return &ack, nil
}
