package link

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// unbatchedPipe narrows a *Pipe to the bare Transport interface so a
// receiver built over it takes the one-frame-per-call ingest path — the
// baseline the batched wire path is measured against.
type unbatchedPipe struct{ p *Pipe }

func (t unbatchedPipe) Send(frame []byte) error { return t.p.Send(frame) }
func (t unbatchedPipe) Receive(buf []byte, timeout time.Duration) (int, error) {
	return t.p.Receive(buf, timeout)
}
func (t unbatchedPipe) Close() error { return t.p.Close() }

// BenchmarkWirePath measures the steady-state socket→decoder wire path:
// retransmitted frames of a delivered message flow through ingest, the
// in-place parse and the arena-backed ack repeat, and the sender drains the
// acks. The pipe variants cover the full receiver path across batch sizes
// against the unbatched baseline; the reactor variants cover the
// SO_REUSEPORT UDP ingest across shard counts at the transport level. Run
// with -benchmem: the pipe steady state allocates nothing per frame.
func BenchmarkWirePath(b *testing.B) {
	b.Run("pipe/unbatched", func(b *testing.B) { benchPipeWirePath(b, 1, false) })
	for _, batch := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("pipe/batch=%d", batch), func(b *testing.B) {
			benchPipeWirePath(b, batch, true)
		})
	}
	b.Run("udp/unbatched", func(b *testing.B) { benchUDPUnbatched(b, 32) })
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("reactor/shards=%d/batch=32", shards), func(b *testing.B) {
			benchReactorWirePath(b, shards, 32)
		})
	}
}

// benchUDPUnbatched is the syscall-per-frame UDP baseline the recvmmsg
// reactor rows are compared against: the same burst moves through one
// ReceiveFrom call per frame.
func benchUDPUnbatched(b *testing.B, batch int) {
	recv, err := NewUDP("127.0.0.1:0", "")
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	send, err := NewUDP("127.0.0.1:0", recv.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	frame := make([]byte, 512)
	for i := range frame {
		frame[i] = byte(i)
	}
	buf := make([]byte, MaxFrameSize)
	moveBurst := func() (int, error) {
		for i := 0; i < batch; i++ {
			if err := send.Send(frame); err != nil {
				return 0, err
			}
		}
		moved := 0
		for moved < batch {
			_, _, err := recv.ReceiveFrom(buf, 100*time.Millisecond)
			if errors.Is(err, ErrTimeout) {
				return moved, nil // dropped remainder; caller resends
			}
			if err != nil {
				return moved, err
			}
			moved++
		}
		return moved, nil
	}
	if _, err := moveBurst(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		moved, err := moveBurst()
		if err != nil {
			b.Fatal(err)
		}
		total += moved
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "frames/s")
	}
}

func benchPipeWirePath(b *testing.B, batch int, batched bool) {
	cfg := Config{SymbolsPerFrame: 16, IngestBatch: batch}
	far, near, err := NewPipePair(0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer far.Close()
	var tr Transport = near
	if !batched {
		tr = unbatchedPipe{p: near}
	}
	r, err := NewReceiver(tr, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()

	frames, err := EncodeFrames(cfg, 1, 1, []byte("wire path benchmark load"), cfg.SymbolsPerFrame, 2, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Warmup: deliver the message so every benchmarked frame hits the
	// steady-state ack-repeat path, then drain the delivery ack.
	ds, err := r.HandleFrames(frames)
	if err != nil {
		b.Fatal(err)
	}
	if len(ds) != 1 {
		b.Fatalf("warmup delivered %d packets, want 1", len(ds))
	}
	ackBuf := make([]byte, MaxFrameSize)
	if _, err := far.Receive(ackBuf, time.Second); err != nil {
		b.Fatal(err)
	}

	burst := make([][]byte, batch)
	for i := range burst {
		burst[i] = frames[0]
	}
	moveBurst := func() error {
		if batched {
			if n, err := far.SendBatch(burst); err != nil || n != batch {
				return fmt.Errorf("SendBatch = %d, %v", n, err)
			}
		} else {
			for _, fr := range burst {
				if err := far.Send(fr); err != nil {
					return err
				}
			}
		}
		for moved := 0; moved < batch; {
			got, err := r.ingest(time.Second)
			if err != nil {
				return err
			}
			r.processIngested(got)
			moved += got
		}
		for drained := 0; drained < batch; {
			if _, err := far.Receive(ackBuf, time.Second); err != nil {
				return err
			}
			drained++
		}
		return nil
	}
	if err := moveBurst(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := moveBurst(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "frames/s")
	}
}

func benchReactorWirePath(b *testing.B, shards, batch int) {
	r, err := NewReactor(ReactorConfig{Addr: "127.0.0.1:0", Shards: shards, Batch: batch})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	send, err := NewUDP("127.0.0.1:0", r.LocalAddr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()

	frame := make([]byte, 512)
	for i := range frame {
		frame[i] = byte(i)
	}
	burst := make([][]byte, batch)
	for i := range burst {
		burst[i] = frame
	}
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, MaxFrameSize)
	}
	addrs := make([]net.Addr, batch)
	// moveBurst counts frames actually moved; UDP may drop under load, so a
	// timed-out remainder is resent rather than failed.
	moveBurst := func() (int, error) {
		if n, err := send.SendBatch(burst); err != nil || n != batch {
			return 0, fmt.Errorf("SendBatch = %d, %v", n, err)
		}
		moved := 0
		for moved < batch {
			for i := range bufs {
				bufs[i] = bufs[i][:cap(bufs[i])]
			}
			got, err := r.ReceiveBatchFrom(bufs, addrs, 100*time.Millisecond)
			if errors.Is(err, ErrTimeout) {
				return moved, nil // dropped remainder; caller resends
			}
			if err != nil {
				return moved, err
			}
			moved += got
		}
		return moved, nil
	}
	if _, err := moveBurst(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		moved, err := moveBurst()
		if err != nil {
			b.Fatal(err)
		}
		total += moved
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)/secs, "frames/s")
	}
}
