package link

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDataFrameRoundTrip(t *testing.T) {
	f := &DataFrame{
		MsgID:       42,
		MessageBits: 288,
		K:           8,
		C:           10,
		Schedule:    ScheduleStriped8,
		Seed:        0xfeedface,
		StartIndex:  96,
		Symbols:     []complex128{1 + 2i, -0.25 - 0.75i, 0},
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := parsed.(*DataFrame)
	if !ok {
		t.Fatalf("parsed wrong type %T", parsed)
	}
	if got.MsgID != f.MsgID || got.MessageBits != f.MessageBits || got.K != f.K ||
		got.C != f.C || got.Schedule != f.Schedule || got.Seed != f.Seed || got.StartIndex != f.StartIndex {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Symbols) != len(f.Symbols) {
		t.Fatalf("symbol count mismatch")
	}
	for i := range f.Symbols {
		if math.Abs(real(got.Symbols[i])-real(f.Symbols[i])) > 1e-6 ||
			math.Abs(imag(got.Symbols[i])-imag(f.Symbols[i])) > 1e-6 {
			t.Fatalf("symbol %d mismatch: %v vs %v", i, got.Symbols[i], f.Symbols[i])
		}
	}
}

func TestDataFrameRoundTripProperty(t *testing.T) {
	prop := func(msgID uint32, bits uint16, start uint16, re, im float32) bool {
		f := &DataFrame{
			MsgID:       msgID,
			MessageBits: uint32(bits) + 1,
			K:           8,
			C:           10,
			Schedule:    ScheduleSequential,
			Seed:        1,
			StartIndex:  uint32(start),
			Symbols:     []complex128{complex(float64(re), float64(im))},
		}
		if math.IsNaN(float64(re)) || math.IsNaN(float64(im)) {
			return true
		}
		buf, err := f.Marshal()
		if err != nil {
			return false
		}
		parsed, err := ParseFrame(buf)
		if err != nil {
			return false
		}
		got := parsed.(*DataFrame)
		return got.MsgID == f.MsgID && got.StartIndex == f.StartIndex &&
			math.Abs(real(got.Symbols[0])-float64(re)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataFrameV1RoundTrip(t *testing.T) {
	f := &DataFrame{
		Version:     FrameV1,
		FlowID:      0xDEAD0001,
		MsgID:       42,
		MessageBits: 288,
		K:           8,
		C:           10,
		Schedule:    ScheduleStriped8,
		Seed:        0xfeedface,
		StartIndex:  96,
		Symbols:     []complex128{1 + 2i, -0.25 - 0.75i},
	}
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := parsed.(*DataFrame)
	if !ok {
		t.Fatalf("parsed wrong type %T", parsed)
	}
	if got.Version != FrameV1 || got.FlowID != f.FlowID || got.MsgID != f.MsgID ||
		got.MessageBits != f.MessageBits || got.K != f.K || got.C != f.C ||
		got.Schedule != f.Schedule || got.Seed != f.Seed || got.StartIndex != f.StartIndex {
		t.Fatalf("v1 header mismatch: %+v", got)
	}
	if len(got.Symbols) != 2 {
		t.Fatalf("symbol count mismatch")
	}
}

func TestDataFrameV0RejectsFlow(t *testing.T) {
	f := &DataFrame{Version: FrameV0, FlowID: 3, MsgID: 1, MessageBits: 32, K: 8, C: 10, Seed: 1, Symbols: []complex128{1}}
	if _, err := f.Marshal(); err == nil {
		t.Error("v0 frame with a non-zero flow id accepted")
	}
	f.Version = 9
	f.FlowID = 0
	if _, err := f.Marshal(); err == nil {
		t.Error("unknown frame version accepted")
	}
}

func TestAckFrameV1RoundTrip(t *testing.T) {
	for _, decoded := range []bool{true, false} {
		a := &AckFrame{Version: FrameV1, FlowID: 77, MsgID: 7, Decoded: decoded}
		parsed, err := ParseFrame(a.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		got, ok := parsed.(*AckFrame)
		if !ok {
			t.Fatalf("wrong type %T", parsed)
		}
		if got.Version != FrameV1 || got.FlowID != 77 || got.MsgID != 7 || got.Decoded != decoded {
			t.Fatalf("v1 ack mismatch: %+v", got)
		}
	}
}

func TestParseFrameV0ReportsFlowZero(t *testing.T) {
	data := &DataFrame{MsgID: 5, MessageBits: 32, K: 8, C: 10, Seed: 1, Symbols: []complex128{1}}
	buf, err := data.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := parsed.(*DataFrame)
	if got.Version != FrameV0 || got.FlowID != 0 {
		t.Fatalf("v0 data frame parsed as version %d flow %d", got.Version, got.FlowID)
	}
	ack := parsed42(t, (&AckFrame{MsgID: 42, Decoded: true}).Marshal())
	if ack.Version != FrameV0 || ack.FlowID != 0 {
		t.Fatalf("v0 ack parsed as version %d flow %d", ack.Version, ack.FlowID)
	}
}

func parsed42(t *testing.T, buf []byte) *AckFrame {
	t.Helper()
	parsed, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := parsed.(*AckFrame)
	if !ok {
		t.Fatalf("wrong type %T", parsed)
	}
	return ack
}

func TestParseFrameRejectsOversize(t *testing.T) {
	huge := make([]byte, maxFrameSize+1)
	huge[0] = frameMagic
	huge[1] = typeData
	if _, err := ParseFrame(huge); err == nil {
		t.Error("frame above the transport limit accepted")
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	for _, decoded := range []bool{true, false} {
		a := &AckFrame{MsgID: 7, Decoded: decoded}
		parsed, err := ParseFrame(a.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		got, ok := parsed.(*AckFrame)
		if !ok {
			t.Fatalf("wrong type %T", parsed)
		}
		if got.MsgID != 7 || got.Decoded != decoded {
			t.Fatalf("ack mismatch: %+v", got)
		}
	}
}

func TestParseFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{0x00, 0x01, 0x02},           // bad magic
		{frameMagic, 0x09, 0, 0, 0},  // unknown type
		{frameMagic, typeAck, 0, 0},  // short ack
		{frameMagic, typeData, 1, 2}, // truncated data header
	}
	for i, c := range cases {
		if _, err := ParseFrame(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestParseDataFrameLengthMismatch(t *testing.T) {
	f := &DataFrame{MsgID: 1, MessageBits: 32, K: 8, C: 10, Seed: 1, Symbols: []complex128{1}}
	buf, _ := f.Marshal()
	if _, err := ParseFrame(buf[:len(buf)-3]); err == nil {
		t.Error("truncated symbol payload accepted")
	}
}

func TestMarshalLimits(t *testing.T) {
	f := &DataFrame{MsgID: 1, MessageBits: 32, K: 8, C: 10, Seed: 1}
	if _, err := f.Marshal(); err == nil {
		t.Error("empty symbol list accepted")
	}
	f.Symbols = make([]complex128, MaxSymbolsPerFrame+1)
	if _, err := f.Marshal(); err == nil {
		t.Error("oversize frame accepted")
	}
	f.Symbols = make([]complex128, MaxSymbolsPerFrame)
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) > maxFrameSize {
		t.Fatalf("marshalled frame of %d bytes exceeds transport limit", len(buf))
	}
}
