package link

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"spinal/internal/core"
	"spinal/internal/crc"
)

// Tests for the receiver's concurrent decode pipeline and its state
// eviction. These drive the receiver with hand-built frames over an
// in-memory pipe, so they are deterministic and race-detector friendly —
// unlike the wall-clock pacing tests, nothing here depends on decode
// latency.

// testStream encodes one payload the way the Sender does and yields its
// frames in SymbolsPerFrame-sized chunks.
type testStream struct {
	msgID   uint32
	message []byte
	enc     *core.Encoder
	sched   core.Schedule
	params  core.Params
	next    int
}

func newTestStream(t *testing.T, cfg Config, msgID uint32, payload []byte) *testStream {
	t.Helper()
	cfg = cfg.withDefaults()
	message := crc.Append32(append([]byte(nil), payload...))
	params := core.Params{K: cfg.K, C: cfg.C, MessageBits: len(message) * 8, Seed: cfg.Seed}
	enc, err := core.NewEncoder(params, message)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduleFor(cfg.Schedule, params.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	return &testStream{msgID: msgID, message: message, enc: enc, sched: sched, params: params}
}

// frame marshals the next `count` symbols of the stream.
func (s *testStream) frame(t *testing.T, cfg Config, count int) []byte {
	t.Helper()
	cfg = cfg.withDefaults()
	f := &DataFrame{
		MsgID:       s.msgID,
		MessageBits: uint32(s.params.MessageBits),
		K:           uint8(cfg.K),
		C:           uint8(cfg.C),
		Schedule:    cfg.Schedule,
		Seed:        cfg.Seed,
		StartIndex:  uint32(s.next),
		Symbols:     make([]complex128, count),
	}
	for i := 0; i < count; i++ {
		f.Symbols[i] = s.enc.SymbolAt(s.sched.Pos(s.next + i))
	}
	s.next += count
	buf, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestReceiverDecodesInterleavedMessagesConcurrently feeds frames of several
// in-flight messages interleaved symbol-chunk by symbol-chunk through the
// transport and checks that a multi-worker receiver delivers every payload
// intact — the per-message decoder affinity must keep results correct even
// though distinct messages decode concurrently with ingest.
func TestReceiverDecodesInterleavedMessagesConcurrently(t *testing.T) {
	far, near, err := NewPipePair(0, 71)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4, DecodeWorkers: 3}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	payloads := map[uint32][]byte{
		1: []byte("first interleaved packet"),
		2: bytes.Repeat([]byte{0x5A}, 60),
		3: []byte("third packet riding along on a different decode worker"),
	}
	streams := make([]*testStream, 0, len(payloads))
	for id := uint32(1); id <= 3; id++ {
		streams = append(streams, newTestStream(t, cfg, id, payloads[id]))
	}
	// Interleave: one 16-symbol chunk per message per round, two noiseless
	// passes' worth — every message becomes decodable mid-way through.
	maxNeed := 0
	for _, s := range streams {
		if n := 2 * s.params.NumSegments(); n > maxNeed {
			maxNeed = n
		}
	}
	for sent := 0; sent < maxNeed; sent += 16 {
		for _, s := range streams {
			if sent >= 2*s.params.NumSegments() {
				continue
			}
			count := 16
			if rest := 2*s.params.NumSegments() - sent; rest < count {
				count = rest
			}
			if err := far.Send(s.frame(t, cfg, count)); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := map[uint32][]byte{}
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < len(payloads) && time.Now().Before(deadline) {
		d, err := recv.Receive(100 * time.Millisecond)
		if err == ErrTimeout {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got[d.MsgID] = d.Payload
		if d.Symbols <= 0 {
			t.Fatalf("message %d delivered with implausible symbol count %d", d.MsgID, d.Symbols)
		}
	}
	for id, want := range payloads {
		if !bytes.Equal(got[id], want) {
			t.Fatalf("message %d: delivered payload differs (got %d bytes, want %d)", id, len(got[id]), len(want))
		}
	}
}

// TestReceiverConcurrentMatchesSingleWorker runs the same interleaved frame
// sequence through a 1-worker and a 4-worker receiver and checks the
// delivered payloads agree — concurrency must not change per-message
// results.
func TestReceiverConcurrentMatchesSingleWorker(t *testing.T) {
	run := func(workers int) map[uint32][]byte {
		far, near, err := NewPipePair(0, 72)
		if err != nil {
			t.Fatal(err)
		}
		defer far.Close()
		cfg := Config{K: 4, DecodeWorkers: workers}
		recv, err := NewReceiver(near, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer recv.Close()
		var streams []*testStream
		for id := uint32(10); id < 14; id++ {
			streams = append(streams, newTestStream(t, cfg,
				id, []byte(fmt.Sprintf("payload for message %d", id))))
		}
		for round := 0; round < 8; round++ {
			for _, s := range streams {
				if err := far.Send(s.frame(t, cfg, 8)); err != nil {
					t.Fatal(err)
				}
			}
		}
		got := map[uint32][]byte{}
		deadline := time.Now().Add(5 * time.Second)
		for len(got) < len(streams) && time.Now().Before(deadline) {
			d, err := recv.Receive(100 * time.Millisecond)
			if err == ErrTimeout {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			got[d.MsgID] = d.Payload
		}
		return got
	}
	serial := run(1)
	concurrent := run(4)
	if len(serial) != 4 {
		t.Fatalf("single-worker receiver delivered %d/4 messages", len(serial))
	}
	for id, want := range serial {
		if !bytes.Equal(concurrent[id], want) {
			t.Fatalf("message %d: 4-worker payload differs from 1-worker payload", id)
		}
	}
}

// TestReceiverEvictsDeliveredStates checks the post-ACK grace eviction: a
// delivered message's state survives just after delivery (so late duplicate
// frames get the ack repeated) and is dropped once enough unrelated frames
// have passed.
func TestReceiverEvictsDeliveredStates(t *testing.T) {
	far, near, err := NewPipePair(0, 73)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	// Deliver message 1 synchronously through the single-frame path.
	s1 := newTestStream(t, cfg, 1, []byte("evict me after the grace period"))
	var delivered *Delivered
	for delivered == nil && s1.next < 3*s1.params.NumSegments() {
		delivered, err = recv.HandleFrame(s1.frame(t, cfg, 16))
		if err != nil {
			t.Fatal(err)
		}
	}
	if delivered == nil {
		t.Fatal("noiseless message never delivered")
	}
	if recv.TrackedMessages() != 1 {
		t.Fatalf("tracked %d states after delivery, want 1 (grace period)", recv.TrackedMessages())
	}

	// A duplicate frame for the delivered message must repeat the ack.
	dup := newTestStream(t, cfg, 1, []byte("evict me after the grace period"))
	if _, err := recv.HandleFrame(dup.frame(t, cfg, 8)); err != nil {
		t.Fatal(err)
	}
	ackBuf := make([]byte, maxFrameSize)
	n, err := far.Receive(ackBuf, time.Second)
	if err != nil {
		t.Fatal("no ack for the original delivery")
	}
	sawRepeat := false
	for {
		parsed, perr := ParseFrame(ackBuf[:n])
		if perr == nil {
			if ack, ok := parsed.(*AckFrame); ok && ack.MsgID == 1 && ack.Decoded {
				sawRepeat = true
			}
		}
		n, err = far.Receive(ackBuf, 0)
		if err != nil {
			break
		}
	}
	if !sawRepeat {
		t.Fatal("duplicate frame did not trigger an ack repeat")
	}

	// Push unrelated traffic past the grace period; message 1 must be gone.
	other := newTestStream(t, cfg, 2, bytes.Repeat([]byte{7}, 40))
	for i := 0; i < doneGraceFrames+evictSweepEvery+2; i++ {
		if _, err := recv.HandleFrame(other.frame(t, cfg, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if recv.SymbolsReceived(1) != 0 {
		t.Fatal("delivered state for message 1 still tracked past the grace period")
	}
	if recv.TrackedMessages() != 1 { // only message 2 remains
		t.Fatalf("tracked %d states, want 1", recv.TrackedMessages())
	}
}

// TestReceiverCapsTrackedStates checks the bound on simultaneously tracked
// messages: the oldest state is evicted to admit a new one, and the evicted
// message can still complete later from fresh frames.
func TestReceiverCapsTrackedStates(t *testing.T) {
	far, near, err := NewPipePair(0, 74)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	cfg := Config{K: 4, MaxTracked: 3}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	for id := uint32(1); id <= 5; id++ {
		s := newTestStream(t, cfg, id, []byte(fmt.Sprintf("capped message %d", id)))
		// One symbol only: the message stays undecodable and in flight.
		if _, err := recv.HandleFrame(s.frame(t, cfg, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := recv.TrackedMessages(); got > 3 {
		t.Fatalf("tracked %d states, cap is 3", got)
	}
	if recv.SymbolsReceived(1) != 0 || recv.SymbolsReceived(2) != 0 {
		t.Fatal("oldest states were not the ones evicted")
	}
	if recv.SymbolsReceived(5) == 0 {
		t.Fatal("newest state was evicted instead of the oldest")
	}

	// The evicted message is not lost: a fresh stream for it still decodes.
	s1 := newTestStream(t, cfg, 1, []byte("capped message 1"))
	var delivered *Delivered
	for delivered == nil && s1.next < 3*s1.params.NumSegments() {
		delivered, err = recv.HandleFrame(s1.frame(t, cfg, 16))
		if err != nil {
			t.Fatal(err)
		}
	}
	if delivered == nil || !bytes.Equal(delivered.Payload, []byte("capped message 1")) {
		t.Fatal("evicted message could not be re-received from scratch")
	}
}

// TestReceiverCloseStopsWorkers checks Close is idempotent and leaves the
// receiver quiescent.
func TestReceiverCloseStopsWorkers(t *testing.T) {
	_, near, err := NewPipePair(0, 75)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver(near, Config{DecodeWorkers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverConfigValidation covers the new configuration knobs.
func TestReceiverConfigValidation(t *testing.T) {
	_, near, _ := NewPipePair(0, 76)
	defer near.Close()
	if _, err := NewReceiver(near, Config{DecodeWorkers: -1}, nil); err == nil {
		t.Error("negative DecodeWorkers accepted")
	}
	if _, err := NewReceiver(near, Config{DecoderParallelism: -2}, nil); err == nil {
		t.Error("negative DecoderParallelism accepted")
	}
	if _, err := NewReceiver(near, Config{MaxTracked: -3}, nil); err == nil {
		t.Error("negative MaxTracked accepted")
	}
	r, err := NewReceiver(near, Config{DecodeWorkers: 2, DecoderParallelism: 2, MaxTracked: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
}
