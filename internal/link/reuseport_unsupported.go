//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd && !dragonfly

package link

import (
	"fmt"
	"syscall"
)

// reusePortControl reports that SO_REUSEPORT sharding is unavailable; the
// reactor still works with a single shard on these platforms.
func reusePortControl(network, address string, c syscall.RawConn) error {
	return fmt.Errorf("link: SO_REUSEPORT is not supported on this platform")
}
