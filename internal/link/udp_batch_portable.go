//go:build !linux || !(amd64 || arm64)

package link

import (
	"errors"
	"net"
	"time"
)

// udpBatch carries no state on platforms without a batched-syscall fast
// path; the batch methods fall back to a portable receive/send loop.
type udpBatch struct{}

// ReceiveBatchFrom implements BatchPacketTransport with a portable loop: the
// first frame honors the caller's timeout, the rest are drained with
// zero-timeout polls. The portable zero-timeout poll may wait up to a
// millisecond per probe (see ReceiveFrom); the Linux build replaces this
// with a single non-blocking recvmmsg call.
func (u *UDP) ReceiveBatchFrom(bufs [][]byte, addrs []net.Addr, timeout time.Duration) (int, error) {
	got := 0
	for got < len(bufs) {
		to := timeout
		if got > 0 {
			to = 0
		}
		full := bufs[got][:cap(bufs[got])]
		n, from, err := u.ReceiveFrom(full, to)
		if err != nil {
			if got > 0 && errors.Is(err, ErrTimeout) {
				return got, nil
			}
			return got, err
		}
		bufs[got] = full[:n]
		if addrs != nil {
			addrs[got] = from
		}
		got++
	}
	return got, nil
}

// SendBatch implements BatchTransport as a plain send loop; every frame is
// still one datagram.
func (u *UDP) SendBatch(frames [][]byte) (int, error) {
	for i, f := range frames {
		if err := u.Send(f); err != nil {
			return i, err
		}
	}
	return len(frames), nil
}
