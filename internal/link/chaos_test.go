package link

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// encodeTestFrames builds the deterministic frame sequence of one message,
// failing the test on error.
func encodeTestFrames(t *testing.T, cfg Config, flow, msg uint32, payload []byte, symbolsPerFrame, passes int) [][]byte {
	t.Helper()
	frames, err := EncodeFrames(cfg, flow, msg, payload, symbolsPerFrame, passes, nil)
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

// deliverAll replays a frame sequence through a fresh receiver via the
// deterministic HandleFrames path and returns the delivered payloads keyed by
// (flow, msg).
func deliverAll(t *testing.T, cfg Config, frames [][]byte) map[uint64][]byte {
	t.Helper()
	near, far, err := NewPipePair(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer far.Close()
	r, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	out := map[uint64][]byte{}
	ds, err := r.HandleFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		key := uint64(d.FlowID)<<32 | uint64(d.MsgID)
		if prev, ok := out[key]; ok && !bytes.Equal(prev, d.Payload) {
			t.Fatalf("flow %d msg %d delivered twice with different payloads", d.FlowID, d.MsgID)
		}
		out[key] = d.Payload
	}
	return out
}

// TestReceiverDuplicateAndReorderProperty pins the property the fault model
// relies on: a receiver fed duplicated data frames, or frames reordered
// within a bounded window, delivers payloads bit-identical to the
// clean-transport run. Duplicates append extra observations (cost-summed,
// CRC-gated) and reordering only changes the fold order, so correctness must
// be unaffected.
func TestReceiverDuplicateAndReorderProperty(t *testing.T) {
	cfg := Config{K: 4, Seed: 77}
	payloads := [][]byte{
		[]byte("chaos property payload one"),
		bytes.Repeat([]byte{0x5A, 0xC3}, 20),
	}
	var clean [][]byte
	for i, p := range payloads {
		clean = append(clean, encodeTestFrames(t, cfg, uint32(i+1), uint32(i+1), p, 8, 2)...)
	}
	want := deliverAll(t, cfg, clean)
	if len(want) != len(payloads) {
		t.Fatalf("clean run delivered %d/%d messages", len(want), len(payloads))
	}
	for i, p := range payloads {
		if got := want[uint64(i+1)<<32|uint64(i+1)]; !bytes.Equal(got, p) {
			t.Fatalf("clean run corrupted payload %d", i+1)
		}
	}

	// Every frame duplicated back to back.
	var dup [][]byte
	for _, f := range clean {
		dup = append(dup, f, f)
	}
	// Bounded reorder: swap adjacent pairs, then duplicate a prefix at the
	// end (stale retransmissions arriving long after the originals).
	reordered := append([][]byte{}, clean...)
	for i := 0; i+1 < len(reordered); i += 2 {
		reordered[i], reordered[i+1] = reordered[i+1], reordered[i]
	}
	reordered = append(reordered, clean[:len(clean)/2]...)

	for name, seq := range map[string][][]byte{"duplicated": dup, "reordered": reordered} {
		got := deliverAll(t, cfg, seq)
		if len(got) != len(want) {
			t.Fatalf("%s run delivered %d messages, clean delivered %d", name, len(got), len(want))
		}
		for key, wp := range want {
			if !bytes.Equal(got[key], wp) {
				t.Errorf("%s run: payload for key %#x not bit-identical to clean run", name, key)
			}
		}
	}
}

// TestLinkUnderAckFaults runs the full sender/receiver loop with the ack
// direction faulted — dropped, duplicated and reordered acks plus duplicated
// data frames — and requires every message acknowledged with payloads
// bit-identical to what was sent. Lost acks force the ack-repeat path;
// duplicated stale acks land in the next message's wait and must be ignored
// (and counted), never misattributed.
func TestLinkUnderAckFaults(t *testing.T) {
	near, far, err := NewPipePair(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	tx := FaultProfile{DupProb: 0.2}
	rx := FaultProfile{DropProb: 0.3, DupProb: 0.3, ReorderProb: 0.2, ReorderDepth: 3}
	ftr := NewFaultTransport(near, tx, rx, 1234)
	cfg := Config{K: 4, Seed: 21, MaxPasses: 120}
	snd, err := NewSender(ftr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver(far, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	delivered, wg := runReceiver(t, recv, stop)

	const msgs = 5
	ignored := 0
	for m := 1; m <= msgs; m++ {
		payload := []byte(fmt.Sprintf("ack-fault message %02d payload", m))
		rep, err := snd.Send(uint32(m), payload)
		if err != nil {
			t.Fatalf("message %d: %v", m, err)
		}
		if !rep.Acked {
			t.Fatalf("message %d not acknowledged under ack faults", m)
		}
		ignored += rep.AckFramesIgnored
	}
	got := map[uint32][]byte{}
	deadline := time.After(5 * time.Second)
	for len(got) < msgs {
		select {
		case d := <-delivered:
			got[d.MsgID] = d.Payload
		case <-deadline:
			t.Fatalf("only %d/%d messages delivered", len(got), msgs)
		}
	}
	for m := 1; m <= msgs; m++ {
		want := []byte(fmt.Sprintf("ack-fault message %02d payload", m))
		if !bytes.Equal(got[uint32(m)], want) {
			t.Errorf("message %d payload not bit-identical", m)
		}
	}
	if stats := ftr.(interface{ RxStats() LaneStats }).RxStats(); stats.Dropped == 0 || stats.Duplicated == 0 {
		t.Errorf("ack fault schedule never fired: %+v", stats)
	}
	if ignored == 0 {
		t.Error("duplicated stale acks were never counted as ignored")
	}
	close(stop)
	near.Close()
	wg.Wait()
	recv.Close()
	if out := recv.PoolStats().Outstanding; out != 0 {
		t.Errorf("%d decoder leases leaked after close", out)
	}
}

// TestFaultTransportDeterministic pins the reproducibility contract: two
// transports with the same profiles and seed apply the identical schedule to
// the identical frame sequence.
func TestFaultTransportDeterministic(t *testing.T) {
	profile := FaultProfile{
		DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.2, CorruptProb: 0.3,
		GE:         &GilbertElliott{GoodToBad: 0.1, BadToGood: 0.4, BadLoss: 0.8},
		StallEvery: 16, StallFrames: 2,
	}
	run := func() ([][]byte, LaneStats) {
		near, far, err := NewPipePair(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer far.Close()
		ftr := NewFaultTransport(near, profile, FaultProfile{}, 42)
		for i := 0; i < 200; i++ {
			frame := bytes.Repeat([]byte{byte(i)}, 32)
			if err := ftr.Send(frame); err != nil {
				t.Fatal(err)
			}
		}
		var got [][]byte
		buf := make([]byte, MaxFrameSize)
		for {
			n, err := far.Receive(buf, 0)
			if errors.Is(err, ErrTimeout) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, append([]byte(nil), buf[:n]...))
		}
		return got, ftr.(interface{ TxStats() LaneStats }).TxStats()
	}
	frames1, stats1 := run()
	frames2, stats2 := run()
	if stats1 != stats2 {
		t.Fatalf("fault schedules diverged: %+v vs %+v", stats1, stats2)
	}
	if stats1.Dropped == 0 || stats1.Corrupted == 0 || stats1.Duplicated == 0 || stats1.Stalled == 0 {
		t.Fatalf("schedule did not exercise every fault: %+v", stats1)
	}
	if len(frames1) != len(frames2) {
		t.Fatalf("runs emitted %d vs %d frames", len(frames1), len(frames2))
	}
	for i := range frames1 {
		if !bytes.Equal(frames1[i], frames2[i]) {
			t.Fatalf("frame %d differs between identically seeded runs", i)
		}
	}
}

// TestFaultTransportPreservesCapabilities pins the wrapper constructor's
// contract: type assertions on the wrapped transport answer exactly as they
// would on the inner one.
func TestFaultTransportPreservesCapabilities(t *testing.T) {
	near, far, err := NewPipePair(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	defer far.Close()
	// A Pipe is a BatchTransport but not a PacketTransport.
	wrapped := NewFaultTransport(near, FaultProfile{}, FaultProfile{}, 1)
	if _, ok := wrapped.(BatchTransport); !ok {
		t.Error("wrapping a BatchTransport lost the batch capability")
	}
	if _, ok := wrapped.(PacketTransport); ok {
		t.Error("wrapping a Pipe invented a packet capability")
	}
	// A bare Transport stays bare.
	bare := NewFaultTransport(plainTransport{near}, FaultProfile{}, FaultProfile{}, 1)
	if _, ok := bare.(BatchTransport); ok {
		t.Error("wrapping a bare transport invented a batch capability")
	}
}

// plainTransport hides a Pipe's optional interfaces.
type plainTransport struct{ p *Pipe }

func (t plainTransport) Send(frame []byte) error { return t.p.Send(frame) }
func (t plainTransport) Receive(buf []byte, timeout time.Duration) (int, error) {
	return t.p.Receive(buf, timeout)
}
func (t plainTransport) Close() error { return t.p.Close() }

// TestSenderDeadline pins the typed give-up path: a sender whose frames all
// vanish must stop at SendDeadline with an error wrapping ErrDeadline and the
// report flagged, not spin forever.
func TestSenderDeadline(t *testing.T) {
	near, far, err := NewPipePair(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	defer far.Close()
	ftr := NewFaultTransport(near, FaultProfile{DropProb: 1}, FaultProfile{}, 9)
	cfg := Config{K: 4, Seed: 33, SendDeadline: 80 * time.Millisecond, FinalWait: 20 * time.Millisecond}
	snd, err := NewSender(ftr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := snd.Send(1, []byte("doomed"))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if rep == nil || !rep.DeadlineExceeded {
		t.Fatalf("report not flagged: %+v", rep)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline send took %v", elapsed)
	}
}

// TestSenderRidesOutTransientErrors pins Send's resumability: injected
// transient transport errors on both directions must be absorbed by the retry
// budget, not fail the message.
func TestSenderRidesOutTransientErrors(t *testing.T) {
	near, far, err := NewPipePair(0, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	ftr := NewFaultTransport(near, FaultProfile{ErrProb: 0.3}, FaultProfile{ErrProb: 0.3}, 77)
	cfg := Config{K: 4, Seed: 51, MaxPasses: 120}
	snd, err := NewSender(ftr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewReceiver(far, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	_, wg := runReceiver(t, recv, stop)
	// Keep sending until the deterministic error schedule has demonstrably
	// fired at least once on the data direction (bounded: p(miss) vanishes).
	stats := func() LaneStats { return ftr.(interface{ TxStats() LaneStats }).TxStats() }
	for m := uint32(1); m <= 20; m++ {
		rep, err := snd.Send(m, []byte("transient faults must not kill this send"))
		if err != nil {
			t.Fatalf("message %d failed despite retry budget: %v", m, err)
		}
		if !rep.Acked {
			t.Fatalf("message %d not acknowledged", m)
		}
		if stats().Errors > 0 {
			break
		}
	}
	if stats().Errors == 0 {
		t.Error("tx error schedule never fired across 20 messages")
	}
	close(stop)
	near.Close()
	wg.Wait()
	recv.Close()
}

// TestReceiverIdleExpiry pins zombie-flow reclamation: a flow that goes
// silent mid-message is expired from the Receive loop, its undelivered
// message NACKed and its decoder lease returned.
func TestReceiverIdleExpiry(t *testing.T) {
	near, far, err := NewPipePair(0, 17)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	cfg := Config{K: 4, Seed: 61, IdleExpiry: 40 * time.Millisecond}
	recv, err := NewReceiver(far, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One frame of a multi-frame message: not enough symbols to decode, so
	// the flow sits in-flight when the sender goes silent.
	frames := encodeTestFrames(t, cfg, 3, 1, bytes.Repeat([]byte{0xEE}, 64), 8, 1)
	if err := near.Send(frames[0]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for recv.ExpiredFlows() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle flow never expired")
		}
		if _, err := recv.Receive(10 * time.Millisecond); err != nil && err != ErrTimeout {
			t.Fatal(err)
		}
	}
	if n := recv.TrackedFlows(); n != 0 {
		t.Errorf("expired flow still tracked (%d flows)", n)
	}
	// The zombie sender gets a NACK so a live one would stop retransmitting.
	buf := make([]byte, MaxFrameSize)
	n, err := near.Receive(buf, time.Second)
	if err != nil {
		t.Fatalf("no NACK after idle expiry: %v", err)
	}
	var view FrameView
	if err := UnmarshalFrameInPlace(buf[:n], &view); err != nil {
		t.Fatal(err)
	}
	if view.Kind != KindAck || view.Decoded || view.FlowID != 3 || view.MsgID != 1 {
		t.Fatalf("expected NACK for flow 3 msg 1, got %+v", view)
	}
	recv.Close()
	if out := recv.PoolStats().Outstanding; out != 0 {
		t.Errorf("%d decoder leases leaked after idle expiry + close", out)
	}
}

// TestReceiverCloseReleasesLeases pins the drain gate the chaos soak relies
// on: closing a receiver with in-flight (undecodable) messages returns every
// decoder lease to the pool.
func TestReceiverCloseReleasesLeases(t *testing.T) {
	near, far, err := NewPipePair(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	defer far.Close()
	cfg := Config{K: 4, Seed: 71}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for flow := uint32(1); flow <= 4; flow++ {
		frames := encodeTestFrames(t, cfg, flow, 1, bytes.Repeat([]byte{byte(flow)}, 64), 8, 1)
		if _, err := recv.HandleFrame(frames[0]); err != nil {
			t.Fatal(err)
		}
	}
	if n := recv.TrackedMessages(); n != 4 {
		t.Fatalf("tracked %d messages, want 4", n)
	}
	if out := recv.PoolStats().Outstanding; out != 4 {
		t.Fatalf("pool reports %d outstanding leases, want 4", out)
	}
	if err := recv.Close(); err != nil {
		t.Fatal(err)
	}
	if out := recv.PoolStats().Outstanding; out != 0 {
		t.Errorf("%d decoder leases leaked after close", out)
	}
	if n := recv.TrackedMessages(); n != 0 {
		t.Errorf("%d messages still tracked after close", n)
	}
}

// TestReceiverRejectsHostileDecodeCost pins the admission cap: a frame
// advertising parameters whose decode would run minutes per attempt (K=12
// with a maximum-length message) is rejected before any state or decoder is
// allocated, while the repository's largest legitimate shape stays admitted.
func TestReceiverRejectsHostileDecodeCost(t *testing.T) {
	near, far, err := NewPipePair(0, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer near.Close()
	defer far.Close()
	cfg := Config{K: 4, Seed: 42}
	recv, err := NewReceiver(near, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	hostile := &DataFrame{
		Version: FrameV1, FlowID: 1, MsgID: 1, MessageBits: (MaxPayload + 4) * 8,
		K: 12, C: 16, Schedule: ScheduleSequential, Seed: 42,
		Symbols: make([]complex128, 32),
	}
	buf, err := hostile.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := recv.HandleFrame(buf); err == nil {
		t.Fatal("hostile decode-cost frame admitted")
	}
	if n := recv.TrackedMessages(); n != 0 {
		t.Errorf("rejected frame left %d tracked messages", n)
	}
	if out := recv.PoolStats().Outstanding; out != 0 {
		t.Errorf("rejected frame leaked %d decoder leases", out)
	}
	// The largest shipped shape — default K=8 with a MaxPayload message —
	// must stay under the default cap.
	legit := &DataFrame{
		Version: FrameV1, FlowID: 2, MsgID: 1, MessageBits: (MaxPayload + 4) * 8,
		K: 8, C: 10, Schedule: ScheduleStriped8, Seed: 42,
		Symbols: make([]complex128, 32),
	}
	if buf, err = legit.Marshal(); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.HandleFrame(buf); err != nil {
		t.Fatalf("legitimate max-size frame rejected: %v", err)
	}
}

// TestFlowDecodeBudgetDeferral drives the budget scheduler directly: a flow
// whose ledger leads by more than the budget must be passed over (and the
// deferral counted) until the cheaper flows catch up, and the least-spent
// flow must always be schedulable.
func TestFlowDecodeBudgetDeferral(t *testing.T) {
	e := &flowEngine{budget: 100, spent: map[uint32]int64{}, flowQ: map[uint32]*flowQueue{}}
	mk := func(id uint32) *flowQueue {
		fq := &flowQueue{id: id, msgs: []*msgState{{flow: id}}, inRing: true}
		e.flowQ[id] = fq
		e.ring = append(e.ring, fq)
		return fq
	}
	hog, modest, idle := mk(1), mk(2), mk(3)
	e.spent[1] = 500 // way over budget relative to the others
	e.spent[2] = 120
	e.spent[3] = 30

	if got := e.pickLocked(); got != modest {
		t.Fatalf("picked flow %d, want the affordable flow 2", got.id)
	}
	if e.deferrals != 1 {
		t.Fatalf("deferrals = %d, want 1 (the hog skipped once)", e.deferrals)
	}
	if got := e.pickLocked(); got != idle {
		t.Fatalf("picked flow %d, want flow 3", got.id)
	}
	// Only the hog remains: the minimum is its own spend, so it schedules.
	if got := e.pickLocked(); got != hog {
		t.Fatalf("picked flow %d, want the hog once it is alone", got.id)
	}
	// Without a budget the scheduler is plain round-robin.
	e2 := &flowEngine{spent: map[uint32]int64{}, flowQ: map[uint32]*flowQueue{}}
	a := &flowQueue{id: 1}
	b := &flowQueue{id: 2}
	e2.ring = []*flowQueue{a, b}
	e2.spent[1] = 1 << 40
	if got := e2.pickLocked(); got != a {
		t.Fatalf("budgetless pick took flow %d, want head of ring", got.id)
	}
}
