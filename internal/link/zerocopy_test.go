package link

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// newTestReceiver builds a receiver over one end of a fresh pipe pair and
// returns it with the peer endpoint (where its acks land).
func newTestReceiver(t *testing.T, cfg Config) (*Receiver, *Pipe) {
	t.Helper()
	peer, rend, err := NewPipePair(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	r, err := NewReceiver(rend, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r, peer
}

// TestBatchedPathMatchesUnbatched is the end-to-end equivalence gate for the
// zero-copy wire path: the same encoded frames delivered through
// SendBatch → pipe → ReceiveBatch into arena-leased buffers must decode to
// bit-identical payloads with identical symbol counts as the reference
// frame-at-a-time path. Batching is an I/O optimization, never a semantic one.
func TestBatchedPathMatchesUnbatched(t *testing.T) {
	cfg := Config{SymbolsPerFrame: 24}
	type msg struct {
		flow, id uint32
		payload  []byte
	}
	msgs := []msg{
		{flow: 1, id: 1, payload: []byte("the quick brown fox jumps over the lazy dog")},
		{flow: 1, id: 2, payload: bytes.Repeat([]byte{0xA7}, 200)},
		{flow: 9, id: 1, payload: []byte("second flow, first message")},
	}
	// Interleave the flows' frames the way a shared link would see them.
	var frames [][]byte
	for _, m := range msgs {
		fs, err := EncodeFrames(cfg, m.flow, m.id, m.payload, cfg.SymbolsPerFrame, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fs...)
	}
	for i, j := 0, len(frames)-1; i < j; i, j = i+2, j-2 {
		frames[i], frames[j] = frames[j], frames[i]
	}

	// Reference: deterministic frame-at-a-time ingest.
	ref, _ := newTestReceiver(t, cfg)
	want, err := ref.HandleFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(msgs) {
		t.Fatalf("reference path delivered %d packets, want %d", len(want), len(msgs))
	}

	// Batched: the frames cross a pipe via SendBatch/ReceiveBatch into
	// arena-leased buffers, then feed an identical receiver.
	sendEnd, recvEnd, err := NewPipePair(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sendEnd.Close()
	got, _ := newTestReceiver(t, cfg)
	arena := NewArena(MaxFrameSize, len(frames)+4)
	defer func() {
		if err := arena.Close(); err != nil {
			t.Errorf("arena leak after batched run: %v", err)
		}
	}()
	var have []Delivered
	for off := 0; off < len(frames); {
		batch := 7 // deliberately not a divisor of len(frames)
		if off+batch > len(frames) {
			batch = len(frames) - off
		}
		if n, err := sendEnd.SendBatch(frames[off : off+batch]); err != nil || n != batch {
			t.Fatalf("SendBatch = %d, %v", n, err)
		}
		leases := make([]*ArenaBuf, batch)
		bufs := make([][]byte, batch)
		for i := range bufs {
			leases[i] = arena.Lease()
			bufs[i] = leases[i].Data[:cap(leases[i].Data)]
		}
		n, err := recvEnd.ReceiveBatch(bufs, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if n != batch {
			t.Fatalf("ReceiveBatch = %d, want %d", n, batch)
		}
		ds, err := got.HandleFrames(bufs[:n])
		if err != nil {
			t.Fatal(err)
		}
		have = append(have, ds...)
		for i := range leases {
			leases[i].Data = leases[i].Data[:cap(leases[i].Data)]
			leases[i].Release()
		}
		off += batch
	}

	if len(have) != len(want) {
		t.Fatalf("batched path delivered %d packets, reference %d", len(have), len(want))
	}
	for i := range want {
		w, h := want[i], have[i]
		if w.FlowID != h.FlowID || w.MsgID != h.MsgID {
			t.Fatalf("delivery %d: batched (%d,%d) vs reference (%d,%d)", i, h.FlowID, h.MsgID, w.FlowID, w.MsgID)
		}
		if !bytes.Equal(w.Payload, h.Payload) {
			t.Fatalf("delivery %d (flow %d msg %d): payloads differ", i, w.FlowID, w.MsgID)
		}
		if w.Symbols != h.Symbols {
			t.Fatalf("delivery %d (flow %d msg %d): batched used %d symbols, reference %d",
				i, w.FlowID, w.MsgID, h.Symbols, w.Symbols)
		}
	}
}

// TestSteadyStateIngestAllocs pins the steady-state ingest path —
// in-place parse, demux, schedule positions, symbol append — at zero
// allocations per frame. The pending buffer is drained between runs so the
// measurement sees the steady state, not one-time slice growth.
func TestSteadyStateIngestAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	cfg := Config{SymbolsPerFrame: 48}
	r, _ := newTestReceiver(t, cfg)
	payload := bytes.Repeat([]byte{0x5C}, MaxPayload)
	frames, err := EncodeFrames(cfg, 4, 11, payload, cfg.SymbolsPerFrame, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) > 8 {
		frames = frames[:8]
	}
	// Warm up: create the flow/message state and grow every scratch buffer.
	for _, f := range frames {
		if _, _, err := r.addFrame(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := r.flows[4].states[11]
	st.pending.reset()

	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range frames {
			if _, _, err := r.addFrame(f, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Drain as a worker would, keeping capacity, so the measurement
		// never charges for unbounded pending growth.
		st.pending.reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ingest allocated %.2f times per %d-frame batch, want 0", allocs, len(frames))
	}
}

// TestSteadyStateAckAllocs pins the ack-repeat path — a retransmitted frame
// for an already-delivered message answered straight from the done state —
// at zero allocations per frame: in-place parse, arena-leased ack marshal,
// pooled pipe buffer.
func TestSteadyStateAckAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under the race detector")
	}
	cfg := Config{SymbolsPerFrame: 16}
	r, peer := newTestReceiver(t, cfg)
	frames, err := EncodeFrames(cfg, 2, 5, []byte("small packet, fast decode"), cfg.SymbolsPerFrame, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := r.HandleFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("warmup delivered %d packets, want 1", len(ds))
	}
	ackBuf := make([]byte, MaxFrameSize)
	// Drain the delivery ack so the pipe starts the measurement empty.
	if _, err := peer.Receive(ackBuf, time.Second); err != nil {
		t.Fatal(err)
	}
	retransmit := frames[0]
	// Warm the pipe's buffer pool through one full send/receive cycle.
	if _, err := r.HandleFrame(retransmit); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Receive(ackBuf, time.Second); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(500, func() {
		if _, err := r.HandleFrame(retransmit); err != nil {
			t.Fatal(err)
		}
		// Drain the repeated ack so the pipe's buffer returns to its pool.
		if _, err := peer.Receive(ackBuf, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ack-repeat path allocated %.2f times per frame, want 0", allocs)
	}
}

// TestReactorFeedsReceiver wires the sharded reactor to a Receiver end to
// end: frames encoded by EncodeFrames arrive over real UDP sockets through
// two SO_REUSEPORT shards, and the delivered payload matches the reference
// frame-at-a-time path exactly.
func TestReactorFeedsReceiver(t *testing.T) {
	cfg := Config{SymbolsPerFrame: 24}
	payload := []byte("over the reactor, across two shards")
	frames, err := EncodeFrames(cfg, 6, 3, payload, cfg.SymbolsPerFrame, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := newTestReceiver(t, cfg)
	want, err := ref.HandleFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 {
		t.Fatalf("reference delivered %d packets, want 1", len(want))
	}

	reactor, err := NewReactor(ReactorConfig{Addr: "127.0.0.1:0", Shards: 2, Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReceiver(reactor, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sender, err := NewUDP("127.0.0.1:0", reactor.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	done := make(chan error, 1)
	go func() {
		// Retransmit passes until the receiver acks; UDP may drop locally.
		for pass := 0; pass < 50; pass++ {
			if _, err := sender.SendBatch(frames); err != nil {
				done <- err
				return
			}
			buf := make([]byte, MaxFrameSize)
			if n, err := sender.Receive(buf, 100*time.Millisecond); err == nil {
				var v FrameView
				if UnmarshalFrameInPlace(buf[:n], &v) == nil && v.Kind == KindAck && v.Decoded {
					done <- nil
					return
				}
			} else if !errors.Is(err, ErrTimeout) {
				done <- err
				return
			}
		}
		done <- fmt.Errorf("no ack after 50 passes")
	}()

	var got *Delivered
	deadline := time.Now().Add(10 * time.Second)
	for got == nil && time.Now().Before(deadline) {
		d, err := r.Receive(time.Second)
		if errors.Is(err, ErrTimeout) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = d
	}
	if got == nil {
		t.Fatal("receiver never delivered over the reactor")
	}
	if err := <-done; err != nil {
		t.Fatalf("sender: %v", err)
	}
	if got.FlowID != want[0].FlowID || got.MsgID != want[0].MsgID || !bytes.Equal(got.Payload, want[0].Payload) {
		t.Fatalf("reactor delivery (flow %d msg %d, %d bytes) differs from reference", got.FlowID, got.MsgID, len(got.Payload))
	}
	r.Close()
	if err := reactor.Close(); err != nil {
		t.Fatalf("reactor close: %v", err)
	}
}
