package sim

import (
	"fmt"
	"math"

	"spinal/internal/rng"
)

// This file is the trace-driven workload generator: it turns an arrival
// process (Poisson or two-state MMPP), a message-size mix and flow on/off
// churn into one deterministic event trace. Generation is a pure function of
// the config — one seeded PRNG consumed in a fixed order — and each event
// carries its index-derived seed, so a sharded trial runner that encodes
// event i on any worker reproduces bit-identical frames at any worker count.

// SizeClass is one entry of a message-size mix: messages of Bytes payload
// bytes arriving with relative Weight.
type SizeClass struct {
	Bytes  int
	Weight float64
}

// WorkloadConfig describes a traffic trace.
type WorkloadConfig struct {
	// Seed drives every random choice in the trace.
	Seed uint64
	// Flows is the size of the flow population (flow IDs 1..Flows).
	Flows int
	// Messages is the number of arrival events to generate.
	Messages int
	// Arrival selects the arrival process: "poisson" (constant rate) or
	// "mmpp" (Markov-modulated: the rate toggles between Rate and
	// Rate*Burst with exponential dwell times of mean Dwell).
	Arrival string
	// Rate is the mean arrival rate in messages per unit time.
	Rate float64
	// Burst is the MMPP burst-state rate multiplier (>= 1).
	Burst float64
	// Dwell is the MMPP mean state dwell in time units.
	Dwell float64
	// Sizes is the message-size mix; a single class is a fixed size.
	Sizes []SizeClass
	// MeanOn/MeanOff are the mean flow on/off lifetimes in time units
	// (exponential). Zero disables churn: every flow is always on.
	MeanOn  float64
	MeanOff float64
}

// Event is one message arrival in a workload trace.
type Event struct {
	// At is the arrival time in abstract time units.
	At float64
	// Flow is the flow the message belongs to (1-based).
	Flow uint32
	// Msg is the per-flow message number (1-based).
	Msg uint32
	// Size is the payload size in bytes.
	Size int
}

// Seed derives the event's encode seed from a base seed and the event's
// position in the trace, the same splitmix64 mixing the trial runner uses —
// whichever worker encodes this event gets the same stream.
func (e Event) Seed(base uint64, index int) uint64 {
	return base ^ (0x9e3779b97f4a7c15 * uint64(index+1))
}

// flowState is one flow's on/off renewal process.
type flowState struct {
	on     bool
	toggle float64 // next state change
	msgs   uint32
}

// GenerateWorkload produces the deterministic event trace described by the
// config. The same config always yields the same trace.
func GenerateWorkload(cfg WorkloadConfig) ([]Event, error) {
	if cfg.Flows < 1 {
		return nil, fmt.Errorf("sim: workload needs at least one flow")
	}
	if cfg.Messages < 1 {
		return nil, fmt.Errorf("sim: workload needs at least one message")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("sim: workload rate must be positive")
	}
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("sim: workload needs at least one size class")
	}
	var totalWeight float64
	for _, s := range cfg.Sizes {
		if s.Bytes < 1 || s.Weight <= 0 {
			return nil, fmt.Errorf("sim: size class %+v needs positive bytes and weight", s)
		}
		totalWeight += s.Weight
	}
	burst := false
	switch cfg.Arrival {
	case "", "poisson":
	case "mmpp":
		if cfg.Burst < 1 || cfg.Dwell <= 0 {
			return nil, fmt.Errorf("sim: mmpp needs burst >= 1 and positive dwell")
		}
	default:
		return nil, fmt.Errorf("sim: unknown arrival process %q", cfg.Arrival)
	}
	churn := cfg.MeanOn > 0 && cfg.MeanOff > 0

	src := rng.New(cfg.Seed)
	expo := func(mean float64) float64 {
		return -math.Log(1-src.Float64()) * mean
	}

	flows := make([]flowState, cfg.Flows)
	for i := range flows {
		flows[i].on = true
		if churn {
			// Start each flow in a random phase of its cycle.
			flows[i].on = src.Float64() < cfg.MeanOn/(cfg.MeanOn+cfg.MeanOff)
			mean := cfg.MeanOn
			if !flows[i].on {
				mean = cfg.MeanOff
			}
			flows[i].toggle = expo(mean)
		}
	}

	events := make([]Event, 0, cfg.Messages)
	var now, modeToggle float64
	if cfg.Arrival == "mmpp" {
		modeToggle = expo(cfg.Dwell)
	}
	active := make([]int, 0, cfg.Flows)
	for len(events) < cfg.Messages {
		rate := cfg.Rate
		if burst {
			rate *= cfg.Burst
		}
		now += expo(1 / rate)

		// Advance the modulating chain and the flows' renewal processes past
		// the arrival instant.
		if cfg.Arrival == "mmpp" {
			for modeToggle <= now {
				burst = !burst
				modeToggle += expo(cfg.Dwell)
			}
		}
		if churn {
			for i := range flows {
				for flows[i].toggle <= now {
					flows[i].on = !flows[i].on
					mean := cfg.MeanOn
					if !flows[i].on {
						mean = cfg.MeanOff
					}
					flows[i].toggle += expo(mean)
				}
			}
		}

		active = active[:0]
		for i := range flows {
			if flows[i].on {
				active = append(active, i)
			}
		}
		var pick int
		if len(active) > 0 {
			pick = active[src.Intn(len(active))]
		} else {
			// Every flow is dormant: the arrival wakes one up, restarting
			// its on period.
			pick = src.Intn(cfg.Flows)
			flows[pick].on = true
			flows[pick].toggle = now + expo(cfg.MeanOn)
		}

		w := src.Float64() * totalWeight
		size := cfg.Sizes[len(cfg.Sizes)-1].Bytes
		for _, s := range cfg.Sizes {
			if w < s.Weight {
				size = s.Bytes
				break
			}
			w -= s.Weight
		}

		flows[pick].msgs++
		events = append(events, Event{
			At:   now,
			Flow: uint32(pick + 1),
			Msg:  flows[pick].msgs,
			Size: size,
		})
	}
	return events, nil
}
