package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Scenario is one registered experiment: what it is called, what it
// measures, which request knobs it consumes, the schema of its primary
// result table, and how to run it.
type Scenario struct {
	// Name is the registry key, the value passed to `spinalsim -exp`.
	Name string
	// Description is the one-line summary shown by `-exp list`.
	Description string
	// Flags lists the spinalsim flag names this scenario consumes, for
	// `-exp list` and the command's usage text. Flags not listed are
	// accepted but ignored by the scenario.
	Flags []string
	// Schema is the point schema of the scenario's primary result table
	// (scenarios may emit further tables; their schemas travel with the
	// tables themselves).
	Schema []Column
	// Run executes the scenario for the given request.
	Run func(req Request) (*Result, error)
}

var registry struct {
	mu sync.Mutex
	m  map[string]*Scenario
}

// Register adds a scenario to the global registry. It panics on an empty
// name, a nil Run or a duplicate registration — all programmer errors that
// should fail at init time, not at dispatch time.
func Register(s Scenario) {
	if s.Name == "" || s.Run == nil {
		panic("sim: Register needs a name and a Run function")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = map[string]*Scenario{}
	}
	if _, dup := registry.m[s.Name]; dup {
		panic(fmt.Sprintf("sim: scenario %q registered twice", s.Name))
	}
	sc := s
	registry.m[s.Name] = &sc
}

// Lookup returns the scenario registered under name.
func Lookup(name string) (*Scenario, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	sc, ok := registry.m[name]
	return sc, ok
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []*Scenario {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]*Scenario, 0, len(registry.m))
	for _, sc := range registry.m {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted names of every registered scenario.
func Names() []string {
	scs := Scenarios()
	out := make([]string, len(scs))
	for i, sc := range scs {
		out[i] = sc.Name
	}
	return out
}

// Suggest returns registered names close to the (unknown) name, nearest
// first: substring matches, then names within a small edit distance. It is
// what turns `-exp multifow` into `did you mean "multiflow"?`.
func Suggest(name string) []string {
	type cand struct {
		name string
		dist int
	}
	var cands []cand
	for _, known := range Names() {
		if containsFold(known, name) || containsFold(name, known) {
			cands = append(cands, cand{known, 0})
			continue
		}
		if d := editDistance(name, known); d <= 2 || (d <= 3 && len(name) >= 6) {
			cands = append(cands, cand{known, d})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	out := make([]string, 0, len(cands))
	for _, c := range cands {
		out = append(out, c.name)
	}
	if len(out) > 3 {
		out = out[:3]
	}
	return out
}

// containsFold reports whether s contains sub, ASCII case-insensitively.
func containsFold(s, sub string) bool {
	if len(sub) == 0 || len(sub) > len(s) {
		return len(sub) == 0
	}
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 'a' - 'A'
		}
		return b
	}
outer:
	for i := 0; i+len(sub) <= len(s); i++ {
		for j := 0; j < len(sub); j++ {
			if lower(s[i+j]) != lower(sub[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}

// editDistance is the Levenshtein distance between two short strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
