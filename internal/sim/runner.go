package sim

import (
	"fmt"
	"runtime"
	"sync"

	"spinal/internal/core"
)

// Runner configures the sharded trial runner.
type Runner struct {
	// Workers is the number of trial goroutines; zero or less selects
	// GOMAXPROCS. The worker count never changes results — only wall-clock
	// time.
	Workers int
	// Pool optionally supplies the decoder pool trials lease from (shared
	// across Run calls, e.g. across the points of an SNR sweep). Nil builds
	// a private pool per Run call, drained when the run ends.
	Pool *core.DecoderPool
}

// Worker is the per-goroutine context handed to every trial. It carries the
// state a worker reuses across the trials it executes: decoder leases from
// the run's pool and arbitrary stashed values (an LDPC decoder, a HARQ
// scheme). Reused state must never change trial results — which trials land
// on which worker depends on scheduling, and the runner's determinism
// guarantee depends on the trial index alone.
type Worker struct {
	// Index identifies the worker within the run, 0..workers-1.
	Index int

	pool   *core.DecoderPool
	leases map[string]*core.LeasedDecoder
	stash  map[string]any
}

// Decoder returns a (BeamDecoder, Observations) lease for the given code
// parameters, reset to fresh-decoder behaviour: the observation containers
// are cleared, per-lease tuning reverts to construction defaults and the
// decoder will rebuild from the root, exactly like a freshly constructed
// pair (core.LeasedDecoder.Reset). The first call per parameter set leases
// from the run's pool; later calls on the same worker reuse the lease, so a
// worker running hundreds of trials builds at most one decoder per
// parameter set.
func (w *Worker) Decoder(params core.Params, beamWidth int) (*core.LeasedDecoder, error) {
	key := core.LeaseKey(params, beamWidth)
	if ld, ok := w.leases[key]; ok {
		ld.Reset()
		return ld, nil
	}
	ld, err := w.pool.Lease(params, beamWidth)
	if err != nil {
		return nil, err
	}
	if w.leases == nil {
		w.leases = map[string]*core.LeasedDecoder{}
	}
	w.leases[key] = ld
	return ld, nil
}

// Pool exposes the run's shared decoder pool, for trials that run whole
// sessions (core.SessionConfig.Pool) rather than driving a decoder directly.
func (w *Worker) Pool() *core.DecoderPool { return w.pool }

// Stash returns the worker-scoped value under key, building it on first
// use. Trials that land on the same worker share the value; the builder
// must therefore produce state whose reuse does not change results.
func (w *Worker) Stash(key string, build func() (any, error)) (any, error) {
	if v, ok := w.stash[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	if w.stash == nil {
		w.stash = map[string]any{}
	}
	w.stash[key] = v
	return v, nil
}

// release returns every decoder lease the worker accumulated to the pool.
func (w *Worker) release() {
	for _, ld := range w.leases {
		ld.Release()
	}
	w.leases = nil
}

// Run executes fn for trials 0..trials-1, distributed across the runner's
// worker pool, and returns the per-trial results indexed by trial. The
// assignment of trials to workers depends on scheduling, but each trial's
// inputs derive from its index alone and each result lands in its own slot,
// so the returned slice — and anything folded from it in order — is
// bit-identical at any worker count. On error the lowest-indexed failing
// trial wins, for the same reason.
func Run[T any](r Runner, trials int, fn func(w *Worker, trial int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	if fn == nil {
		return nil, fmt.Errorf("sim: nil trial function")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	pool := r.Pool
	if pool == nil {
		pool = core.NewDecoderPool(workers)
		defer pool.Drain()
	}

	results := make([]T, trials)
	errs := make([]error, trials)
	trialCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(idx int) {
			defer wg.Done()
			w := &Worker{Index: idx, pool: pool}
			defer w.release()
			for trial := range trialCh {
				out, err := fn(w, trial)
				if err != nil {
					errs[trial] = err
					continue
				}
				results[trial] = out
			}
		}(i)
	}
	for trial := 0; trial < trials; trial++ {
		trialCh <- trial
	}
	close(trialCh)
	wg.Wait()
	for trial, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trial %d: %w", trial, err)
		}
	}
	return results, nil
}
