package sim_test

import (
	"fmt"
	"runtime"
	"testing"

	_ "spinal/internal/experiments" // registers every scenario
	"spinal/internal/sim"
)

// BenchmarkScenarioTrialScaling measures how the previously-serial
// experiments scale once their trial loops run on the sharded sim runner:
// the same scenario at 1 trial worker versus GOMAXPROCS. The adapt, harq and
// batch scenarios all ran single-threaded before the unified engine; compare
// the two worker counts' ns/op to see the speedup.
func BenchmarkScenarioTrialScaling(b *testing.B) {
	for _, name := range []string{"adapt", "harq", "batch"} {
		sc, ok := sim.Lookup(name)
		if !ok {
			b.Fatalf("scenario %q not registered", name)
		}
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("%s/trial-workers=%d", name, workers), func(b *testing.B) {
				req := sim.DefaultRequest()
				req.SNRs = []float64{6}
				req.SNR = 12
				req.Trials = 8
				req.Frames = 16
				req.TrialWorkers = workers
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sc.Run(req); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTrialRunner isolates the runner's own overhead and scaling on a
// synthetic CPU-bound trial, without any decoder in the loop.
func BenchmarkTrialRunner(b *testing.B) {
	work := func(w *sim.Worker, trial int) (float64, error) {
		x := float64(trial + 1)
		for i := 0; i < 200_000; i++ {
			x += 1 / x
		}
		return x, nil
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Runner{Workers: workers}, 64, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
