package sim

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"spinal/internal/core"
	"spinal/internal/rng"
	"spinal/internal/stats"
)

// TestRunDeterministicAcrossWorkerCounts checks the runner's core guarantee
// with a trial function whose output depends only on the trial index: the
// result slice — and statistics folded from it in order — must be
// bit-identical at worker counts 1, 3 and GOMAXPROCS.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	trial := func(w *Worker, i int) (float64, error) {
		src := rng.New(uint64(i+1) * 0x9e3779b97f4a7c15)
		sum := 0.0
		for k := 0; k < 100; k++ {
			sum += src.NormFloat64()
		}
		return sum, nil
	}
	var want []float64
	var wantMean float64
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		got, err := Run(Runner{Workers: workers}, 50, trial)
		if err != nil {
			t.Fatal(err)
		}
		var r stats.Running
		for _, v := range got {
			r.Add(v)
		}
		if want == nil {
			want, wantMean = got, r.Mean()
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different per-trial results", workers)
		}
		if r.Mean() != wantMean {
			t.Fatalf("workers=%d folded mean %v, want exactly %v", workers, r.Mean(), wantMean)
		}
		if r.N() != 50 {
			t.Fatalf("running stats saw %d samples, want 50", r.N())
		}
	}
}

// TestRunReportsLowestFailingTrial checks deterministic error selection:
// whichever worker hits its error first, the reported trial is the lowest
// failing index.
func TestRunReportsLowestFailingTrial(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(Runner{Workers: workers}, 20, func(w *Worker, i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("trial says %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v, want wrapped sentinel", workers, err)
		}
		if got := err.Error(); got != "sim: trial 7: trial says 7: boom" {
			t.Fatalf("workers=%d: error %q, want the lowest failing trial", workers, got)
		}
	}
}

// TestRunZeroTrialsAndNilFn pins the edge cases.
func TestRunZeroTrialsAndNilFn(t *testing.T) {
	out, err := Run(Runner{}, 0, func(w *Worker, i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("zero trials: %v %v", out, err)
	}
	if _, err := Run[int](Runner{}, 3, nil); err == nil {
		t.Fatal("nil trial function accepted")
	}
}

// TestWorkerDecoderReuse checks the per-worker lease cache: a single-worker
// run leases one decoder for many trials (the pool sees exactly one miss per
// parameter set) and every trial receives it reset to empty.
func TestWorkerDecoderReuse(t *testing.T) {
	params := core.Params{K: 4, C: 8, MessageBits: 32, Seed: core.DefaultSeed}
	pool := core.NewDecoderPool(4)
	var distinct atomic.Int64
	seen := make(map[*core.BeamDecoder]bool)
	_, err := Run(Runner{Workers: 1, Pool: pool}, 10, func(w *Worker, i int) (int, error) {
		ld, err := w.Decoder(params, 8)
		if err != nil {
			return 0, err
		}
		if ld.Obs.Count() != 0 {
			return 0, fmt.Errorf("trial %d: observations not reset (%d symbols)", i, ld.Obs.Count())
		}
		if err := ld.Obs.Add(core.SymbolPos{Spine: 0, Pass: 0}, 1); err != nil {
			return 0, err
		}
		if !seen[ld.Dec] {
			seen[ld.Dec] = true
			distinct.Add(1)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if distinct.Load() != 1 {
		t.Fatalf("single worker used %d decoders over 10 trials, want 1", distinct.Load())
	}
	if s := pool.Stats(); s.Misses != 1 {
		t.Fatalf("pool misses = %d, want 1 (one lease per worker per key)", s.Misses)
	}
	if s := pool.Stats(); s.Idle != 1 {
		t.Fatalf("lease not returned to the pool at end of run: %+v", s)
	}
}

// TestWorkerStash checks worker-scoped value reuse and builder error
// propagation.
func TestWorkerStash(t *testing.T) {
	builds := 0
	_, err := Run(Runner{Workers: 1}, 5, func(w *Worker, i int) (int, error) {
		v, err := w.Stash("thing", func() (any, error) {
			builds++
			return builds, nil
		})
		if err != nil {
			return 0, err
		}
		if v.(int) != 1 {
			return 0, fmt.Errorf("trial %d got stash value %v", i, v)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("builder ran %d times on one worker, want 1", builds)
	}
	_, err = Run(Runner{Workers: 1}, 1, func(w *Worker, i int) (int, error) {
		_, err := w.Stash("bad", func() (any, error) { return nil, errors.New("nope") })
		return 0, err
	})
	if err == nil {
		t.Fatal("stash builder error not propagated")
	}
}
