package sim

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile starts the pprof collection a Request asks for and returns the
// function that finishes it. The returned stop must be called exactly once,
// after the profiled work: it stops the CPU profile (when one was requested)
// and writes the heap profile (after a GC, so it reflects live memory rather
// than collection timing). With both paths empty, Profile is a no-op and
// stop never fails.
func Profile(req Request) (stop func() error, err error) {
	var cpu *os.File
	if req.CPUProfile != "" {
		cpu, err = os.Create(req.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("sim: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("sim: start cpu profile: %w", err)
		}
	}
	memPath := req.MemProfile
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("sim: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("sim: create mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("sim: write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
