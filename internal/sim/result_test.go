package sim

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("demo",
		Col("snr_db", "%.1f"),
		Col("rate", "%.3f"),
		VolatileCol("elapsed_ms", "%.1f"),
		Col("label", "%s"),
	)
	t.AddRow(10.0, 3.1415, 12.5, "plain")
	return t
}

func TestTableString(t *testing.T) {
	tab := sampleTable()
	s := tab.String()
	for _, want := range []string{"snr_db", "rate", "elapsed_ms", "3.142", "10.0", "plain", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
	if lines := strings.Count(s, "\n"); lines != 3 { // header, separator, one row
		t.Fatalf("table has %d lines:\n%s", lines, s)
	}
}

func TestTableShortRowRendersEmpty(t *testing.T) {
	tab := NewTable("", Col("a", "%d"), Col("b", "%d"))
	tab.AddRow(1)
	if got := tab.Cell(0, 1); got != "" {
		t.Fatalf("missing cell rendered %q", got)
	}
	if !strings.HasPrefix(tab.CSV(), "a,b\n1,\n") {
		t.Fatalf("csv wrong: %q", tab.CSV())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized row accepted")
		}
	}()
	tab.AddRow(1, 2, 3)
}

// TestTableCSVQuoting checks RFC 4180 escaping end to end: cells containing
// commas, quotes and newlines must round-trip exactly through a conforming
// CSV reader (encoding/csv).
func TestTableCSVQuoting(t *testing.T) {
	tab := NewTable("",
		Col("scenario", "%s"),
		Col("value", "%.2f"),
		Col("note", "%s"),
	)
	awkward := [][]any{
		{"plain", 1.0, "nothing special"},
		{"comma, separated", 2.0, `say "hello", twice`},
		{"multi\nline", 3.0, `quote at end"`},
		{`"fully quoted"`, 4.0, "trailing\r\nreturn"},
	}
	for _, row := range awkward {
		tab.AddRow(row...)
	}
	got := tab.CSV()

	records, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%s", err, got)
	}
	if len(records) != len(awkward)+1 {
		t.Fatalf("parsed %d records, want %d", len(records), len(awkward)+1)
	}
	// encoding/csv's reader normalizes \r\n to \n inside quoted cells, so
	// compare modulo that (the quoting itself is what is under test).
	norm := func(s string) string { return strings.ReplaceAll(s, "\r\n", "\n") }
	for i, row := range awkward {
		rec := records[i+1]
		if rec[0] != row[0].(string) || rec[2] != norm(row[2].(string)) {
			t.Fatalf("row %d did not round-trip: %q vs (%q, %q)", i, rec, row[0], row[2])
		}
	}
	// A quick literal check that quoting actually happened.
	if !strings.Contains(got, `"comma, separated"`) || !strings.Contains(got, `"say ""hello"", twice"`) {
		t.Fatalf("expected quoted cells in:\n%s", got)
	}
	// Plain numeric cells must stay unquoted.
	if !strings.Contains(got, "plain,1.00,nothing special\n") {
		t.Fatalf("plain row was altered:\n%s", got)
	}
}

func TestResultSinks(t *testing.T) {
	res := NewResult("demo")
	res.Notef("effective config: %d trials", 5)
	res.Add(sampleTable())

	var text strings.Builder
	if err := (TextSink{}).Emit(&text, res); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# effective config: 5 trials", "# demo", "snr_db"} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("text output missing %q:\n%s", want, text.String())
		}
	}

	var csvOut strings.Builder
	if err := (CSVSink{}).Emit(&csvOut, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut.String(), "snr_db,rate,elapsed_ms,label") {
		t.Fatalf("csv output missing header:\n%s", csvOut.String())
	}

	var jsonOut strings.Builder
	if err := (JSONSink{}).Emit(&jsonOut, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Scenario string   `json:"scenario"`
		Notes    []string `json:"notes"`
		Tables   []struct {
			Title   string `json:"title"`
			Columns []struct {
				Name     string `json:"name"`
				Volatile bool   `json:"volatile"`
			} `json:"columns"`
			Rows [][]any `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(jsonOut.String()), &decoded); err != nil {
		t.Fatalf("JSON sink emitted invalid JSON: %v\n%s", err, jsonOut.String())
	}
	if decoded.Scenario != "demo" || len(decoded.Tables) != 1 {
		t.Fatalf("decoded %+v", decoded)
	}
	tab := decoded.Tables[0]
	if len(tab.Columns) != 4 || tab.Columns[2].Name != "elapsed_ms" || !tab.Columns[2].Volatile {
		t.Fatalf("columns wrong: %+v", tab.Columns)
	}
	// JSON carries raw values, not formatted strings.
	if tab.Rows[0][1].(float64) != 3.1415 {
		t.Fatalf("JSON cell formatted, want raw value: %v", tab.Rows[0][1])
	}
}

// TestFingerprintExcludesVolatileColumns checks the determinism contract:
// two results differing only in volatile cells fingerprint identically,
// while any non-volatile difference shows.
func TestFingerprintExcludesVolatileColumns(t *testing.T) {
	build := func(elapsed, rate float64) *Result {
		res := NewResult("demo")
		tab := NewTable("t", Col("rate", "%.3f"), VolatileCol("elapsed_ms", "%.1f"))
		tab.AddRow(rate, elapsed)
		res.Add(tab)
		return res
	}
	if build(1, 3.0).Fingerprint() != build(99, 3.0).Fingerprint() {
		t.Fatal("volatile column leaked into fingerprint")
	}
	if build(1, 3.0).Fingerprint() == build(1, 3.5).Fingerprint() {
		t.Fatal("non-volatile difference not detected")
	}
}
