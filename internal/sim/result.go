package sim

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Column describes one column of a result table: its header name, the fmt
// verb text sinks render cells with, and whether the column is volatile.
type Column struct {
	// Name is the column header, e.g. "snr_db".
	Name string `json:"name"`
	// Format is the fmt verb used by the text and CSV sinks ("%.3f", "%d");
	// empty means "%v". The JSON sink always emits the raw value.
	Format string `json:"-"`
	// Volatile marks columns whose values depend on wall-clock time
	// (elapsed, speedup, throughput-per-second). Volatile cells are real
	// measurements — every sink renders them — but Result.Fingerprint
	// excludes them, so determinism tests compare only reproducible values.
	Volatile bool `json:"volatile,omitempty"`
}

// Col builds a regular column.
func Col(name, format string) Column { return Column{Name: name, Format: format} }

// VolatileCol builds a wall-clock-dependent column.
func VolatileCol(name, format string) Column {
	return Column{Name: name, Format: format, Volatile: true}
}

// Table is one structured result table: typed cells under a declared column
// schema. Sinks render it as aligned text, CSV or JSON.
type Table struct {
	// Title is an optional caption, rendered as a comment line by the text
	// sinks.
	Title   string
	Columns []Column
	Rows    [][]any
}

// NewTable creates a table with the given column schema.
func NewTable(title string, cols ...Column) *Table {
	return &Table{Title: title, Columns: cols}
}

// AddRow appends one row. Rows shorter than the schema render missing cells
// as empty; extra cells beyond the schema are rejected loudly since they
// would silently vanish from every sink.
func (t *Table) AddRow(cells ...any) {
	if len(cells) > len(t.Columns) {
		panic(fmt.Sprintf("sim: row with %d cells for %d columns in table %q",
			len(cells), len(t.Columns), t.Title))
	}
	t.Rows = append(t.Rows, cells)
}

// Cell renders the cell at (row, col) with its column format.
func (t *Table) Cell(row, col int) string {
	cells := t.Rows[row]
	if col >= len(cells) || cells[col] == nil {
		return ""
	}
	format := t.Columns[col].Format
	if format == "" {
		format = "%v"
	}
	return fmt.Sprintf(format, cells[col])
}

// String renders the table with aligned columns, matching the historical
// spinalsim output: a header row, a dashed separator, one line per row.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
	}
	rendered := make([][]string, len(t.Rows))
	for r := range t.Rows {
		cells := make([]string, len(t.Columns))
		for c := range t.Columns {
			cells[c] = t.Cell(r, c)
			if len(cells[c]) > widths[c] {
				widths[c] = len(cells[c])
			}
		}
		rendered[r] = cells
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
			if i != len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("\n")
	}
	header := make([]string, len(t.Columns))
	sep := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(header)
	writeRow(sep)
	for _, cells := range rendered {
		writeRow(cells)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells containing
// commas, double quotes, or line breaks are quoted, with embedded quotes
// doubled.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(csvEscape(c.Name))
	}
	b.WriteString("\n")
	for r := range t.Rows {
		for c := range t.Columns {
			if c > 0 {
				b.WriteString(",")
			}
			b.WriteString(csvEscape(t.Cell(r, c)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// csvEscape quotes a cell per RFC 4180 when it contains a comma, a double
// quote or a line break, doubling embedded quotes.
func csvEscape(cell string) string {
	if !strings.ContainsAny(cell, ",\"\r\n") {
		return cell
	}
	return `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
}

// MarshalJSON emits the table with its column schema and raw (unformatted)
// cell values, padding short rows with nulls so every row has one value per
// column.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := make([][]any, len(t.Rows))
	for r, cells := range t.Rows {
		row := make([]any, len(t.Columns))
		copy(row, cells)
		rows[r] = row
	}
	return json.Marshal(struct {
		Title   string   `json:"title,omitempty"`
		Columns []Column `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}{t.Title, t.Columns, rows})
}

// Result is the structured outcome of one scenario run.
type Result struct {
	// Scenario is the registry name of the scenario that produced this.
	Scenario string `json:"scenario"`
	// Notes are free-form context lines (effective configuration, caveats),
	// rendered as "# ..." comments by the text sinks.
	Notes []string `json:"notes,omitempty"`
	// Tables are the result tables, in presentation order.
	Tables []*Table `json:"tables"`
	// ElapsedMS is the wall-clock duration of the run, filled in by the
	// dispatcher. Volatile by nature.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

// NewResult creates an empty result for the named scenario.
func NewResult(scenario string) *Result { return &Result{Scenario: scenario} }

// Notef appends a formatted note line.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Add appends a table.
func (r *Result) Add(t *Table) { r.Tables = append(r.Tables, t) }

// Fingerprint renders every non-volatile cell of every table into one
// canonical string. Two runs of the same scenario are considered
// deterministic-equal iff their fingerprints match; volatile columns
// (wall-clock measurements) are excluded, notes are included.
func (r *Result) Fingerprint() string {
	var b strings.Builder
	b.WriteString(r.Scenario)
	b.WriteString("\n")
	for _, note := range r.Notes {
		b.WriteString("# ")
		b.WriteString(note)
		b.WriteString("\n")
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "table %q\n", t.Title)
		for _, c := range t.Columns {
			if c.Volatile {
				continue
			}
			b.WriteString(c.Name)
			b.WriteString(",")
		}
		b.WriteString("\n")
		for row := range t.Rows {
			for col, c := range t.Columns {
				if c.Volatile {
					continue
				}
				b.WriteString(t.Cell(row, col))
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
