package sim

import (
	"math"
	"testing"
)

func churnConfig(seed uint64) WorkloadConfig {
	return WorkloadConfig{
		Seed:     seed,
		Flows:    8,
		Messages: 400,
		Arrival:  "mmpp",
		Rate:     1,
		Burst:    6,
		Dwell:    25,
		Sizes: []SizeClass{
			{Bytes: 16, Weight: 3},
			{Bytes: 64, Weight: 1},
			{Bytes: 200, Weight: 0.5},
		},
		MeanOn:  40,
		MeanOff: 20,
	}
}

// TestWorkloadDeterministic pins that a workload trace is a pure function of
// its config: same config ⇒ identical events, different seed ⇒ a different
// trace.
func TestWorkloadDeterministic(t *testing.T) {
	a, err := GenerateWorkload(churnConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(churnConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between identical configs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := GenerateWorkload(churnConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestWorkloadShape sanity-checks the trace: time increases, flow/msg ids
// are well formed and per-flow message numbers are dense, sizes come from
// the mix, and the churn actually spreads load across multiple flows.
func TestWorkloadShape(t *testing.T) {
	cfg := churnConfig(3)
	events, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != cfg.Messages {
		t.Fatalf("generated %d events, want %d", len(events), cfg.Messages)
	}
	sizes := map[int]bool{}
	for _, s := range cfg.Sizes {
		sizes[s.Bytes] = true
	}
	last := 0.0
	nextMsg := map[uint32]uint32{}
	flowsSeen := map[uint32]bool{}
	for i, e := range events {
		if e.At < last || math.IsNaN(e.At) {
			t.Fatalf("event %d: time went backwards (%v after %v)", i, e.At, last)
		}
		last = e.At
		if e.Flow < 1 || int(e.Flow) > cfg.Flows {
			t.Fatalf("event %d: flow %d out of range", i, e.Flow)
		}
		if e.Msg != nextMsg[e.Flow]+1 {
			t.Fatalf("event %d: flow %d msg %d not dense (prev %d)", i, e.Flow, e.Msg, nextMsg[e.Flow])
		}
		nextMsg[e.Flow] = e.Msg
		if !sizes[e.Size] {
			t.Fatalf("event %d: size %d not in the mix", i, e.Size)
		}
		flowsSeen[e.Flow] = true
	}
	if len(flowsSeen) < 2 {
		t.Fatalf("only %d flows ever sent; churn is not spreading load", len(flowsSeen))
	}
	if events[0].Seed(99, 0) == events[0].Seed(99, 1) {
		t.Fatal("event seeds do not depend on the index")
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{},
		{Flows: 1, Messages: 1, Rate: 0, Sizes: []SizeClass{{16, 1}}},
		{Flows: 1, Messages: 1, Rate: 1},
		{Flows: 1, Messages: 1, Rate: 1, Sizes: []SizeClass{{0, 1}}},
		{Flows: 1, Messages: 1, Rate: 1, Sizes: []SizeClass{{16, 1}}, Arrival: "weird"},
		{Flows: 1, Messages: 1, Rate: 1, Sizes: []SizeClass{{16, 1}}, Arrival: "mmpp"},
	}
	for i, cfg := range bad {
		if _, err := GenerateWorkload(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	// Poisson without churn is the simplest valid config.
	events, err := GenerateWorkload(WorkloadConfig{
		Flows: 2, Messages: 10, Rate: 1, Sizes: []SizeClass{{Bytes: 16, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d events", len(events))
	}
}
