package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Sink renders a scenario result to a writer. The three implementations
// cover the historical spinalsim output modes (aligned text, CSV) plus the
// machine-readable JSON mode.
type Sink interface {
	Emit(w io.Writer, res *Result) error
}

// TextSink renders notes as comment lines and tables as aligned columns —
// the default spinalsim output.
type TextSink struct{}

// Emit implements Sink.
func (TextSink) Emit(w io.Writer, res *Result) error {
	for _, note := range res.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	for i, t := range res.Tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if t.Title != "" {
			if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}

// CSVSink renders tables as RFC 4180 CSV, with notes and titles as "# "
// comment lines between them.
type CSVSink struct{}

// Emit implements Sink.
func (CSVSink) Emit(w io.Writer, res *Result) error {
	for _, note := range res.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", note); err != nil {
			return err
		}
	}
	for i, t := range res.Tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if t.Title != "" {
			if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, t.CSV()); err != nil {
			return err
		}
	}
	return nil
}

// JSONSink renders the whole result as one indented JSON object with raw
// (unformatted) cell values — `spinalsim -json`, built for piping into jq.
type JSONSink struct{}

// Emit implements Sink.
func (JSONSink) Emit(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
