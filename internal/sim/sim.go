// Package sim is the unified experiment engine of the repository: a
// declarative registry of simulation scenarios, a sharded trial runner with
// deterministic per-trial seeding, and a structured result model rendered by
// pluggable sinks (aligned text, RFC 4180 CSV, JSON).
//
// Every experiment in internal/experiments registers a Scenario here; the
// spinalsim command dispatches purely through the registry (`-exp list`
// enumerates it), so adding an experiment means registering one Scenario —
// no new flag plumbing, no new trial loop, no new output code.
//
// The runner's guarantee mirrors the decoder's: results are bit-identical at
// any worker count. Trials derive their randomness from the trial index (not
// from goroutine scheduling), land in a slice indexed by trial, and are
// folded into statistics in trial order.
package sim

// Request carries the generic experiment knobs the spinalsim command exposes
// as flags. Scenarios read the knobs they declare in Scenario.Flags and
// apply their own defaults for the rest; zero values mean "scenario
// default" throughout, except for SNR, where zero is a meaningful operating
// point. Library callers wanting the flag defaults should start from
// DefaultRequest rather than a zero Request.
type Request struct {
	// SNRs is the resolved -snr-min/-snr-max/-snr-step sweep in dB.
	SNRs []float64
	// SNR is the single operating point (-snr) used by sweeps over a
	// non-SNR axis (beam width, ADC bits, flows). Unlike the other knobs,
	// zero is honored as a real 0 dB operating point — the canonical
	// low-SNR setting — not remapped to a default.
	SNR float64
	// Trials is the number of messages per spinal data point (-trials).
	Trials int
	// Frames is the number of frames per fixed-rate baseline point (-frames).
	Frames int
	// Beam is the decoder beam width B (-beam).
	Beam int
	// K is the number of message bits per spine segment (-k).
	K int
	// C is the number of coded bits per I/Q dimension (-c).
	C int
	// MessageBits is the message length (-m).
	MessageBits int
	// ADCBits is the receiver quantizer resolution (-adc).
	ADCBits int
	// Seed overrides the experiment seed; zero keeps each scenario's default.
	Seed uint64
	// Mapper names the constellation mapping (-mapper).
	Mapper string
	// Schedule names the transmission schedule (-schedule).
	Schedule string
	// Workers is the decoder's per-level parallelism (-workers); zero means
	// each experiment's automatic choice. Results are bit-identical at any
	// setting.
	Workers int
	// TrialWorkers is the trial runner's worker-pool size (-trial-workers);
	// zero means GOMAXPROCS. Results are bit-identical at any setting.
	TrialWorkers int
	// Short asks the scenario for its abbreviated configuration (-short):
	// fewer flows/messages/rounds, tuned so CI smoke jobs finish quickly.
	// Scenarios that declare the flag scale down; the rest ignore it.
	Short bool
	// Metric names the decoder cost metric (-metric): "float64" (default)
	// or "int32" (core.ParseCostMetric spellings). Scenarios that declare
	// the flag pass it to their decoders; the rest ignore it.
	Metric string
	// Search names the decoder search strategy (-search): "exact"
	// (default), "gap[:G]", "lookahead[:M]" or "approx"
	// (core.ParseSearchConfig spellings). Scenarios that declare the flag
	// pass it to their decoders; the rest ignore it.
	Search string
	// Impair is an impairment-pipeline spec (-impair) in the
	// internal/impair syntax: stages joined by '|', e.g.
	// "ge(good=16,bad=3)|spike(prob=0.02,db=-3)", or the JSON form.
	// Scenarios that declare the flag build their channel stack from it;
	// empty keeps each scenario's default stack.
	Impair string
	// CPUProfile and MemProfile are file paths for pprof output
	// (-cpuprofile/-memprofile); empty disables. The profiles cover the
	// scenario run, not flag parsing or output rendering — see Profile.
	CPUProfile string
	MemProfile string
}

// DefaultRequest returns the knob values the spinalsim flags default to, so
// tests and library callers can run scenarios without replicating the flag
// definitions.
func DefaultRequest() Request {
	var snrs []float64
	for v := -10.0; v <= 40; v += 5 {
		snrs = append(snrs, v)
	}
	return Request{
		SNRs:        snrs,
		SNR:         10,
		Trials:      100,
		Frames:      60,
		Beam:        16,
		K:           8,
		C:           10,
		MessageBits: 24,
		ADCBits:     14,
		Mapper:      "linear",
		Schedule:    "striped",
	}
}
