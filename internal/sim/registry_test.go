package sim

import (
	"reflect"
	"testing"
)

// The registry is global; tests register under names no real scenario uses.

func testScenario(name string) Scenario {
	return Scenario{
		Name:        name,
		Description: "test scenario",
		Flags:       []string{"trials"},
		Run:         func(req Request) (*Result, error) { return NewResult(name), nil },
	}
}

func TestRegisterLookupAndNames(t *testing.T) {
	Register(testScenario("zz-test-b"))
	Register(testScenario("zz-test-a"))

	if _, ok := Lookup("zz-test-a"); !ok {
		t.Fatal("registered scenario not found")
	}
	if _, ok := Lookup("zz-test-missing"); ok {
		t.Fatal("lookup invented a scenario")
	}
	names := Names()
	idxA, idxB := -1, -1
	for i, n := range names {
		if n == "zz-test-a" {
			idxA = i
		}
		if n == "zz-test-b" {
			idxB = i
		}
	}
	if idxA == -1 || idxB == -1 || idxA > idxB {
		t.Fatalf("names not sorted or missing: %v", names)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	Register(testScenario("zz-test-a"))
}

func TestRegisterRejectsIncomplete(t *testing.T) {
	for _, s := range []Scenario{
		{Name: "", Run: func(Request) (*Result, error) { return nil, nil }},
		{Name: "zz-test-norun"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("incomplete scenario %+v accepted", s)
				}
			}()
			Register(s)
		}()
	}
}

func TestSuggest(t *testing.T) {
	Register(testScenario("zz-multiflow"))
	Register(testScenario("zz-fountain"))

	if got := Suggest("zz-multifow"); len(got) == 0 || got[0] != "zz-multiflow" {
		t.Fatalf("Suggest(zz-multifow) = %v", got)
	}
	// Substring matches count too. (The query must stay distinctive: the
	// whole test binary shares one registry with the real scenarios.)
	if got := Suggest("zz-fount"); len(got) == 0 || got[0] != "zz-fountain" {
		t.Fatalf("Suggest(zz-fount) = %v", got)
	}
	if got := Suggest("qqqqqqqqqqqq"); len(got) != 0 {
		t.Fatalf("Suggest(garbage) = %v, want none", got)
	}
	if got := Suggest("zz-multiflow"); len(got) == 0 {
		t.Fatal("exact name should still suggest itself (case of typoed flags)")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"spinal", "spinal", 0},
		{"harq", "hark", 1},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Fatalf("editDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDefaultRequest(t *testing.T) {
	req := DefaultRequest()
	if req.Trials != 100 || req.Beam != 16 || req.K != 8 || req.MessageBits != 24 {
		t.Fatalf("defaults drifted: %+v", req)
	}
	wantSNRs := []float64{-10, -5, 0, 5, 10, 15, 20, 25, 30, 35, 40}
	if !reflect.DeepEqual(req.SNRs, wantSNRs) {
		t.Fatalf("default sweep = %v", req.SNRs)
	}
}
