package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningMeanVariance(t *testing.T) {
	var r Running
	samples := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, s := range samples {
		r.Add(s)
	}
	if r.N() != len(samples) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", r.Variance(), 32.0/7)
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Fatal("empty Running should report zeros")
	}
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Variance() != 0 {
		t.Fatal("single-sample Running misbehaves")
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	prop := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		// Clamp pathological values that a direct two-pass computation also
		// cannot handle exactly.
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				v = math.Mod(v, 1000)
				if math.IsNaN(v) {
					v = 0
				}
			}
			xs = append(xs, v)
		}
		var r Running
		var sum float64
		for _, x := range xs {
			r.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(xs)-1)
		return math.Abs(r.Mean()-mean) < 1e-6 && math.Abs(r.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConf95Shrinks(t *testing.T) {
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.Conf95() >= small.Conf95() {
		t.Fatalf("confidence interval did not shrink: %v vs %v", large.Conf95(), small.Conf95())
	}
}

func TestRateMeter(t *testing.T) {
	var m RateMeter
	if m.Rate() != 0 {
		t.Fatal("empty RateMeter should report rate 0")
	}
	m.Record(24, 3) // 8 bits/symbol
	m.Record(24, 6) // 4 bits/symbol
	if m.Messages() != 2 {
		t.Fatalf("Messages = %d", m.Messages())
	}
	// Aggregate rate is total bits / total symbols = 48/9.
	if math.Abs(m.Rate()-48.0/9) > 1e-12 {
		t.Fatalf("Rate = %v, want %v", m.Rate(), 48.0/9)
	}
	// Per-message mean is (8+4)/2 = 6.
	if math.Abs(m.PerMessage().Mean()-6) > 1e-12 {
		t.Fatalf("per-message mean = %v", m.PerMessage().Mean())
	}
}

func TestErrorCounter(t *testing.T) {
	var e ErrorCounter
	ref := []byte{0, 1, 1, 0, 1, 0, 0, 1}
	if err := e.RecordFrame(ref, ref); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ref...)
	bad[2] ^= 1
	bad[5] ^= 1
	if err := e.RecordFrame(bad, ref); err != nil {
		t.Fatal(err)
	}
	if e.Frames() != 2 {
		t.Fatalf("Frames = %d", e.Frames())
	}
	if math.Abs(e.BER()-2.0/16) > 1e-12 {
		t.Fatalf("BER = %v, want 0.125", e.BER())
	}
	if math.Abs(e.FER()-0.5) > 1e-12 {
		t.Fatalf("FER = %v, want 0.5", e.FER())
	}
	if err := e.RecordFrame([]byte{1}, ref); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestErrorCounterFrameResult(t *testing.T) {
	var e ErrorCounter
	e.RecordFrameResult(true, 100)
	e.RecordFrameResult(false, 100)
	if e.FER() != 0.5 {
		t.Fatalf("FER = %v", e.FER())
	}
	if e.Frames() != 2 {
		t.Fatalf("Frames = %v", e.Frames())
	}
}

func TestEmptyErrorCounter(t *testing.T) {
	var e ErrorCounter
	if e.BER() != 0 || e.FER() != 0 {
		t.Fatal("empty counter should report zero rates")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0, 1, 2.5, 5, 9.99, 10, -1, 11} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Outside() != 2 {
		t.Fatalf("Outside = %d", h.Outside())
	}
	counts := h.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("in-range count = %d, want 6", total)
	}
	// The value exactly at the upper edge lands in the last bin.
	if counts[4] < 2 {
		t.Fatalf("upper-edge values not in last bin: %v", counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("0-bin histogram accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty-range histogram accepted")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	med, err := Quantile(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if med != 3 {
		t.Fatalf("median = %v", med)
	}
	lo, _ := Quantile(s, 0)
	hi, _ := Quantile(s, 1)
	if lo != 1 || hi != 5 {
		t.Fatalf("extremes = %v %v", lo, hi)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Quantile(s, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
	// Input must not be reordered.
	if s[0] != 5 || s[4] != 4 {
		t.Error("Quantile mutated its input")
	}
}
