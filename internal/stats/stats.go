// Package stats provides the estimators used by the experiment harness: running
// mean/variance (Welford), confidence intervals, rate meters that convert
// (message bits, symbols sent) into bits/symbol, bit- and frame-error
// counters, and simple histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 samples and reports mean, variance
// and confidence intervals without storing the samples (Welford's method).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of samples seen.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 if no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Conf95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean.
func (r *Running) Conf95() float64 { return 1.96 * r.StdErr() }

// RateMeter accumulates (message bits, channel uses) pairs and reports the
// aggregate rate in bits per symbol, which is how Figure 2's y-axis is
// defined: total bits delivered divided by total symbols transmitted.
type RateMeter struct {
	bits    float64
	symbols float64
	perMsg  Running
}

// Record adds one decoded message of the given size that required the given
// number of channel uses (symbols for AWGN, coded bits for BSC).
func (m *RateMeter) Record(messageBits, channelUses int) {
	m.bits += float64(messageBits)
	m.symbols += float64(channelUses)
	if channelUses > 0 {
		m.perMsg.Add(float64(messageBits) / float64(channelUses))
	}
}

// Rate returns the aggregate rate in bits per channel use.
func (m *RateMeter) Rate() float64 {
	if m.symbols == 0 {
		return 0
	}
	return m.bits / m.symbols
}

// Messages returns the number of recorded messages.
func (m *RateMeter) Messages() int { return m.perMsg.N() }

// PerMessage returns the running statistics of per-message rates, which is
// useful for confidence intervals on the sweep points.
func (m *RateMeter) PerMessage() *Running { return &m.perMsg }

// ErrorCounter tracks bit and frame errors for fixed-rate baselines.
type ErrorCounter struct {
	bitErrors   int
	bitsTotal   int
	frameErrors int
	frames      int
}

// RecordFrame compares a decoded bit slice against the reference and updates
// the counters. The slices must be the same length.
func (e *ErrorCounter) RecordFrame(decoded, reference []byte) error {
	if len(decoded) != len(reference) {
		return fmt.Errorf("stats: length mismatch %d vs %d", len(decoded), len(reference))
	}
	errs := 0
	for i := range decoded {
		if decoded[i] != reference[i] {
			errs++
		}
	}
	e.bitErrors += errs
	e.bitsTotal += len(decoded)
	e.frames++
	if errs > 0 {
		e.frameErrors++
	}
	return nil
}

// RecordFrameResult updates the frame counters from a boolean outcome without
// bit-level accounting.
func (e *ErrorCounter) RecordFrameResult(ok bool, frameBits int) {
	e.frames++
	e.bitsTotal += frameBits
	if !ok {
		e.frameErrors++
		e.bitErrors += frameBits / 2 // conventional "half the bits wrong" proxy
	}
}

// BER returns the bit error rate.
func (e *ErrorCounter) BER() float64 {
	if e.bitsTotal == 0 {
		return 0
	}
	return float64(e.bitErrors) / float64(e.bitsTotal)
}

// FER returns the frame error rate.
func (e *ErrorCounter) FER() float64 {
	if e.frames == 0 {
		return 0
	}
	return float64(e.frameErrors) / float64(e.frames)
}

// Frames returns the number of frames recorded.
func (e *ErrorCounter) Frames() int { return e.frames }

// Histogram is a fixed-bin histogram over a closed interval.
type Histogram struct {
	lo, hi  float64
	bins    []int
	outside int
	n       int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// spanning [lo, hi].
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v] is empty", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	if x < h.lo || x > h.hi {
		h.outside++
		return
	}
	idx := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if idx == len(h.bins) {
		idx--
	}
	h.bins[idx]++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.bins))
	copy(out, h.bins)
	return out
}

// Outside returns how many observations fell outside [lo, hi].
func (h *Histogram) Outside() int { return h.outside }

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Quantile returns the q-th quantile (0 <= q <= 1) of a sample slice using
// linear interpolation. The input is not modified.
func Quantile(samples []float64, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile fraction %v out of [0,1]", q)
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}
