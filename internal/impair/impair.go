// Package impair is the composable impairment pipeline: a vocabulary of
// symbol-block impairment stages (fixed and trace-driven noise,
// Gilbert-Elliott gating, Doppler/Rayleigh fading, Markov-arrival
// interference spikes, SNR ramps and steps, per-block erasures) chained into
// one deterministic channel. Real links never present one clean textbook
// model — they stack fading under burst interference under slow drift — and
// the paper's case for rateless codes is exactly that the code should not
// need to know which stack it is facing.
//
// A Pipeline implements both the facade block-channel contract
// (CorruptBlock/NoiseVariance/Name, so it drops into spinal.Code.TransmitOver
// and the genie experiments) and the scalar channel.SymbolChannel contract
// (Corrupt, so it drops under the link engine as a receiver radio or an
// EncodeFrames corruptor). Stacks are described declaratively by a Spec — a
// flag-parsable string like "ge(good=16,bad=3)|spike(prob=0.02,db=-3)" or the
// equivalent JSON — and built with per-stage seeds derived from one base
// seed, so the same spec and seed reproduce byte-identical noise streams
// regardless of where the stack runs.
package impair

import (
	"fmt"
	"strings"

	"spinal/internal/fading"
	"spinal/internal/mathx"
	"spinal/internal/rng"
)

// Stage is one link in an impairment pipeline. A stage transforms a block of
// symbols in transmission order, advancing its internal state (noise stream,
// Markov chain, symbol position) by one step per symbol, so block boundaries
// never affect the stream: corrupting one block of 2n symbols equals
// corrupting two blocks of n.
type Stage interface {
	// Apply writes the impaired value of src[i] into dst[i]. dst and src
	// have equal length and may alias.
	Apply(dst, src []complex128)
	// Variance reports the additive complex noise variance the stage will
	// apply to the next symbol (zero for stages that transform or erase
	// rather than add Gaussian noise).
	Variance() float64
	// Name identifies the stage in experiment output.
	Name() string
}

// Pipeline chains stages in order: the output block of stage i is the input
// of stage i+1, so additive stages stack their noise and an erasure stage
// wipes whatever the stages before it produced. The zero-stage pipeline is
// the identity channel.
type Pipeline struct {
	stages []Stage
}

// NewPipeline chains the given stages. Most callers build pipelines from a
// Spec (see Spec.Build), which also derives the per-stage seeds.
func NewPipeline(stages ...Stage) *Pipeline {
	return &Pipeline{stages: stages}
}

// Stages returns the pipeline's stages in order.
func (p *Pipeline) Stages() []Stage { return p.stages }

// CorruptBlock implements the block-channel contract shared by
// internal/channel and the spinal.Channel facade.
func (p *Pipeline) CorruptBlock(dst, src []complex128) {
	if len(p.stages) == 0 {
		copy(dst, src)
		return
	}
	p.stages[0].Apply(dst, src)
	for _, s := range p.stages[1:] {
		s.Apply(dst, dst)
	}
}

// Corrupt implements channel.SymbolChannel, consuming the pipeline's streams
// exactly as a length-one block would.
func (p *Pipeline) Corrupt(x complex128) complex128 {
	var buf [1]complex128
	buf[0] = x
	p.CorruptBlock(buf[:], buf[:])
	return buf[0]
}

// NoiseVariance reports the total additive noise variance around the
// pipeline's current state: the sum of every stage's instantaneous variance.
// This is the (stale the moment conditions shift) estimate a fixed-rate
// receiver would demodulate with.
func (p *Pipeline) NoiseVariance() float64 {
	var v float64
	for _, s := range p.stages {
		v += s.Variance()
	}
	return v
}

// Name identifies the stack in experiment output.
func (p *Pipeline) Name() string {
	if len(p.stages) == 0 {
		return "identity"
	}
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name()
	}
	return strings.Join(names, "|")
}

// stageSeed derives a stage's seed from the pipeline's base seed, the stage
// name (folded FNV-style) and the stage's occurrence count among same-named
// stages (mixed with the splitmix64 increment, the repo's per-trial idiom).
// Seeding by name rather than position couples ablations: a stage faces the
// identical fault schedule whether it runs alone or anywhere inside a stack,
// so removing the other stages isolates exactly their contribution.
func stageSeed(seed uint64, occurrence int, name string) uint64 {
	h := seed ^ (0x9e3779b97f4a7c15 * uint64(occurrence+1))
	for _, c := range name {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

// noiseStage adds complex Gaussian noise whose variance is a function of the
// symbol index — the shared implementation of every additive stage (fixed
// AWGN, trace-driven fading, ramps and steps).
type noiseStage struct {
	name   string
	sigma2 func(i int) float64
	src    *rng.Rand
	pos    int
}

func (s *noiseStage) Apply(dst, src []complex128) {
	for i, x := range src {
		dst[i] = x + s.src.ComplexNormal(s.sigma2(s.pos))
		s.pos++
	}
}

func (s *noiseStage) Variance() float64 { return s.sigma2(s.pos) }
func (s *noiseStage) Name() string      { return s.name }

// snrNoise builds an additive stage from an SNR-in-dB profile.
func snrNoise(name string, seed uint64, snrdB func(i int) float64) *noiseStage {
	return &noiseStage{
		name:   name,
		src:    rng.New(seed),
		sigma2: func(i int) float64 { return 1 / mathx.DBToLinear(snrdB(i)) },
	}
}

// traceNoise builds an additive stage that follows a fading trace. The noise
// stream and the trace's own randomness derive from distinct sub-seeds so the
// trace shape does not depend on how many symbols have been corrupted.
func traceNoise(name string, seed uint64, trace fading.Trace) *noiseStage {
	return snrNoise(name, seed^0xa54ff53a5f1d36f1, trace.SNRdB)
}

// spikeStage adds strong interference in bursts with Markov arrivals: each
// symbol, an idle stage enters a spike with probability prob, and an active
// spike ends with probability 1/dwell (geometric dwell times). During a
// spike the stage adds noise at the configured signal-to-interference ratio,
// modelling a co-channel transmitter keying on and off.
type spikeStage struct {
	name   string
	prob   float64 // per-symbol arrival probability
	endP   float64 // per-symbol departure probability (1/dwell)
	sigma2 float64 // interference variance while active
	src    *rng.Rand
	active bool
}

func (s *spikeStage) Apply(dst, src []complex128) {
	for i, x := range src {
		if s.active {
			if s.src.Bernoulli(s.endP) {
				s.active = false
			}
		} else if s.src.Bernoulli(s.prob) {
			s.active = true
		}
		if s.active {
			dst[i] = x + s.src.ComplexNormal(s.sigma2)
		} else {
			dst[i] = x
		}
	}
}

func (s *spikeStage) Variance() float64 {
	if s.active {
		return s.sigma2
	}
	return 0
}

func (s *spikeStage) Name() string { return s.name }

// eraseStage wipes whole blocks of symbols: with probability p, a block of
// blockLen symbols is replaced by unit-variance noise — the channel output
// when the signal is simply gone (a deep fade, a blanked slot), which is how
// erasures look to a soft-input decoder that has no erasure flag.
type eraseStage struct {
	name     string
	p        float64
	blockLen int
	src      *rng.Rand
	pos      int
	erasing  bool
}

func (s *eraseStage) Apply(dst, src []complex128) {
	for i, x := range src {
		if s.pos%s.blockLen == 0 {
			s.erasing = s.src.Bernoulli(s.p)
		}
		if s.erasing {
			dst[i] = s.src.ComplexNormal(1)
		} else {
			dst[i] = x
		}
		s.pos++
	}
}

func (s *eraseStage) Variance() float64 { return 0 }
func (s *eraseStage) Name() string      { return s.name }

// buildStage constructs one stage from its spec and derived seed. The stage
// vocabulary (see the package comment in spec.go for argument details):
//
//	awgn     fixed additive noise
//	ge       Gilbert-Elliott two-level SNR gating
//	rayleigh Rayleigh block fading
//	doppler  Jakes sum-of-sinusoids fading
//	walk     bounded random walk in dB
//	ramp     linear SNR ramp
//	step     SNR step change
//	spike    Markov-arrival interference bursts
//	erase    per-block erasures
func buildStage(sp StageSpec, seed uint64) (Stage, error) {
	a := args{stage: sp.Stage, m: sp.Args}
	var st Stage
	switch sp.Stage {
	case "awgn":
		snr := a.get("snr", 10)
		st = snrNoise(fmt.Sprintf("awgn(snr=%g)", snr), seed, func(int) float64 { return snr })
	case "ge":
		good := a.get("good", 15)
		bad := a.get("bad", 0)
		dgood := int(a.get("dgood", 300))
		dbad := int(a.get("dbad", 100))
		tr, err := fading.NewGilbertElliott(good, bad, dgood, dbad, seed^0x1f83d9abfb41bd6b)
		if err != nil {
			return nil, err
		}
		st = traceNoise(fmt.Sprintf("ge(good=%g,bad=%g,dgood=%d,dbad=%d)", good, bad, dgood, dbad), seed, tr)
	case "rayleigh":
		avg := a.get("avg", 15)
		tc := int(a.get("tc", 64))
		tr, err := fading.NewRayleighBlock(avg, tc, seed^0x1f83d9abfb41bd6b)
		if err != nil {
			return nil, err
		}
		st = traceNoise(fmt.Sprintf("rayleigh(avg=%g,tc=%d)", avg, tc), seed, tr)
	case "doppler":
		avg := a.get("avg", 15)
		fd := a.get("fd", 0.01)
		tr, err := fading.NewDoppler(avg, fd, seed^0x1f83d9abfb41bd6b)
		if err != nil {
			return nil, err
		}
		st = traceNoise(fmt.Sprintf("doppler(avg=%g,fd=%g)", avg, fd), seed, tr)
	case "walk":
		lo := a.get("min", 0)
		hi := a.get("max", 20)
		step := a.get("step", 0.5)
		tr, err := fading.NewWalk(lo, hi, step, seed^0x1f83d9abfb41bd6b)
		if err != nil {
			return nil, err
		}
		st = traceNoise(fmt.Sprintf("walk(min=%g,max=%g,step=%g)", lo, hi, step), seed, tr)
	case "ramp":
		from := a.get("from", 20)
		to := a.get("to", 5)
		over := int(a.get("over", 5000))
		if over < 1 {
			return nil, fmt.Errorf("impair: ramp over=%d must be at least one symbol", over)
		}
		st = snrNoise(fmt.Sprintf("ramp(from=%g,to=%g,over=%d)", from, to, over), seed,
			func(i int) float64 {
				if i >= over {
					return to
				}
				return from + (to-from)*float64(i)/float64(over)
			})
	case "step":
		from := a.get("from", 20)
		to := a.get("to", 5)
		at := int(a.get("at", 2500))
		st = snrNoise(fmt.Sprintf("step(from=%g,to=%g,at=%d)", from, to, at), seed,
			func(i int) float64 {
				if i < at {
					return from
				}
				return to
			})
	case "spike":
		prob := a.get("prob", 0.01)
		dwell := a.get("dwell", 20)
		db := a.get("db", 0) // signal-to-interference ratio while spiking
		if prob < 0 || prob > 1 {
			return nil, fmt.Errorf("impair: spike prob=%g out of [0,1]", prob)
		}
		if dwell < 1 {
			return nil, fmt.Errorf("impair: spike dwell=%g must be at least one symbol", dwell)
		}
		st = &spikeStage{
			name:   fmt.Sprintf("spike(prob=%g,dwell=%g,db=%g)", prob, dwell, db),
			prob:   prob,
			endP:   1 / dwell,
			sigma2: 1 / mathx.DBToLinear(db),
			src:    rng.New(seed),
		}
	case "erase":
		p := a.get("p", 0.01)
		blockLen := int(a.get("block", 16))
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("impair: erase p=%g out of [0,1]", p)
		}
		if blockLen < 1 {
			return nil, fmt.Errorf("impair: erase block=%d must be at least one symbol", blockLen)
		}
		st = &eraseStage{
			name:     fmt.Sprintf("erase(p=%g,block=%d)", p, blockLen),
			p:        p,
			blockLen: blockLen,
			src:      rng.New(seed),
		}
	default:
		return nil, fmt.Errorf("impair: unknown stage %q", sp.Stage)
	}
	if err := a.err(); err != nil {
		return nil, err
	}
	return st, nil
}

// args validates a stage's argument map: get consumes known keys and err
// reports any the stage did not recognize, so typos fail loudly instead of
// silently selecting defaults.
type args struct {
	stage string
	m     map[string]float64
	used  []string
}

func (a *args) get(key string, def float64) float64 {
	a.used = append(a.used, key)
	if v, ok := a.m[key]; ok {
		return v
	}
	return def
}

func (a *args) err() error {
	for k := range a.m {
		known := false
		for _, u := range a.used {
			if k == u {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("impair: stage %q has no argument %q", a.stage, k)
		}
	}
	return nil
}
