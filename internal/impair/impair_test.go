package impair

import (
	"encoding/json"
	"math/cmplx"
	"testing"

	"spinal/internal/link"
)

// stackSpec is a representative three-stage stack exercising trace gating,
// Markov interference and block erasures at once.
const stackSpec = "ge(good=16,bad=3,dgood=200,dbad=60)|spike(prob=0.05,dwell=10,db=-3)|erase(p=0.05,block=8)"

func testInput(n int) []complex128 {
	xs := make([]complex128, n)
	for i := range xs {
		// A fixed deterministic constellation-ish input; values themselves
		// don't matter, only that they are reproducible.
		xs[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	return xs
}

func corruptAll(t *testing.T, spec string, seed uint64, n, blockLen int) []complex128 {
	t.Helper()
	s, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	p, err := s.Build(seed)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	src := testInput(n)
	dst := make([]complex128, n)
	for off := 0; off < n; off += blockLen {
		end := off + blockLen
		if end > n {
			end = n
		}
		p.CorruptBlock(dst[off:end], src[off:end])
	}
	return dst
}

// TestSameSpecSeedIdenticalBlocks pins the determinism contract: the same
// spec and seed reproduce byte-identical corrupted blocks, and block
// boundaries do not perturb the stream (one big block equals many small
// ones, equals symbol-at-a-time scalar Corrupt).
func TestSameSpecSeedIdenticalBlocks(t *testing.T) {
	const n = 512
	a := corruptAll(t, stackSpec, 42, n, n)
	b := corruptAll(t, stackSpec, 42, n, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("symbol %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}

	c := corruptAll(t, stackSpec, 42, n, 64)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("symbol %d depends on block boundaries: %v vs %v", i, a[i], c[i])
		}
	}

	s, _ := Parse(stackSpec)
	p, err := s.Build(42)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	src := testInput(n)
	for i := range src {
		got := p.Corrupt(src[i])
		if got != a[i] {
			t.Fatalf("scalar Corrupt diverges from CorruptBlock at symbol %d: %v vs %v", i, got, a[i])
		}
	}
}

// TestSeedAndOrderChangeStream pins the other half of the contract: a
// different seed, or the same stages in a different order, must change the
// noise stream.
func TestSeedAndOrderChangeStream(t *testing.T) {
	const n = 256
	a := corruptAll(t, stackSpec, 42, n, n)
	b := corruptAll(t, stackSpec, 43, n, n)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical streams")
	}

	reordered := "erase(p=0.05,block=8)|spike(prob=0.05,dwell=10,db=-3)|ge(good=16,bad=3,dgood=200,dbad=60)"
	c := corruptAll(t, reordered, 42, n, n)
	diff = 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("reordering stages did not change the stream")
	}
}

// TestIdentityPipeline: the zero-stage pipeline passes symbols through.
func TestIdentityPipeline(t *testing.T) {
	p := NewPipeline()
	src := testInput(16)
	dst := make([]complex128, 16)
	p.CorruptBlock(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("identity pipeline altered symbol %d", i)
		}
	}
	if p.NoiseVariance() != 0 {
		t.Fatalf("identity variance = %v, want 0", p.NoiseVariance())
	}
	if p.Name() != "identity" {
		t.Fatalf("identity name = %q", p.Name())
	}
}

// TestStageVocabulary builds every stage with defaults and checks the output
// is finite and the stage reports a sensible variance.
func TestStageVocabulary(t *testing.T) {
	for _, name := range []string{"awgn", "ge", "rayleigh", "doppler", "walk", "ramp", "step", "spike", "erase"} {
		s, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		p, err := s.Build(7)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		src := testInput(128)
		dst := make([]complex128, 128)
		p.CorruptBlock(dst, src)
		for i, v := range dst {
			if cmplx.IsNaN(v) || cmplx.IsInf(v) {
				t.Fatalf("stage %q produced non-finite symbol %d: %v", name, i, v)
			}
		}
		if v := p.NoiseVariance(); v < 0 {
			t.Fatalf("stage %q variance %v < 0", name, v)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"nosuchstage",
		"awgn(snr=10,extra=1)",
		"awgn(snr)",
		"awgn(snr=abc)",
		"awgn(snr=1|ge",
		"|awgn",
		"awgn||ge",
		"spike(prob=2)",
		"erase(block=0)",
		"ramp(over=0)",
		"ge(dgood=0)",
		"doppler(fd=0.9)",
		"AWGN",
	}
	for _, s := range bad {
		spec, err := Parse(s)
		if err != nil {
			continue
		}
		if _, err := spec.Build(1); err == nil {
			t.Fatalf("spec %q built without error", s)
		}
	}
}

// TestSpecRoundTrip: String() is a fixed point of Parse, and the JSON form
// builds the same pipeline as the string form.
func TestSpecRoundTrip(t *testing.T) {
	s, err := Parse(stackSpec)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	canon := s.String()
	s2, err := Parse(canon)
	if err != nil {
		t.Fatalf("Parse(String()): %v", err)
	}
	if s2.String() != canon {
		t.Fatalf("String not a fixed point: %q vs %q", s2.String(), canon)
	}

	js, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	s3, err := ParseAny(string(js))
	if err != nil {
		t.Fatalf("ParseAny(json): %v", err)
	}
	if s3.String() != canon {
		t.Fatalf("JSON round trip changed the spec: %q vs %q", s3.String(), canon)
	}

	const n = 128
	p1, _ := s.Build(9)
	p3, _ := s3.Build(9)
	src := testInput(n)
	d1 := make([]complex128, n)
	d3 := make([]complex128, n)
	p1.CorruptBlock(d1, src)
	p3.CorruptBlock(d3, src)
	for i := range d1 {
		if d1[i] != d3[i] {
			t.Fatalf("JSON-built pipeline diverges at symbol %d", i)
		}
	}
}

func TestParseFaultProfile(t *testing.T) {
	kv := "drop=0.05,dup=0.02,reorder=0.1,depth=4,corrupt=0.01,bits=8,err=0.01,stall=64:8,ge=0.05:0.3:0.02:0.9"
	p, err := ParseFaultProfile(kv)
	if err != nil {
		t.Fatalf("ParseFaultProfile(kv): %v", err)
	}
	want := link.FaultProfile{
		DropProb: 0.05, DupProb: 0.02,
		ReorderProb: 0.1, ReorderDepth: 4,
		CorruptProb: 0.01, CorruptBits: 8,
		ErrProb:    0.01,
		StallEvery: 64, StallFrames: 8,
		GE: &link.GilbertElliott{GoodToBad: 0.05, BadToGood: 0.3, GoodLoss: 0.02, BadLoss: 0.9},
	}
	if p.DropProb != want.DropProb || p.DupProb != want.DupProb ||
		p.ReorderProb != want.ReorderProb || p.ReorderDepth != want.ReorderDepth ||
		p.CorruptProb != want.CorruptProb || p.CorruptBits != want.CorruptBits ||
		p.ErrProb != want.ErrProb || p.StallEvery != want.StallEvery ||
		p.StallFrames != want.StallFrames || *p.GE != *want.GE {
		t.Fatalf("kv parse mismatch: %+v", p)
	}

	// JSON round trip through the link.FaultProfile tags.
	js, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	p2, err := ParseFaultProfile(string(js))
	if err != nil {
		t.Fatalf("ParseFaultProfile(json): %v", err)
	}
	if p2.DropProb != want.DropProb || p2.GE == nil || *p2.GE != *want.GE || p2.StallEvery != want.StallEvery {
		t.Fatalf("json parse mismatch: %+v", p2)
	}

	// Empty is the clean profile.
	clean, err := ParseFaultProfile("")
	if err != nil {
		t.Fatalf("ParseFaultProfile(\"\"): %v", err)
	}
	if clean != (link.FaultProfile{}) {
		t.Fatalf("empty profile not clean: %+v", clean)
	}

	for _, bad := range []string{"drop=2", "nope=1", "stall=64", "ge=1:2", "depth=x", "drop"} {
		if _, err := ParseFaultProfile(bad); err == nil {
			t.Fatalf("ParseFaultProfile(%q) succeeded", bad)
		}
	}
}

// FuzzParseSpec: the spec parser must never panic, and anything it accepts
// must render to a canonical form that re-parses to the same canonical form.
func FuzzParseSpec(f *testing.F) {
	f.Add(stackSpec)
	f.Add("awgn")
	f.Add(`{"stages":[{"stage":"awgn","args":{"snr":5}}]}`)
	f.Add("ramp(from=30,to=5,over=100)|erase(p=1,block=1)")
	f.Add("walk(min=-3,max=3,step=0.1)")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseAny(in)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, in, err)
		}
		if s2.String() != canon {
			t.Fatalf("canonical form not stable: %q vs %q", s2.String(), canon)
		}
		// Building may fail (argument validation), but must not panic; a
		// successful build must survive corrupting a block.
		if p, err := s.Build(3); err == nil {
			buf := make([]complex128, 32)
			p.CorruptBlock(buf, buf)
		}
	})
}

// FuzzParseFaultProfile: no panic on arbitrary bytes, and accepted profiles
// must be usable by a FaultTransport.
func FuzzParseFaultProfile(f *testing.F) {
	f.Add("drop=0.05,dup=0.02,reorder=0.1,depth=4")
	f.Add("ge=0.05:0.3:0.02:0.9,stall=64:8")
	f.Add(`{"drop":0.1,"ge":{"good2bad":0.1,"bad2good":0.5,"goodloss":0,"badloss":1}}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseFaultProfile(in)
		if err != nil {
			return
		}
		a, b, err := link.NewPipePair(0, 1)
		if err != nil {
			t.Fatalf("NewPipePair: %v", err)
		}
		defer a.Close()
		defer b.Close()
		tr := link.NewFaultTransport(a, p, link.FaultProfile{}, 1)
		for i := 0; i < 4; i++ {
			_ = tr.Send([]byte{1, 2, 3, 4})
		}
		buf := make([]byte, link.MaxFrameSize)
		for {
			if _, err := b.Receive(buf, 0); err != nil {
				break
			}
		}
	})
}
