package impair

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"spinal/internal/link"
)

// This file is the declarative form of the pipeline: a compact flag-parsable
// spec string and an equivalent JSON encoding, shared with the link layer's
// FaultProfile so one config syntax drives both the symbol-level stages and
// the frame-level chaos knobs.
//
// Spec grammar (whitespace around tokens is ignored):
//
//	spec  := stage ( '|' stage )*
//	stage := name [ '(' args ')' ]
//	args  := key '=' value ( ',' key '=' value )*
//
// e.g. "ge(good=16,bad=3)|spike(prob=0.02,db=-3)|erase(p=0.01,block=24)".
// Values are numbers; omitted arguments take stage defaults. The JSON form is
// {"stages":[{"stage":"ge","args":{"good":16,"bad":3}}, ...]}. ParseAny
// accepts either.

// StageSpec names one stage and its arguments.
type StageSpec struct {
	Stage string             `json:"stage"`
	Args  map[string]float64 `json:"args,omitempty"`
}

// Spec is the declarative form of a Pipeline.
type Spec struct {
	Stages []StageSpec `json:"stages"`
}

// Parse parses the spec-string grammar above. The empty string is the
// identity pipeline (no stages).
func Parse(s string) (*Spec, error) {
	spec := &Spec{}
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("impair: empty stage in spec %q", s)
		}
		st := StageSpec{}
		if open := strings.IndexByte(part, '('); open >= 0 {
			if !strings.HasSuffix(part, ")") {
				return nil, fmt.Errorf("impair: unterminated argument list in %q", part)
			}
			st.Stage = strings.TrimSpace(part[:open])
			argStr := part[open+1 : len(part)-1]
			if strings.TrimSpace(argStr) != "" {
				st.Args = map[string]float64{}
				for _, kv := range strings.Split(argStr, ",") {
					key, val, ok := strings.Cut(kv, "=")
					key = strings.TrimSpace(key)
					if !ok || !validStageName(key) {
						return nil, fmt.Errorf("impair: argument %q of stage %q is not key=value", kv, st.Stage)
					}
					f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
					if err != nil {
						return nil, fmt.Errorf("impair: argument %q of stage %q: %v", key, st.Stage, err)
					}
					if _, dup := st.Args[key]; dup {
						return nil, fmt.Errorf("impair: duplicate argument %q of stage %q", key, st.Stage)
					}
					st.Args[key] = f
				}
			}
		} else {
			st.Stage = part
		}
		if !validStageName(st.Stage) {
			return nil, fmt.Errorf("impair: malformed stage name %q", st.Stage)
		}
		spec.Stages = append(spec.Stages, st)
	}
	return spec, nil
}

// ParseAny parses either the spec-string form or (when the input starts with
// '{') the JSON form.
func ParseAny(s string) (*Spec, error) {
	trimmed := strings.TrimSpace(s)
	if strings.HasPrefix(trimmed, "{") {
		spec := &Spec{}
		if err := json.Unmarshal([]byte(trimmed), spec); err != nil {
			return nil, fmt.Errorf("impair: %v", err)
		}
		for _, st := range spec.Stages {
			if !validStageName(st.Stage) {
				return nil, fmt.Errorf("impair: malformed stage name %q", st.Stage)
			}
			for k := range st.Args {
				if !validStageName(k) {
					return nil, fmt.Errorf("impair: malformed argument name %q of stage %q", k, st.Stage)
				}
			}
		}
		return spec, nil
	}
	return Parse(s)
}

// validStageName accepts lowercase identifiers only, keeping the grammar
// unambiguous (and the fuzz corpus honest).
func validStageName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' {
			return false
		}
	}
	return true
}

// String renders the canonical spec-string form: stages joined by '|' with
// arguments sorted by key, so Parse(s).String() is a fixed point.
func (s *Spec) String() string {
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		if len(st.Args) == 0 {
			parts[i] = st.Stage
			continue
		}
		keys := make([]string, 0, len(st.Args))
		for k := range st.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kvs := make([]string, len(keys))
		for j, k := range keys {
			kvs[j] = fmt.Sprintf("%s=%g", k, st.Args[k])
		}
		parts[i] = st.Stage + "(" + strings.Join(kvs, ",") + ")"
	}
	return strings.Join(parts, "|")
}

// Build constructs the pipeline, deriving each stage's seed from the base
// seed, its name and its occurrence count among same-named stages (see
// stageSeed). Same spec + same seed ⇒ byte-identical corrupted blocks,
// wherever the pipeline runs; a stage keeps its schedule when the stages
// around it are added or removed.
func (s *Spec) Build(seed uint64) (*Pipeline, error) {
	stages := make([]Stage, len(s.Stages))
	occ := map[string]int{}
	for i, sp := range s.Stages {
		st, err := buildStage(sp, stageSeed(seed, occ[sp.Stage], sp.Stage))
		if err != nil {
			return nil, err
		}
		occ[sp.Stage]++
		stages[i] = st
	}
	return NewPipeline(stages...), nil
}

// Single returns the one-stage spec for stage i, used by sweeps that compare
// a stack against each of its stages alone.
func (s *Spec) Single(i int) *Spec {
	return &Spec{Stages: []StageSpec{s.Stages[i]}}
}

// ParseFaultProfile parses one direction's frame-level fault schedule in the
// same two forms the pipeline spec uses: a key=value list
//
//	drop=0.05,dup=0.02,reorder=0.1,depth=4,corrupt=0.01,bits=8,err=0.01,
//	stall=64:8,ge=0.05:0.3:0.02:0.9
//
// (stall is every:frames; ge is good2bad:bad2good:goodloss:badloss) or, when
// the input starts with '{', the JSON form of link.FaultProfile. The empty
// string is the clean profile.
func ParseFaultProfile(s string) (link.FaultProfile, error) {
	var p link.FaultProfile
	trimmed := strings.TrimSpace(s)
	if trimmed == "" {
		return p, nil
	}
	if strings.HasPrefix(trimmed, "{") {
		if err := json.Unmarshal([]byte(trimmed), &p); err != nil {
			return p, fmt.Errorf("impair: fault profile: %v", err)
		}
		return p, nil
	}
	for _, kv := range strings.Split(trimmed, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || key == "" {
			return p, fmt.Errorf("impair: fault knob %q is not key=value", kv)
		}
		switch key {
		case "drop", "dup", "reorder", "corrupt", "err":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("impair: fault knob %s=%q is not a probability", key, val)
			}
			switch key {
			case "drop":
				p.DropProb = f
			case "dup":
				p.DupProb = f
			case "reorder":
				p.ReorderProb = f
			case "corrupt":
				p.CorruptProb = f
			case "err":
				p.ErrProb = f
			}
		case "depth", "bits":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("impair: fault knob %s=%q is not a count", key, val)
			}
			if key == "depth" {
				p.ReorderDepth = n
			} else {
				p.CorruptBits = n
			}
		case "stall":
			every, frames, ok := strings.Cut(val, ":")
			if !ok {
				return p, fmt.Errorf("impair: stall=%q is not every:frames", val)
			}
			e, err1 := strconv.Atoi(strings.TrimSpace(every))
			f, err2 := strconv.Atoi(strings.TrimSpace(frames))
			if err1 != nil || err2 != nil || e < 0 || f < 0 {
				return p, fmt.Errorf("impair: stall=%q is not every:frames", val)
			}
			p.StallEvery, p.StallFrames = e, f
		case "ge":
			fields := strings.Split(val, ":")
			if len(fields) != 4 {
				return p, fmt.Errorf("impair: ge=%q is not good2bad:bad2good:goodloss:badloss", val)
			}
			var vals [4]float64
			for i, f := range fields {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil || v < 0 || v > 1 {
					return p, fmt.Errorf("impair: ge=%q is not four probabilities", val)
				}
				vals[i] = v
			}
			p.GE = &link.GilbertElliott{
				GoodToBad: vals[0], BadToGood: vals[1],
				GoodLoss: vals[2], BadLoss: vals[3],
			}
		default:
			return p, fmt.Errorf("impair: unknown fault knob %q", key)
		}
	}
	return p, nil
}
