// Package rng provides the deterministic random number generation used by the
// spinal-code simulations: a fast 64-bit PRNG (xoshiro256**), uniform helpers,
// and a Gaussian source for AWGN noise.
//
// All simulation randomness in this repository flows through this package so
// experiments are reproducible from a single seed.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator based on the
// xoshiro256** algorithm, seeded through a SplitMix64 expansion.
// It is not safe for concurrent use; create one Rand per goroutine.
type Rand struct {
	s [4]uint64

	// Cached second Gaussian variate from the polar method.
	haveGauss bool
	gauss     float64
}

// New returns a generator seeded from the given 64-bit seed. Two generators
// created with the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed using SplitMix64
// so that even adjacent seeds produce decorrelated streams.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.haveGauss = false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit pseudo-random value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// simple rejection keeps the distribution exactly uniform.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	switch {
	case p <= 0:
		return false
	case p >= 1:
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (mean 0, variance 1) using the
// Marsaglia polar method. Consecutive calls consume the generator in pairs.
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.haveGauss = true
		return u * f
	}
}

// ComplexNormal returns a circularly-symmetric complex Gaussian sample with
// total variance sigma2 (that is, variance sigma2/2 per real dimension). This
// is the AWGN noise model used throughout the paper.
func (r *Rand) ComplexNormal(sigma2 float64) complex128 {
	sd := math.Sqrt(sigma2 / 2)
	return complex(sd*r.NormFloat64(), sd*r.NormFloat64())
}

// Bytes fills p with pseudo-random bytes.
func (r *Rand) Bytes(p []byte) {
	var w uint64
	for i := range p {
		if i%8 == 0 {
			w = r.Uint64()
		}
		p[i] = byte(w)
		w >>= 8
	}
}

// Bits returns n pseudo-random bits packed LSB-first into a byte slice of
// length ceil(n/8); unused high bits of the final byte are zero.
func (r *Rand) Bits(n int) []byte {
	p := make([]byte, (n+7)/8)
	r.Bytes(p)
	if rem := n % 8; rem != 0 {
		p[len(p)-1] &= byte(1<<uint(rem)) - 1
	}
	return p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
