package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical values out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn(7) value %d occurred %d times, want about 10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(4)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(5)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %.4f", frac)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("Gaussian mean = %.4f, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("Gaussian variance = %.4f, want about 1", variance)
	}
}

func TestComplexNormalVariance(t *testing.T) {
	r := New(13)
	const n = 100000
	const sigma2 = 2.5
	var power float64
	for i := 0; i < n; i++ {
		z := r.ComplexNormal(sigma2)
		power += real(z)*real(z) + imag(z)*imag(z)
	}
	avg := power / n
	if math.Abs(avg-sigma2) > 0.08 {
		t.Fatalf("complex noise power = %.4f, want %.4f", avg, sigma2)
	}
}

func TestBitsLength(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 7, 8, 9, 24, 63, 64, 65} {
		b := r.Bits(n)
		if len(b) != (n+7)/8 {
			t.Fatalf("Bits(%d) length = %d", n, len(b))
		}
		if rem := n % 8; rem != 0 {
			if b[len(b)-1]>>uint(rem) != 0 {
				t.Fatalf("Bits(%d) has stray high bits", n)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedResetsStream(t *testing.T) {
	r := New(42)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(42)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("stream after re-seed diverged at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= r.Uint64()
	}
	_ = acc
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += r.NormFloat64()
	}
	_ = acc
}
