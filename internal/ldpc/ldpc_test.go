package ldpc

import (
	"testing"
	"testing/quick"

	"spinal/internal/channel"
	"spinal/internal/modem"
	"spinal/internal/rng"
)

func allRates() []Rate { return []Rate{Rate12, Rate23, Rate34, Rate56} }

func TestCodeDimensions(t *testing.T) {
	want := map[Rate]int{Rate12: 324, Rate23: 432, Rate34: 486, Rate56: 540}
	for _, r := range allRates() {
		c, err := NewWiFiLike(r)
		if err != nil {
			t.Fatal(err)
		}
		if c.N() != 648 {
			t.Errorf("rate %s: N = %d, want 648", r, c.N())
		}
		if c.K() != want[r] {
			t.Errorf("rate %s: K = %d, want %d", r, c.K(), want[r])
		}
		if c.M() != 648-want[r] {
			t.Errorf("rate %s: M = %d", r, c.M())
		}
		if got := c.RateValue(); got < r.Value()-1e-9 || got > r.Value()+1e-9 {
			t.Errorf("rate %s: RateValue = %v", r, got)
		}
		if c.Rate() != r {
			t.Errorf("rate accessor mismatch")
		}
	}
}

func TestRateStringAndValue(t *testing.T) {
	if Rate12.String() != "1/2" || Rate56.String() != "5/6" {
		t.Error("Rate.String wrong")
	}
	if Rate(99).Value() != 0 {
		t.Error("unknown rate should have zero value")
	}
	if Rate(99).String() == "" {
		t.Error("unknown rate should still format")
	}
	if _, err := NewWiFiLike(Rate(99)); err == nil {
		t.Error("unknown rate accepted")
	}
}

func TestEncodeSatisfiesParityChecks(t *testing.T) {
	for _, r := range allRates() {
		c, err := NewWiFiLike(r)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(r) + 1)
		for trial := 0; trial < 20; trial++ {
			info := make([]byte, c.K())
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			code, err := c.Encode(info)
			if err != nil {
				t.Fatal(err)
			}
			if len(code) != c.N() {
				t.Fatalf("rate %s: codeword length %d", r, len(code))
			}
			if !c.CheckSyndrome(code) {
				t.Fatalf("rate %s: encoded codeword violates parity checks", r)
			}
			// Systematic property.
			for i := range info {
				if code[i] != info[i] {
					t.Fatalf("rate %s: codeword is not systematic at bit %d", r, i)
				}
			}
		}
	}
}

func TestEncodePropertyAllZeroAndAllOne(t *testing.T) {
	c, _ := NewWiFiLike(Rate12)
	zero := make([]byte, c.K())
	cw, err := c.Encode(zero)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cw {
		if b != 0 {
			t.Fatalf("all-zero info did not give all-zero codeword (bit %d)", i)
		}
	}
	ones := make([]byte, c.K())
	for i := range ones {
		ones[i] = 1
	}
	cw, err = c.Encode(ones)
	if err != nil {
		t.Fatal(err)
	}
	if !c.CheckSyndrome(cw) {
		t.Fatal("all-ones codeword violates checks")
	}
}

func TestEncodeLinearity(t *testing.T) {
	// LDPC codes are linear: the XOR of two codewords is a codeword.
	c, _ := NewWiFiLike(Rate34)
	prop := func(seedA, seedB uint64) bool {
		ra, rb := rng.New(seedA), rng.New(seedB)
		a := make([]byte, c.K())
		b := make([]byte, c.K())
		for i := range a {
			a[i] = byte(ra.Intn(2))
			b[i] = byte(rb.Intn(2))
		}
		ca, err := c.Encode(a)
		if err != nil {
			return false
		}
		cb, err := c.Encode(b)
		if err != nil {
			return false
		}
		sum := make([]byte, c.N())
		for i := range sum {
			sum[i] = ca[i] ^ cb[i]
		}
		return c.CheckSyndrome(sum)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	c, _ := NewWiFiLike(Rate12)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Error("short info accepted")
	}
	bad := make([]byte, c.K())
	bad[3] = 2
	if _, err := c.Encode(bad); err == nil {
		t.Error("non-bit info accepted")
	}
}

func TestCheckSyndromeRejectsCorruption(t *testing.T) {
	c, _ := NewWiFiLike(Rate12)
	src := rng.New(5)
	info := make([]byte, c.K())
	for i := range info {
		info[i] = byte(src.Intn(2))
	}
	cw, _ := c.Encode(info)
	for trial := 0; trial < 50; trial++ {
		bad := append([]byte(nil), cw...)
		bad[src.Intn(len(bad))] ^= 1
		if c.CheckSyndrome(bad) {
			t.Fatal("single bit flip not caught by the syndrome")
		}
	}
	if c.CheckSyndrome(cw[:100]) {
		t.Fatal("short word accepted")
	}
}

func TestCheckDegrees(t *testing.T) {
	for _, r := range allRates() {
		c, _ := NewWiFiLike(r)
		min, max := c.CheckDegrees()
		if min < 3 {
			t.Errorf("rate %s: minimum check degree %d is suspiciously low", r, min)
		}
		if max > 30 {
			t.Errorf("rate %s: maximum check degree %d is suspiciously high", r, max)
		}
	}
}

func TestDecoderNoiseless(t *testing.T) {
	for _, r := range allRates() {
		c, _ := NewWiFiLike(r)
		dec, err := NewDecoder(c, 40)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(r) * 7)
		info := make([]byte, c.K())
		for i := range info {
			info[i] = byte(src.Intn(2))
		}
		cw, _ := c.Encode(info)
		llr := make([]float64, c.N())
		for i, b := range cw {
			if b == 0 {
				llr[i] = 10
			} else {
				llr[i] = -10
			}
		}
		res, err := dec.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("rate %s: noiseless decode did not converge", r)
		}
		for i := range info {
			if res.Info[i] != info[i] {
				t.Fatalf("rate %s: noiseless decode wrong at bit %d", r, i)
			}
		}
		if res.Iterations != 1 {
			t.Errorf("rate %s: noiseless decode took %d iterations", r, res.Iterations)
		}
	}
}

func TestDecoderCorrectsNoise(t *testing.T) {
	// Rate-1/2 code over BPSK at 4 dB SNR (Eb/N0 ~ 7 dB) is well inside the
	// waterfall: every frame should decode.
	c, _ := NewWiFiLike(Rate12)
	dec, _ := NewDecoder(c, 40)
	mod := modem.NewBPSK()
	src := rng.New(11)
	ch, _ := channel.NewAWGNdB(4, src)
	bsrc := rng.New(12)
	for trial := 0; trial < 10; trial++ {
		info := make([]byte, c.K())
		for i := range info {
			info[i] = byte(bsrc.Intn(2))
		}
		cw, _ := c.Encode(info)
		syms, err := mod.Modulate(cw)
		if err != nil {
			t.Fatal(err)
		}
		rx := make([]complex128, len(syms))
		ch.CorruptBlock(rx, syms)
		llr := mod.Demodulate(rx, ch.Sigma2())
		res, err := dec.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: decode did not converge at 4 dB", trial)
		}
		for i := range info {
			if res.Info[i] != info[i] {
				t.Fatalf("trial %d: info bit %d wrong after convergence", trial, i)
			}
		}
	}
}

func TestDecoderFailsFarBelowThreshold(t *testing.T) {
	// At -6 dB a rate-1/2 BPSK system is far below capacity; the decoder must
	// not pretend to succeed on most frames.
	c, _ := NewWiFiLike(Rate12)
	dec, _ := NewDecoder(c, 40)
	mod := modem.NewBPSK()
	src := rng.New(21)
	ch, _ := channel.NewAWGNdB(-6, src)
	bsrc := rng.New(22)
	failures := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		info := make([]byte, c.K())
		for i := range info {
			info[i] = byte(bsrc.Intn(2))
		}
		cw, _ := c.Encode(info)
		syms, _ := mod.Modulate(cw)
		ch.CorruptBlock(syms, syms)
		llr := mod.Demodulate(syms, ch.Sigma2())
		res, _ := dec.Decode(llr)
		correct := res.Converged
		if correct {
			for i := range info {
				if res.Info[i] != info[i] {
					correct = false
					break
				}
			}
		}
		if !correct {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("only %d/%d frames failed at -6 dB; decoder is suspiciously optimistic", failures, trials)
	}
}

func TestDecoderHigherOrderModulation(t *testing.T) {
	// Rate 3/4 over QAM-16 at 18 dB should decode reliably (spectral
	// efficiency 3 bits/symbol vs capacity ~6).
	c, _ := NewWiFiLike(Rate34)
	dec, _ := NewDecoder(c, 40)
	mod, _ := modem.NewQAM(16)
	src := rng.New(31)
	ch, _ := channel.NewAWGNdB(18, src)
	bsrc := rng.New(32)
	for trial := 0; trial < 5; trial++ {
		info := make([]byte, c.K())
		for i := range info {
			info[i] = byte(bsrc.Intn(2))
		}
		cw, _ := c.Encode(info)
		syms, err := mod.Modulate(cw)
		if err != nil {
			t.Fatal(err)
		}
		ch.CorruptBlock(syms, syms)
		llr := mod.Demodulate(syms, ch.Sigma2())
		res, _ := dec.Decode(llr)
		if !res.Converged {
			t.Fatalf("trial %d: QAM-16 rate-3/4 frame failed at 18 dB", trial)
		}
		for i := range info {
			if res.Info[i] != info[i] {
				t.Fatalf("trial %d: wrong info bit %d", trial, i)
			}
		}
	}
}

func TestDecoderInputValidation(t *testing.T) {
	c, _ := NewWiFiLike(Rate12)
	dec, _ := NewDecoder(c, 40)
	if _, err := dec.Decode(make([]float64, 10)); err == nil {
		t.Error("short LLR vector accepted")
	}
	if _, err := NewDecoder(nil, 40); err == nil {
		t.Error("nil code accepted")
	}
	d2, err := NewDecoder(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.MaxIterations() != DefaultIterations {
		t.Errorf("default iterations = %d", d2.MaxIterations())
	}
}

func BenchmarkDecodeRate12BPSK(b *testing.B) {
	c, _ := NewWiFiLike(Rate12)
	dec, _ := NewDecoder(c, 40)
	mod := modem.NewBPSK()
	src := rng.New(1)
	ch, _ := channel.NewAWGNdB(2, src)
	info := make([]byte, c.K())
	cw, _ := c.Encode(info)
	syms, _ := mod.Modulate(cw)
	ch.CorruptBlock(syms, syms)
	llr := mod.Demodulate(syms, ch.Sigma2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(llr); err != nil {
			b.Fatal(err)
		}
	}
}
