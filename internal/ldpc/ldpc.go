// Package ldpc implements the fixed-rate LDPC baselines of Figure 2:
// quasi-cyclic codes with 648-bit codewords at rates 1/2, 2/3, 3/4 and 5/6,
// encoded through an accumulator-style dual-diagonal parity structure and
// decoded with the sum-product (belief propagation) algorithm over soft LLRs.
//
// The paper uses the LDPC codes of the 802.11n high-throughput mode. The
// standardized circulant shift tables are not reproduced here; instead the
// codes are constructed deterministically with the same blocklength, lifting
// factor (Z = 27), rates and dual-diagonal parity structure, and a matched
// variable-degree profile (see DESIGN.md, substitutions). The resulting
// waterfall behaviour is within a fraction of a dB of the standardized codes,
// which is more than enough fidelity for the throughput-versus-SNR
// comparison.
package ldpc

import (
	"fmt"

	"spinal/internal/rng"
)

// Rate identifies one of the supported code rates.
type Rate int

// Supported code rates of the 648-bit family.
const (
	Rate12 Rate = iota // 1/2
	Rate23             // 2/3
	Rate34             // 3/4
	Rate56             // 5/6
)

// String returns the conventional fraction notation.
func (r Rate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	case Rate56:
		return "5/6"
	default:
		return fmt.Sprintf("Rate(%d)", int(r))
	}
}

// Value returns the code rate as a float.
func (r Rate) Value() float64 {
	switch r {
	case Rate12:
		return 0.5
	case Rate23:
		return 2.0 / 3
	case Rate34:
		return 0.75
	case Rate56:
		return 5.0 / 6
	default:
		return 0
	}
}

// parityBlockRows returns the number of parity block rows for a 24-column
// base matrix at this rate.
func (r Rate) parityBlockRows() (int, error) {
	switch r {
	case Rate12:
		return 12, nil
	case Rate23:
		return 8, nil
	case Rate34:
		return 6, nil
	case Rate56:
		return 4, nil
	default:
		return 0, fmt.Errorf("ldpc: unknown rate %d", int(r))
	}
}

// Code is a quasi-cyclic LDPC code defined by a base matrix of circulant
// shifts over Z x Z identity blocks.
type Code struct {
	z         int
	blockCols int
	blockRows int
	shifts    [][]int // blockRows x blockCols; -1 means the all-zero block
	rate      Rate

	// Flattened Tanner graph.
	checkVars [][]int // for each check row, the variable indices it touches
}

// blockCols24 is the base-matrix width shared by the whole 648-bit family.
const blockCols24 = 24

// wifiZ is the lifting factor of the 648-bit family.
const wifiZ = 27

// NewWiFiLike constructs a 648-bit code at the given rate with lifting factor
// 27 and a deterministic pseudo-random information part (seeded by the rate),
// mirroring the structure of the 802.11n codes.
func NewWiFiLike(rate Rate) (*Code, error) {
	rows, err := rate.parityBlockRows()
	if err != nil {
		return nil, err
	}
	return newQC(rows, blockCols24, wifiZ, rate, 0xC0DE+uint64(rate))
}

// newQC builds a quasi-cyclic code with `rows` parity block rows, `cols`
// total block columns and lifting factor z. The last `rows` block columns
// hold the dual-diagonal (accumulator) parity structure; the remaining
// columns are information columns with pseudo-random circulant shifts.
func newQC(rows, cols, z int, rate Rate, seed uint64) (*Code, error) {
	if rows < 2 || cols <= rows || z < 1 {
		return nil, fmt.Errorf("ldpc: invalid base matrix %dx%d with z=%d", rows, cols, z)
	}
	src := rng.New(seed)
	infoCols := cols - rows
	shifts := make([][]int, rows)
	for i := range shifts {
		shifts[i] = make([]int, cols)
		for j := range shifts[i] {
			shifts[i][j] = -1
		}
	}

	// Information part: every information column gets three circulants in
	// distinct block rows (four in every sixth column to diversify degrees),
	// with pseudo-random shifts. Rows are assigned round-robin so the check
	// degrees stay balanced across block rows.
	next := 0
	for j := 0; j < infoCols; j++ {
		degree := 3
		if j%6 == 0 {
			degree = 4
		}
		if degree > rows {
			degree = rows
		}
		for d := 0; d < degree; d++ {
			shifts[(next+d)%rows][j] = src.Intn(z)
		}
		next = (next + degree) % rows
	}

	// Parity part: dual-diagonal accumulator. Parity block column p (0-based,
	// physical column infoCols+p) has an identity on block row p and, for
	// p < rows-1, an identity on block row p+1, so check row i reads
	// lambda_i + p_{i-1} + p_i = 0 and encoding is a forward recursion.
	for p := 0; p < rows; p++ {
		shifts[p][infoCols+p] = 0
		if p+1 < rows {
			shifts[p+1][infoCols+p] = 0
		}
	}

	c := &Code{
		z:         z,
		blockCols: cols,
		blockRows: rows,
		shifts:    shifts,
		rate:      rate,
	}
	c.buildGraph()
	return c, nil
}

// buildGraph expands the base matrix into the bit-level Tanner graph.
func (c *Code) buildGraph() {
	numChecks := c.blockRows * c.z
	c.checkVars = make([][]int, numChecks)
	for bi := 0; bi < c.blockRows; bi++ {
		for bj := 0; bj < c.blockCols; bj++ {
			s := c.shifts[bi][bj]
			if s < 0 {
				continue
			}
			for r := 0; r < c.z; r++ {
				check := bi*c.z + r
				variable := bj*c.z + (r+s)%c.z
				c.checkVars[check] = append(c.checkVars[check], variable)
			}
		}
	}
}

// N returns the codeword length in bits.
func (c *Code) N() int { return c.blockCols * c.z }

// K returns the number of information bits per codeword.
func (c *Code) K() int { return (c.blockCols - c.blockRows) * c.z }

// M returns the number of parity checks.
func (c *Code) M() int { return c.blockRows * c.z }

// Rate returns the design rate of the code.
func (c *Code) Rate() Rate { return c.rate }

// RateValue returns K/N.
func (c *Code) RateValue() float64 { return float64(c.K()) / float64(c.N()) }

// Encode maps K information bits (values 0/1) to an N-bit systematic
// codeword: the information bits followed by the accumulator parity bits.
func (c *Code) Encode(info []byte) ([]byte, error) {
	if len(info) != c.K() {
		return nil, fmt.Errorf("ldpc: need %d information bits, got %d", c.K(), len(info))
	}
	for i, b := range info {
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("ldpc: information bit %d has value %d", i, b)
		}
	}
	code := make([]byte, c.N())
	copy(code, info)

	infoCols := c.blockCols - c.blockRows
	// lambda[bi][r]: parity of the information contributions to check (bi, r).
	prev := make([]byte, c.z) // parity block p-1
	for bi := 0; bi < c.blockRows; bi++ {
		lambda := make([]byte, c.z)
		for bj := 0; bj < infoCols; bj++ {
			s := c.shifts[bi][bj]
			if s < 0 {
				continue
			}
			base := bj * c.z
			for r := 0; r < c.z; r++ {
				lambda[r] ^= info[base+(r+s)%c.z]
			}
		}
		// Check equation: lambda + prevParity + thisParity = 0.
		cur := make([]byte, c.z)
		for r := 0; r < c.z; r++ {
			cur[r] = lambda[r] ^ prev[r]
		}
		copy(code[(infoCols+bi)*c.z:], cur)
		prev = cur
	}
	return code, nil
}

// CheckSyndrome reports whether the given N-bit word satisfies every parity
// check of the code.
func (c *Code) CheckSyndrome(code []byte) bool {
	if len(code) != c.N() {
		return false
	}
	for _, vars := range c.checkVars {
		sum := byte(0)
		for _, v := range vars {
			sum ^= code[v]
		}
		if sum != 0 {
			return false
		}
	}
	return true
}

// CheckDegrees returns the minimum and maximum check-node degrees, used by
// tests to validate the construction.
func (c *Code) CheckDegrees() (min, max int) {
	min, max = -1, 0
	for _, vars := range c.checkVars {
		d := len(vars)
		if min < 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if min < 0 {
		min = 0
	}
	return min, max
}
