package ldpc

import (
	"fmt"
	"math"
)

// Decoder is a sum-product (belief propagation) decoder operating on per-bit
// log-likelihood ratios. The paper's baselines use 40 iterations of belief
// propagation with soft information, which is also the default here.
type Decoder struct {
	code    *Code
	maxIter int

	// Flattened edge structure. Edge e connects check checkOf[e] with
	// variable varOf[e]; edges are grouped contiguously per check.
	checkOf    []int32
	varOf      []int32
	checkStart []int32 // per check: first edge index
	varEdges   [][]int32

	// Message buffers, reused across Decode calls.
	checkToVar []float64
	varToCheck []float64
	posterior  []float64
	hard       []byte
}

// DefaultIterations is the iteration budget used by the paper's baseline
// decoder.
const DefaultIterations = 40

// NewDecoder returns a belief-propagation decoder for the code with the given
// iteration budget (values below 1 select DefaultIterations).
func NewDecoder(code *Code, maxIter int) (*Decoder, error) {
	if code == nil {
		return nil, fmt.Errorf("ldpc: nil code")
	}
	if maxIter < 1 {
		maxIter = DefaultIterations
	}
	d := &Decoder{code: code, maxIter: maxIter}
	numEdges := 0
	for _, vars := range code.checkVars {
		numEdges += len(vars)
	}
	d.checkOf = make([]int32, 0, numEdges)
	d.varOf = make([]int32, 0, numEdges)
	d.checkStart = make([]int32, code.M()+1)
	d.varEdges = make([][]int32, code.N())
	for check, vars := range code.checkVars {
		d.checkStart[check] = int32(len(d.varOf))
		for _, v := range vars {
			e := int32(len(d.varOf))
			d.checkOf = append(d.checkOf, int32(check))
			d.varOf = append(d.varOf, int32(v))
			d.varEdges[v] = append(d.varEdges[v], e)
		}
	}
	d.checkStart[code.M()] = int32(len(d.varOf))
	d.checkToVar = make([]float64, numEdges)
	d.varToCheck = make([]float64, numEdges)
	d.posterior = make([]float64, code.N())
	d.hard = make([]byte, code.N())
	return d, nil
}

// MaxIterations returns the decoder's iteration budget.
func (d *Decoder) MaxIterations() int { return d.maxIter }

// Result reports the outcome of a decode attempt.
type Result struct {
	// Codeword is the hard-decision estimate of the full codeword.
	Codeword []byte
	// Info is the systematic (information) part of Codeword.
	Info []byte
	// Converged reports whether all parity checks were satisfied.
	Converged bool
	// Iterations is the number of BP iterations actually run.
	Iterations int
}

// Decode runs belief propagation on the channel LLRs (one per codeword bit,
// positive favouring 0) and returns the hard decision.
func (d *Decoder) Decode(llr []float64) (*Result, error) {
	n := d.code.N()
	if len(llr) != n {
		return nil, fmt.Errorf("ldpc: need %d LLRs, got %d", n, len(llr))
	}

	// Initialization: variable-to-check messages start as the channel LLRs.
	for e := range d.varToCheck {
		d.varToCheck[e] = llr[d.varOf[e]]
		d.checkToVar[e] = 0
	}

	iterations := 0
	converged := false
	const clip = 20.0 // numerical guard on message magnitudes

	for iter := 0; iter < d.maxIter; iter++ {
		iterations = iter + 1

		// Check-node update (tanh rule), computed per check with an
		// exclude-self product.
		for check := 0; check < d.code.M(); check++ {
			start, end := d.checkStart[check], d.checkStart[check+1]
			prod := 1.0
			zero := -1 // index of a single exact-zero message, if any
			for e := start; e < end; e++ {
				t := math.Tanh(d.varToCheck[e] / 2)
				if t == 0 {
					if zero >= 0 {
						// Two zero inputs force every outgoing message to 0.
						prod = 0
						zero = -2
						break
					}
					zero = int(e)
					continue
				}
				prod *= t
			}
			for e := start; e < end; e++ {
				var out float64
				switch {
				case zero == -2:
					out = 0
				case zero >= 0:
					if int(e) == zero {
						out = 2 * atanhClamped(prod)
					} else {
						out = 0
					}
				default:
					t := math.Tanh(d.varToCheck[e] / 2)
					out = 2 * atanhClamped(prod/t)
				}
				if out > clip {
					out = clip
				} else if out < -clip {
					out = -clip
				}
				d.checkToVar[e] = out
			}
		}

		// Variable-node update and posterior.
		for v := 0; v < n; v++ {
			total := llr[v]
			for _, e := range d.varEdges[v] {
				total += d.checkToVar[e]
			}
			d.posterior[v] = total
			if total < 0 {
				d.hard[v] = 1
			} else {
				d.hard[v] = 0
			}
			for _, e := range d.varEdges[v] {
				d.varToCheck[e] = total - d.checkToVar[e]
			}
		}

		if d.code.CheckSyndrome(d.hard) {
			converged = true
			break
		}
	}

	codeword := append([]byte(nil), d.hard...)
	return &Result{
		Codeword:   codeword,
		Info:       codeword[:d.code.K()],
		Converged:  converged,
		Iterations: iterations,
	}, nil
}

// atanhClamped is atanh with its argument pulled inside (-1, 1) to avoid
// infinities from floating-point saturation.
func atanhClamped(x float64) float64 {
	const lim = 1 - 1e-15
	if x > lim {
		x = lim
	} else if x < -lim {
		x = -lim
	}
	return math.Atanh(x)
}
