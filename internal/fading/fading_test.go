package fading

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantTrace(t *testing.T) {
	c := Constant{Level: 17}
	for _, i := range []int{0, 1, 100, 1 << 20} {
		if c.SNRdB(i) != 17 {
			t.Fatalf("constant trace changed at %d", i)
		}
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
}

func TestGilbertElliottTwoLevels(t *testing.T) {
	g, err := NewGilbertElliott(25, 5, 200, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	seenGood, seenBad := false, false
	for i := 0; i < 20000; i++ {
		v := g.SNRdB(i)
		switch v {
		case 25:
			seenGood = true
		case 5:
			seenBad = true
		default:
			t.Fatalf("unexpected SNR level %v", v)
		}
	}
	if !seenGood || !seenBad {
		t.Fatal("trace never visited both states")
	}
	// Time share of the good state should be roughly dwellGood/(dwellGood+dwellBad).
	good := 0
	for i := 0; i < 20000; i++ {
		if g.SNRdB(i) == 25 {
			good++
		}
	}
	frac := float64(good) / 20000
	if frac < 0.5 || frac > 0.85 {
		t.Fatalf("good-state fraction %v far from 2/3", frac)
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	a, _ := NewGilbertElliott(20, 0, 50, 50, 9)
	b, _ := NewGilbertElliott(20, 0, 50, 50, 9)
	for i := 0; i < 5000; i++ {
		if a.SNRdB(i) != b.SNRdB(i) {
			t.Fatalf("traces with the same seed diverged at %d", i)
		}
	}
	if _, err := NewGilbertElliott(20, 0, 0, 50, 1); err == nil {
		t.Error("zero dwell accepted")
	}
}

func TestGilbertElliottRandomAccessConsistent(t *testing.T) {
	g, _ := NewGilbertElliott(20, 0, 30, 30, 4)
	// Reading far ahead then looking back must give the same values as a
	// sequential scan of a fresh trace with the same seed.
	_ = g.SNRdB(999)
	fresh, _ := NewGilbertElliott(20, 0, 30, 30, 4)
	for i := 0; i < 1000; i++ {
		if g.SNRdB(i) != fresh.SNRdB(i) {
			t.Fatalf("random access changed the trace at %d", i)
		}
	}
}

func TestRayleighBlockStatistics(t *testing.T) {
	r, err := NewRayleighBlock(20, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Constant within a coherence block.
	for b := 0; b < 50; b++ {
		first := r.SNRdB(b * 10)
		for i := 1; i < 10; i++ {
			if r.SNRdB(b*10+i) != first {
				t.Fatalf("SNR changed within coherence block %d", b)
			}
		}
	}
	// Average linear gain should be around 1 (0 dB offset) over many blocks.
	var sum float64
	const blocks = 4000
	for b := 0; b < blocks; b++ {
		sum += math.Pow(10, (r.SNRdB(b*10)-20)/10)
	}
	mean := sum / blocks
	if mean < 0.85 || mean > 1.15 {
		t.Fatalf("mean Rayleigh power gain %v, want about 1", mean)
	}
	if _, err := NewRayleighBlock(20, 0, 1); err == nil {
		t.Error("zero coherence accepted")
	}
}

func TestWalkBounds(t *testing.T) {
	w, err := NewWalk(0, 30, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	prev := w.SNRdB(0)
	for i := 1; i < 20000; i++ {
		v := w.SNRdB(i)
		if v < 0 || v > 30 {
			t.Fatalf("walk escaped its bounds at %d: %v", i, v)
		}
		if math.Abs(v-prev) > 0.5+1e-9 {
			t.Fatalf("walk jumped by %v at %d", v-prev, i)
		}
		prev = v
	}
	if _, err := NewWalk(10, 5, 1, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewWalk(0, 10, 0, 1); err == nil {
		t.Error("zero step accepted")
	}
}

func TestChannelNoiseTracksTrace(t *testing.T) {
	// With a good/bad trace, the measured noise power over symbols sent in
	// each state should differ by roughly the SNR gap.
	g, _ := NewGilbertElliott(25, 5, 500, 500, 11)
	ch, err := NewChannel(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	var goodPower, badPower float64
	var goodN, badN int
	for i := 0; i < 100000; i++ {
		snr := g.SNRdB(i)
		y := ch.Corrupt(0)
		p := real(y)*real(y) + imag(y)*imag(y)
		if snr == 25 {
			goodPower += p
			goodN++
		} else {
			badPower += p
			badN++
		}
	}
	if goodN == 0 || badN == 0 {
		t.Fatal("trace did not visit both states")
	}
	ratio := (badPower / float64(badN)) / (goodPower / float64(goodN))
	if ratio < 50 || ratio > 200 {
		t.Fatalf("noise power ratio between bad and good states = %v, want about 100", ratio)
	}
	if ch.Position() != 100000 {
		t.Fatalf("Position = %d", ch.Position())
	}
	if _, err := NewChannel(nil, 1); err == nil {
		t.Error("nil trace accepted")
	}
}

func TestEstimatorDelayAndNoise(t *testing.T) {
	// A step trace: SNR jumps from 20 to 0 dB at symbol 1000. With a delay of
	// 200 symbols and no measurement error, the estimator must report the old
	// value until symbol 1200.
	step := stepTrace{at: 1000, before: 20, after: 0}
	est, err := NewEstimator(step, 200, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := est.Estimate(1100); got != 20 {
		t.Fatalf("estimate at 1100 = %v, want the stale 20 dB", got)
	}
	if got := est.Estimate(1300); got != 0 {
		t.Fatalf("estimate at 1300 = %v, want 0 dB", got)
	}
	// With measurement error the estimates should scatter around the truth.
	noisy, _ := NewEstimator(Constant{Level: 10}, 0, 2, 6)
	var sum, sumSq float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := noisy.Estimate(i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.3 || std < 1 || std > 3 {
		t.Fatalf("noisy estimator mean %v std %v, want about 10 and 2", mean, std)
	}
	if _, err := NewEstimator(nil, 0, 0, 1); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := NewEstimator(step, -1, 0, 1); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestEstimatorIsConsistentPerIndex(t *testing.T) {
	est, _ := NewEstimator(Constant{Level: 15}, 0, 3, 9)
	prop := func(raw uint16) bool {
		i := int(raw % 500)
		return est.Estimate(i) == est.Estimate(i)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// stepTrace is a test helper whose SNR changes once at a known index.
type stepTrace struct {
	at            int
	before, after float64
}

func (s stepTrace) SNRdB(i int) float64 {
	if i < s.at {
		return s.before
	}
	return s.after
}

func (s stepTrace) Name() string { return "step" }
