// Package fading models time-varying wireless channels: SNR traces that
// evolve over the duration of a transmission, the channels that apply them
// symbol by symbol, and the delayed/noisy SNR estimators that reactive
// bit-rate adaptation has to rely on.
//
// The introduction of the paper motivates rateless codes precisely with these
// dynamics: channel conditions change "even at time-scales shorter than a
// single packet transmission time", so a sender that measures SNR and then
// picks a fixed configuration is always acting on stale information. This
// package provides the substrate for the rate-adaptation-versus-rateless
// comparison in internal/adapt.
package fading

import (
	"fmt"
	"math"

	"spinal/internal/rng"
)

// Trace reports the instantaneous channel SNR (in dB) at a given symbol
// index. Traces are deterministic functions of their seed, so experiments are
// reproducible and the same trace can be replayed for every scheme under
// comparison.
type Trace interface {
	// SNRdB returns the channel SNR for the symbol at index i (i >= 0).
	SNRdB(i int) float64
	// Name identifies the trace in experiment output.
	Name() string
}

// Constant is a trace with a fixed SNR, the degenerate case used for
// calibration.
type Constant struct {
	Level float64
}

// SNRdB implements Trace.
func (c Constant) SNRdB(int) float64 { return c.Level }

// Name implements Trace.
func (c Constant) Name() string { return fmt.Sprintf("constant(%.1fdB)", c.Level) }

// GilbertElliott is a two-state Markov trace that alternates between a good
// and a bad SNR with geometric dwell times, a standard model for shadowing
// and bursty interference.
type GilbertElliott struct {
	goodSNR   float64
	badSNR    float64
	dwellGood int
	dwellBad  int
	seed      uint64

	// lazily generated state sequence, extended on demand
	states []bool // true = good
	src    *rng.Rand
}

// NewGilbertElliott returns a two-state trace. dwellGood and dwellBad are the
// mean sojourn times in symbols; transitions are sampled geometrically.
func NewGilbertElliott(goodSNR, badSNR float64, dwellGood, dwellBad int, seed uint64) (*GilbertElliott, error) {
	if dwellGood < 1 || dwellBad < 1 {
		return nil, fmt.Errorf("fading: dwell times must be at least one symbol")
	}
	return &GilbertElliott{
		goodSNR:   goodSNR,
		badSNR:    badSNR,
		dwellGood: dwellGood,
		dwellBad:  dwellBad,
		seed:      seed,
		src:       rng.New(seed),
		states:    []bool{true},
	}, nil
}

// SNRdB implements Trace.
func (g *GilbertElliott) SNRdB(i int) float64 {
	if i < 0 {
		i = 0
	}
	for len(g.states) <= i {
		cur := g.states[len(g.states)-1]
		dwell := g.dwellGood
		if !cur {
			dwell = g.dwellBad
		}
		// Geometric transition with mean dwell time.
		next := cur
		if g.src.Bernoulli(1 / float64(dwell)) {
			next = !cur
		}
		g.states = append(g.states, next)
	}
	if g.states[i] {
		return g.goodSNR
	}
	return g.badSNR
}

// Name implements Trace.
func (g *GilbertElliott) Name() string {
	return fmt.Sprintf("gilbert-elliott(%.0f/%.0fdB)", g.goodSNR, g.badSNR)
}

// RayleighBlock is a block-fading trace: the average SNR is scaled by an
// exponentially distributed power gain that is redrawn every coherence block.
type RayleighBlock struct {
	avgSNRdB  float64
	coherence int
	seed      uint64

	gains []float64
	src   *rng.Rand
}

// NewRayleighBlock returns a Rayleigh block-fading trace with the given
// average SNR and coherence time in symbols.
func NewRayleighBlock(avgSNRdB float64, coherence int, seed uint64) (*RayleighBlock, error) {
	if coherence < 1 {
		return nil, fmt.Errorf("fading: coherence time must be at least one symbol")
	}
	return &RayleighBlock{avgSNRdB: avgSNRdB, coherence: coherence, seed: seed, src: rng.New(seed)}, nil
}

// SNRdB implements Trace.
func (r *RayleighBlock) SNRdB(i int) float64 {
	if i < 0 {
		i = 0
	}
	block := i / r.coherence
	for len(r.gains) <= block {
		// |h|^2 is exponential with unit mean for Rayleigh fading.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		r.gains = append(r.gains, -math.Log(u))
	}
	g := r.gains[block]
	if g < 1e-6 {
		g = 1e-6
	}
	return r.avgSNRdB + 10*math.Log10(g)
}

// Name implements Trace.
func (r *RayleighBlock) Name() string {
	return fmt.Sprintf("rayleigh(avg %.0fdB, Tc=%d)", r.avgSNRdB, r.coherence)
}

// Walk is a bounded random walk in dB, modelling slow drift (a user walking
// away from an access point).
type Walk struct {
	min, max float64
	stepdB   float64
	seed     uint64

	levels []float64
	src    *rng.Rand
}

// NewWalk returns a random-walk trace starting midway between min and max,
// moving by ±stepdB per symbol and reflecting at the bounds.
func NewWalk(min, max, stepdB float64, seed uint64) (*Walk, error) {
	if max <= min {
		return nil, fmt.Errorf("fading: walk range [%v,%v] is empty", min, max)
	}
	if stepdB <= 0 {
		return nil, fmt.Errorf("fading: walk step must be positive")
	}
	w := &Walk{min: min, max: max, stepdB: stepdB, seed: seed, src: rng.New(seed)}
	w.levels = []float64{(min + max) / 2}
	return w, nil
}

// SNRdB implements Trace.
func (w *Walk) SNRdB(i int) float64 {
	if i < 0 {
		i = 0
	}
	for len(w.levels) <= i {
		cur := w.levels[len(w.levels)-1]
		if w.src.Bool() {
			cur += w.stepdB
		} else {
			cur -= w.stepdB
		}
		if cur > w.max {
			cur = w.max
		}
		if cur < w.min {
			cur = w.min
		}
		w.levels = append(w.levels, cur)
	}
	return w.levels[i]
}

// Name implements Trace.
func (w *Walk) Name() string {
	return fmt.Sprintf("walk(%.0f..%.0fdB)", w.min, w.max)
}

// Doppler is a Jakes-style sum-of-sinusoids fading trace: the power gain at
// symbol i is |Σ exp(j(2π·fd·i·cos αk + φk))|²/M over M scatterers with
// random angles of arrival and phases, giving the oscillating constructive/
// destructive interference pattern of a receiver moving at normalized Doppler
// frequency fd (cycles per symbol). Unlike the block models, the gain is a
// closed-form function of the index, so the trace has no mutable state.
type Doppler struct {
	avgSNRdB float64
	fd       float64
	cosA     []float64
	phase    []float64
}

// dopplerScatterers is the number of sinusoids summed per gain sample; eight
// is enough for the envelope to be visibly Rayleigh-like.
const dopplerScatterers = 8

// NewDoppler returns a Doppler fading trace with the given average SNR and
// normalized Doppler frequency fd in cycles per symbol (0 < fd <= 0.5).
// Scatterer angles and phases derive deterministically from seed.
func NewDoppler(avgSNRdB, fd float64, seed uint64) (*Doppler, error) {
	if fd <= 0 || fd > 0.5 {
		return nil, fmt.Errorf("fading: doppler frequency %v out of (0, 0.5]", fd)
	}
	src := rng.New(seed)
	d := &Doppler{
		avgSNRdB: avgSNRdB,
		fd:       fd,
		cosA:     make([]float64, dopplerScatterers),
		phase:    make([]float64, dopplerScatterers),
	}
	for k := range d.cosA {
		d.cosA[k] = math.Cos(2 * math.Pi * src.Float64())
		d.phase[k] = 2 * math.Pi * src.Float64()
	}
	return d, nil
}

// SNRdB implements Trace.
func (d *Doppler) SNRdB(i int) float64 {
	if i < 0 {
		i = 0
	}
	var re, im float64
	for k := range d.cosA {
		theta := 2*math.Pi*d.fd*float64(i)*d.cosA[k] + d.phase[k]
		re += math.Cos(theta)
		im += math.Sin(theta)
	}
	g := (re*re + im*im) / dopplerScatterers
	if g < 1e-6 {
		g = 1e-6
	}
	return d.avgSNRdB + 10*math.Log10(g)
}

// Name implements Trace.
func (d *Doppler) Name() string {
	return fmt.Sprintf("doppler(avg %.0fdB, fd=%.3g)", d.avgSNRdB, d.fd)
}

// Channel applies a trace to transmitted symbols: symbol i experiences AWGN
// at trace.SNRdB(i). It implements the same Corrupt contract as the static
// channels in internal/channel, tracking the symbol index internally.
type Channel struct {
	trace Trace
	src   *rng.Rand
	pos   int
}

// NewChannel returns a symbol channel driven by the trace, with its own noise
// stream derived from seed.
func NewChannel(trace Trace, seed uint64) (*Channel, error) {
	if trace == nil {
		return nil, fmt.Errorf("fading: nil trace")
	}
	return &Channel{trace: trace, src: rng.New(seed)}, nil
}

// Corrupt adds noise at the SNR the trace dictates for the current symbol.
func (c *Channel) Corrupt(x complex128) complex128 {
	snr := math.Pow(10, c.trace.SNRdB(c.pos)/10)
	c.pos++
	sigma2 := 1 / snr
	return x + c.src.ComplexNormal(sigma2)
}

// CorruptBlock corrupts a block of symbols into dst, advancing the trace per
// symbol exactly as scalar Corrupt calls would; dst and src have equal length
// and may alias. It implements the same block contract as the channels in
// internal/channel.
func (c *Channel) CorruptBlock(dst, src []complex128) {
	for i, x := range src {
		dst[i] = c.Corrupt(x)
	}
}

// Position returns how many symbols have passed through the channel.
func (c *Channel) Position() int { return c.pos }

// Sigma2 returns the complex noise variance the channel will apply to the
// next symbol — the instantaneous quality the trace currently dictates.
func (c *Channel) Sigma2() float64 {
	return math.Pow(10, -c.trace.SNRdB(c.pos)/10)
}

// Estimator models the SNR measurement a reactive rate-adaptation scheme
// acts on: the true SNR some delay ago, plus Gaussian measurement error.
type Estimator struct {
	trace   Trace
	delay   int
	errStd  float64
	src     *rng.Rand
	history map[int]float64
}

// NewEstimator returns an estimator with the given feedback delay (in
// symbols) and measurement error standard deviation (dB).
func NewEstimator(trace Trace, delaySymbols int, errStdDB float64, seed uint64) (*Estimator, error) {
	if trace == nil {
		return nil, fmt.Errorf("fading: nil trace")
	}
	if delaySymbols < 0 || errStdDB < 0 {
		return nil, fmt.Errorf("fading: negative delay or error")
	}
	return &Estimator{
		trace:   trace,
		delay:   delaySymbols,
		errStd:  errStdDB,
		src:     rng.New(seed),
		history: map[int]float64{},
	}, nil
}

// Estimate returns the estimated SNR available to the sender when it is about
// to transmit the symbol at index i.
func (e *Estimator) Estimate(i int) float64 {
	at := i - e.delay
	if at < 0 {
		at = 0
	}
	if v, ok := e.history[at]; ok {
		return v
	}
	v := e.trace.SNRdB(at) + e.errStd*e.src.NormFloat64()
	e.history[at] = v
	return v
}
