// Package experiments regenerates the paper's evaluation artifacts: the
// Figure 2 rate-versus-SNR curves (spinal code, Shannon bound,
// finite-blocklength bound, LDPC baselines) and the ablations implied by the
// text (beam width, puncturing, ADC depth, constellation mapping, BSC
// behaviour per Theorem 2). Each experiment is exposed as a plain function
// returning result rows — shared by the benchmarks and the tests — and
// registered as a sim.Scenario (see scenarios.go), which is how the
// spinalsim command discovers and runs it.
//
// Every trial loop in the package runs on the sim.Run sharded runner:
// trials derive their randomness from the trial index, decoders are leased
// from a shared core.DecoderPool, and per-point statistics are folded in
// trial order, so results are bit-identical at any worker count.
package experiments

import (
	"fmt"

	"spinal/internal/capacity"
	"spinal/internal/channel"
	"spinal/internal/constellation"
	"spinal/internal/core"
	"spinal/internal/rng"
	"spinal/internal/sim"
	"spinal/internal/stats"
)

// SpinalConfig describes one spinal-code operating point, defaulting to the
// configuration of Figure 2: 24-bit messages, k = 8, c = 10, B = 16, 14-bit
// ADC, the linear constellation of Eq. 3 and the striped (punctured)
// transmission schedule.
type SpinalConfig struct {
	MessageBits int
	K           int
	C           int
	BeamWidth   int
	ADCBits     int
	Trials      int
	Seed        uint64
	Mapper      string // "linear", "uniform" or "gaussian"
	Schedule    string // "striped" or "sequential"
	MaxPasses   int
	// Workers is the decoder's per-level parallelism (see
	// core.BeamDecoder.SetParallelism). Zero means automatic: experiments
	// that already parallelize across trials use serial per-trial decoders,
	// while single-session experiments keep the decoder's GOMAXPROCS
	// default. Results are bit-identical at any setting.
	Workers int
	// TrialWorkers is the sim.Run worker-pool size trials are sharded
	// across. Zero means GOMAXPROCS. Results are bit-identical at any
	// setting.
	TrialWorkers int
	// Metric is the decoder cost arithmetic (core.CostFloat64, the exact
	// default, or core.CostInt32 — the fixed-point metric whose rate
	// tariff the quantcost scenario measures).
	Metric core.CostMetric
	// Search is the decoder's tree-search strategy (the zero value is the
	// exact beam search; see core.SearchConfig). The frontier scenario
	// measures the rate/work trade of the approximate modes.
	Search core.SearchConfig
	// Pool optionally shares a decoder pool across calls (e.g. across the
	// points of a sweep); nil lets each call pool privately.
	Pool *core.DecoderPool
}

// Figure2Config returns the exact configuration of Figure 2 in the paper.
func Figure2Config() SpinalConfig {
	return SpinalConfig{
		MessageBits: 24,
		K:           8,
		C:           10,
		BeamWidth:   16,
		ADCBits:     14,
		Trials:      150,
		Seed:        core.DefaultSeed,
		Mapper:      "linear",
		Schedule:    "striped",
		MaxPasses:   600,
	}
}

func (c SpinalConfig) withDefaults() SpinalConfig {
	d := Figure2Config()
	if c.MessageBits == 0 {
		c.MessageBits = d.MessageBits
	}
	if c.K == 0 {
		c.K = d.K
	}
	if c.C == 0 {
		c.C = d.C
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = d.BeamWidth
	}
	if c.ADCBits == 0 {
		c.ADCBits = d.ADCBits
	}
	if c.Trials == 0 {
		c.Trials = d.Trials
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Mapper == "" {
		c.Mapper = d.Mapper
	}
	if c.Schedule == "" {
		c.Schedule = d.Schedule
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = d.MaxPasses
	}
	return c
}

// params builds the core parameters for the configuration.
func (c SpinalConfig) params() (core.Params, error) {
	mapper, err := constellation.ByName(c.Mapper, c.C)
	if err != nil {
		return core.Params{}, err
	}
	p := core.Params{
		K:           c.K,
		C:           c.C,
		MessageBits: c.MessageBits,
		Seed:        c.Seed,
		Mapper:      mapper,
	}
	return p, p.Validate()
}

// runner builds the trial runner for the configuration.
func (c SpinalConfig) runner() sim.Runner {
	return sim.Runner{Workers: c.TrialWorkers, Pool: c.Pool}
}

// RatePoint is one point of a rate-versus-SNR curve.
type RatePoint struct {
	SNRdB float64
	// Rate is the aggregate achieved rate in bits per symbol (total message
	// bits divided by total symbols, the y-axis of Figure 2).
	Rate float64
	// Capacity is the Shannon capacity at this SNR, for reference.
	Capacity float64
	// Conf95 is the half-width of a 95% confidence interval on the
	// per-message rate mean.
	Conf95 float64
	// Failures counts messages that were not decoded within the pass budget.
	Failures int
	// Trials is the number of messages simulated.
	Trials int
}

// SpinalRateCurve measures the rate achieved by the practical spinal decoder
// across the given SNR points (in dB), reproducing the spinal curve of
// Figure 2. Trials are sharded over the sim runner; results are
// deterministic for a fixed configuration because every trial derives its
// own random streams from the configured seed.
func SpinalRateCurve(cfg SpinalConfig, snrsDB []float64) ([]RatePoint, error) {
	cfg = cfg.withDefaults()
	if _, err := cfg.params(); err != nil {
		return nil, err
	}
	if cfg.Pool == nil {
		// One pool for the whole sweep, so workers reuse decoders across
		// points instead of rebuilding per SNR.
		cfg.Pool = core.NewDecoderPool(core.DefaultDecoderPoolCapacity)
		defer cfg.Pool.Drain()
	}
	points := make([]RatePoint, len(snrsDB))
	for i, snr := range snrsDB {
		pt, err := SpinalRateAtSNR(cfg, snr)
		if err != nil {
			return nil, err
		}
		points[i] = pt
	}
	return points, nil
}

// genieTrial is the per-trial outcome of the rate measurement.
type genieTrial struct {
	symbols int
	ok      bool
}

// SpinalRateAtSNR measures the achieved rate at a single SNR point. Trials
// run on the shared sim runner: each sim worker leases one decoder from the
// run's pool and reuses it (reset between trials) for every trial it
// executes.
func SpinalRateAtSNR(cfg SpinalConfig, snrDB float64) (RatePoint, error) {
	cfg = cfg.withDefaults()
	params, err := cfg.params()
	if err != nil {
		return RatePoint{}, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return RatePoint{}, err
	}

	results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (genieTrial, error) {
		lease, err := w.Decoder(params, cfg.BeamWidth)
		if err != nil {
			return genieTrial{}, err
		}
		// Validate the metric and search strategy against the decoder once
		// up front; runGenieTrial re-applies both after every lease.Reset
		// (which reverts per-lease tuning to the exact defaults).
		if err := lease.Dec.SetCostMetric(cfg.Metric); err != nil {
			return genieTrial{}, err
		}
		if err := lease.Dec.SetSearchConfig(cfg.Search); err != nil {
			return genieTrial{}, err
		}
		// Trials already fan out across the runner's workers, so the
		// per-trial decoder defaults to serial — nesting a GOMAXPROCS shard
		// pool inside the trial workers would oversubscribe. An explicit
		// cfg.Workers still applies for scaling studies.
		if cfg.Workers > 0 {
			lease.Dec.SetParallelism(cfg.Workers)
		} else {
			lease.Dec.SetParallelism(1)
		}
		symbols, ok := runGenieTrial(cfg, params, sched, lease, snrDB, uint64(trial))
		return genieTrial{symbols: symbols, ok: ok}, nil
	})
	if err != nil {
		return RatePoint{}, err
	}

	var meter stats.RateMeter
	failures := 0
	for _, r := range results {
		if !r.ok {
			failures++
		}
		bits := 0
		if r.ok {
			bits = cfg.MessageBits
		}
		meter.Record(bits, r.symbols)
	}
	return RatePoint{
		SNRdB:    snrDB,
		Rate:     meter.Rate(),
		Capacity: capacity.AWGNdB(snrDB),
		Conf95:   meter.PerMessage().Conf95(),
		Failures: failures,
		Trials:   cfg.Trials,
	}, nil
}

// runGenieTrial simulates one message: it precomputes the received symbols
// for the whole transmission budget and then finds the smallest schedule
// prefix from which the decoder recovers the message exactly (the paper's
// genie methodology: "the receiver informs the sender as soon as it is able
// to fully decode"). The search is exponential-then-binary, which is valid
// because decodability is (essentially) monotone in the number of received
// symbols.
func runGenieTrial(cfg SpinalConfig, params core.Params, sched core.Schedule, lease *core.LeasedDecoder, snrDB float64, trial uint64) (int, bool) {
	chSrc := rng.New(cfg.Seed ^ (0xbb67ae8584caa73b * (trial + 1)))
	radio, err := channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, chSrc)
	if err != nil {
		return 0, false
	}
	return runGenieTrialOver(cfg, params, sched, lease, radio, trial)
}

// runGenieTrialOver is runGenieTrial over an arbitrary block channel — the
// genie methodology is channel-agnostic, so impairment-pipeline experiments
// reuse the same search with the same per-trial message streams. The caller
// owns the radio's seeding; the message stream still derives from cfg.Seed
// and the trial index, so every scheme facing this radio sends the same
// messages.
func runGenieTrialOver(cfg SpinalConfig, params core.Params, sched core.Schedule, lease *core.LeasedDecoder, radio channel.BlockChannel, trial uint64) (int, bool) {
	msgSrc := rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * (trial + 1)))
	msg := core.RandomMessage(msgSrc, cfg.MessageBits)
	enc, err := core.NewEncoder(params, msg)
	if err != nil {
		return 0, false
	}

	nseg := params.NumSegments()
	maxSymbols := cfg.MaxPasses * nseg
	// Precompute the whole received stream through the batch path: one
	// schedule fill, one encoder fill and one block-channel call replace
	// three per-symbol calls each, with an identical noise stream.
	positions := make([]core.SymbolPos, maxSymbols)
	core.PositionsInto(sched, 0, positions)
	received := make([]complex128, maxSymbols)
	if enc.EncodeBatch(received, positions) != nil {
		return 0, false
	}
	radio.CorruptBlock(received, received)

	decodes := func(prefix int) bool {
		// Reset clears the leased container and bumps its epoch, so every
		// prefix decodes from the root exactly as a fresh container would.
		// It also reverts the cost metric and search strategy, so
		// non-default ones are re-applied (the caller already validated
		// them against the decoder).
		lease.Reset()
		if lease.Dec.SetCostMetric(cfg.Metric) != nil {
			return false
		}
		if lease.Dec.SetSearchConfig(cfg.Search) != nil {
			return false
		}
		if lease.Obs.AddBatch(positions[:prefix], received[:prefix]) != nil {
			return false
		}
		out, derr := lease.Dec.Decode(lease.Obs)
		if derr != nil {
			return false
		}
		return core.EqualMessages(out.Message, msg, cfg.MessageBits)
	}

	// The receiver attempts a decode after every symbol during the first two
	// passes (where each extra symbol changes the rate substantially) and
	// once per pass afterwards — the same adaptive policy a real receiver
	// uses. The candidate stopping points are therefore:
	attempts := attemptPoints(cfg, nseg, maxSymbols)

	// Exponential-then-binary search over the attempt points for the
	// earliest one from which the message decodes; decodability is
	// (essentially) monotone in the prefix length, which is what makes the
	// search equivalent to attempting at every point.
	lo, hi := 0, 0
	for {
		if hi >= len(attempts) {
			hi = len(attempts) - 1
		}
		if decodes(attempts[hi]) {
			break
		}
		if hi == len(attempts)-1 {
			return maxSymbols, false
		}
		lo = hi + 1
		hi = 2*hi + 2
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if decodes(attempts[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return attempts[hi], true
}

// attemptPoints lists the symbol counts at which the receiver attempts a
// decode: every symbol for the first two passes (starting from the smallest
// prefix that could carry the message at all), then every full pass.
func attemptPoints(cfg SpinalConfig, nseg, maxSymbols int) []int {
	minUses := (cfg.MessageBits + 2*cfg.C - 1) / (2 * cfg.C)
	if minUses < 1 {
		minUses = 1
	}
	var pts []int
	fine := 2 * nseg
	if fine > maxSymbols {
		fine = maxSymbols
	}
	for m := minUses; m <= fine; m++ {
		pts = append(pts, m)
	}
	for m := ((fine / nseg) + 1) * nseg; m <= maxSymbols; m += nseg {
		pts = append(pts, m)
	}
	if len(pts) == 0 || pts[len(pts)-1] != maxSymbols {
		pts = append(pts, maxSymbols)
	}
	return pts
}

// scheduleFor builds the configured transmission schedule.
func scheduleFor(cfg SpinalConfig, nseg int) (core.Schedule, error) {
	switch cfg.Schedule {
	case "striped", "":
		return core.NewStripedSchedule(nseg, 8)
	case "sequential":
		return core.NewSequentialSchedule(nseg)
	default:
		return nil, fmt.Errorf("experiments: unknown schedule %q", cfg.Schedule)
	}
}

// DecodeCostPoint summarizes the decoding work of full rateless
// transmissions with and without incremental workspace reuse. The decoded
// messages are verified identical between the two modes, so the point
// isolates pure computational savings.
type DecodeCostPoint struct {
	SNRdB float64
	// IncrementalNodes is the total number of freshly expanded tree nodes
	// (hash replay plus full cost computation) across all decode attempts of
	// all trials with the incremental decoder.
	IncrementalNodes int64
	// IncrementalRefreshed counts cached nodes reused with an in-place cost
	// update — the cheap work that replaced re-expansion.
	IncrementalRefreshed int64
	// FromScratchNodes is the same total when every attempt restarts at the
	// tree root (the pre-incremental behavior).
	FromScratchNodes int64
	// NodeSpeedup is FromScratchNodes / IncrementalNodes.
	NodeSpeedup float64
	// Delivered counts messages decoded within the pass budget (identical in
	// both modes by construction).
	Delivered int
	Trials    int
}

// incrementalTrial is the per-trial outcome of the incremental comparison.
type incrementalTrial struct {
	incNodes     int64
	incRefreshed int64
	scratchNodes int64
	delivered    bool
}

// IncrementalDecodeComparison runs the same rateless transmissions twice —
// once with the incremental decoder and once forcing every attempt from
// scratch — and reports the total tree-expansion work of each mode. Message
// and channel randomness are derived from the configured seed, so both modes
// see byte-identical symbol streams; the function errors if the two modes
// ever disagree on a decoded message or on the number of channel uses, which
// doubles as an end-to-end equivalence check of the incremental pipeline.
func IncrementalDecodeComparison(cfg SpinalConfig, snrDB float64) (DecodeCostPoint, error) {
	cfg = cfg.withDefaults()
	params, err := cfg.params()
	if err != nil {
		return DecodeCostPoint{}, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return DecodeCostPoint{}, err
	}
	results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (incrementalTrial, error) {
		msg := core.RandomMessage(rng.New(cfg.Seed^(0x9e3779b97f4a7c15*uint64(trial+1))), cfg.MessageBits)
		run := func(disableIncremental bool) (*core.Result, error) {
			radio, err := channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, rng.New(cfg.Seed^(0xbb67ae8584caa73b*uint64(trial+1))))
			if err != nil {
				return nil, err
			}
			return core.RunChannelSession(core.SessionConfig{
				Params:             params,
				BeamWidth:          cfg.BeamWidth,
				Schedule:           sched,
				MaxSymbols:         cfg.MaxPasses * params.NumSegments(),
				DisableIncremental: disableIncremental,
				Parallelism:        trialParallelism(cfg),
				Pool:               w.Pool(),
			}, msg, radio, core.GenieVerifier(msg, cfg.MessageBits))
		}
		inc, err := run(false)
		if err != nil {
			return incrementalTrial{}, err
		}
		scratch, err := run(true)
		if err != nil {
			return incrementalTrial{}, err
		}
		if inc.Success != scratch.Success || inc.ChannelUses != scratch.ChannelUses ||
			!core.EqualMessages(inc.Decoded, scratch.Decoded, cfg.MessageBits) {
			return incrementalTrial{}, fmt.Errorf(
				"experiments: incremental and from-scratch decodes diverged")
		}
		return incrementalTrial{
			incNodes:     inc.NodesExpanded,
			incRefreshed: inc.NodesRefreshed,
			scratchNodes: scratch.NodesExpanded,
			delivered:    inc.Success,
		}, nil
	})
	if err != nil {
		return DecodeCostPoint{}, err
	}
	pt := DecodeCostPoint{SNRdB: snrDB, Trials: cfg.Trials}
	for _, r := range results {
		pt.IncrementalNodes += r.incNodes
		pt.IncrementalRefreshed += r.incRefreshed
		pt.FromScratchNodes += r.scratchNodes
		if r.delivered {
			pt.Delivered++
		}
	}
	if pt.IncrementalNodes > 0 {
		pt.NodeSpeedup = float64(pt.FromScratchNodes) / float64(pt.IncrementalNodes)
	}
	return pt, nil
}

// trialParallelism is the decoder parallelism used inside runner-sharded
// session trials: serial unless the configuration asks for decoder workers
// explicitly, because the runner already fans trials out across CPUs.
func trialParallelism(cfg SpinalConfig) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return 1
}

// BeamPoint is one point of the beam-width (scale-down) ablation.
type BeamPoint struct {
	BeamWidth int
	RatePoint
}

// BeamWidthSweep measures the achieved rate at one SNR for several decoder
// beam widths, quantifying the graceful scale-down property of §3.2.
func BeamWidthSweep(cfg SpinalConfig, snrDB float64, beams []int) ([]BeamPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]BeamPoint, 0, len(beams))
	for _, b := range beams {
		if b < 1 {
			return nil, fmt.Errorf("experiments: beam width %d invalid", b)
		}
		c := cfg
		c.BeamWidth = b
		pt, err := SpinalRateAtSNR(c, snrDB)
		if err != nil {
			return nil, err
		}
		out = append(out, BeamPoint{BeamWidth: b, RatePoint: pt})
	}
	return out, nil
}

// ADCPoint is one point of the quantization ablation.
type ADCPoint struct {
	Bits int
	RatePoint
}

// QuantizationSweep measures the achieved rate at one SNR as the receiver ADC
// resolution varies, validating the paper's choice of 14 bits per dimension.
func QuantizationSweep(cfg SpinalConfig, snrDB float64, bits []int) ([]ADCPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]ADCPoint, 0, len(bits))
	for _, b := range bits {
		c := cfg
		c.ADCBits = b
		pt, err := SpinalRateAtSNR(c, snrDB)
		if err != nil {
			return nil, err
		}
		out = append(out, ADCPoint{Bits: b, RatePoint: pt})
	}
	return out, nil
}

// MapperComparison measures rate curves for several constellation mappings
// (the §6 future-work item on alternative mappings).
func MapperComparison(cfg SpinalConfig, snrsDB []float64, mappers []string) (map[string][]RatePoint, error) {
	cfg = cfg.withDefaults()
	out := make(map[string][]RatePoint, len(mappers))
	for _, m := range mappers {
		c := cfg
		c.Mapper = m
		curve, err := SpinalRateCurve(c, snrsDB)
		if err != nil {
			return nil, err
		}
		out[m] = curve
	}
	return out, nil
}

// PuncturingComparison contrasts the punctured (striped) schedule against the
// plain sequential schedule, demonstrating the §3.1 claim that puncturing
// lifts the maximum rate above k bits/symbol at high SNR.
func PuncturingComparison(cfg SpinalConfig, snrsDB []float64) (punctured, sequential []RatePoint, err error) {
	cfg = cfg.withDefaults()
	p := cfg
	p.Schedule = "striped"
	punctured, err = SpinalRateCurve(p, snrsDB)
	if err != nil {
		return nil, nil, err
	}
	s := cfg
	s.Schedule = "sequential"
	sequential, err = SpinalRateCurve(s, snrsDB)
	if err != nil {
		return nil, nil, err
	}
	return punctured, sequential, nil
}

// Theorem1Point compares a measured rate with the Theorem 1 guarantee.
type Theorem1Point struct {
	SNRdB      float64
	Rate       float64
	Guarantee  float64
	Capacity   float64
	GapToCap   float64
	MeetsBound bool
}

// Theorem1Gap measures the empirical rate across SNRs and reports it next to
// the Theorem 1 lower bound C − ½log2(πe/6) and the Shannon capacity.
func Theorem1Gap(cfg SpinalConfig, snrsDB []float64) ([]Theorem1Point, error) {
	curve, err := SpinalRateCurve(cfg, snrsDB)
	if err != nil {
		return nil, err
	}
	out := make([]Theorem1Point, len(curve))
	for i, pt := range curve {
		guarantee := capacity.Theorem1Rate(pt.SNRdB)
		out[i] = Theorem1Point{
			SNRdB:      pt.SNRdB,
			Rate:       pt.Rate,
			Guarantee:  guarantee,
			Capacity:   pt.Capacity,
			GapToCap:   pt.Capacity - pt.Rate,
			MeetsBound: pt.Rate >= guarantee*0.9,
		}
	}
	return out, nil
}

// BSCPoint is one point of the BSC (Theorem 2) experiment.
type BSCPoint struct {
	P        float64
	Rate     float64
	Capacity float64
	// Conf95 is the half-width of a 95% confidence interval on the
	// per-message rate mean.
	Conf95   float64
	Failures int
	Trials   int
}

// bscTrial is the per-trial outcome of the BSC measurement.
type bscTrial struct {
	uses int
	ok   bool
}

// SpinalBSCCurve measures the rate achieved by the spinal code over binary
// symmetric channels with the given crossover probabilities, the empirical
// counterpart of Theorem 2. Trials are sharded over the sim runner, with
// session decoders leased from the run's pool.
func SpinalBSCCurve(cfg SpinalConfig, crossovers []float64) ([]BSCPoint, error) {
	cfg = cfg.withDefaults()
	params := core.Params{K: cfg.K, C: cfg.C, MessageBits: cfg.MessageBits, Seed: cfg.Seed}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	out := make([]BSCPoint, 0, len(crossovers))
	for _, p := range crossovers {
		results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (bscTrial, error) {
			msgSrc := rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			msg := core.RandomMessage(msgSrc, cfg.MessageBits)
			chSrc := rng.New(cfg.Seed ^ (0xbb67ae8584caa73b * uint64(trial+1)))
			bsc, err := channel.NewBSC(p, chSrc)
			if err != nil {
				return bscTrial{}, err
			}
			sessionCfg := core.SessionConfig{
				Params:      params,
				BeamWidth:   cfg.BeamWidth,
				Attempts:    core.AttemptEveryPass{},
				MaxSymbols:  cfg.MaxPasses * params.NumSegments(),
				Parallelism: trialParallelism(cfg),
				Search:      cfg.Search,
				Pool:        w.Pool(),
			}
			res, err := core.RunBitChannelSession(sessionCfg, msg, bsc, core.GenieVerifier(msg, cfg.MessageBits))
			if err != nil {
				return bscTrial{}, err
			}
			return bscTrial{uses: res.ChannelUses, ok: res.Success}, nil
		})
		if err != nil {
			return nil, err
		}
		var meter stats.RateMeter
		failures := 0
		for _, r := range results {
			bits := 0
			if r.ok {
				bits = cfg.MessageBits
			} else {
				failures++
			}
			meter.Record(bits, r.uses)
		}
		out = append(out, BSCPoint{
			P:        p,
			Rate:     meter.Rate(),
			Capacity: capacity.BSC(p),
			Conf95:   meter.PerMessage().Conf95(),
			Failures: failures,
			Trials:   cfg.Trials,
		})
	}
	return out, nil
}
