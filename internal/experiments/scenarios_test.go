package experiments

import (
	"runtime"
	"testing"

	"spinal/internal/sim"
)

// registryNames are the scenarios this package is expected to register; the
// test fails if one goes missing so a scenario cannot be dropped silently.
var registryNames = []string{
	"figure2", "spinal", "bounds", "ldpc", "conv", "bsc", "beam", "puncture",
	"adc", "mapper", "theorem1", "fountain", "harq", "adapt", "fixedrate",
	"incremental", "parallel", "multiflow", "batch", "quantcost",
	"impairsweep", "churnload", "bakeoff", "frontier", "saturate",
}

// smokeRequest is the minimal-trials request the registry-wide tests run
// every scenario with: one SNR point, a handful of trials and frames.
func smokeRequest() sim.Request {
	req := sim.DefaultRequest()
	req.SNRs = []float64{10}
	req.SNR = 18 // the multiflow/beam operating point; 18 dB delivers reliably
	req.Trials = 2
	req.Frames = 4
	return req
}

func TestRegistryComplete(t *testing.T) {
	for _, name := range registryNames {
		sc, ok := sim.Lookup(name)
		if !ok {
			t.Errorf("scenario %q not registered", name)
			continue
		}
		if sc.Description == "" || len(sc.Flags) == 0 || len(sc.Schema) == 0 {
			t.Errorf("scenario %q missing metadata: %+v", name, sc)
		}
	}
}

// TestRegistryDeterministicAcrossTrialWorkers is the registry-wide property
// test of the sharded runner: every scenario, run at trial-worker counts
// {1, 3, GOMAXPROCS}, must produce bit-identical point values (volatile
// wall-clock columns excluded via Result.Fingerprint). This is the same
// guarantee the decoder makes for its shard workers, lifted to the whole
// experiments stack.
func TestRegistryDeterministicAcrossTrialWorkers(t *testing.T) {
	workerCounts := []int{1, 3, runtime.GOMAXPROCS(0)}
	for _, name := range registryNames {
		sc, ok := sim.Lookup(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			var want string
			var wantWorkers int
			for _, w := range workerCounts {
				req := smokeRequest()
				req.TrialWorkers = w
				res, err := sc.Run(req)
				if err != nil {
					t.Fatalf("trial-workers=%d: %v", w, err)
				}
				if len(res.Tables) == 0 {
					t.Fatalf("trial-workers=%d: scenario produced no tables", w)
				}
				fp := res.Fingerprint()
				if want == "" {
					want, wantWorkers = fp, w
					continue
				}
				if fp != want {
					t.Errorf("results differ between %d and %d trial workers:\n--- %d workers ---\n%s\n--- %d workers ---\n%s",
						wantWorkers, w, wantWorkers, want, w, fp)
				}
			}
		})
	}
}
