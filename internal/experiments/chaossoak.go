package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spinal/internal/link"
)

// ChaosSoakPoint summarizes one end-to-end soak of the link engine over a
// fault-injected UDP loopback: many concurrent sender processes-in-miniature
// stream messages through seeded schedules of loss, duplication, reordering,
// corruption, burst loss and ack-direction faults, and the point records
// whether every message resolved cleanly and whether the engine leaked.
type ChaosSoakPoint struct {
	// Mode is "clean" (no fault injection) or "chaos" (every flow faulted,
	// the last flow hostile).
	Mode string
	// Flows is the number of concurrent sender identities; Messages is the
	// total message count across them.
	Flows    int
	Messages int
	// Delivered/Shed/Expired partition the resolved messages: positively
	// acknowledged, negatively acknowledged (admission control), or given up
	// cleanly at the sender's retransmit deadline. Lost counts messages that
	// resolved none of those ways — the soak's hard failure signal.
	Delivered int
	Shed      int
	Expired   int
	Lost      int
	// AckFramesIgnored sums the senders' discarded-ack counters (corrupted
	// or misdirected feedback frames the hardened ack wait rode out).
	AckFramesIgnored int
	// Fairness is Jain's index over the per-flow delivered rates of the
	// well-behaved flows (the hostile flow, when present, is excluded): the
	// DoS question is whether the hostile flow hurt everyone else.
	Fairness float64
	// HostileDelivered is how many of the hostile flow's messages still got
	// through its own hostile schedule (chaos mode only).
	HostileDelivered int
	// BudgetDeferrals counts decode-scheduler decisions that deferred an
	// over-budget flow; ShedFlows/ExpiredFlows are the receiver's admission
	// and idle-expiry drop counters.
	BudgetDeferrals uint64
	ShedFlows       uint64
	ExpiredFlows    uint64
	// FaultDrops/FaultCorrupted/FaultDuplicated/FaultReordered/FaultErrors
	// aggregate the fault lanes' ledgers across every sender (both
	// directions), proving the schedule actually fired.
	FaultDrops      uint64
	FaultCorrupted  uint64
	FaultDuplicated uint64
	FaultReordered  uint64
	FaultErrors     uint64
	// PoolOutstanding and AckArenaOutstanding are the leak gates, read after
	// the receiver is closed: decoder leases and ack marshal buffers still
	// checked out. Both must be zero.
	PoolOutstanding     int
	AckArenaOutstanding int
	// Elapsed is the soak wall-clock time.
	Elapsed time.Duration
}

// chaosSoakPayloadLen keeps per-message decodes cheap (k=4 runs many flows
// concurrently) while still spanning several frames per pass.
const chaosSoakPayloadLen = 16

// chaosMildProfile is the fault schedule every well-behaved chaos flow runs
// its data frames through: enough loss, duplication, reordering, corruption
// and transient I/O errors to exercise each hardening path, mild enough that
// rateless retransmission always wins.
func chaosMildProfile() link.FaultProfile {
	return link.FaultProfile{
		DropProb:    0.05,
		DupProb:     0.05,
		ReorderProb: 0.05,
		CorruptProb: 0.02,
		ErrProb:     0.01,
	}
}

// chaosMildAckProfile impairs the feedback direction of well-behaved flows:
// lost and duplicated acks force the ack-repeat path and the sender backoff.
func chaosMildAckProfile() link.FaultProfile {
	return link.FaultProfile{DropProb: 0.1, DupProb: 0.1}
}

// chaosHostileProfile is the hostile flow's data schedule: Gilbert-Elliott
// burst loss on top of independent loss, heavy corruption, duplication,
// reordering and periodic stall windows — the flow that must not be able to
// starve everyone else.
func chaosHostileProfile() link.FaultProfile {
	return link.FaultProfile{
		DropProb:    0.05,
		DupProb:     0.05,
		ReorderProb: 0.1,
		CorruptProb: 0.2,
		GE: &link.GilbertElliott{
			GoodToBad: 0.05,
			BadToGood: 0.3,
			GoodLoss:  0.02,
			BadLoss:   0.9,
		},
		StallEvery:  64,
		StallFrames: 8,
	}
}

// chaosHostileAckProfile batters the hostile flow's feedback path.
func chaosHostileAckProfile() link.FaultProfile {
	return link.FaultProfile{DropProb: 0.4, DupProb: 0.2, ErrProb: 0.05}
}

// chaosSoakPayload derives the deterministic payload of one (flow, msg).
func chaosSoakPayload(seed uint64, flow, msg int) []byte {
	p := make([]byte, chaosSoakPayloadLen)
	for i := range p {
		p[i] = byte(seed>>uint(i%8*8) ^ uint64(flow*131+msg*31+i*7+1))
	}
	return p
}

// ChaosSoak runs the link engine end to end over UDP loopback twice — once
// clean, once under seeded fault schedules with the last flow hostile — and
// enforces the delivered-or-shed guarantee, the leak gates and the fairness
// floor: the chaos run's Jain index across well-behaved flows must stay
// within floor (e.g. 0.9) of the clean run's. Violations are returned as
// errors so CI fails loudly; the points carry the measured values either way.
func ChaosSoak(seed uint64, flows, msgs int, floor float64) ([]ChaosSoakPoint, error) {
	if flows < 2 || msgs < 1 {
		return nil, fmt.Errorf("experiments: chaossoak needs at least two flows and one message, got %d/%d", flows, msgs)
	}
	if seed == 0 {
		seed = 0x5eed
	}
	clean, err := chaosSoakRun("clean", seed, flows, msgs)
	if err != nil {
		return nil, err
	}
	chaos, err := chaosSoakRun("chaos", seed, flows, msgs)
	if err != nil {
		return nil, err
	}
	pts := []ChaosSoakPoint{*clean, *chaos}
	for _, p := range pts {
		if p.Lost > 0 {
			return pts, fmt.Errorf("experiments: chaossoak %s run lost %d messages forever (not delivered, shed, or deadline-expired)", p.Mode, p.Lost)
		}
		if p.PoolOutstanding != 0 {
			return pts, fmt.Errorf("experiments: chaossoak %s run leaked %d decoder leases", p.Mode, p.PoolOutstanding)
		}
		if p.AckArenaOutstanding != 0 {
			return pts, fmt.Errorf("experiments: chaossoak %s run leaked %d ack arena buffers", p.Mode, p.AckArenaOutstanding)
		}
	}
	if floor > 0 && chaos.Fairness < floor*clean.Fairness {
		return pts, fmt.Errorf("experiments: chaossoak fairness %.3f under a hostile flow fell below %.2fx the clean run's %.3f",
			chaos.Fairness, floor, clean.Fairness)
	}
	return pts, nil
}

// chaosFlowResult is one sender goroutine's tally.
type chaosFlowResult struct {
	delivered   int
	shed        int
	expired     int
	lost        int
	ackIgnored  int
	symbolsSent int
	bitsAcked   int
	tx, rx      link.LaneStats
	err         error
}

// faultStatser is the stats surface every fault-transport wrapper promotes.
type faultStatser interface {
	TxStats() link.LaneStats
	RxStats() link.LaneStats
}

func chaosSoakRun(mode string, seed uint64, flows, msgs int) (*ChaosSoakPoint, error) {
	// One clean server socket; all fault injection lives on the sender side,
	// in both directions (tx faults impair data, rx faults impair acks), so
	// each flow runs its own seeded schedule.
	recvUDP, err := link.NewUDP("127.0.0.1:0", "")
	if err != nil {
		return nil, err
	}
	rcfg := link.Config{
		K:                4,
		Seed:             seed,
		FlowDecodeBudget: 25000,
		IdleExpiry:       5 * time.Second,
	}
	recv, err := link.NewReceiver(recvUDP, rcfg, nil)
	if err != nil {
		recvUDP.Close()
		return nil, err
	}
	recvAddr := recvUDP.LocalAddr().String()

	// Expected payloads, for bit-exactness verification at delivery.
	expect := map[uint64][]byte{}
	for f := 1; f <= flows; f++ {
		for m := 1; m <= msgs; m++ {
			expect[uint64(f)<<32|uint64(m)] = chaosSoakPayload(seed, f, m)
		}
	}

	// The receiver pump: ingest, decode, verify every delivery bit-identical
	// to the expected payload. Corrupted frames can spawn ghost flows and
	// messages the receiver must absorb; they never deliver (the CRC gates
	// them) and their state is bounded by admission control and idle expiry.
	var delivered atomic.Int64
	var pumpErr atomic.Value
	stop := make(chan struct{})
	pumpDone := make(chan struct{})
	statsCh := make(chan link.EngineStats, 1)
	go func() {
		defer close(pumpDone)
		// Snapshot the engine counters on exit, from the ingest goroutine —
		// the only goroutine allowed to read them — before handing the
		// receiver back for Close.
		defer func() { statsCh <- recv.EngineStats() }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			d, err := recv.Receive(2 * time.Millisecond)
			if err != nil && err != link.ErrTimeout {
				pumpErr.Store(err)
				return
			}
			if d == nil {
				continue
			}
			want, ok := expect[uint64(d.FlowID)<<32|uint64(d.MsgID)]
			if !ok || !bytes.Equal(d.Payload, want) {
				pumpErr.Store(fmt.Errorf("experiments: chaossoak delivered a wrong payload for flow %d msg %d", d.FlowID, d.MsgID))
				return
			}
			delivered.Add(1)
		}
	}()

	// One sender goroutine per flow, each over its own (possibly faulted)
	// UDP socket. The last flow is the hostile one in chaos mode.
	results := make([]chaosFlowResult, flows)
	start := time.Now()
	var wg sync.WaitGroup
	for f := 1; f <= flows; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			res := &results[f-1]
			udp, err := link.NewUDP("127.0.0.1:0", recvAddr)
			if err != nil {
				res.err = err
				return
			}
			defer udp.Close()
			var tr link.Transport = udp
			if mode == "chaos" {
				tx, rx := chaosMildProfile(), chaosMildAckProfile()
				if f == flows {
					tx, rx = chaosHostileProfile(), chaosHostileAckProfile()
				}
				tr = link.NewFaultTransport(udp, tx, rx, seed^uint64(f)*0x9e3779b97f4a7c15)
			}
			defer func() {
				if fs, ok := tr.(faultStatser); ok {
					res.tx, res.rx = fs.TxStats(), fs.RxStats()
				}
			}()
			scfg := link.Config{
				K:            4,
				Seed:         seed,
				FlowID:       uint32(f),
				MaxPasses:    200,
				SendDeadline: 30 * time.Second,
			}
			snd, err := link.NewSender(tr, scfg)
			if err != nil {
				res.err = err
				return
			}
			for m := 1; m <= msgs; m++ {
				rep, err := snd.Send(uint32(m), chaosSoakPayload(seed, f, m))
				if rep != nil {
					res.ackIgnored += rep.AckFramesIgnored
					res.symbolsSent += rep.SymbolsSent
				}
				switch {
				case err != nil && errors.Is(err, link.ErrDeadline):
					res.expired++
				case err != nil:
					res.err = err
					return
				case rep.Acked:
					res.delivered++
					res.bitsAcked += chaosSoakPayloadLen * 8
				case rep.Shed:
					res.shed++
				default:
					res.lost++
				}
			}
		}(f)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Give in-flight receiver work a moment to drain, then stop the pump and
	// close the receiver; Close returns every surviving decoder lease.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-pumpDone
	stats := <-statsCh
	if err := recv.Close(); err != nil {
		return nil, err
	}
	poolAfter := recv.PoolStats()
	ackArena := stats.AckArena
	recvUDP.Close()
	if e := pumpErr.Load(); e != nil {
		return nil, e.(error)
	}

	pt := &ChaosSoakPoint{
		Mode:            mode,
		Flows:           flows,
		Messages:        flows * msgs,
		BudgetDeferrals: stats.BudgetDeferrals,
		ShedFlows:       stats.ShedFlows,
		ExpiredFlows:    stats.ExpiredFlows,
		PoolOutstanding: poolAfter.Outstanding,
		// Outstanding ack buffers are released before each send returns, so
		// any nonzero residue here is a real leak.
		AckArenaOutstanding: ackArena.Outstanding,
		Elapsed:             elapsed,
	}
	rates := make([]float64, 0, flows)
	for i := range results {
		res := &results[i]
		if res.err != nil {
			return nil, res.err
		}
		pt.Delivered += res.delivered
		pt.Shed += res.shed
		pt.Expired += res.expired
		pt.Lost += res.lost
		pt.AckFramesIgnored += res.ackIgnored
		for _, lane := range []link.LaneStats{res.tx, res.rx} {
			pt.FaultDrops += lane.Dropped
			pt.FaultCorrupted += lane.Corrupted
			pt.FaultDuplicated += lane.Duplicated
			pt.FaultReordered += lane.Reordered
			pt.FaultErrors += lane.Errors
		}
		hostile := mode == "chaos" && i == flows-1
		if hostile {
			pt.HostileDelivered = res.delivered
		} else if res.symbolsSent > 0 {
			rates = append(rates, float64(res.bitsAcked)/float64(res.symbolsSent))
		}
	}
	pt.Fairness = jainIndex(rates)
	return pt, nil
}
