package experiments

import (
	"fmt"

	"spinal/internal/capacity"
)

// BoundPoint is one point of a reference-bound curve.
type BoundPoint struct {
	SNRdB float64
	// Shannon is the AWGN channel capacity in bits per symbol.
	Shannon float64
	// FiniteBlock is the normal-approximation bound for a rated block code of
	// the configured length and error probability (the dashed curve in
	// Figure 2).
	FiniteBlock float64
	// Theorem1 is the rate guaranteed achievable by Theorem 1.
	Theorem1 float64
}

// BoundsCurve evaluates the reference curves of Figure 2 at the given SNRs:
// the Shannon bound, the finite-blocklength approximation for block length n
// channel uses at error probability eps, and the Theorem 1 guarantee.
func BoundsCurve(snrsDB []float64, n int, eps float64) ([]BoundPoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: block length %d invalid", n)
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("experiments: error probability %v invalid", eps)
	}
	out := make([]BoundPoint, len(snrsDB))
	for i, snr := range snrsDB {
		fb, err := capacity.NormalApproxdB(snr, n, eps)
		if err != nil {
			return nil, err
		}
		out[i] = BoundPoint{
			SNRdB:       snr,
			Shannon:     capacity.AWGNdB(snr),
			FiniteBlock: fb,
			Theorem1:    capacity.Theorem1Rate(snr),
		}
	}
	return out, nil
}

// Figure2Bounds evaluates the bounds with the parameters used by the paper's
// figure: block length 24 and error probability 1e-4.
func Figure2Bounds(snrsDB []float64) ([]BoundPoint, error) {
	return BoundsCurve(snrsDB, 24, 1e-4)
}

// SNRSweep returns an inclusive dB sweep from lo to hi with the given step.
func SNRSweep(lo, hi, step float64) ([]float64, error) {
	if step <= 0 {
		return nil, fmt.Errorf("experiments: sweep step must be positive, got %v", step)
	}
	if hi < lo {
		return nil, fmt.Errorf("experiments: sweep range [%v,%v] is empty", lo, hi)
	}
	var out []float64
	for v := lo; v <= hi+1e-9; v += step {
		out = append(out, v)
	}
	return out, nil
}

// Figure2SNRs returns the SNR grid used to regenerate Figure 2:
// −10 dB to 40 dB.
func Figure2SNRs(step float64) ([]float64, error) {
	return SNRSweep(-10, 40, step)
}
