package experiments

import (
	"strings"
	"testing"
)

// TestBatchObserveComparisonEquivalence runs the scalar-versus-batch
// comparison on a small configuration; the comparison itself errors if the
// two modes ever produce different transmissions, so a nil error is the
// equivalence assertion.
func TestBatchObserveComparisonEquivalence(t *testing.T) {
	cfg := SpinalConfig{Trials: 4, MaxPasses: 150}
	for _, snr := range []float64{6, 15} {
		pt, err := BatchObserveComparison(cfg, snr)
		if err != nil {
			t.Fatalf("snr %.0f: %v", snr, err)
		}
		if pt.Delivered == 0 {
			t.Fatalf("snr %.0f: no messages delivered", snr)
		}
		if pt.Symbols == 0 || pt.BatchNS <= 0 || pt.ScalarNS <= 0 {
			t.Fatalf("snr %.0f: implausible point %+v", snr, pt)
		}
	}
}

func TestFormatBatch(t *testing.T) {
	tab := FormatBatch([]BatchPoint{{SNRdB: 10, ScalarNS: 2e6, BatchNS: 1e6, Speedup: 2, Symbols: 100, Delivered: 4, Trials: 4}})
	s := tab.String()
	for _, want := range []string{"batch_speedup", "2.00x", "scalar_ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}
