package experiments

import (
	"strings"
	"testing"
)

// TestMultiFlowComparison runs a small flow sweep end to end. The function
// itself enforces the shared-vs-dedicated equivalence (it errors on any
// payload divergence), so the test focuses on delivery, fairness sanity and
// decoder-pool reuse.
func TestMultiFlowComparison(t *testing.T) {
	cfg := SpinalConfig{MessageBits: 96, K: 4, C: 8, BeamWidth: 8, Trials: 1, Seed: 1}
	flowCounts := []int{1, 4}
	msgs := 2
	if testing.Short() {
		flowCounts = []int{2}
	}
	pts, err := MultiFlowComparison(cfg, 18, flowCounts, msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(flowCounts) {
		t.Fatalf("got %d points, want %d", len(pts), len(flowCounts))
	}
	for _, p := range pts {
		total := p.Flows * p.MessagesPerFlow
		if p.Delivered != total {
			t.Fatalf("%d flows: delivered %d/%d at 18 dB", p.Flows, p.Delivered, total)
		}
		if p.GoodputBitsPerSec <= 0 {
			t.Fatalf("%d flows: non-positive goodput", p.Flows)
		}
		if p.Fairness < 0.5 || p.Fairness > 1.0001 {
			t.Fatalf("%d flows: implausible fairness index %v", p.Flows, p.Fairness)
		}
		if p.AggregateRate <= 0 {
			t.Fatalf("%d flows: non-positive aggregate rate", p.Flows)
		}
		// Each flow sends messages sequentially, so the second message of a
		// flow must reuse the decoder its first message returned.
		if p.MessagesPerFlow > 1 && p.PoolHits == 0 {
			t.Fatalf("%d flows: sequential messages never hit the decoder pool", p.Flows)
		}
	}

	table := FormatMultiFlow(pts)
	rendered := table.String()
	for _, col := range []string{"flows", "goodput_bps", "fairness", "pool_hit"} {
		if !strings.Contains(rendered, col) {
			t.Fatalf("rendered table missing column %q:\n%s", col, rendered)
		}
	}

	if _, err := MultiFlowComparison(cfg, 18, []int{0}, 1); err == nil {
		t.Fatal("flow count 0 accepted")
	}
}
