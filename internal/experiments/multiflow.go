package experiments

import (
	"bytes"
	"fmt"
	"time"

	"spinal/internal/channel"
	"spinal/internal/link"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// MultiFlowPoint summarizes one flow-count operating point of the
// flow-multiplexed link engine: many senders sharing one receiver, one
// decoder pool and one decode-worker pool.
type MultiFlowPoint struct {
	// Flows is the number of concurrent sender identities.
	Flows int
	// MessagesPerFlow is how many packets each flow transmits in sequence.
	MessagesPerFlow int
	SNRdB           float64
	// Delivered counts packets decoded within the pass budget, out of
	// Flows*MessagesPerFlow.
	Delivered int
	// Elapsed is the wall-clock time from the first frame to the last
	// delivery (or the exhaustion of the budget).
	Elapsed time.Duration
	// GoodputBitsPerSec is delivered payload bits per second of wall-clock
	// time — the aggregate serving throughput of the receiver.
	GoodputBitsPerSec float64
	// Speedup is this row's goodput over the first row's (the 1-flow
	// baseline in the default sweep): how much aggregate throughput grows
	// with flow count on the shared engine.
	Speedup float64
	// AggregateRate is delivered payload bits per coded symbol received at
	// delivery time, the spectral efficiency achieved across all flows.
	AggregateRate float64
	// Fairness is Jain's fairness index over the per-flow goodputs
	// (bits per round until the flow finished): 1.0 means every flow
	// progressed at the same rate, 1/Flows means one flow hogged the
	// receiver. The engine's round-robin scheduler should keep this near 1.
	Fairness float64
	// PoolHits and PoolMisses count decoder-pool traffic: hits are messages
	// served by a recycled decoder instead of a fresh build.
	PoolHits   uint64
	PoolMisses uint64
}

// multiFlowFrameBudget is the per-message pass budget of the comparison.
const multiFlowFrameBudget = 30

// multiFlowSymbolsPerFrame keeps frames small so flows interleave finely.
const multiFlowSymbolsPerFrame = 24

// mfMessage is one precomputed transmission: the payload and the full
// budget of noisy v1 frames, deterministic in (seed, flow, msg).
type mfMessage struct {
	payload []byte
	frames  [][]byte
}

// buildMultiFlowMessage encodes one payload exactly the way link.Sender
// does (via link.EncodeFrames) and pre-corrupts every symbol with a
// per-(flow,msg) AWGN stream, so the same frame bytes can be replayed
// against any receiver — the basis of the multi-vs-dedicated equivalence
// check.
func buildMultiFlowMessage(cfg SpinalConfig, snrDB float64, flow, msg uint32, payloadLen int) (*mfMessage, error) {
	payload := make([]byte, payloadLen)
	src := rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(flow+1)) ^ (0xbb67ae8584caa73b * uint64(msg+1)))
	for i := range payload {
		payload[i] = byte(src.Uint64())
	}
	radio, err := channel.NewAWGNdB(snrDB, rng.New(cfg.Seed^(0xa54ff53a5f1d36f1*uint64(flow+1))^uint64(msg+7)))
	if err != nil {
		return nil, err
	}
	lcfg := link.Config{K: cfg.K, C: cfg.C, Seed: cfg.Seed, Schedule: link.ScheduleStriped8}
	frames, err := link.EncodeFrames(lcfg, flow, msg, payload,
		multiFlowSymbolsPerFrame, multiFlowFrameBudget, radio.Corrupt)
	if err != nil {
		return nil, err
	}
	return &mfMessage{payload: payload, frames: frames}, nil
}

// MultiFlowComparison measures the flow-multiplexed link engine as the
// number of concurrent flows grows: each flow streams messagesPerFlow
// packets (pre-corrupted at snrDB) into one shared receiver, frames
// interleaved round-robin across flows, and the run records aggregate
// goodput, per-flow fairness and decoder-pool reuse. For every delivered
// packet the function replays the identical frame bytes through a dedicated
// single-flow receiver and errors unless the delivered payloads are
// bit-identical — the shared engine must be indistinguishable, per flow,
// from a private receiver.
func MultiFlowComparison(cfg SpinalConfig, snrDB float64, flowCounts []int, messagesPerFlow int) ([]MultiFlowPoint, error) {
	cfg = cfg.withDefaults()
	if len(flowCounts) == 0 {
		flowCounts = []int{1, 4, 16, 64}
	}
	if messagesPerFlow < 1 {
		messagesPerFlow = 2
	}
	const payloadLen = 12

	out := make([]MultiFlowPoint, 0, len(flowCounts))
	for _, flows := range flowCounts {
		if flows < 1 {
			return nil, fmt.Errorf("experiments: flow count %d invalid", flows)
		}
		pt := MultiFlowPoint{Flows: flows, MessagesPerFlow: messagesPerFlow, SNRdB: snrDB}

		// Precompute every flow's transmissions so the send loop is pure I/O.
		// Each (flow, message) encode is an independent trial seeded by its
		// indices, so the precompute shards across the sim runner.
		flat, err := sim.Run(cfg.runner(), flows*messagesPerFlow,
			func(w *sim.Worker, i int) (*mfMessage, error) {
				f, m := i/messagesPerFlow, i%messagesPerFlow
				return buildMultiFlowMessage(cfg, snrDB, uint32(f+1), uint32(m+1), payloadLen)
			})
		if err != nil {
			return nil, err
		}
		msgs := make([][]*mfMessage, flows)
		for f := 0; f < flows; f++ {
			msgs[f] = flat[f*messagesPerFlow : (f+1)*messagesPerFlow]
		}

		far, near, err := link.NewPipePair(0, cfg.Seed^uint64(flows))
		if err != nil {
			return nil, err
		}
		recv, err := link.NewReceiver(near, link.Config{K: cfg.K, C: cfg.C, BeamWidth: cfg.BeamWidth, Seed: cfg.Seed}, nil)
		if err != nil {
			far.Close()
			return nil, err
		}

		// Per-flow progress: which message is in flight and which frame of
		// it goes out next. Flows advance to their next message only after
		// the current one delivers (or its budget runs out), like a sender
		// process streaming packets.
		curMsg := make([]int, flows)
		curFrame := make([]int, flows)
		finishedRound := make([]int, flows)
		deliveredPayload := make(map[[2]uint32][]byte)
		symbolsAtDelivery := 0
		totalMessages := flows * messagesPerFlow

		start := time.Now()
		round := 0
		// flowDone marks a flow's completion round the moment its last
		// message resolves — whether during a send round or the final
		// drain — so the fairness index sees every flow's true finish.
		flowDone := func(f int) {
			if curMsg[f] >= messagesPerFlow && finishedRound[f] == 0 {
				finishedRound[f] = round + 1
			}
		}
		collect := func(d *link.Delivered) {
			key := [2]uint32{d.FlowID, d.MsgID}
			if _, dup := deliveredPayload[key]; dup {
				return
			}
			deliveredPayload[key] = append([]byte(nil), d.Payload...)
			symbolsAtDelivery += d.Symbols
			f := int(d.FlowID) - 1
			if int(d.MsgID) == curMsg[f]+1 {
				curMsg[f]++
				curFrame[f] = 0
				flowDone(f)
			}
		}
		for len(deliveredPayload) < totalMessages {
			sentAny := false
			for f := 0; f < flows; f++ {
				m := curMsg[f]
				if m >= messagesPerFlow {
					continue
				}
				mm := msgs[f][m]
				if curFrame[f] >= len(mm.frames) {
					// Budget exhausted: give up on this message, move on.
					curMsg[f]++
					curFrame[f] = 0
					flowDone(f)
					continue
				}
				if err := far.Send(mm.frames[curFrame[f]]); err != nil {
					recv.Close()
					far.Close()
					return nil, err
				}
				curFrame[f]++
				sentAny = true
			}
			// Drain whatever the engine has finished; frames queue inside
			// Receive's ingest loop at the same time.
			for {
				d, err := recv.Receive(500 * time.Microsecond)
				if err == link.ErrTimeout {
					break
				}
				if err != nil {
					recv.Close()
					far.Close()
					return nil, err
				}
				collect(d)
			}
			round++
			if !sentAny {
				// Everything is sent; wait (bounded) for the backlog.
				idle := 0
				for len(deliveredPayload) < totalMessages && idle < 200 {
					d, err := recv.Receive(5 * time.Millisecond)
					if err == link.ErrTimeout {
						idle++
						continue
					}
					if err != nil {
						recv.Close()
						far.Close()
						return nil, err
					}
					collect(d)
				}
				break
			}
		}
		pt.Elapsed = time.Since(start)
		pt.Delivered = len(deliveredPayload)
		stats := recv.PoolStats()
		pt.PoolHits, pt.PoolMisses = stats.Hits, stats.Misses
		recv.Close()
		far.Close()

		// Equivalence: replay each flow's identical frame bytes through a
		// dedicated single-flow receiver and demand bit-identical payloads.
		for f := 0; f < flows; f++ {
			if err := replayDedicated(cfg, msgs[f], uint32(f+1), deliveredPayload); err != nil {
				return nil, err
			}
		}

		deliveredBits := 0
		for _, p := range deliveredPayload {
			deliveredBits += len(p) * 8
		}
		if secs := pt.Elapsed.Seconds(); secs > 0 {
			pt.GoodputBitsPerSec = float64(deliveredBits) / secs
		}
		if symbolsAtDelivery > 0 {
			pt.AggregateRate = float64(deliveredBits) / float64(symbolsAtDelivery)
		}
		pt.Fairness = jainIndex(flowRates(finishedRound, deliveredPayload, flows, payloadLen))
		if len(out) > 0 && out[0].GoodputBitsPerSec > 0 {
			pt.Speedup = pt.GoodputBitsPerSec / out[0].GoodputBitsPerSec
		} else {
			pt.Speedup = 1
		}
		out = append(out, pt)
	}
	return out, nil
}

// replayDedicated feeds one flow's precomputed frames through a fresh
// receiver serving only that flow and checks the delivered payloads match
// the multi-flow run bit for bit. Messages the multi-flow run failed to
// deliver within budget are skipped (their equivalence is vacuous).
func replayDedicated(cfg SpinalConfig, flowMsgs []*mfMessage, flow uint32, multi map[[2]uint32][]byte) error {
	_, near, err := link.NewPipePair(0, cfg.Seed^uint64(flow)<<8)
	if err != nil {
		return err
	}
	defer near.Close()
	recv, err := link.NewReceiver(near, link.Config{K: cfg.K, C: cfg.C, BeamWidth: cfg.BeamWidth, Seed: cfg.Seed}, nil)
	if err != nil {
		return err
	}
	defer recv.Close()
	for m, mm := range flowMsgs {
		key := [2]uint32{flow, uint32(m + 1)}
		want, ok := multi[key]
		if !ok {
			continue
		}
		var got []byte
		for _, frame := range mm.frames {
			d, err := recv.HandleFrame(frame)
			if err != nil {
				return err
			}
			if d != nil {
				got = d.Payload
				break
			}
		}
		if got == nil {
			return fmt.Errorf("experiments: flow %d msg %d delivered on the shared engine but not on a dedicated receiver", flow, m+1)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("experiments: flow %d msg %d payload differs between shared and dedicated receivers", flow, m+1)
		}
	}
	return nil
}

// flowRates derives each flow's goodput proxy: delivered bits over the
// rounds it took to finish (flows that never finished use a worst-case
// denominator so they drag the index down, as they should).
func flowRates(finishedRound []int, delivered map[[2]uint32][]byte, flows, payloadLen int) []float64 {
	rates := make([]float64, flows)
	maxRound := 1
	for _, r := range finishedRound {
		if r > maxRound {
			maxRound = r
		}
	}
	for f := 0; f < flows; f++ {
		bits := 0
		for key, p := range delivered {
			if key[0] == uint32(f+1) {
				bits += len(p) * 8
			}
		}
		rounds := finishedRound[f]
		if rounds == 0 {
			rounds = maxRound + 1
		}
		rates[f] = float64(bits) / float64(rounds)
	}
	return rates
}

// jainIndex is Jain's fairness index: (Σx)² / (n·Σx²), 1.0 when all equal.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
