package experiments

import (
	"spinal/internal/sim"
)

// This file declares the point schemas of every experiment and renders
// result rows into sim.Tables, so the spinalsim command emits the same
// structured results — aligned text, RFC 4180 CSV or JSON — for every
// scenario in the registry. Columns whose values depend on wall-clock time
// (elapsed, speedups, goodput) are declared volatile so determinism tests
// compare only reproducible cells.

// RateCurveColumns is the point schema of a spinal rate-versus-SNR curve.
// Every point carries the sample count and a 95% confidence half-width on
// the per-message rate mean, streamed out of stats.Running.
func RateCurveColumns(name string) []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col(name+"_rate_bits_per_sym", "%.3f"),
		sim.Col("capacity", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("failures", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatRateCurve renders a spinal rate curve next to capacity.
func FormatRateCurve(name string, pts []RatePoint) *sim.Table {
	t := sim.NewTable("", RateCurveColumns(name)...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Rate, p.Capacity, p.Conf95, p.Failures, p.Trials)
	}
	return t
}

// BoundsColumns is the point schema of the Figure 2 reference bounds.
func BoundsColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("shannon", "%.3f"),
		sim.Col("finite_block_n24_eps1e-4", "%.3f"),
		sim.Col("theorem1", "%.3f"),
	}
}

// FormatBounds renders the reference bounds of Figure 2.
func FormatBounds(pts []BoundPoint) *sim.Table {
	t := sim.NewTable("", BoundsColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Shannon, p.FiniteBlock, p.Theorem1)
	}
	return t
}

// ThroughputColumns is the point schema of a fixed-rate baseline curve. The
// conf95 column is the 95% half-width on the per-frame delivered-rate mean.
func ThroughputColumns(label string) []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col(label+"_throughput", "%.3f"),
		sim.Col("peak_rate", "%.3f"),
		sim.Col("fer", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("frames", "%d"),
	}
}

// FormatThroughput renders a fixed-rate baseline curve.
func FormatThroughput(label string, pts []ThroughputPoint) *sim.Table {
	t := sim.NewTable("", ThroughputColumns(label)...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Throughput, p.PeakRate, p.FER, p.Conf95, p.Frames)
	}
	return t
}

// BeamSweepColumns is the point schema of the beam-width ablation.
func BeamSweepColumns() []sim.Column {
	return []sim.Column{
		sim.Col("beam_width", "%d"),
		sim.Col("rate_bits_per_sym", "%.3f"),
		sim.Col("capacity", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("failures", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatBeamSweep renders the beam-width ablation.
func FormatBeamSweep(pts []BeamPoint) *sim.Table {
	t := sim.NewTable("", BeamSweepColumns()...)
	for _, p := range pts {
		t.AddRow(p.BeamWidth, p.Rate, p.Capacity, p.Conf95, p.Failures, p.Trials)
	}
	return t
}

// ADCSweepColumns is the point schema of the quantization ablation.
func ADCSweepColumns() []sim.Column {
	return []sim.Column{
		sim.Col("adc_bits", "%d"),
		sim.Col("rate_bits_per_sym", "%.3f"),
		sim.Col("capacity", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("trials", "%d"),
	}
}

// FormatADCSweep renders the quantization ablation.
func FormatADCSweep(pts []ADCPoint) *sim.Table {
	t := sim.NewTable("", ADCSweepColumns()...)
	for _, p := range pts {
		t.AddRow(p.Bits, p.Rate, p.Capacity, p.Conf95, p.Trials)
	}
	return t
}

// BSCColumns is the point schema of the Theorem 2 experiment.
func BSCColumns() []sim.Column {
	return []sim.Column{
		sim.Col("crossover_p", "%.3f"),
		sim.Col("rate_bits_per_use", "%.3f"),
		sim.Col("bsc_capacity", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("failures", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatBSC renders the Theorem 2 experiment.
func FormatBSC(pts []BSCPoint) *sim.Table {
	t := sim.NewTable("", BSCColumns()...)
	for _, p := range pts {
		t.AddRow(p.P, p.Rate, p.Capacity, p.Conf95, p.Failures, p.Trials)
	}
	return t
}

// Theorem1Columns is the point schema of the Theorem 1 gap experiment.
func Theorem1Columns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("rate", "%.3f"),
		sim.Col("theorem1_guarantee", "%.3f"),
		sim.Col("capacity", "%.3f"),
		sim.Col("gap_to_capacity", "%.3f"),
		sim.Col("meets_bound", "%t"),
	}
}

// FormatTheorem1 renders the Theorem 1 gap experiment.
func FormatTheorem1(pts []Theorem1Point) *sim.Table {
	t := sim.NewTable("", Theorem1Columns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Rate, p.Guarantee, p.Capacity, p.GapToCap, p.MeetsBound)
	}
	return t
}

// FountainColumns is the point schema of the LT overhead experiment.
func FountainColumns() []sim.Column {
	return []sim.Column{
		sim.Col("erasure_p", "%.2f"),
		sim.Col("received_overhead", "%.3f"),
		sim.Col("sent_per_block", "%.3f"),
		sim.Col("trials", "%d"),
	}
}

// FormatFountain renders the LT overhead experiment.
func FormatFountain(pts []OverheadPoint) *sim.Table {
	t := sim.NewTable("", FountainColumns()...)
	for _, p := range pts {
		t.AddRow(p.ErasureProb, p.Overhead, p.SentPerBlock, p.Trials)
	}
	return t
}

// IncrementalColumns is the point schema of the incremental-decode cost
// comparison. Node counts are deterministic decoder work, not wall-clock.
func IncrementalColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("incremental_nodes", "%d"),
		sim.Col("refreshed_nodes", "%d"),
		sim.Col("scratch_nodes", "%d"),
		sim.Col("node_speedup", "%.2f"),
		sim.Col("delivered", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatIncremental renders the incremental-decode cost comparison.
func FormatIncremental(pts []DecodeCostPoint) *sim.Table {
	t := sim.NewTable("", IncrementalColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.IncrementalNodes, p.IncrementalRefreshed,
			p.FromScratchNodes, p.NodeSpeedup, p.Delivered, p.Trials)
	}
	return t
}

// ParallelColumns is the point schema of the parallel-decode scaling sweep.
func ParallelColumns() []sim.Column {
	return []sim.Column{
		sim.Col("workers", "%d"),
		sim.Col("B", "%d"),
		sim.VolatileCol("elapsed_ms", "%.1f"),
		sim.VolatileCol("speedup", "%.2f"),
		sim.Col("nodes", "%d"),
		sim.VolatileCol("nodes_per_sec", "%.3g"),
		sim.Col("delivered", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatParallel renders a parallel-decode scaling sweep.
func FormatParallel(points []ParallelDecodePoint) *sim.Table {
	t := sim.NewTable("", ParallelColumns()...)
	for _, p := range points {
		t.AddRow(p.Workers, p.BeamWidth, float64(p.Elapsed.Microseconds())/1000,
			p.Speedup, p.NodesExpanded, p.NodesPerSec, p.Delivered, p.Trials)
	}
	return t
}

// MultiFlowColumns is the point schema of the multi-flow scaling sweep.
// Everything downstream of wall-clock scheduling (timings, goodput, pool
// traffic, the symbols counted at delivery time) is volatile; the delivered
// count and the flow/message axes are reproducible.
func MultiFlowColumns() []sim.Column {
	return []sim.Column{
		sim.Col("flows", "%d"),
		sim.Col("msgs", "%d"),
		sim.Col("delivered", "%d"),
		sim.VolatileCol("elapsed_ms", "%.1f"),
		sim.VolatileCol("goodput_bps", "%.3g"),
		sim.VolatileCol("speedup", "%.2f"),
		sim.VolatileCol("rate", "%.2f"),
		sim.VolatileCol("fairness", "%.3f"),
		sim.VolatileCol("pool_hit", "%d"),
		sim.VolatileCol("pool_miss", "%d"),
	}
}

// FormatMultiFlow renders a multi-flow scaling sweep.
func FormatMultiFlow(points []MultiFlowPoint) *sim.Table {
	t := sim.NewTable("", MultiFlowColumns()...)
	for _, p := range points {
		t.AddRow(p.Flows, p.Flows*p.MessagesPerFlow, p.Delivered,
			float64(p.Elapsed.Microseconds())/1000, p.GoodputBitsPerSec,
			p.Speedup, p.AggregateRate, p.Fairness, p.PoolHits, p.PoolMisses)
	}
	return t
}

// BatchColumns is the point schema of the scalar-versus-batch comparison.
func BatchColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.VolatileCol("scalar_ms", "%.2f"),
		sim.VolatileCol("batch_ms", "%.2f"),
		sim.VolatileCol("batch_speedup", "%.2fx"),
		sim.Col("symbols", "%d"),
		sim.Col("delivered", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatBatch renders the scalar-versus-batch comparison.
func FormatBatch(pts []BatchPoint) *sim.Table {
	t := sim.NewTable("", BatchColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, float64(p.ScalarNS)/1e6, float64(p.BatchNS)/1e6,
			p.Speedup, p.Symbols, p.Delivered, p.Trials)
	}
	return t
}

// AdaptationColumns is the point schema of the adaptation comparison.
func AdaptationColumns() []sim.Column {
	return []sim.Column{
		sim.Col("scenario", "%s"),
		sim.Col("adaptive_bits_per_sym", "%.3f"),
		sim.Col("adaptive_fer", "%.3f"),
		sim.Col("rateless_bits_per_sym", "%.3f"),
		sim.Col("rateless_failures", "%d"),
		sim.Col("symbol_budget", "%d"),
	}
}

// FormatAdaptation renders the adaptation comparison.
func FormatAdaptation(pts []AdaptationPoint) *sim.Table {
	t := sim.NewTable("", AdaptationColumns()...)
	for _, p := range pts {
		t.AddRow(p.Scenario, p.AdaptiveThroughput, p.AdaptiveFER,
			p.RatelessThroughput, p.RatelessFailures, p.SymbolBudget)
	}
	return t
}

// FixedRateColumns is the point schema of the fixed-rate spinal experiment.
func FixedRateColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("passes", "%d"),
		sim.Col("fixed_rate", "%.3f"),
		sim.Col("fixed_throughput", "%.3f"),
		sim.Col("fixed_fer", "%.3f"),
		sim.Col("rateless_rate", "%.3f"),
	}
}

// FormatFixedRate renders the fixed-rate spinal experiment.
func FormatFixedRate(pts []FixedRatePoint) *sim.Table {
	t := sim.NewTable("", FixedRateColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Passes, p.Rate, p.Throughput, p.FER, p.RatelessRate)
	}
	return t
}

// WireSoakColumns is the point schema of the wire-path soak.
func WireSoakColumns() []sim.Column {
	return []sim.Column{
		sim.Col("mode", "%s"),
		sim.Col("flows", "%d"),
		sim.Col("frames", "%d"),
		sim.Col("delivered", "%d"),
		sim.Col("acks", "%d"),
		sim.VolatileCol("elapsed_ms", "%.2f"),
		sim.VolatileCol("frames_per_sec", "%.0f"),
		sim.VolatileCol("allocs_per_frame", "%.4f"),
		sim.VolatileCol("p99_rtt_us", "%.1f"),
	}
}

// FormatWireSoak renders the wire-path soak.
func FormatWireSoak(pts []WireSoakPoint) *sim.Table {
	t := sim.NewTable("", WireSoakColumns()...)
	for _, p := range pts {
		t.AddRow(p.Mode, p.Flows, p.Frames, p.Delivered, p.Acks,
			float64(p.Elapsed.Microseconds())/1000, p.FramesPerSec,
			p.AllocsPerFrame, float64(p.P99RTT.Nanoseconds())/1000)
	}
	return t
}

// ChaosSoakColumns is the point schema of the chaos soak. The outcome split,
// fairness and fault-ledger columns depend on wall-clock scheduling over the
// UDP loopback, so they are volatile; the gated columns (lost and the two
// leak counters) are deterministic zeros on a passing run.
func ChaosSoakColumns() []sim.Column {
	return []sim.Column{
		sim.Col("mode", "%s"),
		sim.Col("flows", "%d"),
		sim.Col("messages", "%d"),
		sim.VolatileCol("delivered", "%d"),
		sim.VolatileCol("shed", "%d"),
		sim.VolatileCol("expired", "%d"),
		sim.Col("lost", "%d"),
		sim.VolatileCol("fairness", "%.3f"),
		sim.VolatileCol("hostile_delivered", "%d"),
		sim.VolatileCol("budget_deferrals", "%d"),
		sim.VolatileCol("acks_ignored", "%d"),
		sim.VolatileCol("fault_drops", "%d"),
		sim.VolatileCol("fault_corrupted", "%d"),
		sim.VolatileCol("fault_duplicated", "%d"),
		sim.VolatileCol("fault_reordered", "%d"),
		sim.VolatileCol("fault_errors", "%d"),
		sim.Col("pool_outstanding", "%d"),
		sim.Col("ack_arena_outstanding", "%d"),
		sim.VolatileCol("elapsed_ms", "%.1f"),
	}
}

// ImpairSweepColumns is the point schema of the impairment sweep. Every
// column is deterministic: the genie search over the pipeline depends only
// on seeds.
func ImpairSweepColumns() []sim.Column {
	return []sim.Column{
		sim.Col("profile", "%s"),
		sim.Col("rate_bits_per_sym", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("failures", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatImpairSweep renders the impairment sweep.
func FormatImpairSweep(pts []ImpairPoint) *sim.Table {
	t := sim.NewTable("", ImpairSweepColumns()...)
	for _, p := range pts {
		t.AddRow(p.Profile, p.Rate, p.Conf95, p.Failures, p.Trials)
	}
	return t
}

// BakeoffColumns is the point schema of the cross-code bake-off. Every
// column is deterministic: identical per-trial pipeline seeds across
// schemes, folded in trial order.
func BakeoffColumns() []sim.Column {
	return []sim.Column{
		sim.Col("profile", "%s"),
		sim.Col("scheme", "%s"),
		sim.Col("goodput_bits_per_sym", "%.3f"),
		sim.Col("conf95", "%.3f"),
		sim.Col("delivered", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatBakeoff renders the cross-code bake-off.
func FormatBakeoff(pts []BakeoffPoint) *sim.Table {
	t := sim.NewTable("", BakeoffColumns()...)
	for _, p := range pts {
		t.AddRow(p.Profile, p.Scheme, p.Goodput, p.Conf95, p.Delivered, p.Trials)
	}
	return t
}

// ChurnLoadColumns is the point schema of the churn-load experiment. The
// replay is a single-threaded deterministic loop, so even the frame and
// shed counters are reproducible.
func ChurnLoadColumns() []sim.Column {
	return []sim.Column{
		sim.Col("mode", "%s"),
		sim.Col("flows", "%d"),
		sim.Col("messages", "%d"),
		sim.Col("frames_sent", "%d"),
		sim.Col("delivered", "%d"),
		sim.Col("rejected", "%d"),
		sim.Col("shed", "%d"),
		sim.Col("fairness", "%.3f"),
	}
}

// FormatChurnLoad renders the churn-load experiment.
func FormatChurnLoad(pts []ChurnPoint) *sim.Table {
	t := sim.NewTable("", ChurnLoadColumns()...)
	for _, p := range pts {
		t.AddRow(p.Mode, p.Flows, p.Messages, p.FramesSent, p.Delivered,
			p.Rejected, p.Shed, p.Fairness)
	}
	return t
}

// FormatChaosSoak renders the chaos soak.
func FormatChaosSoak(pts []ChaosSoakPoint) *sim.Table {
	t := sim.NewTable("", ChaosSoakColumns()...)
	for _, p := range pts {
		t.AddRow(p.Mode, p.Flows, p.Messages, p.Delivered, p.Shed, p.Expired,
			p.Lost, p.Fairness, p.HostileDelivered, p.BudgetDeferrals,
			p.AckFramesIgnored, p.FaultDrops, p.FaultCorrupted,
			p.FaultDuplicated, p.FaultReordered, p.FaultErrors,
			p.PoolOutstanding, p.AckArenaOutstanding,
			float64(p.Elapsed.Microseconds())/1000)
	}
	return t
}
