package experiments

import (
	"fmt"
	"strings"
)

// This file renders experiment results as plain-text tables and as
// comma-separated values, so cmd/spinalsim can print the same rows the
// paper's figures plot.

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; missing cells render as empty strings.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w, c)
			if i != len(widths)-1 {
				b.WriteString("  ")
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// FormatRateCurve renders a spinal rate curve next to capacity.
func FormatRateCurve(name string, pts []RatePoint) *Table {
	t := NewTable("snr_db", name+"_rate_bits_per_sym", "capacity", "conf95", "failures", "trials")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.1f", p.SNRdB),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Capacity),
			fmt.Sprintf("%.3f", p.Conf95),
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}

// FormatBounds renders the reference bounds of Figure 2.
func FormatBounds(pts []BoundPoint) *Table {
	t := NewTable("snr_db", "shannon", "finite_block_n24_eps1e-4", "theorem1")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.1f", p.SNRdB),
			fmt.Sprintf("%.3f", p.Shannon),
			fmt.Sprintf("%.3f", p.FiniteBlock),
			fmt.Sprintf("%.3f", p.Theorem1),
		)
	}
	return t
}

// FormatThroughput renders a fixed-rate baseline curve.
func FormatThroughput(label string, pts []ThroughputPoint) *Table {
	t := NewTable("snr_db", label+"_throughput", "peak_rate", "fer", "frames")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.1f", p.SNRdB),
			fmt.Sprintf("%.3f", p.Throughput),
			fmt.Sprintf("%.3f", p.PeakRate),
			fmt.Sprintf("%.3f", p.FER),
			fmt.Sprintf("%d", p.Frames),
		)
	}
	return t
}

// FormatBeamSweep renders the beam-width ablation.
func FormatBeamSweep(pts []BeamPoint) *Table {
	t := NewTable("beam_width", "rate_bits_per_sym", "capacity", "failures", "trials")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%d", p.BeamWidth),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Capacity),
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}

// FormatADCSweep renders the quantization ablation.
func FormatADCSweep(pts []ADCPoint) *Table {
	t := NewTable("adc_bits", "rate_bits_per_sym", "capacity", "trials")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%d", p.Bits),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Capacity),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}

// FormatBSC renders the Theorem 2 experiment.
func FormatBSC(pts []BSCPoint) *Table {
	t := NewTable("crossover_p", "rate_bits_per_use", "bsc_capacity", "failures", "trials")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.3f", p.P),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Capacity),
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}

// FormatTheorem1 renders the Theorem 1 gap experiment.
func FormatTheorem1(pts []Theorem1Point) *Table {
	t := NewTable("snr_db", "rate", "theorem1_guarantee", "capacity", "gap_to_capacity", "meets_bound")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.1f", p.SNRdB),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Guarantee),
			fmt.Sprintf("%.3f", p.Capacity),
			fmt.Sprintf("%.3f", p.GapToCap),
			fmt.Sprintf("%t", p.MeetsBound),
		)
	}
	return t
}

// FormatFountain renders the LT overhead experiment.
func FormatFountain(pts []OverheadPoint) *Table {
	t := NewTable("erasure_p", "received_overhead", "sent_per_block", "trials")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.2f", p.ErasureProb),
			fmt.Sprintf("%.3f", p.Overhead),
			fmt.Sprintf("%.3f", p.SentPerBlock),
			fmt.Sprintf("%d", p.Trials),
		)
	}
	return t
}
