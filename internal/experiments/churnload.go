package experiments

import (
	"bytes"
	"errors"
	"fmt"

	"spinal/internal/impair"
	"spinal/internal/link"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// This file is the churn-load experiment: the trace-driven workload
// generator driving the multi-flow link engine through an impairment
// pipeline plus frame-level faults. Bursty MMPP arrivals, mixed message
// sizes and flow churn stress flow admission (shedding), the decoder pool
// and ack handling at once; the clean run is the control. Frame encoding is
// sharded over the sim runner with index-seeded events, and the replay is a
// deterministic single-threaded loop over the HandleFrame path, so every
// column is bit-identical at any worker count.

// churnSymbolsPerFrame and churnFrameBudget shape each message's frame
// sequence: enough redundancy that burst loss costs retransmissions, not
// deliveries, within the budget. churnSenderWindow bounds how many messages
// the replay keeps in flight at once — arrivals beyond the window wait, so
// the receiver sees bursts of concurrent flows rather than the whole trace
// interleaved.
const (
	churnSymbolsPerFrame = 24
	churnFrameBudget     = 16
	churnSenderWindow    = 6
)

// DefaultChurnFaults is the frame-level fault schedule the impaired mode
// stacks on top of the symbol pipeline: bounded reorder, duplication, burst
// loss and occasional bit corruption (caught by the frame CRC).
const DefaultChurnFaults = "reorder=0.15,depth=6,dup=0.1,corrupt=0.05,bits=4,ge=0.03:0.4:0:1"

// ChurnConfig describes a churn-load run.
type ChurnConfig struct {
	// Spinal supplies the code parameters (K, C, BeamWidth) and base seed.
	Spinal SpinalConfig
	// Workload is the traffic trace; zero-valued fields take the scenario
	// defaults (MMPP arrivals, three size classes, on/off churn).
	Workload sim.WorkloadConfig
	// Impair is the symbol-level pipeline spec of the impaired mode.
	Impair string
	// Faults is the frame-level fault profile of the impaired mode.
	Faults string
	// MaxFlows caps the receiver's concurrently tracked flows; keeping it
	// below the workload's flow population exercises shedding.
	MaxFlows int
	// TrialWorkers is the sim.Run worker-pool size frame encoding shards
	// across; zero means GOMAXPROCS.
	TrialWorkers int
}

// ChurnPoint is one mode's outcome.
type ChurnPoint struct {
	Mode       string
	Flows      int
	Messages   int
	FramesSent int
	// Delivered counts messages recovered with payloads verified
	// bit-identical to what was sent.
	Delivered int
	// Rejected counts frames the receiver refused (CRC-corrupted by the
	// fault schedule).
	Rejected int
	// Shed is the receiver's flow-shed counter.
	Shed uint64
	// Fairness is Jain's index over per-flow delivered-to-offered bit
	// ratios.
	Fairness float64
}

// churnEvent is one precomputed message: the workload event, its payload and
// its impaired frame sequence.
type churnEvent struct {
	ev      sim.Event
	payload []byte
	frames  [][]byte
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	c.Spinal = c.Spinal.withDefaults()
	if c.Workload.Flows == 0 {
		c.Workload.Flows = 12
	}
	if c.Workload.Messages == 0 {
		c.Workload.Messages = 36
	}
	if c.Workload.Arrival == "" {
		c.Workload.Arrival = "mmpp"
		c.Workload.Rate = 1
		c.Workload.Burst = 6
		c.Workload.Dwell = 25
	}
	if len(c.Workload.Sizes) == 0 {
		c.Workload.Sizes = []sim.SizeClass{
			{Bytes: 16, Weight: 3},
			{Bytes: 48, Weight: 1},
			{Bytes: 96, Weight: 0.5},
		}
	}
	if c.Workload.MeanOn == 0 && c.Workload.MeanOff == 0 {
		c.Workload.MeanOn, c.Workload.MeanOff = 40, 20
	}
	if c.Workload.Seed == 0 {
		c.Workload.Seed = c.Spinal.Seed ^ 0x9159015a3070dd17
	}
	if c.Impair == "" {
		c.Impair = DefaultImpairStack
	}
	if c.Faults == "" {
		c.Faults = DefaultChurnFaults
	}
	if c.MaxFlows == 0 {
		c.MaxFlows = 8
	}
	return c
}

// ChurnLoad runs the workload through the link engine twice — clean AWGN
// with a fault-free transport, then the impairment stack plus frame faults —
// and reports delivery, shedding and fairness for both.
func ChurnLoad(cfg ChurnConfig) ([]ChurnPoint, error) {
	cfg = cfg.withDefaults()
	events, err := sim.GenerateWorkload(cfg.Workload)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		if e.Size > link.MaxPayload {
			return nil, fmt.Errorf("experiments: workload size %d exceeds link payload limit %d", e.Size, link.MaxPayload)
		}
	}

	cleanFaults := link.FaultProfile{}
	faults, err := impair.ParseFaultProfile(cfg.Faults)
	if err != nil {
		return nil, err
	}

	var out []ChurnPoint
	for _, mode := range []struct {
		name   string
		spec   string
		faults link.FaultProfile
	}{
		{name: "clean", spec: "awgn(snr=18)", faults: cleanFaults},
		{name: "impaired", spec: cfg.Impair, faults: faults},
	} {
		pt, err := runChurnMode(cfg, events, mode.name, mode.spec, mode.faults)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// runChurnMode encodes every event's frames through the mode's pipeline
// (sharded, index-seeded) and replays them through one receiver behind the
// mode's fault schedule.
func runChurnMode(cfg ChurnConfig, events []sim.Event, mode, specStr string, faults link.FaultProfile) (ChurnPoint, error) {
	spec, err := impair.ParseAny(specStr)
	if err != nil {
		return ChurnPoint{}, err
	}
	scfg := cfg.Spinal
	lcfg := link.Config{K: scfg.K, C: scfg.C, Seed: scfg.Seed, Schedule: link.ScheduleStriped8}

	runner := sim.Runner{Workers: cfg.TrialWorkers}
	encoded, err := sim.Run(runner, len(events), func(w *sim.Worker, i int) (churnEvent, error) {
		ev := events[i]
		seed := ev.Seed(scfg.Seed, i)
		src := rng.New(seed)
		payload := make([]byte, ev.Size)
		src.Bytes(payload)
		pl, err := spec.Build(seed ^ 0x6a09e667f3bcc908)
		if err != nil {
			return churnEvent{}, err
		}
		frames, err := link.EncodeFrames(lcfg, ev.Flow, ev.Msg, payload,
			churnSymbolsPerFrame, churnFrameBudget, pl.Corrupt)
		if err != nil {
			return churnEvent{}, err
		}
		return churnEvent{ev: ev, payload: payload, frames: frames}, nil
	})
	if err != nil {
		return ChurnPoint{}, err
	}

	far, near, err := link.NewPipePair(0, scfg.Seed^0x3c6ef372fe94f82b)
	if err != nil {
		return ChurnPoint{}, err
	}
	defer far.Close()
	defer near.Close()
	var tr link.Transport = far
	if faults != (link.FaultProfile{}) {
		tr = link.NewFaultTransport(far, faults, link.FaultProfile{}, scfg.Seed^0x510e527fade682d1)
	}
	recv, err := link.NewReceiver(near, link.Config{
		K: scfg.K, C: scfg.C, BeamWidth: scfg.BeamWidth, Seed: scfg.Seed,
		MaxFlows: cfg.MaxFlows,
	}, nil)
	if err != nil {
		return ChurnPoint{}, err
	}
	defer recv.Close()

	pt := ChurnPoint{Mode: mode, Flows: cfg.Workload.Flows, Messages: len(events)}
	delivered := map[[2]uint32][]byte{}
	buf := make([]byte, link.MaxFrameSize)
	drainErr := error(nil)
	drain := func() {
		for drainErr == nil {
			n, err := near.Receive(buf, 0)
			if errors.Is(err, link.ErrTimeout) {
				return
			}
			if err != nil {
				drainErr = err
				return
			}
			d, err := recv.HandleFrame(buf[:n])
			if err != nil {
				// A frame the fault schedule corrupted past the CRC; the
				// engine refuses it and the sender's redundancy covers it.
				pt.Rejected++
				continue
			}
			if d != nil {
				delivered[[2]uint32{d.FlowID, d.MsgID}] = append([]byte(nil), d.Payload...)
			}
		}
	}
	// Acks flow back to the far side; discard them so the pipe never fills.
	ackBuf := make([]byte, link.MaxFrameSize)
	drainAcks := func() {
		for {
			if _, err := far.Receive(ackBuf, 0); err != nil {
				return
			}
		}
	}

	// Replay in arrival order with a bounded in-flight window: each round
	// sends the next frame of every windowed message, messages leave when
	// delivered (the sender reacting to acks) or out of budget, and the next
	// arrival takes the freed slot.
	type inflight struct{ idx, pass int }
	var window []inflight
	next := 0
	for (len(window) > 0 || next < len(encoded)) && drainErr == nil {
		for len(window) < churnSenderWindow && next < len(encoded) {
			window = append(window, inflight{idx: next})
			next++
		}
		keep := window[:0]
		for _, inf := range window {
			ce := encoded[inf.idx]
			if _, ok := delivered[[2]uint32{ce.ev.Flow, ce.ev.Msg}]; ok {
				continue
			}
			if err := tr.Send(ce.frames[inf.pass]); err != nil && !errors.Is(err, link.ErrInjected) {
				return ChurnPoint{}, err
			}
			pt.FramesSent++
			inf.pass++
			drain()
			if inf.pass < churnFrameBudget {
				keep = append(keep, inf)
			}
		}
		window = keep
		drainAcks()
	}
	drain()
	drainAcks()
	if drainErr != nil {
		return ChurnPoint{}, drainErr
	}

	// Verify and tally: every delivered payload must match what was sent.
	offered := make([]float64, cfg.Workload.Flows)
	got := make([]float64, cfg.Workload.Flows)
	for _, ce := range encoded {
		offered[ce.ev.Flow-1] += float64(len(ce.payload) * 8)
		if p, ok := delivered[[2]uint32{ce.ev.Flow, ce.ev.Msg}]; ok {
			if !bytes.Equal(p, ce.payload) {
				return ChurnPoint{}, fmt.Errorf("experiments: flow %d msg %d delivered with a corrupted payload", ce.ev.Flow, ce.ev.Msg)
			}
			pt.Delivered++
			got[ce.ev.Flow-1] += float64(len(ce.payload) * 8)
		}
	}
	ratios := make([]float64, 0, cfg.Workload.Flows)
	for f := range offered {
		if offered[f] > 0 {
			ratios = append(ratios, got[f]/offered[f])
		}
	}
	pt.Fairness = jainIndex(ratios)
	pt.Shed = recv.ShedFlows()
	return pt, nil
}
