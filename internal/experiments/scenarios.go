package experiments

import (
	"fmt"
	"strings"

	"spinal/internal/core"
	"spinal/internal/impair"
	"spinal/internal/ldpc"
	"spinal/internal/sim"
)

// This file registers every experiment as a sim.Scenario, which is the only
// dispatch surface the spinalsim command has: `-exp list` enumerates this
// registry, and adding an experiment to the binary means adding one
// Register call here. Each Run builds its configuration from the generic
// sim.Request knobs, runs the experiment (all trial loops shard over
// sim.Run) and returns a structured sim.Result.

// Flag-name groups shared by the scenario declarations.
var (
	codeFlags  = []string{"trials", "beam", "k", "c", "m", "adc", "seed", "mapper", "schedule", "workers", "trial-workers", "metric", "search"}
	sweepFlags = append([]string{"snr-min", "snr-max", "snr-step"}, codeFlags...)
	pointFlags = append([]string{"snr"}, codeFlags...)
)

// spinalConfigFrom maps the generic request knobs onto a SpinalConfig,
// mirroring the historical spinalsim flag handling: zero-valued knobs keep
// the Figure 2 defaults. The only error sources are unknown -metric or
// -search spellings.
func spinalConfigFrom(req sim.Request) (SpinalConfig, error) {
	cfg := Figure2Config()
	if req.Trials > 0 {
		cfg.Trials = req.Trials
	}
	if req.Beam > 0 {
		cfg.BeamWidth = req.Beam
	}
	if req.K > 0 {
		cfg.K = req.K
	}
	if req.C > 0 {
		cfg.C = req.C
	}
	if req.MessageBits > 0 {
		cfg.MessageBits = req.MessageBits
	}
	if req.ADCBits > 0 {
		cfg.ADCBits = req.ADCBits
	}
	if req.Mapper != "" {
		cfg.Mapper = req.Mapper
	}
	if req.Schedule != "" {
		cfg.Schedule = req.Schedule
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	cfg.Workers = req.Workers
	cfg.TrialWorkers = req.TrialWorkers
	metric, err := core.ParseCostMetric(req.Metric)
	if err != nil {
		return cfg, err
	}
	cfg.Metric = metric
	search, err := core.ParseSearchConfig(req.Search)
	if err != nil {
		return cfg, err
	}
	cfg.Search = search
	return cfg, nil
}

// snrsFrom returns the request's sweep, defaulting to the Figure 2 grid.
func snrsFrom(req sim.Request) []float64 {
	if len(req.SNRs) > 0 {
		return req.SNRs
	}
	return sim.DefaultRequest().SNRs
}

// capTrials bounds a scenario's trial count for experiments that run every
// trial more than once (scaling comparisons), keeping the default -trials
// from exploding their runtime.
func capTrials(trials, cap int) int {
	if trials < 1 || trials > cap {
		return cap
	}
	return trials
}

func init() {
	sim.Register(sim.Scenario{
		Name:        "figure2",
		Description: "every curve of Figure 2: reference bounds, the spinal code, eight LDPC baselines",
		Flags:       append([]string{"frames"}, sweepFlags...),
		Schema:      RateCurveColumns("spinal"),
		Run:         runFigure2Scenario,
	})
	sim.Register(sim.Scenario{
		Name:        "spinal",
		Description: "rate achieved by the practical spinal decoder across the SNR sweep",
		Flags:       sweepFlags,
		Schema:      RateCurveColumns("spinal"),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			pts, err := SpinalRateCurve(cfg, snrsFrom(req))
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("spinal")
			res.Add(FormatRateCurve("spinal", pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "quantcost",
		Description: "rate tariff of the quantized int32 cost metric vs exact float64 across the SNR sweep",
		Flags:       append([]string{"snr-min", "snr-max", "snr-step", "short"}, codeFlags...),
		Schema:      QuantCostColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			snrs := snrsFrom(req)
			if req.Short {
				if cfg.Trials > 10 {
					cfg.Trials = 10
				}
				snrs = []float64{0, 10, 20}
			}
			pts, err := QuantCostComparison(cfg, snrs)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("quantcost")
			res.Add(FormatQuantCost(pts))
			res.Notef("identical per-trial seeds under both metrics: the tariff isolates the cost arithmetic")
			if req.Short {
				res.Notef("effective config: %d trials at %d SNR points (-short caps trials and the sweep)",
					cfg.Trials, len(snrs))
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "bounds",
		Description: "Shannon, finite-blocklength and Theorem 1 reference bounds",
		Flags:       []string{"snr-min", "snr-max", "snr-step"},
		Schema:      BoundsColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			pts, err := Figure2Bounds(snrsFrom(req))
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("bounds")
			res.Add(FormatBounds(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "ldpc",
		Description: "the eight fixed-rate LDPC baseline curves of Figure 2",
		Flags:       []string{"snr-min", "snr-max", "snr-step", "frames", "trial-workers"},
		Schema:      ThroughputColumns("ldpc"),
		Run: func(req sim.Request) (*sim.Result, error) {
			res := sim.NewResult("ldpc")
			for _, cfg := range Figure2LDPCConfigs() {
				if req.Frames > 0 {
					cfg.Frames = req.Frames
				}
				cfg.TrialWorkers = req.TrialWorkers
				pts, err := LDPCThroughputCurve(cfg, snrsFrom(req))
				if err != nil {
					return nil, err
				}
				t := FormatThroughput(strings.ReplaceAll(cfg.Label(), " ", "_"), pts)
				t.Title = fmt.Sprintf("%s (648-bit codewords, %d-iteration BP)", cfg.Label(), ldpc.DefaultIterations)
				res.Add(t)
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "conv",
		Description: "punctured convolutional (K=7, Viterbi) baselines at rates 1/2, 2/3, 3/4",
		Flags:       []string{"snr-min", "snr-max", "snr-step", "frames", "trial-workers"},
		Schema:      ThroughputColumns("conv"),
		Run: func(req sim.Request) (*sim.Result, error) {
			res := sim.NewResult("conv")
			for _, rate := range []string{"1/2", "2/3", "3/4"} {
				cfg := ConvConfig{Rate: rate, Modulation: "BPSK", Frames: req.Frames, TrialWorkers: req.TrialWorkers}
				pts, err := ConvThroughputCurve(cfg, snrsFrom(req))
				if err != nil {
					return nil, err
				}
				t := FormatThroughput("conv_"+strings.ReplaceAll(rate, "/", ""), pts)
				t.Title = fmt.Sprintf("convolutional K=7 rate %s over BPSK", rate)
				res.Add(t)
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "bsc",
		Description: "spinal rate over binary symmetric channels (Theorem 2), k=4 unless -k overrides",
		Flags:       codeFlags,
		Schema:      BSCColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.K == 0 || req.K == 8 {
				cfg.K = 4 // a k=4 code keeps BSC decoding fast; override with -k
			}
			pts, err := SpinalBSCCurve(cfg, []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4})
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("bsc")
			res.Notef("effective config: k=%d (this experiment defaults k to 4; pass -k to override)", cfg.K)
			res.Add(FormatBSC(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "beam",
		Description: "graceful scale-down: achieved rate versus decoder beam width at one SNR",
		Flags:       pointFlags,
		Schema:      BeamSweepColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			snr := req.SNR
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			pts, err := BeamWidthSweep(cfg, snr, []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("beam")
			res.Notef("graceful scale-down at %.1f dB", snr)
			res.Add(FormatBeamSweep(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "puncture",
		Description: "punctured (striped) versus sequential schedule across the SNR sweep",
		Flags:       sweepFlags,
		Schema:      RateCurveColumns("punctured"),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			punct, seq, err := PuncturingComparison(cfg, snrsFrom(req))
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("puncture")
			tp := FormatRateCurve("punctured", punct)
			tp.Title = "punctured (striped) schedule"
			res.Add(tp)
			ts := FormatRateCurve("sequential", seq)
			ts.Title = "sequential schedule"
			res.Add(ts)
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "adc",
		Description: "achieved rate versus receiver ADC resolution at one SNR",
		Flags:       pointFlags,
		Schema:      ADCSweepColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			snr := req.SNR
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			pts, err := QuantizationSweep(cfg, snr, []int{4, 6, 8, 10, 12, 14, 16})
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("adc")
			res.Notef("ADC resolution sweep at %.1f dB", snr)
			res.Add(FormatADCSweep(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "mapper",
		Description: "rate curves for the linear, uniform and gaussian constellation mappings",
		Flags:       sweepFlags,
		Schema:      RateCurveColumns("linear"),
		Run: func(req sim.Request) (*sim.Result, error) {
			mappers := []string{"linear", "uniform", "gaussian"}
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			curves, err := MapperComparison(cfg, snrsFrom(req), mappers)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("mapper")
			for _, name := range mappers {
				t := FormatRateCurve(name, curves[name])
				t.Title = "mapper: " + name
				res.Add(t)
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "theorem1",
		Description: "measured rate against the Theorem 1 guarantee and capacity",
		Flags:       sweepFlags,
		Schema:      Theorem1Columns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			pts, err := Theorem1Gap(cfg, snrsFrom(req))
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("theorem1")
			res.Add(FormatTheorem1(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "fountain",
		Description: "LT fountain-code reception overhead over binary erasure channels",
		Flags:       []string{"trials", "seed", "trial-workers"},
		Schema:      FountainColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg := FountainConfig{
				Trials:       capTrials(req.Trials, 20),
				Seed:         req.Seed,
				TrialWorkers: req.TrialWorkers,
			}
			pts, err := FountainOverhead(cfg)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("fountain")
			res.Notef("effective config: %d trials per erasure point (this experiment caps trials at 20)", cfg.Trials)
			res.Add(FormatFountain(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "harq",
		Description: "LDPC hybrid ARQ (Chase combining) throughput over QAM-4/16/64",
		Flags:       []string{"snr-min", "snr-max", "snr-step", "frames", "trial-workers"},
		Schema:      ThroughputColumns("harq"),
		Run: func(req sim.Request) (*sim.Result, error) {
			res := sim.NewResult("harq")
			for _, mod := range []string{"QAM-4", "QAM-16", "QAM-64"} {
				cfg := HARQConfig{Rate: ldpc.Rate12, Modulation: mod, Frames: req.Frames, TrialWorkers: req.TrialWorkers}
				pts, err := HARQThroughputCurve(cfg, snrsFrom(req))
				if err != nil {
					return nil, err
				}
				t := FormatThroughput("harq_"+mod, pts)
				t.Title = fmt.Sprintf("hybrid ARQ (Chase combining), LDPC rate 1/2, %s", mod)
				res.Add(t)
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "adapt",
		Description: "reactive rate adaptation versus rateless spinal over time-varying channels",
		Flags:       []string{"trials", "seed", "trial-workers"},
		Schema:      AdaptationColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			budget := 20000
			if req.Trials > 0 && req.Trials < 100 {
				budget = req.Trials * 200 // let -trials scale the run length
				if budget < 1000 {
					budget = 1000
				}
			}
			pts, err := AdaptationComparison(AdaptationConfig{
				SymbolBudget: budget,
				Seed:         req.Seed,
				TrialWorkers: req.TrialWorkers,
			})
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("adapt")
			res.Notef("reactive rate adaptation vs rateless spinal over time-varying channels")
			res.Add(FormatAdaptation(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "fixedrate",
		Description: "fixed-rate spinal instantiation at 2, 4 and 8 passes versus the rateless rate",
		Flags:       sweepFlags,
		Schema:      FixedRateColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("fixedrate")
			for _, passes := range []int{2, 4, 8} {
				pts, err := FixedRateSpinal(cfg, snrsFrom(req), passes)
				if err != nil {
					return nil, err
				}
				t := FormatFixedRate(pts)
				t.Title = fmt.Sprintf("fixed-rate spinal code, %d passes (%.2f bits/symbol nominal)",
					passes, float64(cfg.MessageBits)/float64(passes*((cfg.MessageBits+cfg.K-1)/cfg.K)))
				res.Add(t)
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "incremental",
		Description: "incremental decode workspace reuse versus from-scratch attempts (node counts, bit-identical decodes)",
		Flags:       codeFlags,
		Schema:      IncrementalColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			cfg.Schedule = "sequential" // the natural low-SNR operating point
			cfg.Trials = capTrials(req.Trials, 10)
			pt, err := IncrementalDecodeComparison(cfg, 0)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("incremental")
			res.Notef("incremental vs from-scratch decoding at 0 dB (bit-identical decodes, node counts)")
			res.Notef("effective config: %d trials, %s schedule (this experiment fixes the schedule and caps trials at 10)",
				cfg.Trials, cfg.Schedule)
			res.Add(FormatIncremental([]DecodeCostPoint{pt}))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "parallel",
		Description: "parallel beam-decode scaling across decoder worker counts (bit-identical decodes)",
		Flags:       codeFlags,
		Schema:      ParallelColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			cfg.Schedule = "sequential" // the natural low-SNR operating point
			cfg.Trials = capTrials(req.Trials, 20)
			pts, err := ParallelDecodeComparison(cfg, 0, []int{1, 2, 4, 8})
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("parallel")
			res.Notef("parallel decode scaling at 0 dB (bit-identical decodes, wall-clock only)")
			res.Notef("effective config: %d trials, %s schedule, B=%d (this experiment fixes the schedule and bounds trials)",
				cfg.Trials, cfg.Schedule, cfg.BeamWidth)
			res.Add(FormatParallel(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "multiflow",
		Description: "flow-multiplexed link engine: goodput, fairness and pool reuse as flows grow",
		Flags:       append([]string{"snr"}, codeFlags...),
		Schema:      MultiFlowColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.K == 0 || req.K == 8 {
				// The -k default; many concurrent decodes make k=8 slow, so
				// this experiment runs k=4 unless -k selects something else.
				cfg.K = 4
			}
			snr := req.SNR
			msgs := 4
			if req.Trials > 0 && req.Trials < 100 {
				msgs = req.Trials // let -trials scale messages per flow
			}
			pts, err := MultiFlowComparison(cfg, snr, []int{1, 4, 16, 64}, msgs)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("multiflow")
			res.Notef("flow-multiplexed link engine at %.1f dB: aggregate goodput, per-flow fairness, decoder-pool reuse", snr)
			res.Notef("every delivered payload is verified bit-identical to a dedicated single-flow receiver")
			res.Notef("effective config: k=%d, %d messages per flow (this experiment defaults k to 4; pass -k to override)",
				cfg.K, msgs)
			res.Add(FormatMultiFlow(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "frontier",
		Description: "approximate-search frontier: rate vs nodes expanded for exact/gap/lookahead/approx on identical seeds",
		Flags:       append([]string{"snr-min", "snr-max", "snr-step", "short"}, codeFlags...),
		Schema:      FrontierColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.Beam == 0 || req.Beam == 16 {
				// The -beam default; approximate narrowing needs beam headroom
				// to show its work savings, so this experiment runs B=32
				// unless -beam selects something else.
				cfg.BeamWidth = 32
			}
			if req.MessageBits == 0 || req.MessageBits == 24 {
				// Likewise the -m default: longer messages give the search
				// tree enough levels for pruning and prefix commit to matter.
				cfg.MessageBits = 96
			}
			cfg.MaxPasses = 150
			cfg.Trials = capTrials(req.Trials, 20)
			if req.Short {
				cfg.Trials = capTrials(req.Trials, 4)
			}
			pts, err := FrontierComparison(cfg, snrsFrom(req))
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("frontier")
			res.Notef("approximate-search frontier: every mode decodes the same per-trial symbol streams (-search is ignored; all modes run)")
			res.Notef("gate: at the default operating point an approximate mode reaches >=95%% of the exact rate at <=40%% of the exact nodes")
			res.Notef("effective config: B=%d, m=%d, %d trials, %d passes max (this experiment defaults B to 32 and m to 96; -beam/-m override)",
				cfg.BeamWidth, cfg.MessageBits, cfg.Trials, cfg.MaxPasses)
			res.Add(FormatFrontier(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "saturate",
		Description: "load-adaptive search under saturation: many flows, scarce decode workers, adaptive vs all-exact goodput",
		Flags:       append([]string{"snr", "short"}, codeFlags...),
		Schema:      SaturateColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.K == 0 || req.K == 8 {
				// The -k default; many concurrent decodes make k=8 slow, so
				// this experiment runs k=4 unless -k selects something else.
				cfg.K = 4
			}
			flows, msgs := 16, 4
			if req.Trials > 0 && req.Trials < 100 {
				msgs = req.Trials // let -trials scale messages per flow
			}
			if req.Short {
				flows, msgs = 6, 2
			}
			const budget = 4000
			pts, err := SaturateComparison(cfg, req.SNR, flows, msgs, budget)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("saturate")
			res.Notef("saturated receiver at %.1f dB: %d flows x %d messages on %d decode workers, per-flow decode budget %d nodes",
				req.SNR, flows, msgs, saturateDecodeWorkers, budget)
			res.Notef("gate: adaptive goodput should beat all-exact with Jain fairness within 5%% (wall-clock dependent; CRC keeps approximate decodes safe)")
			res.Notef("effective config: k=%d (this experiment defaults k to 4; pass -k to override)", cfg.K)
			res.Add(FormatSaturate(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "wiresoak",
		Description: "zero-copy wire path soak: steady-state frames/s, allocs/frame and ack round-trip p99, batched vs unbatched",
		Flags:       []string{"trials", "frames", "seed"},
		Schema:      WireSoakColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			flows := capTrials(req.Trials, 4)
			rounds := req.Frames
			if rounds < 1 || rounds > 2000 {
				rounds = 200
			}
			seed := req.Seed
			if seed == 0 {
				seed = 1
			}
			pts, err := WireSoak(seed, flows, rounds)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("wiresoak")
			res.Notef("steady-state wire path soak: %d flows, %d rounds of %d retransmitted frames each", flows, rounds, flows*wireSoakBurst)
			res.Notef("warmup delivers every message first; the soak then exercises ingest, in-place parse and arena-backed ack repeat")
			res.Notef("allocs_per_frame is a whole-process malloc count over the soak; the wire path itself contributes zero")
			res.Add(FormatWireSoak(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "chaossoak",
		Description: "chaos-hardened link engine soak: seeded fault schedules end to end, delivered-or-shed, leak and fairness gates",
		Flags:       []string{"trials", "seed", "short"},
		Schema:      ChaosSoakColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			flows, msgs := 4, 3
			if req.Trials > 0 && req.Trials < 100 {
				msgs = req.Trials // let -trials scale messages per flow
			}
			if req.Short {
				flows, msgs = 3, 2
			}
			pts, err := ChaosSoak(req.Seed, flows, msgs, 0.9)
			res := sim.NewResult("chaossoak")
			res.Notef("link engine soak over fault-injected UDP loopback: %d flows x %d messages, clean vs chaos (last flow hostile)", flows, msgs)
			res.Notef("gates: 0 lost-forever messages, 0 leaked decoder leases / ack buffers, hostile-flow fairness >= 0.9x clean run")
			if len(pts) > 0 {
				res.Add(FormatChaosSoak(pts))
			}
			if err != nil {
				return nil, err
			}
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "impairsweep",
		Description: "spinal rate over a stacked impairment pipeline versus each stage alone (-impair overrides the stack)",
		Flags:       append([]string{"impair", "short"}, codeFlags...),
		Schema:      ImpairSweepColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.K == 0 || req.K == 8 {
				cfg.K = 4 // decode many profiles quickly; override with -k
			}
			cfg.Trials = capTrials(req.Trials, 40)
			if req.Short {
				cfg.Trials = capTrials(cfg.Trials, 6)
				cfg.MaxPasses = 150
			}
			specStr := req.Impair
			if specStr == "" {
				specStr = DefaultImpairStack
			}
			spec, err := impair.ParseAny(specStr)
			if err != nil {
				return nil, err
			}
			pts, err := ImpairSweep(cfg, spec)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("impairsweep")
			res.Notef("stack: %s", spec.String())
			res.Notef("each stage alone first, the full stack last; identical per-trial message streams throughout")
			res.Notef("effective config: k=%d, %d trials (this experiment defaults k to 4 and caps trials at 40)",
				cfg.K, cfg.Trials)
			res.Add(FormatImpairSweep(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "churnload",
		Description: "trace-driven workload (MMPP arrivals, size mix, flow churn) driving the multi-flow link engine under impairment and frame faults",
		Flags:       []string{"trials", "seed", "k", "c", "beam", "trial-workers", "impair", "short"},
		Schema:      ChurnLoadColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg := ChurnConfig{
				Spinal: SpinalConfig{
					K: req.K, C: req.C, BeamWidth: req.Beam, Seed: req.Seed,
				},
				Impair:       req.Impair,
				TrialWorkers: req.TrialWorkers,
			}
			if req.K == 0 || req.K == 8 {
				cfg.Spinal.K = 4 // many concurrent decodes; override with -k
			}
			if req.Trials > 0 && req.Trials < 100 {
				cfg.Workload.Messages = req.Trials * 3 // let -trials scale the trace
			}
			if req.Short {
				cfg.Workload.Flows = 6
				cfg.Workload.Messages = 8
			}
			pts, err := ChurnLoad(cfg)
			if err != nil {
				return nil, err
			}
			cfg = cfg.withDefaults()
			res := sim.NewResult("churnload")
			res.Notef("workload: %d flows, %d messages, %s arrivals, %d size classes, on/off churn",
				cfg.Workload.Flows, cfg.Workload.Messages, cfg.Workload.Arrival, len(cfg.Workload.Sizes))
			res.Notef("impaired mode: %s + frame faults %s", cfg.Impair, cfg.Faults)
			res.Notef("receiver tracks at most %d of %d flows; payloads verified bit-identical",
				cfg.MaxFlows, cfg.Workload.Flows)
			res.Add(FormatChurnLoad(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "bakeoff",
		Description: "spinal vs LDPC/conv/HARQ/LT-fountain over stacked impairment profiles on identical per-trial seeds (-impair adds a custom profile)",
		Flags:       append([]string{"impair", "short"}, codeFlags...),
		Schema:      BakeoffColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			scfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			if req.K == 0 || req.K == 8 {
				scfg.K = 4 // many profiles; override with -k
			}
			cfg := BakeoffConfig{
				Spinal:       scfg,
				Trials:       capTrials(req.Trials, 40),
				TrialWorkers: req.TrialWorkers,
			}
			if req.Short {
				cfg.Trials = capTrials(cfg.Trials, 8)
				cfg.Spinal.MaxPasses = 150
			}
			cfg.Profiles = DefaultBakeoffProfiles()
			if req.Impair != "" {
				cfg.Profiles = append(cfg.Profiles, BakeoffProfile{Name: "custom", Spec: req.Impair})
			}
			pts, err := Bakeoff(cfg)
			if err != nil {
				return nil, err
			}
			res := sim.NewResult("bakeoff")
			res.Notef("every scheme faces the same per-trial pipeline seeds: same fading, spikes and erasures")
			res.Notef("fixed-rate schemes demodulate with the variance estimate sampled at frame start (stale by design)")
			for _, p := range cfg.Profiles {
				res.Notef("profile %s: %s", p.Name, p.Spec)
			}
			res.Notef("effective config: k=%d, %d trials per cell (this experiment defaults k to 4 and caps trials at 40)",
				cfg.Spinal.K, cfg.Trials)
			res.Add(FormatBakeoff(pts))
			return res, nil
		},
	})
	sim.Register(sim.Scenario{
		Name:        "batch",
		Description: "batched versus per-symbol transmission path (bit-identical decodes, wall-clock)",
		Flags:       append([]string{"snr"}, codeFlags...),
		Schema:      BatchColumns(),
		Run: func(req sim.Request) (*sim.Result, error) {
			cfg, err := spinalConfigFrom(req)
			if err != nil {
				return nil, err
			}
			cfg.Trials = capTrials(req.Trials, 20)
			var pts []BatchPoint
			seen := map[float64]bool{}
			for _, snr := range []float64{0, req.SNR, 25} {
				if seen[snr] {
					continue
				}
				seen[snr] = true
				pt, err := BatchObserveComparison(cfg, snr)
				if err != nil {
					return nil, err
				}
				pts = append(pts, pt)
			}
			res := sim.NewResult("batch")
			res.Notef("batched vs per-symbol transmission path (bit-identical decodes, wall-clock only)")
			res.Notef("effective config: %d trials (this experiment caps trials at 20)", cfg.Trials)
			res.Add(FormatBatch(pts))
			return res, nil
		},
	})
}

// runFigure2Scenario reproduces every curve of Figure 2: the bounds, the
// spinal code and the eight LDPC baselines.
func runFigure2Scenario(req sim.Request) (*sim.Result, error) {
	snrs := snrsFrom(req)
	res := sim.NewResult("figure2")

	bounds, err := Figure2Bounds(snrs)
	if err != nil {
		return nil, err
	}
	tb := FormatBounds(bounds)
	tb.Title = "Figure 2 — reference bounds"
	res.Add(tb)

	cfg, err := spinalConfigFrom(req)
	if err != nil {
		return nil, err
	}
	spinalPts, err := SpinalRateCurve(cfg, snrs)
	if err != nil {
		return nil, err
	}
	ts := FormatRateCurve("spinal", spinalPts)
	ts.Title = fmt.Sprintf("Figure 2 — spinal code (m=%d, k=%d, c=%d, B=%d, %d-bit ADC)",
		cfg.MessageBits, cfg.K, cfg.C, cfg.BeamWidth, cfg.ADCBits)
	res.Add(ts)

	for _, ldpcCfg := range Figure2LDPCConfigs() {
		if req.Frames > 0 {
			ldpcCfg.Frames = req.Frames
		}
		ldpcCfg.TrialWorkers = req.TrialWorkers
		pts, err := LDPCThroughputCurve(ldpcCfg, snrs)
		if err != nil {
			return nil, err
		}
		t := FormatThroughput(strings.ReplaceAll(ldpcCfg.Label(), " ", "_"), pts)
		t.Title = fmt.Sprintf("Figure 2 — %s (648-bit codewords, %d-iteration BP)", ldpcCfg.Label(), ldpc.DefaultIterations)
		res.Add(t)
	}
	return res, nil
}
