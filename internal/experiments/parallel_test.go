package experiments

import (
	"runtime"
	"testing"
)

// TestParallelDecodeComparisonEquivalence checks the scaling experiment end
// to end: full rateless transmissions at low SNR decoded with 1, 2 and
// GOMAXPROCS workers must deliver exactly the same messages with exactly the
// same channel uses and node accounting (ParallelDecodeComparison errors out
// internally if they do not), while reporting plausible throughput numbers.
func TestParallelDecodeComparisonEquivalence(t *testing.T) {
	cfg := Figure2Config()
	cfg.Trials = 4
	cfg.MaxPasses = 400
	cfg.Schedule = "sequential" // the natural low-SNR operating point
	workers := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g > 2 {
		workers = append(workers, g)
	}
	pts, err := ParallelDecodeComparison(cfg, 0 /* dB */, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(workers) {
		t.Fatalf("got %d points for %d worker counts", len(pts), len(workers))
	}
	if pts[0].Delivered == 0 {
		t.Fatal("no messages delivered at 0 dB within the pass budget")
	}
	for i, pt := range pts {
		if pt.Workers != workers[i] {
			t.Fatalf("point %d reports %d workers, want %d", i, pt.Workers, workers[i])
		}
		if pt.NodesExpanded != pts[0].NodesExpanded {
			t.Fatalf("workers=%d expanded %d nodes, serial expanded %d: parallel decode is not bit-identical",
				pt.Workers, pt.NodesExpanded, pts[0].NodesExpanded)
		}
		if pt.Delivered != pts[0].Delivered {
			t.Fatalf("workers=%d delivered %d, serial delivered %d", pt.Workers, pt.Delivered, pts[0].Delivered)
		}
		if pt.NodesPerSec <= 0 || pt.Elapsed <= 0 {
			t.Fatalf("workers=%d reports implausible throughput: %+v", pt.Workers, pt)
		}
	}
	t.Logf("scaling at 0 dB: %v", pts)
}

// TestParallelDecodeComparisonRejectsBadWorkers pins the input validation.
func TestParallelDecodeComparisonRejectsBadWorkers(t *testing.T) {
	cfg := Figure2Config()
	cfg.Trials = 1
	if _, err := ParallelDecodeComparison(cfg, 0, []int{0}); err == nil {
		t.Fatal("worker count 0 accepted")
	}
}
