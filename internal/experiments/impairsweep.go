package experiments

import (
	"fmt"

	"spinal/internal/impair"
	"spinal/internal/sim"
	"spinal/internal/stats"
)

// This file is the impairment-sweep experiment: the spinal code's achieved
// rate over a stacked impairment pipeline versus each of the stack's stages
// alone. The paper's motivating claim is robustness to unknown and
// time-varying conditions; this experiment quantifies the claim by holding
// the code fixed and composing the channel, showing that the code keeps
// delivering (at a lower rate) when the stages gang up.

// DefaultImpairStack is the stacked profile the impairsweep and bakeoff
// scenarios default to: burst SNR gating under Markov interference spikes
// under per-block erasures.
const DefaultImpairStack = "ge(good=18,bad=4,dgood=400,dbad=120)|spike(prob=0.02,dwell=25,db=-3)|erase(p=0.01,block=24)"

// ImpairPoint is one profile's outcome in the impairment sweep.
type ImpairPoint struct {
	// Profile names the pipeline ("stack" for the full composition, the
	// stage's canonical spec otherwise).
	Profile string
	// Rate is the aggregate achieved rate in bits per symbol.
	Rate float64
	// Conf95 is the half-width of a 95% CI on the per-message rate mean.
	Conf95 float64
	// Failures counts messages not decoded within the pass budget.
	Failures int
	Trials   int
}

// pipelineSeed derives the per-trial pipeline seed: a third stream alongside
// the message (0x9e37...) and AWGN-channel (0xbb67...) mixers, so every
// trial faces a fresh, reproducible impairment schedule.
func pipelineSeed(seed, trial uint64) uint64 {
	return seed ^ (0x7f4a7c159e3779b9 * (trial + 1))
}

// spinalRateOverSpec measures the spinal genie rate over the pipeline the
// spec describes, sharded over the sim runner with per-trial pipeline seeds.
func spinalRateOverSpec(cfg SpinalConfig, spec *impair.Spec) (ImpairPoint, error) {
	cfg = cfg.withDefaults()
	params, err := cfg.params()
	if err != nil {
		return ImpairPoint{}, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return ImpairPoint{}, err
	}
	// Build once eagerly so a bad spec fails before any trial runs.
	if _, err := spec.Build(cfg.Seed); err != nil {
		return ImpairPoint{}, err
	}

	results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (genieTrial, error) {
		lease, err := w.Decoder(params, cfg.BeamWidth)
		if err != nil {
			return genieTrial{}, err
		}
		if err := lease.Dec.SetCostMetric(cfg.Metric); err != nil {
			return genieTrial{}, err
		}
		if cfg.Workers > 0 {
			lease.Dec.SetParallelism(cfg.Workers)
		} else {
			lease.Dec.SetParallelism(1)
		}
		pl, err := spec.Build(pipelineSeed(cfg.Seed, uint64(trial)))
		if err != nil {
			return genieTrial{}, err
		}
		symbols, ok := runGenieTrialOver(cfg, params, sched, lease, pl, uint64(trial))
		return genieTrial{symbols: symbols, ok: ok}, nil
	})
	if err != nil {
		return ImpairPoint{}, err
	}

	var meter stats.RateMeter
	failures := 0
	for _, r := range results {
		if !r.ok {
			failures++
		}
		bits := 0
		if r.ok {
			bits = cfg.MessageBits
		}
		meter.Record(bits, r.symbols)
	}
	return ImpairPoint{
		Profile:  spec.String(),
		Rate:     meter.Rate(),
		Conf95:   meter.PerMessage().Conf95(),
		Failures: failures,
		Trials:   cfg.Trials,
	}, nil
}

// ImpairSweep measures the spinal rate over each stage of the stack alone
// and then over the full stack, on identical per-trial message streams. The
// stack's point is labeled "stack" and always comes last.
func ImpairSweep(cfg SpinalConfig, stack *impair.Spec) ([]ImpairPoint, error) {
	if len(stack.Stages) == 0 {
		return nil, fmt.Errorf("experiments: impairment sweep needs at least one stage")
	}
	var pts []ImpairPoint
	for i := range stack.Stages {
		pt, err := spinalRateOverSpec(cfg, stack.Single(i))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	full, err := spinalRateOverSpec(cfg, stack)
	if err != nil {
		return nil, err
	}
	full.Profile = "stack"
	return append(pts, full), nil
}
