package experiments

import (
	"strings"
	"testing"

	"spinal/internal/fading"
)

func TestDefaultAdaptationScenarios(t *testing.T) {
	scs := DefaultAdaptationScenarios()
	if len(scs) < 3 {
		t.Fatalf("expected at least three scenarios, got %d", len(scs))
	}
	names := map[string]bool{}
	for _, sc := range scs {
		if sc.Name == "" || names[sc.Name] {
			t.Fatalf("scenario names must be unique and non-empty: %q", sc.Name)
		}
		names[sc.Name] = true
		tr, err := sc.Trace(1)
		if err != nil {
			t.Fatalf("scenario %q trace: %v", sc.Name, err)
		}
		if tr.Name() == "" {
			t.Fatalf("scenario %q produced unnamed trace", sc.Name)
		}
	}
}

func TestAdaptationComparisonStaticOnly(t *testing.T) {
	// Keep the unit test cheap: a single static scenario and a small budget.
	scenarios := []AdaptationScenario{{
		Name:          "static 18 dB",
		Trace:         func(seed uint64) (fading.Trace, error) { return fading.Constant{Level: 18}, nil },
		EstimateDelay: 648,
		EstimateErrDB: 1,
	}}
	pts, err := AdaptationComparison(AdaptationConfig{Scenarios: scenarios, SymbolBudget: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.AdaptiveThroughput <= 0 || p.RatelessThroughput <= 0 {
		t.Fatalf("throughputs not positive: %+v", p)
	}
	if p.RatelessThroughput > 7 || p.AdaptiveThroughput > 5 {
		t.Fatalf("throughputs implausibly high: %+v", p)
	}
	table := FormatAdaptation(pts)
	if !strings.Contains(table.String(), "static 18 dB") {
		t.Fatal("formatted table missing scenario name")
	}
}

func TestAdaptationComparisonPropagatesTraceErrors(t *testing.T) {
	scenarios := []AdaptationScenario{{
		Name: "broken",
		Trace: func(seed uint64) (fading.Trace, error) {
			return fading.NewWalk(10, 5, 1, seed) // invalid range
		},
	}}
	if _, err := AdaptationComparison(AdaptationConfig{Scenarios: scenarios, SymbolBudget: 2000, Seed: 1}); err == nil {
		t.Fatal("trace construction error not propagated")
	}
}

func TestFixedRateSpinal(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 15
	pts, err := FixedRateSpinal(cfg, []float64{6, 14}, 4) // rate 2 bits/symbol
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	low, high := pts[0], pts[1]
	if low.Rate != 2 || high.Rate != 2 {
		t.Fatalf("nominal rate wrong: %+v", pts)
	}
	// At 14 dB (capacity ~4.7) the rate-2 block code should almost always
	// decode; at 6 dB (capacity ~2.6) it should fail noticeably more often.
	if high.FER > 0.2 {
		t.Fatalf("FER at 14 dB = %v, too high", high.FER)
	}
	if low.FER < high.FER {
		t.Fatalf("FER should worsen at lower SNR: %v vs %v", low.FER, high.FER)
	}
	// The rateless rate at 14 dB should beat the fixed-rate throughput, since
	// the fixed rate was chosen for robustness, not for 14 dB.
	if high.RatelessRate <= high.Throughput {
		t.Fatalf("rateless rate %v should exceed fixed-rate throughput %v at 14 dB",
			high.RatelessRate, high.Throughput)
	}
	if s := FormatFixedRate(pts).String(); !strings.Contains(s, "passes") {
		t.Fatal("fixed-rate table missing header")
	}
	if _, err := FixedRateSpinal(cfg, []float64{10}, 0); err == nil {
		t.Fatal("zero passes accepted")
	}
}
