package experiments

import (
	"fmt"

	"spinal/internal/conv"
	"spinal/internal/crc"
	"spinal/internal/fountain"
	"spinal/internal/harq"
	"spinal/internal/impair"
	"spinal/internal/ldpc"
	"spinal/internal/modem"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// This file is the cross-code bake-off: spinal versus the fixed-rate and
// conventionally-rateless baselines (LDPC, convolutional/Viterbi, LDPC
// hybrid ARQ) over the same stacked impairment profiles on identical
// per-trial seeds. Every scheme facing profile P in trial t sees a pipeline
// built from the same seed — the same fading trace, the same interference
// spikes, the same erasure schedule — so differences in goodput are the
// codes', not the noise draw's.

// BakeoffProfile names one stacked impairment under test.
type BakeoffProfile struct {
	Name string
	Spec string
}

// DefaultBakeoffProfiles returns the two stacked profiles the bakeoff
// scenario runs by default: bursty gating with interference, and fading
// with a mid-message SNR collapse plus erasures.
func DefaultBakeoffProfiles() []BakeoffProfile {
	return []BakeoffProfile{
		{Name: "burst+spike", Spec: "ge(good=16,bad=3,dgood=350,dbad=120)|spike(prob=0.02,dwell=25,db=-3)"},
		{Name: "fade+ramp+erase", Spec: "rayleigh(avg=16,tc=96)|ramp(from=30,to=10,over=3000)|erase(p=0.01,block=24)"},
	}
}

// BakeoffConfig describes the bake-off run.
type BakeoffConfig struct {
	// Spinal is the spinal operating point; its Seed is also the base seed
	// every scheme's per-trial streams derive from.
	Spinal SpinalConfig
	// Trials is the number of messages/frames per (profile, scheme) cell.
	Trials int
	// Profiles are the impairment stacks; empty selects the defaults.
	Profiles []BakeoffProfile
	// TrialWorkers is the sim.Run worker-pool size; zero means GOMAXPROCS.
	TrialWorkers int
}

// BakeoffPoint is one (profile, scheme) cell of the bake-off.
type BakeoffPoint struct {
	Profile string
	Scheme  string
	// Goodput is delivered information bits per symbol.
	Goodput float64
	// Conf95 is the half-width of a 95% CI on the per-frame rate mean.
	Conf95 float64
	// Delivered counts frames/messages recovered exactly.
	Delivered int
	Trials    int
}

// profileSeed gives each profile its own seed space, folded FNV-style from
// the profile name so adding a profile never perturbs the others.
func profileSeed(seed uint64, name string) uint64 {
	h := seed
	for _, c := range name {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

// bakeoffPoint folds per-trial outcomes into one cell.
func bakeoffPoint(profile, scheme string, trials []frameTrial) BakeoffPoint {
	pt := throughputPoint(0, 0, trials)
	delivered := 0
	for _, tr := range trials {
		if tr.ok {
			delivered++
		}
	}
	return BakeoffPoint{
		Profile:   profile,
		Scheme:    scheme,
		Goodput:   pt.Throughput,
		Conf95:    pt.Conf95,
		Delivered: delivered,
		Trials:    len(trials),
	}
}

// Bakeoff runs every scheme over every profile and returns the cells in
// (profile, scheme) order: spinal first, then the baselines.
func Bakeoff(cfg BakeoffConfig) ([]BakeoffPoint, error) {
	if cfg.Trials < 1 {
		cfg.Trials = 40
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = DefaultBakeoffProfiles()
	}
	scfg := cfg.Spinal.withDefaults()
	scfg.Trials = cfg.Trials
	scfg.TrialWorkers = cfg.TrialWorkers

	var out []BakeoffPoint
	for _, prof := range profiles {
		spec, err := impair.ParseAny(prof.Spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: profile %q: %w", prof.Name, err)
		}
		if len(spec.Stages) == 0 {
			return nil, fmt.Errorf("experiments: profile %q is empty", prof.Name)
		}
		base := profileSeed(scfg.Seed, prof.Name)

		// Spinal: the genie rate over the pipeline, per-trial seeds from the
		// profile base.
		pcfg := scfg
		pcfg.Seed = base
		spinalPt, err := spinalRateOverSpec(pcfg, spec)
		if err != nil {
			return nil, err
		}
		delivered := pcfg.Trials - spinalPt.Failures
		out = append(out, BakeoffPoint{
			Profile: prof.Name, Scheme: "spinal",
			Goodput: spinalPt.Rate, Conf95: spinalPt.Conf95,
			Delivered: delivered, Trials: pcfg.Trials,
		})

		// The baselines face pipelines built from the same per-trial seeds.
		for _, scheme := range []string{"ldpc", "conv", "harq", "fountain"} {
			trials, err := bakeoffBaseline(scheme, spec, base, cfg.Trials, cfg.TrialWorkers)
			if err != nil {
				return nil, err
			}
			out = append(out, bakeoffPoint(prof.Name, scheme, trials))
		}
	}
	return out, nil
}

// bakeoffBaseline runs one fixed-rate or HARQ baseline over the profile's
// per-trial pipelines. Each frame demodulates with the pipeline's variance
// estimate sampled at frame start — exactly the stale channel-state
// assumption the paper argues fixed-rate systems are stuck with when
// conditions shift mid-frame.
func bakeoffBaseline(scheme string, spec *impair.Spec, base uint64, trials, trialWorkers int) ([]frameTrial, error) {
	runner := sim.Runner{Workers: trialWorkers}
	switch scheme {
	case "ldpc":
		code, err := ldpc.NewWiFiLike(ldpc.Rate12)
		if err != nil {
			return nil, err
		}
		mod, err := modem.ByName("QAM-4")
		if err != nil {
			return nil, err
		}
		symbolsPerFrame := code.N() / mod.BitsPerSymbol()
		return sim.Run(runner, trials, func(w *sim.Worker, trial int) (frameTrial, error) {
			decAny, err := w.Stash("bakeoff-ldpc", func() (any, error) {
				return ldpc.NewDecoder(code, ldpc.DefaultIterations)
			})
			if err != nil {
				return frameTrial{}, err
			}
			dec := decAny.(*ldpc.Decoder)
			pl, err := spec.Build(pipelineSeed(base, uint64(trial)))
			if err != nil {
				return frameTrial{}, err
			}
			src := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			info := make([]byte, code.K())
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			cw, err := code.Encode(info)
			if err != nil {
				return frameTrial{}, err
			}
			syms, err := mod.Modulate(cw)
			if err != nil {
				return frameTrial{}, err
			}
			sigma2 := staleVariance(pl)
			pl.CorruptBlock(syms, syms)
			llr := mod.Demodulate(syms, sigma2)
			res, err := dec.Decode(llr)
			if err != nil {
				return frameTrial{}, err
			}
			ok := res.Converged
			if ok {
				for i := range info {
					if res.Info[i] != info[i] {
						ok = false
						break
					}
				}
			}
			bits := 0
			if ok {
				bits = code.K()
			}
			return frameTrial{bits: bits, symbols: symbolsPerFrame, ok: ok}, nil
		})
	case "conv":
		const frameBits = 288
		probeCode, err := conv.NewPunctured("1/2")
		if err != nil {
			return nil, err
		}
		mod, err := modem.ByName("BPSK")
		if err != nil {
			return nil, err
		}
		probe, err := probeCode.Encode(make([]byte, frameBits))
		if err != nil {
			return nil, err
		}
		codedPerFrame := len(probe)
		for codedPerFrame%mod.BitsPerSymbol() != 0 {
			codedPerFrame++
		}
		symbolsPerFrame := codedPerFrame / mod.BitsPerSymbol()
		return sim.Run(runner, trials, func(w *sim.Worker, trial int) (frameTrial, error) {
			codecAny, err := w.Stash("bakeoff-conv", func() (any, error) {
				return conv.NewPunctured("1/2")
			})
			if err != nil {
				return frameTrial{}, err
			}
			codec := codecAny.(*conv.Code)
			pl, err := spec.Build(pipelineSeed(base, uint64(trial)))
			if err != nil {
				return frameTrial{}, err
			}
			src := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			info := make([]byte, frameBits)
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			coded, err := codec.Encode(info)
			if err != nil {
				return frameTrial{}, err
			}
			for len(coded)%mod.BitsPerSymbol() != 0 {
				coded = append(coded, 0)
			}
			syms, err := mod.Modulate(coded)
			if err != nil {
				return frameTrial{}, err
			}
			sigma2 := staleVariance(pl)
			pl.CorruptBlock(syms, syms)
			llr := mod.Demodulate(syms, sigma2)
			decoded, err := codec.Decode(llr[:codec.CodedLength(frameBits)], frameBits)
			if err != nil {
				return frameTrial{}, err
			}
			ok := true
			for i := range info {
				if decoded[i] != info[i] {
					ok = false
					break
				}
			}
			bits := 0
			if ok {
				bits = frameBits
			}
			return frameTrial{bits: bits, symbols: symbolsPerFrame, ok: ok}, nil
		})
	case "harq":
		if _, err := harq.New(harq.Config{Rate: ldpc.Rate12, Modulation: "QAM-4"}); err != nil {
			return nil, err
		}
		return sim.Run(runner, trials, func(w *sim.Worker, trial int) (frameTrial, error) {
			schemeAny, err := w.Stash("bakeoff-harq", func() (any, error) {
				return harq.New(harq.Config{Rate: ldpc.Rate12, Modulation: "QAM-4"})
			})
			if err != nil {
				return frameTrial{}, err
			}
			sch := schemeAny.(*harq.Scheme)
			pl, err := spec.Build(pipelineSeed(base, uint64(trial)))
			if err != nil {
				return frameTrial{}, err
			}
			src := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			res, err := sch.RunFrame(pl.Corrupt, staleVariance(pl), src)
			if err != nil {
				return frameTrial{}, err
			}
			bits := 0
			if res.Delivered {
				bits = sch.InfoBits()
			}
			return frameTrial{bits: bits, symbols: res.Symbols, ok: res.Delivered}, nil
		})
	case "fountain":
		// Rateless at the packet level rather than the symbol level: LT
		// symbols stream until the peeling decoder completes, but each
		// symbol is an all-or-nothing CRC-guarded packet — a corrupted
		// packet contributes nothing, where spinal's decoder still extracts
		// information from every noisy symbol.
		const (
			ltBlocks    = 16
			ltBlockSize = 8
			maxOverhead = 5 // cap transmissions at maxOverhead * ltBlocks symbols
		)
		mod, err := modem.ByName("QAM-4")
		if err != nil {
			return nil, err
		}
		if _, err := fountain.NewLT(ltBlocks, ltBlockSize, base); err != nil {
			return nil, err
		}
		// data + CRC32 trailer, bits-as-bytes, QAM-4 channel symbols per packet.
		packetBytes := ltBlockSize + 4
		packetSymbols := packetBytes * 8 / mod.BitsPerSymbol()
		return sim.Run(runner, trials, func(w *sim.Worker, trial int) (frameTrial, error) {
			ltAny, err := w.Stash("bakeoff-fountain", func() (any, error) {
				return fountain.NewLT(ltBlocks, ltBlockSize, base)
			})
			if err != nil {
				return frameTrial{}, err
			}
			lt := ltAny.(*fountain.LT)
			pl, err := spec.Build(pipelineSeed(base, uint64(trial)))
			if err != nil {
				return frameTrial{}, err
			}
			src := rng.New(base ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			source := make([][]byte, ltBlocks)
			for i := range source {
				source[i] = make([]byte, ltBlockSize)
				for j := range source[i] {
					source[i][j] = byte(src.Intn(256))
				}
			}
			dec := fountain.NewDecoder(lt)
			sent := 0
			bits := make([]byte, packetBytes*8)
			packed := make([]byte, packetBytes)
			for id := uint32(0); !dec.Done() && sent < maxOverhead*ltBlocks; id++ {
				payload, err := lt.EncodeSymbol(id, source)
				if err != nil {
					return frameTrial{}, err
				}
				pkt := crc.Append32(payload)
				for i, b := range pkt {
					for j := 0; j < 8; j++ {
						bits[i*8+j] = (b >> uint(7-j)) & 1
					}
				}
				syms, err := mod.Modulate(bits)
				if err != nil {
					return frameTrial{}, err
				}
				sigma2 := staleVariance(pl)
				pl.CorruptBlock(syms, syms)
				llr := mod.Demodulate(syms, sigma2)
				for i := range packed {
					packed[i] = 0
					for j := 0; j < 8; j++ {
						// Positive LLR favours bit 0.
						if llr[i*8+j] <= 0 {
							packed[i] |= 1 << uint(7-j)
						}
					}
				}
				sent++
				if data, ok := crc.Verify32(packed); ok {
					if err := dec.AddSymbol(id, data); err != nil {
						return frameTrial{}, err
					}
				}
			}
			ok := dec.Done()
			if ok {
				for i, blk := range dec.Source() {
					for j := range blk {
						if blk[j] != source[i][j] {
							ok = false
						}
					}
				}
			}
			infoBits := 0
			if ok {
				infoBits = ltBlocks * ltBlockSize * 8
			}
			return frameTrial{bits: infoBits, symbols: sent * packetSymbols, ok: ok}, nil
		})
	default:
		return nil, fmt.Errorf("experiments: unknown bakeoff scheme %q", scheme)
	}
}

// staleVariance is the noise-variance estimate a fixed-rate receiver
// demodulates a frame with: the pipeline's instantaneous variance at frame
// start, floored so a momentarily quiet channel does not produce infinite
// LLRs. It goes stale the moment the stack shifts mid-frame, which is the
// point of the comparison.
func staleVariance(pl *impair.Pipeline) float64 {
	v := pl.NoiseVariance()
	if v < 1e-9 {
		v = 1e-9
	}
	return v
}
