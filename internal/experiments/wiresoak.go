package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"slices"
	"sync/atomic"
	"time"

	"spinal/internal/link"
)

// WireSoakPoint summarizes one soak run of the zero-copy wire path: after a
// warmup delivers every flow's message, the soak retransmits delivered
// frames at full rate, exercising the steady-state ingest → demux →
// ack-repeat loop that is engineered to allocate nothing per frame.
type WireSoakPoint struct {
	// Mode is "batched" (SendBatch/ReceiveBatch with coalesced acks) or
	// "unbatched" (one transport call per frame), on an otherwise identical
	// in-memory link.
	Mode string
	// Flows is the number of concurrent sender identities.
	Flows int
	// Frames is the number of data frames moved during the soak phase
	// (warmup excluded).
	Frames int
	// Delivered is the number of packets decoded during warmup; the soak
	// only begins once it equals Flows.
	Delivered int
	// Acks is the number of ack frames the senders drained during the soak;
	// every soak frame is answered, so this equals Frames.
	Acks int
	// Elapsed is the soak phase wall-clock time.
	Elapsed time.Duration
	// FramesPerSec is the soak ingest rate.
	FramesPerSec float64
	// AllocsPerFrame is the heap allocation count per soak frame, from the
	// runtime's malloc counter across the whole soak (both endpoints and the
	// receiver's decode workers included). The wire path holds this at zero;
	// small residue comes from runtime background work.
	AllocsPerFrame float64
	// P99RTT is the 99th-percentile round trip of one soak burst: batch
	// sent → every ack drained.
	P99RTT time.Duration
}

// wireSoakBurst is how many retransmitted frames each flow contributes to
// one soak round.
const wireSoakBurst = 8

// wireSoakPayloadLen keeps warmup decodes cheap; the soak itself never
// decodes (every frame hits delivered state).
const wireSoakPayloadLen = 16

// plainPipe narrows a *link.Pipe to the bare Transport interface, hiding its
// batch methods so a receiver built over it takes the one-frame-per-call
// ingest path — the unbatched baseline of the soak.
type plainPipe struct{ p *link.Pipe }

func (t plainPipe) Send(frame []byte) error { return t.p.Send(frame) }
func (t plainPipe) Receive(buf []byte, timeout time.Duration) (int, error) {
	return t.p.Receive(buf, timeout)
}
func (t plainPipe) Close() error { return t.p.Close() }

// WireSoak measures the steady-state wire path in both modes over the same
// in-memory link. Rounds and flows are the knobs: each round retransmits
// wireSoakBurst frames per flow and waits for all the repeated acks, so the
// soak covers ingest batching, the in-place frame parse, the arena-backed
// ack marshal and the transport's buffer recycling — every piece of the
// zero-copy path — without decoder cost drowning the I/O signal.
func WireSoak(seed uint64, flows, rounds int) ([]WireSoakPoint, error) {
	if flows < 1 || rounds < 1 {
		return nil, fmt.Errorf("experiments: wiresoak needs at least one flow and one round, got %d/%d", flows, rounds)
	}
	var out []WireSoakPoint
	for _, mode := range []string{"unbatched", "batched"} {
		pt, err := wireSoakRun(mode, seed, flows, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, *pt)
	}
	return out, nil
}

func wireSoakRun(mode string, seed uint64, flows, rounds int) (*WireSoakPoint, error) {
	cfg := link.Config{Seed: seed}
	// One message per flow, noiseless, so warmup decodes on the first pass
	// and the soak retransmits frames of delivered messages only.
	type flowMsg struct {
		payload []byte
		frames  [][]byte
	}
	msgs := make([]flowMsg, flows)
	for f := range msgs {
		payload := make([]byte, wireSoakPayloadLen)
		for i := range payload {
			payload[i] = byte(seed>>uint(i%8*8) ^ uint64(f*31+i))
		}
		frames, err := link.EncodeFrames(cfg, uint32(f+1), 1, payload, 16, 1, nil)
		if err != nil {
			return nil, err
		}
		msgs[f] = flowMsg{payload: payload, frames: frames}
	}

	far, near, err := link.NewPipePair(0, seed|1)
	if err != nil {
		return nil, err
	}
	defer far.Close()
	var rtr link.Transport = near
	if mode == "unbatched" {
		rtr = plainPipe{p: near}
	}
	recv, err := link.NewReceiver(rtr, cfg, nil)
	if err != nil {
		return nil, err
	}
	defer recv.Close()

	// The receiver pump: drains the pipe, hands decode attempts to the
	// worker pool, counts warmup deliveries, and answers soak retransmits
	// with repeated acks as a side effect of ingest.
	var delivered atomic.Int64
	var deliverErr atomic.Value
	stop := make(chan struct{})
	pumpDone := make(chan struct{})
	go func() {
		defer close(pumpDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			d, err := recv.Receive(2 * time.Millisecond)
			if err != nil && err != link.ErrTimeout {
				deliverErr.Store(err)
				return
			}
			if d != nil {
				f := int(d.FlowID) - 1
				if f < 0 || f >= flows || !bytes.Equal(d.Payload, msgs[f].payload) {
					deliverErr.Store(fmt.Errorf("experiments: wiresoak delivered a corrupted payload for flow %d", d.FlowID))
					return
				}
				delivered.Add(1)
			}
		}
	}()
	stopPump := func() {
		close(stop)
		<-pumpDone
	}

	// Warmup: stream every flow's frames until all messages deliver. The
	// delivery acks are drained so the soak starts with an empty return path.
	ackBuf := make([]byte, link.MaxFrameSize)
	drainAcks := func(want int, deadline time.Time) (int, error) {
		got := 0
		for got < want {
			if _, err := far.Receive(ackBuf, 0); err == nil {
				got++
				continue
			} else if err != link.ErrTimeout {
				return got, err
			}
			if time.Now().After(deadline) {
				return got, nil
			}
			time.Sleep(20 * time.Microsecond)
		}
		return got, nil
	}
	warmupDeadline := time.Now().Add(10 * time.Second)
	for next := 0; delivered.Load() < int64(flows); {
		sent := false
		for _, m := range msgs {
			if next < len(m.frames) {
				if err := far.Send(m.frames[next]); err != nil {
					stopPump()
					return nil, err
				}
				sent = true
			}
		}
		next++
		if !sent {
			time.Sleep(time.Millisecond)
		}
		if e := deliverErr.Load(); e != nil {
			stopPump()
			return nil, e.(error)
		}
		if time.Now().After(warmupDeadline) {
			stopPump()
			return nil, fmt.Errorf("experiments: wiresoak warmup delivered %d/%d messages", delivered.Load(), flows)
		}
	}
	if _, err := drainAcks(1<<31-1, time.Now().Add(50*time.Millisecond)); err != nil {
		stopPump()
		return nil, err
	}

	// Soak: every round retransmits the first frame of each delivered
	// message wireSoakBurst times and waits for the repeated acks. One
	// priming round warms the transport buffer pools before measurement.
	burst := make([][]byte, 0, flows*wireSoakBurst)
	for _, m := range msgs {
		for i := 0; i < wireSoakBurst; i++ {
			burst = append(burst, m.frames[0])
		}
	}
	sendBurst := func() error {
		if mode == "batched" {
			n, err := far.SendBatch(burst)
			if err == nil && n != len(burst) {
				err = fmt.Errorf("experiments: wiresoak short send %d/%d", n, len(burst))
			}
			return err
		}
		for _, fr := range burst {
			if err := far.Send(fr); err != nil {
				return err
			}
		}
		return nil
	}
	roundTrip := func() (time.Duration, error) {
		t0 := time.Now()
		if err := sendBurst(); err != nil {
			return 0, err
		}
		got, err := drainAcks(len(burst), time.Now().Add(5*time.Second))
		if err != nil {
			return 0, err
		}
		if got != len(burst) {
			return 0, fmt.Errorf("experiments: wiresoak round drained %d/%d acks", got, len(burst))
		}
		return time.Since(t0), nil
	}
	if _, err := roundTrip(); err != nil {
		stopPump()
		return nil, err
	}

	rtts := make([]time.Duration, 0, rounds)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		rtt, err := roundTrip()
		if err != nil {
			stopPump()
			return nil, err
		}
		rtts = append(rtts, rtt)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	stopPump()
	if e := deliverErr.Load(); e != nil {
		return nil, e.(error)
	}

	frames := rounds * len(burst)
	pt := &WireSoakPoint{
		Mode:      mode,
		Flows:     flows,
		Frames:    frames,
		Delivered: int(delivered.Load()),
		Acks:      frames,
		Elapsed:   elapsed,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		pt.FramesPerSec = float64(frames) / secs
	}
	pt.AllocsPerFrame = float64(ms1.Mallocs-ms0.Mallocs) / float64(frames)
	slices.Sort(rtts)
	pt.P99RTT = rtts[(len(rtts)*99+99)/100-1]
	return pt, nil
}
