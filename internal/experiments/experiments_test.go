package experiments

import (
	"math"
	"strings"
	"testing"

	"spinal/internal/ldpc"
)

// quickCfg returns a configuration small enough for unit tests while keeping
// the Figure 2 structure (24-bit messages, k=8, c=10, B=16).
func quickCfg() SpinalConfig {
	cfg := Figure2Config()
	cfg.Trials = 25
	cfg.MaxPasses = 300
	return cfg
}

func TestSNRSweep(t *testing.T) {
	s, err := SNRSweep(-10, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-10, 0, 10, 20, 30, 40}
	if len(s) != len(want) {
		t.Fatalf("sweep = %v", s)
	}
	for i := range want {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("sweep[%d] = %v", i, s[i])
		}
	}
	if _, err := SNRSweep(0, 10, 0); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := SNRSweep(10, 0, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if f2, err := Figure2SNRs(5); err != nil || f2[0] != -10 || f2[len(f2)-1] != 40 {
		t.Errorf("Figure2SNRs wrong: %v %v", f2, err)
	}
}

func TestBoundsCurveOrdering(t *testing.T) {
	snrs, _ := SNRSweep(-10, 40, 5)
	pts, err := Figure2Bounds(snrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(snrs) {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.FiniteBlock > p.Shannon+1e-9 {
			t.Errorf("finite-blocklength bound above capacity at %v dB", p.SNRdB)
		}
		if p.Theorem1 > p.Shannon+1e-9 {
			t.Errorf("Theorem 1 bound above capacity at %v dB", p.SNRdB)
		}
		if p.Shannon < 0 || p.FiniteBlock < 0 || p.Theorem1 < 0 {
			t.Errorf("negative bound at %v dB", p.SNRdB)
		}
	}
	if _, err := BoundsCurve(snrs, 0, 1e-4); err == nil {
		t.Error("invalid block length accepted")
	}
	if _, err := BoundsCurve(snrs, 24, 0); err == nil {
		t.Error("invalid error probability accepted")
	}
}

func TestSpinalRateAtModerateSNR(t *testing.T) {
	cfg := quickCfg()
	pt, err := SpinalRateAtSNR(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Failures != 0 {
		t.Fatalf("%d/%d messages failed at 10 dB", pt.Failures, pt.Trials)
	}
	if pt.Rate <= 1.5 || pt.Rate > pt.Capacity {
		t.Fatalf("rate at 10 dB = %v (capacity %v); expected a value in (1.5, capacity]", pt.Rate, pt.Capacity)
	}
	if pt.Trials != cfg.Trials {
		t.Fatalf("trials = %d", pt.Trials)
	}
}

func TestSpinalRateCurveIncreasesWithSNR(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 15
	pts, err := SpinalRateCurve(cfg, []float64{0, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if !(pts[0].Rate < pts[1].Rate && pts[1].Rate < pts[2].Rate) {
		t.Fatalf("rates not increasing with SNR: %v %v %v", pts[0].Rate, pts[1].Rate, pts[2].Rate)
	}
	for _, p := range pts {
		// Genie-terminated measurement of a 24-bit message can land a hair
		// above capacity at low SNR (a finite-blocklength artifact also
		// present in the paper's methodology); allow a small absolute slack.
		if p.Rate > p.Capacity+0.15 {
			t.Fatalf("rate %v exceeds capacity %v at %v dB", p.Rate, p.Capacity, p.SNRdB)
		}
	}
}

func TestSpinalPuncturingExceedsKAtHighSNR(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 30
	pt, err := SpinalRateAtSNR(cfg, 35)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Rate <= float64(cfg.K) {
		t.Fatalf("punctured rate at 35 dB = %v, want > k = %d", pt.Rate, cfg.K)
	}
}

func TestSpinalInvalidConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.Mapper = "bogus"
	if _, err := SpinalRateAtSNR(cfg, 10); err == nil {
		t.Error("bogus mapper accepted")
	}
	cfg = quickCfg()
	cfg.Schedule = "bogus"
	if _, err := SpinalRateAtSNR(cfg, 10); err == nil {
		t.Error("bogus schedule accepted")
	}
}

func TestBeamWidthSweepScaleDown(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 15
	pts, err := BeamWidthSweep(cfg, 10, []int{1, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Rate < pts[0].Rate {
		t.Fatalf("B=16 rate %v below B=1 rate %v", pts[1].Rate, pts[0].Rate)
	}
	if _, err := BeamWidthSweep(cfg, 10, []int{0}); err == nil {
		t.Error("zero beam accepted")
	}
}

func TestQuantizationSweep(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 15
	pts, err := QuantizationSweep(cfg, 20, []int{4, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].Rate < pts[0].Rate {
		t.Fatalf("14-bit ADC rate %v below 4-bit rate %v", pts[1].Rate, pts[0].Rate)
	}
}

func TestMapperComparison(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 10
	curves, err := MapperComparison(cfg, []float64{15}, []string{"linear", "gaussian"})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for name, pts := range curves {
		if len(pts) != 1 || pts[0].Rate <= 0 {
			t.Fatalf("mapper %s produced no usable point: %+v", name, pts)
		}
	}
}

func TestPuncturingComparison(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 20
	punct, seq, err := PuncturingComparison(cfg, []float64{35})
	if err != nil {
		t.Fatal(err)
	}
	if len(punct) != 1 || len(seq) != 1 {
		t.Fatal("wrong number of points")
	}
	// The sequential schedule cannot exceed k bits/symbol; the punctured one
	// should at high SNR.
	if seq[0].Rate > float64(cfg.K)+1e-9 {
		t.Fatalf("sequential schedule rate %v exceeds k", seq[0].Rate)
	}
	if punct[0].Rate <= seq[0].Rate {
		t.Fatalf("puncturing did not help at 35 dB: %v vs %v", punct[0].Rate, seq[0].Rate)
	}
}

func TestTheorem1Gap(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 15
	pts, err := Theorem1Gap(cfg, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Rate > p.Capacity {
			t.Fatalf("rate above capacity at %v dB", p.SNRdB)
		}
		if p.Guarantee > p.Capacity {
			t.Fatalf("guarantee above capacity at %v dB", p.SNRdB)
		}
		if math.Abs(p.GapToCap-(p.Capacity-p.Rate)) > 1e-9 {
			t.Fatal("gap field inconsistent")
		}
	}
}

func TestSpinalBSCCurve(t *testing.T) {
	cfg := SpinalConfig{MessageBits: 16, K: 4, BeamWidth: 16, Trials: 8, MaxPasses: 400, Seed: 77}
	pts, err := SpinalBSCCurve(cfg, []float64{0.02, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Failures > 0 {
			t.Fatalf("BSC(%v): %d failures", p.P, p.Failures)
		}
		if p.Rate <= 0 || p.Rate > p.Capacity+1e-9 {
			t.Fatalf("BSC(%v): rate %v vs capacity %v", p.P, p.Rate, p.Capacity)
		}
	}
	if pts[0].Rate <= pts[1].Rate {
		t.Fatalf("rate at p=0.02 (%v) should exceed rate at p=0.2 (%v)", pts[0].Rate, pts[1].Rate)
	}
}

func TestLDPCThroughputCurve(t *testing.T) {
	cfg := LDPCConfig{Rate: ldpc.Rate12, Modulation: "BPSK", Frames: 25, Seed: 9}
	pts, err := LDPCThroughputCurve(cfg, []float64{-6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	low, high := pts[0], pts[1]
	if high.Throughput < 0.45 || high.FER > 0.1 {
		t.Fatalf("rate-1/2 BPSK at 6 dB should be error free: %+v", high)
	}
	if low.Throughput > 0.3 {
		t.Fatalf("rate-1/2 BPSK at -6 dB should mostly fail: %+v", low)
	}
	if high.PeakRate != 0.5 {
		t.Fatalf("peak rate = %v", high.PeakRate)
	}
}

func TestLDPCCurveRejectsUnknownModulation(t *testing.T) {
	cfg := LDPCConfig{Rate: ldpc.Rate12, Modulation: "QAM-1024", Frames: 5}
	if _, err := LDPCThroughputCurve(cfg, []float64{10}); err == nil {
		t.Error("unknown modulation accepted")
	}
}

func TestFigure2LDPCConfigs(t *testing.T) {
	cfgs := Figure2LDPCConfigs()
	if len(cfgs) != 8 {
		t.Fatalf("Figure 2 uses 8 LDPC baselines, got %d", len(cfgs))
	}
	labels := map[string]bool{}
	for _, c := range cfgs {
		if labels[c.Label()] {
			t.Fatalf("duplicate baseline %s", c.Label())
		}
		labels[c.Label()] = true
		if _, err := ldpc.NewWiFiLike(c.Rate); err != nil {
			t.Fatalf("baseline %s has invalid rate", c.Label())
		}
	}
}

func TestConvThroughputCurve(t *testing.T) {
	cfg := ConvConfig{Rate: "1/2", Modulation: "BPSK", FrameBits: 96, Frames: 20, Seed: 5}
	pts, err := ConvThroughputCurve(cfg, []float64{6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].FER > 0.1 || pts[0].Throughput < 0.35 {
		t.Fatalf("K=7 rate-1/2 at 6 dB should be nearly error free: %+v", pts[0])
	}
	if _, err := ConvThroughputCurve(ConvConfig{Rate: "9/10"}, []float64{6}); err == nil {
		t.Error("unsupported convolutional rate accepted")
	}
}

func TestHARQThroughputCurve(t *testing.T) {
	cfg := HARQConfig{Rate: ldpc.Rate12, Modulation: "QAM-16", Frames: 15, Seed: 9}
	pts, err := HARQThroughputCurve(cfg, []float64{6, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	low, high := pts[0], pts[1]
	// Above the single-shot threshold the scheme runs at its peak rate.
	if high.Throughput < 1.8 || high.FER > 0.1 {
		t.Fatalf("HARQ at 14 dB should deliver ~2 bits/symbol: %+v", high)
	}
	// Below the threshold Chase combining still delivers, at reduced rate.
	if low.Throughput <= 0.3 || low.Throughput >= high.Throughput {
		t.Fatalf("HARQ at 6 dB should deliver a reduced but positive rate: %+v", low)
	}
	if _, err := HARQThroughputCurve(HARQConfig{Rate: ldpc.Rate12, Modulation: "nope"}, []float64{10}); err == nil {
		t.Error("unknown modulation accepted")
	}
}

func TestFountainOverhead(t *testing.T) {
	cfg := FountainConfig{K: 40, BlockSize: 16, Trials: 5, Erasures: []float64{0, 0.3}, Seed: 3}
	pts, err := FountainOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Overhead < 1 || p.Overhead > 2.5 {
			t.Fatalf("LT overhead at p=%v is %v, outside plausible range", p.ErasureProb, p.Overhead)
		}
	}
	if pts[1].SentPerBlock <= pts[0].SentPerBlock {
		t.Fatalf("transmissions should grow with erasures: %v vs %v", pts[1].SentPerBlock, pts[0].SentPerBlock)
	}
	if _, err := FountainOverhead(FountainConfig{K: -1, BlockSize: 16, Trials: 5, Erasures: []float64{0}}); err == nil {
		t.Error("invalid k accepted")
	}
	if _, err := FountainOverhead(FountainConfig{K: 10, BlockSize: 16, Trials: 5, Erasures: []float64{1.5}}); err == nil {
		t.Error("invalid erasure probability accepted")
	}
}

// TestFountainConfigDefaults pins the withDefaults contract of the satellite
// config-struct conversion.
func TestFountainConfigDefaults(t *testing.T) {
	d := FountainConfig{}.withDefaults()
	if d.K != 256 || d.BlockSize != 64 || d.Trials != 20 || d.Seed != 1 || len(d.Erasures) != 5 {
		t.Fatalf("defaults drifted: %+v", d)
	}
	override := FountainConfig{K: 10, Trials: 3}.withDefaults()
	if override.K != 10 || override.Trials != 3 || override.BlockSize != 64 {
		t.Fatalf("overrides not respected: %+v", override)
	}
}

func TestResultFormatters(t *testing.T) {
	rate := []RatePoint{{SNRdB: 10, Rate: 3.2, Capacity: 3.46, Trials: 5}}
	if s := FormatRateCurve("spinal", rate).String(); !strings.Contains(s, "3.200") {
		t.Error("rate table missing value")
	}
	bounds := []BoundPoint{{SNRdB: 10, Shannon: 3.46, FiniteBlock: 2.8, Theorem1: 3.2}}
	if s := FormatBounds(bounds).String(); !strings.Contains(s, "2.800") {
		t.Error("bounds table missing value")
	}
	tp := []ThroughputPoint{{SNRdB: 5, Throughput: 0.5, PeakRate: 0.5, FER: 0, Conf95: 0.01, Frames: 10}}
	s := FormatThroughput("ldpc", tp).String()
	if !strings.Contains(s, "0.500") {
		t.Error("throughput table missing value")
	}
	if !strings.Contains(s, "conf95") || !strings.Contains(s, "0.010") {
		t.Errorf("throughput table missing confidence interval column:\n%s", s)
	}
	beams := []BeamPoint{{BeamWidth: 4, RatePoint: rate[0]}}
	if s := FormatBeamSweep(beams).String(); !strings.Contains(s, "4") {
		t.Error("beam table missing value")
	}
	adc := []ADCPoint{{Bits: 14, RatePoint: rate[0]}}
	if s := FormatADCSweep(adc).String(); !strings.Contains(s, "14") {
		t.Error("adc table missing value")
	}
	bsc := []BSCPoint{{P: 0.1, Rate: 0.4, Capacity: 0.53, Trials: 3}}
	if s := FormatBSC(bsc).String(); !strings.Contains(s, "0.400") {
		t.Error("bsc table missing value")
	}
	th1 := []Theorem1Point{{SNRdB: 10, Rate: 3, Guarantee: 3.2, Capacity: 3.46, GapToCap: 0.46}}
	if s := FormatTheorem1(th1).String(); !strings.Contains(s, "3.200") {
		t.Error("theorem1 table missing value")
	}
	lt := []OverheadPoint{{ErasureProb: 0.3, Overhead: 1.2, SentPerBlock: 1.7, Trials: 5}}
	if s := FormatFountain(lt).String(); !strings.Contains(s, "1.200") {
		t.Error("fountain table missing value")
	}
	inc := []DecodeCostPoint{{SNRdB: 0, IncrementalNodes: 100, FromScratchNodes: 370, NodeSpeedup: 3.7, Delivered: 5, Trials: 5}}
	if s := FormatIncremental(inc).String(); !strings.Contains(s, "3.70") {
		t.Error("incremental table missing value")
	}
}
