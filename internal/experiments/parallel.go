package experiments

import (
	"fmt"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// ParallelDecodePoint summarizes the decoding work of full rateless
// transmissions at one decoder worker count. The decoded messages and the
// per-attempt node accounting are verified identical across worker counts —
// parallel decoding is bit-identical to serial by construction — so the
// sweep isolates pure wall-clock scaling.
type ParallelDecodePoint struct {
	SNRdB   float64
	Workers int
	// BeamWidth is the decoder's B for this row.
	BeamWidth int
	// Elapsed is the total wall-clock decode-side time across all trials.
	Elapsed time.Duration
	// NodesExpanded is the total number of freshly expanded tree nodes
	// across all decode attempts of all trials (identical at every worker
	// count).
	NodesExpanded int64
	// NodesPerSec is NodesExpanded (plus refreshed nodes) per second of
	// wall-clock time — the decoder's throughput in its own unit of work.
	NodesPerSec float64
	// Speedup is the baseline row's Elapsed (the first requested worker
	// count, 1 in the default sweep) divided by this row's Elapsed.
	Speedup float64
	// Delivered counts messages decoded within the pass budget.
	Delivered int
	Trials    int
}

// parallelTrial is the per-trial outcome at one decoder worker count.
type parallelTrial struct {
	decoded   []byte
	uses      int
	nodes     int64
	refreshed int64
	success   bool
}

// ParallelDecodeComparison runs the same low-SNR rateless transmissions once
// per requested worker count and reports wall-clock scaling. Message and
// channel randomness derive from the configured seed, so every worker count
// sees byte-identical symbol streams; the function errors if any two worker
// counts disagree on a decoded message, on the number of channel uses, or on
// the expanded-node accounting, which doubles as an end-to-end determinism
// check of the parallel decode engine.
//
// Trials run on the sim runner pinned to a single trial worker: this
// experiment measures how one decode scales across its decoder shards, so
// fanning trials out across CPUs would corrupt the wall-clock axis.
func ParallelDecodeComparison(cfg SpinalConfig, snrDB float64, workers []int) ([]ParallelDecodePoint, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return nil, err
	}

	refs := make([]parallelTrial, cfg.Trials)
	out := make([]ParallelDecodePoint, 0, len(workers))
	for wi, w := range workers {
		if w < 1 {
			return nil, fmt.Errorf("experiments: worker count %d invalid", w)
		}
		pt := ParallelDecodePoint{SNRdB: snrDB, Workers: w, BeamWidth: cfg.BeamWidth, Trials: cfg.Trials}
		start := time.Now()
		trials, err := sim.Run(sim.Runner{Workers: 1, Pool: cfg.Pool}, cfg.Trials,
			func(sw *sim.Worker, trial int) (parallelTrial, error) {
				msg := core.RandomMessage(rng.New(cfg.Seed^(0x9e3779b97f4a7c15*uint64(trial+1))), cfg.MessageBits)
				radio, err := channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, rng.New(cfg.Seed^(0xbb67ae8584caa73b*uint64(trial+1))))
				if err != nil {
					return parallelTrial{}, err
				}
				res, err := core.RunChannelSession(core.SessionConfig{
					Params:      params,
					BeamWidth:   cfg.BeamWidth,
					Schedule:    sched,
					MaxSymbols:  cfg.MaxPasses * params.NumSegments(),
					Parallelism: w,
					Pool:        sw.Pool(),
				}, msg, radio, core.GenieVerifier(msg, cfg.MessageBits))
				if err != nil {
					return parallelTrial{}, err
				}
				return parallelTrial{
					decoded:   append([]byte(nil), res.Decoded...),
					uses:      res.ChannelUses,
					nodes:     res.NodesExpanded,
					refreshed: res.NodesRefreshed,
					success:   res.Success,
				}, nil
			})
		if err != nil {
			return nil, err
		}
		pt.Elapsed = time.Since(start)
		var refreshed int64
		for trial, res := range trials {
			if wi == 0 {
				refs[trial] = res
			} else {
				ref := &refs[trial]
				if res.success != ref.success || res.uses != ref.uses ||
					res.nodes != ref.nodes || res.refreshed != ref.refreshed ||
					!core.EqualMessages(res.decoded, ref.decoded, cfg.MessageBits) {
					return nil, fmt.Errorf(
						"experiments: %d-worker decode diverged from %d-worker decode on trial %d",
						w, workers[0], trial)
				}
			}
			pt.NodesExpanded += res.nodes
			refreshed += res.refreshed
			if res.success {
				pt.Delivered++
			}
		}
		if secs := pt.Elapsed.Seconds(); secs > 0 {
			pt.NodesPerSec = float64(pt.NodesExpanded+refreshed) / secs
		}
		if len(out) > 0 && out[0].Elapsed > 0 && pt.Elapsed > 0 {
			pt.Speedup = out[0].Elapsed.Seconds() / pt.Elapsed.Seconds()
		} else {
			pt.Speedup = 1
		}
		out = append(out, pt)
	}
	return out, nil
}
