package experiments

import (
	"fmt"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/rng"
)

// ParallelDecodePoint summarizes the decoding work of full rateless
// transmissions at one decoder worker count. The decoded messages and the
// per-attempt node accounting are verified identical across worker counts —
// parallel decoding is bit-identical to serial by construction — so the
// sweep isolates pure wall-clock scaling.
type ParallelDecodePoint struct {
	SNRdB   float64
	Workers int
	// BeamWidth is the decoder's B for this row.
	BeamWidth int
	// Elapsed is the total wall-clock decode-side time across all trials.
	Elapsed time.Duration
	// NodesExpanded is the total number of freshly expanded tree nodes
	// across all decode attempts of all trials (identical at every worker
	// count).
	NodesExpanded int64
	// NodesPerSec is NodesExpanded (plus refreshed nodes) per second of
	// wall-clock time — the decoder's throughput in its own unit of work.
	NodesPerSec float64
	// Speedup is the baseline row's Elapsed (the first requested worker
	// count, 1 in the default sweep) divided by this row's Elapsed.
	Speedup float64
	// Delivered counts messages decoded within the pass budget.
	Delivered int
	Trials    int
}

// ParallelDecodeComparison runs the same low-SNR rateless transmissions once
// per requested worker count and reports wall-clock scaling. Message and
// channel randomness derive from the configured seed, so every worker count
// sees byte-identical symbol streams; the function errors if any two worker
// counts disagree on a decoded message, on the number of channel uses, or on
// the expanded-node accounting, which doubles as an end-to-end determinism
// check of the parallel decode engine.
func ParallelDecodeComparison(cfg SpinalConfig, snrDB float64, workers []int) ([]ParallelDecodePoint, error) {
	cfg = cfg.withDefaults()
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return nil, err
	}

	type trialRef struct {
		decoded   []byte
		uses      int
		nodes     int64
		refreshed int64
		success   bool
	}
	refs := make([]trialRef, cfg.Trials)

	out := make([]ParallelDecodePoint, 0, len(workers))
	for wi, w := range workers {
		if w < 1 {
			return nil, fmt.Errorf("experiments: worker count %d invalid", w)
		}
		pt := ParallelDecodePoint{SNRdB: snrDB, Workers: w, BeamWidth: cfg.BeamWidth, Trials: cfg.Trials}
		var refreshed int64
		start := time.Now()
		for trial := 0; trial < cfg.Trials; trial++ {
			msg := core.RandomMessage(rng.New(cfg.Seed^(0x9e3779b97f4a7c15*uint64(trial+1))), cfg.MessageBits)
			radio, err := channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, rng.New(cfg.Seed^(0xbb67ae8584caa73b*uint64(trial+1))))
			if err != nil {
				return nil, err
			}
			res, err := core.RunChannelSession(core.SessionConfig{
				Params:      params,
				BeamWidth:   cfg.BeamWidth,
				Schedule:    sched,
				MaxSymbols:  cfg.MaxPasses * params.NumSegments(),
				Parallelism: w,
			}, msg, radio, core.GenieVerifier(msg, cfg.MessageBits))
			if err != nil {
				return nil, err
			}
			if wi == 0 {
				refs[trial] = trialRef{
					decoded:   append([]byte(nil), res.Decoded...),
					uses:      res.ChannelUses,
					nodes:     res.NodesExpanded,
					refreshed: res.NodesRefreshed,
					success:   res.Success,
				}
			} else {
				ref := &refs[trial]
				if res.Success != ref.success || res.ChannelUses != ref.uses ||
					res.NodesExpanded != ref.nodes || res.NodesRefreshed != ref.refreshed ||
					!core.EqualMessages(res.Decoded, ref.decoded, cfg.MessageBits) {
					return nil, fmt.Errorf(
						"experiments: %d-worker decode diverged from %d-worker decode on trial %d",
						w, workers[0], trial)
				}
			}
			pt.NodesExpanded += res.NodesExpanded
			refreshed += res.NodesRefreshed
			if res.Success {
				pt.Delivered++
			}
		}
		pt.Elapsed = time.Since(start)
		if secs := pt.Elapsed.Seconds(); secs > 0 {
			pt.NodesPerSec = float64(pt.NodesExpanded+refreshed) / secs
		}
		if len(out) > 0 && out[0].Elapsed > 0 && pt.Elapsed > 0 {
			pt.Speedup = out[0].Elapsed.Seconds() / pt.Elapsed.Seconds()
		} else {
			pt.Speedup = 1
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatParallel renders a parallel-decode scaling sweep.
func FormatParallel(points []ParallelDecodePoint) *Table {
	t := NewTable("workers", "B", "elapsed_ms", "speedup", "nodes", "nodes_per_sec", "delivered")
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%d", p.BeamWidth),
			fmt.Sprintf("%.1f", float64(p.Elapsed.Microseconds())/1000),
			fmt.Sprintf("%.2f", p.Speedup),
			fmt.Sprintf("%d", p.NodesExpanded),
			fmt.Sprintf("%.3g", p.NodesPerSec),
			fmt.Sprintf("%d/%d", p.Delivered, p.Trials),
		)
	}
	return t
}
