package experiments

import "testing"

// TestFrontierGate checks the headline claim of the approximate search modes
// end to end, at the frontier scenario's default operating point (B=32,
// m=96, striped schedule, 10 dB): at least one approximate mode must reach
// >=95% of the exact mode's achieved rate while expanding <=40% of the exact
// mode's tree nodes, on byte-identical per-trial symbol streams. The
// comparison itself is deterministic — seeds derive from the trial index —
// so this is a fixed property of the decoder, not a statistical bound.
func TestFrontierGate(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier gate needs enough trials for a stable rate ratio")
	}
	cfg := Figure2Config()
	cfg.BeamWidth = 32
	cfg.MessageBits = 96
	cfg.MaxPasses = 150
	cfg.Trials = 10
	pts, err := FrontierComparison(cfg, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 || pts[0].Mode != "exact" {
		t.Fatalf("unexpected point layout: %+v", pts)
	}
	if pts[0].Delivered == 0 {
		t.Fatal("exact mode delivered nothing at 10 dB within the pass budget")
	}
	pass := false
	for _, p := range pts[1:] {
		t.Logf("%-10s rate=%.3f (%.3fx exact) nodes=%d (%.3fx exact) saved=%d delivered=%d/%d",
			p.Mode, p.Rate, p.RateVsExact, p.Nodes, p.NodesVsExact, p.NodesSaved, p.Delivered, p.Trials)
		if p.NodesSaved <= 0 {
			t.Errorf("%s: approximate mode reported no nodes saved", p.Mode)
		}
		if p.RateVsExact >= 0.95 && p.NodesVsExact <= 0.40 {
			pass = true
		}
	}
	if !pass {
		t.Errorf("no approximate mode reached >=95%% of the exact rate at <=40%% of the exact nodes")
	}
}
