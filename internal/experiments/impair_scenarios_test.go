package experiments

import (
	"testing"

	"spinal/internal/impair"
)

// TestImpairSweepStackedHarsher pins the acceptance property of the
// impairment sweep: the full stack is measurably harsher than any single
// stage — the spinal rate over the composition is strictly below the rate
// over each stage alone.
func TestImpairSweepStackedHarsher(t *testing.T) {
	cfg := SpinalConfig{K: 4, Trials: 8, MaxPasses: 150}
	spec, err := impair.ParseAny(DefaultImpairStack)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ImpairSweep(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(spec.Stages)+1 {
		t.Fatalf("got %d points for %d stages", len(pts), len(spec.Stages))
	}
	stack := pts[len(pts)-1]
	if stack.Profile != "stack" {
		t.Fatalf("last point is %q, want the stack", stack.Profile)
	}
	if stack.Rate <= 0 {
		t.Fatalf("stack rate %v: the code should still deliver under the stack", stack.Rate)
	}
	for _, p := range pts[:len(pts)-1] {
		if stack.Rate >= p.Rate {
			t.Errorf("stack rate %.3f not below single-stage %q rate %.3f", stack.Rate, p.Profile, p.Rate)
		}
	}
}

// TestBakeoffShape pins the artifact contract: one cell per (profile,
// scheme) with spinal and at least three baselines over at least two
// stacked profiles, all cells carrying the same trial count.
func TestBakeoffShape(t *testing.T) {
	cfg := BakeoffConfig{Spinal: SpinalConfig{K: 4, MaxPasses: 150}, Trials: 6}
	pts, err := Bakeoff(cfg)
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[string]map[string]BakeoffPoint{}
	for _, p := range pts {
		if profiles[p.Profile] == nil {
			profiles[p.Profile] = map[string]BakeoffPoint{}
		}
		profiles[p.Profile][p.Scheme] = p
		if p.Trials != cfg.Trials {
			t.Errorf("cell (%s, %s) ran %d trials, want %d", p.Profile, p.Scheme, p.Trials, cfg.Trials)
		}
		if p.Delivered < 0 || p.Delivered > p.Trials {
			t.Errorf("cell (%s, %s) delivered %d of %d", p.Profile, p.Scheme, p.Delivered, p.Trials)
		}
	}
	if len(profiles) < 2 {
		t.Fatalf("bakeoff covered %d profiles, want >= 2 stacked profiles", len(profiles))
	}
	for prof, schemes := range profiles {
		for _, want := range []string{"spinal", "ldpc", "conv", "harq"} {
			if _, ok := schemes[want]; !ok {
				t.Errorf("profile %s missing scheme %s", prof, want)
			}
		}
		// The rateless code should keep delivering under every stack.
		if sp := schemes["spinal"]; sp.Delivered == 0 {
			t.Errorf("profile %s: spinal delivered nothing", prof)
		}
	}
}

// TestChurnLoad pins the churn-load invariants: both modes deliver (payloads
// are verified bit-identical inside ChurnLoad), the impaired mode never
// delivers more than the clean one, and the under-provisioned receiver
// sheds flows under churn.
func TestChurnLoad(t *testing.T) {
	cfg := ChurnConfig{Spinal: SpinalConfig{K: 4}, MaxFlows: 4}
	cfg.Workload.Messages = 24
	pts, err := ChurnLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Mode != "clean" || pts[1].Mode != "impaired" {
		t.Fatalf("unexpected modes: %+v", pts)
	}
	clean, impaired := pts[0], pts[1]
	if clean.Delivered == 0 {
		t.Fatal("clean mode delivered nothing")
	}
	if impaired.Delivered == 0 {
		t.Fatal("impaired mode delivered nothing: the stack should cost rate, not delivery")
	}
	if impaired.Delivered > clean.Delivered {
		t.Errorf("impaired mode delivered %d > clean %d", impaired.Delivered, clean.Delivered)
	}
	if clean.Shed == 0 {
		t.Errorf("receiver tracking %d of %d flows never shed", cfg.MaxFlows, clean.Flows)
	}
	if clean.Fairness <= 0 || clean.Fairness > 1 {
		t.Errorf("fairness %v out of (0,1]", clean.Fairness)
	}
	// The fault schedule's corruption must be caught by the CRC, never
	// delivered: rejected frames only appear in the impaired mode.
	if clean.Rejected != 0 {
		t.Errorf("clean mode rejected %d frames", clean.Rejected)
	}
}
