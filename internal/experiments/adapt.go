package experiments

import (
	"fmt"

	"spinal/internal/adapt"
	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/fading"
	"spinal/internal/rng"
	"spinal/internal/sim"
	"spinal/internal/stats"
)

// This file hosts the two experiments that go beyond Figure 2's static-SNR
// setting: the rate-adaptation-versus-rateless comparison over time-varying
// channels (the paper's §1 motivation) and the fixed-rate instantiation of
// the spinal code (§3), which shows what is lost when the rateless feedback
// loop is removed.

// AdaptationScenario describes one time-varying channel scenario.
type AdaptationScenario struct {
	// Name labels the scenario in output tables.
	Name string
	// Trace builds the channel trace for a given seed, so both schemes see
	// an identically distributed (and, per scheme, identical) channel.
	Trace func(seed uint64) (fading.Trace, error)
	// EstimateDelay and EstimateErrDB configure the staleness and error of
	// the SNR estimate available to the adaptive scheme.
	EstimateDelay int
	EstimateErrDB float64
}

// DefaultAdaptationScenarios returns the three scenarios used by the
// adaptation experiment: a static link, slow fading (estimates stay useful)
// and fast fading (estimates are stale by the time they are used).
func DefaultAdaptationScenarios() []AdaptationScenario {
	return []AdaptationScenario{
		{
			Name:          "static 20 dB",
			Trace:         func(seed uint64) (fading.Trace, error) { return fading.Constant{Level: 20}, nil },
			EstimateDelay: 648,
			EstimateErrDB: 1,
		},
		{
			Name: "slow fading (walk 5..25 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewWalk(5, 25, 0.01, seed)
			},
			EstimateDelay: 648,
			EstimateErrDB: 1,
		},
		{
			Name: "fast fading (Gilbert-Elliott 22/4 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewGilbertElliott(22, 4, 700, 700, seed)
			},
			EstimateDelay: 1400,
			EstimateErrDB: 2,
		},
		{
			Name: "Rayleigh block fading (avg 15 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewRayleighBlock(15, 300, seed)
			},
			EstimateDelay: 900,
			EstimateErrDB: 1,
		},
	}
}

// AdaptationPoint is the outcome of one scenario.
type AdaptationPoint struct {
	Scenario           string
	AdaptiveThroughput float64
	AdaptiveFER        float64
	RatelessThroughput float64
	RatelessFailures   int
	SymbolBudget       int
}

// AdaptationConfig drives the adaptation comparison.
type AdaptationConfig struct {
	// Scenarios are the time-varying channels to compare over; nil selects
	// DefaultAdaptationScenarios.
	Scenarios []AdaptationScenario
	// SymbolBudget is the number of channel uses each scheme spends per
	// scenario; values below 1000 select 20000.
	SymbolBudget int
	Seed         uint64
	// TrialWorkers is the sim.Run worker-pool size scenarios are sharded
	// across; zero means GOMAXPROCS.
	TrialWorkers int
}

func (c AdaptationConfig) withDefaults() AdaptationConfig {
	if c.Scenarios == nil {
		c.Scenarios = DefaultAdaptationScenarios()
	}
	if c.SymbolBudget < 1000 {
		c.SymbolBudget = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// AdaptationComparison runs reactive rate adaptation and the rateless spinal
// code over each scenario and reports both throughputs. Scenarios are
// independent simulations seeded by their index, so they shard across the
// sim runner — the previously serial experiment scales with CPUs.
func AdaptationComparison(cfg AdaptationConfig) ([]AdaptationPoint, error) {
	cfg = cfg.withDefaults()
	return sim.Run(sim.Runner{Workers: cfg.TrialWorkers}, len(cfg.Scenarios),
		func(w *sim.Worker, i int) (AdaptationPoint, error) {
			sc := cfg.Scenarios[i]
			trace, err := sc.Trace(cfg.Seed + uint64(i))
			if err != nil {
				return AdaptationPoint{}, fmt.Errorf("experiments: scenario %q: %w", sc.Name, err)
			}
			acfg := adapt.Config{
				Trace:         trace,
				SymbolBudget:  cfg.SymbolBudget,
				EstimateDelay: sc.EstimateDelay,
				EstimateErrDB: sc.EstimateErrDB,
				Seed:          cfg.Seed + uint64(i)*101,
			}
			adaptive, rateless, err := adapt.Compare(acfg)
			if err != nil {
				return AdaptationPoint{}, fmt.Errorf("experiments: scenario %q: %w", sc.Name, err)
			}
			fer := 0.0
			if adaptive.Frames > 0 {
				fer = float64(adaptive.FrameErrors) / float64(adaptive.Frames)
			}
			return AdaptationPoint{
				Scenario:           sc.Name,
				AdaptiveThroughput: adaptive.Throughput,
				AdaptiveFER:        fer,
				RatelessThroughput: rateless.Throughput,
				RatelessFailures:   rateless.FrameErrors,
				SymbolBudget:       cfg.SymbolBudget,
			}, nil
		})
}

// FixedRatePoint is one point of the fixed-rate spinal experiment.
type FixedRatePoint struct {
	SNRdB float64
	// Passes is the fixed number of encoding passes.
	Passes int
	// Rate is the nominal code rate in bits/symbol.
	Rate float64
	// Throughput is Rate x (1 - FER): what the fixed-rate code delivers.
	Throughput float64
	// FER is the block error rate.
	FER float64
	// RatelessRate is the rate the rateless code achieves at the same SNR,
	// for contrast.
	RatelessRate float64
}

// FixedRateSpinal evaluates the fixed-rate instantiation of the spinal code
// (§3: "It is straightforward to adapt the code to run at various fixed
// rates") at each SNR, alongside the rateless rate, quantifying what the
// feedback-free mode gives up. Trials shard across the sim runner, with
// decoders leased from the run's pool (core.FixedRateCode.DecodeWith).
func FixedRateSpinal(cfg SpinalConfig, snrsDB []float64, passes int) ([]FixedRatePoint, error) {
	cfg = cfg.withDefaults()
	if passes < 1 {
		return nil, fmt.Errorf("experiments: passes must be >= 1, got %d", passes)
	}
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	// One immutable codec (three ints of configuration) serves every trial
	// on every worker; decoders lease from the run's pool per trial.
	codec, err := core.NewFixedRate(params, passes, cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	nominalRate := codec.Rate()

	out := make([]FixedRatePoint, 0, len(snrsDB))
	for _, snr := range snrsDB {
		results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (bool, error) {
			lease, err := w.Decoder(params, cfg.BeamWidth)
			if err != nil {
				return false, err
			}
			lease.Dec.SetParallelism(trialParallelism(cfg))
			msgSrc := rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			msg := core.RandomMessage(msgSrc, cfg.MessageBits)
			block, err := codec.Encode(msg)
			if err != nil {
				return false, err
			}
			chSrc := rng.New(cfg.Seed ^ (0xbb67ae8584caa73b * uint64(trial+1)))
			radio, err := channel.NewQuantizedAWGN(snr, cfg.ADCBits, chSrc)
			if err != nil {
				return false, err
			}
			rx := make([]complex128, len(block))
			radio.CorruptBlock(rx, block)
			got, err := codec.DecodeWith(lease.Dec, lease.Obs, rx)
			if err != nil {
				return false, err
			}
			return core.EqualMessages(got, msg, cfg.MessageBits), nil
		})
		if err != nil {
			return nil, err
		}
		var errCount stats.ErrorCounter
		for _, ok := range results {
			errCount.RecordFrameResult(ok, cfg.MessageBits)
		}
		ratelessPt, err := SpinalRateAtSNR(cfg, snr)
		if err != nil {
			return nil, err
		}
		out = append(out, FixedRatePoint{
			SNRdB:        snr,
			Passes:       passes,
			Rate:         nominalRate,
			Throughput:   nominalRate * (1 - errCount.FER()),
			FER:          errCount.FER(),
			RatelessRate: ratelessPt.Rate,
		})
	}
	return out, nil
}
