package experiments

import (
	"fmt"

	"spinal/internal/adapt"
	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/fading"
	"spinal/internal/rng"
	"spinal/internal/stats"
)

// This file hosts the two experiments that go beyond Figure 2's static-SNR
// setting: the rate-adaptation-versus-rateless comparison over time-varying
// channels (the paper's §1 motivation) and the fixed-rate instantiation of
// the spinal code (§3), which shows what is lost when the rateless feedback
// loop is removed.

// AdaptationScenario describes one time-varying channel scenario.
type AdaptationScenario struct {
	// Name labels the scenario in output tables.
	Name string
	// Trace builds the channel trace for a given seed, so both schemes see
	// an identically distributed (and, per scheme, identical) channel.
	Trace func(seed uint64) (fading.Trace, error)
	// EstimateDelay and EstimateErrDB configure the staleness and error of
	// the SNR estimate available to the adaptive scheme.
	EstimateDelay int
	EstimateErrDB float64
}

// DefaultAdaptationScenarios returns the three scenarios used by the
// adaptation experiment: a static link, slow fading (estimates stay useful)
// and fast fading (estimates are stale by the time they are used).
func DefaultAdaptationScenarios() []AdaptationScenario {
	return []AdaptationScenario{
		{
			Name:          "static 20 dB",
			Trace:         func(seed uint64) (fading.Trace, error) { return fading.Constant{Level: 20}, nil },
			EstimateDelay: 648,
			EstimateErrDB: 1,
		},
		{
			Name: "slow fading (walk 5..25 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewWalk(5, 25, 0.01, seed)
			},
			EstimateDelay: 648,
			EstimateErrDB: 1,
		},
		{
			Name: "fast fading (Gilbert-Elliott 22/4 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewGilbertElliott(22, 4, 700, 700, seed)
			},
			EstimateDelay: 1400,
			EstimateErrDB: 2,
		},
		{
			Name: "Rayleigh block fading (avg 15 dB)",
			Trace: func(seed uint64) (fading.Trace, error) {
				return fading.NewRayleighBlock(15, 300, seed)
			},
			EstimateDelay: 900,
			EstimateErrDB: 1,
		},
	}
}

// AdaptationPoint is the outcome of one scenario.
type AdaptationPoint struct {
	Scenario           string
	AdaptiveThroughput float64
	AdaptiveFER        float64
	RatelessThroughput float64
	RatelessFailures   int
	SymbolBudget       int
}

// AdaptationComparison runs reactive rate adaptation and the rateless spinal
// code over each scenario and reports both throughputs.
func AdaptationComparison(scenarios []AdaptationScenario, symbolBudget int, seed uint64) ([]AdaptationPoint, error) {
	if symbolBudget < 1000 {
		symbolBudget = 20000
	}
	out := make([]AdaptationPoint, 0, len(scenarios))
	for i, sc := range scenarios {
		trace, err := sc.Trace(seed + uint64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.Name, err)
		}
		cfg := adapt.Config{
			Trace:         trace,
			SymbolBudget:  symbolBudget,
			EstimateDelay: sc.EstimateDelay,
			EstimateErrDB: sc.EstimateErrDB,
			Seed:          seed + uint64(i)*101,
		}
		adaptive, rateless, err := adapt.Compare(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q: %w", sc.Name, err)
		}
		fer := 0.0
		if adaptive.Frames > 0 {
			fer = float64(adaptive.FrameErrors) / float64(adaptive.Frames)
		}
		out = append(out, AdaptationPoint{
			Scenario:           sc.Name,
			AdaptiveThroughput: adaptive.Throughput,
			AdaptiveFER:        fer,
			RatelessThroughput: rateless.Throughput,
			RatelessFailures:   rateless.FrameErrors,
			SymbolBudget:       symbolBudget,
		})
	}
	return out, nil
}

// FormatAdaptation renders the adaptation comparison.
func FormatAdaptation(pts []AdaptationPoint) *Table {
	t := NewTable("scenario", "adaptive_bits_per_sym", "adaptive_fer", "rateless_bits_per_sym", "rateless_failures", "symbol_budget")
	for _, p := range pts {
		t.AddRow(
			p.Scenario,
			fmt.Sprintf("%.3f", p.AdaptiveThroughput),
			fmt.Sprintf("%.3f", p.AdaptiveFER),
			fmt.Sprintf("%.3f", p.RatelessThroughput),
			fmt.Sprintf("%d", p.RatelessFailures),
			fmt.Sprintf("%d", p.SymbolBudget),
		)
	}
	return t
}

// FixedRatePoint is one point of the fixed-rate spinal experiment.
type FixedRatePoint struct {
	SNRdB float64
	// Passes is the fixed number of encoding passes.
	Passes int
	// Rate is the nominal code rate in bits/symbol.
	Rate float64
	// Throughput is Rate x (1 - FER): what the fixed-rate code delivers.
	Throughput float64
	// FER is the block error rate.
	FER float64
	// RatelessRate is the rate the rateless code achieves at the same SNR,
	// for contrast.
	RatelessRate float64
}

// FixedRateSpinal evaluates the fixed-rate instantiation of the spinal code
// (§3: "It is straightforward to adapt the code to run at various fixed
// rates") at each SNR, alongside the rateless rate, quantifying what the
// feedback-free mode gives up.
func FixedRateSpinal(cfg SpinalConfig, snrsDB []float64, passes int) ([]FixedRatePoint, error) {
	cfg = cfg.withDefaults()
	if passes < 1 {
		return nil, fmt.Errorf("experiments: passes must be >= 1, got %d", passes)
	}
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	fixed, err := core.NewFixedRate(params, passes, cfg.BeamWidth)
	if err != nil {
		return nil, err
	}

	out := make([]FixedRatePoint, 0, len(snrsDB))
	for _, snr := range snrsDB {
		var errCount stats.ErrorCounter
		for trial := 0; trial < cfg.Trials; trial++ {
			msgSrc := rng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(trial+1)))
			msg := core.RandomMessage(msgSrc, cfg.MessageBits)
			block, err := fixed.Encode(msg)
			if err != nil {
				return nil, err
			}
			chSrc := rng.New(cfg.Seed ^ (0xbb67ae8584caa73b * uint64(trial+1)))
			radio, err := channel.NewQuantizedAWGN(snr, cfg.ADCBits, chSrc)
			if err != nil {
				return nil, err
			}
			rx := make([]complex128, len(block))
			for i, x := range block {
				rx[i] = radio.Corrupt(x)
			}
			got, err := fixed.Decode(rx)
			if err != nil {
				return nil, err
			}
			errCount.RecordFrameResult(core.EqualMessages(got, msg, cfg.MessageBits), cfg.MessageBits)
		}
		ratelessPt, err := SpinalRateAtSNR(cfg, snr)
		if err != nil {
			return nil, err
		}
		out = append(out, FixedRatePoint{
			SNRdB:        snr,
			Passes:       passes,
			Rate:         fixed.Rate(),
			Throughput:   fixed.Rate() * (1 - errCount.FER()),
			FER:          errCount.FER(),
			RatelessRate: ratelessPt.Rate,
		})
	}
	return out, nil
}

// FormatFixedRate renders the fixed-rate spinal experiment.
func FormatFixedRate(pts []FixedRatePoint) *Table {
	t := NewTable("snr_db", "passes", "fixed_rate", "fixed_throughput", "fixed_fer", "rateless_rate")
	for _, p := range pts {
		t.AddRow(
			fmt.Sprintf("%.1f", p.SNRdB),
			fmt.Sprintf("%d", p.Passes),
			fmt.Sprintf("%.3f", p.Rate),
			fmt.Sprintf("%.3f", p.Throughput),
			fmt.Sprintf("%.3f", p.FER),
			fmt.Sprintf("%.3f", p.RatelessRate),
		)
	}
	return t
}
