package experiments

import (
	"fmt"
	"time"

	"spinal/internal/link"
	"spinal/internal/sim"
)

// This file measures load-adaptive search selection under saturation: many
// flows stream pre-corrupted frames into one receiver whose decode capacity
// is deliberately scarce (few workers, a tight per-flow decode budget), once
// with every attempt running the exact search and once with AdaptiveSearch
// letting budget pressure pick approximate modes per flow. Both runs replay
// byte-identical frames. The gate the scenario's notes state: the adaptive
// receiver should beat the all-exact aggregate goodput while keeping Jain
// fairness within 5% of it.

// SaturatePoint summarizes one receiver mode of the saturation comparison.
type SaturatePoint struct {
	// Mode is "exact" or "adaptive".
	Mode string
	// Flows and MessagesPerFlow shape the offered load; Budget is the
	// per-flow decode budget (link.Config.FlowDecodeBudget).
	Flows           int
	MessagesPerFlow int
	Budget          int64
	SNRdB           float64
	// Delivered counts packets decoded within the frame budget.
	Delivered int
	// Elapsed is first frame to last delivery (or budget exhaustion).
	Elapsed time.Duration
	// GoodputBitsPerSec is delivered payload bits per wall-clock second.
	GoodputBitsPerSec float64
	// Fairness is Jain's index over per-flow goodputs (see multiflow).
	Fairness float64
	// Deferrals counts decode-scheduler decisions that skipped an
	// over-budget flow; under adaptive search they double as the pressure
	// signal driving mode selection.
	Deferrals uint64
	// NodesSaved is the engine's estimate of tree expansions avoided by
	// approximate search (zero in exact mode).
	NodesSaved int64
	// SearchAttempts counts executed decode attempts per search mode.
	SearchAttempts map[string]uint64
}

// saturateDecodeWorkers pins the receiver's decode-worker pool so the CPU
// budget — the resource adaptive search trades rate for — is fixed and
// scarce relative to the flow count.
const saturateDecodeWorkers = 2

// SaturateComparison runs the saturation workload twice over byte-identical
// pre-corrupted frames — all-exact, then adaptive — and reports goodput,
// fairness and the engine's search counters for each.
func SaturateComparison(cfg SpinalConfig, snrDB float64, flows, messagesPerFlow int, budget int64) ([]SaturatePoint, error) {
	cfg = cfg.withDefaults()
	if flows < 1 || messagesPerFlow < 1 {
		return nil, fmt.Errorf("experiments: saturate needs at least one flow and one message, got %d/%d", flows, messagesPerFlow)
	}
	if budget < 1 {
		return nil, fmt.Errorf("experiments: saturate needs a positive decode budget, got %d", budget)
	}
	const payloadLen = 12

	// Precompute every flow's transmissions once; both receiver modes replay
	// the same bytes, so the comparison isolates the decode-side strategy.
	flat, err := sim.Run(cfg.runner(), flows*messagesPerFlow,
		func(w *sim.Worker, i int) (*mfMessage, error) {
			f, m := i/messagesPerFlow, i%messagesPerFlow
			return buildMultiFlowMessage(cfg, snrDB, uint32(f+1), uint32(m+1), payloadLen)
		})
	if err != nil {
		return nil, err
	}
	msgs := make([][]*mfMessage, flows)
	for f := 0; f < flows; f++ {
		msgs[f] = flat[f*messagesPerFlow : (f+1)*messagesPerFlow]
	}

	out := make([]SaturatePoint, 0, 2)
	for _, adaptive := range []bool{false, true} {
		pt, err := saturateRun(cfg, snrDB, msgs, payloadLen, budget, adaptive)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// saturateRun replays the precomputed frames through one receiver mode. The
// send loop is the multiflow round-robin: each live flow offers one frame
// per round, deliveries are drained between rounds, and a flow advances to
// its next message on delivery or budget exhaustion.
func saturateRun(cfg SpinalConfig, snrDB float64, msgs [][]*mfMessage, payloadLen int, budget int64, adaptive bool) (SaturatePoint, error) {
	flows := len(msgs)
	messagesPerFlow := len(msgs[0])
	pt := SaturatePoint{
		Mode:            "exact",
		Flows:           flows,
		MessagesPerFlow: messagesPerFlow,
		Budget:          budget,
		SNRdB:           snrDB,
	}
	if adaptive {
		pt.Mode = "adaptive"
	}

	far, near, err := link.NewPipePair(0, cfg.Seed^uint64(flows)<<1)
	if err != nil {
		return pt, err
	}
	recv, err := link.NewReceiver(near, link.Config{
		K:                cfg.K,
		C:                cfg.C,
		BeamWidth:        cfg.BeamWidth,
		Seed:             cfg.Seed,
		DecodeWorkers:    saturateDecodeWorkers,
		FlowDecodeBudget: budget,
		AdaptiveSearch:   adaptive,
	}, nil)
	if err != nil {
		far.Close()
		return pt, err
	}

	curMsg := make([]int, flows)
	curFrame := make([]int, flows)
	finishedRound := make([]int, flows)
	deliveredPayload := make(map[[2]uint32][]byte)
	totalMessages := flows * messagesPerFlow

	start := time.Now()
	round := 0
	flowDone := func(f int) {
		if curMsg[f] >= messagesPerFlow && finishedRound[f] == 0 {
			finishedRound[f] = round + 1
		}
	}
	collect := func(d *link.Delivered) {
		key := [2]uint32{d.FlowID, d.MsgID}
		if _, dup := deliveredPayload[key]; dup {
			return
		}
		deliveredPayload[key] = append([]byte(nil), d.Payload...)
		f := int(d.FlowID) - 1
		if int(d.MsgID) == curMsg[f]+1 {
			curMsg[f]++
			curFrame[f] = 0
			flowDone(f)
		}
	}
	fail := func(err error) (SaturatePoint, error) {
		recv.Close()
		far.Close()
		return pt, err
	}
	for len(deliveredPayload) < totalMessages {
		sentAny := false
		for f := 0; f < flows; f++ {
			m := curMsg[f]
			if m >= messagesPerFlow {
				continue
			}
			mm := msgs[f][m]
			if curFrame[f] >= len(mm.frames) {
				curMsg[f]++
				curFrame[f] = 0
				flowDone(f)
				continue
			}
			if err := far.Send(mm.frames[curFrame[f]]); err != nil {
				return fail(err)
			}
			curFrame[f]++
			sentAny = true
		}
		for {
			d, err := recv.Receive(500 * time.Microsecond)
			if err == link.ErrTimeout {
				break
			}
			if err != nil {
				return fail(err)
			}
			collect(d)
		}
		round++
		if !sentAny {
			idle := 0
			for len(deliveredPayload) < totalMessages && idle < 200 {
				d, err := recv.Receive(5 * time.Millisecond)
				if err == link.ErrTimeout {
					idle++
					continue
				}
				if err != nil {
					return fail(err)
				}
				collect(d)
			}
			break
		}
	}
	pt.Elapsed = time.Since(start)
	pt.Delivered = len(deliveredPayload)
	stats := recv.EngineStats()
	pt.Deferrals = stats.BudgetDeferrals
	pt.NodesSaved = stats.NodesSaved
	pt.SearchAttempts = stats.SearchAttempts
	recv.Close()
	far.Close()

	deliveredBits := 0
	for _, p := range deliveredPayload {
		deliveredBits += len(p) * 8
	}
	if secs := pt.Elapsed.Seconds(); secs > 0 {
		pt.GoodputBitsPerSec = float64(deliveredBits) / secs
	}
	pt.Fairness = jainIndex(flowRates(finishedRound, deliveredPayload, flows, payloadLen))
	return pt, nil
}

// SaturateColumns is the point schema of the saturation comparison. The
// load axes are reproducible; everything downstream of wall-clock
// scheduling (deliveries, goodput, fairness, the engine counters) is
// volatile.
func SaturateColumns() []sim.Column {
	return []sim.Column{
		sim.Col("mode", "%s"),
		sim.Col("flows", "%d"),
		sim.Col("msgs", "%d"),
		sim.Col("budget", "%d"),
		sim.VolatileCol("delivered", "%d"),
		sim.VolatileCol("elapsed_ms", "%.1f"),
		sim.VolatileCol("goodput_bps", "%.3g"),
		sim.VolatileCol("fairness", "%.3f"),
		sim.VolatileCol("deferrals", "%d"),
		sim.VolatileCol("nodes_saved", "%d"),
		sim.VolatileCol("attempts_exact", "%d"),
		sim.VolatileCol("attempts_gap", "%d"),
		sim.VolatileCol("attempts_lookahead", "%d"),
		sim.VolatileCol("attempts_approx", "%d"),
	}
}

// FormatSaturate renders the saturation comparison.
func FormatSaturate(pts []SaturatePoint) *sim.Table {
	t := sim.NewTable("", SaturateColumns()...)
	for _, p := range pts {
		t.AddRow(p.Mode, p.Flows, p.Flows*p.MessagesPerFlow, p.Budget,
			p.Delivered, float64(p.Elapsed.Microseconds())/1000,
			p.GoodputBitsPerSec, p.Fairness, p.Deferrals, p.NodesSaved,
			p.SearchAttempts["exact"], p.SearchAttempts["gap"],
			p.SearchAttempts["lookahead"], p.SearchAttempts["approx"])
	}
	return t
}
