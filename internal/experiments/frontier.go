package experiments

import (
	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// This file measures the rate/work trade of the approximate search modes:
// the same rateless transmissions run once per mode — exact, gap pruning,
// lookahead narrowing and the stacked approx mode — on identical per-trial
// message and noise streams, so any rate difference is attributable to the
// search strategy alone. The headline claim (the frontier scenario's gate)
// is that an approximate mode reaches >=95% of the exact rate while
// expanding <=40% of the exact node count at the default operating point.

// frontierModes are the search strategies the comparison sweeps, exact
// first (the other points report ratios against it).
var frontierModes = []core.SearchConfig{
	{},
	{Mode: core.SearchGap},
	{Mode: core.SearchLookahead},
	{Mode: core.SearchApprox},
}

// FrontierPoint is one (SNR, search mode) cell of the comparison.
type FrontierPoint struct {
	SNRdB float64
	// Mode is the search strategy's CLI spelling.
	Mode string
	// Rate is the aggregate achieved rate in bits per symbol (total
	// delivered message bits over total channel uses, failures included).
	Rate float64
	// RateVsExact is Rate divided by the exact mode's Rate at this SNR
	// (1.0 for the exact row, 0 if exact delivered nothing).
	RateVsExact float64
	// Nodes is the total number of freshly expanded decoding-tree nodes
	// across all decode attempts of all trials.
	Nodes int64
	// NodesVsExact is Nodes divided by the exact mode's Nodes at this SNR
	// (1.0 for the exact row).
	NodesVsExact float64
	// NodesSaved is the decoder's own estimate of child expansions avoided
	// by approximate search (zero for the exact row).
	NodesSaved int64
	// Delivered counts messages decoded within the pass budget.
	Delivered int
	Trials    int
}

// frontierTrial is the per-trial outcome of one mode's run.
type frontierTrial struct {
	uses  int
	nodes int64
	saved int64
	ok    bool
}

// FrontierComparison runs the same rateless transmissions under every
// search mode and reports rate and tree-expansion work per (SNR, mode).
// Message and channel randomness derive from the configured seed and the
// trial index — exactly as in IncrementalDecodeComparison — so all modes
// face byte-identical symbol streams and the node ratios are deterministic.
func FrontierComparison(cfg SpinalConfig, snrsDB []float64) ([]FrontierPoint, error) {
	cfg = cfg.withDefaults()
	params, err := cfg.params()
	if err != nil {
		return nil, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return nil, err
	}
	if cfg.Pool == nil {
		cfg.Pool = core.NewDecoderPool(core.DefaultDecoderPoolCapacity)
		defer cfg.Pool.Drain()
	}
	points := make([]FrontierPoint, 0, len(snrsDB)*len(frontierModes))
	for _, snr := range snrsDB {
		var exact FrontierPoint
		for i, sc := range frontierModes {
			pt, err := frontierAtSNR(cfg, params, sched, snr, sc)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				exact = pt
			}
			if exact.Rate > 0 {
				pt.RateVsExact = pt.Rate / exact.Rate
			}
			if exact.Nodes > 0 {
				pt.NodesVsExact = float64(pt.Nodes) / float64(exact.Nodes)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// frontierAtSNR runs one (SNR, mode) cell over the sharded trial runner.
func frontierAtSNR(cfg SpinalConfig, params core.Params, sched core.Schedule, snrDB float64, sc core.SearchConfig) (FrontierPoint, error) {
	results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (frontierTrial, error) {
		msg := core.RandomMessage(rng.New(cfg.Seed^(0x9e3779b97f4a7c15*uint64(trial+1))), cfg.MessageBits)
		radio, err := channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, rng.New(cfg.Seed^(0xbb67ae8584caa73b*uint64(trial+1))))
		if err != nil {
			return frontierTrial{}, err
		}
		out, err := core.RunChannelSession(core.SessionConfig{
			Params:      params,
			BeamWidth:   cfg.BeamWidth,
			Schedule:    sched,
			MaxSymbols:  cfg.MaxPasses * params.NumSegments(),
			Parallelism: trialParallelism(cfg),
			CostMetric:  cfg.Metric,
			Search:      sc,
			Pool:        w.Pool(),
		}, msg, radio, core.GenieVerifier(msg, cfg.MessageBits))
		if err != nil {
			return frontierTrial{}, err
		}
		return frontierTrial{
			uses:  out.ChannelUses,
			nodes: out.NodesExpanded,
			saved: out.NodesSaved,
			ok:    out.Success,
		}, nil
	})
	if err != nil {
		return FrontierPoint{}, err
	}
	pt := FrontierPoint{SNRdB: snrDB, Mode: sc.String(), Trials: cfg.Trials}
	var bits, uses int64
	for _, r := range results {
		uses += int64(r.uses)
		pt.Nodes += r.nodes
		pt.NodesSaved += r.saved
		if r.ok {
			bits += int64(cfg.MessageBits)
			pt.Delivered++
		}
	}
	if uses > 0 {
		pt.Rate = float64(bits) / float64(uses)
	}
	return pt, nil
}

// FrontierColumns is the point schema of the approximate-search frontier.
// Every column is deterministic: node counts are decoder work, not
// wall-clock, and all modes share per-trial seeds.
func FrontierColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("search", "%s"),
		sim.Col("rate_bits_per_sym", "%.3f"),
		sim.Col("rate_vs_exact", "%.3f"),
		sim.Col("nodes", "%d"),
		sim.Col("nodes_vs_exact", "%.3f"),
		sim.Col("nodes_saved", "%d"),
		sim.Col("delivered", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatFrontier renders the approximate-search frontier.
func FormatFrontier(pts []FrontierPoint) *sim.Table {
	t := sim.NewTable("", FrontierColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.Mode, p.Rate, p.RateVsExact, p.Nodes,
			p.NodesVsExact, p.NodesSaved, p.Delivered, p.Trials)
	}
	return t
}
