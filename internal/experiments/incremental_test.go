package experiments

import "testing"

// TestIncrementalDecodeComparisonSpeedup checks the headline claim of the
// incremental decode pipeline end to end: for full rateless transmissions at
// low SNR (many passes, many attempts) the incremental decoder expands at
// least 3x fewer tree nodes than from-scratch attempts, while — enforced
// inside IncrementalDecodeComparison itself — decoding exactly the same
// messages with exactly the same number of channel uses.
func TestIncrementalDecodeComparisonSpeedup(t *testing.T) {
	cfg := Figure2Config()
	cfg.Trials = 6
	cfg.MaxPasses = 400
	// At low SNR puncturing buys nothing (its payoff is rates above k at
	// high SNR), so the natural low-SNR operating point is the sequential
	// schedule; it also keeps the cost comparison about decoder work rather
	// than the shared unpruned blowup a punctured first attempt causes in
	// both modes.
	cfg.Schedule = "sequential"
	pt, err := IncrementalDecodeComparison(cfg, 0 /* dB: ~8 passes per message */)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Delivered == 0 {
		t.Fatal("no messages delivered at 0 dB within the pass budget")
	}
	if pt.IncrementalNodes <= 0 || pt.FromScratchNodes <= 0 {
		t.Fatalf("implausible node counts: incremental=%d scratch=%d",
			pt.IncrementalNodes, pt.FromScratchNodes)
	}
	if pt.NodeSpeedup < 3 {
		t.Fatalf("incremental node speedup = %.2fx (incremental=%d scratch=%d), want >= 3x",
			pt.NodeSpeedup, pt.IncrementalNodes, pt.FromScratchNodes)
	}
	t.Logf("speedup %.1fx: incremental expanded %d nodes (+%d refreshed), from-scratch %d, %d/%d delivered",
		pt.NodeSpeedup, pt.IncrementalNodes, pt.IncrementalRefreshed,
		pt.FromScratchNodes, pt.Delivered, pt.Trials)
}
