package experiments

import (
	"spinal/internal/core"
	"spinal/internal/sim"
)

// QuantCostPoint compares the exact float64 cost metric against the
// quantized int32 metric at one SNR: same messages, same noise, same decoder
// configuration — only the decoder's cost arithmetic differs. The difference
// between the two achieved rates is the "equivalence tariff" of running the
// decoder on hardware-style fixed-point arithmetic.
type QuantCostPoint struct {
	SNRdB float64
	// RateFloat/RateInt32 are the aggregate achieved rates (bits/symbol)
	// under the two metrics.
	RateFloat float64
	RateInt32 float64
	// Tariff is RateFloat - RateInt32: the rate given up by quantizing the
	// cost arithmetic (negative values mean the int32 metric happened to
	// decode earlier on this trial set).
	Tariff float64
	// FailFloat/FailInt32 count messages not decoded within the pass
	// budget under each metric.
	FailFloat int
	FailInt32 int
	Trials    int
}

// QuantCostComparison measures the int32 metric's rate tariff across an SNR
// sweep: for every SNR it runs the genie rate measurement twice on identical
// trials (same per-trial seeds, so the same messages and the same noise
// stream), once per cost metric. Everything except the decoder's cost
// arithmetic is held fixed, so the rate difference isolates the effect of
// fixed-point quantization on the beam search's decisions.
func QuantCostComparison(cfg SpinalConfig, snrsDB []float64) ([]QuantCostPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.Pool == nil {
		cfg.Pool = core.NewDecoderPool(core.DefaultDecoderPoolCapacity)
		defer cfg.Pool.Drain()
	}
	points := make([]QuantCostPoint, len(snrsDB))
	for i, snr := range snrsDB {
		fcfg := cfg
		fcfg.Metric = core.CostFloat64
		fpt, err := SpinalRateAtSNR(fcfg, snr)
		if err != nil {
			return nil, err
		}
		qcfg := cfg
		qcfg.Metric = core.CostInt32
		qpt, err := SpinalRateAtSNR(qcfg, snr)
		if err != nil {
			return nil, err
		}
		points[i] = QuantCostPoint{
			SNRdB:     snr,
			RateFloat: fpt.Rate,
			RateInt32: qpt.Rate,
			Tariff:    fpt.Rate - qpt.Rate,
			FailFloat: fpt.Failures,
			FailInt32: qpt.Failures,
			Trials:    cfg.Trials,
		}
	}
	return points, nil
}

// QuantCostColumns is the point schema of the quantcost scenario.
func QuantCostColumns() []sim.Column {
	return []sim.Column{
		sim.Col("snr_db", "%.1f"),
		sim.Col("rate_float64", "%.3f"),
		sim.Col("rate_int32", "%.3f"),
		sim.Col("tariff_bits_per_sym", "%.3f"),
		sim.Col("fail_float64", "%d"),
		sim.Col("fail_int32", "%d"),
		sim.Col("trials", "%d"),
	}
}

// FormatQuantCost renders the metric comparison.
func FormatQuantCost(pts []QuantCostPoint) *sim.Table {
	t := sim.NewTable("", QuantCostColumns()...)
	for _, p := range pts {
		t.AddRow(p.SNRdB, p.RateFloat, p.RateInt32, p.Tariff, p.FailFloat, p.FailInt32, p.Trials)
	}
	return t
}
