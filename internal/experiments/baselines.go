package experiments

import (
	"fmt"

	"spinal/internal/channel"
	"spinal/internal/conv"
	"spinal/internal/fountain"
	"spinal/internal/harq"
	"spinal/internal/ldpc"
	"spinal/internal/modem"
	"spinal/internal/rng"
	"spinal/internal/sim"
	"spinal/internal/stats"
)

// The fixed-rate baselines in this file all run their frames as independent
// trials on the sim runner: each frame derives its payload and channel noise
// from (seed, SNR, frame index), so results are bit-identical at any worker
// count and frames parallelize across CPUs.

// snrSeed mixes an SNR point into a seed, one stream per point.
func snrSeed(seed uint64, snrDB float64) uint64 {
	return seed ^ uint64(int64(snrDB*1000+1000000))
}

// frameSeed derives the per-frame stream from the per-point seed.
func frameSeed(pointSeed uint64, frame int) uint64 {
	return pointSeed ^ (0x9e3779b97f4a7c15 * uint64(frame+1))
}

// LDPCConfig describes one fixed-rate LDPC baseline: a 648-bit code at a
// given rate, sent over a given modulation, decoded with belief propagation.
type LDPCConfig struct {
	Rate       ldpc.Rate
	Modulation string
	Frames     int
	Iterations int
	Seed       uint64
	// TrialWorkers is the sim.Run worker-pool size frames are sharded
	// across; zero means GOMAXPROCS.
	TrialWorkers int
}

// Figure2LDPCConfigs returns the eight (rate, modulation) combinations
// plotted as LDPC baselines in Figure 2.
func Figure2LDPCConfigs() []LDPCConfig {
	combos := []struct {
		rate ldpc.Rate
		mod  string
	}{
		{ldpc.Rate12, "BPSK"},
		{ldpc.Rate12, "QAM-4"},
		{ldpc.Rate34, "QAM-4"},
		{ldpc.Rate12, "QAM-16"},
		{ldpc.Rate34, "QAM-16"},
		{ldpc.Rate23, "QAM-64"},
		{ldpc.Rate34, "QAM-64"},
		{ldpc.Rate56, "QAM-64"},
	}
	out := make([]LDPCConfig, len(combos))
	for i, c := range combos {
		out[i] = LDPCConfig{Rate: c.rate, Modulation: c.mod, Frames: 60, Iterations: ldpc.DefaultIterations, Seed: 0x1d9c}
	}
	return out
}

func (c LDPCConfig) withDefaults() LDPCConfig {
	if c.Modulation == "" {
		c.Modulation = "BPSK"
	}
	if c.Frames <= 0 {
		c.Frames = 60
	}
	if c.Iterations == 0 {
		c.Iterations = ldpc.DefaultIterations
	}
	if c.Seed == 0 {
		c.Seed = 0x1d9c
	}
	return c
}

// Label names the baseline the way the Figure 2 legend does.
func (c LDPCConfig) Label() string {
	return fmt.Sprintf("LDPC rate=%s %s", c.Rate, c.Modulation)
}

// ThroughputPoint is one point of a fixed-rate baseline curve.
type ThroughputPoint struct {
	SNRdB float64
	// Throughput is the delivered rate in information bits per symbol:
	// code rate x modulation bits/symbol x frame success probability. This is
	// the quantity a fixed-rate PHY configuration actually delivers, and what
	// the LDPC curves in Figure 2 flatten out to.
	Throughput float64
	// PeakRate is the zero-error ceiling (code rate x bits per symbol).
	PeakRate float64
	// FER is the frame error rate observed at this SNR.
	FER float64
	// Conf95 is the half-width of a 95% confidence interval on the mean
	// per-frame delivered rate.
	Conf95 float64
	// Frames is the number of simulated frames.
	Frames int
}

// frameTrial is the per-frame outcome of a fixed-rate baseline: the
// delivered information bits and channel uses of one frame.
type frameTrial struct {
	bits    int
	symbols int
	ok      bool
}

// throughputPoint folds per-frame outcomes, in frame order, into one curve
// point with aggregate throughput and a CI from the per-frame rate stream.
func throughputPoint(snrDB, peak float64, frames []frameTrial) ThroughputPoint {
	if len(frames) == 0 {
		return ThroughputPoint{SNRdB: snrDB, PeakRate: peak}
	}
	var rates stats.Running
	bits, symbols, frameErrors := 0, 0, 0
	for _, f := range frames {
		bits += f.bits
		symbols += f.symbols
		if !f.ok {
			frameErrors++
		}
		rate := 0.0
		if f.ok && f.symbols > 0 {
			rate = float64(f.bits) / float64(f.symbols)
		}
		rates.Add(rate)
	}
	throughput := 0.0
	if symbols > 0 {
		throughput = float64(bits) / float64(symbols)
	}
	return ThroughputPoint{
		SNRdB:      snrDB,
		Throughput: throughput,
		PeakRate:   peak,
		FER:        float64(frameErrors) / float64(len(frames)),
		Conf95:     rates.Conf95(),
		Frames:     len(frames),
	}
}

// LDPCThroughputCurve simulates a fixed-rate LDPC + modulation combination
// across the SNR sweep and reports its delivered throughput, reproducing one
// LDPC curve of Figure 2. Frames are sharded over the sim runner; each
// worker stashes one belief-propagation decoder and reuses it across its
// frames.
func LDPCThroughputCurve(cfg LDPCConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	code, err := ldpc.NewWiFiLike(cfg.Rate)
	if err != nil {
		return nil, err
	}
	mod, err := modem.ByName(cfg.Modulation)
	if err != nil {
		return nil, err
	}
	if code.N()%mod.BitsPerSymbol() != 0 {
		return nil, fmt.Errorf("experiments: codeword length %d not a multiple of %d bits/symbol",
			code.N(), mod.BitsPerSymbol())
	}

	runner := sim.Runner{Workers: cfg.TrialWorkers}
	points := make([]ThroughputPoint, 0, len(snrsDB))
	symbolsPerFrame := code.N() / mod.BitsPerSymbol()
	peak := code.RateValue() * float64(mod.BitsPerSymbol())
	for _, snrDB := range snrsDB {
		pointSeed := snrSeed(cfg.Seed, snrDB)
		frames, err := sim.Run(runner, cfg.Frames, func(w *sim.Worker, frame int) (frameTrial, error) {
			decAny, err := w.Stash("ldpc-decoder", func() (any, error) {
				return ldpc.NewDecoder(code, cfg.Iterations)
			})
			if err != nil {
				return frameTrial{}, err
			}
			dec := decAny.(*ldpc.Decoder)

			src := rng.New(frameSeed(pointSeed, frame))
			ch, err := channel.NewAWGNdB(snrDB, src)
			if err != nil {
				return frameTrial{}, err
			}
			info := make([]byte, code.K())
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			cw, err := code.Encode(info)
			if err != nil {
				return frameTrial{}, err
			}
			syms, err := mod.Modulate(cw)
			if err != nil {
				return frameTrial{}, err
			}
			ch.CorruptBlock(syms, syms)
			llr := mod.Demodulate(syms, ch.Sigma2())
			res, err := dec.Decode(llr)
			if err != nil {
				return frameTrial{}, err
			}
			ok := res.Converged
			if ok {
				for i := range info {
					if res.Info[i] != info[i] {
						ok = false
						break
					}
				}
			}
			bits := 0
			if ok {
				bits = code.K()
			}
			return frameTrial{bits: bits, symbols: symbolsPerFrame, ok: ok}, nil
		})
		if err != nil {
			return nil, err
		}
		points = append(points, throughputPoint(snrDB, peak, frames))
	}
	return points, nil
}

// ConvConfig describes a convolutional-code baseline.
type ConvConfig struct {
	Rate       string
	Modulation string
	FrameBits  int
	Frames     int
	Seed       uint64
	// TrialWorkers is the sim.Run worker-pool size; zero means GOMAXPROCS.
	TrialWorkers int
}

func (c ConvConfig) withDefaults() ConvConfig {
	if c.Rate == "" {
		c.Rate = "1/2"
	}
	if c.Modulation == "" {
		c.Modulation = "BPSK"
	}
	if c.FrameBits == 0 {
		c.FrameBits = 288
	}
	if c.Frames <= 0 {
		c.Frames = 60
	}
	if c.Seed == 0 {
		c.Seed = 0xC09F
	}
	return c
}

// ConvThroughputCurve simulates a punctured convolutional code with Viterbi
// decoding across the SNR sweep, as an additional rated baseline. Frames are
// sharded over the sim runner with per-frame seeding.
func ConvThroughputCurve(cfg ConvConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	code, err := conv.NewPunctured(cfg.Rate)
	if err != nil {
		return nil, err
	}
	mod, err := modem.ByName(cfg.Modulation)
	if err != nil {
		return nil, err
	}
	// Frame geometry is fixed by the configuration, not the noise: one
	// encode determines the padded symbol count every frame shares.
	probe, err := code.Encode(make([]byte, cfg.FrameBits))
	if err != nil {
		return nil, err
	}
	codedPerFrame := len(probe)
	for codedPerFrame%mod.BitsPerSymbol() != 0 {
		codedPerFrame++
	}
	symbolsPerFrame := codedPerFrame / mod.BitsPerSymbol()
	peak := float64(cfg.FrameBits) / float64(symbolsPerFrame)

	runner := sim.Runner{Workers: cfg.TrialWorkers}
	points := make([]ThroughputPoint, 0, len(snrsDB))
	for _, snrDB := range snrsDB {
		pointSeed := snrSeed(cfg.Seed, snrDB)
		frames, err := sim.Run(runner, cfg.Frames, func(w *sim.Worker, frame int) (frameTrial, error) {
			codecAny, err := w.Stash("conv-code", func() (any, error) {
				return conv.NewPunctured(cfg.Rate)
			})
			if err != nil {
				return frameTrial{}, err
			}
			codec := codecAny.(*conv.Code)

			src := rng.New(frameSeed(pointSeed, frame))
			ch, err := channel.NewAWGNdB(snrDB, src)
			if err != nil {
				return frameTrial{}, err
			}
			info := make([]byte, cfg.FrameBits)
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			coded, err := codec.Encode(info)
			if err != nil {
				return frameTrial{}, err
			}
			// Pad the coded stream to a whole number of symbols.
			for len(coded)%mod.BitsPerSymbol() != 0 {
				coded = append(coded, 0)
			}
			syms, err := mod.Modulate(coded)
			if err != nil {
				return frameTrial{}, err
			}
			ch.CorruptBlock(syms, syms)
			llr := mod.Demodulate(syms, ch.Sigma2())
			decoded, err := codec.Decode(llr[:codec.CodedLength(cfg.FrameBits)], cfg.FrameBits)
			if err != nil {
				return frameTrial{}, err
			}
			ok := true
			for i := range info {
				if decoded[i] != info[i] {
					ok = false
					break
				}
			}
			bits := 0
			if ok {
				bits = cfg.FrameBits
			}
			return frameTrial{bits: bits, symbols: symbolsPerFrame, ok: ok}, nil
		})
		if err != nil {
			return nil, err
		}
		points = append(points, throughputPoint(snrDB, peak, frames))
	}
	return points, nil
}

// HARQConfig describes the hybrid-ARQ (Chase combining) rateless comparator.
type HARQConfig struct {
	Rate       ldpc.Rate
	Modulation string
	MaxRounds  int
	Frames     int
	Seed       uint64
	// TrialWorkers is the sim.Run worker-pool size; zero means GOMAXPROCS.
	TrialWorkers int
}

func (c HARQConfig) withDefaults() HARQConfig {
	if c.Modulation == "" {
		c.Modulation = "QAM-16"
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.Frames <= 0 {
		c.Frames = 40
	}
	if c.Seed == 0 {
		c.Seed = 0x4a7
	}
	return c
}

// HARQThroughputCurve measures the throughput of LDPC hybrid ARQ with Chase
// combining across the SNR sweep: a conventional way to obtain rateless
// behaviour from a fixed code, with whole-codeword granularity. Compare with
// the spinal curve, whose granularity is a single symbol. Frames are sharded
// over the sim runner; each worker stashes one HARQ scheme instance.
func HARQThroughputCurve(cfg HARQConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	// Validate the configuration once, up front, rather than inside trials.
	probe, err := harq.New(harq.Config{Rate: cfg.Rate, Modulation: cfg.Modulation, MaxRounds: cfg.MaxRounds})
	if err != nil {
		return nil, err
	}
	peak := float64(probe.InfoBits()) / float64(probe.SymbolsPerRound())

	runner := sim.Runner{Workers: cfg.TrialWorkers}
	points := make([]ThroughputPoint, 0, len(snrsDB))
	for _, snrDB := range snrsDB {
		pointSeed := snrSeed(cfg.Seed, snrDB)
		frames, err := sim.Run(runner, cfg.Frames, func(w *sim.Worker, frame int) (frameTrial, error) {
			schemeAny, err := w.Stash("harq-scheme", func() (any, error) {
				return harq.New(harq.Config{Rate: cfg.Rate, Modulation: cfg.Modulation, MaxRounds: cfg.MaxRounds})
			})
			if err != nil {
				return frameTrial{}, err
			}
			scheme := schemeAny.(*harq.Scheme)

			src := rng.New(frameSeed(pointSeed, frame))
			ch, err := channel.NewAWGNdB(snrDB, src)
			if err != nil {
				return frameTrial{}, err
			}
			res, err := scheme.RunFrame(ch.Corrupt, ch.Sigma2(), src)
			if err != nil {
				return frameTrial{}, err
			}
			bits := 0
			if res.Delivered {
				bits = scheme.InfoBits()
			}
			return frameTrial{bits: bits, symbols: res.Symbols, ok: res.Delivered}, nil
		})
		if err != nil {
			return nil, err
		}
		points = append(points, throughputPoint(snrDB, peak, frames))
	}
	return points, nil
}

// OverheadPoint is one point of the fountain-code (LT) overhead experiment.
type OverheadPoint struct {
	ErasureProb float64
	// Overhead is the average number of received (not erased) symbols needed
	// to decode, divided by k. An ideal fountain code has overhead 1.
	Overhead float64
	// SentPerBlock is the average number of transmitted symbols (including
	// erased ones) divided by k.
	SentPerBlock float64
	Trials       int
}

// FountainConfig describes the LT-code overhead experiment: k source blocks
// of BlockSize bytes streamed over binary erasure channels with the given
// erasure probabilities.
type FountainConfig struct {
	// K is the number of source blocks per generation.
	K int
	// BlockSize is the payload bytes per block.
	BlockSize int
	// Trials is the number of generations simulated per erasure point.
	Trials int
	// Erasures lists the BEC erasure probabilities to sweep.
	Erasures []float64
	Seed     uint64
	// TrialWorkers is the sim.Run worker-pool size; zero means GOMAXPROCS.
	TrialWorkers int
}

func (c FountainConfig) withDefaults() FountainConfig {
	if c.K == 0 {
		c.K = 256
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.Trials == 0 {
		c.Trials = 20
	}
	if len(c.Erasures) == 0 {
		c.Erasures = []float64{0, 0.1, 0.2, 0.3, 0.5}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// fountainTrial is the per-generation outcome of the LT experiment.
type fountainTrial struct {
	received int
	sent     int
}

// FountainOverhead measures the reception overhead of the LT baseline over a
// BEC with the configured erasure probabilities — the related-work comparator
// of §2 (Raptor/LT codes are the classical rateless solution for erasures).
func FountainOverhead(cfg FountainConfig) ([]OverheadPoint, error) {
	cfg = cfg.withDefaults()
	if cfg.K < 1 || cfg.BlockSize < 1 || cfg.Trials < 1 {
		return nil, fmt.Errorf("experiments: invalid fountain experiment parameters")
	}
	runner := sim.Runner{Workers: cfg.TrialWorkers}
	out := make([]OverheadPoint, 0, len(cfg.Erasures))
	for _, p := range cfg.Erasures {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("experiments: erasure probability %v out of range", p)
		}
		trials, err := sim.Run(runner, cfg.Trials, func(w *sim.Worker, trial int) (fountainTrial, error) {
			src := rng.New(cfg.Seed ^ uint64(trial+1)*0x9e3779b97f4a7c15)
			lt, err := fountain.NewLT(cfg.K, cfg.BlockSize, cfg.Seed+uint64(trial))
			if err != nil {
				return fountainTrial{}, err
			}
			source := make([][]byte, cfg.K)
			for i := range source {
				source[i] = make([]byte, cfg.BlockSize)
				src.Bytes(source[i])
			}
			dec := fountain.NewDecoder(lt)
			sent, received := 0, 0
			for id := uint32(0); !dec.Done() && sent < 100*cfg.K; id++ {
				sent++
				if src.Bernoulli(p) {
					continue // erased
				}
				sym, err := lt.EncodeSymbol(id, source)
				if err != nil {
					return fountainTrial{}, err
				}
				if err := dec.AddSymbol(id, sym); err != nil {
					return fountainTrial{}, err
				}
				received++
			}
			return fountainTrial{received: received, sent: sent}, nil
		})
		if err != nil {
			return nil, err
		}
		var totalReceived, totalSent float64
		for _, t := range trials {
			totalReceived += float64(t.received)
			totalSent += float64(t.sent)
		}
		out = append(out, OverheadPoint{
			ErasureProb:  p,
			Overhead:     totalReceived / float64(cfg.Trials) / float64(cfg.K),
			SentPerBlock: totalSent / float64(cfg.Trials) / float64(cfg.K),
			Trials:       cfg.Trials,
		})
	}
	return out, nil
}
