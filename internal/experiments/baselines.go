package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"spinal/internal/channel"
	"spinal/internal/conv"
	"spinal/internal/fountain"
	"spinal/internal/harq"
	"spinal/internal/ldpc"
	"spinal/internal/modem"
	"spinal/internal/rng"
)

// LDPCConfig describes one fixed-rate LDPC baseline: a 648-bit code at a
// given rate, sent over a given modulation, decoded with belief propagation.
type LDPCConfig struct {
	Rate       ldpc.Rate
	Modulation string
	Frames     int
	Iterations int
	Seed       uint64
}

// Figure2LDPCConfigs returns the eight (rate, modulation) combinations
// plotted as LDPC baselines in Figure 2.
func Figure2LDPCConfigs() []LDPCConfig {
	combos := []struct {
		rate ldpc.Rate
		mod  string
	}{
		{ldpc.Rate12, "BPSK"},
		{ldpc.Rate12, "QAM-4"},
		{ldpc.Rate34, "QAM-4"},
		{ldpc.Rate12, "QAM-16"},
		{ldpc.Rate34, "QAM-16"},
		{ldpc.Rate23, "QAM-64"},
		{ldpc.Rate34, "QAM-64"},
		{ldpc.Rate56, "QAM-64"},
	}
	out := make([]LDPCConfig, len(combos))
	for i, c := range combos {
		out[i] = LDPCConfig{Rate: c.rate, Modulation: c.mod, Frames: 60, Iterations: ldpc.DefaultIterations, Seed: 0x1d9c}
	}
	return out
}

func (c LDPCConfig) withDefaults() LDPCConfig {
	if c.Modulation == "" {
		c.Modulation = "BPSK"
	}
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.Iterations == 0 {
		c.Iterations = ldpc.DefaultIterations
	}
	if c.Seed == 0 {
		c.Seed = 0x1d9c
	}
	return c
}

// Label names the baseline the way the Figure 2 legend does.
func (c LDPCConfig) Label() string {
	return fmt.Sprintf("LDPC rate=%s %s", c.Rate, c.Modulation)
}

// ThroughputPoint is one point of a fixed-rate baseline curve.
type ThroughputPoint struct {
	SNRdB float64
	// Throughput is the delivered rate in information bits per symbol:
	// code rate x modulation bits/symbol x frame success probability. This is
	// the quantity a fixed-rate PHY configuration actually delivers, and what
	// the LDPC curves in Figure 2 flatten out to.
	Throughput float64
	// PeakRate is the zero-error ceiling (code rate x bits per symbol).
	PeakRate float64
	// FER is the frame error rate observed at this SNR.
	FER float64
	// Frames is the number of simulated frames.
	Frames int
}

// LDPCThroughputCurve simulates a fixed-rate LDPC + modulation combination
// across the SNR sweep and reports its delivered throughput, reproducing one
// LDPC curve of Figure 2.
func LDPCThroughputCurve(cfg LDPCConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	code, err := ldpc.NewWiFiLike(cfg.Rate)
	if err != nil {
		return nil, err
	}
	mod, err := modem.ByName(cfg.Modulation)
	if err != nil {
		return nil, err
	}
	if code.N()%mod.BitsPerSymbol() != 0 {
		return nil, fmt.Errorf("experiments: codeword length %d not a multiple of %d bits/symbol",
			code.N(), mod.BitsPerSymbol())
	}

	points := make([]ThroughputPoint, len(snrsDB))
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > len(snrsDB) {
		workers = len(snrsDB)
	}
	idxCh := make(chan int)
	errMu := sync.Mutex{}
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			dec, derr := ldpc.NewDecoder(code, cfg.Iterations)
			if derr != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = derr
				}
				errMu.Unlock()
				return
			}
			for i := range idxCh {
				pt, perr := ldpcPoint(cfg, code, dec, mod, snrsDB[i])
				if perr != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = perr
					}
					errMu.Unlock()
					continue
				}
				points[i] = pt
			}
		}()
	}
	for i := range snrsDB {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return points, nil
}

func ldpcPoint(cfg LDPCConfig, code *ldpc.Code, dec *ldpc.Decoder, mod modem.Modulation, snrDB float64) (ThroughputPoint, error) {
	src := rng.New(cfg.Seed ^ uint64(int64(snrDB*1000+1000000)))
	ch, err := channel.NewAWGNdB(snrDB, src)
	if err != nil {
		return ThroughputPoint{}, err
	}
	frameErrors := 0
	for frame := 0; frame < cfg.Frames; frame++ {
		info := make([]byte, code.K())
		for i := range info {
			info[i] = byte(src.Intn(2))
		}
		cw, err := code.Encode(info)
		if err != nil {
			return ThroughputPoint{}, err
		}
		syms, err := mod.Modulate(cw)
		if err != nil {
			return ThroughputPoint{}, err
		}
		ch.CorruptBlock(syms, syms)
		llr := mod.Demodulate(syms, ch.Sigma2())
		res, err := dec.Decode(llr)
		if err != nil {
			return ThroughputPoint{}, err
		}
		ok := res.Converged
		if ok {
			for i := range info {
				if res.Info[i] != info[i] {
					ok = false
					break
				}
			}
		}
		if !ok {
			frameErrors++
		}
	}
	fer := float64(frameErrors) / float64(cfg.Frames)
	peak := code.RateValue() * float64(mod.BitsPerSymbol())
	return ThroughputPoint{
		SNRdB:      snrDB,
		Throughput: peak * (1 - fer),
		PeakRate:   peak,
		FER:        fer,
		Frames:     cfg.Frames,
	}, nil
}

// ConvConfig describes a convolutional-code baseline.
type ConvConfig struct {
	Rate       string
	Modulation string
	FrameBits  int
	Frames     int
	Seed       uint64
}

func (c ConvConfig) withDefaults() ConvConfig {
	if c.Rate == "" {
		c.Rate = "1/2"
	}
	if c.Modulation == "" {
		c.Modulation = "BPSK"
	}
	if c.FrameBits == 0 {
		c.FrameBits = 288
	}
	if c.Frames == 0 {
		c.Frames = 60
	}
	if c.Seed == 0 {
		c.Seed = 0xC09F
	}
	return c
}

// ConvThroughputCurve simulates a punctured convolutional code with Viterbi
// decoding across the SNR sweep, as an additional rated baseline.
func ConvThroughputCurve(cfg ConvConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	code, err := conv.NewPunctured(cfg.Rate)
	if err != nil {
		return nil, err
	}
	mod, err := modem.ByName(cfg.Modulation)
	if err != nil {
		return nil, err
	}
	points := make([]ThroughputPoint, 0, len(snrsDB))
	for _, snr := range snrsDB {
		src := rng.New(cfg.Seed ^ uint64(int64(snr*1000+1000000)))
		ch, err := channel.NewAWGNdB(snr, src)
		if err != nil {
			return nil, err
		}
		frameErrors := 0
		var codedPerFrame int
		for frame := 0; frame < cfg.Frames; frame++ {
			info := make([]byte, cfg.FrameBits)
			for i := range info {
				info[i] = byte(src.Intn(2))
			}
			coded, err := code.Encode(info)
			if err != nil {
				return nil, err
			}
			// Pad the coded stream to a whole number of symbols.
			for len(coded)%mod.BitsPerSymbol() != 0 {
				coded = append(coded, 0)
			}
			codedPerFrame = len(coded)
			syms, err := mod.Modulate(coded)
			if err != nil {
				return nil, err
			}
			ch.CorruptBlock(syms, syms)
			llr := mod.Demodulate(syms, ch.Sigma2())
			decoded, err := code.Decode(llr[:code.CodedLength(cfg.FrameBits)], cfg.FrameBits)
			if err != nil {
				return nil, err
			}
			for i := range info {
				if decoded[i] != info[i] {
					frameErrors++
					break
				}
			}
		}
		fer := float64(frameErrors) / float64(cfg.Frames)
		symbolsPerFrame := float64(codedPerFrame) / float64(mod.BitsPerSymbol())
		peak := float64(cfg.FrameBits) / symbolsPerFrame
		points = append(points, ThroughputPoint{
			SNRdB:      snr,
			Throughput: peak * (1 - fer),
			PeakRate:   peak,
			FER:        fer,
			Frames:     cfg.Frames,
		})
	}
	return points, nil
}

// HARQConfig describes the hybrid-ARQ (Chase combining) rateless comparator.
type HARQConfig struct {
	Rate       ldpc.Rate
	Modulation string
	MaxRounds  int
	Frames     int
	Seed       uint64
}

func (c HARQConfig) withDefaults() HARQConfig {
	if c.Modulation == "" {
		c.Modulation = "QAM-16"
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 8
	}
	if c.Frames == 0 {
		c.Frames = 40
	}
	if c.Seed == 0 {
		c.Seed = 0x4a7
	}
	return c
}

// HARQThroughputCurve measures the throughput of LDPC hybrid ARQ with Chase
// combining across the SNR sweep: a conventional way to obtain rateless
// behaviour from a fixed code, with whole-codeword granularity. Compare with
// the spinal curve, whose granularity is a single symbol.
func HARQThroughputCurve(cfg HARQConfig, snrsDB []float64) ([]ThroughputPoint, error) {
	cfg = cfg.withDefaults()
	scheme, err := harq.New(harq.Config{
		Rate:       cfg.Rate,
		Modulation: cfg.Modulation,
		MaxRounds:  cfg.MaxRounds,
	})
	if err != nil {
		return nil, err
	}
	points := make([]ThroughputPoint, 0, len(snrsDB))
	for _, snr := range snrsDB {
		src := rng.New(cfg.Seed ^ uint64(int64(snr*1000+1000000)))
		ch, err := channel.NewAWGNdB(snr, src)
		if err != nil {
			return nil, err
		}
		var bits, symbols, failures int
		for frame := 0; frame < cfg.Frames; frame++ {
			res, err := scheme.RunFrame(ch.Corrupt, ch.Sigma2(), src)
			if err != nil {
				return nil, err
			}
			symbols += res.Symbols
			if res.Delivered {
				bits += scheme.InfoBits()
			} else {
				failures++
			}
		}
		throughput := 0.0
		if symbols > 0 {
			throughput = float64(bits) / float64(symbols)
		}
		points = append(points, ThroughputPoint{
			SNRdB:      snr,
			Throughput: throughput,
			PeakRate:   float64(scheme.InfoBits()) / float64(scheme.SymbolsPerRound()),
			FER:        float64(failures) / float64(cfg.Frames),
			Frames:     cfg.Frames,
		})
	}
	return points, nil
}

// OverheadPoint is one point of the fountain-code (LT) overhead experiment.
type OverheadPoint struct {
	ErasureProb float64
	// Overhead is the average number of received (not erased) symbols needed
	// to decode, divided by k. An ideal fountain code has overhead 1.
	Overhead float64
	// SentPerBlock is the average number of transmitted symbols (including
	// erased ones) divided by k.
	SentPerBlock float64
	Trials       int
}

// FountainOverhead measures the reception overhead of the LT baseline over a
// BEC with the given erasure probabilities — the related-work comparator of
// §2 (Raptor/LT codes are the classical rateless solution for erasures).
func FountainOverhead(k, blockSize, trials int, erasures []float64, seed uint64) ([]OverheadPoint, error) {
	if k < 1 || blockSize < 1 || trials < 1 {
		return nil, fmt.Errorf("experiments: invalid fountain experiment parameters")
	}
	out := make([]OverheadPoint, 0, len(erasures))
	for _, p := range erasures {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("experiments: erasure probability %v out of range", p)
		}
		var totalReceived, totalSent float64
		for trial := 0; trial < trials; trial++ {
			src := rng.New(seed ^ uint64(trial+1)*0x9e3779b97f4a7c15)
			lt, err := fountain.NewLT(k, blockSize, seed+uint64(trial))
			if err != nil {
				return nil, err
			}
			source := make([][]byte, k)
			for i := range source {
				source[i] = make([]byte, blockSize)
				src.Bytes(source[i])
			}
			dec := fountain.NewDecoder(lt)
			sent, received := 0, 0
			for id := uint32(0); !dec.Done() && sent < 100*k; id++ {
				sent++
				if src.Bernoulli(p) {
					continue // erased
				}
				sym, err := lt.EncodeSymbol(id, source)
				if err != nil {
					return nil, err
				}
				if err := dec.AddSymbol(id, sym); err != nil {
					return nil, err
				}
				received++
			}
			totalReceived += float64(received)
			totalSent += float64(sent)
		}
		out = append(out, OverheadPoint{
			ErasureProb:  p,
			Overhead:     totalReceived / float64(trials) / float64(k),
			SentPerBlock: totalSent / float64(trials) / float64(k),
			Trials:       trials,
		})
	}
	return out, nil
}
