package experiments

import (
	"math"
	"strings"
	"testing"
)

// TestQuantCostTariff asserts the central claim of the quantcost scenario:
// the quantized int32 cost metric pays at most a small rate tariff relative
// to the exact float64 metric. The two runs share per-trial seeds, so the
// comparison is over identical messages and noise; with a 14-bit ADC the
// quantization step of the cost grid sits far below the noise floor and the
// beam search almost always makes the same decisions under both metrics.
func TestQuantCostTariff(t *testing.T) {
	cfg := quickCfg()
	cfg.Trials = 12
	snrs := []float64{0, 10, 20}
	pts, err := QuantCostComparison(cfg, snrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(snrs) {
		t.Fatalf("points = %d, want %d", len(pts), len(snrs))
	}
	// The tariff bound: the int32 metric may not give up more than 5% of the
	// float64 rate (plus an absolute floor for the low-SNR points where rates
	// are small). A negative tariff — int32 decoding a pass earlier — is fine.
	for _, p := range pts {
		if p.RateFloat <= 0 || p.RateInt32 <= 0 {
			t.Fatalf("non-positive rate at %v dB: float=%v int32=%v", p.SNRdB, p.RateFloat, p.RateInt32)
		}
		if limit := math.Max(0.05*p.RateFloat, 0.1); p.Tariff > limit {
			t.Errorf("tariff at %v dB = %.3f bits/sym (float %.3f, int32 %.3f); limit %.3f",
				p.SNRdB, p.Tariff, p.RateFloat, p.RateInt32, limit)
		}
		if p.FailInt32 > p.FailFloat {
			t.Errorf("int32 metric failed %d messages vs %d under float64 at %v dB",
				p.FailInt32, p.FailFloat, p.SNRdB)
		}
		if p.Trials != cfg.Trials {
			t.Errorf("trials = %d, want %d", p.Trials, cfg.Trials)
		}
	}
}

func TestFormatQuantCost(t *testing.T) {
	pts := []QuantCostPoint{{SNRdB: 10, RateFloat: 2.9, RateInt32: 2.85, Tariff: 0.05, Trials: 4}}
	tab := FormatQuantCost(pts)
	if got := len(tab.Rows); got != 1 {
		t.Fatalf("rows = %d", got)
	}
	rendered := tab.String()
	for _, col := range []string{"snr_db", "rate_float64", "rate_int32", "tariff_bits_per_sym"} {
		if !strings.Contains(rendered, col) {
			t.Errorf("rendered table missing column %q:\n%s", col, rendered)
		}
	}
}
