package experiments

import (
	"fmt"
	"time"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/rng"
	"spinal/internal/sim"
)

// This file measures the batch-first transmission path against the
// historical per-symbol loop: same messages, same noise streams, bit-identical
// decodes — the only difference is whether symbols move through the stack one
// at a time (schedule call, encoder call, channel closure, observation append
// and generation bump per symbol) or a whole inter-attempt stretch at a time.

// BatchPoint summarizes the scalar-versus-batch comparison at one SNR.
type BatchPoint struct {
	SNRdB float64
	// ScalarNS and BatchNS are the total wall-clock nanoseconds spent in the
	// per-symbol reference loop and in the batched session, respectively,
	// across all trials.
	ScalarNS int64
	BatchNS  int64
	// Speedup is ScalarNS / BatchNS.
	Speedup float64
	// Symbols is the total number of channel uses across all trials
	// (identical in both modes by construction).
	Symbols int64
	// Delivered counts messages decoded within the pass budget (identical in
	// both modes by construction).
	Delivered int
	Trials    int
}

// batchTrial is the per-trial outcome of the scalar-versus-batch comparison.
type batchTrial struct {
	scalarNS  int64
	batchNS   int64
	symbols   int64
	delivered bool
}

// BatchObserveComparison runs the same rateless transmissions twice — once
// through the batched RunChannelSession and once through a per-symbol
// reference reimplementation of the pre-batch loop — and reports the
// wall-clock cost of each. Message and channel randomness are derived from
// the configured seed, so both modes see byte-identical symbol streams; the
// function errors if the modes ever disagree on success, channel uses,
// decoded message, attempt count or node accounting, which doubles as an
// end-to-end equivalence check of the batch pipeline. Trials shard across
// the sim runner (per-trial timings sum, so the total reflects compute cost
// at any worker count).
func BatchObserveComparison(cfg SpinalConfig, snrDB float64) (BatchPoint, error) {
	cfg = cfg.withDefaults()
	params, err := cfg.params()
	if err != nil {
		return BatchPoint{}, err
	}
	sched, err := scheduleFor(cfg, params.NumSegments())
	if err != nil {
		return BatchPoint{}, err
	}
	results, err := sim.Run(cfg.runner(), cfg.Trials, func(w *sim.Worker, trial int) (batchTrial, error) {
		msg := core.RandomMessage(rng.New(cfg.Seed^(0x9e3779b97f4a7c15*uint64(trial+1))), cfg.MessageBits)
		sessionCfg := core.SessionConfig{
			Params:      params,
			BeamWidth:   cfg.BeamWidth,
			Schedule:    sched,
			MaxSymbols:  cfg.MaxPasses * params.NumSegments(),
			Parallelism: trialParallelism(cfg),
		}
		radio := func() (*channel.QuantizedAWGN, error) {
			return channel.NewQuantizedAWGN(snrDB, cfg.ADCBits, rng.New(cfg.Seed^(0xbb67ae8584caa73b*uint64(trial+1))))
		}

		var out batchTrial
		batchCh, err := radio()
		if err != nil {
			return out, err
		}
		start := time.Now()
		batch, err := core.RunChannelSession(sessionCfg, msg, batchCh, core.GenieVerifier(msg, cfg.MessageBits))
		if err != nil {
			return out, err
		}
		out.batchNS = time.Since(start).Nanoseconds()

		scalarCh, err := radio()
		if err != nil {
			return out, err
		}
		start = time.Now()
		scalar, err := perSymbolReferenceSession(sessionCfg, msg, scalarCh.Corrupt, core.GenieVerifier(msg, cfg.MessageBits))
		if err != nil {
			return out, err
		}
		out.scalarNS = time.Since(start).Nanoseconds()

		if batch.Success != scalar.Success || batch.ChannelUses != scalar.ChannelUses ||
			batch.Attempts != scalar.Attempts || batch.NodesExpanded != scalar.NodesExpanded ||
			!core.EqualMessages(batch.Decoded, scalar.Decoded, cfg.MessageBits) {
			return out, fmt.Errorf("experiments: batch and per-symbol transmissions diverged")
		}
		out.symbols = int64(batch.ChannelUses)
		out.delivered = batch.Success
		return out, nil
	})
	if err != nil {
		return BatchPoint{}, err
	}
	pt := BatchPoint{SNRdB: snrDB, Trials: cfg.Trials}
	for _, r := range results {
		pt.ScalarNS += r.scalarNS
		pt.BatchNS += r.batchNS
		pt.Symbols += r.symbols
		if r.delivered {
			pt.Delivered++
		}
	}
	if pt.BatchNS > 0 {
		pt.Speedup = float64(pt.ScalarNS) / float64(pt.BatchNS)
	}
	return pt, nil
}

// perSymbolReferenceSession reimplements the pre-batch transmission loop —
// one schedule call, one encoder call, one channel call and one observation
// append per symbol — as the timing and equivalence baseline for
// BatchObserveComparison.
func perSymbolReferenceSession(cfg core.SessionConfig, message []byte, corrupt func(complex128) complex128, verify core.Verifier) (*core.Result, error) {
	enc, err := core.NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewBeamDecoder(cfg.Params, cfg.BeamWidth)
	if err != nil {
		return nil, err
	}
	defer dec.Close()
	if cfg.Parallelism > 0 {
		dec.SetParallelism(cfg.Parallelism)
	}
	obs, err := core.NewObservations(cfg.Params.NumSegments())
	if err != nil {
		return nil, err
	}
	attempts := cfg.Attempts
	if attempts == nil {
		attempts = core.AttemptAdaptive{}
	}
	res := &core.Result{}
	nseg := cfg.Params.NumSegments()
	minUses := (cfg.Params.MessageBits + 2*cfg.Params.C - 1) / (2 * cfg.Params.C)
	for i := 0; i < cfg.MaxSymbols; i++ {
		pos := cfg.Schedule.Pos(i)
		if err := obs.Add(pos, corrupt(enc.SymbolAt(pos))); err != nil {
			return nil, err
		}
		received := i + 1
		if received < minUses || !attempts.ShouldAttempt(received, nseg) {
			continue
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = received
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}
