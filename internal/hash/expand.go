package hash

// Expander replays the pseudo-random bit expansion of one spine value with
// word-level memoization. The beam decoder's cost folds pull bit ranges of
// the same spine value for many passes in ascending order; going through
// Family.BitRange directly recomputes the two-round hash of the backing
// 64-bit word for every range, even though consecutive passes usually read
// the same word (a 64-bit word covers 64/2c passes, plus straddles). An
// Expander caches the last two words of the expansion so those reads hit.
//
// The cache is pure memoization: BitRange returns exactly the same values as
// Family.BitRange(s, start, n) for the spine value installed by Reset, so
// decoders built on it stay bit-identical to ones hashing directly.
type Expander struct {
	f   Family
	s   uint64
	idx [2]uint32
	w   [2]uint64
	ok  [2]bool
}

// Reset points the expander at spine value s of family f and empties the
// word cache.
func (e *Expander) Reset(f Family, s uint64) {
	e.f, e.s = f, s
	e.ok[0], e.ok[1] = false, false
}

// word returns Word(s, idx), memoized two-way by index parity so that a
// range straddling words idx and idx+1 keeps both cached.
func (e *Expander) word(idx uint32) uint64 {
	slot := idx & 1
	if !e.ok[slot] || e.idx[slot] != idx {
		e.idx[slot] = idx
		e.w[slot] = e.f.Word(e.s, idx)
		e.ok[slot] = true
	}
	return e.w[slot]
}

// BitRange extracts n bits (1 <= n <= 64) of the expansion of the installed
// spine value starting at bit offset start, exactly like Family.BitRange.
func (e *Expander) BitRange(start, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n > 64 {
		panic("hash: BitRange width exceeds 64 bits")
	}
	wordIdx := uint32(start / 64)
	bitOff := start % 64
	w := e.word(wordIdx)
	if bitOff+n <= 64 {
		return (w >> (64 - bitOff - n)) & maskN(n)
	}
	// The range straddles two words.
	hiBits := 64 - bitOff
	loBits := n - hiBits
	hi := w & maskN(hiBits)
	lo := e.word(wordIdx+1) >> (64 - loBits)
	return hi<<loBits | lo
}
