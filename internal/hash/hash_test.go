package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNextDeterministic(t *testing.T) {
	f := NewFamily(0x1234)
	a := f.Next(42, 7)
	b := f.Next(42, 7)
	if a != b {
		t.Fatalf("Next not deterministic: %x != %x", a, b)
	}
}

func TestNextDependsOnSeed(t *testing.T) {
	f1 := NewFamily(1)
	f2 := NewFamily(2)
	if f1.Next(42, 7) == f2.Next(42, 7) {
		t.Fatal("different seeds produced identical hash output")
	}
}

func TestNextDependsOnBothInputs(t *testing.T) {
	f := NewFamily(99)
	base := f.Next(42, 7)
	if f.Next(43, 7) == base {
		t.Error("changing spine value did not change hash output")
	}
	if f.Next(42, 8) == base {
		t.Error("changing segment did not change hash output")
	}
}

func TestSeedAccessor(t *testing.T) {
	f := NewFamily(0xdeadbeef)
	if f.Seed() != 0xdeadbeef {
		t.Fatalf("Seed() = %x, want deadbeef", f.Seed())
	}
}

// TestNextAvalanche checks that flipping a single input bit flips roughly half
// of the output bits, which is the practical stand-in for the paper's
// uniformity assumption on h.
func TestNextAvalanche(t *testing.T) {
	f := NewFamily(7)
	const trials = 2000
	totalFlipped := 0
	s := uint64(0x0123456789abcdef)
	for i := 0; i < trials; i++ {
		seg := uint64(i)
		h0 := f.Next(s, seg)
		// Flip one bit of the segment input.
		h1 := f.Next(s, seg^(1<<uint(i%8)))
		totalFlipped += popcount(h0 ^ h1)
		s = h0
	}
	mean := float64(totalFlipped) / trials
	if mean < 28 || mean > 36 {
		t.Fatalf("avalanche mean flipped bits = %.2f, want close to 32", mean)
	}
}

// TestNextUniformity checks that each output bit is set about half the time.
func TestNextUniformity(t *testing.T) {
	f := NewFamily(11)
	const trials = 4096
	counts := make([]int, 64)
	s := uint64(1)
	for i := 0; i < trials; i++ {
		s = f.Next(s, uint64(i&0xff))
		for b := 0; b < 64; b++ {
			if s&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.5) > 0.06 {
			t.Fatalf("output bit %d set fraction %.3f, want about 0.5", b, frac)
		}
	}
}

func TestWordDistinctPerIndex(t *testing.T) {
	f := NewFamily(3)
	s := uint64(0xfeedface)
	seen := map[uint64]uint32{}
	for idx := uint32(0); idx < 256; idx++ {
		w := f.Word(s, idx)
		if prev, dup := seen[w]; dup {
			t.Fatalf("Word collision between indices %d and %d", prev, idx)
		}
		seen[w] = idx
	}
}

func TestBitRangeMatchesWord(t *testing.T) {
	f := NewFamily(17)
	s := uint64(0xabcdef0123456789)
	w0 := f.Word(s, 0)
	// Full first word.
	if got := f.BitRange(s, 0, 64); got != w0 {
		t.Fatalf("BitRange(0,64) = %x, want %x", got, w0)
	}
	// First 20 bits must equal the top 20 bits of word 0.
	if got, want := f.BitRange(s, 0, 20), w0>>44; got != want {
		t.Fatalf("BitRange(0,20) = %x, want %x", got, want)
	}
	// Bits 20..40.
	if got, want := f.BitRange(s, 20, 20), (w0>>24)&0xfffff; got != want {
		t.Fatalf("BitRange(20,20) = %x, want %x", got, want)
	}
}

func TestBitRangeStraddlesWords(t *testing.T) {
	f := NewFamily(23)
	s := uint64(0x1122334455667788)
	w0 := f.Word(s, 0)
	w1 := f.Word(s, 1)
	// 20 bits starting at offset 56: 8 bits from w0, 12 bits from w1.
	want := (w0&0xff)<<12 | w1>>52
	if got := f.BitRange(s, 56, 20); got != want {
		t.Fatalf("straddling BitRange = %x, want %x", got, want)
	}
}

func TestBitRangeWidthBounds(t *testing.T) {
	f := NewFamily(5)
	if got := f.BitRange(77, 10, 0); got != 0 {
		t.Fatalf("zero-width BitRange = %x, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BitRange with n>64 did not panic")
		}
	}()
	f.BitRange(77, 0, 65)
}

// TestBitRangeConcatenation verifies that reading the stream in arbitrary
// chunk sizes yields the same bits as reading it word by word. This is a
// property-based test over (offset, width) pairs.
func TestBitRangeConcatenation(t *testing.T) {
	f := NewFamily(31)
	prop := func(sv uint64, startRaw uint16, widthRaw uint8) bool {
		start := uint(startRaw % 512)
		width := uint(widthRaw%64) + 1
		got := f.BitRange(sv, start, width)
		// Recompute bit by bit.
		var want uint64
		for i := uint(0); i < width; i++ {
			bitPos := start + i
			w := f.Word(sv, uint32(bitPos/64))
			bit := (w >> (63 - bitPos%64)) & 1
			want = want<<1 | bit
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestNextCollisionFreeOverSegments checks that for a fixed spine value the
// 2^k successor spine values (k=8) are all distinct, which the decoding tree
// construction relies on in practice.
func TestNextCollisionFreeOverSegments(t *testing.T) {
	f := NewFamily(1234)
	s := f.Next(0, 99)
	seen := map[uint64]bool{}
	for seg := uint64(0); seg < 256; seg++ {
		v := f.Next(s, seg)
		if seen[v] {
			t.Fatalf("spine collision for segment %d", seg)
		}
		seen[v] = true
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkNext(b *testing.B) {
	f := NewFamily(42)
	s := uint64(1)
	for i := 0; i < b.N; i++ {
		s = f.Next(s, uint64(i)&0xff)
	}
	sinkU64 = s
}

func BenchmarkWord(b *testing.B) {
	f := NewFamily(42)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= f.Word(uint64(i), uint32(i)&7)
	}
	sinkU64 = acc
}

var sinkU64 uint64
