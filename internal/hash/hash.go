// Package hash implements the salted 64-bit hash family at the heart of spinal
// codes (Perry, Balakrishnan, Shah, HotNets 2011).
//
// The paper models the hash as a random function
//
//	h : [0,1) x {0,1}^k -> [0,1)
//
// with uniform, pairwise-independent outputs. This package represents the
// [0,1) values as 64-bit words (v = s / 2^64) and provides:
//
//   - Next: the spine transition s_t = h(s_{t-1}, M_t), and
//   - Word / BitRange: the "infinite precision" expansion of a spine value into
//     a pseudo-random bit stream, realized by repeated hashing of the spine
//     value with known salts (the construction suggested in §3.1 of the paper).
//
// The family is keyed by a seed shared by encoder and decoder. Hash values are
// fully deterministic given (seed, inputs), which is what lets the decoder
// "replay" the encoder.
package hash

import "math/bits"

// Mixing constants. The finalizer constants are the standard 64-bit avalanche
// constants (also used by MurmurHash3 and SplitMix64); the additive constants
// are odd 64-bit numbers derived from the golden ratio and sqrt(3).
const (
	mixMul1 = 0xff51afd7ed558ccd
	mixMul2 = 0xc4ceb9fe1a85ec53

	phi64    = 0x9e3779b97f4a7c15 // 2^64 / golden ratio, odd
	sqrt3_64 = 0xbb67ae8584caa73b // frac(sqrt(3)) * 2^64, odd
	saltMul  = 0x2545f4914f6cdd1d // odd multiplier for pass salts
)

// Family is a keyed family of hash functions. The zero value is a valid family
// keyed with seed zero; encoder and decoder must use the same seed.
type Family struct {
	seed uint64
}

// NewFamily returns the hash function drawn from the family H identified by
// seed. Both the encoder and the decoder must be constructed with the same
// seed (the paper's shared random seed).
func NewFamily(seed uint64) Family {
	return Family{seed: seed}
}

// Seed returns the seed that identifies this hash function within the family.
func (f Family) Seed() uint64 { return f.seed }

// mix64 is a full-avalanche 64-bit finalizer: every input bit affects every
// output bit with probability close to 1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= mixMul1
	x ^= x >> 33
	x *= mixMul2
	x ^= x >> 33
	return x
}

// Next computes the next spine value h(s, seg), where seg holds the k message
// bits of the current segment in its low bits. It is the spine transition
// s_t = h(s_{t-1}, M_t) from §3.1 of the paper.
func (f Family) Next(s, seg uint64) uint64 {
	h := s ^ f.seed
	h = mix64(h + phi64 + seg*sqrt3_64)
	h = mix64(h ^ bits.RotateLeft64(seg, 29) ^ bits.RotateLeft64(f.seed, 47))
	return h
}

// Word returns the idx-th 64-bit word of the pseudo-random bit expansion of
// spine value s. Conceptually the spine value has an infinite-precision binary
// representation b1 b2 b3 ...; Word(s, 0) holds b1..b64 (MSB-first), Word(s, 1)
// holds b65..b128, and so on. The expansion is produced by re-hashing the spine
// value with the word index as a known salt.
func (f Family) Word(s uint64, idx uint32) uint64 {
	h := s ^ bits.RotateLeft64(f.seed, 13)
	h = mix64(h + (uint64(idx)+1)*saltMul)
	h = mix64(h ^ bits.RotateLeft64(s, 31) ^ uint64(idx)*phi64)
	return h
}

// BitRange extracts n bits (1 <= n <= 64) of the expansion of spine value s,
// starting at bit offset start (0-based, MSB-first within each word). The
// result is returned right-aligned in the low n bits of the return value.
//
// This is the operation the encoder uses to pull the 2c bits
// b_{2c(l-1)+1} ... b_{2c*l} consumed by pass l (§3.1, step 2).
func (f Family) BitRange(s uint64, start, n uint) uint64 {
	if n == 0 {
		return 0
	}
	if n > 64 {
		panic("hash: BitRange width exceeds 64 bits")
	}
	wordIdx := uint32(start / 64)
	bitOff := start % 64
	w := f.Word(s, wordIdx)
	if bitOff+n <= 64 {
		return (w >> (64 - bitOff - n)) & maskN(n)
	}
	// The range straddles two words.
	hiBits := 64 - bitOff
	loBits := n - hiBits
	hi := w & maskN(hiBits)
	lo := f.Word(s, wordIdx+1) >> (64 - loBits)
	return hi<<loBits | lo
}

// maskN returns a mask with the low n bits set (n in 1..64).
func maskN(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}
