package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.158655},
		{2, 0.022750},
		{3, 0.001350},
		{-1, 0.841345},
	}
	for _, c := range cases {
		if got := Q(c.x); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("Q(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalCDFSymmetry(t *testing.T) {
	for _, x := range []float64{0, 0.5, 1, 2, 3.7} {
		if got := NormalCDF(x) + NormalCDF(-x); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF(%v)+CDF(-%v) = %v, want 1", x, x, got)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-8, 1e-4, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.9999} {
		z := NormalQuantile(p)
		back := NormalCDF(z)
		if math.Abs(back-p) > 1e-9*math.Max(1, 1/p) && math.Abs(back-p) > 1e-12 {
			t.Errorf("NormalCDF(NormalQuantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.8413447460685429, 1},
		{0.9772498680518208, 2},
		{0.0227501319481792, -2},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile outside [0,1] should be NaN")
	}
}

func TestQInvRoundTrip(t *testing.T) {
	prop := func(raw uint16) bool {
		p := (float64(raw%9998) + 1) / 10000 // p in (0, 1)
		x := QInv(p)
		return math.Abs(Q(x)-p) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); math.Abs(got-1) > 1e-12 {
		t.Errorf("H2(0.5) = %v", got)
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H2 at endpoints should be 0")
	}
	if got := BinaryEntropy(0.11); math.Abs(got-0.499916) > 1e-4 {
		t.Errorf("H2(0.11) = %v, want about 0.5", got)
	}
	// Symmetry.
	for _, p := range []float64{0.1, 0.25, 0.4} {
		if math.Abs(BinaryEntropy(p)-BinaryEntropy(1-p)) > 1e-12 {
			t.Errorf("H2 not symmetric at %v", p)
		}
	}
}

func TestDBConversions(t *testing.T) {
	cases := []struct{ db, lin float64 }{
		{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {3, 1.9952623},
	}
	for _, c := range cases {
		if got := DBToLinear(c.db); math.Abs(got-c.lin) > 1e-6*c.lin {
			t.Errorf("DBToLinear(%v) = %v, want %v", c.db, got, c.lin)
		}
		if got := LinearToDB(c.lin); math.Abs(got-c.db) > 1e-6 {
			t.Errorf("LinearToDB(%v) = %v, want %v", c.lin, got, c.db)
		}
	}
}

func TestDBRoundTrip(t *testing.T) {
	prop := func(raw int16) bool {
		db := float64(raw) / 100
		return math.Abs(LinearToDB(DBToLinear(db))-db) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestLog2Int(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := Log2Int(n); got != want {
			t.Errorf("Log2Int(%d) = %d, want %d", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Log2Int(0) should panic")
		}
	}()
	Log2Int(0)
}
