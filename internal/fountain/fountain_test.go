package fountain

import (
	"bytes"
	"math"
	"testing"

	"spinal/internal/rng"
)

func makeSource(src *rng.Rand, k, blockSize int) [][]byte {
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, blockSize)
		src.Bytes(out[i])
	}
	return out
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewLT(0, 16, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewLT(10, 0, 1); err == nil {
		t.Error("blockSize=0 accepted")
	}
	if _, err := NewLTWithSoliton(10, 16, 1, -1, 0.5); err == nil {
		t.Error("negative c accepted")
	}
	if _, err := NewLTWithSoliton(10, 16, 1, 0.1, 1.5); err == nil {
		t.Error("delta > 1 accepted")
	}
	lt, err := NewLT(10, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lt.K() != 10 || lt.BlockSize() != 16 {
		t.Error("accessors wrong")
	}
}

func TestSolitonCDFIsValid(t *testing.T) {
	for _, k := range []int{1, 2, 10, 100, 500} {
		cdf := robustSolitonCDF(k, 0.1, 0.5)
		prev := 0.0
		for d := 1; d <= k; d++ {
			if cdf[d] < prev-1e-12 {
				t.Fatalf("k=%d: CDF not monotone at degree %d", k, d)
			}
			prev = cdf[d]
		}
		if math.Abs(cdf[k]-1) > 1e-9 {
			t.Fatalf("k=%d: CDF does not reach 1 (%v)", k, cdf[k])
		}
	}
}

func TestNeighborsDeterministicAndValid(t *testing.T) {
	lt, _ := NewLT(50, 8, 42)
	for id := uint32(0); id < 200; id++ {
		a := lt.Neighbors(id)
		b := lt.Neighbors(id)
		if len(a) == 0 || len(a) > 50 {
			t.Fatalf("symbol %d has degree %d", id, len(a))
		}
		if len(a) != len(b) {
			t.Fatalf("symbol %d neighbour set not deterministic", id)
		}
		seen := map[int]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("symbol %d neighbour order not deterministic", id)
			}
			if a[i] < 0 || a[i] >= 50 || seen[a[i]] {
				t.Fatalf("symbol %d has invalid or duplicate neighbour %d", id, a[i])
			}
			seen[a[i]] = true
		}
	}
}

func TestDegreeOneSymbolsExist(t *testing.T) {
	lt, _ := NewLT(100, 4, 7)
	degreeOne := 0
	for id := uint32(0); id < 500; id++ {
		if len(lt.Neighbors(id)) == 1 {
			degreeOne++
		}
	}
	if degreeOne == 0 {
		t.Fatal("no degree-one symbols in 500 draws; the ripple can never start")
	}
}

func TestEncodeSymbolValidation(t *testing.T) {
	lt, _ := NewLT(4, 8, 1)
	src := makeSource(rng.New(1), 4, 8)
	if _, err := lt.EncodeSymbol(0, src[:2]); err == nil {
		t.Error("wrong source count accepted")
	}
	bad := makeSource(rng.New(1), 4, 8)
	bad[2] = bad[2][:3]
	if _, err := lt.EncodeSymbol(0, bad); err == nil {
		t.Error("wrong block size accepted")
	}
	if _, err := lt.EncodeSymbol(0, src); err != nil {
		t.Errorf("valid encode failed: %v", err)
	}
}

func TestEncodeSymbolIsXOROfNeighbors(t *testing.T) {
	lt, _ := NewLT(20, 16, 3)
	src := makeSource(rng.New(2), 20, 16)
	for id := uint32(0); id < 50; id++ {
		sym, err := lt.EncodeSymbol(id, src)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		for _, idx := range lt.Neighbors(id) {
			for i := range want {
				want[i] ^= src[idx][i]
			}
		}
		if !bytes.Equal(sym, want) {
			t.Fatalf("symbol %d is not the XOR of its neighbours", id)
		}
	}
}

func TestDecodeWithoutErasures(t *testing.T) {
	lt, _ := NewLT(50, 32, 9)
	src := makeSource(rng.New(3), 50, 32)
	dec := NewDecoder(lt)
	id := uint32(0)
	for !dec.Done() && id < 500 {
		sym, err := lt.EncodeSymbol(id, src)
		if err != nil {
			t.Fatal(err)
		}
		if err := dec.AddSymbol(id, sym); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if !dec.Done() {
		t.Fatalf("decoder not done after %d symbols for k=50", id)
	}
	// Overhead should be modest (robust soliton typically needs < 60% extra
	// at k=50).
	if float64(id) > 50*1.8 {
		t.Fatalf("needed %d symbols for k=50; overhead too large", id)
	}
	got := dec.Source()
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source block %d wrong after decode", i)
		}
	}
}

func TestDecodeWithErasures(t *testing.T) {
	// Half the symbols are erased; the decoder must still finish using later
	// symbols — the fountain property.
	lt, _ := NewLT(40, 16, 11)
	src := makeSource(rng.New(4), 40, 16)
	erasure := rng.New(5)
	dec := NewDecoder(lt)
	sent := 0
	for id := uint32(0); !dec.Done() && id < 2000; id++ {
		sent++
		if erasure.Bernoulli(0.5) {
			continue // erased in transit
		}
		sym, _ := lt.EncodeSymbol(id, src)
		if err := dec.AddSymbol(id, sym); err != nil {
			t.Fatal(err)
		}
	}
	if !dec.Done() {
		t.Fatal("decoder did not finish despite unlimited symbol supply")
	}
	got := dec.Source()
	for i := range src {
		if !bytes.Equal(got[i], src[i]) {
			t.Fatalf("source block %d wrong after erasure decode", i)
		}
	}
}

func TestDecoderRejectsBadSymbolSize(t *testing.T) {
	lt, _ := NewLT(4, 8, 1)
	dec := NewDecoder(lt)
	if err := dec.AddSymbol(0, make([]byte, 5)); err == nil {
		t.Error("wrong-size symbol accepted")
	}
}

func TestDecoderProgressMonotone(t *testing.T) {
	lt, _ := NewLT(30, 8, 13)
	src := makeSource(rng.New(6), 30, 8)
	dec := NewDecoder(lt)
	prev := 0
	for id := uint32(0); !dec.Done() && id < 300; id++ {
		sym, _ := lt.EncodeSymbol(id, src)
		dec.AddSymbol(id, sym)
		if dec.Progress() < prev {
			t.Fatal("progress went backwards")
		}
		prev = dec.Progress()
	}
	if !dec.Done() {
		t.Fatal("decode incomplete")
	}
}

func TestSingleBlockCode(t *testing.T) {
	lt, err := NewLT(1, 16, 21)
	if err != nil {
		t.Fatal(err)
	}
	src := makeSource(rng.New(7), 1, 16)
	dec := NewDecoder(lt)
	sym, _ := lt.EncodeSymbol(0, src)
	dec.AddSymbol(0, sym)
	if !dec.Done() {
		t.Fatal("k=1 should decode from one symbol")
	}
	if !bytes.Equal(dec.Source()[0], src[0]) {
		t.Fatal("k=1 decode wrong")
	}
}

func BenchmarkLTEncodeSymbol(b *testing.B) {
	lt, _ := NewLT(256, 1024, 1)
	src := makeSource(rng.New(1), 256, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lt.EncodeSymbol(uint32(i), src); err != nil {
			b.Fatal(err)
		}
	}
}
