// Package fountain implements LT codes (Luby, FOCS 2002) over the binary
// erasure channel. The related-work section of the paper positions Raptor/LT
// codes as the classical capacity-achieving rateless construction for the
// BEC; this package provides that comparator so the experiment harness can
// contrast erasure-channel rateless overhead with the spinal code's behaviour
// over noise channels.
package fountain

import (
	"fmt"
	"math"

	"spinal/internal/rng"
)

// LT describes an LT code over k equal-size source blocks. Encoded symbols
// are generated independently from a symbol identifier, so any subset of
// symbols of sufficient size can decode the source (the fountain property).
type LT struct {
	k         int
	blockSize int
	seed      uint64
	cdf       []float64 // robust soliton CDF over degrees 1..k
}

// NewLT returns an LT code over k source blocks of blockSize bytes each,
// using the robust soliton distribution with the conventional parameters
// c = 0.1 and delta = 0.5.
func NewLT(k, blockSize int, seed uint64) (*LT, error) {
	return NewLTWithSoliton(k, blockSize, seed, 0.1, 0.5)
}

// NewLTWithSoliton returns an LT code with explicit robust-soliton parameters
// c and delta.
func NewLTWithSoliton(k, blockSize int, seed uint64, c, delta float64) (*LT, error) {
	if k < 1 {
		return nil, fmt.Errorf("fountain: need at least one source block, got %d", k)
	}
	if blockSize < 1 {
		return nil, fmt.Errorf("fountain: block size must be positive, got %d", blockSize)
	}
	if c <= 0 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("fountain: invalid soliton parameters c=%v delta=%v", c, delta)
	}
	lt := &LT{k: k, blockSize: blockSize, seed: seed}
	lt.cdf = robustSolitonCDF(k, c, delta)
	return lt, nil
}

// K returns the number of source blocks.
func (l *LT) K() int { return l.k }

// BlockSize returns the size of each source block in bytes.
func (l *LT) BlockSize() int { return l.blockSize }

// robustSolitonCDF builds the cumulative distribution of the robust soliton
// degree distribution mu(d) for d = 1..k.
func robustSolitonCDF(k int, c, delta float64) []float64 {
	rho := make([]float64, k+1)
	tau := make([]float64, k+1)
	rho[1] = 1.0 / float64(k)
	for d := 2; d <= k; d++ {
		rho[d] = 1.0 / (float64(d) * float64(d-1))
	}
	r := c * math.Log(float64(k)/delta) * math.Sqrt(float64(k))
	if r < 1 {
		r = 1
	}
	pivot := int(math.Floor(float64(k) / r))
	if pivot < 1 {
		pivot = 1
	}
	if pivot > k {
		pivot = k
	}
	for d := 1; d < pivot; d++ {
		tau[d] = r / (float64(d) * float64(k))
	}
	tau[pivot] = r * math.Log(r/delta) / float64(k)
	if tau[pivot] < 0 {
		tau[pivot] = 0
	}
	var z float64
	for d := 1; d <= k; d++ {
		z += rho[d] + tau[d]
	}
	cdf := make([]float64, k+1)
	cum := 0.0
	for d := 1; d <= k; d++ {
		cum += (rho[d] + tau[d]) / z
		cdf[d] = cum
	}
	cdf[k] = 1
	return cdf
}

// symbolRand returns the deterministic random stream for an encoded symbol id.
func (l *LT) symbolRand(id uint32) *rng.Rand {
	return rng.New(l.seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
}

// Neighbors returns the source block indices XORed into encoded symbol id.
// The same id always produces the same neighbour set, which is how the
// decoder reconstructs the code graph without side information.
func (l *LT) Neighbors(id uint32) []int {
	src := l.symbolRand(id)
	// Sample the degree from the robust soliton CDF.
	u := src.Float64()
	degree := 1
	for d := 1; d <= l.k; d++ {
		if u <= l.cdf[d] {
			degree = d
			break
		}
	}
	// Choose `degree` distinct source blocks.
	perm := src.Perm(l.k)
	nb := append([]int(nil), perm[:degree]...)
	return nb
}

// EncodeSymbol produces encoded symbol id from the source blocks. Every
// source block must have length BlockSize.
func (l *LT) EncodeSymbol(id uint32, source [][]byte) ([]byte, error) {
	if len(source) != l.k {
		return nil, fmt.Errorf("fountain: need %d source blocks, got %d", l.k, len(source))
	}
	for idx, blk := range source {
		if len(blk) != l.blockSize {
			return nil, fmt.Errorf("fountain: source block %d has %d bytes, want %d", idx, len(blk), l.blockSize)
		}
	}
	out := make([]byte, l.blockSize)
	for _, idx := range l.Neighbors(id) {
		blk := source[idx]
		for i := range out {
			out[i] ^= blk[i]
		}
	}
	return out, nil
}

// Decoder incrementally recovers the source blocks from received encoded
// symbols using the standard peeling (belief-propagation) process.
type Decoder struct {
	lt        *LT
	recovered [][]byte
	numKnown  int
	// pending encoded symbols that still reference unknown blocks.
	pending []pendingSymbol
}

type pendingSymbol struct {
	data      []byte
	neighbors map[int]bool
}

// NewDecoder returns an empty decoder for the given LT code.
func NewDecoder(lt *LT) *Decoder {
	return &Decoder{lt: lt, recovered: make([][]byte, lt.k)}
}

// Progress returns the number of recovered source blocks.
func (d *Decoder) Progress() int { return d.numKnown }

// Done reports whether every source block has been recovered.
func (d *Decoder) Done() bool { return d.numKnown == d.lt.k }

// Source returns the recovered source blocks; it is only meaningful once Done
// returns true.
func (d *Decoder) Source() [][]byte {
	out := make([][]byte, len(d.recovered))
	for i, b := range d.recovered {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// AddSymbol feeds one received encoded symbol (identified by its id) to the
// peeling decoder. Erased symbols are simply never added.
func (d *Decoder) AddSymbol(id uint32, data []byte) error {
	if len(data) != d.lt.blockSize {
		return fmt.Errorf("fountain: symbol has %d bytes, want %d", len(data), d.lt.blockSize)
	}
	nb := map[int]bool{}
	buf := append([]byte(nil), data...)
	for _, idx := range d.lt.Neighbors(id) {
		if d.recovered[idx] != nil {
			xorInto(buf, d.recovered[idx])
			continue
		}
		nb[idx] = true
	}
	if len(nb) == 0 {
		return nil // redundant symbol
	}
	d.pending = append(d.pending, pendingSymbol{data: buf, neighbors: nb})
	d.peel()
	return nil
}

// peel repeatedly resolves degree-one pending symbols until no more progress
// is possible.
func (d *Decoder) peel() {
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(d.pending); i++ {
			p := &d.pending[i]
			if len(p.neighbors) != 1 {
				continue
			}
			var idx int
			for k := range p.neighbors {
				idx = k
			}
			if d.recovered[idx] == nil {
				d.recovered[idx] = append([]byte(nil), p.data...)
				d.numKnown++
			}
			// Remove this symbol and substitute the recovered block into the
			// remaining pending symbols.
			d.pending[i] = d.pending[len(d.pending)-1]
			d.pending = d.pending[:len(d.pending)-1]
			i--
			for j := range d.pending {
				q := &d.pending[j]
				if q.neighbors[idx] {
					xorInto(q.data, d.recovered[idx])
					delete(q.neighbors, idx)
				}
			}
			progress = true
		}
	}
}

func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}
