package adapt

import (
	"testing"

	"spinal/internal/fading"
	"spinal/internal/ldpc"
)

func TestDefaultTableOrderedAndValid(t *testing.T) {
	table := DefaultTable()
	if len(table) != 8 {
		t.Fatalf("table has %d entries, want the 8 Figure 2 configurations", len(table))
	}
	prevRate, prevThreshold := -1.0, -100.0
	for _, cfg := range table {
		bps, err := cfg.BitsPerSymbol()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Label(), err)
		}
		if bps <= prevRate {
			t.Fatalf("table not ordered by peak rate at %s", cfg.Label())
		}
		if cfg.MinSNRdB <= prevThreshold {
			t.Fatalf("table not ordered by threshold at %s", cfg.Label())
		}
		prevRate, prevThreshold = bps, cfg.MinSNRdB
		if _, err := ldpc.NewWiFiLike(cfg.Rate); err != nil {
			t.Fatalf("%s: invalid rate", cfg.Label())
		}
	}
}

func TestThresholdPolicy(t *testing.T) {
	table := DefaultTable()
	p := ThresholdPolicy{}
	if got := p.Choose(-10, table); got != 0 {
		t.Fatalf("at -10 dB the policy must fall back to the most robust entry, got %d", got)
	}
	if got := p.Choose(100, table); got != len(table)-1 {
		t.Fatalf("at huge SNR the policy should pick the fastest entry, got %d", got)
	}
	mid := p.Choose(12, table)
	if table[mid].MinSNRdB > 12 {
		t.Fatalf("policy chose a configuration above the estimate: %s", table[mid].Label())
	}
	// A margin makes the choice more conservative (never faster).
	cautious := ThresholdPolicy{MarginDB: 3}.Choose(12, table)
	if cautious > mid {
		t.Fatal("margin made the policy more aggressive")
	}
	if p.Name() == "" || (ThresholdPolicy{MarginDB: 1}).Name() == "" {
		t.Error("empty policy name")
	}
}

func TestRunAdaptiveStaticChannel(t *testing.T) {
	// On a clean static 20 dB channel the adaptive scheme should settle on a
	// high-rate configuration and deliver most of its frames.
	cfg := Config{
		Trace:        fading.Constant{Level: 20},
		SymbolBudget: 2500,
		Seed:         1,
	}
	res, err := RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames == 0 || res.Symbols < cfg.SymbolBudget {
		t.Fatalf("adaptive run too short: %+v", res)
	}
	if res.Throughput < 2.5 {
		t.Fatalf("adaptive throughput at a constant 20 dB = %v, want >= 2.5", res.Throughput)
	}
	if float64(res.FrameErrors) > 0.2*float64(res.Frames) {
		t.Fatalf("too many frame errors on a constant channel: %+v", res)
	}
}

func TestRunRatelessStaticChannel(t *testing.T) {
	cfg := Config{
		Trace:        fading.Constant{Level: 20},
		SymbolBudget: 2000,
		Seed:         2,
	}
	res, err := RunRateless(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput < 3 {
		t.Fatalf("rateless throughput at 20 dB = %v, want >= 3", res.Throughput)
	}
	if res.FrameErrors != 0 {
		t.Fatalf("rateless scheme lost %d packets on a clean 20 dB channel", res.FrameErrors)
	}
}

func TestCompareUnderFastFading(t *testing.T) {
	// Gilbert-Elliott channel whose state flips faster than the feedback
	// delay: the reactive scheme keeps acting on stale estimates while the
	// rateless scheme just spends more or fewer symbols per packet. The
	// rateless throughput should be at least as good.
	trace, err := fading.NewGilbertElliott(22, 4, 700, 700, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Trace:         trace,
		SymbolBudget:  3500,
		EstimateDelay: 1400, // two state dwell times stale
		EstimateErrDB: 2,
		Seed:          3,
	}
	adaptive, rateless, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Scheme == rateless.Scheme {
		t.Fatal("schemes not labelled")
	}
	if rateless.Throughput <= 0 {
		t.Fatal("rateless scheme delivered nothing")
	}
	if rateless.Throughput < adaptive.Throughput {
		t.Fatalf("rateless (%v bits/sym) should not lose to stale-estimate adaptation (%v bits/sym) under fast fading",
			rateless.Throughput, adaptive.Throughput)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunAdaptive(Config{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := RunRateless(Config{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, _, err := Compare(Config{}); err == nil {
		t.Error("nil trace accepted by Compare")
	}
}
