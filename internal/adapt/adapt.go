// Package adapt implements the status-quo baseline the paper argues against
// in §1: reactive bit-rate adaptation over a table of fixed PHY
// configurations (LDPC code rate x modulation), driven by a delayed and noisy
// SNR estimate. It also runs the rateless spinal code over exactly the same
// time-varying channel, so experiments can compare "measure, pick a rate,
// hope" against "just keep sending symbols until acknowledged".
package adapt

import (
	"fmt"

	"spinal/internal/core"
	"spinal/internal/fading"
	"spinal/internal/ldpc"
	"spinal/internal/mathx"
	"spinal/internal/modem"
	"spinal/internal/rng"
)

// PHYConfig is one row of a conventional rate-adaptation table.
type PHYConfig struct {
	// Rate is the LDPC code rate of this configuration.
	Rate ldpc.Rate
	// Modulation names the constellation (see modem.ByName).
	Modulation string
	// MinSNRdB is the threshold above which the configuration is considered
	// usable by the threshold policy.
	MinSNRdB float64
}

// BitsPerSymbol returns the peak spectral efficiency of the configuration.
func (p PHYConfig) BitsPerSymbol() (float64, error) {
	mod, err := modem.ByName(p.Modulation)
	if err != nil {
		return 0, err
	}
	return p.Rate.Value() * float64(mod.BitsPerSymbol()), nil
}

// Label names the configuration in experiment output.
func (p PHYConfig) Label() string {
	return fmt.Sprintf("%s %s", p.Rate, p.Modulation)
}

// DefaultTable returns an 802.11-style adaptation table built from the
// Figure 2 baseline configurations, ordered from most robust to fastest. The
// thresholds are the SNRs at which each configuration's frame error rate
// drops below a few percent for the codes in internal/ldpc.
func DefaultTable() []PHYConfig {
	return []PHYConfig{
		{Rate: ldpc.Rate12, Modulation: "BPSK", MinSNRdB: 2},
		{Rate: ldpc.Rate12, Modulation: "QAM-4", MinSNRdB: 5},
		{Rate: ldpc.Rate34, Modulation: "QAM-4", MinSNRdB: 8.5},
		{Rate: ldpc.Rate12, Modulation: "QAM-16", MinSNRdB: 11.5},
		{Rate: ldpc.Rate34, Modulation: "QAM-16", MinSNRdB: 15.5},
		{Rate: ldpc.Rate23, Modulation: "QAM-64", MinSNRdB: 19.5},
		{Rate: ldpc.Rate34, Modulation: "QAM-64", MinSNRdB: 21.5},
		{Rate: ldpc.Rate56, Modulation: "QAM-64", MinSNRdB: 24},
	}
}

// Policy selects a configuration index given the sender's SNR estimate.
type Policy interface {
	// Choose returns the index into table of the configuration to use for the
	// next frame. It must return a valid index (fall back to the most robust
	// configuration rather than refusing to send).
	Choose(estimateDB float64, table []PHYConfig) int
	// Name identifies the policy in experiment output.
	Name() string
}

// ThresholdPolicy picks the fastest configuration whose threshold is at or
// below the estimate minus a safety margin — the standard SNR-based rate
// selection the paper's related work surveys.
type ThresholdPolicy struct {
	// MarginDB is subtracted from the estimate before consulting the table; a
	// positive margin trades throughput for robustness against estimate
	// error.
	MarginDB float64
}

// Choose implements Policy.
func (p ThresholdPolicy) Choose(estimateDB float64, table []PHYConfig) int {
	eff := estimateDB - p.MarginDB
	best := 0
	for i, cfg := range table {
		if eff >= cfg.MinSNRdB {
			best = i
		}
	}
	return best
}

// Name implements Policy.
func (p ThresholdPolicy) Name() string {
	return fmt.Sprintf("threshold(margin=%.1fdB)", p.MarginDB)
}

// Result summarizes one scheme's run over a channel trace.
type Result struct {
	// Scheme names what was run ("rate-adaptation" or "spinal-rateless").
	Scheme string
	// DeliveredBits counts information bits confirmed delivered.
	DeliveredBits int
	// Symbols is the number of channel symbols consumed.
	Symbols int
	// Throughput is DeliveredBits / Symbols.
	Throughput float64
	// Frames is the number of frames (or messages) attempted.
	Frames int
	// FrameErrors counts frames (or messages) that failed.
	FrameErrors int
}

// Config drives a comparison run.
type Config struct {
	// Trace is the time-varying channel; required.
	Trace fading.Trace
	// SymbolBudget is the number of channel uses each scheme may spend.
	SymbolBudget int
	// EstimateDelay is the age, in symbols, of the SNR estimate available to
	// the rate-adaptation policy.
	EstimateDelay int
	// EstimateErrDB is the standard deviation of the SNR measurement error.
	EstimateErrDB float64
	// Policy picks configurations for the adaptive scheme; nil selects
	// ThresholdPolicy{MarginDB: 1}.
	Policy Policy
	// Table is the adaptation table; nil selects DefaultTable.
	Table []PHYConfig
	// MessageBits is the spinal packet size; zero selects 288.
	MessageBits int
	// BeamWidth is the spinal decoder beam; zero selects 16.
	BeamWidth int
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) withDefaults() (Config, error) {
	if c.Trace == nil {
		return c, fmt.Errorf("adapt: nil trace")
	}
	if c.SymbolBudget < 1000 {
		c.SymbolBudget = 20000
	}
	if c.Policy == nil {
		c.Policy = ThresholdPolicy{MarginDB: 1}
	}
	if len(c.Table) == 0 {
		c.Table = DefaultTable()
	}
	if c.MessageBits == 0 {
		c.MessageBits = 288
	}
	if c.BeamWidth == 0 {
		c.BeamWidth = 16
	}
	return c, nil
}

// RunAdaptive simulates SNR-driven rate adaptation over the trace: before
// each 648-bit frame the sender consults its (delayed, noisy) SNR estimate,
// picks a configuration, and transmits; the receiver decodes with belief
// propagation. The run stops when the symbol budget is exhausted.
func RunAdaptive(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ch, err := fading.NewChannel(cfg.Trace, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	est, err := fading.NewEstimator(cfg.Trace, cfg.EstimateDelay, cfg.EstimateErrDB, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 3)

	// Pre-build the codes, decoders and modulations of every table entry.
	type entry struct {
		code *ldpc.Code
		dec  *ldpc.Decoder
		mod  modem.Modulation
	}
	entries := make([]entry, len(cfg.Table))
	for i, pc := range cfg.Table {
		code, err := ldpc.NewWiFiLike(pc.Rate)
		if err != nil {
			return nil, err
		}
		dec, err := ldpc.NewDecoder(code, ldpc.DefaultIterations)
		if err != nil {
			return nil, err
		}
		mod, err := modem.ByName(pc.Modulation)
		if err != nil {
			return nil, err
		}
		entries[i] = entry{code: code, dec: dec, mod: mod}
	}

	res := &Result{Scheme: "rate-adaptation"}
	for res.Symbols < cfg.SymbolBudget {
		idx := cfg.Policy.Choose(est.Estimate(ch.Position()), cfg.Table)
		if idx < 0 || idx >= len(entries) {
			return nil, fmt.Errorf("adapt: policy chose invalid configuration %d", idx)
		}
		e := entries[idx]

		info := make([]byte, e.code.K())
		for i := range info {
			info[i] = byte(src.Intn(2))
		}
		cw, err := e.code.Encode(info)
		if err != nil {
			return nil, err
		}
		syms, err := e.mod.Modulate(cw)
		if err != nil {
			return nil, err
		}
		// Transmit through the fading channel; the decoder is given the noise
		// variance of the estimated SNR (it cannot know the instantaneous
		// truth either).
		rx := make([]complex128, len(syms))
		for i, x := range syms {
			rx[i] = ch.Corrupt(x)
		}
		assumedSigma2 := 1 / mathx.DBToLinear(est.Estimate(ch.Position()))
		llr := e.mod.Demodulate(rx, assumedSigma2)
		out, err := e.dec.Decode(llr)
		if err != nil {
			return nil, err
		}
		ok := out.Converged
		if ok {
			for i := range info {
				if out.Info[i] != info[i] {
					ok = false
					break
				}
			}
		}
		res.Frames++
		res.Symbols += len(syms)
		if ok {
			res.DeliveredBits += e.code.K()
		} else {
			res.FrameErrors++
		}
	}
	if res.Symbols > 0 {
		res.Throughput = float64(res.DeliveredBits) / float64(res.Symbols)
	}
	return res, nil
}

// RunRateless runs the spinal code over the same kind of trace: packets are
// sent ratelessly (genie-terminated, as in Figure 2) back to back until the
// symbol budget is exhausted.
func RunRateless(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	ch, err := fading.NewChannel(cfg.Trace, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	params := core.Params{K: 8, C: 10, MessageBits: cfg.MessageBits, Seed: core.DefaultSeed ^ cfg.Seed}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sched, err := core.NewStripedSchedule(params.NumSegments(), 8)
	if err != nil {
		return nil, err
	}
	msgSrc := rng.New(cfg.Seed + 4)

	res := &Result{Scheme: "spinal-rateless"}
	for res.Symbols < cfg.SymbolBudget {
		msg := core.RandomMessage(msgSrc, cfg.MessageBits)
		session := core.SessionConfig{
			Params:    params,
			BeamWidth: cfg.BeamWidth,
			Schedule:  sched,
			// Per-pass attempts with geometric backoff keep the decoding work
			// linear in the number of passes even when the packet straddles a
			// deep fade.
			Attempts:   core.AttemptBackoff{DensePasses: 6},
			MaxSymbols: 40 * params.NumSegments(),
		}
		out, err := core.RunSymbolSession(session, msg, ch.Corrupt, core.GenieVerifier(msg, cfg.MessageBits))
		if err != nil {
			return nil, err
		}
		res.Frames++
		res.Symbols += out.ChannelUses
		if out.Success {
			res.DeliveredBits += cfg.MessageBits
		} else {
			res.FrameErrors++
		}
	}
	if res.Symbols > 0 {
		res.Throughput = float64(res.DeliveredBits) / float64(res.Symbols)
	}
	return res, nil
}

// Compare runs both schemes over the same trace and returns their results.
func Compare(cfg Config) (adaptive, rateless *Result, err error) {
	adaptive, err = RunAdaptive(cfg)
	if err != nil {
		return nil, nil, err
	}
	rateless, err = RunRateless(cfg)
	if err != nil {
		return nil, nil, err
	}
	return adaptive, rateless, nil
}
