package core

import (
	"testing"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

// TestPositionsIntoMatchesPos pins the batch position fill against per-index
// Pos calls for both built-in schedules, across batch boundaries that do not
// line up with pass boundaries.
func TestPositionsIntoMatchesPos(t *testing.T) {
	const nseg = 7
	seq, err := NewSequentialSchedule(nseg)
	if err != nil {
		t.Fatal(err)
	}
	str, err := NewStripedSchedule(nseg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Schedule{seq, str} {
		for _, start := range []int{0, 1, nseg - 1, nseg, 2*nseg + 3} {
			for _, n := range []int{0, 1, nseg, 2*nseg + 5} {
				dst := make([]SymbolPos, n)
				PositionsInto(sched, start, dst)
				for i, got := range dst {
					if want := sched.Pos(start + i); got != want {
						t.Fatalf("%s: PositionsInto(start=%d)[%d] = %+v, want %+v",
							sched.Name(), start, i, got, want)
					}
				}
			}
		}
	}
}

// TestEncodeBatchMatchesSymbolAt pins the vectorized encoder fill against the
// scalar path, and its validation against malformed positions.
func TestEncodeBatchMatchesSymbolAt(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(17, p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewStripedSchedule(p.NumSegments(), 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	poss := make([]SymbolPos, n)
	PositionsInto(sched, 0, poss)
	syms := make([]complex128, n)
	if err := enc.EncodeBatch(syms, poss); err != nil {
		t.Fatal(err)
	}
	for i, pos := range poss {
		if want := enc.SymbolAt(pos); syms[i] != want {
			t.Fatalf("EncodeBatch[%d] = %v, want %v", i, syms[i], want)
		}
	}
	bits := make([]byte, n)
	if err := enc.CodedBitBatch(bits, poss); err != nil {
		t.Fatal(err)
	}
	for i, pos := range poss {
		if want := enc.CodedBit(pos.Spine, pos.Pass); bits[i] != want {
			t.Fatalf("CodedBitBatch[%d] = %d, want %d", i, bits[i], want)
		}
	}

	if err := enc.EncodeBatch(syms[:1], poss); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := enc.EncodeBatch(syms[:1], []SymbolPos{{Spine: p.NumSegments(), Pass: 0}}); err == nil {
		t.Error("out-of-range spine accepted")
	}
	if err := enc.CodedBitBatch(bits[:1], []SymbolPos{{Spine: 0, Pass: -1}}); err == nil {
		t.Error("negative pass accepted")
	}
}

// TestAddBatchMatchesAdd is the scalar/batch equivalence pin of the AWGN
// decode path: folding one batch of observations with AddBatch and decoding
// once must yield bit-identical message, cost and node accounting to feeding
// the same symbols through per-symbol Add calls.
func TestAddBatchMatchesAdd(t *testing.T) {
	p := DefaultParams()
	msg := testMessage(21, p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewStripedSchedule(p.NumSegments(), 8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewAWGNdB(8, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * p.NumSegments()
	poss := make([]SymbolPos, n)
	PositionsInto(sched, 0, poss)
	tx := make([]complex128, n)
	if err := enc.EncodeBatch(tx, poss); err != nil {
		t.Fatal(err)
	}
	rx := make([]complex128, n)
	ch.CorruptBlock(rx, tx)

	scalarObs, _ := NewObservations(p.NumSegments())
	for i, pos := range poss {
		if err := scalarObs.Add(pos, rx[i]); err != nil {
			t.Fatal(err)
		}
	}
	batchObs, _ := NewObservations(p.NumSegments())
	if err := batchObs.AddBatch(poss, rx); err != nil {
		t.Fatal(err)
	}
	if scalarObs.Count() != batchObs.Count() || scalarObs.DirtyLevel() != batchObs.DirtyLevel() {
		t.Fatalf("containers disagree: count %d/%d, dirty %d/%d",
			scalarObs.Count(), batchObs.Count(), scalarObs.DirtyLevel(), batchObs.DirtyLevel())
	}

	scalarDec, _ := NewBeamDecoder(p, 16)
	defer scalarDec.Close()
	batchDec, _ := NewBeamDecoder(p, 16)
	defer batchDec.Close()
	a, err := scalarDec.Decode(scalarObs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batchDec.Decode(batchObs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(a.Message, b.Message, p.MessageBits) {
		t.Fatal("scalar and batch observation paths decoded different messages")
	}
	if a.Cost != b.Cost {
		t.Fatalf("costs diverged: %v vs %v", a.Cost, b.Cost)
	}
	if a.NodesExpanded != b.NodesExpanded || a.NodesRefreshed != b.NodesRefreshed {
		t.Fatalf("node accounting diverged: %d/%d vs %d/%d",
			a.NodesExpanded, a.NodesRefreshed, b.NodesExpanded, b.NodesRefreshed)
	}
}

// TestBitAddBatchMatchesAdd is the BSC counterpart of TestAddBatchMatchesAdd.
func TestBitAddBatchMatchesAdd(t *testing.T) {
	p := Params{K: 4, C: 8, MessageBits: 16, Seed: DefaultSeed}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	msg := testMessage(23, p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSequentialSchedule(p.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	bsc, err := channel.NewBSC(0.05, rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	n := 12 * p.NumSegments()
	poss := make([]SymbolPos, n)
	PositionsInto(sched, 0, poss)
	tx := make([]byte, n)
	if err := enc.CodedBitBatch(tx, poss); err != nil {
		t.Fatal(err)
	}
	rx := make([]byte, n)
	bsc.CorruptBits(rx, tx)

	scalarObs, _ := NewBitObservations(p.NumSegments())
	for i, pos := range poss {
		if err := scalarObs.Add(pos, rx[i]); err != nil {
			t.Fatal(err)
		}
	}
	batchObs, _ := NewBitObservations(p.NumSegments())
	if err := batchObs.AddBatch(poss, rx); err != nil {
		t.Fatal(err)
	}

	scalarDec, _ := NewBeamDecoder(p, 16)
	defer scalarDec.Close()
	batchDec, _ := NewBeamDecoder(p, 16)
	defer batchDec.Close()
	a, err := scalarDec.DecodeBits(scalarObs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batchDec.DecodeBits(batchObs)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualMessages(a.Message, b.Message, p.MessageBits) || a.Cost != b.Cost ||
		a.NodesExpanded != b.NodesExpanded || a.NodesRefreshed != b.NodesRefreshed {
		t.Fatalf("BSC scalar/batch paths diverged: cost %v/%v, nodes %d/%d",
			a.Cost, b.Cost, a.NodesExpanded, b.NodesExpanded)
	}
	if !EqualMessages(a.Message, msg, p.MessageBits) {
		t.Fatal("BSC decode at p=0.05 with 12 passes failed")
	}
}

// TestAddBatchValidation pins the all-or-nothing contract: a bad position (or
// a length mismatch) must leave the container untouched, and an empty batch
// must not bump the generation.
func TestAddBatchValidation(t *testing.T) {
	obs, err := NewObservations(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Add(SymbolPos{Spine: 2, Pass: 0}, 1+1i); err != nil {
		t.Fatal(err)
	}
	obs.MarkClean()
	gen, count := obs.Generation(), obs.Count()

	bad := []SymbolPos{{Spine: 0, Pass: 0}, {Spine: 4, Pass: 0}}
	if err := obs.AddBatch(bad, make([]complex128, 2)); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if err := obs.AddBatch(bad[:1], make([]complex128, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if obs.Generation() != gen || obs.Count() != count || obs.DirtyLevel() != obs.NumSegments() {
		t.Fatalf("failed batch mutated the container: gen %d→%d, count %d→%d, dirty %d",
			gen, obs.Generation(), count, obs.Count(), obs.DirtyLevel())
	}
	if err := obs.AddBatch(nil, nil); err != nil {
		t.Fatal(err)
	}
	if obs.Generation() != gen {
		t.Fatal("empty batch bumped the generation")
	}
	// One successful batch: one generation bump, dirty at the batch minimum.
	poss := []SymbolPos{{Spine: 3, Pass: 0}, {Spine: 1, Pass: 0}}
	if err := obs.AddBatch(poss, make([]complex128, 2)); err != nil {
		t.Fatal(err)
	}
	if obs.Generation() != gen+1 {
		t.Fatalf("batch bumped generation by %d, want 1", obs.Generation()-gen)
	}
	if obs.DirtyLevel() != 1 {
		t.Fatalf("dirty level = %d, want 1", obs.DirtyLevel())
	}

	bobs, err := NewBitObservations(4)
	if err != nil {
		t.Fatal(err)
	}
	bgen := bobs.Generation()
	if err := bobs.AddBatch([]SymbolPos{{Spine: 0, Pass: 0}}, []byte{2}); err == nil {
		t.Fatal("non-bit value accepted")
	}
	if bobs.Generation() != bgen || bobs.Count() != 0 {
		t.Fatal("failed bit batch mutated the container")
	}
}

// TestRunChannelSessionMatchesScalarReference pins the batched transmission
// loop against a from-first-principles reimplementation of the historical
// per-symbol session: same attempt points, same noise stream, bit-identical
// results — on AWGN with both the adaptive and the backoff policy.
func TestRunChannelSessionMatchesScalarReference(t *testing.T) {
	p := DefaultParams()
	sched, err := NewStripedSchedule(p.NumSegments(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		attempts AttemptPolicy
	}{
		{"adaptive", AttemptAdaptive{}},
		{"backoff", AttemptBackoff{DensePasses: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				msg := RandomMessage(rng.New(uint64(trial)*31+5), p.MessageBits)
				cfg := SessionConfig{
					Params:     p,
					BeamWidth:  16,
					Schedule:   sched,
					Attempts:   tc.attempts,
					MaxSymbols: 40 * p.NumSegments(),
				}
				ch, err := channel.NewAWGNdB(6, rng.New(uint64(trial)*37+7))
				if err != nil {
					t.Fatal(err)
				}
				got, err := RunChannelSession(cfg, msg, ch, GenieVerifier(msg, p.MessageBits))
				if err != nil {
					t.Fatal(err)
				}
				refCh, err := channel.NewAWGNdB(6, rng.New(uint64(trial)*37+7))
				if err != nil {
					t.Fatal(err)
				}
				want, err := scalarReferenceSession(cfg, msg, refCh.Corrupt, GenieVerifier(msg, p.MessageBits))
				if err != nil {
					t.Fatal(err)
				}
				if got.Success != want.Success || got.ChannelUses != want.ChannelUses ||
					got.Attempts != want.Attempts || got.NodesExpanded != want.NodesExpanded ||
					got.NodesRefreshed != want.NodesRefreshed ||
					!EqualMessages(got.Decoded, want.Decoded, p.MessageBits) {
					t.Fatalf("trial %d: batch session diverged from the scalar reference:\n got %+v\nwant %+v",
						trial, got, want)
				}
			}
		})
	}
}

// scalarReferenceSession is a line-for-line reimplementation of the
// pre-batch RunSymbolSession loop, kept in the tests as the equivalence
// reference for the batched transmission path.
func scalarReferenceSession(cfg SessionConfig, message []byte, corrupt func(complex128) complex128, verify Verifier) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(cfg.Params, message)
	if err != nil {
		return nil, err
	}
	dec, _, release, err := sessionDecoder(cfg)
	if err != nil {
		return nil, err
	}
	defer release()
	obs, err := NewObservations(cfg.Params.NumSegments())
	if err != nil {
		return nil, err
	}
	res := &Result{}
	nseg := cfg.Params.NumSegments()
	minUses := (cfg.Params.MessageBits + 2*cfg.Params.C - 1) / (2 * cfg.Params.C)
	for i := 0; i < cfg.MaxSymbols; i++ {
		pos := cfg.Schedule.Pos(i)
		if err := obs.Add(pos, corrupt(enc.SymbolAt(pos))); err != nil {
			return nil, err
		}
		received := i + 1
		if received < minUses || !cfg.Attempts.ShouldAttempt(received, nseg) {
			continue
		}
		out, err := dec.Decode(obs)
		if err != nil {
			return nil, err
		}
		res.Attempts++
		res.NodesExpanded += int64(out.NodesExpanded)
		res.NodesRefreshed += int64(out.NodesRefreshed)
		res.Decoded = out.Message
		if verify(out.Message) {
			res.Success = true
			res.ChannelUses = received
			return res, nil
		}
	}
	res.ChannelUses = cfg.MaxSymbols
	return res, nil
}
