package core

import (
	"runtime"
	"testing"
	"testing/quick"

	"spinal/internal/channel"
	"spinal/internal/rng"
)

// Tests for the parallel decode engine. The contract under test is strict:
// a decode sharded across any number of worker goroutines must produce a
// DecodeResult that is byte-identical to the serial decode — same message,
// same cost, same NodesExpanded/NodesRefreshed accounting — with incremental
// reuse on or off, over both channel kinds.

// forceParallel lowers the sharding thresholds so that even the small trees
// used by tests exercise the multi-worker paths, restoring them afterwards.
func forceParallel(t *testing.T) {
	t.Helper()
	oldMin, oldShard := minParallelChildren, minShardChildren
	minParallelChildren, minShardChildren = 1, 1
	t.Cleanup(func() { minParallelChildren, minShardChildren = oldMin, oldShard })
}

// parallelisms returns the worker counts the equivalence tests sweep,
// including GOMAXPROCS as required by the acceptance criteria.
func parallelisms() []int {
	ps := []int{1, 3}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 3 {
		ps = append(ps, g)
	}
	return ps
}

// decodeVariant is one (parallelism, incremental) decoder configuration fed
// the same symbol stream as the serial reference.
type decodeVariant struct {
	workers     int
	incremental bool
	dec         *BeamDecoder
	last        *DecodeResult
}

func newVariants(t *testing.T, p Params, beam int) []*decodeVariant {
	t.Helper()
	var vs []*decodeVariant
	for _, inc := range []bool{true, false} {
		for _, w := range parallelisms() {
			dec, err := NewBeamDecoder(p, beam)
			if err != nil {
				t.Fatal(err)
			}
			dec.SetIncremental(inc)
			dec.SetParallelism(w)
			t.Cleanup(dec.Close)
			vs = append(vs, &decodeVariant{workers: w, incremental: inc, dec: dec})
		}
	}
	return vs
}

// checkVariants asserts that every variant with the same incremental setting
// produced a byte-identical DecodeResult, and that incremental and
// from-scratch variants agree on message and cost.
func checkVariants(t *testing.T, p Params, vs []*decodeVariant, attempt int) {
	t.Helper()
	ref := vs[0].last
	for _, v := range vs[1:] {
		got := v.last
		if !EqualMessages(got.Message, ref.Message, p.MessageBits) || got.Cost != ref.Cost {
			t.Fatalf("attempt %d: workers=%d incremental=%v decoded (%x, %v), reference (%x, %v)",
				attempt, v.workers, v.incremental, got.Message, got.Cost, ref.Message, ref.Cost)
		}
		if v.incremental == vs[0].incremental &&
			(got.NodesExpanded != ref.NodesExpanded || got.NodesRefreshed != ref.NodesRefreshed) {
			t.Fatalf("attempt %d: workers=%d accounting (%d expanded, %d refreshed) differs from serial (%d, %d)",
				attempt, v.workers, got.NodesExpanded, got.NodesRefreshed, ref.NodesExpanded, ref.NodesRefreshed)
		}
	}
}

// TestParallelMatchesSerialAWGN interleaves Observe and Decode over an AWGN
// channel for every (parallelism, incremental) combination and checks each
// attempt against the serial incremental reference.
func TestParallelMatchesSerialAWGN(t *testing.T) {
	forceParallel(t)
	for _, tc := range incrementalCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			sched := caseSchedule(t, tc)
			msg := RandomMessage(rng.New(p.Seed^0x5eed), p.MessageBits)
			enc, err := NewEncoder(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			vs := newVariants(t, p, 8)
			type stream struct {
				ch  *channel.AWGN
				obs *Observations
			}
			streams := make([]*stream, len(vs))
			for i := range vs {
				// Each variant replays an identical noisy symbol stream from
				// its own channel instance and observation container.
				ch, err := channel.NewAWGNdB(6, rng.New(p.Seed^0xbeef))
				if err != nil {
					t.Fatal(err)
				}
				obs, err := NewObservations(p.NumSegments())
				if err != nil {
					t.Fatal(err)
				}
				streams[i] = &stream{ch: ch, obs: obs}
			}
			total := tc.passes * p.NumSegments()
			for i := 0; i < total; i++ {
				pos := sched.Pos(i)
				clean := enc.SymbolAt(pos)
				for s := range streams {
					if err := streams[s].obs.Add(pos, streams[s].ch.Corrupt(clean)); err != nil {
						t.Fatal(err)
					}
				}
				if (i+1)%tc.attemptEvery != 0 {
					continue
				}
				for v := range vs {
					out, err := vs[v].dec.Decode(streams[v].obs)
					if err != nil {
						t.Fatal(err)
					}
					vs[v].last = out
				}
				checkVariants(t, p, vs, i+1)
			}
		})
	}
}

// TestParallelMatchesSerialBSC is the binary-channel counterpart.
func TestParallelMatchesSerialBSC(t *testing.T) {
	forceParallel(t)
	for _, tc := range incrementalCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			sched := caseSchedule(t, tc)
			msg := RandomMessage(rng.New(p.Seed^0xcafe), p.MessageBits)
			enc, err := NewEncoder(p, msg)
			if err != nil {
				t.Fatal(err)
			}
			vs := newVariants(t, p, 8)
			type stream struct {
				bsc *channel.BSC
				obs *BitObservations
			}
			streams := make([]*stream, len(vs))
			for i := range vs {
				bsc, err := channel.NewBSC(0.08, rng.New(p.Seed^0x7777))
				if err != nil {
					t.Fatal(err)
				}
				obs, err := NewBitObservations(p.NumSegments())
				if err != nil {
					t.Fatal(err)
				}
				streams[i] = &stream{bsc: bsc, obs: obs}
			}
			// The BSC's Hamming metric produces constant integer costs, so
			// cost ties are everywhere — exactly the regime where the total
			// order has to keep shards in agreement.
			total := (tc.passes + 6) * p.NumSegments()
			for i := 0; i < total; i++ {
				pos := sched.Pos(i)
				clean := enc.CodedBit(pos.Spine, pos.Pass)
				for s := range streams {
					if err := streams[s].obs.Add(pos, streams[s].bsc.CorruptBit(clean)); err != nil {
						t.Fatal(err)
					}
				}
				if (i+1)%tc.attemptEvery != 0 {
					continue
				}
				for v := range vs {
					out, err := vs[v].dec.DecodeBits(streams[v].obs)
					if err != nil {
						t.Fatal(err)
					}
					vs[v].last = out
				}
				checkVariants(t, p, vs, i+1)
			}
		})
	}
}

// TestParallelDecodeProperty is the quick-check form of the equivalence
// claim: for arbitrary parameters, messages and observation counts, a
// 3-worker decode equals the serial decode bit for bit.
func TestParallelDecodeProperty(t *testing.T) {
	forceParallel(t)
	prop := func(seed uint64, kRaw, bitsRaw, obsCount uint8) bool {
		k := int(kRaw%6) + 2
		bits := int(bitsRaw%48) + 8
		p := Params{K: k, C: 8, MessageBits: bits, Seed: seed | 1}
		msg := RandomMessage(rng.New(seed^0xabc), bits)
		enc, err := NewEncoder(p, msg)
		if err != nil {
			return false
		}
		serial, err := NewBeamDecoder(p, 8)
		if err != nil {
			return false
		}
		serial.SetParallelism(1)
		sharded, err := NewBeamDecoder(p, 8)
		if err != nil {
			return false
		}
		sharded.SetParallelism(3)
		defer sharded.Close()
		mkObs := func() *Observations {
			obs, _ := NewObservations(p.NumSegments())
			ch, _ := channel.NewAWGNdB(4, rng.New(seed^0x99))
			sched, _ := NewSequentialSchedule(p.NumSegments())
			n := int(obsCount%64) + p.NumSegments()
			for i := 0; i < n; i++ {
				pos := sched.Pos(i)
				if obs.Add(pos, ch.Corrupt(enc.SymbolAt(pos))) != nil {
					return nil
				}
			}
			return obs
		}
		a, b := mkObs(), mkObs()
		if a == nil || b == nil {
			return false
		}
		outA, err := serial.Decode(a)
		if err != nil {
			return false
		}
		outB, err := sharded.Decode(b)
		if err != nil {
			return false
		}
		return EqualMessages(outA.Message, outB.Message, bits) &&
			outA.Cost == outB.Cost &&
			outA.NodesExpanded == outB.NodesExpanded &&
			outA.NodesRefreshed == outB.NodesRefreshed
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSetParallelismMidStream switches worker counts between attempts on one
// observation container; the decode must stay bit-identical to an untouched
// serial decoder throughout, including the incremental workspace reuse.
func TestSetParallelismMidStream(t *testing.T) {
	forceParallel(t)
	p := Params{K: 4, C: 8, MessageBits: 24, Seed: 909}
	msg := RandomMessage(rng.New(11), p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSequentialSchedule(p.NumSegments())
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*BeamDecoder, *Observations, *channel.AWGN) {
		dec, err := NewBeamDecoder(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		obs, err := NewObservations(p.NumSegments())
		if err != nil {
			t.Fatal(err)
		}
		ch, err := channel.NewAWGNdB(6, rng.New(313))
		if err != nil {
			t.Fatal(err)
		}
		return dec, obs, ch
	}
	refDec, refObs, refCh := mk()
	refDec.SetParallelism(1)
	dec, obs, ch := mk()
	defer dec.Close()
	workers := []int{1, 2, 4, 3, 1, 5}
	for i := 0; i < 5*p.NumSegments(); i++ {
		pos := sched.Pos(i)
		clean := enc.SymbolAt(pos)
		if err := refObs.Add(pos, refCh.Corrupt(clean)); err != nil {
			t.Fatal(err)
		}
		if err := obs.Add(pos, ch.Corrupt(clean)); err != nil {
			t.Fatal(err)
		}
		dec.SetParallelism(workers[i%len(workers)])
		want, err := refDec.Decode(refObs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(got.Message, want.Message, p.MessageBits) || got.Cost != want.Cost ||
			got.NodesExpanded != want.NodesExpanded || got.NodesRefreshed != want.NodesRefreshed {
			t.Fatalf("symbol %d: decode diverged after switching to %d workers", i+1, workers[i%len(workers)])
		}
	}
}

// TestDecoderCloseIsReusable checks that Close only releases the helper
// goroutines: a closed decoder must keep decoding correctly (lazily
// recreating its pool) and Close must be idempotent.
func TestDecoderCloseIsReusable(t *testing.T) {
	forceParallel(t)
	p := Params{K: 4, C: 8, MessageBits: 16, Seed: 77}
	msg := testMessage(3, p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	obs := observeNoiseless(t, enc, 2)
	dec, err := NewBeamDecoder(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	dec.SetParallelism(4)
	for round := 0; round < 3; round++ {
		out, err := dec.Decode(obs)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualMessages(out.Message, msg, p.MessageBits) {
			t.Fatalf("round %d: wrong decode after Close", round)
		}
		dec.Close()
		dec.Close() // idempotent
		obs.Reset()
		for pass := 0; pass < 2; pass++ {
			for s := 0; s < enc.NumSegments(); s++ {
				if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, enc.Symbol(s, pass)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestParallelismAccessorsAndDefaults pins the configuration surface: the
// default is GOMAXPROCS, zero resets to the default, and explicit values are
// reported back.
func TestParallelismAccessorsAndDefaults(t *testing.T) {
	p := DefaultParams()
	dec, err := NewBeamDecoder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default parallelism = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	dec.SetParallelism(7)
	if got := dec.Parallelism(); got != 7 {
		t.Fatalf("Parallelism() = %d after SetParallelism(7)", got)
	}
	dec.SetParallelism(0)
	if got := dec.Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetParallelism(0) should restore the GOMAXPROCS default, got %d", got)
	}
}
