package core

import "fmt"

// Observations accumulates the symbols received so far for one message,
// grouped by the spine value they were generated from. The decoder sums
// per-pass costs over all observations of a spine value (§3.2), so the same
// container naturally supports any number of passes and any puncturing.
type Observations struct {
	spines [][]symbolObs
	count  int
}

type symbolObs struct {
	pass int
	y    complex128
}

// NewObservations returns an empty container for a code with nseg spine
// values.
func NewObservations(nseg int) (*Observations, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: observations need at least one spine value, got %d", nseg)
	}
	return &Observations{spines: make([][]symbolObs, nseg)}, nil
}

// Add records the received value y for the symbol at pos.
func (o *Observations) Add(pos SymbolPos, y complex128) error {
	if pos.Spine < 0 || pos.Spine >= len(o.spines) {
		return fmt.Errorf("core: spine index %d out of range [0,%d)", pos.Spine, len(o.spines))
	}
	if pos.Pass < 0 {
		return fmt.Errorf("core: negative pass %d", pos.Pass)
	}
	o.spines[pos.Spine] = append(o.spines[pos.Spine], symbolObs{pass: pos.Pass, y: y})
	o.count++
	return nil
}

// Count returns the total number of received symbols.
func (o *Observations) Count() int { return o.count }

// NumSegments returns the number of spine values the container was sized for.
func (o *Observations) NumSegments() int { return len(o.spines) }

// PerSpine returns how many symbols have been received for spine value t.
func (o *Observations) PerSpine(t int) int {
	if t < 0 || t >= len(o.spines) {
		return 0
	}
	return len(o.spines[t])
}

// Reset discards all recorded observations, retaining the allocation.
func (o *Observations) Reset() {
	for i := range o.spines {
		o.spines[i] = o.spines[i][:0]
	}
	o.count = 0
}

// BitObservations is the binary-channel counterpart of Observations: it
// stores received coded bits (possibly flipped by a BSC) grouped by spine
// value.
type BitObservations struct {
	spines [][]bitObs
	count  int
}

type bitObs struct {
	pass int
	bit  byte
}

// NewBitObservations returns an empty container for nseg spine values.
func NewBitObservations(nseg int) (*BitObservations, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: observations need at least one spine value, got %d", nseg)
	}
	return &BitObservations{spines: make([][]bitObs, nseg)}, nil
}

// Add records a received coded bit (0 or 1) for the position pos.
func (o *BitObservations) Add(pos SymbolPos, bit byte) error {
	if pos.Spine < 0 || pos.Spine >= len(o.spines) {
		return fmt.Errorf("core: spine index %d out of range [0,%d)", pos.Spine, len(o.spines))
	}
	if pos.Pass < 0 {
		return fmt.Errorf("core: negative pass %d", pos.Pass)
	}
	if bit != 0 && bit != 1 {
		return fmt.Errorf("core: coded bit must be 0 or 1, got %d", bit)
	}
	o.spines[pos.Spine] = append(o.spines[pos.Spine], bitObs{pass: pos.Pass, bit: bit})
	o.count++
	return nil
}

// Count returns the total number of received coded bits.
func (o *BitObservations) Count() int { return o.count }

// NumSegments returns the number of spine values the container was sized for.
func (o *BitObservations) NumSegments() int { return len(o.spines) }

// PerSpine returns how many coded bits have been received for spine value t.
func (o *BitObservations) PerSpine(t int) int {
	if t < 0 || t >= len(o.spines) {
		return 0
	}
	return len(o.spines[t])
}

// Reset discards all recorded observations, retaining the allocation.
func (o *BitObservations) Reset() {
	for i := range o.spines {
		o.spines[i] = o.spines[i][:0]
	}
	o.count = 0
}
