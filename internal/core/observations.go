package core

import "fmt"

// validatePositions rejects any position outside a code with nseg spine
// values. It is the shared up-front check of every batch entry point
// (encoder fills and observation appends), so a failed batch can leave its
// target untouched.
func validatePositions(poss []SymbolPos, nseg int) error {
	for _, pos := range poss {
		if pos.Spine < 0 || pos.Spine >= nseg {
			return fmt.Errorf("core: spine index %d out of range [0,%d)", pos.Spine, nseg)
		}
		if pos.Pass < 0 {
			return fmt.Errorf("core: negative pass %d", pos.Pass)
		}
	}
	return nil
}

// Observations accumulates the symbols received so far for one message,
// grouped by the spine value they were generated from. The decoder sums
// per-pass costs over all observations of a spine value (§3.2), so the same
// container naturally supports any number of passes and any puncturing.
//
// The container also tracks which spine values (tree levels) have changed
// since the last decode: DirtyLevel reports the lowest level touched since
// MarkClean, and Generation increments on every mutation. The decoder's
// workspace uses the pair to resume the beam search from the first dirty
// level instead of the root on repeated decode attempts. Dirty tracking is
// designed for one decoding consumer per container (which the sessions, the
// facade and the link receiver all satisfy); a second consumer is detected
// through the MarkClean watermark and costs both decoders their incremental
// reuse, never their correctness.
type Observations struct {
	spines [][]symbolObs
	count  int
	gen    uint64
	epoch  uint64
	dirty  int
	// cleanGen is the generation at which MarkClean last ran. A decoder
	// whose workspace generation disagrees with it knows another consumer
	// consumed (and cleared) dirty state in between, so the dirty level no
	// longer covers everything that changed since its own last attempt.
	cleanGen uint64
}

type symbolObs struct {
	pass int
	y    complex128
}

// NewObservations returns an empty container for a code with nseg spine
// values.
func NewObservations(nseg int) (*Observations, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: observations need at least one spine value, got %d", nseg)
	}
	return &Observations{spines: make([][]symbolObs, nseg)}, nil
}

// Add records the received value y for the symbol at pos.
func (o *Observations) Add(pos SymbolPos, y complex128) error {
	if pos.Spine < 0 || pos.Spine >= len(o.spines) {
		return fmt.Errorf("core: spine index %d out of range [0,%d)", pos.Spine, len(o.spines))
	}
	if pos.Pass < 0 {
		return fmt.Errorf("core: negative pass %d", pos.Pass)
	}
	o.spines[pos.Spine] = append(o.spines[pos.Spine], symbolObs{pass: pos.Pass, y: y})
	o.count++
	o.gen++
	if pos.Spine < o.dirty {
		o.dirty = pos.Spine
	}
	return nil
}

// AddBatch records one received value per position — a whole frame or pass at
// a time. The batch is validated before anything is recorded (an invalid
// position leaves the container untouched), appends happen in slice order (so
// a batch add is indistinguishable, observation for observation, from the
// equivalent sequence of Adds), and the whole batch costs one generation bump
// and one dirty-level update instead of one per symbol.
func (o *Observations) AddBatch(poss []SymbolPos, ys []complex128) error {
	if len(poss) != len(ys) {
		return fmt.Errorf("core: AddBatch positions length %d != values length %d", len(poss), len(ys))
	}
	if len(poss) == 0 {
		return nil
	}
	if err := validatePositions(poss, len(o.spines)); err != nil {
		return err
	}
	for i, pos := range poss {
		o.spines[pos.Spine] = append(o.spines[pos.Spine], symbolObs{pass: pos.Pass, y: ys[i]})
		if pos.Spine < o.dirty {
			o.dirty = pos.Spine
		}
	}
	o.count += len(poss)
	o.gen++
	return nil
}

// Count returns the total number of received symbols.
func (o *Observations) Count() int { return o.count }

// Generation returns a counter that increments on every mutation (Add or
// Reset). The decoder compares generations to detect whether anything changed
// between two attempts.
func (o *Observations) Generation() uint64 { return o.gen }

// Epoch returns a counter that increments only on Reset. Within one epoch
// the per-spine observation lists are append-only, which is what lets the
// decoder extend cached per-level cost sums instead of recomputing them; a
// new epoch forces a full rebuild.
func (o *Observations) Epoch() uint64 { return o.epoch }

// DirtyLevel returns the lowest spine index mutated since the last MarkClean,
// or NumSegments() if nothing changed. A fresh container reports level 0 so
// that the first decode runs from the root.
func (o *Observations) DirtyLevel() int { return o.dirty }

// MarkClean resets the dirty watermark; the decoder calls it after folding
// the current observations into its workspace.
func (o *Observations) MarkClean() {
	o.dirty = len(o.spines)
	o.cleanGen = o.gen
}

// NumSegments returns the number of spine values the container was sized for.
func (o *Observations) NumSegments() int { return len(o.spines) }

// PerSpine returns how many symbols have been received for spine value t.
func (o *Observations) PerSpine(t int) int {
	if t < 0 || t >= len(o.spines) {
		return 0
	}
	return len(o.spines[t])
}

// Reset discards all recorded observations, retaining the allocation. The
// whole container becomes dirty, so the next decode runs from the root.
func (o *Observations) Reset() {
	for i := range o.spines {
		o.spines[i] = o.spines[i][:0]
	}
	o.count = 0
	o.gen++
	o.epoch++
	o.dirty = 0
}

// BitObservations is the binary-channel counterpart of Observations: it
// stores received coded bits (possibly flipped by a BSC) grouped by spine
// value, with the same dirty-level tracking for incremental decoding.
type BitObservations struct {
	spines   [][]bitObs
	count    int
	gen      uint64
	epoch    uint64
	dirty    int
	cleanGen uint64
}

type bitObs struct {
	pass int
	bit  byte
}

// NewBitObservations returns an empty container for nseg spine values.
func NewBitObservations(nseg int) (*BitObservations, error) {
	if nseg < 1 {
		return nil, fmt.Errorf("core: observations need at least one spine value, got %d", nseg)
	}
	return &BitObservations{spines: make([][]bitObs, nseg)}, nil
}

// Add records a received coded bit (0 or 1) for the position pos.
func (o *BitObservations) Add(pos SymbolPos, bit byte) error {
	if pos.Spine < 0 || pos.Spine >= len(o.spines) {
		return fmt.Errorf("core: spine index %d out of range [0,%d)", pos.Spine, len(o.spines))
	}
	if pos.Pass < 0 {
		return fmt.Errorf("core: negative pass %d", pos.Pass)
	}
	if bit != 0 && bit != 1 {
		return fmt.Errorf("core: coded bit must be 0 or 1, got %d", bit)
	}
	o.spines[pos.Spine] = append(o.spines[pos.Spine], bitObs{pass: pos.Pass, bit: bit})
	o.count++
	o.gen++
	if pos.Spine < o.dirty {
		o.dirty = pos.Spine
	}
	return nil
}

// AddBatch records one received coded bit per position, with the same
// all-or-nothing validation and single generation bump as
// Observations.AddBatch.
func (o *BitObservations) AddBatch(poss []SymbolPos, bits []byte) error {
	if len(poss) != len(bits) {
		return fmt.Errorf("core: AddBatch positions length %d != bits length %d", len(poss), len(bits))
	}
	if len(poss) == 0 {
		return nil
	}
	if err := validatePositions(poss, len(o.spines)); err != nil {
		return err
	}
	for _, bit := range bits {
		if bit != 0 && bit != 1 {
			return fmt.Errorf("core: coded bit must be 0 or 1, got %d", bit)
		}
	}
	for i, pos := range poss {
		o.spines[pos.Spine] = append(o.spines[pos.Spine], bitObs{pass: pos.Pass, bit: bits[i]})
		if pos.Spine < o.dirty {
			o.dirty = pos.Spine
		}
	}
	o.count += len(poss)
	o.gen++
	return nil
}

// Count returns the total number of received coded bits.
func (o *BitObservations) Count() int { return o.count }

// Generation returns a counter that increments on every mutation.
func (o *BitObservations) Generation() uint64 { return o.gen }

// Epoch returns a counter that increments only on Reset; see
// Observations.Epoch.
func (o *BitObservations) Epoch() uint64 { return o.epoch }

// DirtyLevel returns the lowest spine index mutated since the last MarkClean,
// or NumSegments() if nothing changed.
func (o *BitObservations) DirtyLevel() int { return o.dirty }

// MarkClean resets the dirty watermark.
func (o *BitObservations) MarkClean() {
	o.dirty = len(o.spines)
	o.cleanGen = o.gen
}

// NumSegments returns the number of spine values the container was sized for.
func (o *BitObservations) NumSegments() int { return len(o.spines) }

// PerSpine returns how many coded bits have been received for spine value t.
func (o *BitObservations) PerSpine(t int) int {
	if t < 0 || t >= len(o.spines) {
		return 0
	}
	return len(o.spines[t])
}

// Reset discards all recorded observations, retaining the allocation. The
// whole container becomes dirty, so the next decode runs from the root.
func (o *BitObservations) Reset() {
	for i := range o.spines {
		o.spines[i] = o.spines[i][:0]
	}
	o.count = 0
	o.gen++
	o.epoch++
	o.dirty = 0
}
