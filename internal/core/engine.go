package core

import (
	"math"
	"slices"
)

// This file is the beam decoder's generic search engine, instantiated once
// per cost metric (float64 and int32). The data layout is structure-of-
// arrays end to end: frontiers are parallel slices of spine values, packed
// costs and packed (parent, seg) keys, and cached child expansions are
// parallel spine/local-cost slices whose (parent, seg) identity is implied
// by the parent-major index — so the expansion, refresh and selection loops
// run flat over dense arrays instead of chasing per-node structs.
//
// Selection is candidate-buffered quickselect rather than a bounded heap:
// expansion loops append (cost, key, spine) candidates — after a warm-up, a
// single predictable bound test rejects most of them — and the buffer is
// compacted to the keep-smallest set with an in-place quickselect when it
// fills. Only the surviving <= keep nodes of a level are ever fully sorted
// (by key, to canonicalize the frontier). Per-worker selections are merged
// by concatenation into the global selector followed by one final
// compaction. All of this is membership-equivalent to the previous heapsort
// selector: the strict (cost, parent, seg) total order has no ties, so the
// keep-smallest set of a level is unique no matter which algorithm retains
// it or how the offers were sharded.

// cand is one selection candidate: a child's reconstituted path cost, its
// packed (parent, seg) identity, and its spine value. key orders candidates
// exactly like the (parent, seg) tie-break: parent in the high bits, segment
// in the low 16 (segments are at most 2^16 because k <= 16).
type cand[C costValue] struct {
	cost  C
	key   int64
	spine uint64
}

// packKey builds a candidate key from a parent frontier index and a segment.
func packKey(parent int32, seg uint16) int64 {
	return int64(parent)<<16 | int64(seg)
}

// candLess is the strict total order the beam selection is defined over:
// cost first, then the packed (parent, seg) key as the tie-break. Because
// every (parent, seg) pair is unique within a level the order has no ties,
// so the `keep` smallest candidates of a level are a unique set —
// independent of the order in which they are offered. That independence is
// what makes sharded (parallel) expansion bit-identical to serial expansion:
// each shard retains its own keep-smallest subset, and the keep-smallest of
// the union of those subsets equals the keep-smallest of the whole level.
func candLess[C costValue](a, b *cand[C]) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	return a.key < b.key
}

// selector retains the `keep` smallest candidates (under candLess) offered
// to it. Offers append into a bounded buffer — after the first compaction,
// candidates that cannot beat the current keep-th smallest are rejected with
// a single compare — and compaction quickselects the buffer down to the
// keep-smallest set. Buffers are reused across levels and attempts.
type selector[C costValue] struct {
	keep    int
	limit   int
	nodes   []cand[C]
	bounded bool
	bound   cand[C]
}

func newSelector[C costValue](keep int) *selector[C] {
	s := &selector[C]{}
	s.reset(keep)
	return s
}

// reset empties the selector and sets its retention bound, keeping the
// underlying buffer.
func (s *selector[C]) reset(keep int) {
	s.keep = keep
	limit := 2 * keep
	if limit < 1024 {
		// Amortize compaction for small beams: scanning ~1k candidates per
		// quickselect costs less than per-offer heap maintenance would.
		limit = 1024
	}
	if keep >= unlimited {
		limit = int(^uint(0) >> 1) // ML decoder: never compact
	}
	s.limit = limit
	s.nodes = s.nodes[:0]
	s.bounded = false
}

// offer considers one candidate. The bound test is exact, not heuristic: a
// candidate no smaller than the current keep-th smallest can never be in the
// final keep-smallest set. The rejection path is kept small enough to inline
// into the expansion loops — at steady state most candidates die on this one
// predictable compare — with the accept path split into push.
func (s *selector[C]) offer(n cand[C]) {
	// The condition is !candLess(&n, &s.bound), expanded so the rejection
	// path fits the inlining budget of the generic shape instantiation.
	if s.bounded && (n.cost > s.bound.cost || (n.cost == s.bound.cost && n.key >= s.bound.key)) {
		return
	}
	s.push(n)
}

// push appends an accepted candidate, compacting when the buffer fills.
// Kept out of line so offer stays under the inlining budget — the rejection
// compare is the per-candidate steady state, the append is not.
//
//go:noinline
func (s *selector[C]) push(n cand[C]) {
	s.nodes = append(s.nodes, n)
	if len(s.nodes) >= s.limit {
		s.compact()
	}
}

// compact quickselects the buffer down to the keep smallest candidates and
// tightens the rejection bound to their maximum.
func (s *selector[C]) compact() {
	if len(s.nodes) <= s.keep {
		return
	}
	selectSmallest(s.nodes, s.keep)
	s.nodes = s.nodes[:s.keep]
	s.bound = s.nodes[s.keep-1]
	s.bounded = true
}

// pending returns the buffered candidates (a superset of the final
// selection, at most limit-1 of them) for merging into another selector.
func (s *selector[C]) pending() []cand[C] {
	return s.nodes
}

// canonical compacts to the final keep-smallest set and sorts it by key —
// (parent, seg), the deterministic generation order of a level's children.
// Unlike cost order it does not depend on the cost values, so a frontier
// whose membership is unchanged between attempts compares structurally equal
// even though every cost moved. This is the only full sort on the selection
// path, and it touches at most the surviving `keep` nodes.
func (s *selector[C]) canonical() []cand[C] {
	if len(s.nodes) > s.keep {
		selectSmallest(s.nodes, s.keep)
		s.nodes = s.nodes[:s.keep]
	}
	slices.SortFunc(s.nodes, func(a, b cand[C]) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
	return s.nodes
}

// selectSmallest partially orders a so that a[:k] holds its k smallest
// elements (under candLess) with a[k-1] their maximum. Iterative quickselect
// with median-of-three pivots; small ranges fall through to insertion sort.
// Keys are unique, so there are no equal elements to worry about.
func selectSmallest[C costValue](a []cand[C], k int) {
	lo, hi := 0, len(a)
	target := k - 1
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		if candLess(&a[mid], &a[lo]) {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if candLess(&a[hi-1], &a[mid]) {
			a[hi-1], a[mid] = a[mid], a[hi-1]
			if candLess(&a[mid], &a[lo]) {
				a[mid], a[lo] = a[lo], a[mid]
			}
		}
		pivot := a[mid]
		i, j := lo, hi-1
		for i <= j {
			for candLess(&a[i], &pivot) {
				i++
			}
			for candLess(&pivot, &a[j]) {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case target <= j:
			hi = j + 1
		case target >= i:
			lo = i
		default:
			return
		}
	}
	ins := a[lo:hi]
	for i := 1; i < len(ins); i++ {
		for j := i; j > 0 && candLess(&ins[j], &ins[j-1]); j-- {
			ins[j], ins[j-1] = ins[j-1], ins[j]
		}
	}
}

// frontier is one level's surviving nodes in structure-of-arrays layout:
// spine values, packed path costs, and packed (parent, seg) keys, all in
// canonical key order.
type frontier[C costValue] struct {
	spine []uint64
	cost  []C
	key   []int64
}

func (f *frontier[C]) len() int { return len(f.spine) }

func (f *frontier[C]) clear() {
	f.spine, f.cost, f.key = f.spine[:0], f.cost[:0], f.key[:0]
}

func (f *frontier[C]) parent(i int) int32 { return int32(f.key[i] >> 16) }
func (f *frontier[C]) seg(i int) uint16   { return uint16(f.key[i] & 0xffff) }

// setFromCands replaces the frontier contents with a selection output
// (already in canonical key order), reusing the backing arrays.
func (f *frontier[C]) setFromCands(nodes []cand[C]) {
	n := len(nodes)
	f.spine = sized(f.spine, n)
	f.cost = sized(f.cost, n)
	f.key = sized(f.key, n)
	for i := range nodes {
		f.spine[i] = nodes[i].spine
		f.cost[i] = nodes[i].cost
		f.key[i] = nodes[i].key
	}
}

// sameAsCands reports whether the frontier holds the same nodes — same
// spine, same (parent, seg) key, in the same order — as a selection output.
// Costs are deliberately not compared: downstream caches reconstruct
// cumulative costs from the parent frontier at selection time, so only
// structural change invalidates them.
func (f *frontier[C]) sameAsCands(nodes []cand[C]) bool {
	if len(f.spine) != len(nodes) {
		return false
	}
	for i := range nodes {
		if f.spine[i] != nodes[i].spine || f.key[i] != nodes[i].key {
			return false
		}
	}
	return true
}

// sized returns s resized to n elements, reallocating only on growth.
func sized[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// cachedLevel is the per-level workspace state retained between attempts.
// The cached child expansion is stored as parallel spine/local-cost slices
// in deterministic parent-major, segment-minor order, so child i's identity
// is (parent i/nSeg, seg i%nSeg) — no per-child parent or segment storage.
type cachedLevel[C costValue] struct {
	// childSpine/childLocal are the full expansion of the parent frontier;
	// childObs observations at this level are folded into each child's local
	// cost. valid reports whether they correspond to the frontier the level
	// was last expanded from.
	childSpine []uint64
	childLocal []C
	childObs   int
	valid      bool
	// front is the selection output of the latest attempt at this level;
	// prev is the one before it (the frontier the next level's cached
	// children were expanded from). The two are swapped, not copied, when
	// the level is re-selected.
	front frontier[C]
	prev  frontier[C]
}

// maxCachedChildren bounds the memory the workspace spends per level: an
// unobserved level expanded from a maxCand-wide parent frontier can produce
// maxCand·2^k children, far more than is worth materializing. Levels whose
// expansion exceeds the bound are re-expanded from scratch on every attempt
// (exactly the pre-incremental behavior) instead of cached.
const maxCachedChildren = 1 << 17

// workspace is the persistent state that makes repeated decode attempts
// incremental. It is owned by one engine and keyed to one observation
// container at a time.
type workspace[C costValue] struct {
	// obs identifies the observation container the cached state was built
	// from; a different container (or channel kind) resets the workspace.
	obs any
	// gen is the container generation at the end of the last attempt.
	gen uint64
	// epoch is the container epoch of the last attempt; a Reset starts a new
	// epoch, after which cached cost sums no longer describe the contents.
	epoch uint64
	// levels caches frontiers and expansions per tree level.
	levels []cachedLevel[C]
	// complete reports that the last attempt ran to completion, making the
	// cached state trustworthy.
	complete bool
	// sel is the reusable top-keep selector.
	sel selector[C]
	// segs is the reusable backtrack buffer.
	segs []uint64
	// scratchSpine/scratchLocal are reusable assembly buffers for rebuilt
	// child expansions.
	scratchSpine []uint64
	scratchLocal []C
	// blockSpine/blockLocal are the reusable one-parent-block buffers of the
	// serial streaming path.
	blockSpine []uint64
	blockLocal []C
	// pidx is a reusable spine→index table over a parent frontier (at most
	// MaxCandidates entries), used to match persisting parents between
	// attempts so their children blocks can be reused wholesale.
	pidx spineIndex
	// committed is the number of leading tree levels frozen by the
	// approximate search's prefix commit: attempts never resume above it,
	// and the frontiers of committed levels are pruned to the single
	// converged chain node. Always zero under the exact search.
	committed int
	// commitFresh is set when a commit has just raised the floor: the first
	// uncommitted level's retained frontier still holds parent indices into
	// the pre-prune frontier below it, so the next attempt must resume at
	// the floor (re-selecting every level from there) before those indices
	// may be walked again by a backtrack.
	commitFresh bool
	// laScore/laKeep are lookahead-narrowing scratch: per-candidate probe
	// scores and the retained-set marks.
	laScore []C
	laKeep  []bool
	// ancA/ancB/chain are prefix-commit scratch: ancestor index sets of the
	// final frontier and the converged chain's per-level indices.
	ancA  []int32
	ancB  []int32
	chain []int32
}

// invalidate discards all cached state (the buffers are kept for reuse).
func (ws *workspace[C]) invalidate() {
	ws.obs = nil
	ws.complete = false
	ws.committed = 0
	ws.commitFresh = false
	for i := range ws.levels {
		ws.levels[i].valid = false
		ws.levels[i].front.clear()
		ws.levels[i].prev.clear()
	}
}

// prepare sizes the workspace for nseg levels and decides which level the
// beam search must resume from for this attempt.
func (ws *workspace[C]) prepare(obs any, epoch, cleanGen uint64, dirty, nseg int, incremental bool) int {
	if len(ws.levels) != nseg {
		ws.levels = make([]cachedLevel[C], nseg)
		ws.complete = false
		ws.obs = nil
	}
	if !incremental || ws.obs != obs || !ws.complete || epoch != ws.epoch {
		ws.invalidate()
		ws.obs = obs
		return 0
	}
	if cleanGen != ws.gen {
		// The last MarkClean was not ours: another consumer decoded (and
		// cleared the dirty watermark) after observations we have not seen,
		// so the dirty level no longer covers everything that changed since
		// our own last attempt. Forfeit reuse rather than trust it.
		ws.invalidate()
		ws.obs = obs
		return 0
	}
	if dirty > nseg {
		dirty = nseg
	}
	if dirty < ws.committed {
		// Committed levels are frozen: observations that arrive above the
		// commit floor are never folded. Every surviving path runs through
		// the whole committed chain, so the missing terms shift all compared
		// costs by the same constant and the search order is unchanged —
		// forgoing prefix revision is the approximation.
		dirty = ws.committed
	}
	if ws.commitFresh {
		// A commit just pruned the frontiers above the floor; resume at the
		// floor once so every frontier from there down is re-selected
		// against the pruned parent before a backtrack walks its parent
		// indices again.
		if dirty > ws.committed {
			dirty = ws.committed
		}
		ws.commitFresh = false
	}
	return dirty
}

// levelCoster computes observation costs for hypothesized spine values at a
// tree level, in the engine's cost carrier. costTailMany extends the
// accumulated local cost of each spine in a batch with the terms of
// observations idx >= from, folded one term at a time in recording order; a
// full fold starts from zeroed locals with from = 0. The incremental refresh
// extends cached sums with exactly the additions a from-scratch fold would
// perform, in the same order — that is what makes incremental and
// from-scratch decodes bit-identical. (Batch order across spines is
// irrelevant: each spine's fold is independent.) Batching keeps the
// engine-to-coster interface dispatch off the per-child path: the engine
// issues one call per contiguous block of children, and the coster keeps its
// per-level state in registers across the block. prepareLevel runs
// single-threaded before a level is expanded, so costers can stage per-level
// scratch (flattened observation arrays; the quantized costers also snap the
// level's observations onto the integer grid) that the sharded cost folds
// then read concurrently.
type levelCoster[C costValue] interface {
	numObs(level int) int
	prepareLevel(level int)
	costTailMany(locals []C, spines []uint64, level, from int)
	// unitCost is the carrier magnitude of one unit of the exact metric's
	// natural cost scale (1 squared-Euclidean unit for AWGN, 1 bit flip for
	// BSC). The approximate search uses it to convert a metric-agnostic
	// cost gap into this engine's carrier.
	unitCost() float64
}

// Region kinds mirror the three expansion paths of engine.run.
const (
	regionRefresh = iota
	regionRebuild
	regionStream
)

// parRegion describes the parallel region in flight: which expansion path to
// run, its per-level inputs, and the shard geometry. It lives on the engine
// so dispatching a region allocates nothing.
type parRegion[C costValue] struct {
	kind     int
	coster   levelCoster[C]
	lv       *cachedLevel[C]
	parent   *frontier[C]
	t        int
	nObs     int
	nSeg     int
	reuse    bool
	outSpine []uint64
	outLocal []C
	units    int
	chunk    int
	keep     int
}

// parShard is one worker's private per-level workspace, reused across levels
// and attempts.
type parShard[C costValue] struct {
	sel       selector[C]
	expanded  int
	refreshed int
	// blockSpine/blockLocal are this shard's one-parent-block buffers for the
	// streaming path.
	blockSpine []uint64
	blockLocal []C
}

// block returns the shard's reusable n-sized child block buffers.
func (sh *parShard[C]) block(n int) ([]uint64, []C) {
	sh.blockSpine = sized(sh.blockSpine, n)
	sh.blockLocal = sized(sh.blockLocal, n)
	return sh.blockSpine, sh.blockLocal
}

// block returns the workspace's reusable n-sized child block buffers.
func (ws *workspace[C]) block(n int) ([]uint64, []C) {
	ws.blockSpine = sized(ws.blockSpine, n)
	ws.blockLocal = sized(ws.blockLocal, n)
	return ws.blockSpine, ws.blockLocal
}

// engine is one cost metric's instantiation of the beam search: the
// workspace, the root frontier, and the per-worker shard state. The decoder
// owns one engine per metric it has been asked to run and shares the worker
// pool between them.
type engine[C costValue, O costOps[C]] struct {
	d   *BeamDecoder
	ops O

	ws   workspace[C]
	root frontier[C]

	par       []parShard[C]
	region    parRegion[C]
	shardBody func(worker int)
}

// newEngine returns an engine whose root frontier is the virtual level -1:
// the single root node with the agreed initial spine value s0 = 0, zero
// cost, and parent index -1.
func newEngine[C costValue, O costOps[C]](d *BeamDecoder) *engine[C, O] {
	return &engine[C, O]{
		d: d,
		root: frontier[C]{
			spine: []uint64{0},
			cost:  []C{0},
			key:   []int64{packKey(-1, 0)},
		},
	}
}

// run executes the level-by-level beam search, resuming from the first dirty
// level when the workspace holds a completed previous attempt for the same
// observation container.
func (e *engine[C, O]) run(coster levelCoster[C], obs any, gen, epoch, cleanGen uint64, dirty int) *DecodeResult {
	d := e.d
	nseg := d.p.NumSegments()
	ws := &e.ws
	start := ws.prepare(obs, epoch, cleanGen, dirty, nseg, d.incremental)
	d.nodesExpanded = 0
	d.nodesRefreshed = 0
	d.nodesSaved = 0

	// Approximate search: all narrowing happens post-selection in the
	// single-threaded section of the level loop, so approximate decodes
	// remain bit-identical at every worker count, exactly like exact ones.
	// obsTotal counts the observations folded into path costs through the
	// current level; the gap filter uses it to turn the level's best cost
	// into an implicit per-observation noise estimate.
	sc := d.search
	approx := sc.Mode != SearchExact
	obsTotal := 0
	if approx {
		for t := 0; t < start; t++ {
			obsTotal += coster.numObs(t)
		}
	}

	// parentOK tracks whether the previous level's frontier is structurally
	// identical (same spine/parent/seg in the same order) to the one the
	// cached children of the current level were expanded from. At the resume
	// level it holds by construction: everything above the first dirty level
	// is untouched. oldParent is the frontier those children were expanded
	// from, kept for block-level reuse when the structure did change.
	parentOK := true
	oldParent := &e.root
	if start > 0 {
		oldParent = &ws.levels[start-1].front // unchanged above the dirty level
	}
	for t := start; t < nseg; t++ {
		parent := &e.root
		if t > 0 {
			parent = &ws.levels[t-1].front
		}
		lv := &ws.levels[t]
		nObs := coster.numObs(t)
		coster.prepareLevel(t)

		nSeg := 1 << uint(d.p.SegmentBits(t))
		keep := d.b
		if nObs == 0 {
			keep = d.maxCand
			// Bubble cap: under the exact search an unobserved level keeps
			// every candidate (maxCand), because with no local evidence any
			// child might win once observations arrive — and with sparse
			// schedules that breadth, times 2^k children each, dominates the
			// whole session's expansion count. The approximate modes keep only
			// the children of the cheapest few parents instead. Children of a
			// parent all inherit its path cost, so top-(W*nSeg) selection is
			// exactly "children of the W cheapest parents". No decode can
			// succeed while any level is unobserved (its segment would be a
			// blind guess), and once the level's first observation arrives the
			// resume re-selects it and everything above from evidence — so
			// the cap trades no delivered rate for the bulk of the savings.
			if approx && t < nseg-1 {
				if k := bubbleParents(sc.ExpandTop) * nSeg; k < keep {
					keep = k
				}
			}
		}
		ws.sel.reset(keep)

		switch {
		case parentOK && lv.valid:
			// Cached expansion: fold in only the observations that arrived
			// since the last attempt, one term at a time so the running sum
			// stays bit-identical to a from-scratch fold. Symbols for passes
			// already folded in are never recomputed, and no hash is replayed.
			if w := d.workersFor(len(lv.childSpine)); w > 1 {
				e.runRegion(w, parRegion[C]{kind: regionRefresh, coster: coster, lv: lv,
					parent: parent, t: t, nObs: nObs, nSeg: nSeg,
					units: len(lv.childSpine), keep: keep})
			} else {
				_, cb := ws.block(nSeg)
				d.nodesRefreshed += e.refreshRange(coster, lv, parent, t, nObs, nSeg, 0, len(lv.childSpine), &ws.sel, cb)
			}
			lv.childObs = nObs

		case d.incremental && parent.len()*nSeg <= maxCachedChildren:
			// The parent frontier changed structurally, so the cached
			// expansion no longer lines up index-for-index. But a parent
			// that persisted (same spine value) still produces the exact
			// same children block — child spines and this level's
			// observation costs depend only on the parent spine — so index
			// the old parents by spine and reuse whole blocks, extending
			// their cost sums term by term to the current observations.
			// Only children of genuinely new parents are expanded by hash
			// replay with a full cost computation.
			reuse := lv.valid && oldParent.len() > 0 && len(lv.childSpine) == oldParent.len()*nSeg
			if reuse {
				ws.pidx.reset(oldParent.len())
				for i, s := range oldParent.spine {
					ws.pidx.put(s, int32(i))
				}
			}
			need := parent.len() * nSeg
			outSpine := sized(ws.scratchSpine, need)
			outLocal := sized(ws.scratchLocal, need)
			if w := d.workersFor(need); w > 1 {
				e.runRegion(w, parRegion[C]{kind: regionRebuild, coster: coster, lv: lv,
					parent: parent, t: t, nObs: nObs, nSeg: nSeg, reuse: reuse,
					outSpine: outSpine, outLocal: outLocal, units: parent.len(), keep: keep})
			} else {
				_, cb := ws.block(nSeg)
				x, r := e.rebuildRange(coster, lv, parent, t, nObs, nSeg, reuse, 0, parent.len(), outSpine, outLocal, &ws.sel, cb)
				d.nodesExpanded += x
				d.nodesRefreshed += r
			}
			ws.scratchSpine, lv.childSpine = lv.childSpine[:0], outSpine
			ws.scratchLocal, lv.childLocal = lv.childLocal[:0], outLocal
			lv.childObs = nObs
			lv.valid = true

		default:
			// Over-budget (or non-incremental) expansion: stream children
			// straight through the selector without materializing them —
			// the pre-incremental behavior and memory footprint.
			lv.childSpine = lv.childSpine[:0]
			lv.childLocal = lv.childLocal[:0]
			lv.valid = false
			if w := d.workersFor(parent.len() * nSeg); w > 1 {
				e.runRegion(w, parRegion[C]{kind: regionStream, coster: coster,
					parent: parent, t: t, nSeg: nSeg, units: parent.len(), keep: keep})
			} else {
				bs, bl := ws.block(nSeg)
				d.nodesExpanded += e.streamRange(coster, parent, t, nSeg, 0, parent.len(), &ws.sel, bs, bl)
			}
			lv.childObs = nObs
		}

		// Canonicalize the selection to (parent, seg) order. The selection
		// buffer's order depends on cost values, so without this step any
		// cost perturbation would reshuffle the frontier and defeat the
		// structural-reuse check above even when the same B nodes survive.
		// The order is deterministic, so from-scratch and incremental runs
		// still agree exactly.
		newNodes := ws.sel.canonical()

		// Approximate narrowing runs between selection and installation, so
		// the stored frontier IS the narrowed one — parent indices stay
		// valid and the next level expands only the survivors. Unobserved
		// (punctured) levels keep their full maxCand breadth: their costs
		// carry no local evidence to prune on. The last level is left alone
		// too — the backtrack already picks the single best leaf.
		if approx {
			obsTotal += nObs
			if nObs > 0 && t < nseg-1 && len(newNodes) > 1 {
				newNodes = e.approxNarrow(coster, newNodes, t, nObs, obsTotal, sc)
			} else if nObs == 0 && t < nseg-1 {
				// Account the bubble cap's savings against what the exact
				// search would have retained (and the next level expanded).
				full := parent.len() * nSeg
				if full > d.maxCand {
					full = d.maxCand
				}
				if extra := full - len(newNodes); extra > 0 {
					d.nodesSaved += extra * (1 << uint(d.p.SegmentBits(t+1)))
				}
			}
		}

		// Stash this level's previous frontier for the next level's block
		// matching, compare structures, and install the new frontier. If the
		// structure held, the next level's cached children (keyed by parent
		// index and segment) remain valid even though the costs moved.
		parentOK = lv.front.sameAsCands(newNodes)
		lv.prev, lv.front = lv.front, lv.prev
		lv.front.setFromCands(newNodes)
		oldParent = &lv.prev
	}

	// Locate the lowest-cost leaf and walk back up the tree to recover the
	// message segments.
	leaves := &ws.levels[nseg-1].front
	best := 0
	for i := 1; i < leaves.len(); i++ {
		if leaves.cost[i] < leaves.cost[best] {
			best = i
		}
	}
	if cap(ws.segs) < nseg {
		ws.segs = make([]uint64, nseg)
	}
	segs := ws.segs[:nseg]
	idx := best
	for t := nseg - 1; t >= 0; t-- {
		f := &ws.levels[t].front
		segs[t] = uint64(f.seg(idx))
		idx = int(f.parent(idx))
	}
	msg := packSegments(d.p, segs)

	// Freeze converged prefixes after the backtrack (the walk above needs
	// the un-pruned parent indexing). Only worthwhile when the workspace
	// persists to the next attempt.
	if approx && d.incremental && sc.commitEnabled() {
		e.commitPrefix(coster, nseg, sc)
	}

	ws.gen = gen
	ws.epoch = epoch
	ws.complete = true
	return &DecodeResult{
		Message:        msg,
		Cost:           float64(leaves.cost[best]),
		NodesExpanded:  d.nodesExpanded,
		NodesRefreshed: d.nodesRefreshed,
		NodesSaved:     d.nodesSaved,
	}
}

// refreshRange is the cached-expansion path for children [lo, hi): extend
// each cached child's local cost sum with the observation terms that arrived
// since the level was last folded, then offer the reconstituted path costs.
// Each child's sum is extended term by term in recording order — the exact
// same additions a from-scratch fold would perform — so the result does not
// depend on how the range was sharded. The two phases are separate flat
// loops over the parallel child arrays. Returns the number of cached nodes
// reused.
func (e *engine[C, O]) refreshRange(coster levelCoster[C], lv *cachedLevel[C], parent *frontier[C], t, nObs, nSeg, lo, hi int, sel *selector[C], costBuf []C) int {
	if lo >= hi {
		return 0
	}
	if lv.childObs < nObs {
		coster.costTailMany(lv.childLocal[lo:hi], lv.childSpine[lo:hi], t, lv.childObs)
	}
	// Offer path costs parent block by parent block: the layout is
	// parent-major, so (parent, seg) identity is derived from the index. The
	// block's path costs are reconstituted into costBuf in one batched add,
	// and the selector's rejection test is replicated inline (see
	// selector.offer) so the common rejected candidate costs one compare, no
	// call.
	pi := lo / nSeg
	i := lo
	for i < hi {
		end := min((pi+1)*nSeg, hi)
		var base C
		if t > 0 {
			base = parent.cost[pi]
		}
		costs := costBuf[:end-i]
		copy(costs, lv.childLocal[i:end])
		e.ops.AddTo(costs, base)
		keyBase := int64(pi) << 16
		segBase := pi * nSeg
		for bi := 0; i < end; i, bi = i+1, bi+1 {
			cost := costs[bi]
			key := keyBase | int64(i-segBase)
			if sel.bounded && (cost > sel.bound.cost || (cost == sel.bound.cost && key >= sel.bound.key)) {
				continue
			}
			sel.push(cand[C]{cost: cost, key: key, spine: lv.childSpine[i]})
		}
		pi++
	}
	return hi - lo
}

// rebuildRange expands parents [lo, hi) into their children, writing each
// parent's block at its global offset pi*nSeg in outSpine/outLocal and
// offering every child to sel. Parents that persisted from the previous
// frontier (found through the workspace spine index when reuse is set) have
// their cached children blocks reused with a term-by-term cost extension;
// new parents are expanded by hash replay with a full cost fold. Returns
// (freshly expanded, refreshed) node counts.
func (e *engine[C, O]) rebuildRange(coster levelCoster[C], lv *cachedLevel[C], parent *frontier[C], t, nObs, nSeg int, reuse bool, lo, hi int, outSpine []uint64, outLocal []C, sel *selector[C], costBuf []C) (expanded, refreshed int) {
	d := e.d
	costBuf = costBuf[:nSeg]
	for pi := lo; pi < hi; pi++ {
		ps := parent.spine[pi]
		var base C
		if t > 0 {
			base = parent.cost[pi]
		}
		block := -1
		if reuse {
			if j, ok := e.ws.pidx.get(ps); ok {
				block = int(j) * nSeg
			}
		}
		keyBase := int64(pi) << 16
		off := pi * nSeg
		outS := outSpine[off : off+nSeg]
		outL := outLocal[off : off+nSeg]
		if block >= 0 {
			copy(outS, lv.childSpine[block:block+nSeg])
			copy(outL, lv.childLocal[block:block+nSeg])
			coster.costTailMany(outL, outS, t, lv.childObs)
			refreshed += nSeg
		} else {
			for seg := 0; seg < nSeg; seg++ {
				outS[seg] = d.family.Next(ps, uint64(seg))
			}
			coster.costTailMany(outL, outS, t, 0) // from = 0 overwrites
			expanded += nSeg
		}
		// outL is retained as this level's cache, so the path costs are
		// reconstituted into the scratch buffer in one batched add.
		copy(costBuf, outL)
		e.ops.AddTo(costBuf, base)
		for seg := 0; seg < nSeg; seg++ {
			cost := costBuf[seg]
			key := keyBase | int64(seg)
			if sel.bounded && (cost > sel.bound.cost || (cost == sel.bound.cost && key >= sel.bound.key)) {
				continue
			}
			sel.push(cand[C]{cost: cost, key: key, spine: outS[seg]})
		}
	}
	return expanded, refreshed
}

// streamRange expands parents [lo, hi) one parent block at a time through the
// passed block buffers (at least nSeg long) and the selector, without
// retaining the children — the over-budget and non-incremental path. Returns
// the number of nodes expanded.
func (e *engine[C, O]) streamRange(coster levelCoster[C], parent *frontier[C], t, nSeg, lo, hi int, sel *selector[C], blockSpine []uint64, blockLocal []C) int {
	d := e.d
	blockSpine = blockSpine[:nSeg]
	blockLocal = blockLocal[:nSeg]
	for pi := lo; pi < hi; pi++ {
		ps := parent.spine[pi]
		var base C
		if t > 0 {
			base = parent.cost[pi]
		}
		keyBase := int64(pi) << 16
		for seg := 0; seg < nSeg; seg++ {
			blockSpine[seg] = d.family.Next(ps, uint64(seg))
		}
		coster.costTailMany(blockLocal, blockSpine, t, 0) // from = 0 overwrites
		e.ops.AddTo(blockLocal, base)                     // children are not retained, so add in place
		for seg := 0; seg < nSeg; seg++ {
			cost := blockLocal[seg]
			key := keyBase | int64(seg)
			if sel.bounded && (cost > sel.bound.cost || (cost == sel.bound.cost && key >= sel.bound.key)) {
				continue
			}
			sel.push(cand[C]{cost: cost, key: key, spine: blockSpine[seg]})
		}
	}
	return (hi - lo) * nSeg
}

// runRegion executes one sharded level expansion on w workers — the calling
// goroutine is worker 0, the pool helpers take the rest — then merges the
// per-shard selections into the global selector (ws.sel, already reset by
// the level loop) and folds the shard work counters into the decoder
// totals. The merge is concatenation plus the global selector's own
// compaction: under the total order the surviving membership is unique
// whatever the merge order, and the level loop's canonical() sort fixes the
// frontier layout.
func (e *engine[C, O]) runRegion(w int, region parRegion[C]) {
	d := e.d
	if len(e.par) != d.workers {
		e.par = make([]parShard[C], d.workers)
	}
	d.ensurePool()
	if e.shardBody == nil {
		e.shardBody = e.runShard // one closure for the engine's lifetime
	}
	region.chunk = (region.units + w - 1) / w
	e.region = region
	d.pool.dispatch(w, e.shardBody)
	e.region = parRegion[C]{} // do not pin the observation container between attempts
	for i := 0; i < w; i++ {
		sh := &e.par[i]
		for _, n := range sh.sel.pending() {
			e.ws.sel.offer(n)
		}
		d.nodesExpanded += sh.expanded
		d.nodesRefreshed += sh.refreshed
	}
}

// costLimit converts an exact-unit gap above a best cost into the engine's
// carrier, saturating the int32 carrier so an over-wide gap prunes nothing
// instead of wrapping.
func costLimit[C costValue](best C, gap float64) C {
	v := float64(best) + gap
	var out C
	switch p := any(&out).(type) {
	case *float64:
		*p = v
	case *int32:
		if v >= math.MaxInt32 {
			*p = math.MaxInt32
		} else {
			*p = int32(v)
		}
	}
	return out
}

// approxNarrow applies the approximate search's post-selection filters to a
// level's canonical selection: cost-gap pruning first (drop candidates the
// running best already dominates by more than the gap), then lookahead
// narrowing (keep only the top-M candidates ranked by a half-level probe of
// each one's cheapest child). Both preserve the canonical key order, so the
// narrowed set installs as a frontier exactly like an unfiltered one, and
// both run in the level loop's single-threaded section, so results do not
// depend on the worker count.
//
// The per-level gap is self-scaling: best/obsTotal — the best path's average
// cost per observation — is an implicit estimate of the channel's noise
// energy (the true path's cost is almost entirely noise), and a candidate is
// discarded when its excess over the best exceeds CostGap such units per
// observation of the narrowed level (paths that differ at the current
// segment accrue one excess term per observation of it). Working in units of
// the observed best cost keeps one default meaningful across SNRs, channels
// and cost carriers, where any fixed absolute gap would prune everything at
// one operating point and nothing at another.
func (e *engine[C, O]) approxNarrow(coster levelCoster[C], nodes []cand[C], t, nObs, obsTotal int, sc SearchConfig) []cand[C] {
	d := e.d
	// Saved-work accounting: every dropped survivor would have expanded a
	// full child block at the next level.
	nSegNext := 1 << uint(d.p.SegmentBits(t+1))
	if sc.gapEnabled() {
		best := nodes[0].cost
		for i := 1; i < len(nodes); i++ {
			if nodes[i].cost < best {
				best = nodes[i].cost
			}
		}
		gap := sc.CostGap * coster.unitCost() // absolute, in exact-metric units
		if sc.PerLevel {
			gap = sc.CostGap * float64(nObs) * float64(best) / float64(obsTotal)
		}
		limit := costLimit(best, gap)
		out := nodes[:0]
		for _, n := range nodes {
			if n.cost > limit {
				continue
			}
			out = append(out, n)
		}
		d.nodesSaved += (len(nodes) - len(out)) * nSegNext
		nodes = out
	}
	if sc.lookaheadEnabled() && len(nodes) > sc.ExpandTop {
		nodes = e.lookaheadNarrow(coster, nodes, t, nSegNext, sc)
	}
	return nodes
}

// lookaheadNarrow keeps sc.ExpandTop candidates of a selection: half by
// path cost, half ranked by path cost plus a lookahead probe, where the
// probe expands a stride-subsampled slice of each candidate's children at
// the next level (hash replay plus a full cost fold — counted as expanded
// nodes) and adds the cheapest probed child's local cost to the candidate's
// own. When the next level
// has no observations the probe carries no information, and the frontier is
// left untouched rather than truncated blind — punctured levels keep their
// breadth. The kept set is returned in canonical key order.
func (e *engine[C, O]) lookaheadNarrow(coster levelCoster[C], nodes []cand[C], t, nSegNext int, sc SearchConfig) []cand[C] {
	d := e.d
	ws := &e.ws
	next := t + 1
	if coster.numObs(next) == 0 {
		return nodes
	}
	probes := sc.Lookahead
	if probes <= 0 {
		// Half a level of branching: 2^ceil(k/2) of the 2^k children.
		probes = 1 << uint((d.p.SegmentBits(next)+1)/2)
	}
	if probes > nSegNext {
		probes = nSegNext
	}
	stride := nSegNext / probes

	coster.prepareLevel(next) // restaged for level next by the loop's next iteration
	bs, bl := ws.block(probes)
	bs, bl = bs[:probes], bl[:probes]
	ws.laScore = sized(ws.laScore, len(nodes))
	scores := ws.laScore
	for i := range nodes {
		ps := nodes[i].spine
		for j := 0; j < probes; j++ {
			bs[j] = d.family.Next(ps, uint64(j*stride))
		}
		coster.costTailMany(bl, bs, next, 0)
		minLocal := bl[0]
		for j := 1; j < probes; j++ {
			if bl[j] < minLocal {
				minLocal = bl[j]
			}
		}
		scores[i] = e.ops.Add(nodes[i].cost, minLocal)
	}
	d.nodesExpanded += len(nodes) * probes

	// Retain sc.ExpandTop candidates: the top half by (cost, key) — the
	// probe min is a stride subsample, so it almost never contains a
	// candidate's true continuation, and ranking by probe alone would let
	// that sampling noise evict the current best path (in the noiseless
	// limit the zero-cost true path must survive every level) — and the
	// rest by (score, key), which is where the lookahead earns its keep by
	// promoting a middling prefix whose continuations look strong. Both
	// orders are strict (key breaks ties), so the kept set is unique;
	// compaction preserves the canonical key order.
	m := sc.ExpandTop
	byCost := (m + 1) / 2
	ws.laKeep = sized(ws.laKeep, len(nodes))
	keep := ws.laKeep
	for i := range keep {
		keep[i] = false
	}
	for r := 0; r < m; r++ {
		bi := -1
		for i := range nodes {
			if keep[i] {
				continue
			}
			if bi < 0 {
				bi = i
				continue
			}
			if r < byCost {
				if nodes[i].cost < nodes[bi].cost ||
					(nodes[i].cost == nodes[bi].cost && nodes[i].key < nodes[bi].key) {
					bi = i
				}
			} else if scores[i] < scores[bi] ||
				(scores[i] == scores[bi] && nodes[i].key < nodes[bi].key) {
				bi = i
			}
		}
		keep[bi] = true
	}
	out := nodes[:0]
	for i := range nodes {
		if keep[i] {
			out = append(out, nodes[i])
		}
	}
	d.nodesSaved += (len(keep) - len(out)) * nSegNext
	return out
}

// minCommitObs is the least number of folded observations a level must have
// before prefix commit may freeze it. Sparse schedules (striping) plus the
// per-symbol early attempts leave whole levels with zero or one observation;
// their children tie on cost, the (cost, key) tie-break keeps only children
// of the lowest-indexed parent, and the leaf ancestor set "converges" onto an
// arbitrary chain that has nothing to do with the message. Committing such a
// level is irreversible and kills the session, so commit waits for evidence.
// Four observations (not one or two): with the frontier narrowed to ExpandTop
// nodes, ancestor sets converge far more readily than under the full beam,
// and sessions that would have succeeded within a pass or two of the commit
// were observed to freeze a wrong prefix at two observations per level.
const minCommitObs = 4

// commitPrefix freezes the spine prefix every surviving path agrees on.
// Ancestor sets of the final frontier only shrink toward the root (each node
// has one parent), so there is a deepest level u whose ancestor set is a
// single node; every level at or above u is fully converged. The commit
// floor keeps sc.CommitLevels converged levels revisable as a safety margin
// and freezes everything above: committed levels' frontiers are pruned to
// the single chain node (re-keyed to parent index 0 so later backtracks walk
// the chain), their caches are dropped, and prepare never resumes above the
// floor again. The first uncommitted level's cache is dropped too — it was
// expanded from the frontier just pruned — which makes the next attempt
// rebuild it from the one-node parent; block reuse via the spine index keeps
// that cheap.
func (e *engine[C, O]) commitPrefix(coster levelCoster[C], nseg int, sc SearchConfig) {
	ws := &e.ws
	leaves := &ws.levels[nseg-1].front
	cur, nxt := ws.ancA[:0], ws.ancB[:0]
	for i := 0; i < leaves.len(); i++ {
		cur = append(cur, int32(i))
	}
	u := -1
	for t := nseg - 1; t >= 0; t-- {
		if len(cur) == 1 {
			u = t
			break
		}
		if t == 0 {
			break
		}
		// Frontiers are in (parent, seg) key order, so parents of ascending
		// child indices are non-decreasing and adjacent dedup suffices.
		f := &ws.levels[t].front
		nxt = nxt[:0]
		for _, i := range cur {
			p := f.parent(int(i))
			if len(nxt) == 0 || nxt[len(nxt)-1] != p {
				nxt = append(nxt, p)
			}
		}
		cur, nxt = nxt, cur
	}
	ws.ancA, ws.ancB = cur[:0], nxt[:0] // retain grown capacity, unaliased
	if u < 0 {
		return
	}
	c := u + 1 - sc.CommitLevels
	if c > nseg-1 {
		c = nseg - 1 // the leaf level always stays live
	}
	// Never freeze past a level whose convergence could be a tie-break
	// artifact rather than evidence (see minCommitObs).
	for t := ws.committed; t < c; t++ {
		if coster.numObs(t) < minCommitObs {
			c = t
			break
		}
	}
	if c <= ws.committed {
		return
	}

	// Walk the converged chain from u to the root, then prune the frontiers
	// of the newly committed levels down to it.
	ws.chain = sized(ws.chain, u+1)
	chain := ws.chain
	chain[u] = cur[0]
	for t := u; t > 0; t-- {
		chain[t-1] = ws.levels[t].front.parent(int(chain[t]))
	}
	for t := ws.committed; t < c; t++ {
		lv := &ws.levels[t]
		i := int(chain[t])
		seg := lv.front.seg(i)
		spine, cost := lv.front.spine[i], lv.front.cost[i]
		e.d.nodesSaved += lv.front.len() - 1
		lv.front.spine = lv.front.spine[:1]
		lv.front.cost = lv.front.cost[:1]
		lv.front.key = lv.front.key[:1]
		lv.front.spine[0], lv.front.cost[0] = spine, cost
		lv.front.key[0] = packKey(0, seg)
		lv.prev.clear()
		lv.valid = false
		lv.childSpine = lv.childSpine[:0]
		lv.childLocal = lv.childLocal[:0]
	}
	lvc := &ws.levels[c]
	lvc.valid = false
	lvc.childSpine = lvc.childSpine[:0]
	lvc.childLocal = lvc.childLocal[:0]
	ws.committed = c
	// Level c's retained frontier still references pre-prune parent indices
	// at level c-1; prepare forces the next attempt to resume at the floor,
	// which re-selects it (and everything below) against the pruned chain.
	ws.commitFresh = true
}

// runShard is the body every worker executes: carve this shard's chunk out
// of the region and run the matching range expansion into the shard-private
// selector and counters.
func (e *engine[C, O]) runShard(shard int) {
	rg := &e.region
	sh := &e.par[shard]
	sh.sel.reset(rg.keep)
	sh.expanded, sh.refreshed = 0, 0
	lo := min(shard*rg.chunk, rg.units)
	hi := min(lo+rg.chunk, rg.units)
	switch rg.kind {
	case regionRefresh:
		_, cb := sh.block(rg.nSeg)
		sh.refreshed = e.refreshRange(rg.coster, rg.lv, rg.parent, rg.t, rg.nObs, rg.nSeg, lo, hi, &sh.sel, cb)
	case regionRebuild:
		_, cb := sh.block(rg.nSeg)
		sh.expanded, sh.refreshed = e.rebuildRange(rg.coster, rg.lv, rg.parent, rg.t, rg.nObs, rg.nSeg, rg.reuse, lo, hi, rg.outSpine, rg.outLocal, &sh.sel, cb)
	case regionStream:
		bs, bl := sh.block(rg.nSeg)
		sh.expanded = e.streamRange(rg.coster, rg.parent, rg.t, rg.nSeg, lo, hi, &sh.sel, bs, bl)
	}
}
