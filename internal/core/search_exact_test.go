package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"spinal/internal/rng"
)

// This file pins the exact-search decoder to golden fingerprints recorded
// from the decoder as it stood before the approximate-search modes landed.
// SearchExact must remain bit-identical to that decoder — same messages, same
// costs, same NodesExpanded/NodesRefreshed — at every worker count, for both
// cost metrics, with incremental reuse on or off. Any engine change that
// perturbs the exact path trips these constants.

// exactPinParams is the fixed operating point the fingerprints are recorded
// at: the Figure 2 code geometry with a shorter message so the matrix of
// configurations stays fast.
func exactPinParams() Params {
	return Params{K: 8, C: 10, MessageBits: 96, Seed: DefaultSeed}
}

const (
	exactPinTrials = 3
	exactPinPasses = 4
	exactPinBeam   = 16
)

// exactPinWorkers returns the worker counts the matrix sweeps: the serial
// path, an uneven shard count, and the GOMAXPROCS default.
func exactPinWorkers() []int {
	return []int{1, 3, runtime.GOMAXPROCS(0)}
}

// awgnPinObservations writes the per-trial received symbols for the AWGN
// fingerprint: a seeded message sent over seeded Gaussian noise, one decode
// attempt per pass.
func awgnPinStream(t *testing.T, trial int) (msg []byte, byPass [][]complex128) {
	t.Helper()
	p := exactPinParams()
	msg = RandomMessage(rng.New(uint64(trial+1)*0x9e3779b9), p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	noise := rng.New(uint64(trial+1) * 0xbb67ae85)
	byPass = make([][]complex128, exactPinPasses)
	for pass := range byPass {
		row := make([]complex128, p.NumSegments())
		for s := range row {
			// ~10 dB: per-dimension deviation 0.22 on the unit-energy grid.
			row[s] = enc.Symbol(s, pass) +
				complex(0.22*noise.NormFloat64(), 0.22*noise.NormFloat64())
		}
		byPass[pass] = row
	}
	return msg, byPass
}

// bscPinStream is the binary-channel counterpart: coded bits flipped with
// probability 0.03.
func bscPinStream(t *testing.T, trial int) (msg []byte, byPass [][]byte) {
	t.Helper()
	p := exactPinParams()
	msg = RandomMessage(rng.New(uint64(trial+1)*0x5851f42d), p.MessageBits)
	enc, err := NewEncoder(p, msg)
	if err != nil {
		t.Fatal(err)
	}
	noise := rng.New(uint64(trial+1) * 0x14057b7e)
	byPass = make([][]byte, exactPinPasses)
	for pass := range byPass {
		row := make([]byte, p.NumSegments())
		for s := range row {
			b := enc.CodedBit(s, pass)
			if noise.Bernoulli(0.03) {
				b ^= 1
			}
			row[s] = b
		}
		byPass[pass] = row
	}
	return msg, byPass
}

// exactFingerprints decodes the fixed trial set under one configuration and
// returns two FNV-1a fingerprints: one over the decode results (message bytes
// and exact cost bits — identical across worker counts AND incremental
// on/off) and one over the work counters (NodesExpanded/NodesRefreshed —
// identical across worker counts, different between incremental on/off).
func exactFingerprints(t *testing.T, metric CostMetric, workers int, incremental, bits bool) (result, work uint64) {
	t.Helper()
	p := exactPinParams()
	dec, err := NewBeamDecoder(p, exactPinBeam)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	if err := dec.SetCostMetric(metric); err != nil {
		t.Fatal(err)
	}
	dec.SetIncremental(incremental)
	dec.SetParallelism(workers)

	hr, hw := fnv.New64a(), fnv.New64a()
	record := func(trial, pass int, out *DecodeResult) {
		fmt.Fprintf(hr, "%d/%d:%x:%x;", trial, pass, out.Message, math.Float64bits(out.Cost))
		fmt.Fprintf(hw, "%d/%d:%d:%d;", trial, pass, out.NodesExpanded, out.NodesRefreshed)
	}
	for trial := 0; trial < exactPinTrials; trial++ {
		if bits {
			_, byPass := bscPinStream(t, trial)
			obs, err := NewBitObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}
			for pass, row := range byPass {
				for s, b := range row {
					if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, b); err != nil {
						t.Fatal(err)
					}
				}
				out, err := dec.DecodeBits(obs)
				if err != nil {
					t.Fatal(err)
				}
				record(trial, pass, out)
			}
		} else {
			_, byPass := awgnPinStream(t, trial)
			obs, err := NewObservations(p.NumSegments())
			if err != nil {
				t.Fatal(err)
			}
			for pass, row := range byPass {
				for s, y := range row {
					if err := obs.Add(SymbolPos{Spine: s, Pass: pass}, y); err != nil {
						t.Fatal(err)
					}
				}
				out, err := dec.Decode(obs)
				if err != nil {
					t.Fatal(err)
				}
				record(trial, pass, out)
			}
		}
	}
	return hr.Sum64(), hw.Sum64()
}

// Golden fingerprints recorded from the pre-approximate-search decoder.
// Keyed by channel kind and metric (results) plus incremental mode (work).
var exactPinResultGolden = map[string]uint64{
	"awgn/float64": 0x1268fe4ab3350bfd,
	"awgn/int32":   0x5909429cf57ce3a4,
	// The Hamming metric is integer-exact in both carriers, so the BSC
	// fingerprints coincide across metrics.
	"bsc/float64": 0x4ecfefbb8904a834,
	"bsc/int32":   0x4ecfefbb8904a834,
}

var exactPinWorkGolden = map[string]uint64{
	// Node counts are structural (frontier sizes), so they coincide across
	// metrics, and every from-scratch run expands the same tree shape.
	"awgn/float64/inc":     0x288650d93a80269c,
	"awgn/float64/scratch": 0x9e2c2d02c5e24b85,
	"awgn/int32/inc":       0x288650d93a80269c,
	"awgn/int32/scratch":   0x9e2c2d02c5e24b85,
	"bsc/float64/inc":      0x84105db0776089b8,
	"bsc/float64/scratch":  0x9e2c2d02c5e24b85,
	"bsc/int32/inc":        0x84105db0776089b8,
	"bsc/int32/scratch":    0x9e2c2d02c5e24b85,
}

// TestExactSearchPinnedToPreApproxDecoder is the satellite-3 pin: exact-mode
// decodes across workers {1,3,GOMAXPROCS} × metric {float64,int32} ×
// incremental {on,off} × channel {AWGN,BSC} must reproduce the golden
// fingerprints recorded before the approximate-search engine changes.
func TestExactSearchPinnedToPreApproxDecoder(t *testing.T) {
	for _, bits := range []bool{false, true} {
		kind := "awgn"
		if bits {
			kind = "bsc"
		}
		for _, metric := range []CostMetric{CostFloat64, CostInt32} {
			for _, incremental := range []bool{true, false} {
				mode := "inc"
				if !incremental {
					mode = "scratch"
				}
				for _, workers := range exactPinWorkers() {
					result, work := exactFingerprints(t, metric, workers, incremental, bits)
					rKey := fmt.Sprintf("%s/%s", kind, metric)
					wKey := fmt.Sprintf("%s/%s/%s", kind, metric, mode)
					if want := exactPinResultGolden[rKey]; result != want {
						t.Errorf("result fingerprint %s (workers=%d inc=%v) = %#016x, want %#016x",
							rKey, workers, incremental, result, want)
					}
					if want := exactPinWorkGolden[wKey]; work != want {
						t.Errorf("work fingerprint %s (workers=%d) = %#016x, want %#016x",
							wKey, workers, work, want)
					}
				}
			}
		}
	}
}
