// Package core implements spinal codes: the hash-based rateless encoder of
// §3.1 and the maximum-likelihood and practical "scale-down" beam decoders of
// §3.2 of "Rateless Spinal Codes" (Perry, Balakrishnan, Shah, HotNets 2011).
//
// The encoder divides an n-bit message into k-bit segments, chains them
// through a salted hash function to produce the spine s_1 ... s_{n/k}, and in
// each pass maps 2c fresh bits of every spine value to a dense constellation
// point. The decoder replays the encoder over a pruned tree of message
// prefixes, keeping at most B candidates per level (the paper's bubble
// decoder); with unbounded B it is the exact ML decoder.
package core

import (
	"fmt"

	"spinal/internal/constellation"
	"spinal/internal/hash"
)

// Params describes a spinal code instance. Encoder and decoder must be
// constructed from identical Params (including Seed) to interoperate.
type Params struct {
	// K is the number of message bits hashed into the spine per segment (the
	// paper's k). Decoding complexity is exponential in K; the maximum rate of
	// an unpunctured code is K bits/symbol.
	K int
	// C is the number of coded bits per I or Q dimension (the paper's c); each
	// transmitted symbol consumes 2c bits of a spine value's expansion.
	C int
	// MessageBits is the message length n in bits. It does not need to be a
	// multiple of K; a shorter final segment is handled by both encoder and
	// decoder.
	MessageBits int
	// Seed selects the hash function from the family H. It is shared,
	// non-secret state between sender and receiver.
	Seed uint64
	// Mapper is the constellation mapping function f. If nil, the linear
	// mapping of Eq. 3 with parameter C is used.
	Mapper constellation.Mapper
}

// DefaultSeed is the hash-family seed used by DefaultParams and the
// experiment harness. It is an arbitrary non-zero constant with no special
// properties; any value shared by sender and receiver works.
const DefaultSeed = 0x50714a1c0de2011

// DefaultParams returns the configuration used for Figure 2 of the paper:
// k = 8, c = 10, 24-bit messages, linear constellation mapping.
func DefaultParams() Params {
	return Params{K: 8, C: 10, MessageBits: 24, Seed: DefaultSeed}
}

// NumSegments returns n/k rounded up: the number of spine values.
func (p Params) NumSegments() int {
	if p.K <= 0 {
		return 0
	}
	return (p.MessageBits + p.K - 1) / p.K
}

// SegmentBits returns the number of message bits in segment t (0-based). All
// segments carry K bits except possibly the last one.
func (p Params) SegmentBits(t int) int {
	nseg := p.NumSegments()
	if t < 0 || t >= nseg {
		return 0
	}
	if t == nseg-1 {
		if rem := p.MessageBits - (nseg-1)*p.K; rem > 0 {
			return rem
		}
	}
	return p.K
}

// Validate checks the parameters and returns a descriptive error for the
// first problem found.
func (p Params) Validate() error {
	if p.K < 1 || p.K > 16 {
		return fmt.Errorf("core: K must be in [1,16], got %d", p.K)
	}
	if p.C < 1 || p.C > 16 {
		return fmt.Errorf("core: C must be in [1,16], got %d", p.C)
	}
	if p.MessageBits < 1 {
		return fmt.Errorf("core: MessageBits must be positive, got %d", p.MessageBits)
	}
	if p.MessageBits > 1<<20 {
		return fmt.Errorf("core: MessageBits %d unreasonably large", p.MessageBits)
	}
	if p.Mapper != nil && p.Mapper.C() != p.C {
		return fmt.Errorf("core: mapper is for c=%d but Params.C=%d", p.Mapper.C(), p.C)
	}
	return nil
}

// mapper returns the configured mapper, constructing the default linear
// mapper of Eq. 3 when none is set.
func (p Params) mapper() (constellation.Mapper, error) {
	if p.Mapper != nil {
		return p.Mapper, nil
	}
	return constellation.NewLinear(p.C)
}

// family returns the hash function shared by encoder and decoder.
func (p Params) family() hash.Family {
	return hash.NewFamily(p.Seed)
}

// SymbolPos identifies one transmitted symbol (or coded bit): the spine value
// it was generated from and the pass it belongs to. Both are 0-based.
type SymbolPos struct {
	Spine int
	Pass  int
}
