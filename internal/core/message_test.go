package core

import (
	"testing"
	"testing/quick"

	"spinal/internal/rng"
)

func TestMessageBytes(t *testing.T) {
	cases := map[int]int{1: 1, 7: 1, 8: 1, 9: 2, 24: 3, 25: 4, 256: 32}
	for bits, want := range cases {
		if got := MessageBytes(bits); got != want {
			t.Errorf("MessageBytes(%d) = %d, want %d", bits, got, want)
		}
	}
}

func TestRandomMessageSizeAndPadding(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 8, 24, 31, 100} {
		m := RandomMessage(src, n)
		if len(m) != MessageBytes(n) {
			t.Fatalf("RandomMessage(%d) has %d bytes", n, len(m))
		}
		p := Params{K: 8, C: 10, MessageBits: n, Seed: 1}
		if err := checkMessage(p, m); err != nil {
			t.Fatalf("RandomMessage(%d) fails checkMessage: %v", n, err)
		}
	}
}

func TestSegmentPackRoundTrip(t *testing.T) {
	prop := func(seed uint64, kRaw, nRaw uint8) bool {
		k := int(kRaw%12) + 1
		n := int(nRaw%64) + 1
		p := Params{K: k, C: 10, MessageBits: n, Seed: 1}
		src := rng.New(seed)
		msg := RandomMessage(src, n)
		segs := make([]uint64, p.NumSegments())
		for t := range segs {
			segs[t] = segmentOf(p, msg, t)
			// Segment values must fit in SegmentBits(t).
			if segs[t]>>uint(p.SegmentBits(t)) != 0 {
				return false
			}
		}
		back := packSegments(p, segs)
		return EqualMessages(msg, back, n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBits(t *testing.T) {
	p := Params{K: 8, C: 10, MessageBits: 20, Seed: 1}
	if p.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d", p.NumSegments())
	}
	if p.SegmentBits(0) != 8 || p.SegmentBits(1) != 8 || p.SegmentBits(2) != 4 {
		t.Fatalf("SegmentBits = %d %d %d", p.SegmentBits(0), p.SegmentBits(1), p.SegmentBits(2))
	}
	if p.SegmentBits(3) != 0 || p.SegmentBits(-1) != 0 {
		t.Fatal("out-of-range SegmentBits should be 0")
	}
	exact := Params{K: 8, C: 10, MessageBits: 24, Seed: 1}
	if exact.SegmentBits(2) != 8 {
		t.Fatalf("exact division last segment bits = %d", exact.SegmentBits(2))
	}
}

func TestCheckMessage(t *testing.T) {
	p := Params{K: 8, C: 10, MessageBits: 20, Seed: 1}
	if err := checkMessage(p, []byte{0xff, 0xff, 0x0f}); err != nil {
		t.Errorf("valid message rejected: %v", err)
	}
	if err := checkMessage(p, []byte{0xff, 0xff, 0x1f}); err == nil {
		t.Error("message with stray padding bits accepted")
	}
	if err := checkMessage(p, []byte{0xff, 0xff}); err == nil {
		t.Error("short message accepted")
	}
	if err := checkMessage(p, []byte{0xff, 0xff, 0x0f, 0x00}); err == nil {
		t.Error("long message accepted")
	}
}

func TestEqualMessagesAndBitErrors(t *testing.T) {
	a := []byte{0b10110100, 0b00000001}
	b := []byte{0b10110100, 0b00000001}
	if !EqualMessages(a, b, 9) {
		t.Fatal("identical messages not equal")
	}
	c := []byte{0b10110101, 0b00000000}
	if EqualMessages(a, c, 9) {
		t.Fatal("different messages reported equal")
	}
	if got := BitErrors(a, c, 9); got != 2 {
		t.Fatalf("BitErrors = %d, want 2", got)
	}
	if EqualMessages(a, []byte{1}, 9) {
		t.Fatal("length mismatch reported equal")
	}
}

func TestParamsValidate(t *testing.T) {
	valid := DefaultParams()
	if err := valid.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []Params{
		{K: 0, C: 10, MessageBits: 24},
		{K: 17, C: 10, MessageBits: 24},
		{K: 8, C: 0, MessageBits: 24},
		{K: 8, C: 17, MessageBits: 24},
		{K: 8, C: 10, MessageBits: 0},
		{K: 8, C: 10, MessageBits: 2 << 20},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestParamsMapperMismatch(t *testing.T) {
	p := DefaultParams()
	enc, err := NewEncoder(p, make([]byte, 3))
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.C = 6
	p2.Mapper = enc.mapper // a c=10 mapper
	if err := p2.Validate(); err == nil {
		t.Error("mapper/C mismatch accepted")
	}
}
